package perigee

import "github.com/perigee-net/perigee/internal/faults"

// FaultPlan is a pluggable, deterministic fault-injection policy for the
// live node (see the internal/faults package documentation for the full
// model). A plan decides — purely from its seed and a connection's
// identity — which dials fail and which established connections are
// reset, stalled, throttled, or lossy; the same plan with the same seed
// issues bit-for-bit identical verdicts on every run, making a chaos
// experiment replayable. Install one with node.WithFaults or
// cmd/perigee-cluster's -faults flag.
//
// A custom plan is any type implementing the interface's three methods
// using only basic types plus the aliases below:
//
//	type mondays struct{}
//
//	func (mondays) Name() string  { return "mondays" }
//	func (mondays) Brief() string { return "every third dial fails" }
//	func (mondays) Dial(node uint64, addr string, attempt int) perigee.FaultVerdict {
//	    if attempt%3 == 2 {
//	        return perigee.FaultVerdict{Kind: perigee.FaultDialFail}
//	    }
//	    return perigee.FaultVerdict{}
//	}
//	func (mondays) Conn(node, remote uint64, attempt int) perigee.FaultVerdict {
//	    return perigee.FaultVerdict{}
//	}
type FaultPlan = faults.Plan

// FaultVerdict is one connection's fate under a plan; the zero value is
// "no fault".
type FaultVerdict = faults.Verdict

// FaultKind enumerates the injectable connection faults.
type FaultKind = faults.Kind

// The fault kinds a verdict may carry.
const (
	// FaultNone leaves the connection untouched.
	FaultNone = faults.None
	// FaultDialFail makes the dial error before any connection exists.
	FaultDialFail = faults.DialFail
	// FaultReset severs the connection after Verdict.After operations.
	FaultReset = faults.Reset
	// FaultStall black-holes the connection: reads hang, writes vanish.
	FaultStall = faults.Stall
	// FaultSlowReader throttles every read by Verdict.Throttle.
	FaultSlowReader = faults.SlowReader
	// FaultDrop silently discards every Verdict.DropNth outbound message.
	FaultDrop = faults.Drop
)

// MixedFaults returns the standard chaos plan: fraction (clamped to
// [0, 1]) of dials fail outright, and the same fraction of established
// connections draw a uniform fault — reset, stall, slow-loris read, or
// message drops.
func MixedFaults(seed uint64, fraction float64) FaultPlan {
	return faults.Mixed(seed, fraction)
}

// DialFaults returns a plan that only fails dials, leaving established
// connections untouched — backoff and redial behavior in isolation.
func DialFaults(seed uint64, fraction float64) FaultPlan {
	return faults.DialFailures(seed, fraction)
}

// FaultRecorder wraps a plan and logs every verdict it issues, in
// consultation order — the primitive for asserting that two runs of one
// plan were identical.
type FaultRecorder = faults.Recorder

// RecordFaults wraps plan with a verdict recorder.
func RecordFaults(plan FaultPlan) *FaultRecorder { return faults.NewRecorder(plan) }
