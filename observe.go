package perigee

import (
	"time"

	"github.com/perigee-net/perigee/internal/core"
)

// RoundStats is the streaming per-round telemetry handed to Observers: the
// round summary plus the exact connection churn. Edge lists are in
// deterministic order (drops by ascending node, additions in the round's
// exploration order), identical for any Workers count.
type RoundStats struct {
	// Summary is the completed round's summary.
	Summary RoundSummary
	// DroppedEdges lists the directed connections (v, u) disconnected by
	// scoring this round.
	DroppedEdges [][2]int
	// AddedEdges lists the directed connections (v, u) established by
	// exploration this round.
	AddedEdges [][2]int
}

// Observer receives streaming telemetry after every protocol round,
// whether driven by Step or Run, so long experiments can emit metrics
// without polling. ObserveRound runs synchronously at the end of the
// round, after the neighbor update and before any Dynamics: the network it
// receives is read-only from the observer's perspective, but its query
// methods (BroadcastDelays for per-node λ snapshots, Adjacency,
// OutNeighbors) are all available on demand. Attach observers with
// WithObserver; multiple observers run in registration order.
type Observer interface {
	ObserveRound(net *Network, stats RoundStats)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(net *Network, stats RoundStats)

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(net *Network, stats RoundStats) { f(net, stats) }

// Dynamics mutates the network environment between rounds — the hook
// behind churn, node join/leave, and adversary scenarios that previously
// required editing internal packages. AfterRound runs once per completed
// round, after all Observers, with a Control handle for the permitted
// mutations. It runs sequentially on its own derived random stream, so
// dynamic scenarios stay bit-for-bit reproducible at any Workers count.
// Returning an error aborts the run.
type Dynamics interface {
	AfterRound(ctl *Control, round int) error
}

// DynamicsFunc adapts a plain function to the Dynamics interface.
type DynamicsFunc func(ctl *Control, round int) error

// AfterRound implements Dynamics.
func (f DynamicsFunc) AfterRound(ctl *Control, round int) error { return f(ctl, round) }

// Control is the mutation surface handed to Dynamics: deterministic
// randomness, network inspection, and the membership operations.
type Control struct {
	net *Network
}

// N returns the network size.
func (c *Control) N() int { return c.net.engine.N() }

// Rand returns the dynamics' dedicated random stream. It is derived from
// the network seed, so dynamic scenarios reproduce exactly across runs and
// worker counts.
func (c *Control) Rand() *Rand { return c.net.dynRand }

// Churn resets the given nodes as if they left and were replaced by fresh
// peers at the same index: all their connections are torn down, scoring
// history is forgotten, and each fresh node immediately dials random
// peers. Affected neighbors refill lost slots during their next round.
func (c *Control) Churn(nodes ...int) error { return c.net.engine.Churn(nodes) }

// Adjacency returns the current undirected communication graph.
func (c *Control) Adjacency() [][]int { return c.net.engine.Adjacency() }

// OutNeighbors returns node v's current outgoing neighbor set.
func (c *Control) OutNeighbors(v int) []int { return c.net.engine.Table().OutNeighbors(v) }

// BroadcastDelays measures the current per-node λ snapshot (see
// Network.BroadcastDelays), letting adaptive dynamics react to measured
// performance.
func (c *Control) BroadcastDelays(frac float64) ([]time.Duration, error) {
	return c.net.BroadcastDelays(frac)
}

// observerBridge adapts the engine's core-level round events to the public
// Observer interface.
type observerBridge struct {
	net *Network
}

func (b *observerBridge) ObserveRound(ev core.RoundEvent) {
	summary := RoundSummary{
		Round:              ev.Report.Round,
		Blocks:             ev.Report.Blocks,
		ConnectionsDropped: ev.Report.Dropped,
		ConnectionsAdded:   ev.Report.Added,
	}
	for _, o := range b.net.observers {
		// Each observer gets its own edge-list copies, so one observer
		// mutating (e.g. sorting) its stats cannot corrupt what the next
		// one sees.
		o.ObserveRound(b.net, RoundStats{
			Summary:      summary,
			DroppedEdges: append([][2]int(nil), ev.Dropped...),
			AddedEdges:   append([][2]int(nil), ev.Added...),
		})
	}
}

// dynamicsBridge adapts the engine's core-level dynamics hook to the
// public Dynamics interface.
type dynamicsBridge struct {
	net *Network
}

func (b *dynamicsBridge) AfterRound(_ *core.Engine, round int) error {
	// The engine wraps dynamics errors with round context; no second wrap.
	return b.net.dynamics.AfterRound(&Control{net: b.net}, round)
}
