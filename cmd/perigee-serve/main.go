// Command perigee-serve exposes the scenario registry as a long-lived
// HTTP/JSON service: clients submit experiments, watch their RoundEvents
// and decision traces stream as NDJSON, and identical resubmissions are
// answered from the result cache.
//
//	perigee-serve -addr :8080
//	curl localhost:8080/scenarios
//	curl -X POST localhost:8080/jobs -d '{"scenario":"figure3a","quick":true}'
//	curl localhost:8080/jobs/j001-ab12cd34/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/perigee-net/perigee/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		queue     = flag.Int("queue", 16, "queued-job limit; submissions beyond it get HTTP 503")
		workers   = flag.Int("workers", 1, "jobs run concurrently (each job already parallelizes its trials)")
		maxEvents = flag.Int("max-events", 0, "per-job event-log cap (0 = default 200000)")
		grace     = flag.Duration("grace", time.Minute, "shutdown grace period for running jobs")
	)
	flag.Parse()

	srv := serve.New(serve.Config{QueueSize: *queue, Workers: *workers, MaxEvents: *maxEvents})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "perigee-serve listening on %s (queue %d, %d worker(s))\n", *addr, *queue, *workers)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "perigee-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "perigee-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "perigee-serve: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "perigee-serve: %v\n", err)
		os.Exit(1)
	}
}
