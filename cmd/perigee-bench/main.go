// Command perigee-bench runs the repository's hot-path micro-benchmark
// suite (internal/bench, the same cases `go test -bench=Micro` runs) and
// writes a machine-readable JSON report, so the repo's performance
// trajectory is recorded alongside the code instead of in commit messages.
//
// The report has two sections: "results" is always replaced by the current
// run; "baseline" is preserved from an existing output file (or seeded
// from the current run with -set-baseline), which is how a PR commits its
// pre-change numbers next to its post-change ones.
//
// Usage:
//
//	perigee-bench [-out BENCH_PR4.json] [-filter Broadcast] [-set-baseline] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/perigee-net/perigee/internal/bench"
)

// CaseResult is one benchmark's measurement.
type CaseResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Note carries free-form context (e.g. which commit a baseline was
	// measured at); it is preserved, never generated.
	Note string `json:"note,omitempty"`
}

// Report is the JSON document perigee-bench reads and writes.
type Report struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Baseline holds the pre-change numbers a PR measures before touching
	// the hot path; see -set-baseline.
	Baseline []CaseResult `json:"baseline,omitempty"`
	Results  []CaseResult `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "output JSON path; an existing file's baseline section is preserved")
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	setBaseline := flag.Bool("set-baseline", false, "store this run as the baseline section too (first run of a PR)")
	list := flag.Bool("list", false, "list case names and exit")
	flag.Parse()

	cases := bench.MicroCases()
	if *list {
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}

	report := Report{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Report
		if err := json.Unmarshal(prev, &old); err != nil {
			fmt.Fprintf(os.Stderr, "perigee-bench: existing %s is not a bench report: %v\n", *out, err)
			os.Exit(1)
		}
		report.Baseline = old.Baseline
	}

	for _, c := range cases {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", c.Name)
		r := testing.Benchmark(c.F)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "perigee-bench: %s failed (zero iterations)\n", c.Name)
			os.Exit(1)
		}
		res := CaseResult{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op, %d allocs/op, %d B/op (n=%d)\n",
			c.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations)
		report.Results = append(report.Results, res)
	}
	if len(report.Results) == 0 {
		fmt.Fprintf(os.Stderr, "perigee-bench: no cases match filter %q\n", *filter)
		os.Exit(1)
	}
	if *setBaseline {
		report.Baseline = report.Results
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "perigee-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perigee-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(report.Results))
}
