// Command perigee-bench runs the repository's hot-path micro-benchmark
// suite (internal/bench, the same cases `go test -bench=Micro` runs) and
// writes a machine-readable JSON report, so the repo's performance
// trajectory is recorded alongside the code instead of in commit messages.
//
// The report has two sections: "results" is always replaced by the current
// run; "baseline" is preserved from an existing output file (or seeded
// from the current run with -set-baseline), which is how a PR commits its
// pre-change numbers next to its post-change ones.
//
// Usage:
//
//	perigee-bench [-out BENCH_PR8.json] [-filter Broadcast] [-set-baseline] [-list]
//	perigee-bench -out BENCH_PR8.json -diff BENCH_PR7.json -max-regress 0.20
//
// With -diff, the freshly measured results are compared against the named
// report's results section: the run fails if any shared case regresses by
// more than -max-regress in ns/op, or allocates more per op than before.
// Allocation counts are machine-independent, so the alloc gate is exact;
// the ns/op tolerance absorbs machine-to-machine noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/perigee-net/perigee/internal/bench"
)

// CaseResult is one benchmark's measurement.
type CaseResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Note carries free-form context (e.g. which commit a baseline was
	// measured at); it is preserved, never generated.
	Note string `json:"note,omitempty"`
}

// Report is the JSON document perigee-bench reads and writes.
type Report struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Notes carries free-form, hand-written context about the report
	// (measurement environment, known caveats); like Baseline it is
	// preserved from an existing output file, never generated.
	Notes []string `json:"notes,omitempty"`
	// Baseline holds the pre-change numbers a PR measures before touching
	// the hot path; see -set-baseline.
	Baseline []CaseResult `json:"baseline,omitempty"`
	Results  []CaseResult `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_PR8.json", "output JSON path; an existing file's baseline section is preserved")
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	setBaseline := flag.Bool("set-baseline", false, "store this run as the baseline section too (first run of a PR)")
	list := flag.Bool("list", false, "list case names and exit")
	diff := flag.String("diff", "", "compare this run against the results section of another report and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.20, "ns/op regression tolerance for -diff (0.20 = +20%)")
	flag.Parse()

	cases := bench.MicroCases()
	if *list {
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}

	report := Report{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Report
		if err := json.Unmarshal(prev, &old); err != nil {
			fmt.Fprintf(os.Stderr, "perigee-bench: existing %s is not a bench report: %v\n", *out, err)
			os.Exit(1)
		}
		report.Notes = old.Notes
		report.Baseline = old.Baseline
	}

	for _, c := range cases {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", c.Name)
		r := testing.Benchmark(c.F)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "perigee-bench: %s failed (zero iterations)\n", c.Name)
			os.Exit(1)
		}
		res := CaseResult{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op, %d allocs/op, %d B/op (n=%d)\n",
			c.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations)
		report.Results = append(report.Results, res)
	}
	if len(report.Results) == 0 {
		fmt.Fprintf(os.Stderr, "perigee-bench: no cases match filter %q\n", *filter)
		os.Exit(1)
	}
	if *setBaseline {
		report.Baseline = report.Results
	}
	if *diff != "" {
		if err := diffReports(*diff, report.Results, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "perigee-bench: %v\n", err)
			os.Exit(1)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "perigee-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perigee-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(report.Results))
}

// diffReports compares cur against the results section of the report at
// path. Cases present in only one side are reported informationally; shared
// cases fail the diff when ns/op regresses by more than maxRegress or when
// allocs/op increases at all (allocation counts are machine-independent).
func diffReports(path string, cur []CaseResult, maxRegress float64) error {
	prev, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-diff: %w", err)
	}
	var old Report
	if err := json.Unmarshal(prev, &old); err != nil {
		return fmt.Errorf("-diff: %s is not a bench report: %w", path, err)
	}
	oldByName := make(map[string]CaseResult, len(old.Results))
	for _, c := range old.Results {
		oldByName[c.Name] = c
	}
	var failures []string
	for _, c := range cur {
		o, ok := oldByName[c.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "diff %s: new case (no reference in %s)\n", c.Name, path)
			continue
		}
		ratio := c.NsPerOp / o.NsPerOp
		fmt.Fprintf(os.Stderr, "diff %s: %.0f -> %.0f ns/op (%+.1f%%), %d -> %d allocs/op\n",
			c.Name, o.NsPerOp, c.NsPerOp, 100*(ratio-1), o.AllocsPerOp, c.AllocsPerOp)
		if c.AllocsPerOp > o.AllocsPerOp {
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op grew %d -> %d", c.Name, o.AllocsPerOp, c.AllocsPerOp))
		}
		if ratio > 1+maxRegress {
			failures = append(failures,
				fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)",
					c.Name, o.NsPerOp, c.NsPerOp, 100*(ratio-1), 100*maxRegress))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("regressions vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "diff vs %s: no regressions\n", path)
	return nil
}
