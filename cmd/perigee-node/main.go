// Command perigee-node runs one live Perigee node: it listens for peers,
// relays blocks, optionally mines on a Poisson schedule, and periodically
// re-selects its outbound neighbors from measured block arrival times.
//
//	perigee-node -listen 127.0.0.1:9735 -network mainnet
//	perigee-node -listen 127.0.0.1:9736 -connect 127.0.0.1:9735 -mine 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/p2p"
	"github.com/perigee-net/perigee/internal/rng"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "accepting address (empty = client only)")
		connect     = flag.String("connect", "", "comma-separated seed addresses to dial")
		network     = flag.String("network", "perigee-devnet", "network tag anchoring the genesis block")
		mine        = flag.Duration("mine", 0, "mean mining interval (0 = do not mine)")
		roundBlocks = flag.Int("round-blocks", 20, "blocks observed per Perigee round")
		outDegree   = flag.Int("out-degree", 8, "outbound connection target")
		explore     = flag.Int("explore", 2, "exploration slots per round")
		seed        = flag.Uint64("seed", uint64(time.Now().UnixNano()), "randomness seed")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	node, err := p2p.NewNode(p2p.Config{
		Seed:       *seed,
		ListenAddr: *listen,
		OutDegree:  *outDegree,
		Explore:    *explore,
		Genesis:    chain.NewGenesis(*network),
		Logf:       logger.Printf,
	})
	if err != nil {
		logger.Fatalf("building node: %v", err)
	}
	if err := node.Start(); err != nil {
		logger.Fatalf("starting node: %v", err)
	}
	defer node.Stop()
	fmt.Printf("node %016x listening on %s (network %q)\n", node.ID(), node.Addr(), *network)

	for _, addr := range strings.Split(*connect, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if err := node.Connect(addr); err != nil {
			logger.Printf("dialing seed %s: %v", addr, err)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	miningRand := rng.New(*seed).Derive("mining")
	var mineTimer *time.Timer
	var mineC <-chan time.Time
	if *mine > 0 {
		mineTimer = time.NewTimer(chain.NextMiningInterval(miningRand, *mine))
		mineC = mineTimer.C
		defer mineTimer.Stop()
	}
	status := time.NewTicker(10 * time.Second)
	defer status.Stop()

	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return
		case <-mineC:
			blk, err := node.MineBlock([][]byte{fmt.Appendf(nil, "coinbase-%016x-%d", node.ID(), time.Now().UnixNano())})
			if err != nil {
				logger.Printf("mining: %v", err)
			} else {
				logger.Printf("mined block %s at height %d", blk.Header.Hash(), blk.Header.Height)
			}
			mineTimer.Reset(chain.NextMiningInterval(miningRand, *mine))
		case <-status.C:
			if node.ObservationWindow() >= *roundBlocks {
				rep, err := node.PerigeeRound()
				if err != nil {
					logger.Printf("perigee round: %v", err)
					continue
				}
				logger.Printf("perigee round: scored %d blocks, dropped %d peers, dialed %d",
					rep.BlocksScored, len(rep.Dropped), len(rep.Dialed))
			}
			logger.Printf("height=%d peers=%d window=%d addrs=%d",
				node.Store().Height(), len(node.Peers()), node.ObservationWindow(), node.Book().Len())
		}
	}
}
