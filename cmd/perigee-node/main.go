// Command perigee-node runs one live Perigee node on the public
// perigee/node API: it listens for peers, relays blocks, optionally mines
// on a Poisson schedule, and re-selects its outbound neighbors
// automatically every -round-blocks observed blocks.
//
//	perigee-node -listen 127.0.0.1:9735 -network mainnet
//	perigee-node -listen 127.0.0.1:9736 -connect 127.0.0.1:9735 -mine 30s -scoring vanilla
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/cmd/internal/cliopts"
	"github.com/perigee-net/perigee/node"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "accepting address (empty = client only)")
		connect     = flag.String("connect", "", "comma-separated seed addresses to dial")
		network     = flag.String("network", "perigee-devnet", "network tag anchoring the genesis block")
		mine        = flag.Duration("mine", 0, "mean mining interval (0 = do not mine)")
		roundBlocks = flag.Int("round-blocks", 20, "blocks observed per automatic Perigee round (0 = never adapt)")
		outDegree   = flag.Int("out-degree", 8, "outbound connection target")
		explore     = flag.Int("explore", 2, "exploration slots per round")
		scoring     = flag.String("scoring", "subset", "selection policy: subset, vanilla, ucb, or random")
		percentile  = flag.Float64("percentile", 0.9, "scoring quantile in (0, 1]")
		maxInbound  = flag.Int("max-inbound", 20, "inbound connection cap")
		seed        = flag.Uint64("seed", uint64(time.Now().UnixNano()), "randomness seed")
		addrBook    = flag.String("addr-book", "", "path for the persistent address book (empty = in-memory only)")
		redialEvery = flag.Duration("redial", 30*time.Second, "how often to redial toward the out-degree target (0 disables)")
		idleTimeout = flag.Duration("idle-timeout", 90*time.Second, "silence tolerated on a connection before probing and dropping it")
		discover    = flag.Duration("discover", 30*time.Second, "how often to request fresh addresses from peers while the book is thin (0 disables)")
		targetKnown = flag.Int("target-known", 0, "book size at which address refresh goes quiet (0 = default 128)")
		feelerEvery = flag.Duration("feeler", 2*time.Minute, "how often to dial-verify one gossiped address (0 disables feelers)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	opts := []node.Option{
		node.WithSeed(*seed),
		node.WithNetwork(*network),
		node.WithOutDegree(*outDegree),
		node.WithExplore(*explore),
		node.WithPercentile(*percentile),
		node.WithMaxInbound(*maxInbound),
		node.WithLogf(logger.Printf),
		node.WithObserver(node.ObserverFunc(func(n *node.Node, s perigee.RoundStats) {
			logger.Printf("perigee round %d: scored %d blocks, dropped %d peers, added %d",
				s.Summary.Round, s.Summary.Blocks, s.Summary.ConnectionsDropped, s.Summary.ConnectionsAdded)
		})),
	}
	if *listen != "" {
		opts = append(opts, node.WithListen(*listen))
	}
	if *roundBlocks > 0 {
		opts = append(opts, node.WithRoundBlocks(*roundBlocks))
	}
	if *mine > 0 {
		opts = append(opts, node.WithMiner(*mine))
	}
	if *addrBook != "" {
		opts = append(opts, node.WithAddrBookPath(*addrBook))
	}
	if *redialEvery > 0 {
		opts = append(opts, node.WithRedialInterval(*redialEvery))
	}
	if *idleTimeout > 0 {
		opts = append(opts, node.WithIdleTimeout(*idleTimeout))
	}
	if *discover > 0 {
		opts = append(opts, node.WithDiscovery(*discover, *targetKnown))
	}
	if *feelerEvery > 0 {
		opts = append(opts, node.WithFeelerInterval(*feelerEvery))
	}
	scoringOpt, err := cliopts.ScoringOption(*scoring, *explore)
	if err != nil {
		logger.Fatal(err)
	}
	opts = append(opts, scoringOpt)

	n, err := node.New(opts...)
	if err != nil {
		logger.Fatalf("building node: %v", err)
	}
	if err := n.Start(); err != nil {
		logger.Fatalf("starting node: %v", err)
	}
	defer n.Stop()
	fmt.Printf("node %016x listening on %s (network %q, scoring %s)\n", n.ID(), n.Addr(), *network, *scoring)

	for _, addr := range strings.Split(*connect, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if err := n.Connect(addr); err != nil {
			logger.Printf("dialing seed %s: %v", addr, err)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	status := time.NewTicker(10 * time.Second)
	defer status.Stop()

	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return
		case <-status.C:
			d := n.Discovery()
			logger.Printf("height=%d peers=%d window=%d addrs=%d (verified=%d, learned=%d, feelers=%d)",
				n.Height(), len(n.Peers()), n.ObservationWindow(), n.KnownAddresses(),
				n.VerifiedAddresses(), d.AddrsLearned, d.FeelerVerified)
		}
	}
}
