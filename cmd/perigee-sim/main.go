// Command perigee-sim runs registered scenarios — the paper's figures,
// the §6 extension studies, and the ablation sweeps — from the command
// line.
//
//	perigee-sim -list
//	perigee-sim -scenario figure3a -quick
//	perigee-sim -scenario figure3a -nodes 1000 -trials 3 -rounds 30
//	perigee-sim -scenario figure1 -quick -json
//	perigee-sim -all -quick -out results.md
//	perigee-sim -adversary withholding -adversary-frac 0.2 -quick
//	perigee-sim -scenario forks -quick -block-interval 1s -record-trace trace.json
//	perigee-sim -scenario figure3a -quick -trace-level decisions -counterfactual-k 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/perigee-net/perigee/internal/experiments"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/trace"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the scenario registry and exit")
		scenario   = flag.String("scenario", "", "scenario ID to run (see -list); comma-separate for several")
		experiment = flag.String("experiment", "", "alias of -scenario (legacy flag name)")
		all        = flag.Bool("all", false, "run every registered scenario")
		quick      = flag.Bool("quick", false, "use the scaled-down (300-node) configuration")
		nodes      = flag.Int("nodes", 0, "override network size")
		trials     = flag.Int("trials", 0, "override trial count")
		rounds     = flag.Int("rounds", 0, "override Perigee round count")
		seed       = flag.Uint64("seed", 0, "override root seed")
		workers    = flag.Int("workers", 0, "worker goroutines for trials/broadcasts (0 = all cores; results are identical for any value)")
		lambdaSrc  = flag.Int("lambda-sources", 0, "evaluate λ from this many landmark sources instead of all nodes (0 = all; the scale scenario defaults to 64)")
		obsWindow  = flag.Int("obs-window", 0, "bound per-node observation memory to the last N blocks of each round (0 = dense)")
		shards     = flag.Int("shards", 0, "run each broadcast as a conservative parallel simulation over N node shards (0/1 = single queue; results are identical for any value)")
		latMode    = flag.String("latency-mode", "auto", "edge-delay evaluation: auto, precomputed, or streaming (auto switches to streaming at 20k nodes)")
		blockIntvl = flag.Duration("block-interval", 0, "mean block inter-arrival time for the forks workload scenario (0 = default 2s)")
		traceFile  = flag.String("trace-file", "", "replay a recorded arrival trace in the forks scenario instead of generating one (requires -trials 1)")
		recTrace   = flag.String("record-trace", "", "write the forks scenario's trial-0 arrival trace to this JSON file for later -trace-file replay")
		traceLevel = flag.String("trace-level", "off", "decision tracing: off, decisions, or inputs (adds per-round regret tables to traced reports)")
		cfK        = flag.Int("counterfactual-k", 0, "counterfactually re-score this many dropped alternatives per decision (requires -trace-level)")
		adv        = flag.String("adversary", "", "run the adversary-<name> scenario for a built-in strategy (latency-liar, withholding, sybil-flood, eclipse-bias, partition)")
		advFrac    = flag.Float64("adversary-frac", 0, "population share under adversary control in adversarial scenarios (0 = default 0.15)")
		asJSON     = flag.Bool("json", false, "emit results as JSON instead of the text report")
		out        = flag.String("out", "", "also append rendered results to this file")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Scenarios() {
			fmt.Printf("  %-26s %s\n", s.ID, s.Brief)
		}
		return
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.ShortOptions()
	}
	if *nodes > 0 {
		opt.Nodes = *nodes
	}
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *rounds > 0 {
		opt.Rounds = *rounds
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	opt.Workers = *workers
	opt.AdversaryFraction = *advFrac
	opt.LambdaSources = *lambdaSrc
	opt.ObservationWindow = *obsWindow
	opt.Shards = *shards
	opt.BlockInterval = *blockIntvl
	opt.TraceFile = *traceFile
	opt.RecordTrace = *recTrace
	switch strings.TrimSpace(*latMode) {
	case "", "auto":
		opt.LatencyMode = latency.Auto
	case "precomputed":
		opt.LatencyMode = latency.Precomputed
	case "streaming":
		opt.LatencyMode = latency.Streaming
	default:
		fmt.Fprintf(os.Stderr, "unknown -latency-mode %q (want auto, precomputed, or streaming)\n", *latMode)
		os.Exit(2)
	}
	level, err := trace.ParseLevel(strings.TrimSpace(*traceLevel))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	opt.TraceLevel = int(level)
	opt.CounterfactualK = *cfK

	selected := *scenario
	if selected == "" {
		selected = *experiment
	}
	if *adv != "" {
		id := "adversary-" + strings.TrimSpace(*adv)
		if selected != "" {
			selected += "," + id
		} else {
			selected = id
		}
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case selected != "":
		ids = strings.Split(selected, ",")
	default:
		fmt.Fprintln(os.Stderr, "need -scenario <id>, -adversary <name>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	// Fail fast: validate the whole invocation — every scenario ID, the
	// resolved option set, and the flag combinations — before any trial
	// runs, so a typo in the third scenario of a multi-hour sweep does not
	// surface after the first two finished.
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	for _, id := range ids {
		if _, err := experiments.Describe(id); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}
	if *traceFile != "" && opt.Trials != 1 {
		fmt.Fprintf(os.Stderr, "-trace-file replays one recorded workload and requires -trials 1 (resolved trials: %d)\n", opt.Trials)
		os.Exit(2)
	}
	if (*traceFile != "" || *recTrace != "") && len(ids) > 1 {
		fmt.Fprintln(os.Stderr, "-trace-file/-record-trace apply to a single scenario; drop -all or the extra -scenario IDs")
		os.Exit(2)
	}
	if err := experiments.Validate(opt); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	var sink *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *out, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			buf, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenario %s: encoding JSON: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(buf))
		} else {
			fmt.Printf("%s(completed in %v)\n\n", res.Render(), time.Since(start).Round(time.Second))
		}
		if sink != nil {
			if *asJSON {
				// NDJSON: one compact document per line, so the file stays
				// machine-parseable for any number of scenarios and appended
				// runs — json.load works on a single-scenario file, and line
				// iteration works on multi-scenario sweeps. (The file used to
				// concatenate indented objects, which no JSON parser accepts
				// once a second scenario lands.)
				line, err := json.Marshal(res)
				if err != nil {
					fmt.Fprintf(os.Stderr, "scenario %s: encoding JSON: %v\n", id, err)
					os.Exit(1)
				}
				fmt.Fprintf(sink, "%s\n", line)
			} else {
				fmt.Fprintf(sink, "```\n%s```\n\n", res.Render())
			}
		}
	}
}
