// Package cliopts holds flag-parsing helpers shared by the live-node
// binaries.
package cliopts

import (
	"fmt"
	"strings"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/node"
)

// ScoringOption maps a -scoring flag value onto the public Selector API.
func ScoringOption(name string, explore int) (node.Option, error) {
	switch strings.ToLower(name) {
	case "subset":
		return node.WithScoring(perigee.ScoringSubset), nil
	case "vanilla":
		return node.WithScoring(perigee.ScoringVanilla), nil
	case "ucb":
		return node.WithScoring(perigee.ScoringUCB), nil
	case "random":
		return node.WithSelector(perigee.RandomSelector(explore)), nil
	default:
		return nil, fmt.Errorf("unknown scoring %q (want subset, vanilla, ucb, or random)", name)
	}
}
