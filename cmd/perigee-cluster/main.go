// Command perigee-cluster runs a whole Perigee network of live TCP nodes
// on one machine, entirely through the public perigee/node API: per-link
// latencies from the paper's geographic model are injected into every
// node's sends, a miner schedule drives block production, and all nodes
// run live Perigee rounds. It reports block propagation times before and
// after the topology adapts.
//
// With -faults a seeded chaos plan injects connection resets, stalls, dial
// failures, and message drops into a fraction of links, exercising the
// node's backoff, redial, and backpressure machinery; the run then reports
// aggregate resilience counters.
//
//	perigee-cluster -nodes 20 -rounds 3 -blocks 15 -scoring vanilla
//	perigee-cluster -nodes 12 -faults 0.2 -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/cmd/internal/cliopts"
	"github.com/perigee-net/perigee/node"
)

func main() {
	var (
		nodeCount  = flag.Int("nodes", 16, "cluster size")
		outDegree  = flag.Int("out-degree", 4, "outbound connections per node")
		explore    = flag.Int("explore", 1, "exploration slots per round")
		scoring    = flag.String("scoring", "subset", "selection policy: subset, vanilla, ucb, or random")
		percentile = flag.Float64("percentile", 0.9, "scoring quantile in (0, 1]")
		maxInbound = flag.Int("max-inbound", 20, "inbound connection cap per node")
		rounds     = flag.Int("rounds", 3, "live Perigee rounds")
		blocks     = flag.Int("blocks", 12, "blocks mined per round")
		seed       = flag.Uint64("seed", 11, "randomness seed")
		faults     = flag.Float64("faults", 0, "fraction of dials and connections faulted by a seeded chaos plan (0 disables)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for the fault plan (same seed replays the same faults)")
		singleSeed = flag.Bool("single-seed", false, "bootstrap from one seed node via addr-gossip discovery instead of full address knowledge")
		verbose    = flag.Bool("v", false, "per-node logging")
	)
	flag.Parse()
	if *faults < 0 || *faults > 1 {
		fmt.Fprintln(os.Stderr, "-faults must be in [0, 1]")
		os.Exit(2)
	}
	if *nodeCount < 4 || *outDegree >= *nodeCount {
		fmt.Fprintln(os.Stderr, "need at least 4 nodes and out-degree below the cluster size")
		os.Exit(2)
	}
	scoringOpt, err := cliopts.ScoringOption(*scoring, *explore)
	if err != nil {
		log.Fatal(err)
	}

	// The same geographic model the simulator evaluates, injected into
	// real TCP sends. Latencies are scaled down 5x so wall-clock runs stay
	// snappy; relative structure (regions, slow access nodes) is
	// preserved.
	model, err := perigee.GeographicLatency(*nodeCount, *seed)
	if err != nil {
		log.Fatal(err)
	}
	const timeScale = 5

	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)

	// Build nodes; node IDs are 1..n so the latency injector can map a
	// remote ID back to its universe index.
	nodes := make([]*node.Node, *nodeCount)
	idToIndex := make(map[uint64]int, *nodeCount)
	for i := range nodes {
		i := i
		opts := []node.Option{
			node.WithNodeID(uint64(i + 1)),
			node.WithSeed(*seed + uint64(i)),
			node.WithListen("127.0.0.1:0"),
			node.WithNetwork("perigee-cluster"),
			node.WithOutDegree(*outDegree),
			node.WithExplore(*explore),
			node.WithPercentile(*percentile),
			node.WithMaxInbound(*maxInbound),
			scoringOpt,
			node.WithLatencyInjection(func(remote uint64) time.Duration {
				j, ok := idToIndex[remote]
				if !ok {
					return 0
				}
				// One-way delay, halved again because both ends inject.
				return model.Delay(i, j) / (2 * timeScale)
			}),
		}
		if *faults > 0 {
			// Chaos mode: inject seeded faults and tighten the recovery
			// knobs so the cluster heals within a round instead of waiting
			// out production-scale timeouts.
			opts = append(opts,
				node.WithFaults(perigee.MixedFaults(*faultSeed, *faults)),
				node.WithIdleTimeout(2*time.Second),
				node.WithRedialInterval(500*time.Millisecond),
			)
		}
		if *singleSeed {
			// Discovery mode: each node knows only the seed node's address,
			// so the book must be filled by addr-gossip (refresh GETADDRs,
			// trickle relay) and connections by the redial loop; feelers
			// verify the learned rumor in the background.
			opts = append(opts,
				node.WithDiscovery(200*time.Millisecond, 2**nodeCount),
				node.WithFeelerInterval(300*time.Millisecond),
				node.WithRedialInterval(250*time.Millisecond),
			)
		}
		if *verbose {
			opts = append(opts, node.WithLogf(logger.Printf))
		}
		n, err := node.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
		idToIndex[n.ID()] = i
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			log.Fatal(err)
		}
		defer n.Stop()
	}
	if *singleSeed {
		// Each joiner knows exactly one address: the seed node's. The rest
		// of the bootstrap — learning addresses, filling the out-degree —
		// is addr-gossip discovery's job.
		for i, n := range nodes[1:] {
			n.AddAddresses(nodes[0].Addr())
			for attempt := 0; ; attempt++ {
				if err := n.Connect(nodes[0].Addr()); err == nil {
					break
				} else if attempt >= 20 {
					log.Fatalf("node %d cannot reach the seed: %v", i+1, err)
				}
			}
		}
		waitForDiscovery(nodes, *outDegree, *faults > 0)
	} else {
		// Everyone knows everyone's address (§2.1 assumption).
		for _, n := range nodes {
			for _, m := range nodes {
				if n != m {
					n.AddAddresses(m.Addr())
				}
			}
		}
		// Random initial topology.
		topoRand := rand.New(rand.NewPCG(*seed, 0x7065726967656531)) // "perigee1"
		for i, n := range nodes {
			for _, j := range topoRand.Perm(*nodeCount) {
				if n.OutboundCount() >= *outDegree {
					break
				}
				if j == i {
					continue
				}
				if err := n.Connect(nodes[j].Addr()); err != nil && *verbose {
					logger.Printf("initial dial: %v", err)
				}
			}
		}
	}
	fmt.Printf("cluster up: %d live nodes, out-degree %d, %s scoring, latencies injected from the geographic model\n",
		*nodeCount, *outDegree, *scoring)
	if *faults > 0 {
		fmt.Printf("chaos mode: %.0f%% of dials and connections faulted (fault-seed %d)\n", 100**faults, *faultSeed)
	}

	minerRand := rand.New(rand.NewPCG(*seed, 0x7065726967656532)) // "perigee2"
	runRound := func(round int) (median, p90 time.Duration) {
		var spreads []time.Duration
		for b := 0; b < *blocks; b++ {
			miner := nodes[minerRand.IntN(len(nodes))]
			id, err := miner.MineBlock([][]byte{fmt.Appendf(nil, "r%d-b%d", round, b)})
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			// Wait for 90% of nodes to hold the block.
			need := (*nodeCount*9 + 9) / 10
			if *faults > 0 && need > *nodeCount-1 {
				// Under injected faults a lone straggler may only catch up
				// when the next block's parent fetch pulls it in; don't
				// let one partitioned node stall the measurement.
				need = *nodeCount - 1
			}
			for {
				have := 0
				for _, n := range nodes {
					if n.HasBlock(id) {
						have++
					}
				}
				if have >= need {
					break
				}
				if time.Since(start) > 30*time.Second {
					log.Fatalf("block %s stalled: %d/%d nodes", id, have, need)
				}
				time.Sleep(2 * time.Millisecond)
			}
			spreads = append(spreads, time.Since(start))
		}
		sort.Slice(spreads, func(i, j int) bool { return spreads[i] < spreads[j] })
		p90i := (len(spreads) * 9) / 10
		if p90i >= len(spreads) {
			p90i = len(spreads) - 1
		}
		return spreads[len(spreads)/2], spreads[p90i]
	}

	fmt.Printf("round 0 (random topology): measuring %d blocks...\n", *blocks)
	base, baseP90 := runRound(0)
	fmt.Printf("  time to reach 90%% of nodes: median %v, p90 %v\n",
		base.Round(time.Millisecond), baseP90.Round(time.Millisecond))

	for r := 1; r <= *rounds; r++ {
		for _, n := range nodes {
			if _, err := n.Round(); err != nil {
				log.Fatal(err)
			}
		}
		med, p90 := runRound(r)
		fmt.Printf("after perigee round %d: median %v, p90 %v (%+.0f%% vs random)\n",
			r, med.Round(time.Millisecond), p90.Round(time.Millisecond),
			100*(float64(med)/float64(base)-1))
	}

	if *faults > 0 {
		var total node.ResilienceStats
		for _, n := range nodes {
			r := n.Resilience()
			total.AcceptsShed += r.AcceptsShed
			total.BannedRefused += r.BannedRefused
			total.DialFailures += r.DialFailures
			total.FaultedDials += r.FaultedDials
			total.FaultedConns += r.FaultedConns
			total.Bans += r.Bans
			total.SlowConsumerDrops += r.SlowConsumerDrops
			total.Redials += r.Redials
		}
		fmt.Printf("resilience: faulted %d dials + %d conns, %d dial failures, %d redials, %d bans, %d slow-consumer drops, %d accepts shed\n",
			total.FaultedDials, total.FaultedConns, total.DialFailures,
			total.Redials, total.Bans, total.SlowConsumerDrops, total.AcceptsShed)
	}
}

// waitForDiscovery blocks until every node has bootstrapped from the
// single seed: full degree (counting inbound — the seed itself saturates
// with accepted joiners) and at least 90% of the other nodes' addresses
// in its book. A cluster that cannot converge is a fatal error — this is
// the assertion CI's discovery smoke test relies on.
func waitForDiscovery(nodes []*node.Node, outDegree int, faulted bool) {
	start := time.Now()
	timeout := 30 * time.Second
	if faulted {
		timeout = 60 * time.Second
	}
	need := ((len(nodes) - 1) * 9) / 10
	for {
		converged := 0
		for _, n := range nodes {
			if len(n.Peers()) >= outDegree && n.KnownAddresses() >= need {
				converged++
			}
		}
		if converged == len(nodes) {
			break
		}
		if time.Since(start) > timeout {
			log.Fatalf("discovery stalled after %v: %d/%d nodes converged", timeout, converged, len(nodes))
		}
		time.Sleep(10 * time.Millisecond)
	}
	var d node.DiscoveryStats
	verified := 0
	for _, n := range nodes {
		s := n.Discovery()
		d.SelfAnnounces += s.SelfAnnounces
		d.AddrsRelayed += s.AddrsRelayed
		d.RefreshGetAddrs += s.RefreshGetAddrs
		d.AddrsLearned += s.AddrsLearned
		d.AddrsInvalid += s.AddrsInvalid
		d.AddrsStale += s.AddrsStale
		d.UnsolicitedDropped += s.UnsolicitedDropped
		d.GetAddrThrottled += s.GetAddrThrottled
		d.FeelerDials += s.FeelerDials
		d.FeelerVerified += s.FeelerVerified
		verified += n.VerifiedAddresses()
	}
	fmt.Printf("single-seed bootstrap converged in %v: %d addrs learned, %d relayed, %d refresh getaddrs (%d throttled), %d feeler dials (%d verified, %d book entries dial-verified)\n",
		time.Since(start).Round(time.Millisecond), d.AddrsLearned, d.AddrsRelayed,
		d.RefreshGetAddrs, d.GetAddrThrottled, d.FeelerDials, d.FeelerVerified, verified)
}
