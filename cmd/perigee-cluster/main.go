// Command perigee-cluster runs a whole Perigee network of live TCP nodes
// on one machine: per-link latencies from the geographic model are
// injected into every node's sends, a miner schedule drives block
// production, and all nodes run live Perigee rounds. It reports block
// propagation times before and after the topology adapts.
//
//	perigee-cluster -nodes 20 -rounds 3 -blocks 15
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/p2p"
	"github.com/perigee-net/perigee/internal/rng"
)

func main() {
	var (
		nodeCount = flag.Int("nodes", 16, "cluster size")
		outDegree = flag.Int("out-degree", 4, "outbound connections per node")
		rounds    = flag.Int("rounds", 3, "live Perigee rounds")
		blocks    = flag.Int("blocks", 12, "blocks mined per round")
		seed      = flag.Uint64("seed", 11, "randomness seed")
		verbose   = flag.Bool("v", false, "per-node logging")
	)
	flag.Parse()
	if *nodeCount < 4 || *outDegree >= *nodeCount {
		fmt.Fprintln(os.Stderr, "need at least 4 nodes and out-degree below the cluster size")
		os.Exit(2)
	}

	root := rng.New(*seed)
	universe, err := geo.SampleUniverse(*nodeCount, root.Derive("universe"))
	if err != nil {
		log.Fatal(err)
	}
	// Scale latencies down 5x so wall-clock runs stay snappy; relative
	// structure (regions, slow access nodes) is preserved.
	model, err := latency.NewGeographic(universe, root.Derive("latency"))
	if err != nil {
		log.Fatal(err)
	}
	const timeScale = 5

	genesis := chain.NewGenesis("perigee-cluster")
	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)

	// Build nodes; node IDs are 1..n so the latency injector can map a
	// remote ID back to its universe index.
	nodes := make([]*p2p.Node, *nodeCount)
	idToIndex := make(map[uint64]int, *nodeCount)
	for i := range nodes {
		i := i
		cfg := p2p.Config{
			NodeID:     uint64(i + 1),
			Seed:       *seed + uint64(i),
			ListenAddr: "127.0.0.1:0",
			OutDegree:  *outDegree,
			Explore:    1,
			Genesis:    genesis,
			PeerDelay: func(remote uint64) time.Duration {
				j, ok := idToIndex[remote]
				if !ok {
					return 0
				}
				// One-way delay, halved again because both ends inject.
				return model.Delay(i, j) / (2 * timeScale)
			},
		}
		if *verbose {
			cfg.Logf = logger.Printf
		}
		n, err := p2p.NewNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
		idToIndex[n.ID()] = i
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			log.Fatal(err)
		}
		defer n.Stop()
	}
	// Everyone knows everyone's address (§2.1 assumption).
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.Book().Add(m.Addr())
			}
		}
	}
	// Random initial topology.
	topoRand := root.Derive("initial-topology")
	for i, n := range nodes {
		for _, j := range topoRand.Perm(*nodeCount) {
			if n.OutboundCount() >= *outDegree {
				break
			}
			if j == i {
				continue
			}
			if err := n.Connect(nodes[j].Addr()); err != nil && *verbose {
				logger.Printf("initial dial: %v", err)
			}
		}
	}
	fmt.Printf("cluster up: %d live nodes, out-degree %d, latencies injected from the geographic model\n",
		*nodeCount, *outDegree)

	minerRand := root.Derive("miners")
	runRound := func(round int) time.Duration {
		var spreads []time.Duration
		for b := 0; b < *blocks; b++ {
			miner := nodes[minerRand.IntN(len(nodes))]
			blk, err := miner.MineBlock([][]byte{fmt.Appendf(nil, "r%d-b%d", round, b)})
			if err != nil {
				log.Fatal(err)
			}
			h := blk.Header.Hash()
			start := time.Now()
			// Wait for 90% of nodes to hold the block.
			need := (*nodeCount*9 + 9) / 10
			for {
				have := 0
				for _, n := range nodes {
					if n.Store().Has(h) {
						have++
					}
				}
				if have >= need {
					break
				}
				if time.Since(start) > 30*time.Second {
					log.Fatalf("block %s stalled: %d/%d nodes", h, have, need)
				}
				time.Sleep(2 * time.Millisecond)
			}
			spreads = append(spreads, time.Since(start))
		}
		sort.Slice(spreads, func(i, j int) bool { return spreads[i] < spreads[j] })
		return spreads[len(spreads)/2]
	}

	fmt.Printf("round 0 (random topology): measuring %d blocks...\n", *blocks)
	base := runRound(0)
	fmt.Printf("  median time to reach 90%% of nodes: %v\n", base.Round(time.Millisecond))

	for r := 1; r <= *rounds; r++ {
		for _, n := range nodes {
			if _, err := n.PerigeeRound(); err != nil {
				log.Fatal(err)
			}
		}
		med := runRound(r)
		fmt.Printf("after perigee round %d: median %v (%+.0f%% vs random)\n",
			r, med.Round(time.Millisecond), 100*(float64(med)/float64(base)-1))
	}
}
