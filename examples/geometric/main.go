// Geometric graph demo (paper Figure 1, Theorems 1 and 2): on nodes
// embedded in a metric space, a random topology produces meandering paths
// whose latency is a growing factor above the point-to-point optimum,
// while a geometric threshold graph stays within a constant factor.
//
// The three studies are registered scenarios, run through the shared
// registry (perigee.RunScenario — the same surface cmd/perigee-sim
// serves).
//
//	go run ./examples/geometric
package main

import (
	"fmt"
	"log"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	opt := perigee.QuickScenarioOptions()
	opt.Nodes = 600
	opt.Trials = 2

	fmt.Println("Figure 1: stretch on the unit square (random vs geometric)")
	res, err := perigee.RunScenario("figure1", opt)
	if err != nil {
		log.Fatalf("figure1: %v", err)
	}
	fmt.Println(res.Render())

	fmt.Println("Theorem 1: random-graph stretch grows with network size")
	t1, err := perigee.RunScenario("theorem1", opt)
	if err != nil {
		log.Fatalf("theorem1: %v", err)
	}
	for _, note := range t1.Notes {
		fmt.Println("  " + note)
	}

	fmt.Println("\nTheorem 2: geometric-graph stretch stays constant")
	t2, err := perigee.RunScenario("theorem2", opt)
	if err != nil {
		log.Fatalf("theorem2: %v", err)
	}
	for _, note := range t2.Notes {
		fmt.Println("  " + note)
	}
}
