// Mining pools scenario (paper §5.4, Figure 4b): 10% of the nodes hold 90%
// of the hash power. A good topology keeps every node close to the miners,
// not close to the average node — Perigee optimizes exactly that, because
// it scores neighbors on block arrivals and blocks come from miners.
//
// The pool structure is one option (WithPower) on an otherwise default
// network; swap in ExponentialPower, PowerVector, or your own PowerDist
// for other economies.
//
//	go run ./examples/miningpools
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	net, err := perigee.New(300,
		perigee.WithSeed(7),
		perigee.WithRoundBlocks(50),
		perigee.WithPower(perigee.PoolsPower(0.1, 0.9)),
	)
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	before, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mining-pool network: 10% of nodes hold 90% of hash power")
	fmt.Printf("  random topology: median delay to 90%% of power = %v\n", median(before))

	if err := net.Run(12); err != nil {
		log.Fatal(err)
	}

	after, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after 12 Perigee rounds: median = %v (%.0f%% better)\n",
		median(after), 100*(1-float64(median(after))/float64(median(before))))

	fmt.Println("\nwhy it works: Perigee nodes rate neighbors by block arrival")
	fmt.Println("times; neighbors on fast paths to the mining pools deliver")
	fmt.Println("blocks early and are retained, so the learned topology clusters")
	fmt.Println("around the sources of hash power without knowing who they are.")
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2].Round(time.Millisecond)
}
