// Live network demo: real TCP nodes on localhost running the
// Bitcoin-style INV/GETDATA/BLOCK protocol with injected per-link
// latencies, built entirely on the public perigee/node API. One node is
// the miner; a hub node runs live Perigee rounds and learns to drop its
// artificially slow relay.
//
// Unlike the simulation examples, scoring here runs on real TCP arrival
// timestamps, with no latency oracle — the same Subset policy the
// simulator defaults to, driving a live node.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/node"
)

func main() {
	newNode := func(seed uint64, opts ...node.Option) *node.Node {
		opts = append([]node.Option{
			node.WithListen("127.0.0.1:0"),
			node.WithNetwork("livenet-example"),
			node.WithSeed(seed),
		}, opts...)
		n, err := node.New(opts...)
		if err != nil {
			log.Fatalf("node %d: %v", seed, err)
		}
		if err := n.Start(); err != nil {
			log.Fatalf("start %d: %v", seed, err)
		}
		return n
	}

	miner := newNode(1)
	fastA := newNode(2)
	fastB := newNode(3)
	// This relay adds 120ms before every message it sends.
	slow := newNode(4, node.WithLatencyInjection(func(uint64) time.Duration {
		return 120 * time.Millisecond
	}))

	names := map[int]string{}
	hub := newNode(5,
		node.WithOutDegree(3),
		node.WithExplore(1),
		node.WithObserver(node.ObserverFunc(func(n *node.Node, s perigee.RoundStats) {
			for _, edge := range s.DroppedEdges {
				fmt.Printf("  dropped %s (%016x)\n", names[edge[1]], uint64(edge[1]))
			}
			fmt.Printf("  dialed %d fresh peers from the address book\n", s.Summary.ConnectionsAdded)
		})),
	)
	all := []*node.Node{miner, fastA, fastB, slow, hub}
	defer func() {
		for _, n := range all {
			n.Stop()
		}
	}()

	relays := []*node.Node{fastA, fastB, slow}
	names[int(fastA.ID())] = "fastA"
	names[int(fastB.ID())] = "fastB"
	names[int(slow.ID())] = "slow"
	for _, r := range relays {
		if err := miner.Connect(r.Addr()); err != nil {
			log.Fatalf("miner connect: %v", err)
		}
		if err := hub.Connect(r.Addr()); err != nil {
			log.Fatalf("hub connect: %v", err)
		}
	}
	fmt.Println("topology: miner -> {fastA, fastB, slow} -> hub")
	fmt.Println("the slow relay delays every send by 120ms")

	fmt.Println("\nmining 8 blocks...")
	for i := 0; i < 8; i++ {
		if _, err := miner.MineBlock([][]byte{fmt.Appendf(nil, "tx-%d", i)}); err != nil {
			log.Fatalf("mining: %v", err)
		}
		waitForHeight(hub, uint64(i+1))
	}
	time.Sleep(250 * time.Millisecond) // let the slow announcements land

	fmt.Printf("hub observed %d blocks; running a live Perigee round...\n", hub.ObservationWindow())
	stats, err := hub.Round()
	if err != nil {
		log.Fatalf("perigee round: %v", err)
	}
	if len(stats.DroppedEdges) == 1 && names[stats.DroppedEdges[0][1]] == "slow" {
		fmt.Println("\nthe hub evicted exactly the slow relay — scoring on real")
		fmt.Println("TCP arrival timestamps, no latency oracle involved.")
	}
}

func waitForHeight(n *node.Node, h uint64) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n.Height() >= h {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for height %d", h)
}
