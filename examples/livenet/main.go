// Live network demo: real TCP nodes on localhost running the Bitcoin-style
// INV/GETDATA/BLOCK protocol with injected per-link latencies. One node is
// the miner; a hub node runs live Perigee rounds and learns to drop its
// artificially slow relay.
//
// Unlike the other examples, this one exercises the live implementation
// (internal/p2p) rather than the simulation's options API: scoring runs
// on real TCP arrival timestamps, with no latency oracle.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/p2p"
)

func main() {
	genesis := chain.NewGenesis("livenet-example")

	newNode := func(seed uint64, mutate func(*p2p.Config)) *p2p.Node {
		cfg := p2p.Config{
			Seed:       seed,
			ListenAddr: "127.0.0.1:0",
			Genesis:    genesis,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		n, err := p2p.NewNode(cfg)
		if err != nil {
			log.Fatalf("node %d: %v", seed, err)
		}
		if err := n.Start(); err != nil {
			log.Fatalf("start %d: %v", seed, err)
		}
		return n
	}

	miner := newNode(1, nil)
	fastA := newNode(2, nil)
	fastB := newNode(3, nil)
	slow := newNode(4, func(c *p2p.Config) {
		// This relay adds 120ms before every message it sends.
		c.PeerDelay = func(uint64) time.Duration { return 120 * time.Millisecond }
	})
	hub := newNode(5, func(c *p2p.Config) {
		c.OutDegree = 3
		c.Explore = 1
	})
	defer func() {
		for _, n := range []*p2p.Node{miner, fastA, fastB, slow, hub} {
			n.Stop()
		}
	}()

	relays := []*p2p.Node{fastA, fastB, slow}
	names := map[uint64]string{fastA.ID(): "fastA", fastB.ID(): "fastB", slow.ID(): "slow"}
	for _, r := range relays {
		if err := miner.Connect(r.Addr()); err != nil {
			log.Fatalf("miner connect: %v", err)
		}
		if err := hub.Connect(r.Addr()); err != nil {
			log.Fatalf("hub connect: %v", err)
		}
	}
	fmt.Println("topology: miner -> {fastA, fastB, slow} -> hub")
	fmt.Println("the slow relay delays every send by 120ms")

	fmt.Println("\nmining 8 blocks...")
	for i := 0; i < 8; i++ {
		if _, err := miner.MineBlock([][]byte{fmt.Appendf(nil, "tx-%d", i)}); err != nil {
			log.Fatalf("mining: %v", err)
		}
		waitForHeight(hub, uint64(i+1))
	}
	time.Sleep(250 * time.Millisecond) // let the slow announcements land

	fmt.Printf("hub observed %d blocks; running a live Perigee round...\n", hub.ObservationWindow())
	rep, err := hub.PerigeeRound()
	if err != nil {
		log.Fatalf("perigee round: %v", err)
	}
	for _, id := range rep.Dropped {
		fmt.Printf("  dropped %s (%016x)\n", names[id], id)
	}
	fmt.Printf("  dialed %d fresh peers from the address book\n", len(rep.Dialed))
	if len(rep.Dropped) == 1 && names[rep.Dropped[0]] == "slow" {
		fmt.Println("\nthe hub evicted exactly the slow relay — scoring on real")
		fmt.Println("TCP arrival timestamps, no latency oracle involved.")
	}
}

func waitForHeight(n *p2p.Node, h uint64) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n.Store().Height() >= h {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for height %d", h)
}
