// Custom models: a scenario the library never enumerated, assembled
// entirely from public composable pieces — a measured inter-city latency
// matrix (LatencyMatrix), a mining-pool power skew (PoolsPower), per-round
// node churn (Dynamics), and a streaming Observer — with zero edits to the
// library. The scenario is then registered alongside the paper's figures
// and run through the shared registry.
//
//	go run ./examples/custommodels
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	perigee "github.com/perigee-net/perigee"
)

// cityDelayMs is a measured-style one-way latency table between the five
// metro areas hosting our nodes (the shape in which WonderNetwork-like
// ping datasets arrive).
var (
	cities      = []string{"Virginia", "Frankfurt", "Singapore", "São Paulo", "Sydney"}
	cityDelayMs = [5][5]float64{
		{0, 45, 115, 60, 100},
		{45, 0, 85, 95, 145},
		{115, 85, 0, 160, 45},
		{60, 95, 160, 0, 155},
		{100, 145, 45, 155, 0},
	}
)

// measuredMatrix builds the full n-by-n node matrix: inter-city delay from
// the table plus a small deterministic intra-city component.
func measuredMatrix(n int) [][]time.Duration {
	delays := make([][]time.Duration, n)
	for i := range delays {
		delays[i] = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ms := cityDelayMs[i%len(cities)][j%len(cities)]
			ms += 2 + float64((i+j)%7) // last-mile spread, 2-8ms
			d := time.Duration(ms * float64(time.Millisecond))
			delays[i][j], delays[j][i] = d, d
		}
	}
	return delays
}

func main() {
	const (
		nodes     = 250
		rounds    = 12
		churnFrac = 0.04
	)

	lat, err := perigee.LatencyMatrix(measuredMatrix(nodes))
	if err != nil {
		log.Fatalf("latency matrix: %v", err)
	}

	// Dynamics: after every round, a random 4% of the nodes leave and are
	// replaced by fresh peers — drawn from the hook's own deterministic
	// stream, so the run reproduces exactly at any worker count.
	churn := perigee.DynamicsFunc(func(ctl *perigee.Control, round int) error {
		k := int(churnFrac * float64(ctl.N()))
		return ctl.Churn(ctl.Rand().Perm(ctl.N())[:k]...)
	})

	var swapped int
	tally := perigee.ObserverFunc(func(_ *perigee.Network, s perigee.RoundStats) {
		swapped += len(s.DroppedEdges)
	})

	build := func() (*perigee.Network, error) {
		return perigee.New(nodes,
			perigee.WithSeed(2026),
			perigee.WithRoundBlocks(50),
			perigee.WithLatency(lat),
			perigee.WithPower(perigee.PoolsPower(0.1, 0.9)),
			perigee.WithDynamics(churn),
			perigee.WithObserver(tally),
		)
	}

	net, err := build()
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	before, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d-city latency matrix, 10%%/90%% mining pools, %.0f%% churn per round\n",
		len(cities), 100*churnFrac)
	fmt.Printf("  random topology: median delay to 90%% of power = %v\n", median(before))

	if err := net.Run(rounds); err != nil {
		log.Fatal(err)
	}
	after, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after %d Perigee rounds (with churn): median = %v (%.0f%% better)\n",
		rounds, median(after), 100*(1-float64(median(after))/float64(median(before))))
	fmt.Printf("  observer counted %d connections swapped across the run\n", swapped)

	// The same scenario, registered next to the paper's figures: any code
	// holding the registry (cmd/perigee-sim included) can now run it.
	err = perigee.RegisterScenario("custom-cities",
		"measured city matrix + pools + churn via public models",
		func(opt perigee.ScenarioOptions) (*perigee.ScenarioResult, error) {
			return &perigee.ScenarioResult{
				ID:    "custom-cities",
				Title: "custom scenario built from public composable models",
				Notes: []string{fmt.Sprintf("median λ %v -> %v", median(before), median(after))},
			}, nil
		})
	if err != nil {
		log.Fatalf("registering: %v", err)
	}
	res, err := perigee.RunScenario("custom-cities", perigee.QuickScenarioOptions())
	if err != nil {
		log.Fatalf("running registered scenario: %v", err)
	}
	fmt.Printf("\nregistered and ran %q through the shared scenario registry:\n", res.ID)
	for _, note := range res.Notes {
		fmt.Println("  " + note)
	}
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2].Round(time.Millisecond)
}
