// Quickstart: build a simulated blockchain p2p network, measure block
// propagation under the default random topology, run the Perigee protocol
// for a few rounds, and measure again.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	cfg := perigee.DefaultConfig(300)
	cfg.Seed = 42
	cfg.RoundBlocks = 50

	net, err := perigee.New(cfg)
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	before, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatalf("measuring baseline: %v", err)
	}
	fmt.Printf("starting topology (random, out-degree 8):\n")
	fmt.Printf("  median delay to 90%% of hash power: %v\n", median(before))

	const rounds = 12
	fmt.Printf("\nrunning %d Perigee-Subset rounds (%d blocks each)...\n", rounds, cfg.RoundBlocks)
	for i := 0; i < rounds; i++ {
		sum, err := net.Step()
		if err != nil {
			log.Fatalf("round %d: %v", i+1, err)
		}
		if sum.Round%4 == 0 {
			ds, err := net.BroadcastDelays(0.9)
			if err != nil {
				log.Fatalf("measuring: %v", err)
			}
			fmt.Printf("  round %2d: median %v (swapped %d connections)\n",
				sum.Round, median(ds), sum.ConnectionsDropped)
		}
	}

	after, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatalf("measuring final: %v", err)
	}
	improvement := 1 - float64(median(after))/float64(median(before))
	fmt.Printf("\nconverged topology:\n")
	fmt.Printf("  median delay: %v (%.0f%% better than random)\n", median(after), improvement*100)
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2].Round(time.Millisecond)
}
