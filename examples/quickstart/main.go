// Quickstart: build a simulated blockchain p2p network with the options
// API, stream per-round telemetry through an Observer, and watch the
// Perigee protocol improve block propagation over the starting random
// topology.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	const rounds = 12

	// An Observer receives every round's summary and exact connection
	// churn as it happens — no polling. λ snapshots are available on
	// demand through the network handle.
	progress := perigee.ObserverFunc(func(net *perigee.Network, s perigee.RoundStats) {
		if s.Summary.Round%4 != 0 {
			return
		}
		ds, err := net.BroadcastDelays(0.9)
		if err != nil {
			log.Fatalf("measuring: %v", err)
		}
		fmt.Printf("  round %2d: median %v (swapped %d connections)\n",
			s.Summary.Round, median(ds), s.Summary.ConnectionsDropped)
	})

	net, err := perigee.New(300,
		perigee.WithSeed(42),
		perigee.WithRoundBlocks(50),
		perigee.WithObserver(progress),
	)
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	before, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatalf("measuring baseline: %v", err)
	}
	fmt.Printf("starting topology (random, out-degree 8):\n")
	fmt.Printf("  median delay to 90%% of hash power: %v\n", median(before))

	fmt.Printf("\nrunning %d Perigee-Subset rounds (50 blocks each)...\n", rounds)
	if err := net.Run(rounds); err != nil {
		log.Fatalf("running: %v", err)
	}

	after, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatalf("measuring final: %v", err)
	}
	improvement := 1 - float64(median(after))/float64(median(before))
	fmt.Printf("\nconverged topology:\n")
	fmt.Printf("  median delay: %v (%.0f%% better than random)\n", median(after), improvement*100)
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2].Round(time.Millisecond)
}
