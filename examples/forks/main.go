// Forks: drive two networks with the same continuous-time mining workload
// and price their topologies in blockchain terms — stale blocks, forks,
// and revenue skew — instead of raw propagation delay.
//
// Miners produce blocks on a Poisson schedule (weighted by hash power);
// two blocks mined within one another's propagation delay extend the same
// parent and fork the chain, and exactly one branch survives. A topology
// that propagates faster loses fewer blocks. Both networks share a seed,
// so they mine the identical arrival schedule: the only difference is the
// neighbor-selection policy — Perigee-Subset learning the topology versus
// random rewiring.
//
//	go run ./examples/forks
package main

import (
	"fmt"
	"log"
	"time"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	const (
		nodes    = 200
		interval = time.Second // mean block inter-arrival time
		duration = 10 * time.Minute
	)

	run := func(label string, extra ...perigee.Option) *perigee.WorkloadReport {
		opts := append([]perigee.Option{
			perigee.WithSeed(42), // equal seeds => identical arrival schedule
			perigee.WithRoundBlocks(30),
			perigee.WithBlockInterval(interval),
		}, extra...)
		net, err := perigee.New(nodes, opts...)
		if err != nil {
			log.Fatalf("building %s network: %v", label, err)
		}
		rep, err := net.RunWorkload(duration)
		if err != nil {
			log.Fatalf("running %s workload: %v", label, err)
		}
		fmt.Printf("%-16s %5d mined  %5d stale  stale rate %.4f  fork rate %.4f  revenue skew %.4f\n",
			label, rep.BlocksMined, rep.StaleBlocks, rep.StaleRate, rep.ForkRate, rep.RevenueSkew)
		return rep
	}

	fmt.Printf("%d nodes, 1 block/s for %v (%d topology rounds of 30 blocks)\n\n",
		nodes, duration, int(duration/(30*interval)))
	subset := run("Perigee-Subset")
	random := run("random", perigee.WithSelector(perigee.RandomSelector(2)))

	fmt.Printf("\nPerigee-Subset turned the same mining schedule into %.1f%% fewer stale blocks.\n",
		100*(1-subset.StaleRate/random.StaleRate))
	fmt.Println("Faster propagation means fewer simultaneous tips: the learned topology")
	fmt.Println("wastes less hash power on losing branches and pays miners closer to")
	fmt.Println("their fair share. Swap in GammaArrivals/WeibullArrivals via WithWorkload,")
	fmt.Println("or record and replay exact schedules with the forks scenario's")
	fmt.Println("-record-trace and WithTraceFile.")
}
