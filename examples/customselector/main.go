// Custom-selector demo: one neighbor-selection policy, written entirely
// against the public API, driving BOTH environments — the discrete-event
// simulator (perigee.New) and a cluster of live TCP nodes (node.New) —
// without modification. This is the point of the Selector interface: the
// decision loop is environment-agnostic, so a policy is evaluated in
// simulation and deployed over real sockets as the same value.
//
// The policy here is a "trimmed-mean rotator": it scores each neighbor by
// the mean of its finite offsets (censoring blocks it never delivered,
// with a penalty per miss), keeps the best OutDegree−1, and rotates one
// slot. It is deliberately not one of the built-ins.
//
//	go run ./examples/customselector
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/node"
)

// trimmedMeanSelector is the custom policy. It holds no cross-round
// state, so the same instance can safely drive every simulated node and
// any number of live nodes.
type trimmedMeanSelector struct {
	// missPenalty is added to a neighbor's score for every block it never
	// delivered inside the window.
	missPenalty time.Duration
}

func (s trimmedMeanSelector) SelectNeighbors(view perigee.NeighborView) (perigee.Decision, error) {
	obs := view.Observations
	k := len(obs.Neighbors)
	retain := view.OutDegree - 1
	if retain < 0 {
		retain = 0
	}
	if k <= retain {
		keep := make([]int, k)
		for i := range keep {
			keep[i] = i
		}
		return perigee.Decision{Keep: keep, Dial: view.OutDegree - k}, nil
	}
	scores := make([]time.Duration, k)
	for i := 0; i < k; i++ {
		var sum time.Duration
		finite := 0
		for _, row := range obs.Offsets {
			if row[i] == perigee.Censored {
				sum += s.missPenalty
				continue
			}
			sum += row[i]
			finite++
		}
		if finite == 0 {
			scores[i] = perigee.Censored
			continue
		}
		scores[i] = sum / time.Duration(len(obs.Offsets))
	}
	ranked := make([]int, k)
	for i := range ranked {
		ranked[i] = i
	}
	sort.Slice(ranked, func(a, b int) bool {
		ia, ib := ranked[a], ranked[b]
		if scores[ia] != scores[ib] {
			return scores[ia] < scores[ib]
		}
		return obs.Neighbors[ia] < obs.Neighbors[ib] // deterministic ties
	})
	keep := append([]int(nil), ranked[:retain]...)
	drop := append([]int(nil), ranked[retain:]...)
	return perigee.Decision{Keep: keep, Drop: drop, Dial: view.OutDegree - retain}, nil
}

func main() {
	policy := trimmedMeanSelector{missPenalty: time.Second}

	// ------------------------------------------------------------------
	// Environment 1: the simulator. 150 nodes, 10 rounds, paper defaults
	// otherwise. The λ metric improves as the custom policy converges.
	// ------------------------------------------------------------------
	fmt.Println("simulator: 150 nodes under the trimmed-mean policy")
	net, err := perigee.New(150,
		perigee.WithSeed(7),
		perigee.WithRoundBlocks(20),
		perigee.WithSelector(policy),
	)
	if err != nil {
		log.Fatal(err)
	}
	before := medianDelay(net)
	if err := net.Run(10); err != nil {
		log.Fatal(err)
	}
	after := medianDelay(net)
	fmt.Printf("  median λ(0.9): %v before → %v after 10 rounds (%+.0f%%)\n",
		before.Round(time.Millisecond), after.Round(time.Millisecond),
		100*(float64(after)/float64(before)-1))

	// ------------------------------------------------------------------
	// Environment 2: live TCP on localhost. A hub with three relays, one
	// artificially slow; the exact same policy value evicts it from real
	// arrival timestamps.
	// ------------------------------------------------------------------
	fmt.Println("\nlive TCP: hub + 3 relays, one delayed by 100ms")
	newNode := func(seed uint64, opts ...node.Option) *node.Node {
		opts = append([]node.Option{
			node.WithListen("127.0.0.1:0"),
			node.WithNetwork("customselector-example"),
			node.WithSeed(seed),
		}, opts...)
		n, err := node.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		if err := n.Start(); err != nil {
			log.Fatal(err)
		}
		return n
	}
	miner := newNode(1)
	fastA := newNode(2)
	fastB := newNode(3)
	slow := newNode(4, node.WithLatencyInjection(func(uint64) time.Duration {
		return 100 * time.Millisecond
	}))
	hub := newNode(5, node.WithOutDegree(3), node.WithSelector(policy))
	all := []*node.Node{miner, fastA, fastB, slow, hub}
	defer func() {
		for _, n := range all {
			n.Stop()
		}
	}()
	for _, relay := range []*node.Node{fastA, fastB, slow} {
		if err := miner.Connect(relay.Addr()); err != nil {
			log.Fatal(err)
		}
		if err := hub.Connect(relay.Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := miner.MineBlock([][]byte{fmt.Appendf(nil, "tx-%d", i)}); err != nil {
			log.Fatal(err)
		}
		deadline := time.Now().Add(3 * time.Second)
		for hub.Height() < uint64(i+1) {
			if time.Now().After(deadline) {
				log.Fatalf("block %d never reached the hub", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	time.Sleep(200 * time.Millisecond) // let delayed announcements land

	stats, err := hub.Round()
	if err != nil {
		log.Fatal(err)
	}
	for _, edge := range stats.DroppedEdges {
		name := "a fast relay?!"
		if uint64(edge[1]) == slow.ID() {
			name = "the slow relay"
		}
		fmt.Printf("  hub dropped %016x — %s\n", uint64(edge[1]), name)
	}
	fmt.Println("\nsame policy value, two environments: simulated rounds and")
	fmt.Println("live TCP rounds both ran trimmedMeanSelector unmodified.")
}

// medianDelay measures the network's median λ(0.9) broadcast delay.
func medianDelay(net *perigee.Network) time.Duration {
	ds, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatal(err)
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
