// Relay network scenario (paper §5.4, Figure 4c): a fast block
// distribution network (like bloXroute/FIBRE) exists as a low-latency tree
// embedded in the p2p network. Perigee nodes discover and exploit it
// without being told it exists.
//
// The study is a registered scenario: this example lists the registry and
// runs "figure4c" through perigee.RunScenario, the same surface
// cmd/perigee-sim serves.
//
//	go run ./examples/relaynetwork
package main

import (
	"fmt"
	"log"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	fmt.Println("registered scenarios:")
	for _, s := range perigee.Scenarios() {
		fmt.Printf("  %-26s %s\n", s.ID, s.Brief)
	}

	opt := perigee.QuickScenarioOptions()
	opt.Nodes = 300
	opt.Rounds = 10

	fmt.Println("\nembedding a low-latency relay tree in a 300-node network...")
	res, err := perigee.RunScenario("figure4c", opt)
	if err != nil {
		log.Fatalf("running figure4c: %v", err)
	}
	fmt.Println(res.Render())

	fmt.Println("reading the table: the relay tree gives every algorithm the")
	fmt.Println("same raw infrastructure, but only Perigee-Subset learns to")
	fmt.Println("connect to relay members (their announcements arrive first),")
	fmt.Println("pulling its curve toward the fully-connected ideal.")
}
