// Custom-adversary demo: one attack strategy, written entirely against
// the public API, run through the simulator via perigee.WithAdversary —
// alongside two built-ins for comparison. This is the point of the
// Adversary interface: an attack is a value (behavior tables + optional
// per-round agent), so a new threat model is ~30 lines, not a fork of
// the engine.
//
// The custom strategy is a "sleeper flooder": its compromised nodes
// behave perfectly until a trigger round, then simultaneously go silent
// AND start dialing two fresh honest victims per node per round —
// converting earned positions into a withholding + connection-exhaustion
// attack. The demo measures honest-node broadcast delay (λ at 90% hash
// power) before the trigger, right after it, and after Perigee has had
// rounds to heal.
//
//	go run ./examples/customadversary
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/perigee-net/perigee"
)

// sleeperFlooder is the custom strategy. Strategies must be reusable:
// Setup is called once per run, and all run state lives in the closures
// of the returned agent.
type sleeperFlooder struct {
	triggerRound int
}

func (s sleeperFlooder) Name() string { return "sleeper-flooder" }
func (s sleeperFlooder) Brief() string {
	return "honest until the trigger round, then silent and flooding"
}

func (s sleeperFlooder) Setup(env *perigee.AdversaryEnv, net *perigee.AdversaryNetwork) (perigee.AdversaryAgent, error) {
	if s.triggerRound < 1 {
		return perigee.AdversaryAgent{}, fmt.Errorf("sleeper-flooder: trigger round %d must be positive", s.triggerRound)
	}
	return perigee.AdversaryAgent{
		AfterRound: func(ctl perigee.AdversaryControl, round int) error {
			if round < s.triggerRound {
				return nil
			}
			if round == s.triggerRound {
				for _, a := range env.Adversaries {
					net.Silent[a] = true // stop relaying
					net.Frozen[a] = true // stop playing the protocol
				}
			}
			// Flood: every sleeper dials two fresh honest victims per
			// round, never releasing old connections.
			for _, a := range env.Adversaries {
				dialed := 0
				for attempt := 0; dialed < 2 && attempt < 24; attempt++ {
					v := env.Rand.IntN(env.N)
					if v == a || env.IsAdversary[v] || ctl.HasOut(a, v) {
						continue
					}
					if err := ctl.Connect(a, v); err != nil {
						continue // inbox full — try another victim
					}
					dialed++
				}
			}
			return nil
		},
	}, nil
}

// medianHonestDelay measures λ at 90% hash-power coverage over honest
// sources only.
func medianHonestDelay(net *perigee.Network) time.Duration {
	delays, err := net.BroadcastDelays(0.9)
	if err != nil {
		log.Fatal(err)
	}
	isAdv := make(map[int]bool)
	for _, a := range net.AdversaryNodes() {
		isAdv[a] = true
	}
	var honest []time.Duration
	for v, d := range delays {
		if !isAdv[v] {
			honest = append(honest, d)
		}
	}
	for i := range honest { // insertion sort: the slice is small
		for j := i; j > 0 && honest[j] < honest[j-1]; j-- {
			honest[j], honest[j-1] = honest[j-1], honest[j]
		}
	}
	return honest[len(honest)/2]
}

func run(name string, strategy perigee.Adversary) {
	net, err := perigee.New(250,
		perigee.WithSeed(2024),
		perigee.WithAdversary(strategy, 0.2),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Five dormant rounds: Perigee converges with the sleepers behaving.
	if err := net.Run(5); err != nil {
		log.Fatal(err)
	}
	before := medianHonestDelay(net)
	// Round 6: trigger-round strategies fire at its very end, after the
	// round's neighbor update — so the next measurement captures the
	// damage before any honest node has had a decision round to react.
	if err := net.Run(1); err != nil {
		log.Fatal(err)
	}
	during := medianHonestDelay(net)
	if err := net.Run(6); err != nil { // Perigee heals
		log.Fatal(err)
	}
	after := medianHonestDelay(net)
	fmt.Printf("%-22s λ median (honest): %6.1f ms converged -> %6.1f ms attacked -> %6.1f ms healed\n",
		name,
		float64(before)/float64(time.Millisecond),
		float64(during)/float64(time.Millisecond),
		float64(after)/float64(time.Millisecond))
}

func main() {
	// The custom strategy next to two built-ins under the same harness.
	// The sleeper variants fire after round 6; the withholding attack is
	// active from the first round, so its "converged" column already
	// includes the damage.
	run("sleeper-flooder", sleeperFlooder{triggerRound: 6})
	run("withholding", perigee.WithholdingRelayAdversary(300*time.Millisecond, 0.5))
	run("eclipse-bias", perigee.EclipseBiasAdversary(6))
	fmt.Println("\nPerigee recovers because misbehaving neighbors score poorly and are")
	fmt.Println("rotated out; a static topology would keep paying for them forever.")
}
