// Traced: run a Perigee network with decision tracing and counterfactual
// evaluation enabled, then interrogate the decisions — how many neighbors
// were dropped, what the rejected alternatives would have delivered, and
// where the selector left delay on the table (positive regret).
//
//	go run ./examples/traced
package main

import (
	"fmt"
	"log"
	"math"

	perigee "github.com/perigee-net/perigee"
)

func main() {
	const rounds = 6

	// TraceDecisions records every keep/drop/dial decision;
	// WithCounterfactualK(3) additionally re-scores each decision's top 3
	// rejected neighbors one round later, measuring what their one-hop
	// relays would have delivered.
	net, err := perigee.New(300,
		perigee.WithSeed(42),
		perigee.WithRoundBlocks(50),
		perigee.WithTraceLevel(perigee.TraceDecisions),
		perigee.WithCounterfactualK(3),
	)
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	if err := net.Run(rounds); err != nil {
		log.Fatalf("running: %v", err)
	}

	// The aggregate view: per-round regret. Negative mean regret means the
	// dropped alternatives would have scored worse than the worst kept
	// neighbor — the selector is making the right calls.
	fmt.Print(net.TraceSummary().Render())

	// The raw records support any custom slice. Here: the single most
	// regretted drop of the run — the rejected peer whose counterfactual
	// score beat the kept set by the widest margin.
	var worst *perigee.TraceRecord
	for _, rec := range net.Trace() {
		rec := rec
		if rec.Kind != "counterfactual" || rec.Censored {
			continue
		}
		if r := float64(rec.RegretMs); !math.IsInf(r, 0) {
			if worst == nil || rec.RegretMs > worst.RegretMs {
				worst = &rec
			}
		}
	}
	if worst != nil {
		fmt.Printf("\nmost regretted drop: round %d, node %d dropped peer %d\n",
			worst.Round, worst.Node, worst.Peer)
		fmt.Printf("  kept set's worst score:    %7.2f ms\n", float64(worst.WorstKeptMs))
		fmt.Printf("  dropped peer would score:  %7.2f ms (one-hop counterfactual)\n", float64(worst.CounterfactualMs))
		fmt.Printf("  regret:                    %+7.2f ms\n", float64(worst.RegretMs))
	}
}
