package perigee_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	perigee "github.com/perigee-net/perigee"
)

// TestNetworkTracing drives a traced network through a few rounds and
// checks the public trace surface: records accumulate, the summary reports
// counterfactual regret, and WriteTrace emits parseable NDJSON.
func TestNetworkTracing(t *testing.T) {
	net, err := perigee.New(60,
		perigee.WithSeed(3),
		perigee.WithRoundBlocks(20),
		perigee.WithTraceLevel(perigee.TraceDecisions),
		perigee.WithCounterfactualK(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(3); err != nil {
		t.Fatal(err)
	}

	recs := net.Trace()
	if len(recs) == 0 {
		t.Fatal("traced run recorded nothing")
	}
	decisions, counterfactuals := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case "decision":
			decisions++
		case "counterfactual":
			counterfactuals++
		default:
			t.Fatalf("unknown record kind %q", r.Kind)
		}
	}
	if decisions == 0 || counterfactuals == 0 {
		t.Fatalf("got %d decisions, %d counterfactuals; want both > 0", decisions, counterfactuals)
	}

	sum := net.TraceSummary()
	if sum == nil {
		t.Fatal("traced network returned nil summary")
	}
	if sum.Selector != "Perigee-Subset" {
		t.Errorf("summary selector %q, want Perigee-Subset", sum.Selector)
	}
	if total := sum.Total(); total.Decisions != decisions || total.Alternatives != counterfactuals {
		t.Errorf("summary totals %+v disagree with records (%d decisions, %d cf)", total, decisions, counterfactuals)
	}
	if !strings.Contains(sum.Render(), "decision trace: Perigee-Subset") {
		t.Error("summary render is missing its header")
	}

	var buf bytes.Buffer
	if err := net.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec perigee.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(recs) {
		t.Fatalf("WriteTrace emitted %d lines for %d records", lines, len(recs))
	}
}

// TestTracingOptionValidation: the facade refuses nonsense trace options
// and an untraced network's trace surface is inert.
func TestTracingOptionValidation(t *testing.T) {
	if _, err := perigee.New(60, perigee.WithTraceLevel(perigee.TraceLevel(9))); err == nil {
		t.Error("bad trace level accepted")
	}
	if _, err := perigee.New(60, perigee.WithCounterfactualK(-1)); err == nil {
		t.Error("negative counterfactual k accepted")
	}
	if _, err := perigee.New(60, perigee.WithCounterfactualK(2)); err == nil {
		t.Error("WithCounterfactualK without WithTraceLevel accepted")
	}

	net, err := perigee.New(60, perigee.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(1); err != nil {
		t.Fatal(err)
	}
	if net.Trace() != nil || net.TraceSummary() != nil {
		t.Error("untraced network returned trace data")
	}
	var buf bytes.Buffer
	if err := net.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("untraced WriteTrace wrote %d bytes, err %v", buf.Len(), err)
	}
}
