package perigee

import (
	"testing"
	"time"
)

// TestWithAdversaryComposition builds an attacked network through the
// public options API and checks the attack is live: adversaries are
// sampled at the requested fraction, the network runs, and the scoring
// rule punishes withholding relays (honest nodes hold fewer adversary
// out-edges than the population share after convergence).
func TestWithAdversaryComposition(t *testing.T) {
	const nodes = 120
	net, err := New(nodes,
		WithSeed(11),
		WithAdversary(WithholdingRelayAdversary(300*time.Millisecond, 0.5), 0.2),
	)
	if err != nil {
		t.Fatal(err)
	}
	advs := net.AdversaryNodes()
	if want := int(0.2 * nodes); len(advs) != want {
		t.Fatalf("got %d adversaries, want %d", len(advs), want)
	}
	if err := net.Run(6); err != nil {
		t.Fatal(err)
	}
	isAdv := make([]bool, nodes)
	for _, a := range advs {
		isAdv[a] = true
	}
	advSlots, slots := 0, 0
	for v := 0; v < nodes; v++ {
		if isAdv[v] {
			continue
		}
		for _, u := range net.OutNeighbors(v) {
			slots++
			if isAdv[u] {
				advSlots++
			}
		}
	}
	share := float64(advSlots) / float64(slots)
	t.Logf("adversary out-slot share after convergence: %.1f%% (population 20%%)", 100*share)
	if share >= 0.2 {
		t.Errorf("scoring did not punish withholding relays: share %.2f >= population 0.20", share)
	}
}

// TestWithAdversaryDeterminism: identical seeds and options reproduce an
// attacked run exactly.
func TestWithAdversaryDeterminism(t *testing.T) {
	build := func(workers int) [][]int {
		net, err := New(80,
			WithSeed(5),
			WithWorkers(workers),
			WithAdversary(LatencyLiarAdversary(0.5, 200*time.Millisecond), 0.15),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Run(4); err != nil {
			t.Fatal(err)
		}
		return net.Adjacency()
	}
	a, b := build(1), build(8)
	for v := range a {
		if len(a[v]) != len(b[v]) {
			t.Fatalf("node %d degree differs across worker counts", v)
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatalf("node %d adjacency differs across worker counts", v)
			}
		}
	}
}

// TestWithAdversaryComposesWithDynamics: a user Dynamics hook and the
// adversary's per-round agent both run — dynamics first, adversary last.
func TestWithAdversaryComposesWithDynamics(t *testing.T) {
	rounds := 0
	net, err := New(60,
		WithSeed(3),
		WithDynamics(DynamicsFunc(func(ctl *Control, round int) error {
			rounds++
			return nil
		})),
		WithAdversary(SybilFloodAdversary(2), 0.1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(3); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("user dynamics ran %d times, want 3", rounds)
	}
	advs := net.AdversaryNodes()
	grew := false
	for _, a := range advs {
		if len(net.OutNeighbors(a)) > 8 {
			grew = true
		}
	}
	if !grew {
		t.Error("sybil agent never dialed: adversary out-degrees did not grow")
	}
}

func TestWithAdversaryValidation(t *testing.T) {
	if _, err := New(60, WithAdversary(nil, 0.1)); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := New(60, WithAdversary(EclipseBiasAdversary(0), 1)); err == nil {
		t.Error("fraction 1 accepted")
	}
	if _, err := New(60, WithAdversary(LatencyLiarAdversary(2, 0), 0.1)); err == nil {
		t.Error("invalid strategy parameters accepted")
	}
}

// TestAdversariesListing: the built-in registry exposes five named
// strategies through the public alias.
func TestAdversariesListing(t *testing.T) {
	all := Adversaries()
	if len(all) < 5 {
		t.Fatalf("got %d built-in strategies, want >= 5", len(all))
	}
	for _, a := range all {
		if a.Name() == "" {
			t.Error("unnamed strategy")
		}
	}
}
