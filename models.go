package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// Rand is the deterministic, splittable random stream handed to model
// callbacks (PowerDist, ValidationDist, TopologySeeder, Dynamics). It
// embeds the standard math/rand/v2 drawing methods (Float64, IntN, Perm,
// ExpFloat64, ...) plus Derive/DeriveIndexed for carving out independent
// sub-streams. Every model receives its own stream derived from the
// network seed, so adding a random draw in one model never perturbs
// another, and equal seeds reproduce runs bit-for-bit.
type Rand = rng.RNG

// LatencyModel yields the constant one-way delay of sending a block
// between two directly-connected nodes. Implementations must be symmetric
// (Delay(u, v) == Delay(v, u)) and return non-negative delays; N reports
// how many nodes the model covers and must be at least the network size.
//
// The default is the paper's geographic model (§3.1): nodes embedded near
// regional hubs with last-mile access delays and per-link route noise. Any
// custom environment — a measured latency matrix, a synthetic metric
// space, an overlay with fast-path overrides — plugs in via WithLatency.
type LatencyModel interface {
	// Delay returns the one-way latency between nodes u and v.
	Delay(u, v int) time.Duration
	// N returns the number of nodes the model covers.
	N() int
}

// GeographicLatency samples the paper's geographic latency model (§3.1)
// for n nodes from the given seed: nodes embedded near regional hubs with
// last-mile access delays and per-link route noise. It is the model New
// uses by default (with the network seed); the standalone constructor
// exists so other drivers — most notably latency injection into live
// nodes via node.WithLatencyInjection — can run against the same
// environment the simulator evaluates.
func GeographicLatency(n int, seed uint64) (LatencyModel, error) {
	root := rng.New(seed)
	universe, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		return nil, err
	}
	return latency.NewGeographic(universe, root.Derive("latency"))
}

// latencyMatrix is a LatencyModel backed by an explicit n-by-n matrix.
type latencyMatrix struct {
	d [][]time.Duration
}

// LatencyMatrix builds a LatencyModel from a measured (or otherwise
// explicit) square delay matrix, the form in which real-world P2P
// measurement datasets (iPlane, WonderNetwork, Ethereum crawls) arrive.
// The matrix must be square, symmetric, zero on the diagonal, and
// non-negative everywhere.
func LatencyMatrix(delays [][]time.Duration) (LatencyModel, error) {
	n := len(delays)
	if n == 0 {
		return nil, fmt.Errorf("perigee: latency matrix is empty")
	}
	for i, row := range delays {
		if len(row) != n {
			return nil, fmt.Errorf("perigee: latency matrix row %d has %d entries, want %d", i, len(row), n)
		}
		if row[i] != 0 {
			return nil, fmt.Errorf("perigee: latency matrix diagonal entry (%d, %d) is %v, want 0", i, i, row[i])
		}
		for j, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("perigee: negative latency %v at (%d, %d)", d, i, j)
			}
			if delays[j][i] != d {
				return nil, fmt.Errorf("perigee: latency matrix asymmetric at (%d, %d): %v vs %v", i, j, d, delays[j][i])
			}
		}
	}
	// Deep-copy so later caller mutations cannot skew a running simulation.
	cp := make([][]time.Duration, n)
	for i, row := range delays {
		cp[i] = append([]time.Duration(nil), row...)
	}
	return &latencyMatrix{d: cp}, nil
}

func (m *latencyMatrix) Delay(u, v int) time.Duration { return m.d[u][v] }
func (m *latencyMatrix) N() int                       { return len(m.d) }

// PowerDist draws the per-node mining-power vector. The vector may be on
// any non-negative scale (it is normalized internally); a node mines the
// next block with probability proportional to its power (§2.1).
type PowerDist interface {
	// Power returns one power value per node.
	Power(n int, r *Rand) ([]float64, error)
}

// PowerFunc adapts a plain function to the PowerDist interface.
type PowerFunc func(n int, r *Rand) ([]float64, error)

// Power implements PowerDist.
func (f PowerFunc) Power(n int, r *Rand) ([]float64, error) { return f(n, r) }

// UniformPower gives every node equal power (§5.2, Figure 3a). This is the
// default.
func UniformPower() PowerDist {
	return PowerFunc(func(n int, _ *Rand) ([]float64, error) {
		return hashpower.Uniform(n)
	})
}

// ExponentialPower draws each node's power from Exponential(1), normalized
// to sum to 1 (Figure 3b).
func ExponentialPower() PowerDist {
	return PowerFunc(func(n int, r *Rand) ([]float64, error) {
		return hashpower.Exponential(n, r)
	})
}

// PoolsPower assigns powerFrac of the total power to a random
// round(poolFrac*n)-node miner set, split evenly, with the remainder
// spread over everyone else. PoolsPower(0.1, 0.9) is the paper's
// Figure 4(b) mining-pool setting.
func PoolsPower(poolFrac, powerFrac float64) PowerDist {
	return PowerFunc(func(n int, r *Rand) ([]float64, error) {
		power, _, err := hashpower.Pools(n, poolFrac, powerFrac, r)
		return power, err
	})
}

// PowerVector uses a fixed, externally-measured power vector (e.g. pool
// shares scraped from a block explorer). The vector length must equal the
// network size.
func PowerVector(power []float64) PowerDist {
	cp := append([]float64(nil), power...)
	return PowerFunc(func(n int, _ *Rand) ([]float64, error) {
		if len(cp) != n {
			return nil, fmt.Errorf("perigee: power vector covers %d nodes, want %d", len(cp), n)
		}
		return append([]float64(nil), cp...), nil
	})
}

// ValidationDist draws the per-node block validation delay Δ_v — the time
// a node spends checking a block before relaying it (§2.1).
type ValidationDist interface {
	// Validation returns one delay per node.
	Validation(n int, r *Rand) ([]time.Duration, error)
}

// ValidationFunc adapts a plain function to the ValidationDist interface.
type ValidationFunc func(n int, r *Rand) ([]time.Duration, error)

// Validation implements ValidationDist.
func (f ValidationFunc) Validation(n int, r *Rand) ([]time.Duration, error) { return f(n, r) }

// FixedValidation gives every node exactly d, the paper's §5 setting
// ("each node has a mean block processing time of 50 ms"). This is the
// default with d = 50ms.
func FixedValidation(d time.Duration) ValidationDist {
	return ValidationFunc(func(n int, _ *Rand) ([]time.Duration, error) {
		if d < 0 {
			return nil, fmt.Errorf("perigee: negative validation delay %v", d)
		}
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = d
		}
		return out, nil
	})
}

// ExponentialValidation draws each node's delay from Exponential(mean) —
// the heterogeneous-processing-power extension motivated in §1, under
// which Perigee additionally learns to route around slow validators.
func ExponentialValidation(mean time.Duration) ValidationDist {
	return ValidationFunc(func(n int, r *Rand) ([]time.Duration, error) {
		if mean < 0 {
			return nil, fmt.Errorf("perigee: negative mean validation delay %v", mean)
		}
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(r.ExpFloat64() * float64(mean))
		}
		return out, nil
	})
}

// ValidationVector uses fixed, externally-measured per-node validation
// delays. The vector length must equal the network size.
func ValidationVector(delays []time.Duration) ValidationDist {
	cp := append([]time.Duration(nil), delays...)
	return ValidationFunc(func(n int, _ *Rand) ([]time.Duration, error) {
		if len(cp) != n {
			return nil, fmt.Errorf("perigee: validation vector covers %d nodes, want %d", len(cp), n)
		}
		for i, d := range cp {
			if d < 0 {
				return nil, fmt.Errorf("perigee: negative validation delay %v at node %d", d, i)
			}
		}
		return append([]time.Duration(nil), cp...), nil
	})
}

// TopologySeeder builds the initial outgoing-neighbor lists the protocol
// starts from. Row v lists node v's outgoing neighbors; the engine derives
// the undirected communication graph and evolves the out-edges from there.
// Every node's list must respect outDegree, and no node may exceed
// maxIncoming incoming edges.
type TopologySeeder interface {
	// SeedTopology returns the initial out-neighbor list of every node.
	SeedTopology(n, outDegree, maxIncoming int, r *Rand) ([][]int, error)
}

// TopologySeederFunc adapts a plain function to the TopologySeeder
// interface.
type TopologySeederFunc func(n, outDegree, maxIncoming int, r *Rand) ([][]int, error)

// SeedTopology implements TopologySeeder.
func (f TopologySeederFunc) SeedTopology(n, outDegree, maxIncoming int, r *Rand) ([][]int, error) {
	return f(n, outDegree, maxIncoming, r)
}

// RandomSeeder seeds the paper's starting point: every node dials
// outDegree uniformly random peers, honoring incoming caps. This is the
// default.
func RandomSeeder() TopologySeeder {
	return TopologySeederFunc(func(n, outDegree, maxIncoming int, r *Rand) ([][]int, error) {
		tbl, err := topology.Random(n, outDegree, maxIncoming, r)
		if err != nil {
			return nil, err
		}
		out := make([][]int, n)
		for v := 0; v < n; v++ {
			out[v] = tbl.OutNeighbors(v)
		}
		return out, nil
	})
}

// tableFromSeed materializes a connection table from seeded out-neighbor
// lists, validating degree constraints as it goes.
func tableFromSeed(out [][]int, n, outDegree, maxIncoming int) (*topology.Table, error) {
	if len(out) != n {
		return nil, fmt.Errorf("perigee: topology seed covers %d nodes, want %d", len(out), n)
	}
	tbl, err := topology.NewTable(n, maxIncoming)
	if err != nil {
		return nil, err
	}
	for v, neighbors := range out {
		if len(neighbors) > outDegree {
			return nil, fmt.Errorf("perigee: topology seed gives node %d %d outgoing neighbors, cap %d",
				v, len(neighbors), outDegree)
		}
		for _, u := range neighbors {
			if err := tbl.Connect(v, u); err != nil {
				return nil, fmt.Errorf("perigee: topology seed edge %d->%d: %w", v, u, err)
			}
		}
	}
	return tbl, nil
}
