#!/usr/bin/env bash
# bench.sh — run the hot-path micro-benchmark suite, enforce the repo's
# allocation contracts, refresh the machine-readable bench report
# (BENCH_PR8.json), and diff it against the latest previously committed
# BENCH_*.json so performance regressions fail loudly.
#
# Usage:
#   scripts/bench.sh            # go-test Micro pass + JSON report + diff
#   scripts/bench.sh --json     # JSON report + diff only (skip go-test pass)
#
# Environment:
#   BENCH_OUT          output report path         (default BENCH_PR8.json)
#   BENCH_MAX_REGRESS  ns/op regression tolerance (default 0.20 = +20%)
#
# The go-test pass prints the familiar -benchmem table and enforces the
# allocation gates below; the perigee-bench pass rewrites the "results"
# section of $BENCH_OUT while preserving its committed "baseline" section,
# then fails if any case regressed more than $BENCH_MAX_REGRESS in ns/op
# or grew its allocs/op versus the newest other BENCH_*.json in the repo
# root. Alloc comparisons are machine-independent; the ns/op tolerance
# absorbs machine-to-machine noise.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR8.json}"
MAX_REGRESS="${BENCH_MAX_REGRESS:-0.20}"

# gate NAME WANT — fail unless benchmark NAME reports at most WANT allocs/op.
gate() {
  local name="$1" want="$2" line allocs
  line="$(grep -E "^Benchmark${name}(-[0-9]+)?[[:space:]]" /tmp/perigee-bench.out || true)"
  if [[ -z "$line" ]]; then
    echo "bench.sh: Benchmark${name} missing from output" >&2
    exit 1
  fi
  allocs="$(awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' <<<"$line")"
  if (( allocs > want )); then
    echo "bench.sh: Benchmark${name} reports ${allocs} allocs/op, want <= ${want}" >&2
    exit 1
  fi
  echo "bench.sh: Benchmark${name} alloc gate ok (${allocs} <= ${want})"
}

if [[ "${1:-}" != "--json" ]]; then
  # Main pass at 100 iterations. The 100k broadcast runs separately at 3
  # iterations because a single op is a full 100k-node streaming flood.
  go test -run '^$' \
    -bench 'Micro(Broadcast1000$|Broadcast10000$|AnalyticArrival|DelayToFraction|VanillaScoring|SubsetScoring|EngineRound|DurationPercentile)' \
    -benchmem -benchtime=100x . | tee /tmp/perigee-bench.out
  go test -run '^$' -bench 'MicroBroadcast100000$' -benchmem -benchtime=3x . \
    | tee -a /tmp/perigee-bench.out
  # One op is a full simulated hour (~1800 blocks through netsim plus the
  # chain-view bookkeeping), so it runs at 3 iterations like the 100k
  # broadcast. Its allocations are deterministic (47203 at the time the
  # gate was set); the ceiling catches structural regressions — a
  # per-block or per-delivery allocation would add thousands.
  go test -run '^$' -bench 'WorkloadHour$' -benchmem -benchtime=3x . \
    | tee -a /tmp/perigee-bench.out
  gate MicroBroadcast1000 0
  gate MicroBroadcast10000 0
  gate MicroBroadcast100000 0
  gate MicroDurationPercentile 0
  gate MicroVanillaScoring 1
  gate MicroSubsetScoring 1
  gate WorkloadHour 50000
  # Decision tracing is off in every Micro case; this ceiling pins the
  # untraced engine round so the tracing hooks stay branch-only on the hot
  # path (a per-decision or per-counterfactual allocation would add
  # thousands per round).
  gate MicroEngineRound 2000
  echo "bench.sh: all allocation gates hold"
fi

# Newest committed report other than $OUT, as the regression reference.
REF="$(ls -1 BENCH_*.json 2>/dev/null | grep -vxF "$OUT" | sort -V | tail -1 || true)"
if [[ -n "$REF" ]]; then
  go run ./cmd/perigee-bench -out "$OUT" -diff "$REF" -max-regress "$MAX_REGRESS"
else
  go run ./cmd/perigee-bench -out "$OUT"
fi
