#!/usr/bin/env bash
# bench.sh — run the hot-path micro-benchmark suite and refresh the
# machine-readable bench report (BENCH_PR4.json).
#
# Usage:
#   scripts/bench.sh            # go-test Micro pass + JSON report
#   scripts/bench.sh --json     # JSON report only (skip the go-test pass)
#
# The go-test pass prints the familiar -benchmem table and enforces the
# zero-allocation contract on the broadcast hot path; the perigee-bench
# pass rewrites the "results" section of BENCH_PR4.json while preserving
# its committed "baseline" section.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR4.json}"

if [[ "${1:-}" != "--json" ]]; then
  go test -run '^$' -bench=Micro -benchmem -benchtime=100x . | tee /tmp/perigee-bench.out
  line="$(grep -E '^BenchmarkMicroBroadcast1000(-[0-9]+)?[[:space:]]' /tmp/perigee-bench.out || true)"
  if [[ -z "$line" ]]; then
    echo "bench.sh: BenchmarkMicroBroadcast1000 missing from output" >&2
    exit 1
  fi
  allocs="$(awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' <<<"$line")"
  if [[ "$allocs" != "0" ]]; then
    echo "bench.sh: BenchmarkMicroBroadcast1000 reports $allocs allocs/op, want 0" >&2
    exit 1
  fi
  echo "bench.sh: broadcast hot path is allocation-free"
fi

go run ./cmd/perigee-bench -out "$OUT"
