#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of cmd/perigee-serve over real
# HTTP: build the binary with the race detector, start it, submit the same
# quick scenario twice (the second submission must be answered from the
# result cache with the same job ID), and check the NDJSON event stream
# delivers exactly the round events the batch configuration implies
# (trials × rounds per arm) plus a terminal status event.
#
# Usage: scripts/serve_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"

go build -race -o /tmp/perigee-serve ./cmd/perigee-serve
/tmp/perigee-serve -addr "$ADDR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' >/dev/null
echo "serve_smoke: healthz ok"

curl -fsS "$BASE/scenarios" | jq -e 'map(.id) | index("figure3a") != null' >/dev/null
echo "serve_smoke: scenario registry served"

TRIALS=2
ROUNDS=3
BODY="{\"scenario\":\"figure3a\",\"quick\":true,\"options\":{\"nodes\":60,\"trials\":${TRIALS},\"rounds\":${ROUNDS},\"round_blocks\":15,\"mean_validation_ms\":50,\"trace_level\":\"decisions\",\"counterfactual_k\":2}}"

FIRST="$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' -d "$BODY")"
JOB_ID="$(jq -r '.id' <<<"$FIRST")"
jq -e '.cache_hit == false' <<<"$FIRST" >/dev/null \
  || { echo "serve_smoke: first submission claims a cache hit" >&2; exit 1; }
echo "serve_smoke: submitted $JOB_ID"

STATUS=""
for _ in $(seq 1 300); do
  STATUS="$(curl -fsS "$BASE/jobs/$JOB_ID" | jq -r '.status')"
  [ "$STATUS" = "done" ] && break
  if [ "$STATUS" = "failed" ]; then
    curl -fsS "$BASE/jobs/$JOB_ID" | jq . >&2
    exit 1
  fi
  sleep 0.2
done
[ "$STATUS" = "done" ] || { echo "serve_smoke: job never finished" >&2; exit 1; }
echo "serve_smoke: job done"

SECOND="$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' -d "$BODY")"
jq -e '.cache_hit == true' <<<"$SECOND" >/dev/null \
  || { echo "serve_smoke: resubmission was not a cache hit" >&2; exit 1; }
[ "$(jq -r '.id' <<<"$SECOND")" = "$JOB_ID" ] \
  || { echo "serve_smoke: cache hit returned a different job" >&2; exit 1; }
echo "serve_smoke: identical resubmission answered from cache"

# The finished job's result must carry the counterfactual regret summaries.
curl -fsS "$BASE/jobs/$JOB_ID" | jq -e '.result.Regret | length > 0' >/dev/null \
  || { echo "serve_smoke: traced result has no regret summaries" >&2; exit 1; }

# Stream the event log and check it against what the batch configuration
# runs: Vanilla/Subset broadcast trials × rounds rounds, UCB runs
# trials × rounds × round_blocks single-block rounds (the harness matches
# block budgets across variants), the traced arms emit decision records,
# and the stream ends with a terminal status event.
ROUND_BLOCKS=15
curl -fsS "$BASE/jobs/$JOB_ID/events" >/tmp/serve-smoke-events.ndjson
python3 - "$TRIALS" "$ROUNDS" "$ROUND_BLOCKS" /tmp/serve-smoke-events.ndjson <<'PY'
import json
import sys

trials, rounds, blocks = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
per_arm, traces, last = {}, 0, None
with open(sys.argv[4]) as f:
    for line in f:
        ev = json.loads(line)
        if ev["kind"] == "round":
            per_arm[ev["arm"]] = per_arm.get(ev["arm"], 0) + 1
        elif ev["kind"] == "trace":
            traces += 1
        last = ev["kind"]

if not per_arm:
    sys.exit("no round events streamed")
for arm, n in sorted(per_arm.items()):
    want = trials * rounds * (blocks if arm == "Perigee-UCB" else 1)
    if n != want:
        sys.exit(f"arm {arm}: streamed {n} round events, batch config runs {want}")
    print(f"serve_smoke: arm {arm}: {n}/{want} round events")
if traces == 0:
    sys.exit("no trace events streamed for a traced job")
if last != "status":
    sys.exit(f"stream ended with {last!r}, want terminal status event")
print(f"serve_smoke: {traces} trace events, terminal status seen")
PY

echo "serve_smoke: ok"
