package perigee

import (
	"fmt"
	"io"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/trace"
)

// TraceLevel selects how much of each round's neighbor-selection decision
// is recorded; see the constants and WithTraceLevel.
type TraceLevel int

// The decision-trace detail levels.
const (
	// TraceOff (the default) records nothing; the decision path stays
	// allocation-free.
	TraceOff TraceLevel = TraceLevel(core.TraceOff)
	// TraceDecisions records every keep/drop/dial decision with the
	// decision-time neighbor scores.
	TraceDecisions TraceLevel = TraceLevel(core.TraceDecisions)
	// TraceInputs additionally records the decision's inputs: the full
	// per-neighbor observation rows and censoring counts.
	TraceInputs TraceLevel = TraceLevel(core.TraceInputs)
)

// TraceRecord is one recorded decision or counterfactual evaluation; see
// the internal/trace package docs for the NDJSON field semantics.
type TraceRecord = trace.Record

// TraceSummary aggregates counterfactual regret per round for one
// selector; render it with its Render method.
type TraceSummary = trace.Summary

// WithTraceLevel enables decision tracing: every per-node keep/drop/dial
// decision is recorded and available from Network.Trace after the run.
// Default TraceOff, which keeps the broadcast and decision paths
// allocation-free.
func WithTraceLevel(l TraceLevel) Option {
	return func(s *settings) error {
		if !core.TraceLevel(l).Valid() {
			return fmt.Errorf("perigee: unknown trace level %d", int(l))
		}
		s.traceLevel = core.TraceLevel(l)
		return nil
	}
}

// WithCounterfactualK additionally evaluates, for each traced decision, the
// top-k dropped alternatives counterfactually: the next round measures what
// the rejected neighbor's one-hop relay would have delivered, and the trace
// reports the per-decision regret (worst kept score minus the alternative's
// counterfactual score). Requires WithTraceLevel; k must be non-negative.
// Default 0 (no counterfactuals).
func WithCounterfactualK(k int) Option {
	return func(s *settings) error {
		if k < 0 {
			return fmt.Errorf("perigee: counterfactual k %d must be non-negative", k)
		}
		s.counterfactualK = k
		return nil
	}
}

// Trace returns the decision-trace records recorded so far, in the
// deterministic emission order (counterfactuals of round R precede the
// decisions of round R+1, nodes ascending). Nil when tracing is off.
func (n *Network) Trace() []TraceRecord {
	if n.traceCollector == nil {
		return nil
	}
	return n.traceCollector.Records()
}

// TraceSummary aggregates the recorded counterfactual regret per round.
// Nil when tracing is off.
func (n *Network) TraceSummary() *TraceSummary {
	if n.traceCollector == nil {
		return nil
	}
	return trace.Summarize(n.traceCollector.Selector, n.traceCollector.Records())
}

// WriteTrace streams the recorded trace as NDJSON, one record per line —
// the same format cmd/perigee-serve streams over HTTP. An untraced network
// writes nothing.
func (n *Network) WriteTrace(w io.Writer) error {
	if n.traceCollector == nil {
		return nil
	}
	return trace.WriteNDJSON(w, n.traceCollector.Records())
}
