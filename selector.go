package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/stats"
)

// Censored marks a block a neighbor never delivered inside the
// observation window. Offsets with this value are right-censored by the
// built-in scoring rules.
const Censored = stats.InfDuration

// Observations holds one node's measurements for one decision round: for
// each current outgoing neighbor, the time-normalized arrival offset of
// each observed block (t̃ = t(u,v) − min over all neighbors of t(·,v),
// §4.2.1 of the paper). Offsets[b][i] is block b's offset from neighbor
// Neighbors[i]; Censored marks a block that neighbor never delivered.
type Observations struct {
	// Neighbors are opaque keys for the outgoing neighbors being scored.
	Neighbors []int
	// Offsets[b][i] is the offset of block b from neighbor Neighbors[i].
	Offsets [][]time.Duration
}

// NeighborView is the per-node, per-round input handed to a Selector: the
// raw arrival observations plus the protocol context a decision may
// depend on. The same view shape is produced by both drivers of the
// decision loop — the simulator (New) and the live TCP node
// (perigee/node) — so one Selector runs unmodified in either environment.
type NeighborView struct {
	// Node is the driver-assigned stable key of the deciding node: the
	// node index in the simulator, the two's-complement view of the
	// 64-bit node ID on a live node. Stateful selectors key cross-round
	// state by it.
	Node int
	// OutDegree is the target number of outgoing connections.
	OutDegree int
	// Candidates is how many distinct peers the driver could dial beyond
	// the current neighbors (network size minus one in the simulator, the
	// address-book size on a live node). Informational.
	Candidates int
	// Observations holds the round's per-neighbor arrival offsets.
	Observations Observations
	// Rand is a deterministic random stream derived for this
	// (node, round) pair. Randomized selectors must draw from it — and
	// only it — so simulated runs stay reproducible at any worker count.
	Rand *Rand
}

// Decision is a Selector's verdict for one node and one round. Keep and
// Drop index into the view's Observations.Neighbors and must partition
// it: every neighbor index appears in exactly one of the two lists. Dial
// is the exploration budget — how many fresh connections the driver
// should attempt to establish.
type Decision struct {
	// Keep lists the neighbor indices to retain.
	Keep []int
	// Drop lists the neighbor indices to disconnect, in the order the
	// driver should report them.
	Drop []int
	// Dial is the number of new connections to attempt.
	Dial int
}

// Selector is Perigee's decision loop abstracted from its environment:
// per-neighbor block-arrival observations in, keep/drop/dial decisions
// out (§4). The simulator (WithSelector) and the live TCP node
// (node.WithSelector) drive the same interface, so a custom policy runs
// against both without modification.
//
// Drivers may invoke SelectNeighbors concurrently for distinct nodes;
// implementations holding cross-round state must synchronize it and key
// it by view.Node. Randomized policies must draw from view.Rand so
// simulated runs stay bit-for-bit reproducible. Stateful selectors should
// also implement NodeStateResetter so churned nodes restart clean.
type Selector interface {
	SelectNeighbors(view NeighborView) (Decision, error)
}

// SelectorFunc adapts a plain function to the Selector interface.
type SelectorFunc func(view NeighborView) (Decision, error)

// SelectNeighbors implements Selector.
func (f SelectorFunc) SelectNeighbors(view NeighborView) (Decision, error) { return f(view) }

// NodeStateResetter is implemented by stateful Selectors (such as
// UCBSelector) that accumulate per-node history across rounds. Drivers
// call ResetNodeState when a node's identity is reset — e.g. churn
// replacing it with a fresh peer — so stale history cannot leak into the
// replacement.
type NodeStateResetter interface {
	ResetNodeState(node int)
}

// Decide runs the selector on the view and validates the decision (Keep
// and Drop partition the neighbor indices, Dial is non-negative) — the
// same checks both drivers apply. It is exported so custom selectors can
// be unit-tested against the exact contract the drivers enforce.
func Decide(sel Selector, view NeighborView) (Decision, error) {
	d, err := sel.SelectNeighbors(view)
	if err != nil {
		return Decision{}, fmt.Errorf("perigee: selector for node %d: %w", view.Node, err)
	}
	if err := core.ValidateDecision(core.Decision(d), len(view.Observations.Neighbors)); err != nil {
		return Decision{}, fmt.Errorf("perigee: selector for node %d: %w", view.Node, err)
	}
	return d, nil
}

// SubsetSelector returns the paper's preferred policy (§4.3): each round
// it keeps the OutDegree−explore neighbors whose joint delivery profile
// is fastest at the given percentile, drops the rest, and dials back up
// to OutDegree. Invalid parameters are reported when the selector is
// installed (WithSelector, node.WithSelector) or first used.
func SubsetSelector(explore int, percentile float64) Selector {
	sel, err := core.NewSubsetSelector(explore, percentile)
	return &builtinSelector{sel: sel, err: err}
}

// VanillaSelector returns the §4.2.1 policy: each round it keeps the
// OutDegree−explore neighbors with the best independent percentile
// scores, drops the rest, and dials back up to OutDegree.
func VanillaSelector(explore int, percentile float64) Selector {
	sel, err := core.NewVanillaSelector(explore, percentile)
	return &builtinSelector{sel: sel, err: err}
}

// UCBSelector returns the §4.2.2 policy: per-neighbor confidence
// intervals over offsets accumulated across rounds, evicting at most one
// neighbor per round when the intervals separate. It is stateful — give
// each independent run its own instance — and implements
// NodeStateResetter so churned nodes restart with no history.
func UCBSelector(percentile float64, confidence time.Duration) Selector {
	sel, err := core.NewUCBSelector(percentile, confidence)
	return &builtinSelector{sel: sel, err: err}
}

// RandomSelector returns the random-rotation baseline the paper compares
// against: each round it keeps a uniformly random OutDegree−explore
// subset of the current neighbors and dials fresh peers for the rest.
func RandomSelector(explore int) Selector {
	sel, err := core.NewRandomSelector(explore)
	return &builtinSelector{sel: sel, err: err}
}

// builtinSelector wraps a core selector as a public Selector. The
// exported methods on the unexported type let the drivers (New here, and
// the perigee/node package) unwrap the core implementation and fail fast
// on construction errors without exposing internal types in the API.
type builtinSelector struct {
	sel core.Selector
	err error
}

func (b *builtinSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	if b.err != nil {
		return Decision{}, b.err
	}
	d, err := b.sel.SelectNeighbors(coreView(view))
	return Decision(d), err
}

// CoreSelector exposes the wrapped core implementation to the drivers.
func (b *builtinSelector) CoreSelector() core.Selector { return b.sel }

// SelectorError reports a constructor-argument error, letting drivers
// fail fast at build time instead of on the first round.
func (b *builtinSelector) SelectorError() error { return b.err }

// ResetNodeState forwards churn resets to stateful core selectors.
func (b *builtinSelector) ResetNodeState(node int) {
	if r, ok := b.sel.(core.NodeStateResetter); ok {
		r.ResetNodeState(node)
	}
}

func coreView(view NeighborView) core.NeighborView {
	return core.NeighborView{
		Node:       view.Node,
		OutDegree:  view.OutDegree,
		Candidates: view.Candidates,
		Obs: core.Observations{
			Neighbors: view.Observations.Neighbors,
			Offsets:   view.Observations.Offsets,
		},
		Rand: view.Rand,
	}
}

func publicView(view core.NeighborView) NeighborView {
	return NeighborView{
		Node:       view.Node,
		OutDegree:  view.OutDegree,
		Candidates: view.Candidates,
		Observations: Observations{
			Neighbors: view.Obs.Neighbors,
			Offsets:   view.Obs.Offsets,
		},
		Rand: view.Rand,
	}
}

// selectorBridge adapts a user-implemented public Selector to the core
// interface the engine drives.
type selectorBridge struct {
	inner Selector
}

func (sb selectorBridge) SelectNeighbors(view core.NeighborView) (core.Decision, error) {
	d, err := sb.inner.SelectNeighbors(publicView(view))
	return core.Decision(d), err
}

func (sb selectorBridge) ResetNodeState(node int) {
	if r, ok := sb.inner.(NodeStateResetter); ok {
		r.ResetNodeState(node)
	}
}

// toCoreSelector resolves a public Selector for a driver: built-ins
// unwrap to their core implementation (after surfacing construction
// errors); custom selectors are bridged.
func toCoreSelector(s Selector) (core.Selector, error) {
	if b, ok := s.(interface {
		CoreSelector() core.Selector
		SelectorError() error
	}); ok {
		if err := b.SelectorError(); err != nil {
			return nil, err
		}
		return b.CoreSelector(), nil
	}
	return selectorBridge{inner: s}, nil
}
