package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/adversary"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/trace"
)

// Option configures a Network under construction; see New. Options
// compose: each axis of the simulated environment (latency, power,
// validation, topology, dynamics) is an independent pluggable model, so a
// new scenario is a new combination of options rather than a new library
// enum.
type Option func(*settings) error

// settings accumulates option values before the network is built. Explicit
// zero values are honored (the options API has no zero-value ambiguity):
// exploreSet/roundBlocksSet record whether the caller chose a value.
type settings struct {
	seed           uint64
	scoring        Scoring
	outDegree      int
	maxIncoming    int
	explore        int
	exploreSet     bool
	roundBlocks    int
	roundBlocksSet bool
	percentile     float64
	workers        int
	latencyMode    LatencyMode
	obsWindow      int
	shards         int

	workloadProc  ArrivalProcess
	blockInterval time.Duration
	traceFile     string

	traceLevel      core.TraceLevel
	counterfactualK int

	selector      Selector
	latency       LatencyModel
	power         PowerDist
	validation    ValidationDist
	seeder        TopologySeeder
	dynamics      Dynamics
	observers     []Observer
	adversary     Adversary
	adversaryFrac float64
}

func defaultSettings() *settings {
	return &settings{
		seed:        1,
		scoring:     ScoringSubset,
		outDegree:   8,
		maxIncoming: 20,
		percentile:  0.9,
	}
}

// WithSeed roots all randomness at the given seed; equal seeds reproduce
// runs bit-for-bit. Default 1.
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithScoring selects the Perigee scoring variant — a thin constructor
// over the Selector API: WithScoring(s) is equivalent to installing the
// corresponding built-in (SubsetSelector, VanillaSelector, UCBSelector)
// configured with the network's explore count and percentile.
// WithSelector is the general option; use it for custom policies. Default
// ScoringSubset, the paper's preferred rule.
func WithScoring(scoring Scoring) Option {
	return func(s *settings) error {
		switch scoring {
		case ScoringVanilla, ScoringUCB, ScoringSubset:
			s.scoring = scoring
			return nil
		default:
			return fmt.Errorf("perigee: unknown scoring variant %d", int(scoring))
		}
	}
}

// WithOutDegree sets the number of outgoing connections each node keeps
// (paper: 8).
func WithOutDegree(d int) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("perigee: out-degree %d must be positive", d)
		}
		s.outDegree = d
		return nil
	}
}

// WithMaxIncoming caps incoming connections per node (paper: 20).
func WithMaxIncoming(m int) Option {
	return func(s *settings) error {
		if m <= 0 {
			return fmt.Errorf("perigee: incoming cap %d must be positive", m)
		}
		s.maxIncoming = m
		return nil
	}
}

// WithExplore sets the number of random exploration links per round
// (paper: 2). Unlike the legacy Config shim, WithExplore(0) is an honored,
// explicit request for zero exploration. Default 2 (0 under ScoringUCB,
// which replaces neighbors through confidence-interval evictions instead).
func WithExplore(e int) Option {
	return func(s *settings) error {
		if e < 0 {
			return fmt.Errorf("perigee: explore count %d must be non-negative", e)
		}
		s.explore = e
		s.exploreSet = true
		return nil
	}
}

// WithRoundBlocks sets |B|, the number of blocks broadcast per round
// (paper: 100). Default 100 (1 under ScoringUCB, whose rounds span a
// single block).
func WithRoundBlocks(b int) Option {
	return func(s *settings) error {
		if b <= 0 {
			return fmt.Errorf("perigee: round blocks %d must be positive", b)
		}
		s.roundBlocks = b
		s.roundBlocksSet = true
		return nil
	}
}

// WithPercentile sets the scoring quantile in (0, 1] (paper: 0.9).
func WithPercentile(p float64) Option {
	return func(s *settings) error {
		if p <= 0 || p > 1 {
			return fmt.Errorf("perigee: percentile %v outside (0, 1]", p)
		}
		s.percentile = p
		return nil
	}
}

// WithWorkers bounds the goroutines used for round broadcasts and delay
// evaluation. Zero (the default) means one worker per available core;
// results are bit-for-bit identical for any worker count.
func WithWorkers(w int) Option {
	return func(s *settings) error {
		s.workers = w
		return nil
	}
}

// LatencyMode selects how the simulator evaluates per-edge link delays;
// see the constants. Delays are bit-for-bit identical in every mode — the
// choice trades memory for per-event compute.
type LatencyMode int

// The latency evaluation modes.
const (
	// LatencyAuto (the default) picks by network size: precomputed below
	// the streaming threshold (20k nodes), streaming at or above it.
	LatencyAuto LatencyMode = LatencyMode(latency.Auto)
	// LatencyPrecomputed materializes every edge's delay into a flat array
	// when the topology is (re)built — O(E) memory, fastest per event.
	LatencyPrecomputed LatencyMode = LatencyMode(latency.Precomputed)
	// LatencyStreaming evaluates the latency model on the fly at every
	// delivery — O(1) latency memory, for 100k+-node runs. The model must
	// be safe for concurrent reads (all built-in models are).
	LatencyStreaming LatencyMode = LatencyMode(latency.Streaming)
)

// WithLatencyMode overrides the automatic precomputed-vs-streaming latency
// decision; see LatencyMode. Default LatencyAuto.
func WithLatencyMode(m LatencyMode) Option {
	return func(s *settings) error {
		if !latency.Mode(m).Valid() {
			return fmt.Errorf("perigee: unknown latency mode %d", int(m))
		}
		s.latencyMode = m
		return nil
	}
}

// WithObservationWindow bounds each node's per-round observation memory to
// the last w blocks of the round: selectors score an out-degree × w ring
// instead of the full out-degree × RoundBlocks matrix, and the skipped
// blocks' broadcasts are elided entirely (blocks are independent, so the
// retained observations are bit-for-bit identical to a dense run's last w
// rows). This is the memory/CPU lever for 100k+-node runs; windows below
// RoundBlocks trade observation count per round for speed the same way a
// smaller RoundBlocks would, without changing the round's mining schedule
// or exploration randomness. Zero (the default) keeps dense observations.
func WithObservationWindow(w int) Option {
	return func(s *settings) error {
		if w < 0 {
			return fmt.Errorf("perigee: observation window %d must be non-negative", w)
		}
		s.obsWindow = w
		return nil
	}
}

// WithShards partitions the nodes into k contiguous shards and runs each
// block's broadcast as a conservative windowed parallel simulation across
// them (lookahead = the minimum cross-shard link delay). Results are
// bit-for-bit identical at any shard count; topologies with a zero-delay
// cross-shard link fall back to single-shard execution. Zero or 1 (the
// default) uses the single-queue broadcast path.
func WithShards(k int) Option {
	return func(s *settings) error {
		if k < 0 {
			return fmt.Errorf("perigee: shard count %d must be non-negative", k)
		}
		s.shards = k
		return nil
	}
}

// WithWorkload selects the arrival process RunWorkload uses to schedule
// block production: PoissonArrivals (the default), GammaArrivals,
// WeibullArrivals, or any custom ArrivalProcess. Ignored when
// WithTraceFile replays a recorded trace.
func WithWorkload(p ArrivalProcess) Option {
	return func(s *settings) error {
		if p == nil {
			return fmt.Errorf("perigee: nil arrival process")
		}
		s.workloadProc = p
		return nil
	}
}

// WithBlockInterval sets the mean block inter-arrival time for RunWorkload
// (default 2s). Shorter intervals relative to propagation delay raise the
// fork and stale-block rates; the interval also paces topology rounds
// (one per RoundBlocks × interval of simulated time).
func WithBlockInterval(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("perigee: block interval %v must be positive", d)
		}
		s.blockInterval = d
		return nil
	}
}

// WithTraceFile replays a recorded arrival trace (a JSON TraceFile written
// by the forks scenario's RecordTrace option or the workload codec) in
// place of a generated process: RunWorkload consumes exactly the recorded
// events, reproducing the recorded run's workload bit-for-bit. The file's
// node count must match the network size.
func WithTraceFile(path string) Option {
	return func(s *settings) error {
		if path == "" {
			return fmt.Errorf("perigee: empty trace-file path")
		}
		s.traceFile = path
		return nil
	}
}

// WithSelector installs the neighbor-selection policy driving every
// node's per-round keep/drop/dial decision; see Selector. It is the
// general form of WithScoring and accepts both the built-in policies
// (SubsetSelector, VanillaSelector, UCBSelector, RandomSelector) and any
// custom implementation — the same value plugs into a live node via
// node.WithSelector. When a selector is installed it owns the decision
// policy: WithScoring, WithExplore, and WithPercentile no longer
// influence which neighbors are kept or how many fresh links are dialed.
func WithSelector(sel Selector) Option {
	return func(s *settings) error {
		if sel == nil {
			return fmt.Errorf("perigee: nil selector")
		}
		if e, ok := sel.(interface{ SelectorError() error }); ok {
			if err := e.SelectorError(); err != nil {
				return err
			}
		}
		s.selector = sel
		return nil
	}
}

// WithLatency plugs in a custom link-delay model (a measured matrix via
// LatencyMatrix, or any LatencyModel implementation). The model must cover
// at least the network size. Default: the paper's geographic model,
// re-sampled from the seed.
func WithLatency(m LatencyModel) Option {
	return func(s *settings) error {
		if m == nil {
			return fmt.Errorf("perigee: nil latency model")
		}
		s.latency = m
		return nil
	}
}

// WithPower plugs in the mining-power distribution. Default UniformPower.
func WithPower(p PowerDist) Option {
	return func(s *settings) error {
		if p == nil {
			return fmt.Errorf("perigee: nil power distribution")
		}
		s.power = p
		return nil
	}
}

// WithValidation plugs in the per-node block validation delay
// distribution. Default FixedValidation(50ms), the paper's setting.
func WithValidation(v ValidationDist) Option {
	return func(s *settings) error {
		if v == nil {
			return fmt.Errorf("perigee: nil validation distribution")
		}
		s.validation = v
		return nil
	}
}

// WithTopologySeeder plugs in the initial topology construction. Default
// RandomSeeder, the paper's random starting point.
func WithTopologySeeder(ts TopologySeeder) Option {
	return func(s *settings) error {
		if ts == nil {
			return fmt.Errorf("perigee: nil topology seeder")
		}
		s.seeder = ts
		return nil
	}
}

// WithDynamics installs a per-round environment mutation hook (node churn,
// adversary injection, ...); see Dynamics.
func WithDynamics(d Dynamics) Option {
	return func(s *settings) error {
		if d == nil {
			return fmt.Errorf("perigee: nil dynamics")
		}
		s.dynamics = d
		return nil
	}
}

// WithObserver attaches a streaming round observer; see Observer. May be
// given multiple times — observers run in registration order.
func WithObserver(o Observer) Option {
	return func(s *settings) error {
		if o == nil {
			return fmt.Errorf("perigee: nil observer")
		}
		s.observers = append(s.observers, o)
		return nil
	}
}

// New builds a simulated Perigee network of the given size from composable
// options:
//
//	net, err := perigee.New(300,
//	    perigee.WithSeed(42),
//	    perigee.WithPower(perigee.PoolsPower(0.1, 0.9)),
//	    perigee.WithObserver(perigee.ObserverFunc(func(n *perigee.Network, s perigee.RoundStats) {
//	        log.Printf("round %d: %d connections swapped", s.Summary.Round, s.Summary.ConnectionsDropped)
//	    })),
//	)
//
// Every unset axis takes the paper's evaluation default: geographic
// latency, uniform hash power, 50ms fixed validation, a random topology,
// Subset scoring with out-degree 8 and 2 exploration links. Networks built
// here are bit-for-bit identical to equivalent legacy Config networks
// built with NewFromConfig.
func New(nodes int, opts ...Option) (*Network, error) {
	if nodes < 10 {
		return nil, fmt.Errorf("perigee: need at least 10 nodes, got %d", nodes)
	}
	s := defaultSettings()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("perigee: nil option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.outDegree >= nodes {
		return nil, fmt.Errorf("perigee: out-degree %d must be below the network size %d", s.outDegree, nodes)
	}

	root := rng.New(s.seed)

	lat := s.latency
	if lat == nil {
		var err error
		lat, err = GeographicLatency(nodes, s.seed)
		if err != nil {
			return nil, err
		}
	}
	if lat.N() < nodes {
		return nil, fmt.Errorf("perigee: latency model covers %d nodes, need %d", lat.N(), nodes)
	}

	seeder := s.seeder
	if seeder == nil {
		seeder = RandomSeeder()
	}
	seed, err := seeder.SeedTopology(nodes, s.outDegree, s.maxIncoming, root.Derive("topology"))
	if err != nil {
		return nil, fmt.Errorf("perigee: seeding topology: %w", err)
	}
	table, err := tableFromSeed(seed, nodes, s.outDegree, s.maxIncoming)
	if err != nil {
		return nil, err
	}

	powerDist := s.power
	if powerDist == nil {
		powerDist = UniformPower()
	}
	power, err := powerDist.Power(nodes, root.Derive("power"))
	if err != nil {
		return nil, fmt.Errorf("perigee: sampling power: %w", err)
	}
	if len(power) != nodes {
		return nil, fmt.Errorf("perigee: power distribution returned %d values, want %d", len(power), nodes)
	}

	validation := s.validation
	if validation == nil {
		validation = FixedValidation(50 * time.Millisecond)
	}
	forward, err := validation.Validation(nodes, root.Derive("validation"))
	if err != nil {
		return nil, fmt.Errorf("perigee: sampling validation delays: %w", err)
	}
	if len(forward) != nodes {
		return nil, fmt.Errorf("perigee: validation distribution returned %d values, want %d", len(forward), nodes)
	}

	params := core.DefaultParams(s.scoring.method())
	params.OutDegree = s.outDegree
	params.Percentile = s.percentile
	if s.exploreSet {
		params.Explore = s.explore
	}
	if s.roundBlocksSet {
		params.RoundBlocks = s.roundBlocks
	}

	// Resolve the decision policy: an explicit Selector wins; otherwise
	// the scoring variant builds the equivalent built-in selector, so the
	// engine is always selector-driven.
	var coreSel core.Selector
	if s.selector != nil {
		coreSel, err = toCoreSelector(s.selector)
	} else {
		coreSel, err = core.SelectorFromMethod(s.scoring.method(), params)
	}
	if err != nil {
		return nil, err
	}

	if s.counterfactualK > 0 && s.traceLevel == core.TraceOff {
		return nil, fmt.Errorf("perigee: WithCounterfactualK(%d) requires WithTraceLevel", s.counterfactualK)
	}

	net := &Network{
		scoring:       s.scoring,
		observers:     s.observers,
		dynamics:      s.dynamics,
		workloadProc:  s.workloadProc,
		blockInterval: s.blockInterval,
		traceFile:     s.traceFile,
		workloadRand:  root.Derive("workload"),
	}
	if s.traceLevel > core.TraceOff {
		net.traceCollector = &trace.Collector{Selector: s.scoring.method().String()}
	}
	cfg := core.Config{
		Method:   s.scoring.method(),
		Params:   params,
		Selector: coreSel,
		Table:    table,
		Latency:  lat,
		Forward:  forward,
		Power:    power,
		Rand:     root.Derive("engine"),
		Workers:  s.workers,

		LatencyMode:       latency.Mode(s.latencyMode),
		ObservationWindow: s.obsWindow,
		Shards:            s.shards,
	}
	if net.traceCollector != nil {
		cfg.Trace = core.TraceConfig{
			Level:           s.traceLevel,
			CounterfactualK: s.counterfactualK,
			Sink:            net.traceCollector,
		}
	}
	if len(s.observers) > 0 {
		cfg.Observer = &observerBridge{net: net}
	}
	if s.dynamics != nil {
		cfg.Dynamics = &dynamicsBridge{net: net}
		net.dynRand = root.Derive("dynamics")
	}
	if s.adversary != nil {
		advs, err := adversary.Sample(nodes, s.adversaryFrac, root.Derive("adversary"))
		if err != nil {
			return nil, fmt.Errorf("perigee: sampling adversaries: %w", err)
		}
		bind, err := adversary.Bind(s.adversary, nodes, advs, lat, forward, root.Derive("adversary-strategy"))
		if err != nil {
			return nil, fmt.Errorf("perigee: adversary %s: %w", s.adversary.Name(), err)
		}
		// The binding owns the behavior tables and chains its per-round
		// agent after any user dynamics already configured.
		bind.Apply(&cfg)
		net.adversaryEnv = bind.Env
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	net.engine = engine
	return net, nil
}
