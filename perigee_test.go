package perigee

import (
	"testing"
	"time"
)

func TestScoringString(t *testing.T) {
	if ScoringVanilla.String() != "Perigee-Vanilla" {
		t.Fatalf("got %q", ScoringVanilla.String())
	}
	if ScoringUCB.String() != "Perigee-UCB" {
		t.Fatalf("got %q", ScoringUCB.String())
	}
	if ScoringSubset.String() != "Perigee-Subset" {
		t.Fatalf("got %q", ScoringSubset.String())
	}
}

func TestNewValidatesSize(t *testing.T) {
	if _, err := New(Config{Nodes: 3}); err == nil {
		t.Fatal("expected error for tiny network")
	}
}

func TestNetworkLifecycle(t *testing.T) {
	cfg := DefaultConfig(60)
	cfg.RoundBlocks = 10
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := net.BroadcastDelays(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 60 {
		t.Fatalf("got %d delays, want 60", len(before))
	}
	sum, err := net.Step()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Round != 1 || sum.Blocks != 10 {
		t.Fatalf("round summary %+v", sum)
	}
	if sum.ConnectionsDropped == 0 || sum.ConnectionsAdded == 0 {
		t.Fatalf("round should churn connections: %+v", sum)
	}
	if err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", net.Rounds())
	}
	if got := len(net.OutNeighbors(0)); got != 8 {
		t.Fatalf("out-degree %d, want 8", got)
	}
	adj := net.Adjacency()
	if len(adj) != 60 {
		t.Fatalf("adjacency covers %d nodes", len(adj))
	}
}

func TestNetworkDeterministicAcrossRuns(t *testing.T) {
	build := func() []time.Duration {
		cfg := DefaultConfig(50)
		cfg.RoundBlocks = 5
		cfg.Seed = 99
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Run(2); err != nil {
			t.Fatal(err)
		}
		ds, err := net.BroadcastDelays(0.9)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d delay differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHashPowerVariants(t *testing.T) {
	for _, hp := range []HashPower{PowerUniform, PowerExponential, PowerPools} {
		cfg := DefaultConfig(50)
		cfg.HashPower = hp
		cfg.RoundBlocks = 5
		net, err := New(cfg)
		if err != nil {
			t.Fatalf("hash power %d: %v", hp, err)
		}
		if _, err := net.Step(); err != nil {
			t.Fatalf("hash power %d: %v", hp, err)
		}
	}
}

func TestScoringVariants(t *testing.T) {
	for _, s := range []Scoring{ScoringVanilla, ScoringUCB, ScoringSubset} {
		cfg := DefaultConfig(50)
		cfg.Scoring = s
		cfg.RoundBlocks = 5
		net, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if _, err := net.Step(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) == 0 {
		t.Fatal("no experiments exposed")
	}
	opt := QuickExperimentOptions()
	opt.Nodes = 300
	opt.Trials = 1
	res, err := RunExperiment("figure1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "figure1" || res.Render() == "" {
		t.Fatal("experiment facade broken")
	}
	if _, err := RunExperiment("bogus", opt); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestDefaultExperimentOptionsScale(t *testing.T) {
	opt := DefaultExperimentOptions()
	if opt.Nodes != 1000 || opt.Trials != 3 {
		t.Fatalf("default experiment options changed: %+v", opt)
	}
}
