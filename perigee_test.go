package perigee

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestScoringString(t *testing.T) {
	if ScoringVanilla.String() != "Perigee-Vanilla" {
		t.Fatalf("got %q", ScoringVanilla.String())
	}
	if ScoringUCB.String() != "Perigee-UCB" {
		t.Fatalf("got %q", ScoringUCB.String())
	}
	if ScoringSubset.String() != "Perigee-Subset" {
		t.Fatalf("got %q", ScoringSubset.String())
	}
}

func TestNewValidatesSize(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Fatal("expected error for tiny network")
	}
	if _, err := NewFromConfig(Config{Nodes: 3}); err == nil {
		t.Fatal("expected error for tiny network via config shim")
	}
}

func TestNetworkLifecycle(t *testing.T) {
	net, err := New(60, WithRoundBlocks(10))
	if err != nil {
		t.Fatal(err)
	}
	before, err := net.BroadcastDelays(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 60 {
		t.Fatalf("got %d delays, want 60", len(before))
	}
	sum, err := net.Step()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Round != 1 || sum.Blocks != 10 {
		t.Fatalf("round summary %+v", sum)
	}
	if sum.ConnectionsDropped == 0 || sum.ConnectionsAdded == 0 {
		t.Fatalf("round should churn connections: %+v", sum)
	}
	if err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", net.Rounds())
	}
	if got := len(net.OutNeighbors(0)); got != 8 {
		t.Fatalf("out-degree %d, want 8", got)
	}
	if net.Scoring() != ScoringSubset {
		t.Fatalf("scoring = %v, want subset default", net.Scoring())
	}
	adj := net.Adjacency()
	if len(adj) != 60 {
		t.Fatalf("adjacency covers %d nodes", len(adj))
	}
}

func TestNetworkDeterministicAcrossRuns(t *testing.T) {
	build := func() []time.Duration {
		net, err := New(50, WithSeed(99), WithRoundBlocks(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Run(2); err != nil {
			t.Fatal(err)
		}
		ds, err := net.BroadcastDelays(0.9)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d delay differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestOptionsMatchLegacyConfig is the shim equivalence guarantee: a
// network assembled from options is bit-for-bit identical to the same
// network assembled from the legacy Config, across scoring variants and
// power distributions.
func TestOptionsMatchLegacyConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		opts []Option
	}{
		{
			name: "subset-uniform",
			cfg:  Config{Nodes: 60, Seed: 5, Scoring: ScoringSubset, RoundBlocks: 10},
			opts: []Option{WithSeed(5), WithRoundBlocks(10)},
		},
		{
			name: "vanilla-exponential",
			cfg:  Config{Nodes: 60, Seed: 6, Scoring: ScoringVanilla, RoundBlocks: 10, HashPower: PowerExponential},
			opts: []Option{WithSeed(6), WithScoring(ScoringVanilla), WithRoundBlocks(10), WithPower(ExponentialPower())},
		},
		{
			name: "ucb-pools",
			cfg:  Config{Nodes: 60, Seed: 7, Scoring: ScoringUCB, HashPower: PowerPools},
			opts: []Option{WithSeed(7), WithScoring(ScoringUCB), WithPower(PoolsPower(0.1, 0.9))},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := NewFromConfig(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			built, err := New(tc.cfg.Nodes, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, net := range []*Network{legacy, built} {
				if err := net.Run(3); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(legacy.Adjacency(), built.Adjacency()) {
				t.Fatal("adjacency diverges between legacy Config and options builds")
			}
			dLegacy, err := legacy.BroadcastDelays(0.9)
			if err != nil {
				t.Fatal(err)
			}
			dBuilt, err := built.BroadcastDelays(0.9)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dLegacy, dBuilt) {
				t.Fatal("delay metrics diverge between legacy Config and options builds")
			}
		})
	}
}

// TestExploreZeroHonored covers the applyDefaults fix: WithExplore(0) and
// Config{Explore: ExploreNone} both mean zero exploration (no connections
// are dropped or added), while a zero-valued legacy Explore still means
// the default of 2.
func TestExploreZeroHonored(t *testing.T) {
	run := func(t *testing.T, net *Network) RoundSummary {
		t.Helper()
		sum, err := net.Step()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	viaOptions, err := New(50, WithExplore(0), WithRoundBlocks(5))
	if err != nil {
		t.Fatal(err)
	}
	if sum := run(t, viaOptions); sum.ConnectionsDropped != 0 || sum.ConnectionsAdded != 0 {
		t.Fatalf("WithExplore(0) should freeze the topology, got %+v", sum)
	}
	viaConfig, err := NewFromConfig(Config{Nodes: 50, Explore: ExploreNone, RoundBlocks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sum := run(t, viaConfig); sum.ConnectionsDropped != 0 || sum.ConnectionsAdded != 0 {
		t.Fatalf("Explore: ExploreNone should freeze the topology, got %+v", sum)
	}
	legacyDefault, err := NewFromConfig(Config{Nodes: 50, RoundBlocks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sum := run(t, legacyDefault); sum.ConnectionsDropped == 0 {
		t.Fatalf("zero-valued legacy Explore should still default to 2, got %+v", sum)
	}
	if _, err := NewFromConfig(Config{Nodes: 50, Explore: -2}); err == nil {
		t.Fatal("negative explore (other than ExploreNone) should be rejected")
	}
}

func TestArgumentValidation(t *testing.T) {
	net, err := New(50, WithRoundBlocks(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := net.BroadcastDelays(frac); err == nil || !strings.Contains(err.Error(), "outside (0, 1]") {
			t.Fatalf("BroadcastDelays(%v) = %v, want clear range error", frac, err)
		}
	}
	for _, p := range []float64{-0.1, 1.5} {
		if _, err := NewFromConfig(Config{Nodes: 50, Percentile: p}); err == nil {
			t.Fatalf("Config.Percentile=%v should be rejected", p)
		}
		if _, err := New(50, WithPercentile(p)); err == nil {
			t.Fatalf("WithPercentile(%v) should be rejected", p)
		}
	}
	if _, err := New(50, WithPercentile(0)); err == nil {
		t.Fatal("WithPercentile(0) should be rejected")
	}
	if _, err := New(50, WithRoundBlocks(-1)); err == nil {
		t.Fatal("WithRoundBlocks(-1) should be rejected")
	}
	if _, err := NewFromConfig(Config{Nodes: 50, RoundBlocks: -1}); err == nil {
		t.Fatal("Config.RoundBlocks=-1 should be rejected")
	}
}

func TestLatencyMatrixValidation(t *testing.T) {
	if _, err := LatencyMatrix(nil); err == nil {
		t.Fatal("empty matrix should be rejected")
	}
	asym := [][]time.Duration{
		{0, time.Millisecond},
		{2 * time.Millisecond, 0},
	}
	if _, err := LatencyMatrix(asym); err == nil {
		t.Fatal("asymmetric matrix should be rejected")
	}
	diag := [][]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, 0},
	}
	if _, err := LatencyMatrix(diag); err == nil {
		t.Fatal("non-zero diagonal should be rejected")
	}
	small, err := LatencyMatrix([][]time.Duration{{0, time.Millisecond}, {time.Millisecond, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(50, WithLatency(small)); err == nil {
		t.Fatal("undersized latency model should be rejected")
	}
}

// testMatrix builds a deterministic symmetric delay matrix for n nodes.
func testMatrix(n int) [][]time.Duration {
	delays := make([][]time.Duration, n)
	for i := range delays {
		delays[i] = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := time.Duration(5+(i+j)%40) * time.Millisecond
			delays[i][j], delays[j][i] = d, d
		}
	}
	return delays
}

// TestCustomScenarioEndToEnd is the acceptance check for the composable
// API: a measured latency matrix, pooled hash power, and per-round churn
// via Dynamics run entirely through the public surface, and Workers=1 vs
// Workers=8 produce identical results.
func TestCustomScenarioEndToEnd(t *testing.T) {
	lat, err := LatencyMatrix(testMatrix(80))
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int) *Network {
		t.Helper()
		churn := DynamicsFunc(func(ctl *Control, round int) error {
			return ctl.Churn(ctl.Rand().Perm(ctl.N())[:3]...)
		})
		net, err := New(80,
			WithSeed(11),
			WithRoundBlocks(10),
			WithLatency(lat),
			WithPower(PoolsPower(0.1, 0.9)),
			WithDynamics(churn),
			WithWorkers(workers),
		)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	seq, par := build(1), build(8)
	for r := 0; r < 4; r++ {
		sumSeq, err := seq.Step()
		if err != nil {
			t.Fatal(err)
		}
		sumPar, err := par.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sumSeq != sumPar {
			t.Fatalf("round %d summaries diverge across worker counts: %+v vs %+v", r, sumSeq, sumPar)
		}
	}
	if !reflect.DeepEqual(seq.Adjacency(), par.Adjacency()) {
		t.Fatal("adjacency diverges across worker counts under dynamics")
	}
	dSeq, err := seq.BroadcastDelays(0.9)
	if err != nil {
		t.Fatal(err)
	}
	dPar, err := par.BroadcastDelays(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dSeq, dPar) {
		t.Fatal("delay metrics diverge across worker counts under dynamics")
	}
}

// TestObserverStream checks that observers receive every round — from both
// Step and Run — with edge lists matching the summary counts.
func TestObserverStream(t *testing.T) {
	var rounds []int
	obs := ObserverFunc(func(net *Network, s RoundStats) {
		rounds = append(rounds, s.Summary.Round)
		if len(s.DroppedEdges) != s.Summary.ConnectionsDropped {
			t.Errorf("round %d: %d dropped edges vs summary count %d",
				s.Summary.Round, len(s.DroppedEdges), s.Summary.ConnectionsDropped)
		}
		if len(s.AddedEdges) != s.Summary.ConnectionsAdded {
			t.Errorf("round %d: %d added edges vs summary count %d",
				s.Summary.Round, len(s.AddedEdges), s.Summary.ConnectionsAdded)
		}
		if net.Rounds() != s.Summary.Round {
			t.Errorf("observer sees network at round %d during event %d", net.Rounds(), s.Summary.Round)
		}
	})
	net, err := New(50, WithRoundBlocks(5), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Step(); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2, 3}) {
		t.Fatalf("observer saw rounds %v, want [1 2 3]", rounds)
	}
}

func TestDynamicsErrorAborts(t *testing.T) {
	boom := DynamicsFunc(func(ctl *Control, round int) error {
		return fmt.Errorf("boom at round %d", round)
	})
	net, err := New(50, WithRoundBlocks(5), WithDynamics(boom))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Step(); err == nil || !strings.Contains(err.Error(), "boom at round 1") {
		t.Fatalf("dynamics error should abort the run, got %v", err)
	}
}

func TestScenarioRegistry(t *testing.T) {
	infos := Scenarios()
	if len(infos) == 0 {
		t.Fatal("no scenarios registered")
	}
	found := false
	for _, s := range infos {
		if s.ID == "figure3a" {
			found = true
			if s.Brief == "" {
				t.Fatal("figure3a has no description")
			}
		}
	}
	if !found {
		t.Fatal("figure3a missing from the registry")
	}

	opt := QuickScenarioOptions()
	opt.Nodes = 300
	opt.Trials = 1
	res, err := RunScenario("figure1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "figure1" || res.Render() == "" {
		t.Fatal("scenario dispatch broken")
	}
	if _, err := RunScenario("bogus", opt); err == nil {
		t.Fatal("expected error for unknown scenario")
	}

	if err := RegisterScenario("", "x", func(ScenarioOptions) (*ScenarioResult, error) { return nil, nil }); err == nil {
		t.Fatal("empty scenario ID should be rejected")
	}
	if err := RegisterScenario("test-custom", "a registered test scenario",
		func(opt ScenarioOptions) (*ScenarioResult, error) {
			return &ScenarioResult{ID: "test-custom", Title: "test", Options: opt}, nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterScenario("test-custom", "dup", func(ScenarioOptions) (*ScenarioResult, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate scenario ID should be rejected")
	}
	res, err = RunScenario("test-custom", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "test-custom" {
		t.Fatalf("custom scenario returned %q", res.ID)
	}
}

func TestHashPowerVariants(t *testing.T) {
	for _, hp := range []HashPower{PowerUniform, PowerExponential, PowerPools} {
		cfg := DefaultConfig(50)
		cfg.HashPower = hp
		cfg.RoundBlocks = 5
		net, err := NewFromConfig(cfg)
		if err != nil {
			t.Fatalf("hash power %d: %v", hp, err)
		}
		if _, err := net.Step(); err != nil {
			t.Fatalf("hash power %d: %v", hp, err)
		}
	}
}

func TestScoringVariants(t *testing.T) {
	for _, s := range []Scoring{ScoringVanilla, ScoringUCB, ScoringSubset} {
		net, err := New(50, WithScoring(s), WithRoundBlocks(5))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if _, err := net.Step(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

func TestDefaultScenarioOptionsScale(t *testing.T) {
	opt := DefaultScenarioOptions()
	if opt.Nodes != 1000 || opt.Trials != 3 {
		t.Fatalf("default scenario options changed: %+v", opt)
	}
}

// ExampleNew shows the options builder: every unset axis takes the
// paper's evaluation default.
func ExampleNew() {
	net, err := New(60,
		WithSeed(42),
		WithRoundBlocks(10),
		WithPower(PoolsPower(0.1, 0.9)),
	)
	if err != nil {
		panic(err)
	}
	if err := net.Run(3); err != nil {
		panic(err)
	}
	fmt.Println("rounds:", net.Rounds())
	fmt.Println("out-degree:", len(net.OutNeighbors(0)))
	// Output:
	// rounds: 3
	// out-degree: 8
}

// ExampleWithLatency plugs a measured latency matrix into an otherwise
// default network — the custom-environment path that previously required
// editing internal packages.
func ExampleWithLatency() {
	n := 12
	delays := make([][]time.Duration, n)
	for i := range delays {
		delays[i] = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := time.Duration(10+(i+j)%20) * time.Millisecond
			delays[i][j], delays[j][i] = d, d
		}
	}
	model, err := LatencyMatrix(delays)
	if err != nil {
		panic(err)
	}
	net, err := New(n, WithLatency(model), WithOutDegree(3), WithExplore(1), WithRoundBlocks(5))
	if err != nil {
		panic(err)
	}
	ds, err := net.BroadcastDelays(1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes measured:", len(ds))
	// Output:
	// nodes measured: 12
}

// ExampleWithObserver streams per-round telemetry without polling.
func ExampleWithObserver() {
	obs := ObserverFunc(func(net *Network, s RoundStats) {
		fmt.Printf("round %d: %d blocks\n", s.Summary.Round, s.Summary.Blocks)
	})
	net, err := New(50, WithRoundBlocks(5), WithObserver(obs))
	if err != nil {
		panic(err)
	}
	if err := net.Run(2); err != nil {
		panic(err)
	}
	// Output:
	// round 1: 5 blocks
	// round 2: 5 blocks
}

// TestScaleOptionsEndToEnd exercises the scale-stack options through the
// public surface: a network with streaming delays, a narrow observation
// window, and sharded broadcasts must evolve bit-for-bit like the plain
// configuration whose semantics they preserve (the window is full-width
// here, so all three knobs are result-neutral).
func TestScaleOptionsEndToEnd(t *testing.T) {
	build := func(opts ...Option) *Network {
		t.Helper()
		base := []Option{WithSeed(17), WithRoundBlocks(20)}
		net, err := New(80, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	plain := build()
	scaled := build(
		WithLatencyMode(LatencyStreaming),
		WithObservationWindow(20), // == RoundBlocks: observes every block
		WithShards(4),
		WithWorkers(8),
	)
	for r := 0; r < 4; r++ {
		sumPlain, err := plain.Step()
		if err != nil {
			t.Fatal(err)
		}
		sumScaled, err := scaled.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sumPlain != sumScaled {
			t.Fatalf("round %d summaries diverge under the scale stack: %+v vs %+v", r, sumPlain, sumScaled)
		}
	}
	if !reflect.DeepEqual(plain.Adjacency(), scaled.Adjacency()) {
		t.Fatal("adjacency diverges under the scale stack")
	}
	dPlain, err := plain.BroadcastDelays(0.9)
	if err != nil {
		t.Fatal(err)
	}
	dScaled, err := scaled.BroadcastDelays(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dPlain, dScaled) {
		t.Fatal("delay metrics diverge under the scale stack")
	}
}

// TestScaleOptionValidation covers the new options' argument checks.
func TestScaleOptionValidation(t *testing.T) {
	if _, err := New(50, WithLatencyMode(LatencyMode(99))); err == nil {
		t.Fatal("WithLatencyMode(99) should be rejected")
	}
	if _, err := New(50, WithObservationWindow(-1)); err == nil {
		t.Fatal("WithObservationWindow(-1) should be rejected")
	}
	if _, err := New(50, WithShards(-1)); err == nil {
		t.Fatal("WithShards(-1) should be rejected")
	}
	for _, m := range []LatencyMode{LatencyAuto, LatencyPrecomputed, LatencyStreaming} {
		if _, err := New(50, WithLatencyMode(m)); err != nil {
			t.Fatalf("WithLatencyMode(%d): %v", int(m), err)
		}
	}
}
