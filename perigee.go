// Package perigee is a Go implementation of Perigee, the decentralized
// peer-to-peer topology learning protocol for blockchains (Mao et al.,
// PODC 2020), together with the full simulation stack used to evaluate it:
// geographic latency models, degree-constrained topologies, baseline
// connection policies, a block-propagation simulator, and a live TCP node.
//
// The quickest way in is Network: build one with New, run protocol rounds
// with Step or Run, and measure block propagation with BroadcastDelays.
//
//	cfg := perigee.DefaultConfig(300)
//	net, err := perigee.New(cfg)
//	...
//	before, _ := net.BroadcastDelays(0.9)
//	net.Run(20)
//	after, _ := net.BroadcastDelays(0.9)
//
// The experiment harness reproducing the paper's figures is exposed via
// RunExperiment; the live TCP implementation lives in internal/p2p and is
// driven by the cmd/perigee-node and cmd/perigee-cluster binaries.
package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/experiments"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// Scoring selects the neighbor-scoring rule (§4 of the paper).
type Scoring int

// The three scoring rules.
const (
	// ScoringVanilla scores each neighbor independently (§4.2.1).
	ScoringVanilla Scoring = iota
	// ScoringUCB uses confidence bounds over accumulated history (§4.2.2).
	ScoringUCB
	// ScoringSubset scores groups of neighbors jointly (§4.3); the paper's
	// preferred variant.
	ScoringSubset
)

// String returns the paper's name for the scoring rule.
func (s Scoring) String() string { return s.method().String() }

func (s Scoring) method() core.Method {
	switch s {
	case ScoringUCB:
		return core.UCB
	case ScoringSubset:
		return core.Subset
	default:
		return core.Vanilla
	}
}

// HashPower selects the mining-power distribution across nodes.
type HashPower int

// Supported hash-power distributions.
const (
	// PowerUniform gives every node equal power (§5.2, Figure 3a).
	PowerUniform HashPower = iota
	// PowerExponential draws power from Exponential(1), normalized
	// (Figure 3b).
	PowerExponential
	// PowerPools gives 10% of the nodes 90% of the power (Figure 4b).
	PowerPools
)

// Config assembles a simulated Perigee network.
type Config struct {
	// Nodes is the network size.
	Nodes int
	// Seed roots all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Scoring picks the Perigee variant. Default ScoringSubset.
	Scoring Scoring
	// OutDegree is the number of outgoing connections (default 8).
	OutDegree int
	// MaxIncoming caps incoming connections (default 20).
	MaxIncoming int
	// Explore is the number of random exploration links per round
	// (default 2; ignored by ScoringUCB).
	Explore int
	// RoundBlocks is the number of blocks per round (default 100, or 1
	// for ScoringUCB).
	RoundBlocks int
	// Percentile is the scoring quantile (default 0.9).
	Percentile float64
	// MeanValidation is the per-node block validation delay (default
	// 50ms, applied uniformly as in the paper's evaluation).
	MeanValidation time.Duration
	// HashPower selects the power distribution (default PowerUniform).
	HashPower HashPower
	// Workers bounds the goroutines used for round broadcasts and delay
	// evaluation. Zero means one worker per available core; results are
	// bit-for-bit identical for any worker count.
	Workers int
}

// DefaultConfig returns the paper's evaluation parameters for a network of
// the given size.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:          nodes,
		Seed:           1,
		Scoring:        ScoringSubset,
		OutDegree:      8,
		MaxIncoming:    20,
		Explore:        2,
		RoundBlocks:    100,
		Percentile:     0.9,
		MeanValidation: 50 * time.Millisecond,
		HashPower:      PowerUniform,
	}
}

// Network is a simulated p2p network running the Perigee protocol.
type Network struct {
	cfg    Config
	engine *core.Engine
}

// New builds the network: it samples a geographic universe and latency
// model, seeds a random topology, and prepares the protocol engine.
func New(cfg Config) (*Network, error) {
	applyDefaults(&cfg)
	if cfg.Nodes < 10 {
		return nil, fmt.Errorf("perigee: need at least 10 nodes, got %d", cfg.Nodes)
	}
	root := rng.New(cfg.Seed)
	universe, err := geo.SampleUniverse(cfg.Nodes, root.Derive("universe"))
	if err != nil {
		return nil, err
	}
	lat, err := latency.NewGeographic(universe, root.Derive("latency"))
	if err != nil {
		return nil, err
	}
	table, err := topology.Random(cfg.Nodes, cfg.OutDegree, cfg.MaxIncoming, root.Derive("topology"))
	if err != nil {
		return nil, err
	}
	var power []float64
	switch cfg.HashPower {
	case PowerExponential:
		power, err = hashpower.Exponential(cfg.Nodes, root.Derive("power"))
	case PowerPools:
		power, _, err = hashpower.Pools(cfg.Nodes, 0.1, 0.9, root.Derive("power"))
	default:
		power, err = hashpower.Uniform(cfg.Nodes)
	}
	if err != nil {
		return nil, err
	}
	forward := make([]time.Duration, cfg.Nodes)
	for i := range forward {
		forward[i] = cfg.MeanValidation
	}
	params := core.DefaultParams(cfg.Scoring.method())
	params.OutDegree = cfg.OutDegree
	if cfg.Scoring != ScoringUCB {
		params.Explore = cfg.Explore
		params.RoundBlocks = cfg.RoundBlocks
	}
	params.Percentile = cfg.Percentile
	engine, err := core.NewEngine(core.Config{
		Method:  cfg.Scoring.method(),
		Params:  params,
		Table:   table,
		Latency: lat,
		Forward: forward,
		Power:   power,
		Rand:    root.Derive("engine"),
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Network{cfg: cfg, engine: engine}, nil
}

func applyDefaults(cfg *Config) {
	base := DefaultConfig(cfg.Nodes)
	if cfg.OutDegree == 0 {
		cfg.OutDegree = base.OutDegree
	}
	if cfg.MaxIncoming == 0 {
		cfg.MaxIncoming = base.MaxIncoming
	}
	if cfg.Explore == 0 {
		cfg.Explore = base.Explore
	}
	if cfg.RoundBlocks == 0 {
		cfg.RoundBlocks = base.RoundBlocks
	}
	if cfg.Percentile == 0 {
		cfg.Percentile = base.Percentile
	}
	if cfg.MeanValidation == 0 {
		cfg.MeanValidation = base.MeanValidation
	}
}

// RoundSummary reports one protocol round.
type RoundSummary struct {
	// Round is the 1-based round index.
	Round int
	// Blocks is the number of blocks broadcast during the round.
	Blocks int
	// ConnectionsDropped counts outgoing links disconnected by scoring.
	ConnectionsDropped int
	// ConnectionsAdded counts exploration links established.
	ConnectionsAdded int
}

// Step runs one Perigee round (broadcasts, scoring, neighbor update).
func (n *Network) Step() (RoundSummary, error) {
	rep, err := n.engine.Step()
	if err != nil {
		return RoundSummary{}, err
	}
	return RoundSummary{
		Round:              rep.Round,
		Blocks:             rep.Blocks,
		ConnectionsDropped: rep.Dropped,
		ConnectionsAdded:   rep.Added,
	}, nil
}

// Run executes the given number of rounds.
func (n *Network) Run(rounds int) error {
	_, err := n.engine.Run(rounds)
	return err
}

// Rounds returns how many rounds have completed.
func (n *Network) Rounds() int { return n.engine.Round() }

// BroadcastDelays returns, for every node v, the paper's metric λ_v: the
// time for a block mined by v to reach nodes holding at least frac of the
// network's hash power on the current topology.
func (n *Network) BroadcastDelays(frac float64) ([]time.Duration, error) {
	return n.engine.Delays(frac, nil)
}

// Adjacency returns the current undirected communication graph as
// adjacency lists.
func (n *Network) Adjacency() [][]int { return n.engine.Adjacency() }

// OutNeighbors returns node v's current outgoing neighbor set.
func (n *Network) OutNeighbors(v int) []int { return n.engine.Table().OutNeighbors(v) }

// ExperimentOptions configures a paper-figure reproduction; it re-exports
// the experiment harness options.
type ExperimentOptions = experiments.Options

// ExperimentResult is a reproduced figure; see Render for a text report.
type ExperimentResult = experiments.Result

// DefaultExperimentOptions mirrors the paper's evaluation scale
// (1000 nodes, 3 trials).
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions is a scaled-down configuration (300 nodes, 1
// trial) where the paper's qualitative results still hold.
func QuickExperimentOptions() ExperimentOptions { return experiments.ShortOptions() }

// Experiments lists the reproducible figure IDs.
func Experiments() []string { return experiments.IDs() }

// RunExperiment reproduces one of the paper's figures by ID (see
// Experiments for the list).
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opt)
}
