// Package perigee is a Go implementation of Perigee, the decentralized
// peer-to-peer topology learning protocol for blockchains (Mao et al.,
// PODC 2020), together with the full simulation stack used to evaluate it.
//
// # Composable networks
//
// A simulated network is assembled with New from composable options. Each
// axis of the environment is a pluggable model — LatencyModel (link
// delays), PowerDist (mining power), ValidationDist (block validation
// time), TopologySeeder (the starting graph), and Dynamics (per-round
// churn and adversarial mutation) — so new scenarios are new combinations
// rather than new library code:
//
//	net, err := perigee.New(300,
//	    perigee.WithSeed(42),
//	    perigee.WithPower(perigee.PoolsPower(0.1, 0.9)),
//	    perigee.WithValidation(perigee.ExponentialValidation(50*time.Millisecond)),
//	)
//	...
//	before, _ := net.BroadcastDelays(0.9)
//	net.Run(20)
//	after, _ := net.BroadcastDelays(0.9) // λ_v improves as Perigee converges
//
// Streaming Observers (WithObserver) receive per-round telemetry — round
// summaries, exact connection churn, and per-node λ snapshots on demand —
// so long runs emit metrics without polling.
//
// Every unset option takes the paper's evaluation default, and equal seeds
// reproduce runs bit-for-bit at any Workers count.
//
// # Selectors
//
// The decision loop itself — which neighbors to keep, which to drop, how
// many fresh links to dial — is the Selector interface: per-neighbor
// block-arrival observations in, keep/drop/dial decisions out. The
// paper's three scoring rules and the random baseline are built-in
// values (SubsetSelector, VanillaSelector, UCBSelector, RandomSelector),
// WithScoring is thin sugar over them, and WithSelector accepts any
// custom implementation. The same Selector value also drives a live TCP
// node through the perigee/node package, which mirrors this package's
// options (node.WithSelector, node.WithObserver, ...) and emits the same
// RoundStats telemetry — one policy and one observer pipeline for both
// environments, so strategies validated in simulation deploy unchanged.
//
// # Adversaries
//
// Attack strategies are pluggable values too: an Adversary binds to a run
// through WithAdversary, rewriting the behavior of the nodes it controls
// (validation delay, free-riding, withholding, protocol deviation, link
// tampering) and optionally tampering with observations or pressing on
// the topology every round. Five strategies are built in
// (LatencyLiarAdversary, WithholdingRelayAdversary, SybilFloodAdversary,
// EclipseBiasAdversary, RegionalPartitionAdversary), each registered as
// an adversary-* scenario; custom strategies are ~30 lines against
// public types — see the Adversary docs and examples/customadversary.
// The same value runs a live TCP node as a compromised identity via
// node.WithAdversary.
//
// # Scenarios
//
// The reproductions of the paper's figures, the §6 extension studies, and
// the ablation sweeps are registered scenarios: Scenarios lists them,
// RunScenario executes one, and RegisterScenario adds your own to the same
// registry (which cmd/perigee-sim serves from the command line).
//
// # Legacy configuration
//
// The Config path remains as a thin shim over the options API under a new
// name: what was New(Config) is now NewFromConfig(Config), an otherwise
// mechanical rename that builds a bit-for-bit identical network. Config
// carries a zero-value ambiguity the options API does not have (see
// ExploreNone); new code should prefer New with options.
//
// The live TCP implementation is the public perigee/node package, driven
// by the cmd/perigee-node and cmd/perigee-cluster binaries.
package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/trace"
)

// Scoring selects the neighbor-scoring rule (§4 of the paper).
type Scoring int

// The three scoring rules.
const (
	// ScoringVanilla scores each neighbor independently (§4.2.1).
	ScoringVanilla Scoring = iota
	// ScoringUCB uses confidence bounds over accumulated history (§4.2.2).
	ScoringUCB
	// ScoringSubset scores groups of neighbors jointly (§4.3); the paper's
	// preferred variant.
	ScoringSubset
)

// String returns the paper's name for the scoring rule.
func (s Scoring) String() string { return s.method().String() }

func (s Scoring) method() core.Method {
	switch s {
	case ScoringUCB:
		return core.UCB
	case ScoringSubset:
		return core.Subset
	default:
		return core.Vanilla
	}
}

// HashPower selects among the paper's mining-power distributions in the
// legacy Config. The options API takes any PowerDist instead.
type HashPower int

// Supported hash-power distributions.
const (
	// PowerUniform gives every node equal power (§5.2, Figure 3a).
	PowerUniform HashPower = iota
	// PowerExponential draws power from Exponential(1), normalized
	// (Figure 3b).
	PowerExponential
	// PowerPools gives 10% of the nodes 90% of the power (Figure 4b).
	PowerPools
)

// ExploreNone requests exactly zero exploration links through the legacy
// Config, whose zero value means "use the default of 2". The options API
// has no such ambiguity: WithExplore(0) is explicit.
const ExploreNone = -1

// Config assembles a simulated Perigee network through the legacy path
// (NewFromConfig). It remains supported as a thin shim over the options
// API; New with options is the unambiguous surface — in particular,
// Config cannot distinguish an unset Explore from an explicit zero (use
// ExploreNone), while WithExplore(0) simply means zero.
type Config struct {
	// Nodes is the network size.
	Nodes int
	// Seed roots all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Scoring picks the Perigee variant. The zero value is ScoringVanilla;
	// DefaultConfig selects ScoringSubset, the paper's preferred rule.
	Scoring Scoring
	// OutDegree is the number of outgoing connections (default 8).
	OutDegree int
	// MaxIncoming caps incoming connections (default 20).
	MaxIncoming int
	// Explore is the number of random exploration links per round
	// (default 2; ignored by ScoringUCB). Zero means the default; pass
	// ExploreNone for an explicit zero.
	Explore int
	// RoundBlocks is the number of blocks per round (default 100, or 1
	// for ScoringUCB). Zero means the default.
	RoundBlocks int
	// Percentile is the scoring quantile in (0, 1] (default 0.9). Zero
	// means the default.
	Percentile float64
	// MeanValidation is the per-node block validation delay (default
	// 50ms, applied uniformly as in the paper's evaluation).
	MeanValidation time.Duration
	// HashPower selects the power distribution (default PowerUniform).
	HashPower HashPower
	// Workers bounds the goroutines used for round broadcasts and delay
	// evaluation. Zero means one worker per available core; results are
	// bit-for-bit identical for any worker count.
	Workers int
}

// DefaultConfig returns the paper's evaluation parameters for a network of
// the given size.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:          nodes,
		Seed:           1,
		Scoring:        ScoringSubset,
		OutDegree:      8,
		MaxIncoming:    20,
		Explore:        2,
		RoundBlocks:    100,
		Percentile:     0.9,
		MeanValidation: 50 * time.Millisecond,
		HashPower:      PowerUniform,
	}
}

// NewFromConfig builds a network from a legacy Config. It is a thin shim:
// the Config is translated into the equivalent options and handed to New,
// so networks built either way are bit-for-bit identical.
func NewFromConfig(cfg Config) (*Network, error) {
	if err := applyDefaults(&cfg); err != nil {
		return nil, err
	}
	opts := []Option{
		WithSeed(cfg.Seed),
		WithScoring(cfg.Scoring),
		WithOutDegree(cfg.OutDegree),
		WithMaxIncoming(cfg.MaxIncoming),
		WithPercentile(cfg.Percentile),
		WithValidation(FixedValidation(cfg.MeanValidation)),
		WithWorkers(cfg.Workers),
	}
	if cfg.Scoring != ScoringUCB {
		// UCB ignores Explore/RoundBlocks, as the paper's §4.2.2 variant
		// spans one block per round and evicts via confidence intervals.
		opts = append(opts, WithExplore(cfg.Explore), WithRoundBlocks(cfg.RoundBlocks))
	}
	switch cfg.HashPower {
	case PowerExponential:
		opts = append(opts, WithPower(ExponentialPower()))
	case PowerPools:
		opts = append(opts, WithPower(PoolsPower(0.1, 0.9)))
	case PowerUniform:
		// UniformPower is the default.
	default:
		return nil, fmt.Errorf("perigee: unknown hash-power distribution %d", int(cfg.HashPower))
	}
	return New(cfg.Nodes, opts...)
}

// applyDefaults resolves the legacy Config's zero values to the paper's
// defaults and validates the explicit values. ExploreNone maps to an
// explicit zero; other negative values are rejected rather than silently
// overwritten.
func applyDefaults(cfg *Config) error {
	base := DefaultConfig(cfg.Nodes)
	if cfg.OutDegree == 0 {
		cfg.OutDegree = base.OutDegree
	}
	if cfg.MaxIncoming == 0 {
		cfg.MaxIncoming = base.MaxIncoming
	}
	switch {
	case cfg.Explore == ExploreNone:
		cfg.Explore = 0
	case cfg.Explore == 0:
		cfg.Explore = base.Explore
	case cfg.Explore < 0:
		return fmt.Errorf("perigee: explore count %d must be non-negative (use ExploreNone for zero)", cfg.Explore)
	}
	if cfg.RoundBlocks == 0 {
		cfg.RoundBlocks = base.RoundBlocks
	} else if cfg.RoundBlocks < 0 {
		return fmt.Errorf("perigee: round blocks %d must be positive", cfg.RoundBlocks)
	}
	if cfg.Percentile == 0 {
		cfg.Percentile = base.Percentile
	} else if cfg.Percentile < 0 || cfg.Percentile > 1 {
		return fmt.Errorf("perigee: percentile %v outside (0, 1]", cfg.Percentile)
	}
	if cfg.MeanValidation == 0 {
		cfg.MeanValidation = base.MeanValidation
	} else if cfg.MeanValidation < 0 {
		return fmt.Errorf("perigee: negative validation delay %v", cfg.MeanValidation)
	}
	return nil
}

// Network is a simulated p2p network running the Perigee protocol.
type Network struct {
	scoring      Scoring
	engine       *core.Engine
	observers    []Observer
	dynamics     Dynamics
	dynRand      *Rand
	adversaryEnv *AdversaryEnv

	workloadProc  ArrivalProcess
	blockInterval time.Duration
	traceFile     string
	workloadRand  *Rand
	workloadRuns  int

	traceCollector *trace.Collector
}

// RoundSummary reports one protocol round.
type RoundSummary struct {
	// Round is the 1-based round index.
	Round int
	// Blocks is the number of blocks broadcast during the round.
	Blocks int
	// ConnectionsDropped counts outgoing links disconnected by scoring.
	ConnectionsDropped int
	// ConnectionsAdded counts exploration links established.
	ConnectionsAdded int
}

// Step runs one Perigee round (broadcasts, scoring, neighbor update),
// notifying observers and applying dynamics.
func (n *Network) Step() (RoundSummary, error) {
	rep, err := n.engine.Step()
	if err != nil {
		return RoundSummary{}, err
	}
	return RoundSummary{
		Round:              rep.Round,
		Blocks:             rep.Blocks,
		ConnectionsDropped: rep.Dropped,
		ConnectionsAdded:   rep.Added,
	}, nil
}

// Run executes the given number of rounds; observers and dynamics fire
// after every round.
func (n *Network) Run(rounds int) error {
	_, err := n.engine.Run(rounds)
	return err
}

// Rounds returns how many rounds have completed.
func (n *Network) Rounds() int { return n.engine.Round() }

// Scoring returns the scoring variant the network runs.
func (n *Network) Scoring() Scoring { return n.scoring }

// BroadcastDelays returns, for every node v, the paper's metric λ_v: the
// time for a block mined by v to reach nodes holding at least frac of the
// network's hash power on the current topology. frac must be in (0, 1].
func (n *Network) BroadcastDelays(frac float64) ([]time.Duration, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("perigee: hash-power fraction %v outside (0, 1]", frac)
	}
	return n.engine.Delays(frac, nil)
}

// Adjacency returns the current undirected communication graph as
// adjacency lists.
func (n *Network) Adjacency() [][]int { return n.engine.Adjacency() }

// OutNeighbors returns node v's current outgoing neighbor set.
func (n *Network) OutNeighbors(v int) []int { return n.engine.Table().OutNeighbors(v) }
