package perigee

// The benchmark harness regenerates every figure of the paper's evaluation
// (DESIGN.md §3 maps figures to bench targets). Figure benches print the
// reproduced series via b.Log on their first iteration — run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// for a full reproduction pass, or -bench=Micro for the hot-path
// micro-benchmarks only.

import (
	"sync"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/bench"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/experiments"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// benchFigureOptions is the figure-bench scale: large enough that every
// qualitative result of the paper holds, small enough for a laptop pass.
// Workers = 0 runs trials and broadcasts on all cores; results are
// identical to a -workers=1 pass.
func benchFigureOptions() experiments.Options {
	opt := experiments.ShortOptions()
	opt.Rounds = 10
	opt.Workers = 0
	return opt
}

// benchAblationOptions keeps ablation sweeps (many engine runs per
// iteration) affordable.
func benchAblationOptions() experiments.Options {
	opt := experiments.ShortOptions()
	opt.Nodes = 150
	opt.Rounds = 6
	opt.RoundBlocks = 30
	return opt
}

var benchRendered sync.Map

func benchExperiment(b *testing.B, id string, opt experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := benchRendered.LoadOrStore(id, true); !done {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkFigure1Stretch regenerates Figure 1: path stretch of random vs
// geometric graphs on embedded points.
func BenchmarkFigure1Stretch(b *testing.B) { benchExperiment(b, "figure1", benchFigureOptions()) }

// BenchmarkFigure3a regenerates Figure 3(a): all seven algorithms under
// uniform hash power.
func BenchmarkFigure3a(b *testing.B) { benchExperiment(b, "figure3a", benchFigureOptions()) }

// BenchmarkFigure3b regenerates Figure 3(b): exponential hash power.
func BenchmarkFigure3b(b *testing.B) { benchExperiment(b, "figure3b", benchFigureOptions()) }

// BenchmarkFigure4a regenerates Figure 4(a): the validation-delay sweep.
func BenchmarkFigure4a(b *testing.B) { benchExperiment(b, "figure4a", benchFigureOptions()) }

// BenchmarkFigure4b regenerates Figure 4(b): mining pools with fast links.
func BenchmarkFigure4b(b *testing.B) { benchExperiment(b, "figure4b", benchFigureOptions()) }

// BenchmarkFigure4c regenerates Figure 4(c): the embedded relay tree.
func BenchmarkFigure4c(b *testing.B) { benchExperiment(b, "figure4c", benchFigureOptions()) }

// BenchmarkFigure5Histogram regenerates Figure 5: edge-latency histograms
// of the converged topologies.
func BenchmarkFigure5Histogram(b *testing.B) { benchExperiment(b, "figure5", benchFigureOptions()) }

// BenchmarkTheorem1 validates Theorem 1 empirically: random-graph stretch
// grows with n.
func BenchmarkTheorem1(b *testing.B) { benchExperiment(b, "theorem1", benchFigureOptions()) }

// BenchmarkTheorem2 validates Theorem 2 empirically: geometric-graph
// stretch is constant in n.
func BenchmarkTheorem2(b *testing.B) { benchExperiment(b, "theorem2", benchFigureOptions()) }

// BenchmarkAblationExploration sweeps the exploration budget e_v.
func BenchmarkAblationExploration(b *testing.B) {
	benchExperiment(b, "ablation-exploration", benchAblationOptions())
}

// BenchmarkAblationPercentile sweeps the scoring percentile.
func BenchmarkAblationPercentile(b *testing.B) {
	benchExperiment(b, "ablation-percentile", benchAblationOptions())
}

// BenchmarkAblationRoundLength sweeps |B| at a fixed block budget.
func BenchmarkAblationRoundLength(b *testing.B) {
	benchExperiment(b, "ablation-roundlength", benchAblationOptions())
}

// BenchmarkAblationUCBConstant sweeps the UCB confidence constant.
func BenchmarkAblationUCBConstant(b *testing.B) {
	benchExperiment(b, "ablation-ucb-constant", benchAblationOptions())
}

// BenchmarkAblationValidationModel compares homogeneous vs heterogeneous
// validation delays.
func BenchmarkAblationValidationModel(b *testing.B) {
	benchExperiment(b, "ablation-validation-model", benchAblationOptions())
}

// BenchmarkExtensionFreeride measures the incentive experiment: silent
// free-riders are punished with later block reception.
func BenchmarkExtensionFreeride(b *testing.B) {
	benchExperiment(b, "freeride", benchAblationOptions())
}

// BenchmarkExtensionChurn measures Perigee under 5%-per-round membership
// churn.
func BenchmarkExtensionChurn(b *testing.B) {
	benchExperiment(b, "churn", benchAblationOptions())
}

// BenchmarkExtensionBandwidth measures the upload-serialization scenario.
func BenchmarkExtensionBandwidth(b *testing.B) {
	benchExperiment(b, "bandwidth", benchAblationOptions())
}

// BenchmarkExtensionEclipse measures neighborhood capture by fast
// adversaries.
func BenchmarkExtensionEclipse(b *testing.B) {
	benchExperiment(b, "eclipse", benchAblationOptions())
}

// BenchmarkExtensionConvergence measures the §5.2 convergence
// trajectories (90% coverage converges; 50% is not monotone).
func BenchmarkExtensionConvergence(b *testing.B) {
	benchExperiment(b, "convergence", benchAblationOptions())
}

// --- Micro-benchmarks of the hot paths -----------------------------------
//
// The micro suite is defined once in internal/bench, shared with
// cmd/perigee-bench (which runs the same cases and emits BENCH_*.json).
// The wrappers below keep the stable `-bench=Micro` go-test entry points.

// BenchmarkMicroBroadcast1000 measures one event-driven block broadcast
// over a 1000-node network (the inner loop of every experiment). The CI
// benchmark job fails if this reports any steady-state allocations.
func BenchmarkMicroBroadcast1000(b *testing.B) { bench.MicroBroadcast(1000)(b) }

// BenchmarkMicroBroadcast10000 is the production-scale target: one
// broadcast over a 10k-node network (the scale OverChain-style overlay
// evaluations run at).
func BenchmarkMicroBroadcast10000(b *testing.B) { bench.MicroBroadcast(10000)(b) }

// BenchmarkMicroBroadcast100000 is the million-node-track target: one
// broadcast over a 100k-node network, which crosses the streaming-latency
// threshold so edge delays are computed on the fly instead of precomputed.
// Run it with a small -benchtime (e.g. -benchtime=3x); a single op is a
// full 100k-node flood.
func BenchmarkMicroBroadcast100000(b *testing.B) { bench.MicroBroadcast(100000)(b) }

// BenchmarkMicroAnalyticArrival1000 measures the pooled Dijkstra-based
// arrival computation used by the λ_v metric.
func BenchmarkMicroAnalyticArrival1000(b *testing.B) { bench.MicroAnalyticArrival(1000)(b) }

// BenchmarkMicroDelayToFraction measures the weighted coverage metric.
func BenchmarkMicroDelayToFraction(b *testing.B) { bench.MicroDelayToFraction(b) }

// BenchmarkMicroVanillaScoring measures independent percentile scoring of
// one node's round (100 blocks, 8 neighbors).
func BenchmarkMicroVanillaScoring(b *testing.B) { bench.MicroVanillaScoring(b) }

// BenchmarkMicroSubsetScoring measures the greedy joint selection (§4.3).
func BenchmarkMicroSubsetScoring(b *testing.B) { bench.MicroSubsetScoring(b) }

// BenchmarkWorkloadHour measures one simulated hour of the continuous-time
// blockchain workload (~1800 Poisson arrivals, timed topology rounds,
// per-node chain views) on a 300-node network; scripts/bench.sh gates its
// allocs/op.
func BenchmarkWorkloadHour(b *testing.B) { bench.WorkloadHour(b) }

// BenchmarkMicroEngineRound measures one full protocol round (broadcasts +
// scoring + reconnection) on a 300-node network.
func BenchmarkMicroEngineRound(b *testing.B) { bench.MicroEngineRound(b) }

// benchEngine builds a Subset engine at the given scale and worker count.
func benchEngine(b *testing.B, n, workers int) *core.Engine {
	b.Helper()
	root := rng.New(9)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		b.Fatal(err)
	}
	lat, err := latency.NewGeographic(u, root.Derive("latency"))
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, root.Derive("topology"))
	if err != nil {
		b.Fatal(err)
	}
	forward := make([]time.Duration, n)
	for i := range forward {
		forward[i] = 50 * time.Millisecond
	}
	power := make([]float64, n)
	for i := range power {
		power[i] = 1.0 / float64(n)
	}
	params := core.DefaultParams(core.Subset)
	params.RoundBlocks = 100
	engine, err := core.NewEngine(core.Config{
		Method: core.Subset, Params: params, Table: tbl,
		Latency: lat, Forward: forward, Power: power,
		Rand: root.Derive("engine"), Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// BenchmarkEngineRoundSequential measures one 100-block protocol round on a
// 500-node network with a single worker — the pre-parallelism baseline.
func BenchmarkEngineRoundSequential(b *testing.B) {
	engine := benchEngine(b, 500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRoundParallel is the same round fanned out over all cores;
// compare against BenchmarkEngineRoundSequential for the parallel speedup
// (the reports and resulting topology are identical by construction).
func BenchmarkEngineRoundParallel(b *testing.B) {
	engine := benchEngine(b, 500, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroDurationPercentile measures the censored percentile
// primitive underlying all scoring.
func BenchmarkMicroDurationPercentile(b *testing.B) { bench.MicroDurationPercentile(b) }
