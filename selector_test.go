package perigee

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// keepAllSelector is a custom policy written purely against the public
// API: it never rotates anything.
type keepAllSelector struct{}

func (keepAllSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	keep := make([]int, len(view.Observations.Neighbors))
	for i := range keep {
		keep[i] = i
	}
	return Decision{Keep: keep}, nil
}

// TestCustomSelectorDrivesSimulator is the acceptance check for the
// selector API on the simulator side: a custom Selector implemented
// outside the library runs unmodified through perigee.New, and its
// decisions — keep everything, dial nothing — are exactly what happens.
func TestCustomSelectorDrivesSimulator(t *testing.T) {
	net, err := New(50, WithRoundBlocks(5), WithSelector(keepAllSelector{}))
	if err != nil {
		t.Fatal(err)
	}
	before := net.Adjacency()
	sum, err := net.Step()
	if err != nil {
		t.Fatal(err)
	}
	if sum.ConnectionsDropped != 0 || sum.ConnectionsAdded != 0 {
		t.Fatalf("keep-all selector still churned connections: %+v", sum)
	}
	if !reflect.DeepEqual(before, net.Adjacency()) {
		t.Fatal("keep-all selector changed the topology")
	}
}

// TestWithSelectorMatchesScoring proves WithScoring is a thin constructor
// over the Selector API: installing the equivalent built-in selector
// produces a bit-for-bit identical network.
func TestWithSelectorMatchesScoring(t *testing.T) {
	cases := []struct {
		name     string
		scoring  Option
		selector Option
	}{
		{"subset", WithScoring(ScoringSubset), WithSelector(SubsetSelector(2, 0.9))},
		{"vanilla", WithScoring(ScoringVanilla), WithSelector(VanillaSelector(2, 0.9))},
		{"ucb", WithScoring(ScoringUCB), WithSelector(UCBSelector(0.9, 50*time.Millisecond))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(opt Option) *Network {
				t.Helper()
				// Pin RoundBlocks explicitly: WithScoring(ScoringUCB)
				// defaults it to 1, but a Selector does not carry a
				// round-blocks preference.
				blocks := 5
				if tc.name == "ucb" {
					blocks = 1
				}
				opts := []Option{WithSeed(21), WithRoundBlocks(blocks), opt}
				net, err := New(60, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if err := net.Run(3); err != nil {
					t.Fatal(err)
				}
				return net
			}
			byScoring, bySelector := build(tc.scoring), build(tc.selector)
			if !reflect.DeepEqual(byScoring.Adjacency(), bySelector.Adjacency()) {
				t.Fatal("adjacency diverges between WithScoring and the equivalent WithSelector")
			}
		})
	}
}

func TestRandomSelectorDeterministicRuns(t *testing.T) {
	build := func() *Network {
		t.Helper()
		net, err := New(50, WithSeed(9), WithRoundBlocks(5), WithSelector(RandomSelector(2)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Run(3); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Adjacency(), b.Adjacency()) {
		t.Fatal("random-selector networks diverge for equal seeds")
	}
}

func TestSelectorOptionValidation(t *testing.T) {
	if _, err := New(50, WithSelector(nil)); err == nil {
		t.Fatal("nil selector accepted")
	}
	// Built-in constructor argument errors surface when the option is
	// applied, not on the first round.
	if _, err := New(50, WithSelector(SubsetSelector(-1, 0.9))); err == nil ||
		!strings.Contains(err.Error(), "explore") {
		t.Fatalf("invalid built-in selector accepted: %v", err)
	}
	if _, err := New(50, WithSelector(UCBSelector(1.7, 0))); err == nil {
		t.Fatal("invalid UCB percentile accepted")
	}
}

// TestDecideContract exercises the exported Decide helper custom
// selectors are tested against.
func TestDecideContract(t *testing.T) {
	view := NeighborView{
		OutDegree: 3,
		Observations: Observations{
			Neighbors: []int{7, 8, 9},
			Offsets:   [][]time.Duration{{0, time.Millisecond, Censored}},
		},
	}
	bad := SelectorFunc(func(NeighborView) (Decision, error) {
		return Decision{Keep: []int{0}}, nil // incomplete partition
	})
	if _, err := Decide(bad, view); err == nil {
		t.Fatal("incomplete decision accepted")
	}
	good := SelectorFunc(func(v NeighborView) (Decision, error) {
		return Decision{Keep: []int{0, 1}, Drop: []int{2}, Dial: 1}, nil
	})
	d, err := Decide(good, view)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dial != 1 || len(d.Drop) != 1 {
		t.Fatalf("decision altered: %+v", d)
	}
}

// TestSelectorObserverStream: a custom selector composes with the
// streaming observer pipeline — the edge churn it causes is reported
// exactly.
func TestSelectorObserverStream(t *testing.T) {
	// Rotate exactly one neighbor per round, deterministically.
	rotateOne := SelectorFunc(func(view NeighborView) (Decision, error) {
		k := len(view.Observations.Neighbors)
		if k == 0 {
			return Decision{Dial: view.OutDegree}, nil
		}
		keep := make([]int, 0, k-1)
		for i := 1; i < k; i++ {
			keep = append(keep, i)
		}
		return Decision{Keep: keep, Drop: []int{0}, Dial: 1}, nil
	})
	var drops, adds int
	obs := ObserverFunc(func(net *Network, s RoundStats) {
		drops += len(s.DroppedEdges)
		adds += len(s.AddedEdges)
	})
	net, err := New(50, WithRoundBlocks(5), WithSelector(rotateOne), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if drops != 2*50 {
		t.Fatalf("observer saw %d drops, want one per node per round = 100", drops)
	}
	if adds != 2*50 {
		t.Fatalf("observer saw %d adds, want one per node per round = 100", adds)
	}
}
