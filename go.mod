module github.com/perigee-net/perigee

go 1.22
