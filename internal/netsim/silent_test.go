package netsim

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/stats"
)

func TestSilentNodeDoesNotRelay(t *testing.T) {
	// Line 0-1-2 with node 1 silent: node 2 must never receive.
	cfg := lineConfig(3, 0)
	cfg.Silent = []bool{false, true, false}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[1] == stats.InfDuration {
		t.Fatal("silent node should still receive")
	}
	if res.Arrival[2] != stats.InfDuration {
		t.Fatalf("node behind silent relay received at %v", res.Arrival[2])
	}
}

func TestSilentSourceStillAnnounces(t *testing.T) {
	cfg := lineConfig(3, 0)
	cfg.Silent = []bool{true, false, false}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[1] == stats.InfDuration || res.Arrival[2] == stats.InfDuration {
		t.Fatalf("silent miner's block did not propagate: %v", res.Arrival)
	}
}

func TestSilentAnalyticMatchesEventSim(t *testing.T) {
	// Diamond: 0-{1,2}-3 with node 1 silent; both computations must agree
	// that 3 is reached only through 2.
	adj := [][]int{{1, 2}, {0, 3}, {0, 3}, {1, 2}}
	silent := []bool{false, true, false, false}
	model := latency.Constant{Nodes: 4, D: 10 * time.Millisecond}
	sim, err := New(Config{
		Adj:     adj,
		Latency: model,
		Forward: uniformForward(4, 5*time.Millisecond),
		Silent:  silent,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := sim.ArrivalAnalytic(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range adj {
		if res.Arrival[v] != analytic[v] {
			t.Fatalf("node %d: event %v != analytic %v", v, res.Arrival[v], analytic[v])
		}
	}
	// Through node 2 only: 10 + 5 + 10 = 25ms at node 3.
	if res.Arrival[3] != 25*time.Millisecond {
		t.Fatalf("arrival[3] = %v, want 25ms", res.Arrival[3])
	}
}

func TestSilentMaskValidation(t *testing.T) {
	cfg := lineConfig(3, 0)
	cfg.Silent = []bool{true}
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for wrong-length silent mask")
	}
}

func TestAllSilentNetwork(t *testing.T) {
	// Everyone silent: only the source's direct neighbors receive.
	cfg := lineConfig(4, 0)
	cfg.Silent = []bool{true, true, true, true}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(1) // middle node
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[0] == stats.InfDuration || res.Arrival[2] == stats.InfDuration {
		t.Fatal("direct neighbors should receive from the source")
	}
	if res.Arrival[3] != stats.InfDuration {
		t.Fatal("two hops away should not receive when everyone is silent")
	}
}
