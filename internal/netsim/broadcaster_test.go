package netsim

import (
	"sync"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// randomSim builds a moderately sized random-topology simulator for
// concurrency tests.
func randomSim(t testing.TB, n int, sendInterval []time.Duration) *Simulator {
	t.Helper()
	root := rng.New(99)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		t.Fatal(err)
	}
	model, err := latency.NewGeographic(u, root.Derive("lat"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, root.Derive("topo"))
	if err != nil {
		t.Fatal(err)
	}
	fwd := make([]time.Duration, n)
	for i := range fwd {
		fwd[i] = 50 * time.Millisecond
	}
	sim, err := New(Config{Adj: tbl.Undirected(), Latency: model, Forward: fwd, SendInterval: sendInterval})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// snapshot deep-copies a Result out of the broadcaster's scratch.
func snapshot(res Result) Result {
	out := Result{Source: res.Source, Arrival: append([]time.Duration(nil), res.Arrival...)}
	out.EdgeArrival = make([][]time.Duration, len(res.EdgeArrival))
	for v, row := range res.EdgeArrival {
		out.EdgeArrival[v] = append([]time.Duration(nil), row...)
	}
	return out
}

func sameResult(t *testing.T, want, got Result) {
	t.Helper()
	if want.Source != got.Source {
		t.Fatalf("source %d != %d", got.Source, want.Source)
	}
	for v := range want.Arrival {
		if want.Arrival[v] != got.Arrival[v] {
			t.Fatalf("source %d node %d: arrival %v != %v", want.Source, v, got.Arrival[v], want.Arrival[v])
		}
		for i := range want.EdgeArrival[v] {
			if want.EdgeArrival[v][i] != got.EdgeArrival[v][i] {
				t.Fatalf("source %d node %d slot %d: edge arrival %v != %v",
					want.Source, v, i, got.EdgeArrival[v][i], want.EdgeArrival[v][i])
			}
		}
	}
}

// TestConcurrentBroadcastersMatchSequential is the -race exercise of the
// shared-Simulator contract: N goroutines, each with its own Broadcaster,
// produce exactly the results of a sequential pass.
func TestConcurrentBroadcastersMatchSequential(t *testing.T) {
	const n, sources = 200, 32
	for _, name := range []string{"analytic-regime", "serialized-uploads"} {
		t.Run(name, func(t *testing.T) {
			var intervals []time.Duration
			if name == "serialized-uploads" {
				intervals = make([]time.Duration, n)
				for i := range intervals {
					intervals[i] = time.Duration(i%7) * time.Millisecond
				}
			}
			sim := randomSim(t, n, intervals)
			want := make([]Result, sources)
			for src := 0; src < sources; src++ {
				res, err := sim.Broadcast(src)
				if err != nil {
					t.Fatal(err)
				}
				want[src] = snapshot(res)
			}
			got := make([]Result, sources)
			errs := make([]error, sources)
			var wg sync.WaitGroup
			for src := 0; src < sources; src++ {
				wg.Add(1)
				go func(src int) {
					defer wg.Done()
					bc := sim.NewBroadcaster()
					res, err := bc.Broadcast(src)
					if err != nil {
						errs[src] = err
						return
					}
					got[src] = snapshot(res)
				}(src)
			}
			wg.Wait()
			for src := 0; src < sources; src++ {
				if errs[src] != nil {
					t.Fatal(errs[src])
				}
				sameResult(t, want[src], got[src])
			}
		})
	}
}

// TestBroadcasterReuse checks a single Broadcaster stays correct across
// repeated broadcasts (scratch reset).
func TestBroadcasterReuse(t *testing.T) {
	sim := randomSim(t, 60, nil)
	bc := sim.NewBroadcaster()
	for _, src := range []int{0, 13, 0, 59, 13} {
		res, err := bc.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		fromScratch, err := sim.NewBroadcaster().Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, snapshot(fromScratch), snapshot(res))
	}
}

// TestConcurrentAnalyticArrival exercises ArrivalAnalytic's documented
// concurrency safety under -race.
func TestConcurrentAnalyticArrival(t *testing.T) {
	sim := randomSim(t, 150, nil)
	want, err := sim.ArrivalAnalytic(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sim.ArrivalAnalytic(3)
			if err != nil {
				t.Error(err)
				return
			}
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("node %d: %v != %v", v, got[v], want[v])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkDelayToFraction1000(b *testing.B) {
	const n = 1000
	arrival := make([]time.Duration, n)
	power := make([]float64, n)
	r := rng.New(5)
	for i := range arrival {
		arrival[i] = time.Duration(r.IntN(400)) * time.Millisecond
		power[i] = 1.0 / n
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DelayToFraction(arrival, power, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
