package netsim

import (
	"sort"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

func TestRelayDelayWithholdsForwarding(t *testing.T) {
	// Line 0-1-2 with a withholding node 1: node 2's arrival is pushed
	// back by exactly the relay delay, while node 1's own arrival is not.
	const withhold = 70 * time.Millisecond
	base := lineConfig(3, 5*time.Millisecond)
	sim, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	honestAt1, honestAt2 := honest.Arrival[1], honest.Arrival[2]

	withCfg := lineConfig(3, 5*time.Millisecond)
	withCfg.RelayDelay = []time.Duration{0, withhold, 0}
	withSim, err := New(withCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := withSim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[1] != honestAt1 {
		t.Errorf("withholding node's own arrival moved: %v vs %v", res.Arrival[1], honestAt1)
	}
	if want := honestAt2 + withhold; res.Arrival[2] != want {
		t.Errorf("arrival behind withholding relay: got %v, want %v", res.Arrival[2], want)
	}
}

func TestRelayDelayDoesNotApplyToSource(t *testing.T) {
	// A withholding source still announces its own block immediately.
	cfg := lineConfig(3, 0)
	cfg.RelayDelay = []time.Duration{time.Second, 0, 0}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 * time.Millisecond; res.Arrival[1] != want {
		t.Errorf("neighbor of withholding source: got %v, want %v", res.Arrival[1], want)
	}
}

func TestRelayDelayAnalyticMatchesEventSim(t *testing.T) {
	// Random topologies with scattered withholding delays: the analytic
	// Dijkstra pass and the event simulation must agree on every arrival.
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		adj, err := topology.RandomUndirected(40, 4, r.DeriveIndexed("adj", trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range adj {
			sort.Ints(row)
		}
		relay := make([]time.Duration, 40)
		for i := range relay {
			if r.Float64() < 0.3 {
				relay[i] = time.Duration(r.IntN(200)) * time.Millisecond
			}
		}
		sim, err := New(Config{
			Adj:        adj,
			Latency:    latency.Constant{Nodes: 40, D: 10 * time.Millisecond},
			Forward:    uniformForward(40, 5*time.Millisecond),
			RelayDelay: relay,
		})
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < 40; src += 7 {
			event, err := sim.Broadcast(src)
			if err != nil {
				t.Fatal(err)
			}
			analytic, err := sim.ArrivalAnalytic(src)
			if err != nil {
				t.Fatal(err)
			}
			for v := range analytic {
				if analytic[v] != event.Arrival[v] {
					t.Fatalf("trial %d src %d node %d: analytic %v vs event %v",
						trial, src, v, analytic[v], event.Arrival[v])
				}
			}
		}
	}
}

func TestRelayDelayValidation(t *testing.T) {
	cfg := lineConfig(3, 0)
	cfg.RelayDelay = []time.Duration{0, -time.Millisecond, 0}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative relay delay accepted")
	}
	cfg.RelayDelay = []time.Duration{0, 0}
	if _, err := New(cfg); err == nil {
		t.Fatal("short relay-delay table accepted")
	}
}
