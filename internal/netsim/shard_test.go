package netsim

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// TestShardedBroadcastMatchesSingleQueue is the conservative-PDES
// acceptance check: for every shard and worker count, the sharded
// broadcaster produces bit-for-bit the single-queue Broadcaster's results —
// first arrivals and per-edge arrivals — in both the analytic regime and
// under serialized uploads.
func TestShardedBroadcastMatchesSingleQueue(t *testing.T) {
	const n, sources = 250, 24
	for _, name := range []string{"analytic-regime", "serialized-uploads"} {
		t.Run(name, func(t *testing.T) {
			var intervals []time.Duration
			if name == "serialized-uploads" {
				intervals = make([]time.Duration, n)
				for i := range intervals {
					intervals[i] = time.Duration(i%7) * time.Millisecond
				}
			}
			sim := randomSim(t, n, intervals)
			want := make([]Result, sources)
			for src := 0; src < sources; src++ {
				res, err := sim.Broadcast(src)
				if err != nil {
					t.Fatal(err)
				}
				want[src] = snapshot(res)
			}
			for _, shards := range []int{2, 4, 7} {
				for _, workers := range []int{1, 4} {
					sb, err := sim.NewShardedBroadcaster(shards, workers)
					if err != nil {
						t.Fatal(err)
					}
					if eff := sb.Shards(); eff < 2 {
						t.Fatalf("shards=%d degenerated to %d effective shards", shards, eff)
					}
					if sb.Lookahead() <= 0 {
						t.Fatalf("shards=%d: non-positive lookahead %v", shards, sb.Lookahead())
					}
					for src := 0; src < sources; src++ {
						res, err := sb.Broadcast(src)
						if err != nil {
							t.Fatal(err)
						}
						sameResult(t, want[src], snapshot(res))
					}
				}
			}
		})
	}
}

// TestShardedBroadcastStreaming runs the shard equivalence on a streaming
// simulator: delays computed on the fly from many shard goroutines must
// still reproduce the single-queue results exactly.
func TestShardedBroadcastStreaming(t *testing.T) {
	const n, sources = 200, 12
	sim := randomSimMode(t, n, nil, latency.Streaming)
	sb, err := sim.NewShardedBroadcaster(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < sources; src++ {
		want, err := sim.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := snapshot(want)
		got, err := sb.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, wantCopy, snapshot(got))
	}
}

// TestShardedBroadcasterReconfigure checks a sharded broadcaster survives
// Simulator.Reconfigure: the partition and lookahead resync lazily and the
// results still match the single-queue pass on the new topology.
func TestShardedBroadcasterReconfigure(t *testing.T) {
	const n = 150
	sim := randomSim(t, n, nil)
	sb, err := sim.NewShardedBroadcaster(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Broadcast(0); err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, rng.New(7).Derive("rewire"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Reconfigure(tbl.Undirected()); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 8; src++ {
		want, err := sim.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := snapshot(want)
		got, err := sb.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, wantCopy, snapshot(got))
	}
}

// TestShardedBroadcasterValidation covers the constructor and source-range
// errors.
func TestShardedBroadcasterValidation(t *testing.T) {
	sim := randomSim(t, 40, nil)
	if _, err := sim.NewShardedBroadcaster(1, 0); err == nil {
		t.Fatal("NewShardedBroadcaster accepted a single shard")
	}
	sb, err := sim.NewShardedBroadcaster(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Broadcast(-1); err == nil {
		t.Fatal("Broadcast accepted a negative source")
	}
	if _, err := sb.Broadcast(40); err == nil {
		t.Fatal("Broadcast accepted an out-of-range source")
	}
}

// TestShardedBroadcasterClampsShards checks a shard count above the node
// count is clamped rather than rejected, and still reproduces the
// single-queue results.
func TestShardedBroadcasterClampsShards(t *testing.T) {
	const n = 25
	sim := randomSim(t, n, nil)
	sb, err := sim.NewShardedBroadcaster(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eff := sb.Shards(); eff > n {
		t.Fatalf("effective shards %d exceeds node count %d", eff, n)
	}
	want, err := sim.Broadcast(3)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := snapshot(want)
	got, err := sb.Broadcast(3)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, wantCopy, snapshot(got))
}
