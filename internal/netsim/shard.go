package netsim

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/des"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/stats"
)

// ShardedBroadcaster runs one broadcast as a conservative windowed parallel
// discrete-event simulation: the nodes are partitioned into contiguous
// shards, each shard owns a private des.DeliveryQueue holding only
// deliveries to its own nodes, and the shards advance in lockstep windows
// of width L = the minimum cross-shard edge delay (the classic conservative
// lookahead). Within a window [T, T+L) every shard drains its queue
// independently — any delivery it generates for a foreign shard lands at
// ≥ T+L (the link alone costs ≥ L), so it is batched in a per-shard outbox
// and merged into the destination queues at the window barrier.
//
// The result is bit-for-bit identical to Broadcaster.Broadcast at any shard
// and worker count: a node's first-arrival time is the minimum over its
// incoming deliveries, its forwarding departure depends only on that
// minimum, and per-edge arrivals are min-folds — none of which depend on
// the order equal-time deliveries are popped in. A topology whose minimum
// cross-shard delay is zero admits no conservative window; the broadcaster
// then falls back to a single shard (still correct, just not parallel).
//
// A ShardedBroadcaster is not safe for concurrent use; it owns its worker
// fan-out internally. Like Broadcaster, it survives Simulator.Reconfigure
// by resynchronizing (including the shard partition and lookahead) on the
// next Broadcast.
type ShardedBroadcaster struct {
	sim     *Simulator
	gen     uint64
	shards  int // requested shard count (≥ 2)
	workers int // worker bound for the per-window fan-out; ≤ 0 means all cores

	// Synced per topology generation.
	eff       int           // effective shard count after clamping/fallback
	lookahead time.Duration // min cross-shard edge delay (the window width)
	shardOf   []int32       // node -> owning shard
	queues    []des.DeliveryQueue
	outbox    [][]des.Delivery // per-producing-shard batched cross-shard deliveries

	// Scratch buffers, reused across Broadcast calls; Result aliases them.
	arrival     []time.Duration
	edgeFlat    []time.Duration
	edgeArrival [][]time.Duration
}

// NewShardedBroadcaster allocates a sharded broadcast context over the
// shared topology. shards is the requested partition count (≥ 2; it is
// clamped to the node count, and degenerates to a single shard when the
// topology offers no positive cross-shard lookahead). workers bounds the
// goroutines used per window (≤ 0 means one per core); results are
// identical for any value of either.
func (s *Simulator) NewShardedBroadcaster(shards, workers int) (*ShardedBroadcaster, error) {
	if shards < 2 {
		return nil, fmt.Errorf("netsim: shard count %d must be at least 2", shards)
	}
	sb := &ShardedBroadcaster{sim: s, shards: shards, workers: workers}
	sb.sync()
	return sb, nil
}

// Shards returns the effective shard count after clamping and the
// zero-lookahead fallback (1 when the current topology cannot be sharded).
func (sb *ShardedBroadcaster) Shards() int {
	if sb.gen != sb.sim.gen {
		sb.sync()
	}
	return sb.eff
}

// Lookahead returns the conservative window width: the minimum delay of any
// cross-shard edge in the current partition (0 when running single-shard).
func (sb *ShardedBroadcaster) Lookahead() time.Duration {
	if sb.gen != sb.sim.gen {
		sb.sync()
	}
	if sb.eff < 2 {
		return 0
	}
	return sb.lookahead
}

// sync recomputes the shard partition and lookahead for the simulator's
// current topology and sizes the queues and scratch buffers.
func (sb *ShardedBroadcaster) sync() {
	s := sb.sim
	sb.gen = s.gen
	n := s.n
	eff := sb.shards
	if eff > n {
		eff = n
	}
	sb.shardOf = growInt32(sb.shardOf, n)
	for v := 0; v < n; v++ {
		sb.shardOf[v] = int32(v * eff / n)
	}
	look := stats.InfDuration
	for v := int32(0); int(v) < n; v++ {
		for e := s.rowStart[v]; e < s.rowStart[v+1]; e++ {
			if sb.shardOf[s.edgeDst[e]] == sb.shardOf[v] {
				continue
			}
			if d := s.delayOf(v, e); d < look {
				look = d
			}
		}
	}
	if look <= 0 || look == stats.InfDuration {
		// A zero-delay cross-shard edge admits no conservative window, and
		// no cross-shard edges at all means the graph fits one shard anyway.
		eff = 1
		for v := range sb.shardOf {
			sb.shardOf[v] = 0
		}
	}
	sb.eff = eff
	sb.lookahead = look
	for len(sb.queues) < eff {
		sb.queues = append(sb.queues, des.DeliveryQueue{})
	}
	sb.queues = sb.queues[:eff]
	for len(sb.outbox) < eff {
		sb.outbox = append(sb.outbox, nil)
	}
	sb.outbox = sb.outbox[:eff]

	sb.arrival = growDurations(sb.arrival, n)
	edges := int(s.rowStart[n])
	sb.edgeFlat = growDurations(sb.edgeFlat, edges)
	if cap(sb.edgeArrival) < n {
		sb.edgeArrival = make([][]time.Duration, n)
	}
	sb.edgeArrival = sb.edgeArrival[:n]
	for v := 0; v < n; v++ {
		lo, hi := s.rowStart[v], s.rowStart[v+1]
		sb.edgeArrival[v] = sb.edgeFlat[lo:hi:hi]
	}
}

// Broadcast simulates flooding a block mined by source at virtual time 0
// across the shard partition. The Result aliases the ShardedBroadcaster's
// scratch exactly like Broadcaster.Broadcast's does.
func (sb *ShardedBroadcaster) Broadcast(source int) (Result, error) {
	s := sb.sim
	if sb.gen != s.gen {
		sb.sync()
	}
	if source < 0 || source >= s.n {
		return Result{}, fmt.Errorf("netsim: source %d out of range (n=%d)", source, s.n)
	}
	arrival, edgeFlat := sb.arrival, sb.edgeFlat
	for i := range arrival {
		arrival[i] = stats.InfDuration
	}
	for i := range edgeFlat {
		edgeFlat[i] = stats.InfDuration
	}
	for i := range sb.queues {
		sb.queues[i].Reset()
	}
	for i := range sb.outbox {
		sb.outbox[i] = sb.outbox[i][:0]
	}
	arrival[source] = 0
	// Seed sequentially: the source's announcements go straight into their
	// destination shards' queues.
	sb.seed(int32(source))

	workers := parallel.Workers(sb.workers)
	if workers > sb.eff {
		workers = sb.eff
	}
	for {
		tmin := stats.InfDuration
		for i := range sb.queues {
			if sb.queues[i].Len() > 0 {
				if at := sb.queues[i].PeekMin().At; at < tmin {
					tmin = at
				}
			}
		}
		if tmin == stats.InfDuration {
			return Result{Source: source, Arrival: arrival, EdgeArrival: sb.edgeArrival}, nil
		}
		limit := stats.InfDuration
		if sb.eff > 1 {
			limit = tmin + sb.lookahead
		}
		// Shards only touch state they own within the window: their queue,
		// their outbox, and the arrival/edge slots of their own nodes.
		if err := parallel.ForEachIndexed(sb.eff, workers, func(_, sh int) error {
			sb.runShard(sh, limit)
			return nil
		}); err != nil {
			return Result{}, err
		}
		// Window barrier: route the batched cross-shard deliveries (all of
		// which land at ≥ limit) into their destination queues. The merge
		// order is fixed (by producing shard, then production order), so
		// queue contents — and with them the whole run — are independent of
		// worker scheduling.
		for from := range sb.outbox {
			for _, d := range sb.outbox[from] {
				sb.queues[sb.shardOf[d.Node]].Push(d)
			}
			sb.outbox[from] = sb.outbox[from][:0]
		}
	}
}

// seed schedules the source's announcements directly into the destination
// shards' queues (runs before any parallel window, so cross-shard pushes
// are safe here).
func (sb *ShardedBroadcaster) seed(v int32) {
	s := sb.sim
	var interval time.Duration
	if s.cfg.SendInterval != nil {
		interval = s.cfg.SendInterval[v]
	}
	depart := time.Duration(0)
	for e := s.rowStart[v]; e < s.rowStart[v+1]; e++ {
		d := des.Delivery{At: depart + s.delayOf(v, e), Node: s.edgeDst[e], Slot: s.edgeSlot[e]}
		sb.queues[sb.shardOf[d.Node]].Push(d)
		depart += interval
	}
}

// runShard drains shard sh's queue up to (excluding) limit: deliveries are
// recorded exactly as in Broadcaster.run, a node's first delivery triggers
// its forwarding, and generated deliveries go to the own queue (same shard)
// or the outbox (foreign shard, necessarily at ≥ limit).
func (sb *ShardedBroadcaster) runShard(sh int, limit time.Duration) {
	s := sb.sim
	q := &sb.queues[sh]
	silent, fwd, relay := s.cfg.Silent, s.cfg.Forward, s.cfg.RelayDelay
	for q.Len() > 0 && q.PeekMin().At < limit {
		d := q.PopMin()
		idx := s.rowStart[d.Node] + d.Slot
		if sb.edgeFlat[idx] > d.At {
			sb.edgeFlat[idx] = d.At
		}
		if sb.arrival[d.Node] == stats.InfDuration {
			sb.arrival[d.Node] = d.At
			if silent == nil || !silent[d.Node] {
				depart := d.At + fwd[d.Node]
				if relay != nil {
					depart += relay[d.Node]
				}
				sb.forwardShard(d.Node, depart, sh)
			}
		}
	}
}

// forwardShard schedules v's announcements to all its neighbors starting at
// time at, splitting them between shard sh's own queue and its outbox.
func (sb *ShardedBroadcaster) forwardShard(v int32, at time.Duration, sh int) {
	s := sb.sim
	var interval time.Duration
	if s.cfg.SendInterval != nil {
		interval = s.cfg.SendInterval[v]
	}
	depart := at
	for e := s.rowStart[v]; e < s.rowStart[v+1]; e++ {
		d := des.Delivery{At: depart + s.delayOf(v, e), Node: s.edgeDst[e], Slot: s.edgeSlot[e]}
		if int(sb.shardOf[d.Node]) == sh {
			sb.queues[sh].Push(d)
		} else {
			sb.outbox[sh] = append(sb.outbox[sh], d)
		}
		depart += interval
	}
}
