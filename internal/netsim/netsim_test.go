package netsim

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

func zeros(n int) []time.Duration { return make([]time.Duration, n) }

func uniformForward(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// lineConfig builds a 0-1-2-...-(n-1) path with 10 ms links.
func lineConfig(n int, forward time.Duration) Config {
	adj := make([][]int, n)
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	for i := range adj {
		// keep ascending
		if len(adj[i]) == 2 && adj[i][0] > adj[i][1] {
			adj[i][0], adj[i][1] = adj[i][1], adj[i][0]
		}
	}
	return Config{
		Adj:     adj,
		Latency: latency.Constant{Nodes: n, D: 10 * time.Millisecond},
		Forward: uniformForward(n, forward),
	}
}

func TestBroadcastLine(t *testing.T) {
	sim, err := New(lineConfig(4, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 mines at 0, sends immediately (no forward delay for miner):
	// node 1 at 10ms; node 1 validates 5ms, node 2 at 25ms; node 3 at 40ms.
	want := []time.Duration{0, 10 * time.Millisecond, 25 * time.Millisecond, 40 * time.Millisecond}
	for i, w := range want {
		if res.Arrival[i] != w {
			t.Fatalf("arrival[%d] = %v, want %v", i, res.Arrival[i], w)
		}
	}
}

func TestBroadcastEchoTimestamps(t *testing.T) {
	sim, err := New(lineConfig(3, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 receives at 10ms and forwards at 15ms to both 0 and 2.
	// Node 0 gets the echo from node 1 at 25ms.
	if got := res.EdgeArrival[0][0]; got != 25*time.Millisecond {
		t.Fatalf("echo to source = %v, want 25ms", got)
	}
	// Node 2 receives from 1 at 25ms, forwards at 30ms; echo back at 1: 40ms.
	if got := res.EdgeArrival[1][1]; got != 40*time.Millisecond {
		t.Fatalf("echo 2->1 = %v, want 40ms", got)
	}
	// Node 1's row: from 0 at 10ms.
	if got := res.EdgeArrival[1][0]; got != 10*time.Millisecond {
		t.Fatalf("delivery 0->1 = %v, want 10ms", got)
	}
}

func TestBroadcastEveryEdgeDelivers(t *testing.T) {
	r := rng.New(1)
	tbl, err := topology.Random(100, 4, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	adj := tbl.Undirected()
	sim, err := New(Config{
		Adj:     adj,
		Latency: latency.Constant{Nodes: 100, D: time.Millisecond},
		Forward: zeros(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	if !topology.IsConnected(adj) {
		t.Skip("unlucky disconnected topology")
	}
	for v := range adj {
		if res.Arrival[v] == stats.InfDuration {
			t.Fatalf("node %d never received block", v)
		}
		for i, u := range adj[v] {
			if res.EdgeArrival[v][i] == stats.InfDuration {
				t.Fatalf("edge %d->%d never delivered", u, v)
			}
			if res.EdgeArrival[v][i] < res.Arrival[v] {
				t.Fatalf("edge arrival before first arrival at %d", v)
			}
		}
	}
}

func TestBroadcastMatchesAnalytic(t *testing.T) {
	root := rng.New(42)
	u, err := geo.SampleUniverse(300, root)
	if err != nil {
		t.Fatal(err)
	}
	model, err := latency.NewGeographic(u, root.Derive("lat"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(300, 8, 20, root.Derive("topo"))
	if err != nil {
		t.Fatal(err)
	}
	fwd := make([]time.Duration, 300)
	fr := root.Derive("fwd")
	for i := range fwd {
		fwd[i] = time.Duration(fr.ExpFloat64() * float64(50*time.Millisecond))
	}
	sim, err := New(Config{Adj: tbl.Undirected(), Latency: model, Forward: fwd})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, 17, 299} {
		res, err := sim.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := sim.ArrivalAnalytic(src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range analytic {
			if res.Arrival[v] != analytic[v] {
				t.Fatalf("source %d node %d: event %v != analytic %v", src, v, res.Arrival[v], analytic[v])
			}
		}
	}
}

func TestSendIntervalSerializesUploads(t *testing.T) {
	// Star: node 0 in the middle with 3 leaves. With a 7 ms send interval
	// the leaves receive at 10, 17, 24 ms (adjacency order).
	adj := [][]int{{1, 2, 3}, {0}, {0}, {0}}
	interval := make([]time.Duration, 4)
	interval[0] = 7 * time.Millisecond
	sim, err := New(Config{
		Adj:          adj,
		Latency:      latency.Constant{Nodes: 4, D: 10 * time.Millisecond},
		Forward:      zeros(4),
		SendInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 10 * time.Millisecond, 17 * time.Millisecond, 24 * time.Millisecond}
	for v, w := range want {
		if res.Arrival[v] != w {
			t.Fatalf("arrival[%d] = %v, want %v", v, res.Arrival[v], w)
		}
	}
	if _, err := sim.ArrivalAnalytic(0); err == nil {
		t.Fatal("analytic arrival should refuse serialized uploads")
	}
}

func TestBroadcastDisconnected(t *testing.T) {
	adj := [][]int{{1}, {0}, {3}, {2}}
	sim, err := New(Config{
		Adj:     adj,
		Latency: latency.Constant{Nodes: 4, D: time.Millisecond},
		Forward: zeros(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[1] == stats.InfDuration {
		t.Fatal("neighbor should receive block")
	}
	if res.Arrival[2] != stats.InfDuration || res.Arrival[3] != stats.InfDuration {
		t.Fatal("disconnected component should never receive block")
	}
}

func TestNewValidation(t *testing.T) {
	good := lineConfig(3, 0)
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"empty adjacency", func(c Config) Config { c.Adj = nil; return c }},
		{"nil latency", func(c Config) Config { c.Latency = nil; return c }},
		{"latency too small", func(c Config) Config { c.Latency = latency.Constant{Nodes: 1, D: time.Millisecond}; return c }},
		{"forward wrong len", func(c Config) Config { c.Forward = zeros(1); return c }},
		{"negative forward", func(c Config) Config {
			f := zeros(3)
			f[1] = -time.Millisecond
			c.Forward = f
			return c
		}},
		{"send interval wrong len", func(c Config) Config { c.SendInterval = zeros(2); return c }},
		{"negative send interval", func(c Config) Config {
			si := zeros(3)
			si[0] = -time.Second
			c.SendInterval = si
			return c
		}},
		{"self loop", func(c Config) Config {
			c.Adj = [][]int{{0, 1}, {0}, {}}
			return c
		}},
		{"asymmetric", func(c Config) Config {
			c.Adj = [][]int{{1}, {}, {}}
			return c
		}},
		{"unsorted", func(c Config) Config {
			c.Adj = [][]int{{2, 1}, {0}, {0}}
			return c
		}},
		{"duplicate neighbor", func(c Config) Config {
			c.Adj = [][]int{{1, 1}, {0, 0}, {}}
			return c
		}},
		{"out of range", func(c Config) Config {
			c.Adj = [][]int{{5}, {}, {}}
			return c
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.mutate(good)); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestBroadcastSourceRange(t *testing.T) {
	sim, err := New(lineConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Broadcast(-1); err == nil {
		t.Fatal("expected error for negative source")
	}
	if _, err := sim.Broadcast(3); err == nil {
		t.Fatal("expected error for source out of range")
	}
	if _, err := sim.ArrivalAnalytic(9); err == nil {
		t.Fatal("expected error for analytic source out of range")
	}
}

func TestDelayToFraction(t *testing.T) {
	arrival := []time.Duration{0, 10, 20, 30, 40}
	power := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	got, err := DelayToFraction(arrival, power, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("90%% delay = %v, want 40", got)
	}
	got, err = DelayToFraction(arrival, power, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("50%% delay = %v, want 20", got)
	}
	got, err = DelayToFraction(arrival, power, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("100%% delay = %v, want 40", got)
	}
}

func TestDelayToFractionWeighted(t *testing.T) {
	// One node owns 90% of the power and receives at t=5.
	arrival := []time.Duration{0, 5, 100}
	power := []float64{0.05, 0.9, 0.05}
	got, err := DelayToFraction(arrival, power, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("90%% delay = %v, want 5", got)
	}
}

func TestDelayToFractionUnreachable(t *testing.T) {
	arrival := []time.Duration{0, stats.InfDuration, stats.InfDuration}
	power := []float64{0.3, 0.3, 0.4}
	got, err := DelayToFraction(arrival, power, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != stats.InfDuration {
		t.Fatalf("unreachable mass should give InfDuration, got %v", got)
	}
	// 30% is reachable though.
	got, err = DelayToFraction(arrival, power, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("25%% delay = %v, want 0", got)
	}
}

func TestDelayToFractionErrors(t *testing.T) {
	if _, err := DelayToFraction([]time.Duration{0}, []float64{1, 2}, 0.9); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := DelayToFraction([]time.Duration{0}, []float64{1}, 0); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, err := DelayToFraction([]time.Duration{0}, []float64{1}, 1.5); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, err := DelayToFraction([]time.Duration{0}, []float64{-1}, 0.5); err == nil {
		t.Fatal("expected negative power error")
	}
	if _, err := DelayToFraction([]time.Duration{0}, []float64{0}, 0.5); err == nil {
		t.Fatal("expected zero power error")
	}
}

func TestIdealArrival(t *testing.T) {
	model := latency.Constant{Nodes: 5, D: 30 * time.Millisecond}
	arr := IdealArrival(model, 2)
	for v, a := range arr {
		if v == 2 {
			if a != 0 {
				t.Fatalf("source arrival %v, want 0", a)
			}
			continue
		}
		if a != 30*time.Millisecond {
			t.Fatalf("arrival[%d] = %v, want 30ms", v, a)
		}
	}
}

// TestMonotonicity: adding an edge can only improve arrival times.
func TestAddingEdgeImprovesArrival(t *testing.T) {
	base := lineConfig(6, 2*time.Millisecond)
	simA, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := simA.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	arrA := append([]time.Duration(nil), resA.Arrival...)

	// Add shortcut 0-5.
	shortcut := topology.MergeAdjacency(base.Adj, [][2]int{{0, 5}})
	simB, err := New(Config{Adj: shortcut, Latency: base.Latency, Forward: base.Forward})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := simB.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range arrA {
		if resB.Arrival[v] > arrA[v] {
			t.Fatalf("node %d got slower after adding an edge: %v > %v", v, resB.Arrival[v], arrA[v])
		}
	}
	if resB.Arrival[5] >= arrA[5] {
		t.Fatal("shortcut should strictly improve the far end")
	}
}
