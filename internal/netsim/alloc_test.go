//go:build !race

package netsim

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
)

// TestDelayToFractionNoSteadyStateAllocs proves the sorted-index scratch is
// reused: after the pool warms up, the hot path allocates nothing. (Skipped
// under -race, where the detector's instrumentation allocates.)
func TestDelayToFractionNoSteadyStateAllocs(t *testing.T) {
	const n = 500
	arrival := make([]time.Duration, n)
	power := make([]float64, n)
	r := rng.New(6)
	for i := range arrival {
		arrival[i] = time.Duration(r.IntN(300)) * time.Millisecond
		power[i] = 1.0 / n
	}
	// Warm the pool.
	if _, err := DelayToFraction(arrival, power, 0.9); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DelayToFraction(arrival, power, 0.9); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DelayToFraction allocates %.1f objects per call, want 0", allocs)
	}
}
