//go:build !race

package netsim

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
)

// TestDelayToFractionNoSteadyStateAllocs proves the sorted-index scratch is
// reused: after the pool warms up, the hot path allocates nothing. (Skipped
// under -race, where the detector's instrumentation allocates.)
func TestDelayToFractionNoSteadyStateAllocs(t *testing.T) {
	const n = 500
	arrival := make([]time.Duration, n)
	power := make([]float64, n)
	r := rng.New(6)
	for i := range arrival {
		arrival[i] = time.Duration(r.IntN(300)) * time.Millisecond
		power[i] = 1.0 / n
	}
	// Warm the pool.
	if _, err := DelayToFraction(arrival, power, 0.9); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DelayToFraction(arrival, power, 0.9); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DelayToFraction allocates %.1f objects per call, want 0", allocs)
	}
}

// TestBroadcastNoSteadyStateAllocs proves the CSR hot path is
// allocation-free once the Broadcaster's scratch and delivery heap have
// grown to the topology's high-water mark: no closures, no container/heap
// boxing, no per-round rebuilds.
func TestBroadcastNoSteadyStateAllocs(t *testing.T) {
	sim := randomSim(t, 300, nil)
	// Warm up: grow the delivery heap and scratch to their high-water mark
	// (different sources flood different subtrees, so sweep a few).
	for src := 0; src < 10; src++ {
		if _, err := sim.Broadcast(src); err != nil {
			t.Fatal(err)
		}
	}
	src := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sim.Broadcast(src); err != nil {
			t.Fatal(err)
		}
		src = (src + 1) % sim.N()
	})
	if allocs > 0 {
		t.Fatalf("Broadcast allocates %.1f objects per call at steady state, want 0", allocs)
	}
}

// TestBroadcastSerializedNoSteadyStateAllocs covers the upload-serialization
// variant of the hot path.
func TestBroadcastSerializedNoSteadyStateAllocs(t *testing.T) {
	intervals := make([]time.Duration, 300)
	for i := range intervals {
		intervals[i] = time.Duration(i%5) * time.Millisecond
	}
	sim := randomSim(t, 300, intervals)
	for src := 0; src < 10; src++ {
		if _, err := sim.Broadcast(src); err != nil {
			t.Fatal(err)
		}
	}
	src := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sim.Broadcast(src); err != nil {
			t.Fatal(err)
		}
		src = (src + 1) % sim.N()
	})
	if allocs > 0 {
		t.Fatalf("serialized Broadcast allocates %.1f objects per call, want 0", allocs)
	}
}

// TestArrivalAnalyticIntoNoSteadyStateAllocs proves the pooled Dijkstra
// pass allocates nothing once the heap pool and the caller's destination
// buffer are warm.
func TestArrivalAnalyticIntoNoSteadyStateAllocs(t *testing.T) {
	sim := randomSim(t, 300, nil)
	var buf []time.Duration
	var err error
	for src := 0; src < 10; src++ {
		if buf, err = sim.ArrivalAnalyticInto(buf, src); err != nil {
			t.Fatal(err)
		}
	}
	src := 0
	allocs := testing.AllocsPerRun(100, func() {
		if buf, err = sim.ArrivalAnalyticInto(buf, src); err != nil {
			t.Fatal(err)
		}
		src = (src + 1) % sim.N()
	})
	if allocs > 0 {
		t.Fatalf("ArrivalAnalyticInto allocates %.1f objects per call at steady state, want 0", allocs)
	}
}
