package netsim

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/des"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// refBroadcast is the pre-CSR reference implementation: the closure-based
// des.Scheduler driving the same network model straight off Config (slice
// adjacency, per-hop Latency.Delay calls, binary-search reverse index). The
// property tests assert the flat typed-queue hot path reproduces it
// bit-for-bit.
type refBroadcast struct {
	cfg      Config
	rev      [][]int
	sched    des.Scheduler
	arrival  []time.Duration
	edgeArrv [][]time.Duration
}

func newRefBroadcast(t *testing.T, cfg Config) *refBroadcast {
	t.Helper()
	n := len(cfg.Adj)
	r := &refBroadcast{cfg: cfg, rev: make([][]int, n), arrival: make([]time.Duration, n)}
	for u := 0; u < n; u++ {
		r.rev[u] = make([]int, len(cfg.Adj[u]))
		for j, v := range cfg.Adj[u] {
			k := sort.SearchInts(cfg.Adj[v], u)
			if k >= len(cfg.Adj[v]) || cfg.Adj[v][k] != u {
				t.Fatalf("reference: adjacency not symmetric at (%d, %d)", u, v)
			}
			r.rev[u][j] = k
		}
	}
	r.edgeArrv = make([][]time.Duration, n)
	for v := 0; v < n; v++ {
		r.edgeArrv[v] = make([]time.Duration, len(cfg.Adj[v]))
	}
	return r
}

func (r *refBroadcast) broadcast(source int) ([]time.Duration, [][]time.Duration) {
	for v := range r.arrival {
		r.arrival[v] = stats.InfDuration
		for i := range r.edgeArrv[v] {
			r.edgeArrv[v][i] = stats.InfDuration
		}
	}
	r.sched.Reset()
	r.arrival[source] = 0
	r.forward(source, 0)
	r.sched.Run()
	return r.arrival, r.edgeArrv
}

func (r *refBroadcast) forward(v int, at time.Duration) {
	var interval time.Duration
	if r.cfg.SendInterval != nil {
		interval = r.cfg.SendInterval[v]
	}
	for j, w := range r.cfg.Adj[v] {
		depart := at + time.Duration(j)*interval
		deliverAt := depart + r.cfg.Latency.Delay(v, w)
		w, slot := w, r.rev[v][j]
		if err := r.sched.At(deliverAt, func() { r.deliver(w, slot) }); err != nil {
			panic(err)
		}
	}
}

func (r *refBroadcast) deliver(w, slot int) {
	now := r.sched.Now()
	if r.edgeArrv[w][slot] > now {
		r.edgeArrv[w][slot] = now
	}
	if r.arrival[w] == stats.InfDuration {
		r.arrival[w] = now
		if r.cfg.Silent == nil || !r.cfg.Silent[w] {
			r.forward(w, now+r.cfg.Forward[w])
		}
	}
}

// randomCase samples one property-test network: random size/degree, random
// heterogeneous forward delays, optionally serialized uploads and a random
// silent set.
func randomCase(t *testing.T, seed uint64, serialized, silent bool) Config {
	t.Helper()
	root := rng.New(seed)
	n := 20 + int(root.IntN(60))
	deg := 2 + int(root.IntN(4))
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		t.Fatal(err)
	}
	model, err := latency.NewGeographic(u, root.Derive("lat"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, deg, 3*deg, root.Derive("topo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Adj:     tbl.Undirected(),
		Latency: model,
		Forward: make([]time.Duration, n),
	}
	for i := range cfg.Forward {
		cfg.Forward[i] = time.Duration(root.IntN(80)) * time.Millisecond
	}
	if serialized {
		cfg.SendInterval = make([]time.Duration, n)
		for i := range cfg.SendInterval {
			cfg.SendInterval[i] = time.Duration(root.IntN(20)) * time.Millisecond
		}
	}
	if silent {
		cfg.Silent = make([]bool, n)
		for i := range cfg.Silent {
			cfg.Silent[i] = root.Float64() < 0.2
		}
	}
	return cfg
}

// TestTypedSchedulerMatchesClosureScheduler is the property test of the
// typed delivery queue: on randomized topologies — with and without upload
// serialization and silent nodes — the CSR Broadcast must produce exactly
// the Arrival and EdgeArrival matrices of the closure-based des.Scheduler
// reference.
func TestTypedSchedulerMatchesClosureScheduler(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for _, mode := range []struct {
			name               string
			serialized, silent bool
		}{
			{"plain", false, false},
			{"serialized", true, false},
			{"silent", false, true},
			{"serialized-silent", true, true},
		} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, mode.name), func(t *testing.T) {
				cfg := randomCase(t, seed*7919+1, mode.serialized, mode.silent)
				sim, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref := newRefBroadcast(t, cfg)
				n := len(cfg.Adj)
				for _, src := range []int{0, n / 2, n - 1} {
					got, err := sim.Broadcast(src)
					if err != nil {
						t.Fatal(err)
					}
					wantArr, wantEdge := ref.broadcast(src)
					for v := 0; v < n; v++ {
						if got.Arrival[v] != wantArr[v] {
							t.Fatalf("src %d: arrival[%d] = %v, reference %v", src, v, got.Arrival[v], wantArr[v])
						}
						for i := range wantEdge[v] {
							if got.EdgeArrival[v][i] != wantEdge[v][i] {
								t.Fatalf("src %d: edgeArrival[%d][%d] = %v, reference %v",
									src, v, i, got.EdgeArrival[v][i], wantEdge[v][i])
							}
						}
					}
				}
			})
		}
	}
}

// TestReconfigureMatchesFresh proves in-place CSR reconfiguration is
// equivalent to building a fresh simulator, and that existing Broadcasters
// resynchronize across the topology change.
func TestReconfigureMatchesFresh(t *testing.T) {
	cfgA := randomCase(t, 42, false, false)
	n := len(cfgA.Adj)
	sim, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	bc := sim.NewBroadcaster()
	if _, err := bc.Broadcast(0); err != nil {
		t.Fatal(err)
	}

	// A different topology over the same universe and tables.
	root := rng.New(43)
	tbl, err := topology.Random(n, 4, 12, root)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfgA
	cfgB.Adj = tbl.Undirected()
	if err := sim.Reconfigure(cfgB.Adj); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, n - 1} {
		got, err := bc.Broadcast(src) // pre-reconfigure Broadcaster, reused
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if got.Arrival[v] != want.Arrival[v] {
				t.Fatalf("src %d: arrival[%d] = %v, fresh %v", src, v, got.Arrival[v], want.Arrival[v])
			}
			for i := range want.EdgeArrival[v] {
				if got.EdgeArrival[v][i] != want.EdgeArrival[v][i] {
					t.Fatalf("src %d: edge[%d][%d] mismatch", src, v, i)
				}
			}
		}
		gotAn, err := sim.ArrivalAnalytic(src)
		if err != nil {
			t.Fatal(err)
		}
		wantAn, err := fresh.ArrivalAnalytic(src)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if gotAn[v] != wantAn[v] {
				t.Fatalf("src %d: analytic[%d] = %v, fresh %v", src, v, gotAn[v], wantAn[v])
			}
		}
	}
}

// TestPrevalidatedRejectsAsymmetry proves the trusted constructor still
// detects a malformed adjacency via the reverse-index sweep rather than
// silently corrupting the reverse index.
func TestPrevalidatedRejectsAsymmetry(t *testing.T) {
	cfg := Config{
		Adj:     [][]int{{1, 2}, {0}, {}},
		Latency: latency.Constant{Nodes: 3, D: time.Millisecond},
		Forward: make([]time.Duration, 3),
	}
	if _, err := NewPrevalidated(cfg); err == nil {
		t.Fatal("NewPrevalidated accepted an asymmetric adjacency")
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an asymmetric adjacency")
	}
}

// TestReconfigureRejectsResize pins the contract that the node count is
// fixed at construction (the latency/forward tables stay valid).
func TestReconfigureRejectsResize(t *testing.T) {
	cfg := lineConfig(4, 0)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Reconfigure([][]int{{1}, {0}}); err == nil {
		t.Fatal("Reconfigure accepted a different node count")
	}
}
