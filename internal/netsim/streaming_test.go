package netsim

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// randomSimMode is randomSim with an explicit latency mode, so streaming
// tests can build twin simulators over the identical sampled network.
func randomSimMode(t testing.TB, n int, sendInterval []time.Duration, mode latency.Mode) *Simulator {
	t.Helper()
	root := rng.New(99)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		t.Fatal(err)
	}
	model, err := latency.NewGeographic(u, root.Derive("lat"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, root.Derive("topo"))
	if err != nil {
		t.Fatal(err)
	}
	fwd := make([]time.Duration, n)
	for i := range fwd {
		fwd[i] = 50 * time.Millisecond
	}
	sim, err := New(Config{Adj: tbl.Undirected(), Latency: model, Forward: fwd,
		SendInterval: sendInterval, LatencyMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestStreamingMatchesPrecomputed is the streaming-latency acceptance
// check: with identical inputs, a streaming simulator produces bit-for-bit
// the results of the precomputed one — Broadcast arrivals, per-edge
// arrivals, and the analytic Dijkstra pass — in both the analytic regime
// and under serialized uploads.
func TestStreamingMatchesPrecomputed(t *testing.T) {
	const n, sources = 250, 16
	for _, name := range []string{"analytic-regime", "serialized-uploads"} {
		t.Run(name, func(t *testing.T) {
			var intervals []time.Duration
			if name == "serialized-uploads" {
				intervals = make([]time.Duration, n)
				for i := range intervals {
					intervals[i] = time.Duration(i%7) * time.Millisecond
				}
			}
			pre := randomSimMode(t, n, intervals, latency.Precomputed)
			str := randomSimMode(t, n, intervals, latency.Streaming)
			if pre.Streaming() {
				t.Fatal("precomputed simulator reports streaming mode")
			}
			if !str.Streaming() {
				t.Fatal("streaming simulator reports precomputed mode")
			}
			if len(str.edgeDelay) != 0 {
				t.Fatalf("streaming simulator retains %d precomputed edge delays", len(str.edgeDelay))
			}
			for src := 0; src < sources; src++ {
				want, err := pre.Broadcast(src)
				if err != nil {
					t.Fatal(err)
				}
				wantCopy := snapshot(want)
				got, err := str.Broadcast(src)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, wantCopy, snapshot(got))

				if intervals != nil {
					// The analytic pass is undefined under upload
					// serialization.
					continue
				}
				wantArr, err := pre.ArrivalAnalytic(src)
				if err != nil {
					t.Fatal(err)
				}
				gotArr, err := str.ArrivalAnalytic(src)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantArr {
					if wantArr[v] != gotArr[v] {
						t.Fatalf("source %d node %d: analytic arrival %v != %v", src, v, gotArr[v], wantArr[v])
					}
				}
			}
		})
	}
}

// TestLatencyModeAutoThreshold pins the auto-selection contract the
// simulator builds on: Auto resolves to precomputed below the threshold
// and to streaming at and above it.
func TestLatencyModeAutoThreshold(t *testing.T) {
	if got := latency.Auto.Resolve(latency.StreamingAutoThreshold - 1); got != latency.Precomputed {
		t.Fatalf("Auto below threshold resolves to %v, want precomputed", got)
	}
	if got := latency.Auto.Resolve(latency.StreamingAutoThreshold); got != latency.Streaming {
		t.Fatalf("Auto at threshold resolves to %v, want streaming", got)
	}
	if got := latency.Streaming.Resolve(10); got != latency.Streaming {
		t.Fatalf("explicit streaming resolves to %v", got)
	}
	if got := latency.Precomputed.Resolve(1 << 30); got != latency.Precomputed {
		t.Fatalf("explicit precomputed resolves to %v", got)
	}
}

// TestStreamingValidation checks an invalid mode is rejected at
// construction.
func TestStreamingValidation(t *testing.T) {
	sim := randomSim(t, 30, nil)
	cfg := sim.cfg
	cfg.LatencyMode = latency.Mode(99)
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an invalid latency mode")
	}
}
