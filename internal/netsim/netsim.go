// Package netsim simulates block broadcast over a p2p topology following
// the paper's network model (§2.1):
//
//   - when a node mines a block it immediately starts relaying it to every
//     neighbor; sending over link (u, v) takes the constant δ(u, v) from the
//     latency model;
//   - a node that receives a block validates it for Δ_v before relaying it
//     onward — to every neighbor, including the one it came from (that echo
//     is the per-neighbor timestamp Perigee scores);
//   - each directed edge therefore carries the block exactly once, and node
//     v records, for each neighbor u, the local time t(u, v) at which u's
//     copy arrived.
//
// Two equivalent computations are provided: an event-driven simulation on
// the des engine (which also supports upload serialization) and an analytic
// Dijkstra pass that produces only first-arrival times, used for fast
// evaluation of the λ_v metric. Integration tests assert they agree.
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/des"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// Config describes one simulated network instance. The adjacency is the
// undirected communication graph (outgoing ∪ incoming connections, plus any
// pinned relay edges).
type Config struct {
	// Adj holds symmetric adjacency lists; Adj[v] must be ascending.
	Adj [][]int
	// Latency gives the per-link one-way delay δ(u, v).
	Latency latency.Model
	// Forward is the per-node validation/forwarding delay Δ_v applied
	// before a received block is relayed onward. The block's miner pays no
	// forwarding delay (it validated the block while mining it).
	Forward []time.Duration
	// SendInterval, if non-nil, serializes each node's uploads: when node v
	// forwards a block, its i-th neighbor (adjacency order) is sent the
	// block i*SendInterval[v] later. This models limited upload bandwidth
	// (block size / uplink rate). A nil slice means all sends start
	// simultaneously, the paper's default "small blocks" regime.
	SendInterval []time.Duration
	// Silent, if non-nil, marks free-riding nodes: they receive blocks but
	// never relay them (the protocol deviation of §1 whose punishment by
	// Perigee the incentive experiments measure). A silent source still
	// announces its own blocks.
	Silent []bool
}

// Simulator holds the immutable topology of one simulated network: the
// validated adjacency, its reverse index, and the latency/forward/silent
// tables. A Simulator carries no per-broadcast state, so a single instance
// may be shared by any number of goroutines, each running broadcasts
// through its own Broadcaster (see NewBroadcaster).
type Simulator struct {
	cfg Config
	n   int

	// revIndex[u][j] is the position of u in Adj[v]'s list where
	// v = Adj[u][j]; it lets a sender record its announcement in the
	// receiver's row without searching.
	revIndex [][]int

	// base serves the convenience Broadcast method, created on first use
	// (parallel callers go through NewBroadcaster and never pay for it);
	// it makes a bare Simulator behave like the pre-Broadcaster API for
	// single-goroutine callers.
	base *Broadcaster
}

// Broadcaster owns the mutable per-broadcast state (event scheduler and
// arrival scratch) for one goroutine's broadcasts over a shared Simulator.
// A Broadcaster is not safe for concurrent use; create one per worker.
type Broadcaster struct {
	sim   *Simulator
	sched des.Scheduler

	// Scratch buffers, reused across Broadcast calls; Result aliases them.
	arrival     []time.Duration
	edgeArrival [][]time.Duration
}

// New validates the config and builds a simulator. The adjacency must be
// symmetric, self-loop free, ascending, and within range.
func New(cfg Config) (*Simulator, error) {
	n := len(cfg.Adj)
	if n == 0 {
		return nil, fmt.Errorf("netsim: empty adjacency")
	}
	if cfg.Latency == nil {
		return nil, fmt.Errorf("netsim: nil latency model")
	}
	if cfg.Latency.N() < n {
		return nil, fmt.Errorf("netsim: latency model covers %d nodes, topology has %d", cfg.Latency.N(), n)
	}
	if len(cfg.Forward) != n {
		return nil, fmt.Errorf("netsim: forward delays cover %d nodes, want %d", len(cfg.Forward), n)
	}
	for v, d := range cfg.Forward {
		if d < 0 {
			return nil, fmt.Errorf("netsim: node %d has negative forward delay %v", v, d)
		}
	}
	if cfg.SendInterval != nil {
		if len(cfg.SendInterval) != n {
			return nil, fmt.Errorf("netsim: send intervals cover %d nodes, want %d", len(cfg.SendInterval), n)
		}
		for v, d := range cfg.SendInterval {
			if d < 0 {
				return nil, fmt.Errorf("netsim: node %d has negative send interval %v", v, d)
			}
		}
	}
	if cfg.Silent != nil && len(cfg.Silent) != n {
		return nil, fmt.Errorf("netsim: silent mask covers %d nodes, want %d", len(cfg.Silent), n)
	}
	for u, nbrs := range cfg.Adj {
		if !sort.IntsAreSorted(nbrs) {
			return nil, fmt.Errorf("netsim: adjacency of node %d is not ascending", u)
		}
		for i, v := range nbrs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("netsim: node %d lists out-of-range neighbor %d", u, v)
			}
			if v == u {
				return nil, fmt.Errorf("netsim: node %d lists itself", u)
			}
			if i > 0 && nbrs[i-1] == v {
				return nil, fmt.Errorf("netsim: node %d lists neighbor %d twice", u, v)
			}
		}
	}
	rev := make([][]int, n)
	for u := 0; u < n; u++ {
		rev[u] = make([]int, len(cfg.Adj[u]))
		for j, v := range cfg.Adj[u] {
			k := sort.SearchInts(cfg.Adj[v], u)
			if k >= len(cfg.Adj[v]) || cfg.Adj[v][k] != u {
				return nil, fmt.Errorf("netsim: adjacency not symmetric: %d lists %d but not vice versa", u, v)
			}
			rev[u][j] = k
		}
	}
	return &Simulator{
		cfg:      cfg,
		n:        n,
		revIndex: rev,
	}, nil
}

// N returns the number of nodes.
func (s *Simulator) N() int { return s.n }

// Adj returns the adjacency the simulator runs on.
func (s *Simulator) Adj() [][]int { return s.cfg.Adj }

// NewBroadcaster allocates an independent broadcast context over the shared
// topology. Broadcasters are independent of one another: any number may run
// Broadcast concurrently on the same Simulator, one per goroutine.
func (s *Simulator) NewBroadcaster() *Broadcaster {
	b := &Broadcaster{
		sim:     s,
		arrival: make([]time.Duration, s.n),
	}
	b.edgeArrival = make([][]time.Duration, s.n)
	for v := 0; v < s.n; v++ {
		b.edgeArrival[v] = make([]time.Duration, len(s.cfg.Adj[v]))
	}
	return b
}

// Result is the outcome of one broadcast. Its slices alias the owning
// Broadcaster's scratch buffers: they are valid until that Broadcaster's
// next Broadcast call. Callers that need to keep them must copy.
type Result struct {
	// Source is the mining node.
	Source int
	// Arrival[v] is the first time v held the block (InfDuration when the
	// block never reached v). Arrival[Source] is 0.
	Arrival []time.Duration
	// EdgeArrival[v][i] is when neighbor Adj[v][i]'s announcement of the
	// block reached v, or InfDuration if that neighbor never relayed it.
	EdgeArrival [][]time.Duration
}

// Broadcast simulates flooding a block mined by source at virtual time 0,
// using the Simulator's built-in Broadcaster (created lazily here). It is
// a convenience for single-goroutine callers; concurrent broadcasts must
// go through separate NewBroadcaster contexts.
func (s *Simulator) Broadcast(source int) (Result, error) {
	if s.base == nil {
		s.base = s.NewBroadcaster()
	}
	return s.base.Broadcast(source)
}

// Broadcast simulates flooding a block mined by source at virtual time 0.
func (b *Broadcaster) Broadcast(source int) (Result, error) {
	n := b.sim.n
	if source < 0 || source >= n {
		return Result{}, fmt.Errorf("netsim: source %d out of range (n=%d)", source, n)
	}
	for v := 0; v < n; v++ {
		b.arrival[v] = stats.InfDuration
		row := b.edgeArrival[v]
		for i := range row {
			row[i] = stats.InfDuration
		}
	}
	b.sched.Reset()
	b.arrival[source] = 0
	b.forward(source, 0)
	b.sched.Run()
	return Result{Source: source, Arrival: b.arrival, EdgeArrival: b.edgeArrival}, nil
}

// forward schedules v's announcements to all its neighbors, starting at
// time at (v has validated the block by then).
func (b *Broadcaster) forward(v int, at time.Duration) {
	cfg := &b.sim.cfg
	var interval time.Duration
	if cfg.SendInterval != nil {
		interval = cfg.SendInterval[v]
	}
	for j, w := range cfg.Adj[v] {
		depart := at + time.Duration(j)*interval
		deliverAt := depart + cfg.Latency.Delay(v, w)
		w, slot := w, b.sim.revIndex[v][j]
		// Scheduling in the present or future by construction: delays are
		// validated non-negative, so the error path is unreachable; guard
		// anyway to surface programming errors loudly in tests.
		if err := b.sched.At(deliverAt, func() { b.deliver(w, slot) }); err != nil {
			panic(fmt.Sprintf("netsim: internal scheduling bug: %v", err))
		}
	}
}

// deliver records the announcement arriving at node w in the given
// neighbor slot, and triggers w's own forwarding on first receipt.
func (b *Broadcaster) deliver(w, slot int) {
	now := b.sched.Now()
	cfg := &b.sim.cfg
	if b.edgeArrival[w][slot] > now {
		b.edgeArrival[w][slot] = now
	}
	if b.arrival[w] == stats.InfDuration {
		b.arrival[w] = now
		if cfg.Silent == nil || !cfg.Silent[w] {
			b.forward(w, now+cfg.Forward[w])
		}
	}
}

// ArrivalAnalytic computes the same first-arrival vector as Broadcast via
// Dijkstra, without per-edge bookkeeping. It does not support upload
// serialization (returns an error if SendInterval is set), because
// serialized sends are order-dependent and need the event simulation.
// It allocates its own working state, so it is safe to call concurrently
// from multiple goroutines on a shared Simulator.
func (s *Simulator) ArrivalAnalytic(source int) ([]time.Duration, error) {
	if source < 0 || source >= s.n {
		return nil, fmt.Errorf("netsim: source %d out of range (n=%d)", source, s.n)
	}
	if s.cfg.SendInterval != nil {
		return nil, fmt.Errorf("netsim: analytic arrival unsupported with upload serialization")
	}
	// Arrival(w) = min over neighbors v of Arrival(v) + Δ_v·[v≠source] + δ(v, w).
	weight := func(u, v int) time.Duration { return s.cfg.Latency.Delay(u, v) }
	node := func(v int) time.Duration {
		if v == source {
			return 0
		}
		return s.cfg.Forward[v]
	}
	relays := func(v int) bool {
		// A silent node relays nothing, but a silent miner still announces
		// its own block.
		return v == source || s.cfg.Silent == nil || !s.cfg.Silent[v]
	}
	return dijkstraNodeDelay(s.cfg.Adj, weight, node, relays, source), nil
}

// dijkstraNodeDelay is Dijkstra where relaying through node v additionally
// costs node(v) after v's own arrival, and nodes with relays(v) == false
// absorb blocks without forwarding.
func dijkstraNodeDelay(adj [][]int, weight topology.WeightFunc, node func(int) time.Duration, relays func(int) bool, src int) []time.Duration {
	n := len(adj)
	dist := make([]time.Duration, n)
	for i := range dist {
		dist[i] = stats.InfDuration
	}
	dist[src] = 0
	type item struct {
		v int
		d time.Duration
	}
	// Simple indexed binary heap specialized for this loop.
	heapArr := make([]item, 0, n)
	push := func(it item) {
		heapArr = append(heapArr, it)
		i := len(heapArr) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heapArr[p].d <= heapArr[i].d {
				break
			}
			heapArr[p], heapArr[i] = heapArr[i], heapArr[p]
			i = p
		}
	}
	pop := func() item {
		top := heapArr[0]
		last := len(heapArr) - 1
		heapArr[0] = heapArr[last]
		heapArr = heapArr[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < last && heapArr[l].d < heapArr[smallest].d {
				smallest = l
			}
			if r < last && heapArr[r].d < heapArr[smallest].d {
				smallest = r
			}
			if smallest == i {
				break
			}
			heapArr[i], heapArr[smallest] = heapArr[smallest], heapArr[i]
			i = smallest
		}
		return top
	}
	push(item{v: src, d: 0})
	for len(heapArr) > 0 {
		it := pop()
		if it.d > dist[it.v] {
			continue
		}
		if !relays(it.v) {
			continue
		}
		depart := it.d + node(it.v)
		for _, w := range adj[it.v] {
			d := depart + weight(it.v, w)
			if d < dist[w] {
				dist[w] = d
				push(item{v: w, d: d})
			}
		}
	}
	return dist
}

// arrivalSorter sorts a reusable index slice by arrival time. It implements
// sort.Interface so sorting needs no per-call closure allocation; instances
// are pooled because DelayToFraction runs once per broadcast per evaluation
// pass, from many goroutines at once.
type arrivalSorter struct {
	idx     []int
	arrival []time.Duration
}

func (s *arrivalSorter) Len() int           { return len(s.idx) }
func (s *arrivalSorter) Less(a, b int) bool { return s.arrival[s.idx[a]] < s.arrival[s.idx[b]] }
func (s *arrivalSorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

var arrivalSorterPool = sync.Pool{New: func() any { return new(arrivalSorter) }}

// DelayToFraction returns the earliest time by which nodes holding at least
// frac of the total power have the block, given the per-node arrival
// times. The source (arrival 0) counts. If the reachable mass is below
// frac, it returns InfDuration. Safe for concurrent use.
func DelayToFraction(arrival []time.Duration, power []float64, frac float64) (time.Duration, error) {
	if len(arrival) != len(power) {
		return 0, fmt.Errorf("netsim: arrival has %d entries, power %d", len(arrival), len(power))
	}
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("netsim: fraction %v outside (0, 1]", frac)
	}
	var total float64
	for i, p := range power {
		if p < 0 {
			return 0, fmt.Errorf("netsim: negative power %v at node %d", p, i)
		}
		total += p
	}
	if total <= 0 {
		return 0, fmt.Errorf("netsim: zero total power")
	}
	srt := arrivalSorterPool.Get().(*arrivalSorter)
	if cap(srt.idx) < len(arrival) {
		srt.idx = make([]int, len(arrival))
	}
	srt.idx = srt.idx[:len(arrival)]
	for i := range srt.idx {
		srt.idx[i] = i
	}
	srt.arrival = arrival
	sort.Sort(srt)
	// The epsilon absorbs floating-point shortfall when frac covers the
	// whole network (e.g. frac=1 with power summing to 1-1e-16).
	const eps = 1e-9
	target := frac * total
	result := stats.InfDuration
	var acc float64
	for _, i := range srt.idx {
		if arrival[i] == stats.InfDuration {
			break
		}
		acc += power[i]
		if acc+eps >= target {
			result = arrival[i]
			break
		}
	}
	srt.arrival = nil // don't retain the caller's slice in the pool
	arrivalSorterPool.Put(srt)
	return result, nil
}

// IdealArrival returns the one-hop arrival times of a fully-connected
// network: every node receives the block directly from the source. This is
// the paper's "ideal" lower-bound baseline.
func IdealArrival(model latency.Model, source int) []time.Duration {
	n := model.N()
	out := make([]time.Duration, n)
	for v := 0; v < n; v++ {
		if v == source {
			continue
		}
		out[v] = model.Delay(source, v)
	}
	return out
}
