// Package netsim simulates block broadcast over a p2p topology following
// the paper's network model (§2.1):
//
//   - when a node mines a block it immediately starts relaying it to every
//     neighbor; sending over link (u, v) takes the constant δ(u, v) from the
//     latency model;
//   - a node that receives a block validates it for Δ_v before relaying it
//     onward — to every neighbor, including the one it came from (that echo
//     is the per-neighbor timestamp Perigee scores);
//   - each directed edge therefore carries the block exactly once, and node
//     v records, for each neighbor u, the local time t(u, v) at which u's
//     copy arrived.
//
// # Flat topology layout
//
// The simulator stores the adjacency in CSR (compressed sparse row) form:
// node v's directed edges are the contiguous range rowStart[v] ..
// rowStart[v+1] of three flat arrays — edgeDst (the neighbor), edgeSlot
// (the sender's position in the neighbor's own row, i.e. the precomputed
// reverse index), and edgeDelay (the one-way latency δ, evaluated once per
// edge at build time). The broadcast inner loop is therefore pure array
// walks: forwarding a block pushes typed {time, node, slot} records onto a
// des.DeliveryQueue, and delivering one is two array reads and two
// compare-and-stores. Per-edge arrival times live in one flat buffer that
// Result's per-node EdgeArrival rows alias, so resetting a broadcast is a
// single linear fill. After a Broadcaster's buffers have grown to the
// topology's size, a broadcast performs zero heap allocations
// (alloc_test.go enforces this).
//
// Two equivalent computations are provided: the event-driven simulation
// (which also supports upload serialization) and an analytic Dijkstra pass
// over the same flat arrays that produces only first-arrival times, used
// for fast evaluation of the λ_v metric. Integration tests assert they
// agree, and typedsched_test.go asserts the typed delivery queue reproduces
// the closure-based des.Scheduler bit-for-bit.
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/perigee-net/perigee/internal/des"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/stats"
)

// Config describes one simulated network instance. The adjacency is the
// undirected communication graph (outgoing ∪ incoming connections, plus any
// pinned relay edges).
type Config struct {
	// Adj holds symmetric adjacency lists; Adj[v] must be ascending.
	Adj [][]int
	// Latency gives the per-link one-way delay δ(u, v).
	Latency latency.Model
	// Forward is the per-node validation/forwarding delay Δ_v applied
	// before a received block is relayed onward. The block's miner pays no
	// forwarding delay (it validated the block while mining it).
	Forward []time.Duration
	// SendInterval, if non-nil, serializes each node's uploads: when node v
	// forwards a block, its i-th neighbor (adjacency order) is sent the
	// block i*SendInterval[v] later. This models limited upload bandwidth
	// (block size / uplink rate). A nil slice means all sends start
	// simultaneously, the paper's default "small blocks" regime.
	SendInterval []time.Duration
	// Silent, if non-nil, marks free-riding nodes: they receive blocks but
	// never relay them (the protocol deviation of §1 whose punishment by
	// Perigee the incentive experiments measure). A silent source still
	// announces its own blocks.
	Silent []bool
	// RelayDelay, if non-nil, adds a per-node withholding delay on top of
	// Forward before a received block is relayed onward — the adversarial
	// "accept but forward late" behavior (a WithholdingRelay strategy), kept
	// separate from Forward so honest validation time and deliberate
	// withholding stay independently configurable. Like Forward, it does not
	// apply to a node announcing its own block. The slice is read live at
	// broadcast time, so mid-run mutation (an adversary switching behavior
	// between rounds) takes effect without rebuilding the simulator.
	RelayDelay []time.Duration
	// LatencyMode selects how edge delays are evaluated: precomputed into a
	// per-edge array (fast, O(E) memory) or streamed from the model per
	// event (O(1) latency memory, for 100k+-node runs). The zero value
	// (latency.Auto) picks by network size. Delays are bit-for-bit
	// identical in every mode.
	LatencyMode latency.Mode
}

// Simulator holds the immutable-between-reconfigurations topology of one
// simulated network in CSR form (see the package comment) plus the
// latency/forward/silent tables. A Simulator carries no per-broadcast
// state, so a single instance may be shared by any number of goroutines,
// each running broadcasts through its own Broadcaster (see NewBroadcaster).
// Reconfigure, however, must not run concurrently with any use.
type Simulator struct {
	cfg Config
	n   int

	// CSR topology: node v's directed edges occupy rowStart[v] ..
	// rowStart[v+1] of the edge arrays.
	rowStart  []int32
	edgeDst   []int32
	edgeSlot  []int32         // sender's position in edgeDst[e]'s row (reverse index)
	edgeDelay []time.Duration // empty in streaming mode; see delayOf
	cursor    []int32         // rebuild's per-node sweep cursor, kept to avoid realloc

	// streaming records the resolved latency mode: when set, edgeDelay is
	// not materialized and every hot-path read asks the latency model
	// directly (Model.Delay must then be safe for concurrent use, which the
	// deterministic geographic model is — it only reads immutable tables).
	streaming bool

	// gen counts Reconfigure calls; Broadcasters lazily resynchronize
	// their scratch when they observe a new generation.
	gen uint64

	// base serves the convenience Broadcast method, created on first use
	// (parallel callers go through NewBroadcaster and never pay for it).
	// The once-guarded atomic pointer keeps a concurrent misuse of the
	// documented single-goroutine convenience API from corrupting memory
	// during initialization.
	baseOnce sync.Once
	base     atomic.Pointer[Broadcaster]
}

// Broadcaster owns the mutable per-broadcast state (typed delivery queue
// and arrival scratch) for one goroutine's broadcasts over a shared
// Simulator. A Broadcaster is not safe for concurrent use; create one per
// worker. Broadcasters survive Simulator.Reconfigure: they resize their
// scratch on the next Broadcast.
type Broadcaster struct {
	sim   *Simulator
	gen   uint64
	queue des.DeliveryQueue

	// Scratch buffers, reused across Broadcast calls; Result aliases them.
	// edgeArrival's per-node rows alias the flat edgeFlat buffer through
	// the simulator's rowStart index.
	arrival     []time.Duration
	edgeFlat    []time.Duration
	edgeArrival [][]time.Duration
}

// New validates the config and builds a simulator. The adjacency must be
// symmetric, self-loop free, ascending, and within range.
func New(cfg Config) (*Simulator, error) {
	if err := validateShape(cfg); err != nil {
		return nil, err
	}
	n := len(cfg.Adj)
	for u, nbrs := range cfg.Adj {
		if !sort.IntsAreSorted(nbrs) {
			return nil, fmt.Errorf("netsim: adjacency of node %d is not ascending", u)
		}
		for i, v := range nbrs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("netsim: node %d lists out-of-range neighbor %d", u, v)
			}
			if v == u {
				return nil, fmt.Errorf("netsim: node %d lists itself", u)
			}
			if i > 0 && nbrs[i-1] == v {
				return nil, fmt.Errorf("netsim: node %d lists neighbor %d twice", u, v)
			}
		}
	}
	return newFromValidShape(cfg)
}

// NewPrevalidated builds a simulator for callers that construct the
// adjacency symmetric, sorted, and in range by construction (the engine's
// connection table, MergeAdjacency output), skipping New's per-row
// validation sweep. Symmetry is still verified as a free byproduct of the
// reverse-index build; a genuinely malformed adjacency is reported, not
// silently accepted.
func NewPrevalidated(cfg Config) (*Simulator, error) {
	if err := validateShape(cfg); err != nil {
		return nil, err
	}
	return newFromValidShape(cfg)
}

func newFromValidShape(cfg Config) (*Simulator, error) {
	s := &Simulator{cfg: cfg, n: len(cfg.Adj)}
	if err := s.rebuild(cfg.Adj); err != nil {
		return nil, err
	}
	return s, nil
}

// validateShape checks everything that is O(n) and independent of the edge
// structure: table lengths, non-negative delays, model coverage.
func validateShape(cfg Config) error {
	n := len(cfg.Adj)
	if n == 0 {
		return fmt.Errorf("netsim: empty adjacency")
	}
	if cfg.Latency == nil {
		return fmt.Errorf("netsim: nil latency model")
	}
	if cfg.Latency.N() < n {
		return fmt.Errorf("netsim: latency model covers %d nodes, topology has %d", cfg.Latency.N(), n)
	}
	if len(cfg.Forward) != n {
		return fmt.Errorf("netsim: forward delays cover %d nodes, want %d", len(cfg.Forward), n)
	}
	for v, d := range cfg.Forward {
		if d < 0 {
			return fmt.Errorf("netsim: node %d has negative forward delay %v", v, d)
		}
	}
	if cfg.SendInterval != nil {
		if len(cfg.SendInterval) != n {
			return fmt.Errorf("netsim: send intervals cover %d nodes, want %d", len(cfg.SendInterval), n)
		}
		for v, d := range cfg.SendInterval {
			if d < 0 {
				return fmt.Errorf("netsim: node %d has negative send interval %v", v, d)
			}
		}
	}
	if cfg.Silent != nil && len(cfg.Silent) != n {
		return fmt.Errorf("netsim: silent mask covers %d nodes, want %d", len(cfg.Silent), n)
	}
	if cfg.RelayDelay != nil {
		if len(cfg.RelayDelay) != n {
			return fmt.Errorf("netsim: relay delays cover %d nodes, want %d", len(cfg.RelayDelay), n)
		}
		for v, d := range cfg.RelayDelay {
			if d < 0 {
				return fmt.Errorf("netsim: node %d has negative relay delay %v", v, d)
			}
		}
	}
	if !cfg.LatencyMode.Valid() {
		return fmt.Errorf("netsim: invalid latency mode %d", int(cfg.LatencyMode))
	}
	return nil
}

// rebuild (re)constructs the CSR arrays from adj in place, reusing the
// existing backing arrays when they are large enough. The reverse index is
// computed with an O(E) cursor sweep: visiting sources in ascending order,
// source v must be the next unseen entry of each neighbor's (ascending)
// row — any mismatch proves the adjacency asymmetric.
func (s *Simulator) rebuild(adj [][]int) error {
	n := len(adj)
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	s.cfg.Adj = adj
	s.streaming = s.cfg.LatencyMode.Resolve(n) == latency.Streaming
	s.rowStart = growInt32(s.rowStart, n+1)
	s.edgeDst = growInt32(s.edgeDst, total)
	s.edgeSlot = growInt32(s.edgeSlot, total)
	if s.streaming {
		s.edgeDelay = s.edgeDelay[:0]
	} else {
		s.edgeDelay = growDurations(s.edgeDelay, total)
	}
	pos := int32(0)
	for v, row := range adj {
		s.rowStart[v] = pos
		for _, w := range row {
			s.edgeDst[pos] = int32(w)
			pos++
		}
	}
	s.rowStart[n] = pos
	s.cursor = growInt32(s.cursor, n)
	for i := range s.cursor {
		s.cursor[i] = 0
	}
	for v := 0; v < n; v++ {
		for e := s.rowStart[v]; e < s.rowStart[v+1]; e++ {
			w := s.edgeDst[e]
			k := s.cursor[w]
			s.cursor[w] = k + 1
			if s.rowStart[w]+k >= s.rowStart[w+1] || s.edgeDst[s.rowStart[w]+k] != int32(v) {
				return fmt.Errorf("netsim: adjacency not symmetric: %d lists %d but not vice versa", v, w)
			}
			s.edgeSlot[e] = k
		}
	}
	if !s.streaming {
		if err := latency.PrecomputeEdges(s.cfg.Latency, s.rowStart, s.edgeDst, s.edgeDelay); err != nil {
			return err
		}
	}
	s.gen++
	return nil
}

// delayOf returns the one-way delay of directed edge e leaving node v. In
// precomputed mode it is an array read; in streaming mode the latency model
// is evaluated on the spot. Both paths yield bit-for-bit identical values
// because PrecomputeEdges stores exactly Model.Delay's results.
func (s *Simulator) delayOf(v, e int32) time.Duration {
	if s.streaming {
		return s.cfg.Latency.Delay(int(v), int(s.edgeDst[e]))
	}
	return s.edgeDelay[e]
}

// Streaming reports whether the simulator resolved to the streaming latency
// mode (no per-edge delay array; see latency.Mode).
func (s *Simulator) Streaming() bool { return s.streaming }

// growInt32 returns a slice of length n, reusing buf's capacity if possible.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growDurations returns a slice of length n, reusing buf's capacity.
func growDurations(buf []time.Duration, n int) []time.Duration {
	if cap(buf) < n {
		return make([]time.Duration, n)
	}
	return buf[:n]
}

// Reconfigure replaces the simulator's topology in place, reusing the CSR
// backing arrays. The adjacency is trusted like NewPrevalidated's (sorted,
// in-range, self-loop free by construction; symmetry is still verified).
// The node count must not change, so the latency/forward/silent tables
// stay valid. Reconfigure must not run concurrently with any Broadcast or
// ArrivalAnalytic call; existing Broadcasters resynchronize automatically
// on their next Broadcast.
func (s *Simulator) Reconfigure(adj [][]int) error {
	if len(adj) != s.n {
		return fmt.Errorf("netsim: reconfigure with %d nodes, simulator has %d", len(adj), s.n)
	}
	return s.rebuild(adj)
}

// N returns the number of nodes.
func (s *Simulator) N() int { return s.n }

// Adj returns the adjacency the simulator currently runs on. The rows
// alias the caller-provided config adjacency, not the CSR arrays.
func (s *Simulator) Adj() [][]int { return s.cfg.Adj }

// Degree returns the number of neighbors of v.
func (s *Simulator) Degree(v int) int { return int(s.rowStart[v+1] - s.rowStart[v]) }

// Row returns v's neighbor row of the CSR layout (ascending node IDs).
// Row(v)[i] is the neighbor whose arrival lands in EdgeArrival[v][i].
// Callers must not mutate the returned slice.
func (s *Simulator) Row(v int) []int32 { return s.edgeDst[s.rowStart[v]:s.rowStart[v+1]] }

// NewBroadcaster allocates an independent broadcast context over the shared
// topology. Broadcasters are independent of one another: any number may run
// Broadcast concurrently on the same Simulator, one per goroutine.
func (s *Simulator) NewBroadcaster() *Broadcaster {
	b := &Broadcaster{sim: s}
	b.sync()
	return b
}

// sync sizes the scratch buffers to the simulator's current topology and
// re-aliases the per-node EdgeArrival rows over the flat buffer.
func (b *Broadcaster) sync() {
	s := b.sim
	b.gen = s.gen
	b.arrival = growDurations(b.arrival, s.n)
	edges := int(s.rowStart[s.n])
	b.edgeFlat = growDurations(b.edgeFlat, edges)
	if cap(b.edgeArrival) < s.n {
		b.edgeArrival = make([][]time.Duration, s.n)
	}
	b.edgeArrival = b.edgeArrival[:s.n]
	for v := 0; v < s.n; v++ {
		lo, hi := s.rowStart[v], s.rowStart[v+1]
		b.edgeArrival[v] = b.edgeFlat[lo:hi:hi]
	}
}

// Result is the outcome of one broadcast. Its slices alias the owning
// Broadcaster's scratch buffers: they are valid until that Broadcaster's
// next Broadcast call. Callers that need to keep them must copy.
type Result struct {
	// Source is the mining node.
	Source int
	// Arrival[v] is the first time v held the block (InfDuration when the
	// block never reached v). Arrival[Source] is 0.
	Arrival []time.Duration
	// EdgeArrival[v][i] is when neighbor Adj[v][i]'s announcement of the
	// block reached v, or InfDuration if that neighbor never relayed it.
	// All rows alias one flat per-edge buffer.
	EdgeArrival [][]time.Duration
}

// Broadcast simulates flooding a block mined by source at virtual time 0,
// using the Simulator's built-in Broadcaster (created lazily here). It is
// a convenience for single-goroutine callers; concurrent broadcasts must
// go through separate NewBroadcaster contexts.
func (s *Simulator) Broadcast(source int) (Result, error) {
	b := s.base.Load()
	if b == nil {
		s.baseOnce.Do(func() { s.base.Store(s.NewBroadcaster()) })
		b = s.base.Load()
	}
	return b.Broadcast(source)
}

// Broadcast simulates flooding a block mined by source at virtual time 0.
// Once the Broadcaster's buffers have grown to the topology's size, it
// performs no heap allocations.
func (b *Broadcaster) Broadcast(source int) (Result, error) {
	s := b.sim
	if b.gen != s.gen {
		b.sync()
	}
	if source < 0 || source >= s.n {
		return Result{}, fmt.Errorf("netsim: source %d out of range (n=%d)", source, s.n)
	}
	arrival, edgeFlat := b.arrival, b.edgeFlat
	for i := range arrival {
		arrival[i] = stats.InfDuration
	}
	for i := range edgeFlat {
		edgeFlat[i] = stats.InfDuration
	}
	b.queue.Reset()
	arrival[source] = 0
	b.forward(int32(source), 0)
	b.run()
	return Result{Source: source, Arrival: arrival, EdgeArrival: b.edgeArrival}, nil
}

// forward schedules v's announcements to all its neighbors, starting at
// time at (v has validated the block by then). Delays are validated
// non-negative at construction, so every push is in the present or future.
func (b *Broadcaster) forward(v int32, at time.Duration) {
	s := b.sim
	var interval time.Duration
	if s.cfg.SendInterval != nil {
		interval = s.cfg.SendInterval[v]
	}
	depart := at
	for e := s.rowStart[v]; e < s.rowStart[v+1]; e++ {
		b.queue.Push(des.Delivery{At: depart + s.delayOf(v, e), Node: s.edgeDst[e], Slot: s.edgeSlot[e]})
		depart += interval
	}
}

// run drains the delivery queue: each pop records the announcement arriving
// at its node's neighbor slot, and the first delivery to a node triggers
// that node's own forwarding.
func (b *Broadcaster) run() {
	s := b.sim
	silent, fwd, relay := s.cfg.Silent, s.cfg.Forward, s.cfg.RelayDelay
	for b.queue.Len() > 0 {
		d := b.queue.PopMin()
		idx := s.rowStart[d.Node] + d.Slot
		if b.edgeFlat[idx] > d.At {
			b.edgeFlat[idx] = d.At
		}
		if b.arrival[d.Node] == stats.InfDuration {
			b.arrival[d.Node] = d.At
			if silent == nil || !silent[d.Node] {
				depart := d.At + fwd[d.Node]
				if relay != nil {
					depart += relay[d.Node]
				}
				b.forward(d.Node, depart)
			}
		}
	}
}

// dijkstraItem is one heap entry of the analytic pass.
type dijkstraItem struct {
	d time.Duration
	v int32
}

// dijkstraScratch pools the analytic pass's binary heap so repeated λ_v
// evaluations (once per node per evaluation pass, from many goroutines)
// allocate nothing once warm.
type dijkstraScratch struct {
	heap []dijkstraItem
}

var dijkstraPool = sync.Pool{New: func() any { return new(dijkstraScratch) }}

func (sc *dijkstraScratch) push(it dijkstraItem) {
	sc.heap = append(sc.heap, it)
	h := sc.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].d <= h[i].d {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (sc *dijkstraScratch) pop() dijkstraItem {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sc.heap = h[:last]
	h = sc.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h[l].d < h[smallest].d {
			smallest = l
		}
		if r < last && h[r].d < h[smallest].d {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// ArrivalAnalytic computes the same first-arrival vector as Broadcast via
// Dijkstra over the precomputed per-edge delays, without per-edge
// bookkeeping. It does not support upload serialization (returns an error
// if SendInterval is set), because serialized sends are order-dependent and
// need the event simulation. It is safe to call concurrently from multiple
// goroutines on a shared Simulator.
func (s *Simulator) ArrivalAnalytic(source int) ([]time.Duration, error) {
	return s.ArrivalAnalyticInto(nil, source)
}

// ArrivalAnalyticInto is ArrivalAnalytic writing into dst (reused when its
// capacity suffices, so steady-state callers allocate nothing — the
// Dijkstra heap itself is pooled). It returns the possibly-regrown slice.
func (s *Simulator) ArrivalAnalyticInto(dst []time.Duration, source int) ([]time.Duration, error) {
	if source < 0 || source >= s.n {
		return nil, fmt.Errorf("netsim: source %d out of range (n=%d)", source, s.n)
	}
	if s.cfg.SendInterval != nil {
		return nil, fmt.Errorf("netsim: analytic arrival unsupported with upload serialization")
	}
	// Arrival(w) = min over neighbors v of Arrival(v) + Δ_v·[v≠source] + δ(v, w).
	dist := growDurations(dst, s.n)
	for i := range dist {
		dist[i] = stats.InfDuration
	}
	dist[source] = 0
	silent, fwd, relay := s.cfg.Silent, s.cfg.Forward, s.cfg.RelayDelay
	sc := dijkstraPool.Get().(*dijkstraScratch)
	sc.heap = sc.heap[:0]
	sc.push(dijkstraItem{d: 0, v: int32(source)})
	for len(sc.heap) > 0 {
		it := sc.pop()
		v := it.v
		if it.d > dist[v] {
			continue
		}
		// A silent node relays nothing, but a silent miner still announces
		// its own block.
		if silent != nil && silent[v] && int(v) != source {
			continue
		}
		depart := it.d
		if int(v) != source {
			depart += fwd[v]
			if relay != nil {
				depart += relay[v]
			}
		}
		for e := s.rowStart[v]; e < s.rowStart[v+1]; e++ {
			w := s.edgeDst[e]
			if d := depart + s.delayOf(v, e); d < dist[w] {
				dist[w] = d
				sc.push(dijkstraItem{d: d, v: w})
			}
		}
	}
	dijkstraPool.Put(sc)
	return dist, nil
}

// arrivalSorter sorts a reusable index slice by arrival time. It implements
// sort.Interface so sorting needs no per-call closure allocation; instances
// are pooled because DelayToFraction runs once per broadcast per evaluation
// pass, from many goroutines at once.
type arrivalSorter struct {
	idx     []int
	arrival []time.Duration
}

func (s *arrivalSorter) Len() int           { return len(s.idx) }
func (s *arrivalSorter) Less(a, b int) bool { return s.arrival[s.idx[a]] < s.arrival[s.idx[b]] }
func (s *arrivalSorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

var arrivalSorterPool = sync.Pool{New: func() any { return new(arrivalSorter) }}

// DelayToFraction returns the earliest time by which nodes holding at least
// frac of the total power have the block, given the per-node arrival
// times. The source (arrival 0) counts. If the reachable mass is below
// frac, it returns InfDuration. Safe for concurrent use.
func DelayToFraction(arrival []time.Duration, power []float64, frac float64) (time.Duration, error) {
	if len(arrival) != len(power) {
		return 0, fmt.Errorf("netsim: arrival has %d entries, power %d", len(arrival), len(power))
	}
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("netsim: fraction %v outside (0, 1]", frac)
	}
	var total float64
	for i, p := range power {
		if p < 0 {
			return 0, fmt.Errorf("netsim: negative power %v at node %d", p, i)
		}
		total += p
	}
	if total <= 0 {
		return 0, fmt.Errorf("netsim: zero total power")
	}
	srt := arrivalSorterPool.Get().(*arrivalSorter)
	if cap(srt.idx) < len(arrival) {
		srt.idx = make([]int, len(arrival))
	}
	srt.idx = srt.idx[:len(arrival)]
	for i := range srt.idx {
		srt.idx[i] = i
	}
	srt.arrival = arrival
	sort.Sort(srt)
	// The epsilon absorbs floating-point shortfall when frac covers the
	// whole network (e.g. frac=1 with power summing to 1-1e-16).
	const eps = 1e-9
	target := frac * total
	result := stats.InfDuration
	var acc float64
	for _, i := range srt.idx {
		if arrival[i] == stats.InfDuration {
			break
		}
		acc += power[i]
		if acc+eps >= target {
			result = arrival[i]
			break
		}
	}
	srt.arrival = nil // don't retain the caller's slice in the pool
	arrivalSorterPool.Put(srt)
	return result, nil
}

// IdealArrival returns the one-hop arrival times of a fully-connected
// network: every node receives the block directly from the source. This is
// the paper's "ideal" lower-bound baseline.
func IdealArrival(model latency.Model, source int) []time.Duration {
	n := model.N()
	out := make([]time.Duration, n)
	for v := 0; v < n; v++ {
		if v == source {
			continue
		}
		out[v] = model.Delay(source, v)
	}
	return out
}
