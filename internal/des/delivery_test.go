package des

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// TestDeliveryQueueOrdersByTime pops a shuffled schedule in timestamp order.
func TestDeliveryQueueOrdersByTime(t *testing.T) {
	var q DeliveryQueue
	r := rand.New(rand.NewPCG(1, 2))
	times := make([]time.Duration, 500)
	for i := range times {
		times[i] = time.Duration(r.IntN(10_000)) * time.Microsecond
		q.Push(Delivery{At: times[i], Node: int32(i), Slot: 0})
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	for i, want := range times {
		if q.Len() != len(times)-i {
			t.Fatalf("Len = %d before pop %d", q.Len(), i)
		}
		got := q.PopMin()
		if got.At != want {
			t.Fatalf("pop %d: at = %v, want %v", i, got.At, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// TestDeliveryQueueFIFOTieBreak proves deliveries scheduled for the same
// instant pop in the order they were pushed, the determinism contract the
// closure Scheduler guarantees via sequence numbers and broadcast
// reproducibility depends on.
func TestDeliveryQueueFIFOTieBreak(t *testing.T) {
	var q DeliveryQueue
	const at = 5 * time.Millisecond
	// Interleave tied timestamps with earlier/later ones so ties travel
	// through real sift-up/down paths, not a degenerate sorted heap.
	for i := 0; i < 64; i++ {
		q.Push(Delivery{At: at, Node: int32(i), Slot: int32(i % 7)})
		if i%3 == 0 {
			q.Push(Delivery{At: at + time.Duration(i+1)*time.Millisecond, Node: 1000 + int32(i)})
		}
		if i%5 == 0 {
			q.Push(Delivery{At: time.Duration(i) * time.Microsecond, Node: 2000 + int32(i)})
		}
	}
	next := int32(0)
	for q.Len() > 0 {
		d := q.PopMin()
		if d.At != at {
			continue
		}
		if d.Node != next {
			t.Fatalf("tied deliveries out of FIFO order: got node %d, want %d", d.Node, next)
		}
		if d.Slot != next%7 {
			t.Fatalf("delivery payload corrupted: node %d slot %d", d.Node, d.Slot)
		}
		next++
	}
	if next != 64 {
		t.Fatalf("drained %d tied deliveries, want 64", next)
	}
}

// TestDeliveryQueueReset proves Reset clears pending deliveries and restarts
// the FIFO counter while keeping the backing array.
func TestDeliveryQueueReset(t *testing.T) {
	var q DeliveryQueue
	for i := 0; i < 10; i++ {
		q.Push(Delivery{At: time.Duration(i), Node: int32(i)})
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", q.Len())
	}
	q.Push(Delivery{At: time.Millisecond, Node: 7})
	q.Push(Delivery{At: time.Millisecond, Node: 8})
	if d := q.PopMin(); d.Node != 7 {
		t.Fatalf("post-Reset FIFO broken: got node %d, want 7", d.Node)
	}
	if d := q.PopMin(); d.Node != 8 {
		t.Fatal("post-Reset second pop wrong")
	}
}

// TestDeliveryQueueMatchesScheduler drives both schedulers with one random
// event schedule and asserts identical firing order.
func TestDeliveryQueueMatchesScheduler(t *testing.T) {
	var q DeliveryQueue
	var s Scheduler
	r := rand.New(rand.NewPCG(3, 4))
	var fromScheduler []int32
	for i := 0; i < 300; i++ {
		at := time.Duration(r.IntN(50)) * time.Millisecond // dense ties
		node := int32(i)
		q.Push(Delivery{At: at, Node: node})
		n := node
		if err := s.At(at, func() { fromScheduler = append(fromScheduler, n) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	var fromQueue []int32
	for q.Len() > 0 {
		fromQueue = append(fromQueue, q.PopMin().Node)
	}
	if len(fromQueue) != len(fromScheduler) {
		t.Fatalf("drained %d events, scheduler fired %d", len(fromQueue), len(fromScheduler))
	}
	for i := range fromQueue {
		if fromQueue[i] != fromScheduler[i] {
			t.Fatalf("event %d: typed queue popped node %d, scheduler fired %d", i, fromQueue[i], fromScheduler[i])
		}
	}
}
