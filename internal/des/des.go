// Package des implements a deterministic discrete-event simulation engine:
// a virtual clock plus a binary-heap scheduler with FIFO tie-breaking.
//
// Two schedulers are provided. DeliveryQueue is the typed scheduler the
// broadcast hot path runs on: events are plain {time, node, slot} records
// popped in a loop by the caller, so scheduling an event costs one append
// into a flat heap instead of a closure allocation plus container/heap
// interface boxing. Scheduler is the general closure-based engine,
// retained for future state machines that need arbitrary callbacks and as
// the reference implementation the netsim equivalence tests check the
// typed queue against. Determinism is a hard requirement for reproducing
// the paper's figures: in both schedulers, two events scheduled for the
// same instant always fire in the order they were scheduled.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a discrete-event scheduler. The zero value is ready to use,
// starting at virtual time zero.
type Scheduler struct {
	now    time.Duration
	queue  eventHeap
	nextID uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and is reported rather than silently reordered.
func (s *Scheduler) At(t time.Duration, fn func()) error {
	if t < s.now {
		return fmt.Errorf("des: schedule at %v before now %v", t, s.now)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event function")
	}
	heap.Push(&s.queue, event{at: t, seq: s.nextID, fn: fn})
	s.nextID++
	return nil
}

// After schedules fn to run d after the current virtual time. Negative
// delays are rejected.
func (s *Scheduler) After(d time.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("des: negative delay %v", d)
	}
	return s.At(s.now+d, fn)
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event fired.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires all events with timestamp <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Reset discards pending events and rewinds the clock to zero, allowing a
// Scheduler (and the allocations backing its heap) to be reused across
// simulation runs.
func (s *Scheduler) Reset() {
	s.now = 0
	s.queue = s.queue[:0]
	s.nextID = 0
}

// Delivery is one typed broadcast event: at virtual time At, the block
// announcement crossing some directed edge reaches Node in adjacency slot
// Slot (the sender's position in Node's neighbor row). Node and Slot are
// int32 so a heap entry is three words.
type Delivery struct {
	At   time.Duration
	Node int32
	Slot int32
}

// deliveryItem is a heap entry: a Delivery plus the insertion sequence
// number that breaks timestamp ties FIFO.
type deliveryItem struct {
	at   time.Duration
	seq  uint64
	node int32
	slot int32
}

// less orders items by (timestamp, insertion order).
func (a deliveryItem) less(b deliveryItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// DeliveryQueue is a binary min-heap of Delivery events with FIFO
// tie-breaking, specialized for the broadcast inner loop: no closures, no
// interfaces, no per-event allocations once the backing array has grown to
// the broadcast's high-water mark. The zero value is ready to use. It is
// not safe for concurrent use.
type DeliveryQueue struct {
	items []deliveryItem
	seq   uint64
}

// Len returns the number of pending deliveries.
func (q *DeliveryQueue) Len() int { return len(q.items) }

// Push schedules a delivery. Unlike Scheduler.At, no monotonicity check is
// performed: the caller (which owns the pop loop and therefore the clock)
// is responsible for never scheduling into its own past.
func (q *DeliveryQueue) Push(d Delivery) {
	q.items = append(q.items, deliveryItem{at: d.At, seq: q.seq, node: d.Node, slot: d.Slot})
	q.seq++
	items := q.items
	i := len(items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !items[i].less(items[p]) {
			break
		}
		items[p], items[i] = items[i], items[p]
		i = p
	}
}

// PeekMin returns the earliest pending delivery without removing it. It
// must not be called on an empty queue. The conservative windowed
// (sharded) simulation uses it to find the next global window bound.
func (q *DeliveryQueue) PeekMin() Delivery {
	top := q.items[0]
	return Delivery{At: top.at, Node: top.node, Slot: top.slot}
}

// PopMin removes and returns the earliest pending delivery (FIFO among
// equal timestamps). It must not be called on an empty queue.
func (q *DeliveryQueue) PopMin() Delivery {
	items := q.items
	top := items[0]
	last := len(items) - 1
	items[0] = items[last]
	q.items = items[:last]
	items = q.items
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && items[l].less(items[smallest]) {
			smallest = l
		}
		if r < last && items[r].less(items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		items[i], items[smallest] = items[smallest], items[i]
		i = smallest
	}
	return Delivery{At: top.at, Node: top.node, Slot: top.slot}
}

// Reset discards pending deliveries and the tie-break counter, keeping the
// backing array for reuse across broadcasts.
func (q *DeliveryQueue) Reset() {
	q.items = q.items[:0]
	q.seq = 0
}
