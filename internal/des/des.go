// Package des implements a deterministic discrete-event simulation engine:
// a virtual clock plus a binary-heap scheduler with FIFO tie-breaking.
//
// The engine is deliberately minimal — events are plain closures — because
// every simulation layer above it (block broadcast, bandwidth serialization,
// churn) composes its own state machines out of scheduled callbacks.
// Determinism is a hard requirement for reproducing the paper's figures:
// two events scheduled for the same instant always fire in the order they
// were scheduled.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a discrete-event scheduler. The zero value is ready to use,
// starting at virtual time zero.
type Scheduler struct {
	now    time.Duration
	queue  eventHeap
	nextID uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and is reported rather than silently reordered.
func (s *Scheduler) At(t time.Duration, fn func()) error {
	if t < s.now {
		return fmt.Errorf("des: schedule at %v before now %v", t, s.now)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event function")
	}
	heap.Push(&s.queue, event{at: t, seq: s.nextID, fn: fn})
	s.nextID++
	return nil
}

// After schedules fn to run d after the current virtual time. Negative
// delays are rejected.
func (s *Scheduler) After(d time.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("des: negative delay %v", d)
	}
	return s.At(s.now+d, fn)
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event fired.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires all events with timestamp <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Reset discards pending events and rewinds the clock to zero, allowing a
// Scheduler (and the allocations backing its heap) to be reused across
// simulation runs.
func (s *Scheduler) Reset() {
	s.now = 0
	s.queue = s.queue[:0]
	s.nextID = 0
}
