package des

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Scheduler
	var fired []time.Duration
	times := []time.Duration{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		if err := s.At(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i-1] > fired[i] {
			t.Fatalf("events out of order: %v", fired)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.At(7, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie broken out of FIFO order: %v", order)
		}
	}
}

func TestSchedulingInPastRejected(t *testing.T) {
	var s Scheduler
	if err := s.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := s.At(5, func() {}); err == nil {
		t.Fatal("expected error scheduling in the past")
	}
	if err := s.After(-time.Second, func() {}); err == nil {
		t.Fatal("expected error for negative delay")
	}
	if err := s.At(20, nil); err == nil {
		t.Fatal("expected error for nil function")
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Scheduler
	var at time.Duration
	if err := s.At(10, func() {
		if err := s.After(5, func() { at = s.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var s Scheduler
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			if err := s.After(1, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := s.At(0, chain); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if count != 100 {
		t.Fatalf("chain fired %d times, want 100", count)
	}
	if s.Now() != 99 {
		t.Fatalf("clock = %v, want 99", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	fired := map[time.Duration]bool{}
	for _, at := range []time.Duration{1, 2, 3, 10, 20} {
		at := at
		if err := s.At(at, func() { fired[at] = true }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(5)
	if !fired[1] || !fired[2] || !fired[3] {
		t.Fatal("events before deadline did not fire")
	}
	if fired[10] || fired[20] {
		t.Fatal("events after deadline fired early")
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if !fired[10] || !fired[20] {
		t.Fatal("remaining events did not fire on Run")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var s Scheduler
	if s.Step() {
		t.Fatal("Step on empty scheduler returned true")
	}
}

func TestReset(t *testing.T) {
	var s Scheduler
	if err := s.At(100, func() { t.Error("stale event fired after Reset") }); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Pending() != 0 || s.Now() != 0 {
		t.Fatalf("after reset: pending=%d now=%v", s.Pending(), s.Now())
	}
	ran := false
	if err := s.At(1, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !ran {
		t.Fatal("event after reset did not run")
	}
}

// Property: for any multiset of schedule times, execution order is the
// sorted order, with FIFO among equal times.
func TestOrderProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		var s Scheduler
		type stamp struct {
			at  time.Duration
			seq int
		}
		var fired []stamp
		for i, v := range raw {
			at := time.Duration(v)
			i := i
			if err := s.At(at, func() { fired = append(fired, stamp{at, i}) }); err != nil {
				return false
			}
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		sorted := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
		return sorted
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
