package experiments

import (
	"fmt"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/stats"
)

// scaleDefaultLandmarks is the landmark count the scale scenario falls back
// to when the caller leaves LambdaSources unset: enough sources for stable
// p90/p50 estimates (the error-bound test quantifies this) while keeping
// per-round evaluation at k Dijkstras instead of n.
const scaleDefaultLandmarks = 64

// Scale is the large-n convergence scenario: Perigee-Subset against the
// static random baseline at sizes two orders of magnitude beyond the
// paper's n=1000, exercising the full scale stack — streaming latency
// (automatic at ≥20k nodes), windowed observations, landmark λ-evaluation,
// and optional sharded broadcasts. It reports the per-round p90 and median
// of λ (delay to Fraction of hash power) across the landmark sources, plus
// the random-topology reference, so convergence (a decreasing honest p90
// trajectory) is visible directly in the series.
//
// Unlike the paper-scale figures, evaluation defaults to landmark sampling
// (scaleDefaultLandmarks sources) because an all-sources pass is quadratic
// in n; set LambdaSources explicitly to override, or run the exact pass at
// small n with LambdaSources = Nodes.
func Scale(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.LambdaSources == 0 {
		opt.LambdaSources = scaleDefaultLandmarks
	}
	res := &Result{
		ID:      "scale",
		Title:   fmt.Sprintf("Scale: per-round λ trajectory at n=%d (Perigee-Subset vs static random)", opt.Nodes),
		Options: opt,
	}
	p90Trials := make([][]float64, opt.Trials)
	p50Trials := make([][]float64, opt.Trials)
	random90Trials := make([]float64, opt.Trials)
	outer, innerOpt := splitWorkers(opt, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, outer, func(_, t int) error {
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		randTbl, err := e.buildRandom(LabelRandom)
		if err != nil {
			return err
		}
		r90, err := e.evalTopology(randTbl)
		if err != nil {
			return err
		}
		random90Trials[t] = stats.Percentile(r90, 0.9)

		tbl, err := e.buildRandom("scale")
		if err != nil {
			return err
		}
		engine, err := newExtensionEngine(e, core.Subset, tbl, nil, nil)
		if err != nil {
			return err
		}
		sources := e.landmarks()
		p90 := make([]float64, 0, opt.Rounds)
		p50 := make([]float64, 0, opt.Rounds)
		for r := 0; r < opt.Rounds; r++ {
			if _, err := engine.Step(); err != nil {
				return err
			}
			d, err := engine.Delays(e.opt.Fraction, sources)
			if err != nil {
				return err
			}
			sorted := delaysToSortedMs(d)
			p90 = append(p90, stats.Percentile(sorted, 0.9))
			p50 = append(p50, stats.Percentile(sorted, 0.5))
		}
		p90Trials[t] = p90
		p50Trials[t] = p50
		return nil
	})
	if err != nil {
		return nil, err
	}
	s90, err := aggregate("p90-lambda", p90Trials)
	if err != nil {
		return nil, err
	}
	s50, err := aggregate("p50-lambda", p50Trials)
	if err != nil {
		return nil, err
	}
	res.Series = []Series{s90, s50}
	var random90 stats.Summary
	for t := 0; t < opt.Trials; t++ {
		random90.Add(random90Trials[t])
	}
	mode := opt.LatencyMode.Resolve(opt.Nodes)
	res.Notes = append(res.Notes,
		fmt.Sprintf("scale stack: latency=%s landmarks=%d window=%d shards=%d",
			mode, opt.LambdaSources, opt.ObservationWindow, opt.Shards),
		fmt.Sprintf("static random reference p90: %.0f ms", random90.Mean()),
		fmt.Sprintf("p90 trajectory: %.0f -> %.0f ms over %d rounds (monotone violations: %d)",
			s90.Mean[0], s90.Mean[len(s90.Mean)-1], opt.Rounds, monotoneViolations(s90.Mean)))
	if last := s90.Mean[len(s90.Mean)-1]; last < random90.Mean() {
		res.Notes = append(res.Notes,
			fmt.Sprintf("converged p90 beats the static random baseline by %.0f%%",
				100*(1-last/random90.Mean())))
	}
	return res, nil
}
