package experiments

import (
	"fmt"
	"math"

	"github.com/perigee-net/perigee/internal/adversary"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/parallel"
)

// defaultAdversaryFraction is the historical population share of
// adversaries in the eclipse experiment, used whenever
// Options.AdversaryFraction is left zero.
const defaultAdversaryFraction = 0.15

// adversarySet samples the trial's adversary node indices — the same
// derivation ("adversaries" off the trial root) the hard-coded eclipse
// experiment always used, so framework-driven runs reproduce its results
// exactly.
func adversarySet(e *env) ([]int, error) {
	return adversary.Sample(e.opt.Nodes, e.opt.adversaryFraction(), e.root.Derive("adversaries"))
}

// Eclipse measures neighborhood capture by fast adversaries, now driven
// by the adversary framework's EclipseBias strategy (instant validation,
// no attack phase — the historical configuration). It compares the
// adversarial share of out-neighbor slots on the static random topology
// (= population share, by construction) against the converged Perigee
// topology (higher: consistently-early delivery earns retention), and
// counts eclipsed honest nodes at Options.CaptureThreshold. The paper's
// mitigation argument is structural: the standing exploration quota
// re-randomizes 2 of 8 slots every round, so full capture requires
// winning the random draws too.
func Eclipse(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	frac := opt.adversaryFraction()
	threshold := opt.captureThreshold()
	res := &Result{
		ID: "eclipse",
		Title: fmt.Sprintf("Extension: neighborhood capture by %.0f%% instant-validation adversaries",
			100*frac),
		Options: opt,
	}
	// Per-trial results, merged in trial order after the parallel fan-out.
	type trialStats struct {
		randomShare, perigeeShare       float64
		randomEclipsed, perigeeEclipsed int
	}
	perTrial := make([]trialStats, opt.Trials)
	outer, innerOpt := splitWorkers(opt, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, outer, func(_, t int) error {
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		adversaries, err := adversarySet(e)
		if err != nil {
			return err
		}
		bind, err := adversary.Bind(adversary.NewEclipseBias(0), opt.Nodes, adversaries,
			e.lat, e.forward, e.root.Derive("adversary-strategy"))
		if err != nil {
			return err
		}
		isAdv := bind.Env.IsAdversary

		randTbl, err := e.buildRandom("eclipse-random")
		if err != nil {
			return err
		}
		share, eclipsed := captureStats(randTbl.OutNeighbors, opt.Nodes, isAdv, threshold)
		perTrial[t].randomShare = share
		perTrial[t].randomEclipsed = eclipsed

		tbl, err := e.buildRandom("eclipse-perigee")
		if err != nil {
			return err
		}
		params := core.DefaultParams(core.Subset)
		params.RoundBlocks = e.opt.RoundBlocks
		cfg := core.Config{
			Method:  core.Subset,
			Params:  params,
			Table:   tbl,
			Latency: e.lat,
			Forward: e.forward,
			Power:   e.power,
			Rand:    e.root.Derive("eclipse-engine"),
			Workers: e.opt.Workers,
		}
		bind.Apply(&cfg)
		engine, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		if _, err := engine.Run(e.opt.Rounds); err != nil {
			return err
		}
		share, eclipsed = captureStats(engine.Table().OutNeighbors, opt.Nodes, isAdv, threshold)
		perTrial[t].perigeeShare = share
		perTrial[t].perigeeEclipsed = eclipsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	var (
		randomShare, perigeeShare       float64
		randomEclipsed, perigeeEclipsed int
	)
	for _, ts := range perTrial {
		randomShare += ts.randomShare / float64(opt.Trials)
		perigeeShare += ts.perigeeShare / float64(opt.Trials)
		randomEclipsed += ts.randomEclipsed
		perigeeEclipsed += ts.perigeeEclipsed
	}
	params := core.DefaultParams(core.Subset)
	res.Notes = append(res.Notes,
		fmt.Sprintf("random topology: adversaries hold %.0f%% of honest out-slots; %d honest nodes eclipsed",
			100*randomShare, randomEclipsed),
		fmt.Sprintf("Perigee topology: adversaries hold %.0f%% of honest out-slots; %d honest nodes eclipsed",
			100*perigeeShare, perigeeEclipsed),
		fmt.Sprintf("being fast earns adversaries over-representation (trust gain), but the %d-of-%d exploration quota re-randomizes slots every round, keeping full capture rare",
			params.Explore, params.OutDegree))
	return res, nil
}

// captureStats computes the mean adversarial share of honest nodes'
// outgoing slots and the count of honest nodes whose adversarial slot
// share reaches threshold (1 = every outgoing slot adversarial, the
// historical full-eclipse rule). An honest node without outgoing slots
// still counts toward the mean's denominator — it holds zero adversarial
// slots — but with no neighborhood to capture it can never be eclipsed.
// (Both rules match the historical implementation the regression test
// pins.)
func captureStats(outNeighbors func(int) []int, n int, adversary []bool, threshold float64) (meanShare float64, eclipsed int) {
	honest := 0
	for v := 0; v < n; v++ {
		if adversary[v] {
			continue
		}
		honest++
		outs := outNeighbors(v)
		adv := 0
		for _, u := range outs {
			if adversary[u] {
				adv++
			}
		}
		if len(outs) > 0 {
			meanShare += float64(adv) / float64(len(outs))
			// Integer form of share >= threshold, robust to float division:
			// the node is eclipsed when adv >= ceil(threshold * len(outs)).
			need := int(math.Ceil(threshold*float64(len(outs)) - 1e-9))
			if need < 1 {
				need = 1
			}
			if adv >= need {
				eclipsed++
			}
		}
	}
	if honest > 0 {
		meanShare /= float64(honest)
	}
	return meanShare, eclipsed
}
