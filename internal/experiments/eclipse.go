package experiments

import (
	"fmt"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/parallel"
)

// eclipseAdversaryFraction is the population share of adversaries in the
// eclipse experiment. Adversaries are "honestly fast" — they validate
// instantly, so Perigee's scoring legitimately favors them; §6's concern
// is that such nodes could capture a peer's entire neighborhood.
const eclipseAdversaryFraction = 0.15

// Eclipse measures neighborhood capture by fast adversaries. It compares
// the adversarial share of out-neighbor slots on the static random
// topology (= population share, by construction) against the converged
// Perigee topology (higher: consistently-early delivery earns retention),
// and counts fully-eclipsed honest nodes (every outgoing neighbor
// adversarial). The paper's mitigation argument is structural: the
// standing exploration quota re-randomizes 2 of 8 slots every round, so
// full capture requires winning the random draws too.
func Eclipse(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ID: "eclipse",
		Title: fmt.Sprintf("Extension: neighborhood capture by %.0f%% instant-validation adversaries",
			100*eclipseAdversaryFraction),
		Options: opt,
	}
	// Per-trial results, merged in trial order after the parallel fan-out.
	type trialStats struct {
		randomShare, perigeeShare       float64
		randomEclipsed, perigeeEclipsed int
	}
	perTrial := make([]trialStats, opt.Trials)
	outer, innerOpt := splitWorkers(opt, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, outer, func(_, t int) error {
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		adversary := make([]bool, opt.Nodes)
		perm := e.root.Derive("adversaries").Perm(opt.Nodes)
		for _, v := range perm[:int(eclipseAdversaryFraction*float64(opt.Nodes))] {
			adversary[v] = true
			e.forward[v] = 0 // instant validation: consistently early delivery
		}

		randTbl, err := e.buildRandom("eclipse-random")
		if err != nil {
			return err
		}
		share, eclipsed := captureStats(randTbl.OutNeighbors, opt.Nodes, adversary)
		perTrial[t].randomShare = share
		perTrial[t].randomEclipsed = eclipsed

		tbl, err := e.buildRandom("eclipse-perigee")
		if err != nil {
			return err
		}
		params := core.DefaultParams(core.Subset)
		params.RoundBlocks = e.opt.RoundBlocks
		engine, err := core.NewEngine(core.Config{
			Method:  core.Subset,
			Params:  params,
			Table:   tbl,
			Latency: e.lat,
			Forward: e.forward,
			Power:   e.power,
			Rand:    e.root.Derive("eclipse-engine"),
			Workers: e.opt.Workers,
		})
		if err != nil {
			return err
		}
		if _, err := engine.Run(e.opt.Rounds); err != nil {
			return err
		}
		share, eclipsed = captureStats(engine.Table().OutNeighbors, opt.Nodes, adversary)
		perTrial[t].perigeeShare = share
		perTrial[t].perigeeEclipsed = eclipsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	var (
		randomShare, perigeeShare       float64
		randomEclipsed, perigeeEclipsed int
	)
	for _, ts := range perTrial {
		randomShare += ts.randomShare / float64(opt.Trials)
		perigeeShare += ts.perigeeShare / float64(opt.Trials)
		randomEclipsed += ts.randomEclipsed
		perigeeEclipsed += ts.perigeeEclipsed
	}
	params := core.DefaultParams(core.Subset)
	res.Notes = append(res.Notes,
		fmt.Sprintf("random topology: adversaries hold %.0f%% of honest out-slots; %d honest nodes fully eclipsed",
			100*randomShare, randomEclipsed),
		fmt.Sprintf("Perigee topology: adversaries hold %.0f%% of honest out-slots; %d honest nodes fully eclipsed",
			100*perigeeShare, perigeeEclipsed),
		fmt.Sprintf("being fast earns adversaries over-representation (trust gain), but the %d-of-%d exploration quota re-randomizes slots every round, keeping full capture rare",
			params.Explore, params.OutDegree))
	return res, nil
}

// captureStats computes the mean adversarial share of honest nodes'
// outgoing slots and the count of fully-eclipsed honest nodes.
func captureStats(outNeighbors func(int) []int, n int, adversary []bool) (meanShare float64, eclipsed int) {
	honest := 0
	for v := 0; v < n; v++ {
		if adversary[v] {
			continue
		}
		honest++
		outs := outNeighbors(v)
		adv := 0
		for _, u := range outs {
			if adversary[u] {
				adv++
			}
		}
		if len(outs) > 0 {
			meanShare += float64(adv) / float64(len(outs))
			if adv == len(outs) {
				eclipsed++
			}
		}
	}
	if honest > 0 {
		meanShare /= float64(honest)
	}
	return meanShare, eclipsed
}
