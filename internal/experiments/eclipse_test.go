package experiments

import (
	"fmt"
	"strings"
	"testing"

	"github.com/perigee-net/perigee/internal/core"
)

// legacyEclipseTrial reproduces one trial of the hard-coded eclipse
// implementation this repo shipped before the adversary framework:
// adversaries drawn from the "adversaries" stream, their validation
// delay zeroed in place, a Subset engine seeded from "eclipse-perigee"
// and driven by the "eclipse-engine" stream, capture measured with the
// historical full-eclipse rule. The framework-driven Eclipse must
// reproduce its numbers exactly.
func legacyEclipseTrial(t *testing.T, opt Options, trial int) (randomShare, perigeeShare float64, randomEclipsed, perigeeEclipsed int) {
	t.Helper()
	e, err := newEnv(opt, trial)
	if err != nil {
		t.Fatal(err)
	}
	adversary := make([]bool, opt.Nodes)
	perm := e.root.Derive("adversaries").Perm(opt.Nodes)
	for _, v := range perm[:int(0.15*float64(opt.Nodes))] {
		adversary[v] = true
		e.forward[v] = 0
	}
	legacyCapture := func(outNeighbors func(int) []int) (float64, int) {
		honest, share, eclipsed := 0, 0.0, 0
		for v := 0; v < opt.Nodes; v++ {
			if adversary[v] {
				continue
			}
			honest++
			outs := outNeighbors(v)
			adv := 0
			for _, u := range outs {
				if adversary[u] {
					adv++
				}
			}
			if len(outs) > 0 {
				share += float64(adv) / float64(len(outs))
				if adv == len(outs) {
					eclipsed++
				}
			}
		}
		return share / float64(honest), eclipsed
	}
	randTbl, err := e.buildRandom("eclipse-random")
	if err != nil {
		t.Fatal(err)
	}
	randomShare, randomEclipsed = legacyCapture(randTbl.OutNeighbors)

	tbl, err := e.buildRandom("eclipse-perigee")
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams(core.Subset)
	params.RoundBlocks = opt.RoundBlocks
	engine, err := core.NewEngine(core.Config{
		Method:  core.Subset,
		Params:  params,
		Table:   tbl,
		Latency: e.lat,
		Forward: e.forward,
		Power:   e.power,
		Rand:    e.root.Derive("eclipse-engine"),
		Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(opt.Rounds); err != nil {
		t.Fatal(err)
	}
	perigeeShare, perigeeEclipsed = legacyCapture(engine.Table().OutNeighbors)
	return randomShare, perigeeShare, randomEclipsed, perigeeEclipsed
}

// TestEclipseMatchesLegacyImplementation pins the framework-driven
// eclipse scenario to the historical hard-coded implementation for the
// default adversary fraction: same capture shares, same eclipse counts.
func TestEclipseMatchesLegacyImplementation(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Nodes = 150
	opt.Rounds = 5
	opt.Trials = 2

	var randomShare, perigeeShare float64
	var randomEclipsed, perigeeEclipsed int
	for trial := 0; trial < opt.Trials; trial++ {
		rs, ps, re, pe := legacyEclipseTrial(t, opt, trial)
		randomShare += rs / float64(opt.Trials)
		perigeeShare += ps / float64(opt.Trials)
		randomEclipsed += re
		perigeeEclipsed += pe
	}

	res, err := Eclipse(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantRandom := fmt.Sprintf("random topology: adversaries hold %.0f%% of honest out-slots; %d honest nodes eclipsed",
		100*randomShare, randomEclipsed)
	wantPerigee := fmt.Sprintf("Perigee topology: adversaries hold %.0f%% of honest out-slots; %d honest nodes eclipsed",
		100*perigeeShare, perigeeEclipsed)
	if res.Notes[0] != wantRandom {
		t.Errorf("random capture diverged from legacy implementation:\n got  %q\n want %q", res.Notes[0], wantRandom)
	}
	if res.Notes[1] != wantPerigee {
		t.Errorf("Perigee capture diverged from legacy implementation:\n got  %q\n want %q", res.Notes[1], wantPerigee)
	}
}

func TestEclipseHonorsOptionFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Nodes = 120
	opt.Rounds = 3
	opt.AdversaryFraction = 0.3
	res, err := Eclipse(opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := "capture by 30% instant-validation adversaries"; !strings.Contains(res.Title, want) {
		t.Errorf("title %q does not reflect the configured fraction", res.Title)
	}
}

func TestOptionsAdversaryValidation(t *testing.T) {
	opt := ShortOptions()
	opt.AdversaryFraction = 1
	if err := opt.validate(); err == nil {
		t.Error("adversary fraction 1 accepted")
	}
	opt = ShortOptions()
	opt.AdversaryFraction = -0.1
	if err := opt.validate(); err == nil {
		t.Error("negative adversary fraction accepted")
	}
	opt = ShortOptions()
	opt.CaptureThreshold = 1.5
	if err := opt.validate(); err == nil {
		t.Error("capture threshold above 1 accepted")
	}
	opt = ShortOptions()
	if got := opt.adversaryFraction(); got != defaultAdversaryFraction {
		t.Errorf("zero fraction resolves to %v, want %v", got, defaultAdversaryFraction)
	}
	if got := opt.captureThreshold(); got != 1 {
		t.Errorf("zero threshold resolves to %v, want 1", got)
	}
}

func TestCaptureStatsEdgeCases(t *testing.T) {
	outs := map[int][]int{0: {1, 2}, 1: {0, 2}, 2: {0, 1}, 3: nil}
	neighbors := func(v int) []int { return outs[v] }

	t.Run("zero adversaries", func(t *testing.T) {
		share, eclipsed := captureStats(neighbors, 4, make([]bool, 4), 1)
		if share != 0 || eclipsed != 0 {
			t.Errorf("share %v eclipsed %d, want 0/0", share, eclipsed)
		}
	})
	t.Run("all adversaries", func(t *testing.T) {
		share, eclipsed := captureStats(neighbors, 4, []bool{true, true, true, true}, 1)
		if share != 0 || eclipsed != 0 {
			t.Errorf("no honest nodes: share %v eclipsed %d, want 0/0", share, eclipsed)
		}
	})
	t.Run("isolated node", func(t *testing.T) {
		// Node 3 has no outgoing slots: it still counts toward the mean's
		// denominator (holding zero adversarial slots), but it can never
		// be eclipsed.
		share, eclipsed := captureStats(neighbors, 4, []bool{false, true, true, false}, 1)
		// Honest nodes: 0 (2/2 adversarial) and 3 (isolated, share 0) →
		// mean (1.0 + 0) / 2.
		if want := 0.5; share != want {
			t.Errorf("share %v, want %v", share, want)
		}
		if eclipsed != 1 {
			t.Errorf("eclipsed %d, want 1 (node 0 fully captured; isolated node cannot be)", eclipsed)
		}
	})
	t.Run("threshold", func(t *testing.T) {
		// Node 0's slots are 1/2 adversarial: eclipsed at threshold 0.5,
		// not at 1.
		mask := []bool{false, true, false, false}
		if _, eclipsed := captureStats(neighbors, 4, mask, 1); eclipsed != 0 {
			t.Errorf("threshold 1: eclipsed %d, want 0", eclipsed)
		}
		if _, eclipsed := captureStats(neighbors, 4, mask, 0.5); eclipsed != 2 {
			// Nodes 0 and 2 each have exactly half their slots adversarial.
			t.Errorf("threshold 0.5: eclipsed %d, want 2", eclipsed)
		}
	})
}

// TestAdversarialScenarioShape exercises the generic adversarial runner
// end to end at a tiny scale: six series (three attacked, three clean)
// over the same honest population, plus degradation notes.
func TestAdversarialScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial run")
	}
	opt := ShortOptions()
	opt.Nodes = 60
	opt.Rounds = 3
	opt.RoundBlocks = 20
	res, err := Run("adversary-withholding", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("got %d series, want 6", len(res.Series))
	}
	honest := opt.Nodes - int(defaultAdversaryFraction*float64(opt.Nodes))
	for _, s := range res.Series {
		if len(s.Mean) != honest {
			t.Errorf("series %s covers %d nodes, want %d honest", s.Label, len(s.Mean), honest)
		}
	}
	if _, ok := adversaryDegradations(res); !ok {
		t.Error("degradations not derivable from result")
	}
	if len(res.Notes) != 4 {
		t.Errorf("got %d notes: %v", len(res.Notes), res.Notes)
	}
}

// TestAdversarialDeterministicAcrossWorkers pins the adversarial runner
// to the repo-wide reproducibility contract: identical results at any
// worker count.
func TestAdversarialDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial run")
	}
	opt := ShortOptions()
	opt.Nodes = 50
	opt.Rounds = 2
	opt.RoundBlocks = 10
	run := func(workers int) *Result {
		o := opt
		o.Workers = workers
		res, err := Run("adversary-latency-liar", o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for i := range a.Series {
		for j := range a.Series[i].Mean {
			if a.Series[i].Mean[j] != b.Series[i].Mean[j] {
				t.Fatalf("series %s rank %d differs across worker counts: %v vs %v",
					a.Series[i].Label, j, a.Series[i].Mean[j], b.Series[i].Mean[j])
			}
		}
	}
}
