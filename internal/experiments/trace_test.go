package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/trace"
)

// tracedOptions is a minimal traced figure configuration (golden-test
// scale) with counterfactual evaluation on.
func tracedOptions() Options {
	return Options{
		Nodes:           60,
		Trials:          2,
		Rounds:          3,
		RoundBlocks:     15,
		Fraction:        0.9,
		Seed:            7,
		MeanValidation:  50 * time.Millisecond,
		TraceLevel:      int(core.TraceDecisions),
		CounterfactualK: 2,
	}
}

// TestTracedFigureReportsRegret runs a traced figure end to end and checks
// the per-arm regret summaries: every Perigee arm is summarized, the
// Subset arm evaluated counterfactual alternatives, and the rendered
// report includes the regret tables.
func TestTracedFigureReportsRegret(t *testing.T) {
	var mu sync.Mutex
	streamed := map[string]int{}
	rounds := map[string]int{}
	opt := tracedOptions()
	opt.TraceObserver = func(rec trace.Record) {
		mu.Lock()
		streamed[rec.Selector]++
		mu.Unlock()
	}
	opt.RoundObserver = func(arm string, trial int, ev core.RoundEvent) {
		mu.Lock()
		rounds[arm]++
		mu.Unlock()
	}
	res, err := Run("figure3a", opt)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Perigee-Subset": false, "Perigee-Vanilla": false, "Perigee-UCB": false}
	for _, s := range res.Regret {
		if _, ok := want[s.Selector]; ok {
			want[s.Selector] = true
		}
		if s.Trials != opt.Trials {
			t.Errorf("%s summary merged %d trials, want %d", s.Selector, s.Trials, opt.Trials)
		}
	}
	for arm, seen := range want {
		if !seen {
			t.Errorf("no regret summary for traced arm %s", arm)
		}
		if streamed[arm] == 0 {
			t.Errorf("no streamed trace records for arm %s", arm)
		}
		if got := rounds[arm]; got == 0 {
			t.Errorf("no streamed round events for arm %s", arm)
		}
	}
	for _, s := range res.Regret {
		if s.Selector != "Perigee-Subset" {
			continue
		}
		total := s.Total()
		if total.Decisions == 0 {
			t.Error("Subset summary has no decisions")
		}
		if total.Alternatives == 0 {
			t.Error("Subset summary evaluated no counterfactual alternatives")
		}
	}
	if rendered := res.Render(); !strings.Contains(rendered, "decision trace: Perigee-Subset") {
		t.Error("rendered result is missing the regret table")
	}
}

// TestTracedRunDeterministicAcrossWorkers asserts the harness-level trace
// output (the merged regret summaries) is identical at different worker
// counts — the end-to-end version of the engine-level byte-identity test.
func TestTracedRunDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []*trace.Summary {
		opt := tracedOptions()
		opt.Workers = workers
		res, err := Run("figure3a", opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Regret
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("summary count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Selector != b[i].Selector {
			t.Fatalf("summary order differs: %s vs %s", a[i].Selector, b[i].Selector)
		}
		if len(a[i].Rounds) != len(b[i].Rounds) {
			t.Fatalf("%s round count differs", a[i].Selector)
		}
		for r := range a[i].Rounds {
			if a[i].Rounds[r] != b[i].Rounds[r] {
				t.Errorf("%s round %d differs:\n  w1: %+v\n  w8: %+v", a[i].Selector, r, a[i].Rounds[r], b[i].Rounds[r])
			}
		}
	}
}
