package experiments

import (
	"math"
	"strings"
	"testing"
)

// tinyOptions keeps unit runs fast; ordering assertions use ShortOptions.
func tinyOptions() Options {
	return Options{
		Nodes:          80,
		Trials:         1,
		Rounds:         6,
		RoundBlocks:    30,
		Fraction:       0.9,
		Seed:           7,
		MeanValidation: 50e6, // 50ms in ns
	}
}

func curveMean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func TestOptionsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(Options) Options
	}{
		{"too few nodes", func(o Options) Options { o.Nodes = 5; return o }},
		{"zero trials", func(o Options) Options { o.Trials = 0; return o }},
		{"zero rounds", func(o Options) Options { o.Rounds = 0; return o }},
		{"zero round blocks", func(o Options) Options { o.RoundBlocks = 0; return o }},
		{"bad fraction", func(o Options) Options { o.Fraction = 1.5; return o }},
		{"negative validation", func(o Options) Options { o.MeanValidation = -1; return o }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			opt := tc.mutate(tinyOptions())
			if _, err := Figure3a(opt); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	// 9 paper figures/theorems + 7 extensions + the adversary strategies
	// + the ablation sweeps.
	if want := 16 + len(adversaryScenarios()) + len(Ablations()); len(ids) != want {
		t.Fatalf("got %d experiment IDs, want %d: %v", len(ids), want, ids)
	}
	for _, id := range ids {
		brief, err := Describe(id)
		if err != nil || brief == "" {
			t.Fatalf("Describe(%q) = %q, %v", id, brief, err)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("expected error for unknown ID")
	}
	if _, err := Run("nope", tinyOptions()); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

func TestFigure1GeometricBeatsRandom(t *testing.T) {
	opt := tinyOptions()
	opt.Nodes = 300
	res, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	randomS, err := res.SeriesByLabel("random-stretch")
	if err != nil {
		t.Fatal(err)
	}
	geomS, err := res.SeriesByLabel("geometric-stretch")
	if err != nil {
		t.Fatal(err)
	}
	if geomS.Median() >= randomS.Median() {
		t.Fatalf("geometric stretch %.2f should beat random %.2f", geomS.Median(), randomS.Median())
	}
	if geomS.Median() < 1 {
		t.Fatalf("stretch below 1 impossible: %.3f", geomS.Median())
	}
	if len(res.Notes) == 0 {
		t.Fatal("expected a summary note")
	}
}

func TestFigure3aOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm convergence run")
	}
	opt := ShortOptions()
	res, err := Figure3a(opt)
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, s := range res.Series {
		med[s.Label] = s.Median()
		if math.IsInf(s.Median(), 1) || s.Median() <= 0 {
			t.Fatalf("%s has degenerate median %v", s.Label, s.Median())
		}
	}
	// The paper's qualitative orderings.
	if !(med[LabelIdeal] < med[LabelSubset]) {
		t.Errorf("ideal (%.0f) should lower-bound Perigee-Subset (%.0f)", med[LabelIdeal], med[LabelSubset])
	}
	if !(med[LabelSubset] < med[LabelRandom]) {
		t.Errorf("Perigee-Subset (%.0f) should beat random (%.0f)", med[LabelSubset], med[LabelRandom])
	}
	// Geographic's advantage over random is modest; compare whole-curve
	// means rather than the (noisier) single median rank.
	geoS, _ := res.SeriesByLabel(LabelGeographic)
	randS, _ := res.SeriesByLabel(LabelRandom)
	if geoMean, randMean := curveMean(geoS.Mean), curveMean(randS.Mean); geoMean >= randMean {
		t.Errorf("geographic curve mean (%.0f) should beat random (%.0f)", geoMean, randMean)
	}
	if !(med[LabelVanilla] < med[LabelRandom]) {
		t.Errorf("Perigee-Vanilla (%.0f) should beat random (%.0f)", med[LabelVanilla], med[LabelRandom])
	}
	// Kademlia behaves like an unstructured baseline: within a factor of
	// the random topology, not competitive with Perigee-Subset.
	if !(med[LabelKademlia] < 1.5*med[LabelRandom] && med[LabelKademlia] > med[LabelSubset]) {
		t.Errorf("kademlia median %.0f outside expected band (subset %.0f, random %.0f)",
			med[LabelKademlia], med[LabelSubset], med[LabelRandom])
	}
	t.Logf("medians: %v", med)
	t.Logf("\n%s", res.Render())
}

func TestFigure4aAdvantageShrinksWithValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	opt := ShortOptions()
	opt.Rounds = 8
	res, err := Figure4a(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Improvement at 0.1x validation should exceed improvement at 10x.
	improvement := func(mult string) float64 {
		r, err := res.SeriesByLabel("random-" + mult)
		if err != nil {
			t.Fatal(err)
		}
		s, err := res.SeriesByLabel("Perigee-Subset-" + mult)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - s.Median()/r.Median()
	}
	low := improvement("0.1x")
	high := improvement("10x")
	t.Logf("improvement at 0.1x validation: %.1f%%, at 10x: %.1f%%", low*100, high*100)
	if low <= high {
		t.Errorf("Perigee advantage should shrink with validation delay: 0.1x=%.2f 10x=%.2f", low, high)
	}
	if len(res.Series) != 2*len(ValidationMultipliers) {
		t.Fatalf("got %d series, want %d", len(res.Series), 2*len(ValidationMultipliers))
	}
}

func TestFigure4bPerigeeApproachesIdeal(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	opt := ShortOptions()
	res, err := Figure4b(opt)
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, s := range res.Series {
		med[s.Label] = s.Median()
	}
	if !(med[LabelSubset] < med[LabelRandom]) {
		t.Errorf("Perigee-Subset (%.0f) should beat random (%.0f) with mining pools", med[LabelSubset], med[LabelRandom])
	}
	// Perigee should close a large part of the random-to-ideal gap.
	gapClosed := (med[LabelRandom] - med[LabelSubset]) / (med[LabelRandom] - med[LabelIdeal])
	t.Logf("gap to ideal closed: %.0f%% (medians: %v)", gapClosed*100, med)
	if gapClosed < 0.3 {
		t.Errorf("Perigee closed only %.0f%% of the gap to ideal", gapClosed*100)
	}
}

func TestFigure4cRelayExploited(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	opt := ShortOptions()
	res, err := Figure4c(opt)
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, s := range res.Series {
		med[s.Label] = s.Median()
	}
	if !(med[LabelSubset] < med[LabelRandom]) {
		t.Errorf("Perigee-Subset (%.0f) should beat random (%.0f) with a relay tree", med[LabelSubset], med[LabelRandom])
	}
	t.Logf("medians: %v", med)
}

func TestFigure5SubsetShiftsToLowMode(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run")
	}
	opt := ShortOptions()
	res, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histograms) != 4 {
		t.Fatalf("got %d histograms, want 4", len(res.Histograms))
	}
	randomLow := lowModeFraction(res.Histograms[LabelRandom])
	subsetLow := lowModeFraction(res.Histograms[LabelSubset])
	t.Logf("low-latency edge mass: random %.2f, subset %.2f", randomLow, subsetLow)
	if subsetLow <= randomLow {
		t.Errorf("Perigee-Subset low-mode mass %.2f should exceed random %.2f", subsetLow, randomLow)
	}
	for label, h := range res.Histograms {
		if h.Total() == 0 {
			t.Errorf("%s histogram is empty", label)
		}
	}
}

func TestTheorem1StretchGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep")
	}
	opt := tinyOptions()
	opt.Trials = 2
	res, err := Theorem1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(TheoremSizes) {
		t.Fatalf("got %d series, want %d", len(res.Series), len(TheoremSizes))
	}
	first := res.Series[0].Median()
	last := res.Series[len(res.Series)-1].Median()
	t.Logf("random-graph stretch: n=%d -> %.2f, n=%d -> %.2f",
		TheoremSizes[0], first, TheoremSizes[len(TheoremSizes)-1], last)
	if last <= first {
		t.Errorf("random-graph stretch should grow with n: %.2f -> %.2f", first, last)
	}
}

func TestTheorem2StretchBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep")
	}
	opt := tinyOptions()
	opt.Trials = 2
	res, err := Theorem2(opt)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Series[0].Median()
	last := res.Series[len(res.Series)-1].Median()
	t.Logf("geometric-graph stretch: n=%d -> %.2f, n=%d -> %.2f",
		TheoremSizes[0], first, TheoremSizes[len(TheoremSizes)-1], last)
	// Constant-factor stretch: the largest network's stretch stays within
	// a modest factor of the smallest's.
	if last > first*1.5 {
		t.Errorf("geometric stretch grew too much: %.2f -> %.2f", first, last)
	}
}

func TestRenderContainsSeriesAndNotes(t *testing.T) {
	opt := tinyOptions()
	opt.Nodes = 300
	res, err := Figure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Fig 1", "random-stretch", "geometric-stretch", "median", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	opt := tinyOptions()
	opt.Nodes = 300
	res, err := Run("figure1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "figure1" {
		t.Fatalf("dispatched wrong experiment: %s", res.ID)
	}
}

func TestSeriesByLabelMissing(t *testing.T) {
	res := &Result{ID: "x"}
	if _, err := res.SeriesByLabel("nope"); err == nil {
		t.Fatal("expected error for missing label")
	}
}
