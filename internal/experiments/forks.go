package experiments

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/workload"
)

// forkArm is one algorithm arm of the forks scenario: a legend label, the
// selector driving the timed topology rounds, and whether rounds fire at
// all (the static baseline never updates its random topology).
type forkArm struct {
	label  string
	method core.Method
	timed  bool
}

// Forks measures what slow propagation costs under a continuous-time
// blockchain workload: miners produce blocks as a Poisson process (mean
// Options.BlockInterval, default 2s) weighted by hash power, blocks race
// through the network, and every fork, stale block, and unit of
// mining-revenue skew is accounted per selector. Perigee's topology rounds
// fire every RoundBlocks*BlockInterval of simulated time; the run lasts
// Rounds such intervals. Compared arms: Perigee-Subset and Perigee-Vanilla
// (both adapting on timed rounds) against a static random topology.
//
// All arms of a trial replay the identical pre-materialized arrival trace,
// so differences in fork economics are purely topological — a paired
// comparison with no workload variance between arms. Options.TraceFile
// replays a recorded trace instead (Trials must be 1); Options.RecordTrace
// writes trial 0's trace for later replay. The λ series the rest of the
// suite reports are evaluated on each arm's final topology alongside.
func Forks(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.TraceFile != "" && opt.Trials != 1 {
		return nil, fmt.Errorf("experiments: trace replay requires exactly 1 trial, got %d", opt.Trials)
	}
	interval := opt.blockInterval()
	roundInterval := time.Duration(opt.RoundBlocks) * interval
	duration := time.Duration(opt.Rounds) * roundInterval

	arms := []forkArm{
		{LabelSubset, core.Subset, true},
		{LabelVanilla, core.Vanilla, true},
		{LabelRandom, core.Subset, false}, // method unused: rounds never fire
	}

	// A trial's trace is shared verbatim by every arm. Materialization is
	// stateless in (Seed, trial), so the parallel (trial, arm) jobs can
	// each rebuild it; a replayed TraceFile is loaded once up front.
	var replay *workload.TraceFile
	if opt.TraceFile != "" {
		tf, err := workload.ReadTraceFile(opt.TraceFile)
		if err != nil {
			return nil, err
		}
		if tf.Nodes != opt.Nodes {
			return nil, fmt.Errorf("experiments: trace recorded for %d nodes, scenario has %d", tf.Nodes, opt.Nodes)
		}
		replay = tf
	}
	traceFor := func(e *env) (*workload.TraceFile, error) {
		if replay != nil {
			return replay, nil
		}
		gen, err := workload.NewPoisson(e.root.Derive("workload-trace"), e.power, interval)
		if err != nil {
			return nil, err
		}
		return workload.Materialize(gen, duration, opt.Nodes)
	}

	if opt.RecordTrace != "" {
		e, err := newEnv(opt, 0)
		if err != nil {
			return nil, err
		}
		tf, err := traceFor(e)
		if err != nil {
			return nil, err
		}
		if err := tf.WriteTraceFile(opt.RecordTrace); err != nil {
			return nil, err
		}
	}

	perSeries := make([][][]float64, len(arms))
	perReport := make([][]*workload.Report, len(arms))
	for i := range arms {
		perSeries[i] = make([][]float64, opt.Trials)
		perReport[i] = make([]*workload.Report, opt.Trials)
	}
	jobs := opt.Trials * len(arms)
	outer, innerOpt := splitWorkers(opt, jobs)
	err := parallel.ForEachIndexed(jobs, outer, func(_, j int) error {
		t, i := j/len(arms), j%len(arms)
		arm := arms[i]
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		tf, err := traceFor(e)
		if err != nil {
			return err
		}
		tbl, err := e.buildRandom("forks-" + arm.label)
		if err != nil {
			return err
		}
		params := core.DefaultParams(arm.method)
		params.RoundBlocks = e.opt.RoundBlocks
		engine, err := core.NewEngine(core.Config{
			Method:  arm.method,
			Params:  params,
			Table:   tbl,
			Latency: e.lat,
			Forward: e.forward,
			Power:   e.power,
			Rand:    e.root.Derive("workload-engine-" + arm.label),
			Workers: e.opt.Workers,

			LatencyMode:       e.opt.LatencyMode,
			ObservationWindow: e.opt.ObservationWindow,
			Shards:            e.opt.Shards,
		})
		if err != nil {
			return err
		}
		ri := roundInterval
		if !arm.timed {
			ri = 0
		}
		rep, err := workload.Run(workload.Config{
			Engine:        engine,
			Trace:         tf.Trace(),
			Duration:      duration,
			RoundInterval: ri,
		})
		if err != nil {
			return fmt.Errorf("experiments: forks trial %d arm %s: %w", t, arm.label, err)
		}
		delays, err := engine.Delays(e.opt.Fraction, e.landmarks())
		if err != nil {
			return err
		}
		perSeries[i][t] = delaysToSortedMs(delays)
		perReport[i][t] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:      "forks",
		Title:   "Continuous-time workload: fork rate, stale blocks, revenue skew",
		Options: opt,
	}
	for i, arm := range arms {
		s, err := aggregate(arm.label, perSeries[i])
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
		ws := WorkloadSeries{Label: arm.label, Reports: perReport[i]}
		for _, rep := range perReport[i] {
			ws.MeanStaleRate += rep.StaleRate
			ws.MeanForkRate += rep.ForkRate
			ws.MeanRevenueSkew += rep.RevenueSkew
		}
		trials := float64(len(perReport[i]))
		ws.MeanStaleRate /= trials
		ws.MeanForkRate /= trials
		ws.MeanRevenueSkew /= trials
		res.Workloads = append(res.Workloads, ws)
	}

	subset, random := res.Workloads[0], res.Workloads[2]
	res.Notes = append(res.Notes, fmt.Sprintf(
		"stale rate: %s %.4f vs %s %.4f (fork rate %.4f vs %.4f, revenue skew %.4f vs %.4f)",
		subset.Label, subset.MeanStaleRate, random.Label, random.MeanStaleRate,
		subset.MeanForkRate, random.MeanForkRate,
		subset.MeanRevenueSkew, random.MeanRevenueSkew))
	return res, nil
}
