package experiments

import (
	"fmt"
	"math"

	"github.com/perigee-net/perigee/internal/adversary"
	"github.com/perigee-net/perigee/internal/core"
)

// The adversary-* scenario family runs one pluggable attack strategy
// (internal/adversary) against the three decision rules the paper
// compares — Perigee-Subset, Perigee-Vanilla, and the random-rotation
// baseline — and reports honest-node λ under attack next to each rule's
// unattacked baseline. The qualitative robustness claim under test: the
// learned topologies lose less to every attack than the random baseline
// does, because the scoring rules evict (or route around) misbehaving
// neighbors while random rotation keeps paying for them.

// cleanSuffix labels the unattacked baseline arm of each algorithm.
const cleanSuffix = "-clean"

// adversaryArm identifies one run of the adversarial comparison.
type adversaryArm struct {
	label    string
	method   core.Method
	random   bool // random-rotation baseline instead of the method's scoring
	attacked bool
}

// run executes the arm over e's sampled network and returns the sorted
// honest-node λ series (ms). All RNG streams derive from the arm label,
// so (trial, arm) jobs are order-independent.
func (arm adversaryArm) run(e *env, strat adversary.Strategy) ([]float64, error) {
	advs, err := adversarySet(e)
	if err != nil {
		return nil, err
	}
	tbl, err := e.buildRandom("adv-" + arm.label)
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams(arm.method)
	params.RoundBlocks = e.opt.RoundBlocks
	cfg := core.Config{
		Method:  arm.method,
		Params:  params,
		Table:   tbl,
		Latency: e.lat,
		Forward: e.forward,
		Power:   e.power,
		Rand:    e.root.Derive("adv-engine-" + arm.label),
		Workers: e.opt.Workers,
	}
	if arm.random {
		sel, err := core.NewRandomSelector(params.Explore)
		if err != nil {
			return nil, err
		}
		cfg.Selector = sel
	}
	if arm.attacked {
		bind, err := adversary.Bind(strat, e.opt.Nodes, advs, e.lat, e.forward,
			e.root.Derive("adv-strategy-"+arm.label))
		if err != nil {
			return nil, err
		}
		bind.Apply(&cfg)
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := engine.Run(e.opt.Rounds); err != nil {
		return nil, err
	}
	delays, err := engine.Delays(e.opt.Fraction, honestNodes(e.opt.Nodes, advs))
	if err != nil {
		return nil, err
	}
	return delaysToSortedMs(delays), nil
}

// honestNodes returns the ascending node indices outside the adversary
// set — the sources whose λ the adversarial scenarios report (for the
// unattacked baselines too, so attacked and clean series cover the same
// population).
func honestNodes(n int, adversaries []int) []int {
	isAdv := make([]bool, n)
	for _, a := range adversaries {
		isAdv[a] = true
	}
	out := make([]int, 0, n-len(adversaries))
	for v := 0; v < n; v++ {
		if !isAdv[v] {
			out = append(out, v)
		}
	}
	return out
}

// adversaryArms is the full comparison: the three decision rules under
// attack plus their unattacked baselines.
func adversaryArms() []adversaryArm {
	return []adversaryArm{
		{label: LabelSubset, method: core.Subset, attacked: true},
		{label: LabelVanilla, method: core.Vanilla, attacked: true},
		{label: LabelRandom, method: core.Subset, random: true, attacked: true},
		{label: LabelSubset + cleanSuffix, method: core.Subset},
		{label: LabelVanilla + cleanSuffix, method: core.Vanilla},
		{label: LabelRandom + cleanSuffix, method: core.Subset, random: true},
	}
}

// Adversarial runs strat against Perigee-Subset, Perigee-Vanilla, and the
// random baseline, reporting honest-node λ under attack alongside each
// rule's unattacked run on the same sampled networks, plus per-rule
// degradation notes.
func Adversarial(opt Options, strat adversary.Strategy) (*Result, error) {
	if strat == nil {
		return nil, fmt.Errorf("experiments: nil adversary strategy")
	}
	arms := adversaryArms()
	algos := make([]algo, len(arms))
	for i, arm := range arms {
		arm := arm
		algos[i] = algo{arm.label, func(e *env) ([]float64, error) { return arm.run(e, strat) }}
	}
	res, err := runFigure(opt, "adversary-"+strat.Name(),
		fmt.Sprintf("Adversary: %s (%s; %.0f%% compromised)",
			strat.Name(), strat.Brief(), 100*opt.adversaryFraction()),
		nil, algos)
	if err != nil {
		return nil, err
	}
	for _, label := range []string{LabelSubset, LabelVanilla, LabelRandom} {
		attacked, err := res.SeriesByLabel(label)
		if err != nil {
			return nil, err
		}
		clean, err := res.SeriesByLabel(label + cleanSuffix)
		if err != nil {
			return nil, err
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: median honest λ %.0f ms under attack vs %.0f ms clean (Δ %+.0f ms)",
			label, attacked.Median(), clean.Median(), attacked.Median()-clean.Median()))
	}
	if d, ok := adversaryDegradations(res); ok {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"degradation: random %+.0f ms vs Perigee-Subset %+.0f ms — the learned topology absorbs the attack better",
			d[LabelRandom], d[LabelSubset]))
	}
	return res, nil
}

// adversaryDegradations extracts each rule's median-λ degradation
// (attacked − clean, ms) from an Adversarial result. ok is false when a
// median is non-finite (an attack partitioned the graph past the coverage
// fraction).
func adversaryDegradations(res *Result) (map[string]float64, bool) {
	out := make(map[string]float64, 3)
	for _, label := range []string{LabelSubset, LabelVanilla, LabelRandom} {
		attacked, err := res.SeriesByLabel(label)
		if err != nil {
			return nil, false
		}
		clean, err := res.SeriesByLabel(label + cleanSuffix)
		if err != nil {
			return nil, false
		}
		d := attacked.Median() - clean.Median()
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, false
		}
		out[label] = d
	}
	return out, true
}

// midRound resolves the "attack mid-run" round for run-length-aware
// strategies: half the configured rounds, at least 1.
func midRound(opt Options) int {
	r := opt.Rounds / 2
	if r < 1 {
		r = 1
	}
	return r
}

// adversaryScenarios registers one scenario per built-in strategy.
// Strategies whose parameters depend on the run length (sleeper attacks,
// mid-run partitions) are constructed per run from the options.
func adversaryScenarios() []Scenario {
	mk := func(id, brief string, strat func(opt Options) adversary.Strategy) Scenario {
		return Scenario{ID: id, Brief: brief, Run: func(opt Options) (*Result, error) {
			return Adversarial(opt, strat(opt))
		}}
	}
	return []Scenario{
		mk("adversary-latency-liar", "adversary: under-reported offsets hide withheld relays",
			func(Options) adversary.Strategy {
				return adversary.NewLatencyLiar(adversary.DefaultLieFactor, adversary.DefaultWithholdDelay)
			}),
		mk("adversary-withholding", "adversary: relays forward late or never",
			func(Options) adversary.Strategy {
				return adversary.NewWithholdingRelay(adversary.DefaultWithholdDelay, adversary.DefaultNeverFraction)
			}),
		mk("adversary-sybil-flood", "adversary: silent sybils flood incoming slots",
			func(Options) adversary.Strategy {
				return adversary.NewSybilFlood(adversary.DefaultSybilDials)
			}),
		mk("adversary-eclipse-bias", "adversary: earn trust fast, then withhold mid-run",
			func(opt Options) adversary.Strategy {
				return adversary.NewEclipseBias(midRound(opt))
			}),
		mk("adversary-partition", "adversary: inflate inter-region latencies mid-run",
			func(opt Options) adversary.Strategy {
				return adversary.NewRegionalPartition(adversary.DefaultPartitionGroups, midRound(opt), adversary.DefaultPartitionFactor)
			}),
	}
}
