package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRegistered(t *testing.T) {
	for _, ab := range Ablations() {
		brief, err := Describe(ab.ID)
		if err != nil {
			t.Fatalf("%s not registered: %v", ab.ID, err)
		}
		if brief != ab.Title {
			t.Fatalf("%s brief mismatch", ab.ID)
		}
		if len(ab.Variants) < 2 {
			t.Fatalf("%s has %d variants, want >= 2", ab.ID, len(ab.Variants))
		}
	}
}

func TestAblationLabelsDistinct(t *testing.T) {
	for _, ab := range Ablations() {
		seen := map[string]bool{}
		for _, v := range ab.Variants {
			if v.Label == "" {
				t.Fatalf("%s has an unlabeled variant", ab.ID)
			}
			if seen[v.Label] {
				t.Fatalf("%s repeats label %q", ab.ID, v.Label)
			}
			seen[v.Label] = true
		}
	}
}

func TestAblationExplorationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	opt := tinyOptions()
	opt.Nodes = 100
	opt.Rounds = 4
	opt.RoundBlocks = 25
	res, err := RunAblation(opt, AblationExploration())
	if err != nil {
		t.Fatal(err)
	}
	// random baseline + 4 variants
	if len(res.Series) != 5 {
		t.Fatalf("got %d series, want 5", len(res.Series))
	}
	if _, err := res.SeriesByLabel("explore=2"); err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 4 {
		t.Fatalf("got %d notes, want 4", len(res.Notes))
	}
	out := res.Render()
	if !strings.Contains(out, "explore=0") || !strings.Contains(out, "random") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestAblationValidationModelShowsHeterogeneityEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	opt := ShortOptions()
	opt.Rounds = 8
	res, err := RunAblation(opt, AblationValidationModel())
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := res.SeriesByLabel("fixed-50ms")
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := res.SeriesByLabel("exp-mean-50ms")
	if err != nil {
		t.Fatal(err)
	}
	// Both must beat nothing in absolute terms; the interesting check is
	// that both configurations produce sane, finite curves.
	if fixed.Median() <= 0 || hetero.Median() <= 0 {
		t.Fatalf("degenerate medians: fixed=%v hetero=%v", fixed.Median(), hetero.Median())
	}
	t.Logf("fixed median %.0f ms, heterogeneous median %.0f ms", fixed.Median(), hetero.Median())
}

func TestAblationUCBConstantRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	opt := tinyOptions()
	opt.Nodes = 100
	opt.Rounds = 2
	opt.RoundBlocks = 25 // 50 single-block UCB rounds per variant
	res, err := RunAblation(opt, AblationUCBConstant())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("got %d series, want 5", len(res.Series))
	}
}

func TestRunAblationViaDispatcher(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	opt := tinyOptions()
	opt.Nodes = 100
	opt.Rounds = 3
	opt.RoundBlocks = 20
	res, err := Run("ablation-roundlength", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ablation-roundlength" {
		t.Fatalf("wrong ID %s", res.ID)
	}
}
