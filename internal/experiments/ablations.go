package experiments

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/topology"
)

// AblationVariant is one configuration point of an ablation sweep.
type AblationVariant struct {
	// Label names the variant in the result table.
	Label string
	// Method is the scoring method to run (default Subset).
	Method core.Method
	// Params transforms the method's default parameters.
	Params func(core.Params) core.Params
	// Setup optionally mutates the trial environment.
	Setup func(*env) error
}

// Ablation is a named sweep over protocol variants, always compared
// against the static random baseline on the same trial networks.
type Ablation struct {
	// ID is the experiment identifier ("ablation-exploration", ...).
	ID string
	// Title describes what is being varied.
	Title string
	// Variants are the sweep points.
	Variants []AblationVariant
}

// RunAblation executes the sweep: every variant (plus the random baseline)
// runs on the same per-trial environments.
func RunAblation(opt Options, ab Ablation) (*Result, error) {
	algos := []algo{{LabelRandom, func(e *env) ([]float64, error) {
		tbl, err := e.buildRandom(LabelRandom)
		if err != nil {
			return nil, err
		}
		return e.evalTopology(tbl)
	}}}
	for _, v := range ab.Variants {
		v := v
		algos = append(algos, algo{v.Label, func(e *env) ([]float64, error) {
			if v.Setup != nil {
				if err := v.Setup(e); err != nil {
					return nil, err
				}
			}
			return runPerigeeVariant(e, v)
		}})
	}
	res, err := runFigure(opt, ab.ID, ab.Title, nil, algos)
	if err != nil {
		return nil, err
	}
	baseline, err := res.SeriesByLabel(LabelRandom)
	if err != nil {
		return nil, err
	}
	for _, s := range res.Series {
		if s.Label == LabelRandom {
			continue
		}
		if m := baseline.Median(); m > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: median %.0f ms (%.0f%% vs random)",
				s.Label, s.Median(), 100*(1-s.Median()/m)))
		}
	}
	return res, nil
}

// runPerigeeVariant mirrors env.runPerigee but with variant-transformed
// parameters.
func runPerigeeVariant(e *env, v AblationVariant) ([]float64, error) {
	tbl, err := topology.Random(e.opt.Nodes, 8, 20, e.root.Derive("ablation-topology-"+v.Label))
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams(v.Method)
	if v.Method != core.UCB {
		params.RoundBlocks = e.opt.RoundBlocks
	}
	if v.Params != nil {
		params = v.Params(params)
	}
	// All variants see the same total block budget so sweeps over round
	// length or method compare adaptation efficiency, not extra data.
	rounds := e.opt.Rounds * e.opt.RoundBlocks / params.RoundBlocks
	if rounds < 1 {
		rounds = 1
	}
	engine, err := core.NewEngine(core.Config{
		Method:  v.Method,
		Params:  params,
		Table:   tbl,
		Latency: e.lat,
		Forward: e.forward,
		Power:   e.power,
		Pinned:  e.pinned,
		Frozen:  e.frozen,
		Rand:    e.root.Derive("ablation-engine-" + v.Label),
		Workers: e.opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	if _, err := engine.Run(rounds); err != nil {
		return nil, err
	}
	delays, err := engine.Delays(e.opt.Fraction, nil)
	if err != nil {
		return nil, err
	}
	return delaysToSortedMs(delays), nil
}

// AblationExploration sweeps the exploration budget e_v (paper fixes 2 of
// 8 connections). Zero exploration risks local optima; too much churns
// good neighbors away.
func AblationExploration() Ablation {
	ab := Ablation{
		ID:    "ablation-exploration",
		Title: "Ablation: exploration budget e_v (Subset scoring, out-degree 8)",
	}
	for _, ev := range []int{0, 1, 2, 4} {
		ev := ev
		ab.Variants = append(ab.Variants, AblationVariant{
			Label:  fmt.Sprintf("explore=%d", ev),
			Method: core.Subset,
			Params: func(p core.Params) core.Params {
				p.Explore = ev
				return p
			},
		})
	}
	return ab
}

// AblationPercentile sweeps the scoring quantile (paper fixes the 90th
// percentile, tuned to its 90%-of-hash-power objective).
func AblationPercentile() Ablation {
	ab := Ablation{
		ID:    "ablation-percentile",
		Title: "Ablation: scoring percentile (Subset scoring)",
	}
	for _, pct := range []float64{0.5, 0.75, 0.9, 1.0} {
		pct := pct
		ab.Variants = append(ab.Variants, AblationVariant{
			Label:  fmt.Sprintf("pct=%.2f", pct),
			Method: core.Subset,
			Params: func(p core.Params) core.Params {
				p.Percentile = pct
				return p
			},
		})
	}
	return ab
}

// AblationRoundLength sweeps |B| at a fixed total block budget: shorter
// rounds adapt faster but score on noisier estimates (§4.2.2's
// motivation for UCB).
func AblationRoundLength() Ablation {
	ab := Ablation{
		ID:    "ablation-roundlength",
		Title: "Ablation: round length |B| at fixed total blocks (Subset scoring)",
	}
	for _, blocks := range []int{25, 50, 100} {
		blocks := blocks
		ab.Variants = append(ab.Variants, AblationVariant{
			Label:  fmt.Sprintf("B=%d", blocks),
			Method: core.Subset,
			Params: func(p core.Params) core.Params {
				p.RoundBlocks = blocks
				return p
			},
		})
	}
	return ab
}

// AblationUCBConstant sweeps the confidence constant c of eq. (3)–(4),
// which the paper leaves unspecified.
func AblationUCBConstant() Ablation {
	ab := Ablation{
		ID:    "ablation-ucb-constant",
		Title: "Ablation: UCB confidence constant c",
	}
	for _, c := range []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond} {
		c := c
		ab.Variants = append(ab.Variants, AblationVariant{
			Label:  fmt.Sprintf("c=%s", c),
			Method: core.UCB,
			Params: func(p core.Params) core.Params {
				p.UCBConstant = c
				return p
			},
		})
	}
	return ab
}

// AblationValidationModel compares homogeneous (paper default) vs
// heterogeneous per-node validation delays. With heterogeneous delays
// Perigee additionally learns to route around slow validators, so its
// advantage over random grows — the repository's reproduction notes
// discuss this divergence from Figure 4(a).
func AblationValidationModel() Ablation {
	return Ablation{
		ID:    "ablation-validation-model",
		Title: "Ablation: homogeneous vs heterogeneous validation delays (Subset)",
		Variants: []AblationVariant{
			{
				Label:  "fixed-50ms",
				Method: core.Subset,
			},
			{
				Label:  "exp-mean-50ms",
				Method: core.Subset,
				Setup: func(e *env) error {
					e.forward = sampleForward(e.opt.Nodes, e.opt.MeanValidation,
						ValidationExponential, e.root.Derive("ablation-forward"))
					return nil
				},
			},
		},
	}
}

// Ablations lists all built-in ablation sweeps.
func Ablations() []Ablation {
	return []Ablation{
		AblationExploration(),
		AblationPercentile(),
		AblationRoundLength(),
		AblationUCBConstant(),
		AblationValidationModel(),
	}
}
