package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/trace"
)

// TestHashFieldGuard fails when Options grows a field the hash encoding
// has not accounted for, forcing a deliberate decision (hash it, or
// document the exclusion in Options.Hash) instead of silent cache aliasing.
func TestHashFieldGuard(t *testing.T) {
	n := reflect.TypeOf(Options{}).NumField()
	if n != optionsHashFields {
		t.Fatalf("Options has %d fields but the canonical hash accounts for %d — update Options.Hash and optionsHashFields", n, optionsHashFields)
	}
}

// TestHashStable: equal options hash equal, and the hash is a hex sha256.
func TestHashStable(t *testing.T) {
	a, b := DefaultOptions(), DefaultOptions()
	if a.Hash() != b.Hash() {
		t.Fatal("equal options produced different hashes")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

// TestHashSensitivity flips every result-determining field and checks the
// hash moves; flips the excluded fields and checks it does not.
func TestHashSensitivity(t *testing.T) {
	base := DefaultOptions()
	flips := map[string]func(*Options){
		"Nodes":             func(o *Options) { o.Nodes++ },
		"Trials":            func(o *Options) { o.Trials++ },
		"Rounds":            func(o *Options) { o.Rounds++ },
		"RoundBlocks":       func(o *Options) { o.RoundBlocks++ },
		"Fraction":          func(o *Options) { o.Fraction = 0.8 },
		"Seed":              func(o *Options) { o.Seed++ },
		"MeanValidation":    func(o *Options) { o.MeanValidation += time.Millisecond },
		"Validation":        func(o *Options) { o.Validation = ValidationExponential },
		"AdversaryFraction": func(o *Options) { o.AdversaryFraction = 0.2 },
		"CaptureThreshold":  func(o *Options) { o.CaptureThreshold = 0.5 },
		"LambdaSources":     func(o *Options) { o.LambdaSources = 64 },
		"ObservationWindow": func(o *Options) { o.ObservationWindow = 10 },
		"Shards":            func(o *Options) { o.Shards = 4 },
		"LatencyMode":       func(o *Options) { o.LatencyMode = latency.Streaming },
		"BlockInterval":     func(o *Options) { o.BlockInterval = time.Second },
		"TraceFile":         func(o *Options) { o.TraceFile = "trace.json" },
		"RecordTrace":       func(o *Options) { o.RecordTrace = "rec.json" },
		"TraceLevel":        func(o *Options) { o.TraceLevel = 1 },
		"CounterfactualK":   func(o *Options) { o.CounterfactualK = 3 },
	}
	ref := base.Hash()
	for field, flip := range flips {
		o := base
		flip(&o)
		if o.Hash() == ref {
			t.Errorf("flipping %s did not change the hash", field)
		}
	}
	// Excluded fields: scheduling and runtime hooks must not fragment the
	// cache.
	o := base
	o.Workers = 7
	o.RoundObserver = func(string, int, core.RoundEvent) {}
	o.TraceObserver = func(trace.Record) {}
	if o.Hash() != ref {
		t.Error("Workers/RoundObserver/TraceObserver changed the hash; they are result-neutral and must be excluded")
	}
	// The guard constant covers hashed + excluded; make the arithmetic
	// visible: 19 hashed flips + 3 exclusions = every field.
	if len(flips)+3 != optionsHashFields {
		t.Errorf("test covers %d+3 fields, struct hash accounts for %d — update the flip table", len(flips), optionsHashFields)
	}
}

// TestValidateTraceOptions covers the new option validation paths.
func TestValidateTraceOptions(t *testing.T) {
	o := ShortOptions()
	o.TraceLevel = 3
	if err := Validate(o); err == nil {
		t.Error("trace level 3 accepted")
	}
	o = ShortOptions()
	o.CounterfactualK = -1
	if err := Validate(o); err == nil {
		t.Error("negative counterfactual k accepted")
	}
	o = ShortOptions()
	o.CounterfactualK = 2
	if err := Validate(o); err == nil {
		t.Error("counterfactual k without tracing accepted")
	}
	o.TraceLevel = 1
	if err := Validate(o); err != nil {
		t.Errorf("valid traced options rejected: %v", err)
	}
}
