package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestFreeridePunishesSilentNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Rounds = 8
	res, err := Freeride(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	// The incentive claim lives in the notes; parse the penalty signs out
	// of the measured means instead of the rendered text by re-checking
	// the note ordering contract.
	if len(res.Notes) != 3 {
		t.Fatalf("got %d notes, want 3: %v", len(res.Notes), res.Notes)
	}
	out := res.Render()
	if !strings.Contains(out, "silent nodes receive") {
		t.Fatalf("render missing incentive summary:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestFreerideIncentiveGap(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	// Direct numeric check of the incentive claim on a small network:
	// under Perigee, silent nodes must suffer a larger relative receive
	// penalty than under the static random topology.
	opt := ShortOptions()
	opt.Nodes = 200
	opt.Rounds = 8
	res, err := Freeride(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Notes carry "(X% penalty)" strings; recompute from series medians is
	// not possible (receive delays aren't series), so assert the note
	// numbers: note[0] = random penalty, note[1] = perigee penalty.
	randomPenalty := parsePenalty(t, res.Notes[0])
	perigeePenalty := parsePenalty(t, res.Notes[1])
	t.Logf("receive penalty for silent nodes: random %.0f%%, perigee %.0f%%", randomPenalty, perigeePenalty)
	if perigeePenalty <= randomPenalty {
		t.Errorf("Perigee should punish free-riders harder than random: %.0f%% <= %.0f%%",
			perigeePenalty, randomPenalty)
	}
}

func parsePenalty(t *testing.T, note string) float64 {
	t.Helper()
	open := strings.LastIndex(note, "(")
	end := strings.LastIndex(note, "% penalty)")
	if open == -1 || end == -1 || end <= open {
		t.Fatalf("note %q missing penalty", note)
	}
	var v float64
	if _, err := fmt.Sscanf(note[open+1:end], "%f", &v); err != nil {
		t.Fatalf("parsing penalty from %q: %v", note, err)
	}
	return v
}

func TestChurnKeepsAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Rounds = 8
	res, err := Churn(opt)
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, s := range res.Series {
		med[s.Label] = s.Median()
		if math.IsInf(s.Median(), 1) {
			t.Fatalf("%s median is infinite", s.Label)
		}
	}
	if !(med[LabelSubset+"-churn"] < med[LabelRandom]) {
		t.Errorf("Perigee under churn (%.0f) should still beat random (%.0f)",
			med[LabelSubset+"-churn"], med[LabelRandom])
	}
	if !(med[LabelSubset+"-stable"] <= med[LabelSubset+"-churn"]) {
		t.Errorf("churn (%.0f) should not beat the stable run (%.0f)",
			med[LabelSubset+"-churn"], med[LabelSubset+"-stable"])
	}
	t.Logf("medians: %v", med)
}

func TestBandwidthAvoidsSlowUploaders(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Nodes = 200
	opt.Rounds = 8
	res, err := Bandwidth(opt)
	if err != nil {
		t.Fatal(err)
	}
	randomS, err := res.SeriesByLabel(LabelRandom)
	if err != nil {
		t.Fatal(err)
	}
	subsetS, err := res.SeriesByLabel(LabelSubset)
	if err != nil {
		t.Fatal(err)
	}
	if !(subsetS.Median() < randomS.Median()) {
		t.Errorf("Perigee (%.0f) should beat random (%.0f) under bandwidth skew",
			subsetS.Median(), randomS.Median())
	}
	t.Logf("bandwidth skew: random %.0f ms, perigee %.0f ms", randomS.Median(), subsetS.Median())
}

func TestExtensionIDsRegistered(t *testing.T) {
	for _, id := range []string{"freeride", "churn", "bandwidth", "eclipse", "convergence"} {
		if _, err := Describe(id); err != nil {
			t.Fatalf("%s not registered: %v", id, err)
		}
	}
}

func TestConvergenceTrajectories(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Rounds = 10
	res, err := Convergence(opt)
	if err != nil {
		t.Fatal(err)
	}
	p90, err := res.SeriesByLabel("p90-coverage")
	if err != nil {
		t.Fatal(err)
	}
	p50, err := res.SeriesByLabel("p50-coverage")
	if err != nil {
		t.Fatal(err)
	}
	if len(p90.Mean) != opt.Rounds || len(p50.Mean) != opt.Rounds {
		t.Fatalf("trajectory lengths %d/%d, want %d", len(p90.Mean), len(p50.Mean), opt.Rounds)
	}
	// The 90%-coverage delay must end well below where it started: that
	// is the metric Perigee optimizes.
	first, last := p90.Mean[0], p90.Mean[len(p90.Mean)-1]
	if !(last < first) {
		t.Errorf("90%% trajectory did not improve: %.0f -> %.0f", first, last)
	}
	// 50%-coverage delay is never above the 90%-coverage delay.
	for i := range p90.Mean {
		if p50.Mean[i] > p90.Mean[i] {
			t.Errorf("round %d: 50%% delay %.0f above 90%% delay %.0f", i, p50.Mean[i], p90.Mean[i])
		}
	}
	t.Logf("p90: %.0f -> %.0f ms; p50: %.0f -> %.0f ms (violations %d vs %d)",
		first, last, p50.Mean[0], p50.Mean[len(p50.Mean)-1],
		monotoneViolations(p90.Mean), monotoneViolations(p50.Mean))
}

func TestEclipseTrustGainWithoutFullCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("extension run")
	}
	opt := ShortOptions()
	opt.Nodes = 200
	opt.Rounds = 8
	res, err := Eclipse(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 3 {
		t.Fatalf("got %d notes: %v", len(res.Notes), res.Notes)
	}
	randomShare, randomEclipsed := parseCapture(t, res.Notes[0])
	perigeeShare, perigeeEclipsed := parseCapture(t, res.Notes[1])
	t.Logf("adversarial out-slot share: random %.0f%% (eclipsed %d), perigee %.0f%% (eclipsed %d)",
		randomShare, randomEclipsed, perigeeShare, perigeeEclipsed)
	// Fast adversaries earn over-representation relative to the random
	// baseline (the trust-gain attack vector §6 describes)...
	if perigeeShare <= randomShare {
		t.Errorf("fast adversaries gained nothing: perigee %.0f%% <= random %.0f%%", perigeeShare, randomShare)
	}
	// ...but the exploration quota keeps full neighborhood capture rare.
	if perigeeEclipsed > opt.Nodes/50 {
		t.Errorf("%d honest nodes fully eclipsed; exploration should keep this near zero", perigeeEclipsed)
	}
}

func parseCapture(t *testing.T, note string) (share float64, eclipsed int) {
	t.Helper()
	if _, err := fmt.Sscanf(note[strings.Index(note, "hold "):],
		"hold %f%% of honest out-slots; %d honest nodes", &share, &eclipsed); err != nil {
		t.Fatalf("parsing %q: %v", note, err)
	}
	return share, eclipsed
}
