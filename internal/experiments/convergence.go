package experiments

import (
	"fmt"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// Convergence reproduces §5.2's convergence observation: as rounds pass,
// the delay to reach 90% of hash power converges (it is what Perigee's
// 90th-percentile scoring optimizes), while the delay to reach 50% does
// not decrease monotonically. The result carries two series indexed by
// round — medians across nodes of λ_v at 90% and at 50% coverage — plus
// the random-topology reference medians in the notes.
func Convergence(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "convergence",
		Title:   "Convergence: per-round median delay to 90% and 50% of hash power (Perigee-Subset)",
		Options: opt,
	}
	p90Trials := make([][]float64, opt.Trials)
	p50Trials := make([][]float64, opt.Trials)
	random90Trials := make([]float64, opt.Trials)
	random50Trials := make([]float64, opt.Trials)
	outer, innerOpt := splitWorkers(opt, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, outer, func(_, t int) error {
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		randTbl, err := e.buildRandom(LabelRandom)
		if err != nil {
			return err
		}
		r90, err := e.evalTopology(randTbl)
		if err != nil {
			return err
		}
		random90Trials[t] = stats.Percentile(r90, 0.5)
		r50, err := evalTopologyAtFraction(e, randTbl, 0.5)
		if err != nil {
			return err
		}
		random50Trials[t] = stats.Percentile(r50, 0.5)

		tbl, err := e.buildRandom("convergence")
		if err != nil {
			return err
		}
		engine, err := newExtensionEngine(e, core.Subset, tbl, nil, nil)
		if err != nil {
			return err
		}
		p90 := make([]float64, 0, opt.Rounds)
		p50 := make([]float64, 0, opt.Rounds)
		for r := 0; r < opt.Rounds; r++ {
			if _, err := engine.Step(); err != nil {
				return err
			}
			d90, err := engine.Delays(0.9, nil)
			if err != nil {
				return err
			}
			d50, err := engine.Delays(0.5, nil)
			if err != nil {
				return err
			}
			p90 = append(p90, stats.Percentile(delaysToSortedMs(d90), 0.5))
			p50 = append(p50, stats.Percentile(delaysToSortedMs(d50), 0.5))
		}
		p90Trials[t] = p90
		p50Trials[t] = p50
		return nil
	})
	if err != nil {
		return nil, err
	}
	var random90, random50 stats.Summary
	for t := 0; t < opt.Trials; t++ {
		random90.Add(random90Trials[t])
		random50.Add(random50Trials[t])
	}
	s90, err := aggregate("p90-coverage", p90Trials)
	if err != nil {
		return nil, err
	}
	s50, err := aggregate("p50-coverage", p50Trials)
	if err != nil {
		return nil, err
	}
	res.Series = []Series{s90, s50}
	res.Notes = append(res.Notes,
		fmt.Sprintf("random reference medians: %.0f ms (90%% coverage), %.0f ms (50%% coverage)",
			random90.Mean(), random50.Mean()),
		fmt.Sprintf("90%% trajectory: %.0f -> %.0f ms over %d rounds (monotone violations: %d)",
			s90.Mean[0], s90.Mean[len(s90.Mean)-1], opt.Rounds, monotoneViolations(s90.Mean)),
		fmt.Sprintf("50%% trajectory: %.0f -> %.0f ms (monotone violations: %d) — Perigee only optimizes the 90th percentile (§5.2)",
			s50.Mean[0], s50.Mean[len(s50.Mean)-1], monotoneViolations(s50.Mean)))
	return res, nil
}

// evalTopologyAtFraction is evalTopology with an explicit coverage
// fraction, sharing the env's reusable evaluation simulator.
func evalTopologyAtFraction(e *env, tbl *topology.Table, frac float64) ([]float64, error) {
	return e.evalTopologyAt(tbl, frac)
}

// monotoneViolations counts indices where the series increases (a strictly
// converging trajectory has none beyond noise).
func monotoneViolations(xs []float64) int {
	count := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			count++
		}
	}
	return count
}
