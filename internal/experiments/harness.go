// Package experiments reproduces every figure of the paper's evaluation
// (§5) plus the §6 extension studies and ablation sweeps, all exposed as
// registered Scenarios: shared trial machinery, a thread-safe registry
// (Register/Scenarios/Run) that the perigee facade and cmd/perigee-sim
// dispatch through, and text/JSON rendering of the series the paper
// plots.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/netsim"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
	"github.com/perigee-net/perigee/internal/trace"
	"github.com/perigee-net/perigee/internal/workload"
)

// Options configure an experiment run. The zero value is not valid; use
// DefaultOptions (paper scale) or ShortOptions (CI scale).
type Options struct {
	// Nodes is the network size (paper: 1000).
	Nodes int
	// Trials is the number of independent repetitions with re-sampled link
	// latencies (paper: 3).
	Trials int
	// Rounds is the number of Perigee rounds for Vanilla/Subset; UCB runs
	// Rounds*RoundBlocks single-block rounds so every variant sees the
	// same number of blocks.
	Rounds int
	// RoundBlocks is |B| for Vanilla/Subset (paper: 100).
	RoundBlocks int
	// Fraction is the hash-power coverage defining λ_v (paper: 0.9).
	Fraction float64
	// Seed roots all randomness.
	Seed uint64
	// MeanValidation is the mean per-node block validation delay
	// (paper: 50 ms).
	MeanValidation time.Duration
	// Validation selects how per-node validation delays are drawn.
	Validation ValidationModel
	// AdversaryFraction is the population share under adversary control in
	// the adversarial scenarios (eclipse and the adversary-* family). Zero
	// means the historical default of 0.15; explicit values must lie in
	// (0, 1).
	AdversaryFraction float64
	// CaptureThreshold is the adversarial out-slot share at which an
	// honest node counts as eclipsed in the capture statistics. Zero means
	// the historical default of 1 (every outgoing slot adversarial);
	// explicit values must lie in (0, 1].
	CaptureThreshold float64
	// Workers bounds the goroutines used to run trials and algorithm arms
	// concurrently, and is forwarded to every protocol engine for in-round
	// broadcast parallelism. Zero (or negative) means one worker per
	// available core. Results are bit-for-bit identical for any worker
	// count: every trial derives its RNG streams statelessly from
	// (Seed, trial index), so no stream depends on execution order.
	Workers int
	// LambdaSources, when positive and below Nodes, evaluates λ from that
	// many landmark sources (a fixed per-trial random sample) instead of
	// all n — turning each evaluation pass from n Dijkstras into k, the
	// lever that makes per-round convergence tracking affordable at 100k+
	// nodes. The landmark set is derived statelessly from the trial seed,
	// so successive rounds (and algorithm arms sharing a trial) are
	// compared on identical sources. The sorted λ series then has k
	// entries; its percentiles are estimators of the full-population ones
	// (see the error-bound test in scale_test.go). Zero evaluates all
	// nodes, the paper's exact protocol.
	LambdaSources int
	// ObservationWindow bounds per-node observation memory to the last w
	// blocks of each round; forwarded to core.Config.ObservationWindow.
	// Zero keeps dense observations.
	ObservationWindow int
	// Shards runs each block broadcast as a conservative windowed parallel
	// simulation over that many node shards; forwarded to
	// core.Config.Shards. Zero or 1 uses the single-queue path.
	Shards int
	// LatencyMode selects precomputed vs streaming edge delays for both
	// the protocol engines and the evaluation simulators (zero = Auto,
	// which switches to streaming at 20k nodes).
	LatencyMode latency.Mode
	// BlockInterval is the mean block inter-arrival time for the
	// continuous-time workload scenarios ("forks"). Zero means the
	// default of 2s; topology rounds then span RoundBlocks*BlockInterval
	// of simulated time and the run lasts Rounds such intervals.
	BlockInterval time.Duration
	// TraceFile, when set, replays a recorded arrival trace (see
	// internal/workload's TraceFile codec) instead of generating a
	// Poisson workload. Replay pins the exact block schedule, so it
	// requires Trials == 1. Ignored by the non-workload scenarios.
	TraceFile string
	// RecordTrace, when set, writes trial 0's consumed arrival trace to
	// the given path, ready for TraceFile replay. Ignored by the
	// non-workload scenarios.
	RecordTrace string
	// TraceLevel enables decision tracing on every Perigee engine arm
	// (0 = off, 1 = decisions, 2 = full inputs; see core.TraceLevel). The
	// traced records are reduced to per-round regret summaries on
	// Result.Regret, and streamed to TraceObserver when set. Tracing
	// covers the arms driven through the shared figure harness
	// (runPerigee); arms that never run a Perigee engine (random,
	// geographic, ideal) have nothing to trace.
	TraceLevel int
	// CounterfactualK, when positive, evaluates up to K rejected
	// alternatives per traced decision against the following round's
	// broadcasts (see core.TraceConfig.CounterfactualK). Requires
	// TraceLevel ≥ 1.
	CounterfactualK int
	// RoundObserver, when non-nil, receives every engine arm's RoundEvent
	// as it completes, labeled with the arm and trial. Runtime-only: it is
	// excluded from Hash and JSON, and may be called concurrently from
	// different (trial, arm) jobs — events within one (arm, trial) pair
	// arrive in round order, but the interleaving across pairs is
	// schedule-dependent, so consumers must lock and group by (arm, trial).
	RoundObserver func(arm string, trial int, ev core.RoundEvent) `json:"-"`
	// TraceObserver, when non-nil, receives every trace record as it is
	// emitted (the streaming path the experiment service uses). Runtime-
	// only, excluded from Hash and JSON; same concurrency contract as
	// RoundObserver.
	TraceObserver func(rec trace.Record) `json:"-"`
}

// ValidationModel selects the per-node validation delay distribution.
type ValidationModel int

const (
	// ValidationFixed gives every node exactly MeanValidation, the paper's
	// §5 setting ("each node has a mean block processing time of 50 ms").
	// With a common processing time, Figure 4(a)'s trend emerges: as
	// validation dominates, hop count dictates delay and Perigee's
	// advantage over random vanishes.
	ValidationFixed ValidationModel = iota
	// ValidationExponential draws each node's delay from Exponential(mean)
	// — the heterogeneous-processing-power extension motivated in §1.
	// Perigee additionally learns to route around slow validators, so its
	// advantage grows (rather than shrinks) with the validation scale; the
	// ablation bench quantifies this.
	ValidationExponential
)

// DefaultOptions mirrors the paper's evaluation scale.
func DefaultOptions() Options {
	return Options{
		Nodes:          1000,
		Trials:         3,
		Rounds:         30,
		RoundBlocks:    100,
		Fraction:       0.9,
		Seed:           2020,
		MeanValidation: 50 * time.Millisecond,
	}
}

// ShortOptions is a scaled-down configuration for tests and quick smoke
// runs. 300 nodes is the smallest scale at which all of the paper's
// qualitative orderings (including geographic < random) manifest reliably.
func ShortOptions() Options {
	return Options{
		Nodes:          300,
		Trials:         1,
		Rounds:         10,
		RoundBlocks:    50,
		Fraction:       0.9,
		Seed:           2020,
		MeanValidation: 50 * time.Millisecond,
	}
}

func (o Options) validate() error {
	if o.Nodes < 20 {
		return fmt.Errorf("experiments: need at least 20 nodes, got %d", o.Nodes)
	}
	if o.Trials <= 0 {
		return fmt.Errorf("experiments: trials %d must be positive", o.Trials)
	}
	if o.Rounds <= 0 {
		return fmt.Errorf("experiments: rounds %d must be positive", o.Rounds)
	}
	if o.RoundBlocks <= 0 {
		return fmt.Errorf("experiments: round blocks %d must be positive", o.RoundBlocks)
	}
	if o.Fraction <= 0 || o.Fraction > 1 {
		return fmt.Errorf("experiments: fraction %v outside (0, 1]", o.Fraction)
	}
	if o.MeanValidation < 0 {
		return fmt.Errorf("experiments: negative validation delay %v", o.MeanValidation)
	}
	if o.AdversaryFraction < 0 || o.AdversaryFraction >= 1 {
		return fmt.Errorf("experiments: adversary fraction %v outside [0, 1)", o.AdversaryFraction)
	}
	if o.CaptureThreshold < 0 || o.CaptureThreshold > 1 {
		return fmt.Errorf("experiments: capture threshold %v outside [0, 1]", o.CaptureThreshold)
	}
	if o.LambdaSources < 0 {
		return fmt.Errorf("experiments: lambda sources %d must be non-negative", o.LambdaSources)
	}
	if o.ObservationWindow < 0 {
		return fmt.Errorf("experiments: observation window %d must be non-negative", o.ObservationWindow)
	}
	if o.Shards < 0 {
		return fmt.Errorf("experiments: shard count %d must be non-negative", o.Shards)
	}
	if !o.LatencyMode.Valid() {
		return fmt.Errorf("experiments: invalid latency mode %d", int(o.LatencyMode))
	}
	if o.BlockInterval < 0 {
		return fmt.Errorf("experiments: block interval %v must be non-negative", o.BlockInterval)
	}
	if !core.TraceLevel(o.TraceLevel).Valid() {
		return fmt.Errorf("experiments: invalid trace level %d (want 0=off, 1=decisions, 2=inputs)", o.TraceLevel)
	}
	if o.CounterfactualK < 0 {
		return fmt.Errorf("experiments: counterfactual k %d must be non-negative", o.CounterfactualK)
	}
	if o.CounterfactualK > 0 && o.TraceLevel == 0 {
		return fmt.Errorf("experiments: counterfactual k %d requires trace level ≥ 1", o.CounterfactualK)
	}
	return nil
}

// Validate checks the options without running anything — the up-front
// check CLIs and the experiment service run before accepting a job.
func Validate(o Options) error { return o.validate() }

// blockInterval resolves the workload block interval, mapping the zero
// value to the 2s default.
func (o Options) blockInterval() time.Duration {
	if o.BlockInterval == 0 {
		return 2 * time.Second
	}
	return o.BlockInterval
}

// adversaryFraction resolves the adversary share, mapping the zero value
// to the historical eclipse default.
func (o Options) adversaryFraction() float64 {
	if o.AdversaryFraction == 0 {
		return defaultAdversaryFraction
	}
	return o.AdversaryFraction
}

// captureThreshold resolves the eclipse capture threshold, mapping the
// zero value to the historical "every slot adversarial" rule.
func (o Options) captureThreshold() float64 {
	if o.CaptureThreshold == 0 {
		return 1
	}
	return o.CaptureThreshold
}

// Series is one curve of a figure: per-node-rank delays (ms, ascending)
// aggregated across trials.
type Series struct {
	// Label names the algorithm as in the paper's legend.
	Label string
	// Mean[i] is the i-th smallest per-source delay (ms), averaged over
	// trials.
	Mean []float64
	// Std[i] is the cross-trial standard deviation at rank i (zero with
	// one trial).
	Std []float64
}

// Median returns the series' middle value, the figure's headline number.
func (s Series) Median() float64 {
	return stats.Percentile(s.Mean, 0.5)
}

// Result is the output of one experiment.
type Result struct {
	// ID is the experiment identifier ("figure3a", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Series holds one curve per algorithm.
	Series []Series
	// Notes carries derived observations (improvement ratios etc.).
	Notes []string
	// Histograms (Figure 5 only) maps algorithm label to its converged
	// edge-latency histogram.
	Histograms map[string]*stats.Histogram
	// Workloads (continuous-time scenarios only) holds one fork-economics
	// summary per algorithm arm, in arm order.
	Workloads []WorkloadSeries `json:",omitempty"`
	// Regret (traced runs only: Options.TraceLevel > 0) holds one
	// per-round counterfactual-regret summary per traced engine arm,
	// merged across trials, in arm order.
	Regret []*trace.Summary `json:",omitempty"`
	// Options echoes the configuration that produced the result.
	Options Options
}

// WorkloadSeries is one arm's continuous-time workload results: the full
// per-trial reports plus cross-trial means of the headline rates.
type WorkloadSeries struct {
	// Label names the algorithm as in the paper's legend.
	Label string `json:"label"`
	// Reports holds the per-trial fork-economics reports.
	Reports []*workload.Report `json:"reports"`
	// MeanStaleRate, MeanForkRate, and MeanRevenueSkew average the
	// corresponding per-trial report fields.
	MeanStaleRate   float64 `json:"mean_stale_rate"`
	MeanForkRate    float64 `json:"mean_fork_rate"`
	MeanRevenueSkew float64 `json:"mean_revenue_skew"`
}

// SeriesByLabel returns the named series or an error.
func (r *Result) SeriesByLabel(label string) (Series, error) {
	for _, s := range r.Series {
		if s.Label == label {
			return s, nil
		}
	}
	return Series{}, fmt.Errorf("experiments: no series %q in %s", label, r.ID)
}

// splitWorkers divides the configured worker budget between an outer
// fan-out over jobs and the engines running inside each job, so nested
// pools stay at O(total) goroutines instead of O(total²): outer jobs get
// min(total, jobs) workers and each job's engines get the remaining
// total/outer share. Worker counts never affect results, only scheduling.
func splitWorkers(opt Options, jobs int) (outer int, inner Options) {
	total := parallel.Workers(opt.Workers)
	outer = total
	if outer > jobs {
		outer = jobs
	}
	if outer < 1 {
		outer = 1
	}
	// Ceil division: slight oversubscription beats idling total%outer
	// cores for the whole run (e.g. 3 trials on 8 cores → 3×3, not 3×2).
	inner = opt
	inner.Workers = (total + outer - 1) / outer
	if inner.Workers < 1 {
		inner.Workers = 1
	}
	return outer, inner
}

// env bundles one trial's sampled network.
type env struct {
	opt      Options
	trial    int
	universe *geo.Universe
	lat      latency.Model
	forward  []time.Duration
	power    []float64
	root     *rng.RNG
	pinned   [][2]int
	frozen   []bool

	// traces accumulates one regret summary per traced engine run in this
	// env (populated by runPerigee when Options.TraceLevel is on).
	traces []*trace.Summary

	// evalSim is the trial's reusable evaluation simulator: built once via
	// netsim's prevalidated path and reconfigured in place when a different
	// (or mutated) table is evaluated. evalVer/evalTbl identify the
	// adjacency it currently reflects; evalAdj and evalArr are the reused
	// adjacency snapshot and per-worker arrival buffers.
	evalSim *netsim.Simulator
	evalTbl *topology.Table
	evalVer uint64
	evalAdj [][]int
	evalArr [][]time.Duration
	// evalSrc caches the trial's landmark source set (nil when λ is
	// evaluated from all nodes); see Options.LambdaSources.
	evalSrc []int
}

// newEnv samples a trial environment: universe, per-trial link latencies,
// per-node validation delays, and hash power (uniform unless the caller
// overrides it afterwards).
func newEnv(opt Options, trial int) (*env, error) {
	root := rng.New(opt.Seed).DeriveIndexed("trial", trial)
	universe, err := geo.SampleUniverse(opt.Nodes, root.Derive("universe"))
	if err != nil {
		return nil, err
	}
	lat, err := latency.NewGeographic(universe, root.Derive("latency"))
	if err != nil {
		return nil, err
	}
	power, err := hashpower.Uniform(opt.Nodes)
	if err != nil {
		return nil, err
	}
	e := &env{
		opt:      opt,
		trial:    trial,
		universe: universe,
		lat:      lat,
		power:    power,
		root:     root,
		forward:  sampleForward(opt.Nodes, opt.MeanValidation, opt.Validation, root.Derive("forward")),
	}
	return e, nil
}

// sampleForward draws per-node validation delays according to the chosen
// model.
func sampleForward(n int, mean time.Duration, model ValidationModel, r *rng.RNG) []time.Duration {
	out := make([]time.Duration, n)
	if mean == 0 {
		return out
	}
	for i := range out {
		switch model {
		case ValidationExponential:
			out[i] = time.Duration(r.ExpFloat64() * float64(mean))
		default:
			out[i] = mean
		}
	}
	return out
}

// scaleForward returns a copy of ds with every element multiplied by f.
func scaleForward(ds []time.Duration, f float64) []time.Duration {
	out := make([]time.Duration, len(ds))
	for i, d := range ds {
		out[i] = time.Duration(float64(d) * f)
	}
	return out
}

// delaysToSortedMs converts per-source λ values to an ascending ms series
// (the paper plots nodes in ascending delay order).
func delaysToSortedMs(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		if d == stats.InfDuration {
			out[i] = math.Inf(1)
		} else {
			out[i] = float64(d) / float64(time.Millisecond)
		}
	}
	sort.Float64s(out)
	return out
}

// simFor returns the env's reusable evaluation simulator positioned on
// tbl's current adjacency (plus the env's pinned edges). The table snapshot
// is rebuilt through netsim's prevalidated path — Table.Undirected output
// is symmetric and sorted by construction — and the simulator's CSR arrays
// are reconfigured in place, so evaluating the same unchanged table twice
// (or a table that evolves between evaluation passes, as the convergence
// experiment does every round) reuses one simulator for the whole trial.
func (e *env) simFor(tbl *topology.Table) (*netsim.Simulator, error) {
	ver := tbl.Version()
	if e.evalSim != nil && e.evalTbl == tbl && e.evalVer == ver {
		return e.evalSim, nil
	}
	e.evalAdj = tbl.UndirectedInto(e.evalAdj)
	adj := e.evalAdj
	if len(e.pinned) > 0 {
		adj = topology.MergeAdjacency(adj, e.pinned)
	}
	if e.evalSim == nil {
		sim, err := netsim.NewPrevalidated(netsim.Config{Adj: adj, Latency: e.lat, Forward: e.forward, LatencyMode: e.opt.LatencyMode})
		if err != nil {
			return nil, err
		}
		e.evalSim = sim
	} else if err := e.evalSim.Reconfigure(adj); err != nil {
		return nil, err
	}
	e.evalTbl, e.evalVer = tbl, ver
	return e.evalSim, nil
}

// landmarks returns the trial's λ evaluation sources: nil for the exact
// all-sources pass, or a cached uniform sample of LambdaSources distinct
// nodes. The sample is derived statelessly from the trial seed — it never
// consumes the trial's sequential streams, and repeated evaluations (every
// round of a convergence run, every arm sharing the trial) see the same
// landmark set, so series are comparable across rounds and algorithms.
func (e *env) landmarks() []int {
	k := e.opt.LambdaSources
	if k <= 0 || k >= e.opt.Nodes {
		return nil
	}
	if len(e.evalSrc) != k {
		perm := e.root.Derive("lambda-landmarks").Perm(e.opt.Nodes)
		e.evalSrc = append(e.evalSrc[:0], perm[:k]...)
		sort.Ints(e.evalSrc)
	}
	return e.evalSrc
}

// evalTopology computes λ_v over a static communication graph (plus the
// env's pinned edges) for every node — or only the trial's landmark
// sources when Options.LambdaSources is set. Sources are evaluated on the
// worker pool; the pooled analytic pass writes into per-worker arrival
// buffers.
func (e *env) evalTopology(tbl *topology.Table) ([]float64, error) {
	return e.evalTopologyAt(tbl, e.opt.Fraction)
}

// evalTopologyAt is evalTopology at an explicit coverage fraction.
func (e *env) evalTopologyAt(tbl *topology.Table, frac float64) ([]float64, error) {
	sim, err := e.simFor(tbl)
	if err != nil {
		return nil, err
	}
	sources := e.landmarks()
	count := e.opt.Nodes
	if sources != nil {
		count = len(sources)
	}
	workers := parallel.Workers(e.opt.Workers)
	if workers > count {
		workers = count
	}
	for len(e.evalArr) < workers {
		e.evalArr = append(e.evalArr, nil)
	}
	delays := make([]time.Duration, count)
	err = parallel.ForEachIndexed(count, workers, func(worker, i int) error {
		src := i
		if sources != nil {
			src = sources[i]
		}
		arrival, err := sim.ArrivalAnalyticInto(e.evalArr[worker], src)
		if err != nil {
			return err
		}
		e.evalArr[worker] = arrival
		delays[i], err = netsim.DelayToFraction(arrival, e.power, frac)
		return err
	})
	if err != nil {
		return nil, err
	}
	return delaysToSortedMs(delays), nil
}

// evalIdeal computes λ_v on the fully-connected lower bound: one hop from
// the source to everyone.
func (e *env) evalIdeal() ([]float64, error) {
	delays := make([]time.Duration, e.opt.Nodes)
	err := parallel.ForEachIndexed(e.opt.Nodes, e.opt.Workers, func(_, src int) error {
		arrival := netsim.IdealArrival(e.lat, src)
		var err error
		delays[src], err = netsim.DelayToFraction(arrival, e.power, e.opt.Fraction)
		return err
	})
	if err != nil {
		return nil, err
	}
	return delaysToSortedMs(delays), nil
}

// buildRandom seeds the standard random topology for this environment.
func (e *env) buildRandom(label string) (*topology.Table, error) {
	return topology.Random(e.opt.Nodes, 8, 20, e.root.Derive("random-topology-"+label))
}

// runPerigee seeds a random topology, runs the protocol to convergence,
// and returns the final sorted delay series along with the engine (for
// graph inspection, e.g. Figure 5).
func (e *env) runPerigee(method core.Method) ([]float64, *core.Engine, error) {
	tbl, err := e.buildRandom(method.String())
	if err != nil {
		return nil, nil, err
	}
	params := core.DefaultParams(method)
	rounds := e.opt.Rounds
	if method == core.UCB {
		// Same block budget as the |B|-block variants.
		rounds = e.opt.Rounds * e.opt.RoundBlocks
	} else {
		params.RoundBlocks = e.opt.RoundBlocks
	}
	var observer core.Observer
	if e.opt.RoundObserver != nil {
		arm, trial, emit := method.String(), e.trial, e.opt.RoundObserver
		observer = core.ObserverFunc(func(ev core.RoundEvent) { emit(arm, trial, ev) })
	}
	var collector *trace.Collector
	var traceCfg core.TraceConfig
	if e.opt.TraceLevel > 0 {
		collector = &trace.Collector{Selector: method.String(), Trial: e.trial, OnRecord: e.opt.TraceObserver}
		traceCfg = core.TraceConfig{
			Level:           core.TraceLevel(e.opt.TraceLevel),
			CounterfactualK: e.opt.CounterfactualK,
			Sink:            collector,
		}
	}
	engine, err := core.NewEngine(core.Config{
		Method:   method,
		Params:   params,
		Table:    tbl,
		Latency:  e.lat,
		Forward:  e.forward,
		Power:    e.power,
		Pinned:   e.pinned,
		Frozen:   e.frozen,
		Rand:     e.root.Derive("engine-" + method.String()),
		Workers:  e.opt.Workers,
		Observer: observer,

		LatencyMode:       e.opt.LatencyMode,
		ObservationWindow: e.opt.ObservationWindow,
		Shards:            e.opt.Shards,
		Trace:             traceCfg,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := engine.Run(rounds); err != nil {
		return nil, nil, err
	}
	if collector != nil {
		e.traces = append(e.traces, trace.Summarize(collector.Selector, collector.Records()))
	}
	delays, err := engine.Delays(e.opt.Fraction, e.landmarks())
	if err != nil {
		return nil, nil, err
	}
	return delaysToSortedMs(delays), engine, nil
}

// aggregate folds per-trial series into a Series with cross-trial error
// bars.
func aggregate(label string, trials [][]float64) (Series, error) {
	mean, std, err := stats.AggregateSeries(trials)
	if err != nil {
		return Series{}, fmt.Errorf("aggregating %s: %w", label, err)
	}
	return Series{Label: label, Mean: mean, Std: std}, nil
}

// algo is one curve of a figure: a label and the function producing its
// per-trial sorted delay series.
type algo struct {
	label string
	run   func(e *env) ([]float64, error)
}

// runFigure executes the standard figure protocol: for each trial, sample
// one environment, apply the figure-specific setup (power distribution,
// latency overrides, pinned relay edges, ...), then run every algorithm on
// that same network — exactly how the paper compares curves.
//
// Trials and algorithm arms fan out together over the worker pool as
// (trial, arm) jobs. Each job rebuilds its trial environment from scratch:
// newEnv and setup derive every stream statelessly from (Seed, trial), so
// two jobs of the same trial see identical networks, arms never share
// mutable state, and the per-(arm, trial) result matrix is independent of
// scheduling.
func runFigure(opt Options, id, title string, setup func(*env) error, algos []algo) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	perAlgo := make([][][]float64, len(algos))
	perTrace := make([][][]*trace.Summary, len(algos))
	for i := range perAlgo {
		perAlgo[i] = make([][]float64, opt.Trials)
		perTrace[i] = make([][]*trace.Summary, opt.Trials)
	}
	jobs := opt.Trials * len(algos)
	outer, innerOpt := splitWorkers(opt, jobs)
	err := parallel.ForEachIndexed(jobs, outer, func(_, j int) error {
		t, i := j/len(algos), j%len(algos)
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		if setup != nil {
			if err := setup(e); err != nil {
				return fmt.Errorf("experiments: %s trial %d setup: %w", id, t, err)
			}
		}
		series, err := algos[i].run(e)
		if err != nil {
			return fmt.Errorf("experiments: %s trial %d algo %s: %w", id, t, algos[i].label, err)
		}
		perAlgo[i][t] = series
		perTrace[i][t] = e.traces
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title, Options: opt}
	for i, a := range algos {
		s, err := aggregate(a.label, perAlgo[i])
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
		if opt.TraceLevel > 0 {
			var sums []*trace.Summary
			for _, ts := range perTrace[i] {
				sums = append(sums, ts...)
			}
			if merged := trace.Merge(sums...); merged != nil {
				res.Regret = append(res.Regret, merged)
			}
		}
	}
	return res, nil
}
