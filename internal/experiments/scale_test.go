package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/stats"
)

// TestLandmarkLambdaErrorBound quantifies the landmark estimator the scale
// scenario relies on: at a size where the exact all-sources pass is still
// affordable, the p50 and p90 of λ estimated from scaleDefaultLandmarks
// sources must sit within 15% of the exact full-population percentiles.
// (The landmark λ values are a uniform subsample of the population's, so
// their percentiles are the classic sample-quantile estimator; 64 sources
// keep its error well inside that bound at these scales.)
func TestLandmarkLambdaErrorBound(t *testing.T) {
	opt := ShortOptions()
	opt.Nodes = 300

	exactEnv, err := newEnv(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	lmOpt := opt
	lmOpt.LambdaSources = scaleDefaultLandmarks
	lmEnv, err := newEnv(lmOpt, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Identical trial seeds ⇒ identical sampled networks and identical
	// random topologies for the same label.
	tbl, err := exactEnv.buildRandom("landmark-bound")
	if err != nil {
		t.Fatal(err)
	}
	lmTbl, err := lmEnv.buildRandom("landmark-bound")
	if err != nil {
		t.Fatal(err)
	}

	exact, err := exactEnv.evalTopology(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != opt.Nodes {
		t.Fatalf("exact pass evaluated %d sources, want %d", len(exact), opt.Nodes)
	}
	estimated, err := lmEnv.evalTopology(lmTbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(estimated) != scaleDefaultLandmarks {
		t.Fatalf("landmark pass evaluated %d sources, want %d", len(estimated), scaleDefaultLandmarks)
	}

	for _, p := range []float64{0.5, 0.9} {
		want := stats.Percentile(exact, p)
		got := stats.Percentile(estimated, p)
		relErr := math.Abs(got-want) / want
		t.Logf("p%.0f: exact %.1f ms, landmarks %.1f ms, error %.1f%%", 100*p, want, got, 100*relErr)
		if relErr > 0.15 {
			t.Errorf("p%.0f landmark estimate %.1f ms is %.1f%% off the exact %.1f ms (bound 15%%)",
				100*p, got, 100*relErr, want)
		}
	}
}

// TestLandmarksStableAcrossEvaluations checks the landmark set is cached
// and derived statelessly: repeated calls — and calls on a fresh env with
// the same trial seed — return the same sorted sources.
func TestLandmarksStableAcrossEvaluations(t *testing.T) {
	opt := ShortOptions()
	opt.LambdaSources = 16
	e, err := newEnv(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]int(nil), e.landmarks()...)
	if len(first) != 16 {
		t.Fatalf("got %d landmarks, want 16", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("landmarks not strictly ascending: %v", first)
		}
	}
	again := e.landmarks()
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("landmark set changed across calls: %v vs %v", first, again)
		}
	}
	e2, err := newEnv(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	fresh := e2.landmarks()
	for i := range first {
		if first[i] != fresh[i] {
			t.Fatalf("landmark set not stateless: %v vs %v", first, fresh)
		}
	}
}

// TestScaleScenarioSmoke runs the scale scenario at test size with the
// whole stack enabled — streaming latency, a narrow observation window,
// sharded broadcasts, landmark evaluation — and checks the shape of the
// result: per-round p90/p50 series and the stack note.
func TestScaleScenarioSmoke(t *testing.T) {
	opt := ShortOptions()
	opt.Nodes = 120
	opt.Rounds = 4
	opt.RoundBlocks = 30
	opt.LambdaSources = 24
	opt.ObservationWindow = 10
	opt.Shards = 2
	opt.LatencyMode = latency.Streaming

	res, err := Run("scale", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Mean) != opt.Rounds {
			t.Fatalf("series %s has %d points, want %d", s.Label, len(s.Mean), opt.Rounds)
		}
		for i, v := range s.Mean {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("series %s point %d is %v", s.Label, i, v)
			}
		}
	}
	p90, err := res.SeriesByLabel("p90-lambda")
	if err != nil {
		t.Fatal(err)
	}
	p50, err := res.SeriesByLabel("p50-lambda")
	if err != nil {
		t.Fatal(err)
	}
	for i := range p90.Mean {
		if p50.Mean[i] > p90.Mean[i] {
			t.Fatalf("round %d: p50 %.1f exceeds p90 %.1f", i, p50.Mean[i], p90.Mean[i])
		}
	}
	var stackNote bool
	for _, note := range res.Notes {
		if strings.Contains(note, "latency=streaming") &&
			strings.Contains(note, "landmarks=24") &&
			strings.Contains(note, "window=10") &&
			strings.Contains(note, "shards=2") {
			stackNote = true
		}
	}
	if !stackNote {
		t.Fatalf("missing scale-stack note; notes: %v", res.Notes)
	}
}
