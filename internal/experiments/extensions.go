package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// The extension experiments cover the paper's §6 discussion items that the
// published evaluation does not measure: incentive compatibility against
// free-riders, behavior under churn, and upload-bandwidth heterogeneity.

// FreerideSilentFraction is the share of free-riding nodes in the
// incentive experiment.
const FreerideSilentFraction = 0.2

// Freeride measures Perigee's incentive claim (§1): nodes that deviate by
// never relaying blocks get evicted from honest nodes' neighbor sets and
// therefore receive blocks later. The result contains network delay
// curves ("random", "Perigee-Subset") plus two receive-delay series under
// Perigee: honest vs silent nodes.
func Freeride(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "freeride",
		Title:   fmt.Sprintf("Extension: %.0f%% free-riding (non-relaying) nodes", 100*FreerideSilentFraction),
		Options: opt,
	}
	// Per-trial results, indexed so the parallel fan-out is scheduling
	// independent.
	var (
		randomTrials   = make([][]float64, opt.Trials)
		perigeeTrials  = make([][]float64, opt.Trials)
		honestRecvMs   = make([]float64, opt.Trials)
		silentRecvMs   = make([]float64, opt.Trials)
		honestRandomMs = make([]float64, opt.Trials)
		silentRandomMs = make([]float64, opt.Trials)
	)
	outer, innerOpt := splitWorkers(opt, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, outer, func(_, t int) error {
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		silent := make([]bool, opt.Nodes)
		perm := e.root.Derive("silent-nodes").Perm(opt.Nodes)
		for _, v := range perm[:int(FreerideSilentFraction*float64(opt.Nodes))] {
			silent[v] = true
		}

		// Static random baseline with the same silent population.
		randTbl, err := e.buildRandom(LabelRandom)
		if err != nil {
			return err
		}
		randEngine, err := newExtensionEngine(e, core.Subset, randTbl, silent, nil)
		if err != nil {
			return err
		}
		randDelays, err := randEngine.Delays(e.opt.Fraction, nil)
		if err != nil {
			return err
		}
		randomTrials[t] = delaysToSortedMs(randDelays)
		randRecv, err := randEngine.ReceiveDelays(receiveSources(e, silent))
		if err != nil {
			return err
		}
		honestRandomMs[t], silentRandomMs[t] = splitMeans(randRecv, silent)

		// Perigee run over the same network.
		periTbl, err := e.buildRandom(LabelSubset)
		if err != nil {
			return err
		}
		engine, err := newExtensionEngine(e, core.Subset, periTbl, silent, nil)
		if err != nil {
			return err
		}
		if _, err := engine.Run(e.opt.Rounds); err != nil {
			return err
		}
		periDelays, err := engine.Delays(e.opt.Fraction, nil)
		if err != nil {
			return err
		}
		perigeeTrials[t] = delaysToSortedMs(periDelays)
		recv, err := engine.ReceiveDelays(receiveSources(e, silent))
		if err != nil {
			return err
		}
		honestRecvMs[t], silentRecvMs[t] = splitMeans(recv, silent)
		return nil
	})
	if err != nil {
		return nil, err
	}
	randomSeries, err := aggregate(LabelRandom, randomTrials)
	if err != nil {
		return nil, err
	}
	perigeeSeries, err := aggregate(LabelSubset, perigeeTrials)
	if err != nil {
		return nil, err
	}
	res.Series = []Series{randomSeries, perigeeSeries}
	hr, sr := stats.Mean(honestRandomMs), stats.Mean(silentRandomMs)
	hp, sp := stats.Mean(honestRecvMs), stats.Mean(silentRecvMs)
	res.Notes = append(res.Notes,
		fmt.Sprintf("random: silent nodes receive blocks %.0f ms after mining vs %.0f ms for honest (%.0f%% penalty)",
			sr, hr, 100*(sr/hr-1)),
		fmt.Sprintf("Perigee: silent nodes receive at %.0f ms vs %.0f ms for honest (%.0f%% penalty)",
			sp, hp, 100*(sp/hp-1)),
		"Perigee punishes free-riders: deviating from the relay protocol costs reception latency (§1's incentive claim)")
	return res, nil
}

// receiveSources samples honest block sources for receive-delay
// measurement (miners are honest; a silent miner still announces).
func receiveSources(e *env, silent []bool) []int {
	var out []int
	for v := 0; v < e.opt.Nodes && len(out) < 200; v++ {
		if !silent[v] {
			out = append(out, v)
		}
	}
	return out
}

// splitMeans returns the mean finite receive delay (ms) of honest and
// silent nodes.
func splitMeans(recv []time.Duration, silent []bool) (honestMs, silentMs float64) {
	var hs, ss stats.Summary
	for v, d := range recv {
		if d == stats.InfDuration {
			continue
		}
		ms := float64(d) / float64(time.Millisecond)
		if silent[v] {
			ss.Add(ms)
		} else {
			hs.Add(ms)
		}
	}
	return hs.Mean(), ss.Mean()
}

// newExtensionEngine builds a Subset engine with optional silent mask and
// send intervals over an existing table.
func newExtensionEngine(e *env, method core.Method, tbl *topology.Table, silent []bool, sendInterval []time.Duration) (*core.Engine, error) {
	params := core.DefaultParams(method)
	if method != core.UCB {
		params.RoundBlocks = e.opt.RoundBlocks
	}
	return core.NewEngine(core.Config{
		Method:       method,
		Params:       params,
		Table:        tbl,
		Latency:      e.lat,
		Forward:      e.forward,
		Power:        e.power,
		Pinned:       e.pinned,
		Frozen:       e.frozen,
		Silent:       silent,
		SendInterval: sendInterval,
		Rand:         e.root.Derive("extension-engine-" + method.String()),
		Workers:      e.opt.Workers,

		LatencyMode:       e.opt.LatencyMode,
		ObservationWindow: e.opt.ObservationWindow,
		Shards:            e.opt.Shards,
	})
}

// ChurnFraction is the share of nodes replaced between rounds in the churn
// experiment.
const ChurnFraction = 0.05

// Churn measures Perigee under membership churn (§6): after every round,
// ChurnFraction of the nodes are replaced by fresh peers with empty state
// and random connections. Perigee must keep (most of) its advantage while
// continuously re-learning.
func Churn(opt Options) (*Result, error) {
	setup := func(*env) error { return nil }
	algos := []algo{
		{LabelRandom, func(e *env) ([]float64, error) {
			tbl, err := e.buildRandom(LabelRandom)
			if err != nil {
				return nil, err
			}
			return e.evalTopology(tbl)
		}},
		{LabelSubset + "-stable", func(e *env) ([]float64, error) {
			s, _, err := e.runPerigee(core.Subset)
			return s, err
		}},
		{LabelSubset + "-churn", func(e *env) ([]float64, error) {
			tbl, err := e.buildRandom("churn")
			if err != nil {
				return nil, err
			}
			engine, err := newExtensionEngine(e, core.Subset, tbl, nil, nil)
			if err != nil {
				return nil, err
			}
			churnRand := e.root.Derive("churn")
			k := int(ChurnFraction * float64(e.opt.Nodes))
			for r := 0; r < e.opt.Rounds; r++ {
				if _, err := engine.Step(); err != nil {
					return nil, err
				}
				perm := churnRand.Perm(e.opt.Nodes)
				if err := engine.Churn(perm[:k]); err != nil {
					return nil, err
				}
			}
			delays, err := engine.Delays(e.opt.Fraction, nil)
			if err != nil {
				return nil, err
			}
			return delaysToSortedMs(delays), nil
		}},
		{LabelIdeal, func(e *env) ([]float64, error) { return e.evalIdeal() }},
	}
	res, err := runFigure(opt, "churn",
		fmt.Sprintf("Extension: %.0f%% of nodes replaced every round", 100*ChurnFraction),
		setup, algos)
	if err != nil {
		return nil, err
	}
	randomS, err := res.SeriesByLabel(LabelRandom)
	if err != nil {
		return nil, err
	}
	stable, err := res.SeriesByLabel(LabelSubset + "-stable")
	if err != nil {
		return nil, err
	}
	churned, err := res.SeriesByLabel(LabelSubset + "-churn")
	if err != nil {
		return nil, err
	}
	if m := randomS.Median(); m > 0 && !math.IsInf(m, 1) {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"improvement vs random: %.0f%% without churn, %.0f%% with %.0f%% churn per round",
			100*(1-stable.Median()/m), 100*(1-churned.Median()/m), 100*ChurnFraction))
	}
	return res, nil
}

// Bandwidth upload heterogeneity: a quarter of the nodes serialize their
// uploads slowly (large block / thin uplink); Perigee should avoid relying
// on them even though link propagation delays are identical.
const (
	bandwidthSlowFraction     = 0.25
	bandwidthSlowSendInterval = 30 * time.Millisecond
	bandwidthFastSendInterval = 2 * time.Millisecond
)

// Bandwidth measures the upload-serialization scenario (§3.3's bandwidth
// skew): per-node send intervals model block transmission time, and the
// event-driven simulator (not the analytic pass) evaluates λ_v.
func Bandwidth(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	makeIntervals := func(e *env) []time.Duration {
		r := e.root.Derive("bandwidth")
		out := make([]time.Duration, e.opt.Nodes)
		for i := range out {
			if r.Float64() < bandwidthSlowFraction {
				out[i] = bandwidthSlowSendInterval
			} else {
				out[i] = bandwidthFastSendInterval
			}
		}
		return out
	}
	algos := []algo{
		{LabelRandom, func(e *env) ([]float64, error) {
			tbl, err := e.buildRandom(LabelRandom)
			if err != nil {
				return nil, err
			}
			engine, err := newExtensionEngine(e, core.Subset, tbl, nil, makeIntervals(e))
			if err != nil {
				return nil, err
			}
			delays, err := engine.Delays(e.opt.Fraction, nil)
			if err != nil {
				return nil, err
			}
			return delaysToSortedMs(delays), nil
		}},
		{LabelSubset, func(e *env) ([]float64, error) {
			tbl, err := e.buildRandom(LabelSubset)
			if err != nil {
				return nil, err
			}
			engine, err := newExtensionEngine(e, core.Subset, tbl, nil, makeIntervals(e))
			if err != nil {
				return nil, err
			}
			if _, err := engine.Run(e.opt.Rounds); err != nil {
				return nil, err
			}
			delays, err := engine.Delays(e.opt.Fraction, nil)
			if err != nil {
				return nil, err
			}
			return delaysToSortedMs(delays), nil
		}},
	}
	res, err := runFigure(opt, "bandwidth",
		fmt.Sprintf("Extension: %.0f%% slow uploaders (serialized sends, %v per neighbor)",
			100*bandwidthSlowFraction, bandwidthSlowSendInterval),
		nil, algos)
	if err != nil {
		return nil, err
	}
	annotateImprovement(res)
	return res, nil
}
