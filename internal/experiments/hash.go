package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// optionsHashFields is the number of Options struct fields the canonical
// hash accounts for (hashed or deliberately excluded). A reflection test
// compares it against the live struct, so adding an Options field without
// deciding its hash treatment is a compile-visible, test-failing act.
const optionsHashFields = 22

// Hash returns the canonical content hash of the options: a hex SHA-256
// over an explicit versioned encoding of every result-determining field.
// The experiment service keys its result cache on Scenario ID + Hash, so
// the encoding deliberately excludes the fields that cannot change a
// result:
//
//   - Workers only schedules goroutines; results are bit-for-bit identical
//     at any worker count, so runs differing only in Workers share a hash
//     (and therefore a cache entry).
//   - RoundObserver and TraceObserver are runtime streaming hooks.
//
// TraceFile and RecordTrace are side-effecting (they read/write files) and
// TraceLevel/CounterfactualK change the Regret section of the result, so
// all four are hashed.
func (o Options) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h,
		"perigee-options-v1|nodes=%d|trials=%d|rounds=%d|roundblocks=%d|fraction=%g|seed=%d|meanvalidation=%d|validation=%d|adversaryfraction=%g|capturethreshold=%g|lambdasources=%d|observationwindow=%d|shards=%d|latencymode=%d|blockinterval=%d|tracefile=%q|recordtrace=%q|tracelevel=%d|counterfactualk=%d",
		o.Nodes, o.Trials, o.Rounds, o.RoundBlocks, o.Fraction, o.Seed,
		int64(o.MeanValidation), int(o.Validation), o.AdversaryFraction,
		o.CaptureThreshold, o.LambdaSources, o.ObservationWindow, o.Shards,
		int(o.LatencyMode), int64(o.BlockInterval), o.TraceFile,
		o.RecordTrace, o.TraceLevel, o.CounterfactualK)
	return hex.EncodeToString(h.Sum(nil))
}
