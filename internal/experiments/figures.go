package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// Algorithm labels shared across figures (the paper's legend names).
const (
	LabelRandom     = "random"
	LabelGeographic = "geographic"
	LabelKademlia   = "kademlia"
	LabelVanilla    = "Perigee-Vanilla"
	LabelUCB        = "Perigee-UCB"
	LabelSubset     = "Perigee-Subset"
	LabelIdeal      = "ideal"
)

// standardAlgos returns the full comparison set of Figure 3.
func standardAlgos() []algo {
	return []algo{
		{LabelRandom, func(e *env) ([]float64, error) {
			tbl, err := e.buildRandom(LabelRandom)
			if err != nil {
				return nil, err
			}
			return e.evalTopology(tbl)
		}},
		{LabelGeographic, func(e *env) ([]float64, error) {
			tbl, err := topology.Geographic(e.universe, 8, 4, 20, e.root.Derive("geo-topology"))
			if err != nil {
				return nil, err
			}
			return e.evalTopology(tbl)
		}},
		{LabelKademlia, func(e *env) ([]float64, error) {
			tbl, err := topology.Kademlia(e.opt.Nodes, 8, 20, e.root.Derive("kad-topology"))
			if err != nil {
				return nil, err
			}
			return e.evalTopology(tbl)
		}},
		{LabelVanilla, func(e *env) ([]float64, error) {
			s, _, err := e.runPerigee(core.Vanilla)
			return s, err
		}},
		{LabelUCB, func(e *env) ([]float64, error) {
			s, _, err := e.runPerigee(core.UCB)
			return s, err
		}},
		{LabelSubset, func(e *env) ([]float64, error) {
			s, _, err := e.runPerigee(core.Subset)
			return s, err
		}},
		{LabelIdeal, func(e *env) ([]float64, error) { return e.evalIdeal() }},
	}
}

// Figure3a reproduces Figure 3(a): minimum delay to 90% of hash power for
// all seven algorithms under uniform hash power.
func Figure3a(opt Options) (*Result, error) {
	res, err := runFigure(opt, "figure3a",
		"Fig 3(a): delay to 90% hash power, uniform hash power",
		nil, standardAlgos())
	if err != nil {
		return nil, err
	}
	annotateImprovement(res)
	return res, nil
}

// Figure3b reproduces Figure 3(b): the same comparison with hash power
// drawn from an exponential distribution (normalized).
func Figure3b(opt Options) (*Result, error) {
	setup := func(e *env) error {
		power, err := hashpower.Exponential(e.opt.Nodes, e.root.Derive("exp-power"))
		if err != nil {
			return err
		}
		e.power = power
		return nil
	}
	res, err := runFigure(opt, "figure3b",
		"Fig 3(b): delay to 90% hash power, exponential hash power",
		setup, standardAlgos())
	if err != nil {
		return nil, err
	}
	annotateImprovement(res)
	return res, nil
}

// ValidationMultipliers are the Figure 4(a) block-validation-time sweep
// points (0.1x–10x of the 50 ms default).
var ValidationMultipliers = []float64{0.1, 0.5, 1, 5, 10}

// Figure4a reproduces Figure 4(a): Perigee-Subset vs random as the
// per-node validation delay is scaled from 0.1x to 10x its default.
// Series are labeled "<algo>-<mult>x".
func Figure4a(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "figure4a",
		Title:   "Fig 4(a): sensitivity to block validation delay (0.1x-10x)",
		Options: opt,
	}
	for _, mult := range ValidationMultipliers {
		mult := mult
		setup := func(e *env) error {
			e.forward = scaleForward(e.forward, mult)
			return nil
		}
		sub, err := runFigure(opt, res.ID, res.Title, setup, []algo{
			{fmt.Sprintf("%s-%gx", LabelRandom, mult), func(e *env) ([]float64, error) {
				tbl, err := e.buildRandom(LabelRandom)
				if err != nil {
					return nil, err
				}
				return e.evalTopology(tbl)
			}},
			{fmt.Sprintf("%s-%gx", LabelSubset, mult), func(e *env) ([]float64, error) {
				s, _, err := e.runPerigee(core.Subset)
				return s, err
			}},
		})
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, sub.Series...)
	}
	// Note the expected trend: Perigee's relative advantage shrinks as
	// validation dominates propagation.
	for _, mult := range ValidationMultipliers {
		randomS, err := res.SeriesByLabel(fmt.Sprintf("%s-%gx", LabelRandom, mult))
		if err != nil {
			return nil, err
		}
		subsetS, err := res.SeriesByLabel(fmt.Sprintf("%s-%gx", LabelSubset, mult))
		if err != nil {
			return nil, err
		}
		if m := randomS.Median(); m > 0 && !math.IsInf(m, 1) {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"validation %gx: Perigee-Subset median %.0f ms vs random %.0f ms (%.0f%% better)",
				mult, subsetS.Median(), m, 100*(1-subsetS.Median()/m)))
		}
	}
	return res, nil
}

// Figure4b reproduces Figure 4(b): 10% of the nodes hold 90% of the hash
// power and enjoy fast links among themselves.
func Figure4b(opt Options) (*Result, error) {
	const (
		poolFrac     = 0.10
		powerFrac    = 0.90
		minerSpeedup = 0.1 // miner-miner latency scaled to 10% of default
	)
	setup := func(e *env) error {
		power, miners, err := hashpower.Pools(e.opt.Nodes, poolFrac, powerFrac, e.root.Derive("pools"))
		if err != nil {
			return err
		}
		e.power = power
		over, err := latency.NewOverride(e.lat)
		if err != nil {
			return err
		}
		for i := 0; i < len(miners); i++ {
			for j := i + 1; j < len(miners); j++ {
				fast := time.Duration(float64(e.lat.Delay(miners[i], miners[j])) * minerSpeedup)
				if err := over.Set(miners[i], miners[j], fast); err != nil {
					return err
				}
			}
		}
		e.lat = over
		return nil
	}
	res, err := runFigure(opt, "figure4b",
		"Fig 4(b): 10% of nodes hold 90% of hash power with fast miner links",
		setup, standardSubsetComparison())
	if err != nil {
		return nil, err
	}
	annotateImprovement(res)
	return res, nil
}

// Figure4c reproduces Figure 4(c): a 100-node low-latency relay tree
// (validation at 10% of default inside the relay) is embedded in the
// network; Perigee should learn to exploit it and approach the ideal.
func Figure4c(opt Options) (*Result, error) {
	relayCount := opt.Nodes / 10
	if relayCount < 4 {
		relayCount = 4
	}
	const (
		relayLinkDelay      = 5 * time.Millisecond
		relayValidationMult = 0.1
	)
	setup := func(e *env) error {
		perm := e.root.Derive("relay-members").Perm(e.opt.Nodes)
		members := perm[:relayCount]
		edges, err := topology.RelayTree(members, 2)
		if err != nil {
			return err
		}
		e.pinned = edges
		over, err := latency.NewOverride(e.lat)
		if err != nil {
			return err
		}
		for _, edge := range edges {
			if err := over.Set(edge[0], edge[1], relayLinkDelay); err != nil {
				return err
			}
		}
		e.lat = over
		for _, m := range members {
			e.forward[m] = time.Duration(float64(e.forward[m]) * relayValidationMult)
		}
		return nil
	}
	res, err := runFigure(opt, "figure4c",
		"Fig 4(c): fast block-distribution relay tree embedded in the network",
		setup, standardSubsetComparison())
	if err != nil {
		return nil, err
	}
	annotateImprovement(res)
	return res, nil
}

// standardSubsetComparison is the reduced algorithm set used by the
// Figure 4(b)/(c) scenario studies.
func standardSubsetComparison() []algo {
	return []algo{
		{LabelRandom, func(e *env) ([]float64, error) {
			tbl, err := e.buildRandom(LabelRandom)
			if err != nil {
				return nil, err
			}
			return e.evalTopology(tbl)
		}},
		{LabelGeographic, func(e *env) ([]float64, error) {
			tbl, err := topology.Geographic(e.universe, 8, 4, 20, e.root.Derive("geo-topology"))
			if err != nil {
				return nil, err
			}
			return e.evalTopology(tbl)
		}},
		{LabelSubset, func(e *env) ([]float64, error) {
			s, _, err := e.runPerigee(core.Subset)
			return s, err
		}},
		{LabelIdeal, func(e *env) ([]float64, error) { return e.evalIdeal() }},
	}
}

// EdgeHistogramRange is the Figure 5 histogram domain in milliseconds.
const (
	EdgeHistogramLoMs = 0.0
	EdgeHistogramHiMs = 250.0
	EdgeHistogramBins = 25
)

// Figure5 reproduces Figure 5: histograms of the edge latencies in the
// final p2p graph under each algorithm (uniform hash power). Perigee-Subset
// should concentrate mass in the intra-continental (low-latency) mode.
func Figure5(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "figure5",
		Title:      "Fig 5: edge-latency histograms of converged topologies",
		Options:    opt,
		Histograms: make(map[string]*stats.Histogram),
	}
	addHist := func(label string, adj [][]int, lat latency.Model) error {
		h, ok := res.Histograms[label]
		if !ok {
			var err error
			h, err = stats.NewHistogram(EdgeHistogramLoMs, EdgeHistogramHiMs, EdgeHistogramBins)
			if err != nil {
				return err
			}
			res.Histograms[label] = h
		}
		for u := range adj {
			for _, v := range adj[u] {
				if u < v { // count each undirected edge once
					h.Add(float64(lat.Delay(u, v)) / float64(time.Millisecond))
				}
			}
		}
		return nil
	}
	// Per-trial topologies are built in parallel; histograms are merged
	// sequentially in (trial, label) order so bin counts never depend on
	// scheduling.
	type trialGraphs struct {
		lat latency.Model
		adj map[string][][]int
	}
	perTrial := make([]trialGraphs, opt.Trials)
	outer, innerOpt := splitWorkers(opt, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, outer, func(_, t int) error {
		e, err := newEnv(innerOpt, t)
		if err != nil {
			return err
		}
		adj := make(map[string][][]int, 4)
		randomTbl, err := e.buildRandom(LabelRandom)
		if err != nil {
			return err
		}
		adj[LabelRandom] = randomTbl.Undirected()
		geoTbl, err := topology.Geographic(e.universe, 8, 4, 20, e.root.Derive("geo-topology"))
		if err != nil {
			return err
		}
		adj[LabelGeographic] = geoTbl.Undirected()
		kadTbl, err := topology.Kademlia(e.opt.Nodes, 8, 20, e.root.Derive("kad-topology"))
		if err != nil {
			return err
		}
		adj[LabelKademlia] = kadTbl.Undirected()
		_, engine, err := e.runPerigee(core.Subset)
		if err != nil {
			return err
		}
		adj[LabelSubset] = engine.Adjacency()
		perTrial[t] = trialGraphs{lat: e.lat, adj: adj}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for t := 0; t < opt.Trials; t++ {
		for _, label := range []string{LabelRandom, LabelGeographic, LabelKademlia, LabelSubset} {
			if err := addHist(label, perTrial[t].adj[label], perTrial[t].lat); err != nil {
				return nil, err
			}
		}
	}
	// Headline statistic: fraction of edge mass in the low-latency half.
	for _, label := range []string{LabelRandom, LabelGeographic, LabelKademlia, LabelSubset} {
		h := res.Histograms[label]
		frac := lowModeFraction(h)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: %.0f%% of edges below %.0f ms",
			label, 100*frac, (EdgeHistogramLoMs+EdgeHistogramHiMs)/2))
	}
	return res, nil
}

// lowModeFraction returns the fraction of histogram mass in the lower half
// of the domain — the intra-continental mode of Figure 5.
func lowModeFraction(h *stats.Histogram) float64 {
	fr := h.Fractions()
	var sum float64
	for i := 0; i < len(fr)/2; i++ {
		sum += fr[i]
	}
	return sum
}

// Figure1 reproduces Figure 1's stretch comparison: 1000 points in the
// unit square, random 3-regular connectivity vs a geometric threshold
// graph. The series are stretch distributions (sorted, dimensionless).
func Figure1(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "figure1",
		Title:   "Fig 1: path stretch, random vs geometric graph on the unit square",
		Options: opt,
	}
	const pairs = 200
	randomTrials := make([][]float64, opt.Trials)
	geomTrials := make([][]float64, opt.Trials)
	err := parallel.ForEachIndexed(opt.Trials, opt.Workers, func(_, t int) error {
		root := rng.New(opt.Seed).DeriveIndexed("figure1", t)
		cube, err := latency.NewHypercube(opt.Nodes, 2, 100*time.Millisecond, root.Derive("points"))
		if err != nil {
			return err
		}
		weight := func(u, v int) time.Duration { return cube.Delay(u, v) }
		randomAdj, err := topology.RandomUndirected(opt.Nodes, 3, root.Derive("random"))
		if err != nil {
			return err
		}
		radius := geometricRadius(opt.Nodes, 2)
		geomAdj, err := topology.Geometric(opt.Nodes, cube.Distance, radius)
		if err != nil {
			return err
		}
		rs, err := topology.StretchSample(randomAdj, weight, pairs, root.Derive("pairs-random"))
		if err != nil {
			return err
		}
		gs, err := topology.StretchSample(geomAdj, weight, pairs, root.Derive("pairs-geom"))
		if err != nil {
			return err
		}
		randomTrials[t] = stats.CDF(rs)
		geomTrials[t] = stats.CDF(gs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	randomSeries, err := aggregate("random-stretch", randomTrials)
	if err != nil {
		return nil, err
	}
	geomSeries, err := aggregate("geometric-stretch", geomTrials)
	if err != nil {
		return nil, err
	}
	res.Series = []Series{randomSeries, geomSeries}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"median stretch: random %.2f vs geometric %.2f",
		randomSeries.Median(), geomSeries.Median()))
	return res, nil
}

// geometricRadius is the connectivity threshold r = Θ((log n / n)^(1/d))
// of Theorem 2, with a constant chosen to keep the graph connected w.h.p.
func geometricRadius(n, d int) float64 {
	return 2.2 * math.Pow(math.Log(float64(n))/float64(n), 1/float64(d))
}

// TheoremSizes are the network sizes swept by the Theorem 1/2 experiments.
var TheoremSizes = []int{200, 400, 800, 1600}

// Theorem1 empirically validates Theorem 1: on random graphs over embedded
// points, median stretch grows with n (the log-factor suboptimality).
func Theorem1(opt Options) (*Result, error) {
	return theoremExperiment(opt, "theorem1",
		"Thm 1: stretch of random graphs grows with network size", false)
}

// Theorem2 empirically validates Theorem 2: geometric threshold graphs
// keep constant stretch as n grows.
func Theorem2(opt Options) (*Result, error) {
	return theoremExperiment(opt, "theorem2",
		"Thm 2: stretch of geometric graphs stays constant", true)
}

func theoremExperiment(opt Options, id, title string, geometric bool) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title, Options: opt}
	const dim = 2
	const pairs = 150
	// Flatten the (size, trial) sweep into one indexed job list.
	perSize := make([][][]float64, len(TheoremSizes))
	for i := range perSize {
		perSize[i] = make([][]float64, opt.Trials)
	}
	jobs := len(TheoremSizes) * opt.Trials
	err := parallel.ForEachIndexed(jobs, opt.Workers, func(_, j int) error {
		si, t := j/opt.Trials, j%opt.Trials
		n := TheoremSizes[si]
		root := rng.New(opt.Seed).DeriveIndexed(fmt.Sprintf("%s-%d", id, n), t)
		cube, err := latency.NewHypercube(n, dim, 100*time.Millisecond, root.Derive("points"))
		if err != nil {
			return err
		}
		var adj [][]int
		if geometric {
			adj, err = topology.Geometric(n, cube.Distance, geometricRadius(n, dim))
		} else {
			// Average degree ~ c log n mirrors p <= c log n / n.
			deg := int(math.Ceil(math.Log(float64(n)) / 2))
			if deg < 2 {
				deg = 2
			}
			adj, err = topology.RandomUndirected(n, deg, root.Derive("graph"))
		}
		if err != nil {
			return err
		}
		weight := func(u, v int) time.Duration { return cube.Delay(u, v) }
		ss, err := topology.StretchSample(adj, weight, pairs, root.Derive("pairs"))
		if err != nil {
			return err
		}
		perSize[si][t] = stats.CDF(ss)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, n := range TheoremSizes {
		s, err := aggregate(fmt.Sprintf("n=%d", n), perSize[si])
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf("n=%d: median stretch %.2f", n, s.Median()))
	}
	return res, nil
}

// annotateImprovement appends the headline Perigee-vs-random improvement
// note when both curves exist.
func annotateImprovement(res *Result) {
	randomS, err1 := res.SeriesByLabel(LabelRandom)
	var perigeeS Series
	var err2 error
	perigeeS, err2 = res.SeriesByLabel(LabelSubset)
	if err1 != nil || err2 != nil {
		return
	}
	rm, pm := randomS.Median(), perigeeS.Median()
	if rm <= 0 || math.IsInf(rm, 1) || math.IsInf(pm, 1) {
		return
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"Perigee-Subset median %.0f ms vs random %.0f ms: %.0f%% improvement",
		pm, rm, 100*(1-pm/rm)))
}
