package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden scenario renderings")

// goldenScenarios are the renderer shapes pinned by committed golden
// files: a figure (series + notes), the eclipse capture report
// (notes-only), a histogram result, an adversarial comparison (six
// series + degradation notes), and the continuous-time workload report
// (series + per-arm fork economics).
var goldenScenarios = []string{"figure1", "figure5", "eclipse", "adversary-withholding", "forks"}

// goldenOptions is a deliberately tiny, fixed configuration: golden
// files pin the rendering contract and the seeded numerics, not
// paper-scale results.
func goldenOptions() Options {
	return Options{
		Nodes:          60,
		Trials:         1,
		Rounds:         3,
		RoundBlocks:    15,
		Fraction:       0.9,
		Seed:           7,
		MeanValidation: 50 * time.Millisecond,
	}
}

// goldenTolerance is the relative tolerance for numeric comparisons —
// wide enough to absorb cross-platform libm drift in the geographic
// model, tight enough that any logic change trips it.
const goldenTolerance = 1e-6

// TestGoldenScenarioJSON renders each pinned scenario to JSON and
// compares it against the committed golden file with numeric tolerance.
// Regenerate with:
//
//	go test ./internal/experiments -run TestGoldenScenarioJSON -update
func TestGoldenScenarioJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenario runs")
	}
	for _, id := range goldenScenarios {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, goldenOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", id+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			var gotDoc, wantDoc any
			if err := json.Unmarshal(got, &gotDoc); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wantDoc); err != nil {
				t.Fatalf("golden file %s corrupt: %v", path, err)
			}
			if err := compareJSON(wantDoc, gotDoc, "$"); err != nil {
				t.Errorf("rendered JSON diverges from %s:\n%v", path, err)
			}
		})
	}
}

// compareJSON walks two decoded JSON documents, requiring identical
// structure, exact non-numeric equality, and numeric equality within
// goldenTolerance (relative, with an absolute floor for values near
// zero).
func compareJSON(want, got any, path string) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: want object, got %T", path, got)
		}
		if len(w) != len(g) {
			return fmt.Errorf("%s: object has %d keys, want %d", path, len(g), len(w))
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("%s: missing key %q", path, k)
			}
			if err := compareJSON(wv, gv, path+"."+k); err != nil {
				return err
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("%s: want array, got %T", path, got)
		}
		if len(w) != len(g) {
			return fmt.Errorf("%s: array has %d elements, want %d", path, len(g), len(w))
		}
		for i := range w {
			if err := compareJSON(w[i], g[i], fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			return fmt.Errorf("%s: want number, got %T", path, got)
		}
		diff := math.Abs(g - w)
		scale := math.Max(math.Abs(w), math.Abs(g))
		if diff > goldenTolerance*math.Max(scale, 1) {
			return fmt.Errorf("%s: %v differs from golden %v beyond tolerance", path, g, w)
		}
	case string:
		// Rendered strings embed rounded numbers; float drift below the
		// numeric tolerance can still flip a rounded digit, so note/title
		// strings are compared only for presence and rough shape via
		// structure — exact match is still required here because the same
		// seeded run produced them; loosen per-field if a platform ever
		// disagrees.
		if got != want {
			return fmt.Errorf("%s: %q differs from golden %q", path, got, want)
		}
	default:
		if got != want {
			return fmt.Errorf("%s: %v differs from golden %v", path, got, want)
		}
	}
	return nil
}
