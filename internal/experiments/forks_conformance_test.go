package experiments

import (
	"testing"
	"time"
)

// forksConformanceOptions is the workload-conformance scale: long enough
// (16 topology rounds, ~650 blocks at a 1s interval) that Perigee-Subset
// spends most of the run on a converged topology and stale events are
// plentiful, small enough for CI.
func forksConformanceOptions(seed uint64) Options {
	opt := conformanceOptions(seed)
	opt.AdversaryFraction = 0 // clean network
	opt.Rounds = 16
	opt.BlockInterval = time.Second
	return opt
}

// The paper's propagation advantage must convert into fork economics:
// Perigee-Subset's stale-block rate is below the static random baseline's
// at a one-sided 95% confidence bound over the conformance seeds. Every
// arm of a seed replays the identical arrival trace, so the comparison is
// paired — the workload itself contributes no variance.
func TestConformanceSubsetStaleRateBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite")
	}
	var diffs []float64
	for _, seed := range conformanceSeeds {
		res, err := Forks(forksConformanceOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		var subset, random *WorkloadSeries
		for i := range res.Workloads {
			switch res.Workloads[i].Label {
			case LabelSubset:
				subset = &res.Workloads[i]
			case LabelRandom:
				random = &res.Workloads[i]
			}
		}
		if subset == nil || random == nil {
			t.Fatalf("missing workload arms in %v", res.Workloads)
		}
		for _, rep := range res.Workloads {
			for _, r := range rep.Reports {
				if r.BlocksMined == 0 || r.CanonicalBlocks == 0 {
					t.Fatalf("%s: degenerate workload report %+v", rep.Label, r)
				}
				if r.CanonicalBlocks+r.StaleBlocks != r.BlocksMined {
					t.Fatalf("%s: accounting violated: %+v", rep.Label, r)
				}
			}
		}
		if random.MeanStaleRate == 0 {
			t.Fatalf("seed %d: random baseline produced no stale blocks — scale too easy to discriminate", seed)
		}
		diffs = append(diffs, random.MeanStaleRate-subset.MeanStaleRate)
		t.Logf("seed %d: subset stale %.4f, random stale %.4f", seed, subset.MeanStaleRate, random.MeanStaleRate)
	}
	if lcb := lowerConfBound(diffs); lcb <= 0 {
		t.Fatalf("subset stale-rate advantage not significant: per-seed diffs %v, 95%% lower bound %.5f", diffs, lcb)
	}
}
