package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// registry maps experiment IDs to their runners.
var registry = buildRegistry()

type registryEntry struct {
	run   func(Options) (*Result, error)
	brief string
}

func buildRegistry() map[string]registryEntry {
	reg := map[string]registryEntry{
		"figure1":  {Figure1, "path stretch on the unit square: random vs geometric"},
		"figure3a": {Figure3a, "delay to 90% hash power, uniform power, all algorithms"},
		"figure3b": {Figure3b, "delay to 90% hash power, exponential power"},
		"figure4a": {Figure4a, "validation-delay sweep 0.1x-10x"},
		"figure4b": {Figure4b, "mining pools: 10% of nodes hold 90% power"},
		"figure4c": {Figure4c, "fast relay tree embedded in the network"},
		"figure5":  {Figure5, "edge-latency histograms of converged graphs"},
		"theorem1": {Theorem1, "random-graph stretch grows with n"},
		"theorem2": {Theorem2, "geometric-graph stretch is constant in n"},

		// Extensions beyond the paper's published evaluation (§6 topics).
		"freeride":    {Freeride, "incentives: free-riding nodes get punished"},
		"churn":       {Churn, "membership churn: 5% of nodes replaced per round"},
		"bandwidth":   {Bandwidth, "upload bandwidth heterogeneity (serialized sends)"},
		"eclipse":     {Eclipse, "neighborhood capture by fast adversaries vs exploration"},
		"convergence": {Convergence, "per-round 90%/50% coverage delay trajectories (§5.2)"},
	}
	for _, ab := range Ablations() {
		ab := ab
		reg[ab.ID] = registryEntry{
			run:   func(opt Options) (*Result, error) { return RunAblation(opt, ab) },
			brief: ab.Title,
		}
	}
	return reg
}

// IDs lists the available experiment identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns a one-line description of an experiment ID.
func Describe(id string) (string, error) {
	entry, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return entry.brief, nil
}

// Run dispatches an experiment by ID.
func Run(id string, opt Options) (*Result, error) {
	entry, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return entry.run(opt)
}

// RenderRanks are the fractional node ranks at which tables are printed,
// mirroring the paper's error-bar positions (100th..900th node of 1000).
var RenderRanks = []float64{0.1, 0.3, 0.5, 0.7, 0.9}

// Render formats the result as a text report: one row per rank, one column
// per algorithm, mean±std, followed by notes and histograms.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	fmt.Fprintf(&b, "(nodes=%d trials=%d rounds=%d seed=%d)\n",
		r.Options.Nodes, r.Options.Trials, r.Options.Rounds, r.Options.Seed)
	if len(r.Series) > 0 {
		b.WriteString(r.renderTable())
	}
	if r.Histograms != nil {
		for _, label := range sortedHistogramLabels(r) {
			fmt.Fprintf(&b, "\n-- %s edge-latency histogram (ms) --\n", label)
			b.WriteString(r.Histograms[label].Render(40))
		}
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

func (r *Result) renderTable() string {
	var b strings.Builder
	// Header.
	fmt.Fprintf(&b, "%-8s", "rank")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %20s", s.Label)
	}
	b.WriteString("\n")
	n := 0
	if len(r.Series) > 0 {
		n = len(r.Series[0].Mean)
	}
	for _, frac := range RenderRanks {
		idx := int(frac * float64(n))
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8d", idx)
		for _, s := range r.Series {
			if idx >= len(s.Mean) {
				fmt.Fprintf(&b, " %20s", "-")
				continue
			}
			fmt.Fprintf(&b, " %20s", formatCell(s.Mean[idx], s.Std[idx]))
		}
		b.WriteString("\n")
	}
	// Median row.
	fmt.Fprintf(&b, "%-8s", "median")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %20s", formatCell(s.Median(), 0))
	}
	b.WriteString("\n")
	return b.String()
}

func formatCell(mean, std float64) string {
	if math.IsInf(mean, 1) {
		return "inf"
	}
	if std > 0 {
		return fmt.Sprintf("%.1f±%.1f", mean, std)
	}
	return fmt.Sprintf("%.1f", mean)
}

func sortedHistogramLabels(r *Result) []string {
	labels := make([]string, 0, len(r.Histograms))
	for label := range r.Histograms {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	return labels
}
