package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// jsonFloat encodes non-finite values (censored observations) as null so
// results marshal cleanly to JSON.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func jsonFloats(xs []float64) []jsonFloat {
	out := make([]jsonFloat, len(xs))
	for i, x := range xs {
		out[i] = jsonFloat(x)
	}
	return out
}

// MarshalJSON emits the series with censored (infinite) values as null,
// since JSON has no representation for Inf.
func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Label string      `json:"label"`
		Mean  []jsonFloat `json:"mean"`
		Std   []jsonFloat `json:"std"`
	}{Label: s.Label, Mean: jsonFloats(s.Mean), Std: jsonFloats(s.Std)})
}

// Scenario is one registered, runnable experiment: the paper's figures and
// theorems, the §6 extension studies, the ablation sweeps, and any
// user-registered scenario all share this shape. The registry is the single
// dispatch surface used by the perigee facade, cmd/perigee-sim, and the
// examples.
type Scenario struct {
	// ID identifies the scenario ("figure3a", "churn", ...).
	ID string
	// Brief is a one-line description shown by listings.
	Brief string
	// Run executes the scenario at the given scale.
	Run func(Options) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = builtinScenarios()
)

func builtinScenarios() map[string]Scenario {
	reg := make(map[string]Scenario)
	add := func(id, brief string, run func(Options) (*Result, error)) {
		reg[id] = Scenario{ID: id, Brief: brief, Run: run}
	}
	add("figure1", "path stretch on the unit square: random vs geometric", Figure1)
	add("figure3a", "delay to 90% hash power, uniform power, all algorithms", Figure3a)
	add("figure3b", "delay to 90% hash power, exponential power", Figure3b)
	add("figure4a", "validation-delay sweep 0.1x-10x", Figure4a)
	add("figure4b", "mining pools: 10% of nodes hold 90% power", Figure4b)
	add("figure4c", "fast relay tree embedded in the network", Figure4c)
	add("figure5", "edge-latency histograms of converged graphs", Figure5)
	add("theorem1", "random-graph stretch grows with n", Theorem1)
	add("theorem2", "geometric-graph stretch is constant in n", Theorem2)

	// Extensions beyond the paper's published evaluation (§6 topics).
	add("freeride", "incentives: free-riding nodes get punished", Freeride)
	add("churn", "membership churn: 5% of nodes replaced per round", Churn)
	add("bandwidth", "upload bandwidth heterogeneity (serialized sends)", Bandwidth)
	add("eclipse", "neighborhood capture by fast adversaries vs exploration", Eclipse)
	add("convergence", "per-round 90%/50% coverage delay trajectories (§5.2)", Convergence)
	add("scale", "large-n convergence: streaming latency, windows, landmarks, shards", Scale)
	add("forks", "continuous-time workload: fork rate, stale blocks, revenue skew", Forks)

	// Pluggable adversary strategies (internal/adversary), one scenario
	// each: honest-node λ for Subset/Vanilla/Random under attack vs clean.
	for _, s := range adversaryScenarios() {
		reg[s.ID] = s
	}

	for _, ab := range Ablations() {
		ab := ab
		add(ab.ID, ab.Title, func(opt Options) (*Result, error) { return RunAblation(opt, ab) })
	}
	return reg
}

// Register adds a scenario to the registry. It fails on an empty ID, a nil
// runner, or an ID collision (the built-in scenarios cannot be replaced).
func Register(s Scenario) error {
	if s.ID == "" {
		return fmt.Errorf("experiments: scenario ID must be non-empty")
	}
	if s.Run == nil {
		return fmt.Errorf("experiments: scenario %q has nil runner", s.ID)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, exists := registry[s.ID]; exists {
		return fmt.Errorf("experiments: scenario %q already registered", s.ID)
	}
	registry[s.ID] = s
	return nil
}

// Scenarios returns every registered scenario, sorted by ID.
func Scenarios() []Scenario {
	registryMu.RLock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	registryMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func lookup(id string) (Scenario, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[id]
	return s, ok
}

// IDs lists the available scenario identifiers, sorted.
func IDs() []string {
	scs := Scenarios()
	out := make([]string, len(scs))
	for i, s := range scs {
		out[i] = s.ID
	}
	return out
}

// Describe returns a one-line description of a scenario ID.
func Describe(id string) (string, error) {
	s, ok := lookup(id)
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return s.Brief, nil
}

// Run dispatches a scenario by ID.
func Run(id string, opt Options) (*Result, error) {
	s, ok := lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return s.Run(opt)
}

// RenderRanks are the fractional node ranks at which tables are printed,
// mirroring the paper's error-bar positions (100th..900th node of 1000).
var RenderRanks = []float64{0.1, 0.3, 0.5, 0.7, 0.9}

// Render formats the result as a text report: one row per rank, one column
// per algorithm, mean±std, followed by notes and histograms.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	fmt.Fprintf(&b, "(nodes=%d trials=%d rounds=%d seed=%d)\n",
		r.Options.Nodes, r.Options.Trials, r.Options.Rounds, r.Options.Seed)
	if len(r.Series) > 0 {
		b.WriteString(r.renderTable())
	}
	if r.Histograms != nil {
		for _, label := range sortedHistogramLabels(r) {
			fmt.Fprintf(&b, "\n-- %s edge-latency histogram (ms) --\n", label)
			b.WriteString(r.Histograms[label].Render(40))
		}
	}
	if len(r.Workloads) > 0 {
		fmt.Fprintf(&b, "\n%-20s %12s %12s %12s\n", "workload", "stale rate", "fork rate", "rev. skew")
		for _, w := range r.Workloads {
			fmt.Fprintf(&b, "%-20s %12.4f %12.4f %12.4f\n",
				w.Label, w.MeanStaleRate, w.MeanForkRate, w.MeanRevenueSkew)
		}
	}
	for _, s := range r.Regret {
		b.WriteString("\n")
		b.WriteString(s.Render())
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

func (r *Result) renderTable() string {
	var b strings.Builder
	// Header.
	fmt.Fprintf(&b, "%-8s", "rank")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %20s", s.Label)
	}
	b.WriteString("\n")
	n := 0
	if len(r.Series) > 0 {
		n = len(r.Series[0].Mean)
	}
	for _, frac := range RenderRanks {
		idx := int(frac * float64(n))
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8d", idx)
		for _, s := range r.Series {
			if idx >= len(s.Mean) {
				fmt.Fprintf(&b, " %20s", "-")
				continue
			}
			fmt.Fprintf(&b, " %20s", formatCell(s.Mean[idx], s.Std[idx]))
		}
		b.WriteString("\n")
	}
	// Median row.
	fmt.Fprintf(&b, "%-8s", "median")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %20s", formatCell(s.Median(), 0))
	}
	b.WriteString("\n")
	return b.String()
}

func formatCell(mean, std float64) string {
	if math.IsInf(mean, 1) {
		return "inf"
	}
	if std > 0 {
		return fmt.Sprintf("%.1f±%.1f", mean, std)
	}
	return fmt.Sprintf("%.1f", mean)
}

func sortedHistogramLabels(r *Result) []string {
	labels := make([]string, 0, len(r.Histograms))
	for label := range r.Histograms {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	return labels
}
