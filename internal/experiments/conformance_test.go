package experiments

import (
	"math"
	"sync"
	"testing"

	"github.com/perigee-net/perigee/internal/adversary"
	"github.com/perigee-net/perigee/internal/stats"
)

// The statistical conformance suite asserts the paper's qualitative
// claims hold in this codebase, seed-averaged with one-sided confidence
// bounds rather than single-run point comparisons:
//
//   - Perigee-Subset beats both Random and Vanilla on p90 λ (Fig. 3a/5);
//   - the Subset convergence trajectory is near-monotone (§5.2);
//   - every built-in adversary strategy degrades the Random baseline
//     strictly more than Perigee-Subset.
//
// The suite is CI-scale (a few hundred nodes, a handful of rounds, a few
// seeds), skipped under -short, and run as its own CI job. All inputs
// are fixed seeds, so a passing configuration is deterministic — the
// confidence bounds guard against asserting orderings that hold only by
// a hair on one seed.

// conformanceSeeds are the root seeds the claims are averaged over.
var conformanceSeeds = []uint64{2020, 2021, 2022, 2023, 2024}

// conformanceOptions is the suite's shared scale. The adversary fraction
// is above the scenario default: at CI scale the per-seed degradation
// signal must clear seed-to-seed variance, and a quarter of the
// population compromised gives every strategy a clearly measurable bite
// while staying far from majority control.
func conformanceOptions(seed uint64) Options {
	opt := ShortOptions()
	opt.Nodes = 200
	opt.Rounds = 8
	opt.RoundBlocks = 40
	opt.Seed = seed
	opt.AdversaryFraction = 0.25
	return opt
}

// tUpper95 holds one-sided 95% Student-t critical values by degrees of
// freedom (df 1..9).
var tUpper95 = []float64{math.NaN(), 6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833}

// lowerConfBound returns the one-sided 95% lower confidence bound on the
// mean of xs.
func lowerConfBound(xs []float64) float64 {
	var s stats.Summary
	for _, x := range xs {
		s.Add(x)
	}
	n := len(xs)
	if n < 2 {
		return s.Mean()
	}
	df := n - 1
	if df >= len(tUpper95) {
		df = len(tUpper95) - 1
	}
	return s.Mean() - tUpper95[df]*s.Std()/math.Sqrt(float64(n))
}

// conformanceData is everything the claims share, computed once: per-seed
// clean medians/p90s and per-(strategy, seed) attacked medians for the
// Subset and Random arms.
type conformanceData struct {
	// p90 λ of the three clean arms, per seed.
	subsetP90, vanillaP90, randomP90 []float64
	// median honest λ of the clean Subset/Random arms, per seed.
	subsetClean, randomClean []float64
	// median honest λ under attack: strategy name -> per-seed values.
	subsetAttacked, randomAttacked map[string][]float64
	// strategy names in registry order.
	strategies []string
}

var (
	confOnce sync.Once
	confData *conformanceData
	confErr  error
)

// conformanceStrategies mirrors the registered adversary-* scenarios at
// the conformance scale.
func conformanceStrategies(opt Options) map[string]adversary.Strategy {
	return map[string]adversary.Strategy{
		"latency-liar": adversary.NewLatencyLiar(adversary.DefaultLieFactor, adversary.DefaultWithholdDelay),
		"withholding":  adversary.NewWithholdingRelay(adversary.DefaultWithholdDelay, adversary.DefaultNeverFraction),
		"sybil-flood":  adversary.NewSybilFlood(adversary.DefaultSybilDials),
		"eclipse-bias": adversary.NewEclipseBias(midRound(opt)),
		"partition":    adversary.NewRegionalPartition(adversary.DefaultPartitionGroups, midRound(opt), adversary.DefaultPartitionFactor),
	}
}

func loadConformance(t *testing.T) *conformanceData {
	t.Helper()
	confOnce.Do(func() { confData, confErr = computeConformance() })
	if confErr != nil {
		t.Fatal(confErr)
	}
	return confData
}

func computeConformance() (*conformanceData, error) {
	d := &conformanceData{
		subsetAttacked: make(map[string][]float64),
		randomAttacked: make(map[string][]float64),
		strategies:     []string{"latency-liar", "withholding", "sybil-flood", "eclipse-bias", "partition"},
	}
	for _, seed := range conformanceSeeds {
		opt := conformanceOptions(seed)
		strategies := conformanceStrategies(opt)
		e, err := newEnv(opt, 0)
		if err != nil {
			return nil, err
		}
		arms := adversaryArms()
		var subsetCleanSeries, vanillaCleanSeries, randomCleanSeries []float64
		for _, arm := range arms {
			if arm.attacked {
				continue
			}
			series, err := arm.run(e, nil)
			if err != nil {
				return nil, err
			}
			switch arm.label {
			case LabelSubset + cleanSuffix:
				subsetCleanSeries = series
			case LabelVanilla + cleanSuffix:
				vanillaCleanSeries = series
			case LabelRandom + cleanSuffix:
				randomCleanSeries = series
			}
		}
		d.subsetP90 = append(d.subsetP90, stats.Percentile(subsetCleanSeries, 0.9))
		d.vanillaP90 = append(d.vanillaP90, stats.Percentile(vanillaCleanSeries, 0.9))
		d.randomP90 = append(d.randomP90, stats.Percentile(randomCleanSeries, 0.9))
		d.subsetClean = append(d.subsetClean, stats.Percentile(subsetCleanSeries, 0.5))
		d.randomClean = append(d.randomClean, stats.Percentile(randomCleanSeries, 0.5))

		for _, name := range d.strategies {
			strat := strategies[name]
			for _, arm := range arms {
				if !arm.attacked || arm.label == LabelVanilla {
					continue
				}
				series, err := arm.run(e, strat)
				if err != nil {
					return nil, err
				}
				med := stats.Percentile(series, 0.5)
				switch arm.label {
				case LabelSubset:
					d.subsetAttacked[name] = append(d.subsetAttacked[name], med)
				case LabelRandom:
					d.randomAttacked[name] = append(d.randomAttacked[name], med)
				}
			}
		}
	}
	return d, nil
}

// TestConformanceSubsetBeatsBaselinesP90 asserts Fig. 3a/5's headline
// orderings that manifest at CI scale, each with a one-sided 95%
// confidence bound over seeds: both learned rules (Subset, Vanilla) beat
// the random baseline on p90 λ, and Subset never trails Vanilla by a
// material margin (the strict Subset < Vanilla separation of Fig. 3a
// needs the paper's 1000-node scale; the nightly full-scale run covers
// it).
func TestConformanceSubsetBeatsBaselinesP90(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite")
	}
	d := loadConformance(t)
	var subsetVsRandom, vanillaVsRandom, vanillaVsSubset []float64
	for i := range conformanceSeeds {
		subsetVsRandom = append(subsetVsRandom, d.randomP90[i]-d.subsetP90[i])
		vanillaVsRandom = append(vanillaVsRandom, d.randomP90[i]-d.vanillaP90[i])
		vanillaVsSubset = append(vanillaVsSubset, d.vanillaP90[i]-d.subsetP90[i])
	}
	if lb := lowerConfBound(subsetVsRandom); lb <= 0 {
		t.Errorf("Subset does not beat Random on p90 λ: gaps %v ms (95%% lower bound %.1f)", subsetVsRandom, lb)
	}
	if lb := lowerConfBound(vanillaVsRandom); lb <= 0 {
		t.Errorf("Vanilla does not beat Random on p90 λ: gaps %v ms (95%% lower bound %.1f)", vanillaVsRandom, lb)
	}
	// Guard, not a separation claim: Subset must not be materially worse
	// than Vanilla (>10% of the random baseline's p90).
	var meanRandom stats.Summary
	for _, v := range d.randomP90 {
		meanRandom.Add(v)
	}
	var meanGap stats.Summary
	for _, v := range vanillaVsSubset {
		meanGap.Add(v)
	}
	if meanGap.Mean() < -0.1*meanRandom.Mean() {
		t.Errorf("Subset trails Vanilla materially on p90 λ: mean gap %.1f ms", meanGap.Mean())
	}
	t.Logf("p90 gaps (ms): subset vs random %v, vanilla vs random %v", subsetVsRandom, vanillaVsRandom)
}

// TestConformanceConvergenceNearMonotone asserts §5.2's convergence
// claim, seed-averaged: the per-round p90-coverage trajectory improves
// substantially and is near-monotone (strict increases on at most a
// third of the steps).
func TestConformanceConvergenceNearMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite")
	}
	var improvements []float64
	worstViolations := 0
	rounds := 0
	for _, seed := range conformanceSeeds {
		opt := conformanceOptions(seed)
		rounds = opt.Rounds
		res, err := Convergence(opt)
		if err != nil {
			t.Fatal(err)
		}
		p90, err := res.SeriesByLabel("p90-coverage")
		if err != nil {
			t.Fatal(err)
		}
		first, last := p90.Mean[0], p90.Mean[len(p90.Mean)-1]
		improvements = append(improvements, 100*(1-last/first))
		if v := monotoneViolations(p90.Mean); v > worstViolations {
			worstViolations = v
		}
	}
	if lb := lowerConfBound(improvements); lb <= 5 {
		t.Errorf("convergence improvement too small: %v%% (95%% lower bound %.1f%%)", improvements, lb)
	}
	if worstViolations > rounds/3 {
		t.Errorf("trajectory not near-monotone: %d strict increases in %d rounds", worstViolations, rounds)
	}
	t.Logf("p90 improvement per seed: %v%%, worst monotone violations: %d", improvements, worstViolations)
}

// TestConformanceAdversariesHurtRandomMore is the robustness claim: for
// every built-in strategy, the attack degrades the Random baseline's
// median honest λ strictly more than Perigee-Subset's (one-sided 95%
// confidence over seeds), and Subset stays the better topology under
// attack.
func TestConformanceAdversariesHurtRandomMore(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite")
	}
	d := loadConformance(t)
	for _, name := range d.strategies {
		name := name
		t.Run(name, func(t *testing.T) {
			var gaps, absolute []float64
			for i := range conformanceSeeds {
				deltaSubset := d.subsetAttacked[name][i] - d.subsetClean[i]
				deltaRandom := d.randomAttacked[name][i] - d.randomClean[i]
				gaps = append(gaps, deltaRandom-deltaSubset)
				absolute = append(absolute, d.randomAttacked[name][i]-d.subsetAttacked[name][i])
			}
			if lb := lowerConfBound(gaps); lb <= 0 {
				t.Errorf("%s does not hurt Random more than Subset: Δrandom-Δsubset %v ms (95%% lower bound %.1f)",
					name, gaps, lb)
			}
			if lb := lowerConfBound(absolute); lb <= 0 {
				t.Errorf("%s: Subset loses its advantage under attack: random-subset %v ms (95%% lower bound %.1f)",
					name, absolute, lb)
			}
			t.Logf("%s: Δrandom-Δsubset per seed %v ms", name, gaps)
		})
	}
}
