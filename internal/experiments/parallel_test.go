package experiments

import (
	"reflect"
	"testing"
)

// TestExperimentsDeterministicAcrossWorkers is the harness-level
// determinism acceptance check: a fixed seed produces byte-identical
// Results (series, notes, histograms) under Workers=1 and Workers=8.
// The covered IDs exercise all three harness shapes: the shared runFigure
// fan-out (churn), a fully custom trial loop with receive-delay metrics
// (freeride), and the trial-indexed stretch loop (figure1).
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	opt := tinyOptions()
	opt.Nodes = 80
	opt.Rounds = 4
	opt.RoundBlocks = 20
	opt.Trials = 2
	ids := []string{"figure1", "freeride"}
	if !testing.Short() {
		ids = append(ids, "churn")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			o := opt
			if id == "figure1" {
				o.Nodes = 300
			}
			o.Workers = 1
			seq, err := Run(id, o)
			if err != nil {
				t.Fatal(err)
			}
			o.Workers = 8
			par, err := Run(id, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Series, par.Series) {
				t.Errorf("%s: series diverge between Workers=1 and Workers=8", id)
			}
			if !reflect.DeepEqual(seq.Notes, par.Notes) {
				t.Errorf("%s: notes diverge between Workers=1 and Workers=8:\n%v\n%v", id, seq.Notes, par.Notes)
			}
			if !reflect.DeepEqual(seq.Histograms, par.Histograms) {
				t.Errorf("%s: histograms diverge between Workers=1 and Workers=8", id)
			}
		})
	}
}
