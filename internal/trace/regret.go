package trace

import (
	"fmt"
	"sort"
	"strings"
)

// RoundRegret aggregates one round's decisions and counterfactual
// evaluations. Regret statistics cover the finite (non-censored)
// alternatives only; MeanRegretMs is signed — negative means the engine's
// drops were justified on average, positive means kept-worse-than-dropped.
type RoundRegret struct {
	Round        int     `json:"round"`
	Decisions    int     `json:"decisions"`
	Drops        int     `json:"drops"`
	Alternatives int     `json:"alternatives"`
	Censored     int     `json:"censored"`
	Regretful    int     `json:"regretful"`
	MeanRegretMs float64 `json:"mean_regret_ms"`
	MaxRegretMs  float64 `json:"max_regret_ms"`
}

// finite is the number of alternatives the regret moments cover.
func (r RoundRegret) finite() int { return r.Alternatives - r.Censored }

// merge folds o into r (weighted mean over finite alternatives; exact at
// any merge order up to float rounding).
func (r *RoundRegret) merge(o RoundRegret) {
	rf, of := r.finite(), o.finite()
	switch {
	case rf+of == 0:
		// nothing to average
	case rf == 0:
		r.MeanRegretMs, r.MaxRegretMs = o.MeanRegretMs, o.MaxRegretMs
	case of > 0:
		r.MeanRegretMs = (r.MeanRegretMs*float64(rf) + o.MeanRegretMs*float64(of)) / float64(rf+of)
		if o.MaxRegretMs > r.MaxRegretMs {
			r.MaxRegretMs = o.MaxRegretMs
		}
	}
	r.Decisions += o.Decisions
	r.Drops += o.Drops
	r.Alternatives += o.Alternatives
	r.Censored += o.Censored
	r.Regretful += o.Regretful
}

// Summary is the per-selector regret report: counterfactual regret sliced
// by round, plus the decision volume it was computed over.
type Summary struct {
	Selector string        `json:"selector"`
	Trials   int           `json:"trials"`
	Rounds   []RoundRegret `json:"rounds"`
}

// Total aggregates every round of the summary.
func (s *Summary) Total() RoundRegret {
	var t RoundRegret
	for _, r := range s.Rounds {
		t.merge(r)
	}
	return t
}

// Summarize reduces one run's records to a per-round regret summary.
func Summarize(selector string, recs []Record) *Summary {
	byRound := map[int]*RoundRegret{}
	get := func(round int) *RoundRegret {
		r := byRound[round]
		if r == nil {
			r = &RoundRegret{Round: round}
			byRound[round] = r
		}
		return r
	}
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case KindDecision:
			r := get(rec.Round)
			r.Decisions++
			r.Drops += len(rec.Dropped)
		case KindCounterfactual:
			r := get(rec.Round)
			r.Alternatives++
			if rec.Censored || rec.RegretMs.Censored() {
				r.Censored++
				continue
			}
			reg := float64(rec.RegretMs)
			if reg > 0 {
				r.Regretful++
			}
			f := r.finite()
			r.MeanRegretMs += (reg - r.MeanRegretMs) / float64(f)
			if f == 1 || reg > r.MaxRegretMs {
				r.MaxRegretMs = reg
			}
		}
	}
	s := &Summary{Selector: selector, Trials: 1}
	rounds := make([]int, 0, len(byRound))
	for round := range byRound {
		rounds = append(rounds, round)
	}
	sort.Ints(rounds)
	for _, round := range rounds {
		s.Rounds = append(s.Rounds, *byRound[round])
	}
	return s
}

// Merge combines summaries of the same selector (typically one per trial)
// into one, aligning rounds by index. Nil inputs are skipped; the result
// is nil when nothing remains.
func Merge(sums ...*Summary) *Summary {
	var out *Summary
	byRound := map[int]*RoundRegret{}
	for _, s := range sums {
		if s == nil {
			continue
		}
		if out == nil {
			out = &Summary{Selector: s.Selector}
		}
		out.Trials += s.Trials
		for _, r := range s.Rounds {
			dst := byRound[r.Round]
			if dst == nil {
				dst = &RoundRegret{Round: r.Round}
				byRound[r.Round] = dst
			}
			dst.merge(r)
		}
	}
	if out == nil {
		return nil
	}
	rounds := make([]int, 0, len(byRound))
	for round := range byRound {
		rounds = append(rounds, round)
	}
	sort.Ints(rounds)
	for _, round := range rounds {
		out.Rounds = append(out.Rounds, *byRound[round])
	}
	return out
}

// Render formats the summary as the fixed-width table the CLI and the
// scenario renderer print (golden-file tested).
func (s *Summary) Render() string {
	var b strings.Builder
	trials := "trial"
	if s.Trials != 1 {
		trials = "trials"
	}
	fmt.Fprintf(&b, "-- decision trace: %s (%d %s) --\n", s.Selector, s.Trials, trials)
	fmt.Fprintf(&b, "%-6s %10s %8s %6s %9s %10s %13s %13s\n",
		"round", "decisions", "drops", "alts", "censored", "regretful", "mean regret", "max regret")
	for _, r := range s.Rounds {
		writeRegretRow(&b, fmt.Sprintf("%d", r.Round), r)
	}
	writeRegretRow(&b, "total", s.Total())
	return b.String()
}

func writeRegretRow(b *strings.Builder, label string, r RoundRegret) {
	mean, max := "-", "-"
	if r.finite() > 0 {
		mean = fmt.Sprintf("%.2fms", r.MeanRegretMs)
		max = fmt.Sprintf("%.2fms", r.MaxRegretMs)
	}
	fmt.Fprintf(b, "%-6s %10d %8d %6d %9d %10d %13s %13s\n",
		label, r.Decisions, r.Drops, r.Alternatives, r.Censored, r.Regretful, mean, max)
}
