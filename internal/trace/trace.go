// Package trace turns the engine's decision-tracing hooks
// (core.TraceSink) into durable, analyzable records: a Collector that
// buffers every keep/drop/dial decision and counterfactual evaluation as
// JSON-serializable Records, an NDJSON codec for streaming them, and a
// regret summarizer (Summarize/Merge/Render) that slices per-decision
// counterfactual regret by round and selector.
//
// Records use milliseconds for every duration and encode censored
// observations (stats.InfDuration in the engine) as JSON null, so streams
// are consumable without Go-specific sentinels. The engine emits records
// in a deterministic order at any Workers/Shards count, and the Collector
// preserves it — two runs of the same configuration produce byte-identical
// NDJSON streams.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/stats"
)

// Record kinds.
const (
	KindDecision       = "decision"
	KindCounterfactual = "counterfactual"
)

// ParseLevel parses the CLI/HTTP spelling of a trace level ("off",
// "decisions", "inputs").
func ParseLevel(s string) (core.TraceLevel, error) {
	switch s {
	case "off", "":
		return core.TraceOff, nil
	case "decisions":
		return core.TraceDecisions, nil
	case "inputs":
		return core.TraceInputs, nil
	default:
		return core.TraceOff, fmt.Errorf("trace: unknown trace level %q (want off, decisions, or inputs)", s)
	}
}

// Ms is a duration in milliseconds that marshals censored values
// (+Inf/NaN) as JSON null and unmarshals null back to +Inf.
type Ms float64

// Censored reports whether m encodes a censored observation.
func (m Ms) Censored() bool { return math.IsInf(float64(m), 0) || math.IsNaN(float64(m)) }

// MarshalJSON implements json.Marshaler.
func (m Ms) MarshalJSON() ([]byte, error) {
	if m.Censored() {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, float64(m), 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Ms) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*m = Ms(math.Inf(1))
		return nil
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*m = Ms(f)
	return nil
}

// durMs converts an engine duration to milliseconds, mapping the censored
// sentinel to +Inf (and thus JSON null).
func durMs(d time.Duration) Ms {
	if d == stats.InfDuration {
		return Ms(math.Inf(1))
	}
	return Ms(float64(d) / float64(time.Millisecond))
}

// Record is one trace event in its serializable form. Kind selects which
// field groups are populated.
type Record struct {
	Kind     string `json:"kind"`
	Selector string `json:"selector,omitempty"`
	Trial    int    `json:"trial"`
	Round    int    `json:"round"`
	Node     int    `json:"node"`

	// Decision fields (Kind == KindDecision). Kept and Dropped hold
	// neighbor node IDs (not indices); Neighbors, ScoresMs,
	// CensoredBlocks, and OffsetsMs appear only at the inputs trace level.
	Kept           []int  `json:"kept,omitempty"`
	Dropped        []int  `json:"dropped,omitempty"`
	Dial           int    `json:"dial,omitempty"`
	Neighbors      []int  `json:"neighbors,omitempty"`
	ScoresMs       []Ms   `json:"scores_ms,omitempty"`
	CensoredBlocks []int  `json:"censored_blocks,omitempty"`
	OffsetsMs      [][]Ms `json:"offsets_ms,omitempty"`

	// Counterfactual fields (Kind == KindCounterfactual): how the Rank-th
	// best rejected alternative (Peer) of the decision at Round would have
	// scored over the following round's blocks, versus the worst score the
	// node's actual neighbors produced. RegretMs > 0 marks a regrettable
	// drop; Censored marks an incomparable pair (either side null).
	Peer             int  `json:"peer,omitempty"`
	Rank             int  `json:"rank,omitempty"`
	DecisionScoreMs  Ms   `json:"decision_score_ms,omitempty"`
	CounterfactualMs Ms   `json:"counterfactual_ms,omitempty"`
	WorstKeptMs      Ms   `json:"worst_kept_ms,omitempty"`
	RegretMs         Ms   `json:"regret_ms,omitempty"`
	Censored         bool `json:"censored,omitempty"`
}

// Collector implements core.TraceSink: it converts the engine's
// scratch-aliasing trace structs into standalone Records, buffers them in
// emission order, and optionally streams each one to OnRecord as it
// arrives. A Collector serves one engine run; it is not safe for
// concurrent use (the engine's sink calls are sequential by contract).
type Collector struct {
	// Selector labels every record (e.g. "Perigee-Subset").
	Selector string
	// Trial labels every record with the run's trial index.
	Trial int
	// OnRecord, when non-nil, is invoked synchronously with each record
	// after it is buffered — the streaming hook the experiment service
	// uses to forward records while a job runs.
	OnRecord func(Record)

	recs []Record
}

// Records returns the buffered records in emission order. The slice is
// owned by the Collector.
func (c *Collector) Records() []Record { return c.recs }

// TraceDecision implements core.TraceSink.
func (c *Collector) TraceDecision(dt core.DecisionTrace) {
	rec := Record{
		Kind:     KindDecision,
		Selector: c.Selector,
		Trial:    c.Trial,
		Round:    dt.Round,
		Node:     dt.Node,
		Kept:     neighborIDs(dt.Neighbors, dt.Keep),
		Dropped:  neighborIDs(dt.Neighbors, dt.Drop),
		Dial:     dt.Dial,
	}
	if dt.Scores != nil {
		rec.Neighbors = append([]int(nil), dt.Neighbors...)
		rec.ScoresMs = make([]Ms, len(dt.Scores))
		for i, s := range dt.Scores {
			rec.ScoresMs[i] = durMs(s)
		}
		rec.CensoredBlocks = append([]int(nil), dt.Censored...)
		rec.OffsetsMs = make([][]Ms, len(dt.Offsets))
		for b, row := range dt.Offsets {
			ms := make([]Ms, len(row))
			for i, d := range row {
				ms[i] = durMs(d)
			}
			rec.OffsetsMs[b] = ms
		}
	}
	c.add(rec)
}

// TraceCounterfactual implements core.TraceSink.
func (c *Collector) TraceCounterfactual(ct core.CounterfactualTrace) {
	rec := Record{
		Kind:             KindCounterfactual,
		Selector:         c.Selector,
		Trial:            c.Trial,
		Round:            ct.Round,
		Node:             ct.Node,
		Peer:             ct.Peer,
		Rank:             ct.Rank,
		DecisionScoreMs:  durMs(ct.DecisionScore),
		CounterfactualMs: durMs(ct.Score),
		WorstKeptMs:      durMs(ct.WorstKept),
		Censored:         ct.Censored,
	}
	if ct.Censored {
		rec.RegretMs = Ms(math.Inf(1))
	} else {
		rec.RegretMs = durMs(ct.Regret)
	}
	c.add(rec)
}

func (c *Collector) add(rec Record) {
	c.recs = append(c.recs, rec)
	if c.OnRecord != nil {
		c.OnRecord(rec)
	}
}

// neighborIDs maps decision indices to neighbor node IDs.
func neighborIDs(neighbors, idx []int) []int {
	if len(idx) == 0 {
		return nil
	}
	ids := make([]int, len(idx))
	for k, i := range idx {
		ids[k] = neighbors[i]
	}
	return ids
}

// WriteNDJSON writes one compact JSON document per record, newline
// separated. Given equal records it produces byte-identical output — the
// determinism tests compare these streams directly.
func WriteNDJSON(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a stream written by WriteNDJSON.
func ReadNDJSON(r io.Reader) ([]Record, error) {
	var recs []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return recs, nil
		} else if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
