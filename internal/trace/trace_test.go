package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// tracedEngine builds a small traced engine; every knob that must not
// change the trace stream (workers, shards) is a parameter.
func tracedEngine(t *testing.T, method core.Method, workers, shards int, col *Collector) *core.Engine {
	t.Helper()
	const n = 48
	root := rng.New(11)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		t.Fatal(err)
	}
	lat, err := latency.NewGeographic(u, root.Derive("latency"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, 6, 16, root.Derive("topology"))
	if err != nil {
		t.Fatal(err)
	}
	forward := make([]time.Duration, n)
	for i := range forward {
		forward[i] = 30 * time.Millisecond
	}
	power := make([]float64, n)
	for i := range power {
		power[i] = 1.0 / float64(n)
	}
	params := core.DefaultParams(method)
	params.OutDegree = 6
	if method != core.UCB {
		params.RoundBlocks = 20
	}
	engine, err := core.NewEngine(core.Config{
		Method: method, Params: params, Table: tbl,
		Latency: lat, Forward: forward, Power: power,
		Rand: root.Derive("engine"), Workers: workers, Shards: shards,
		Trace: core.TraceConfig{Level: core.TraceInputs, CounterfactualK: 3, Sink: col},
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// traceStream runs `rounds` traced rounds and returns the NDJSON stream.
func traceStream(t *testing.T, method core.Method, workers, shards, rounds int) []byte {
	t.Helper()
	col := &Collector{Selector: method.String()}
	engine := tracedEngine(t, method, workers, shards, col)
	for i := 0; i < rounds; i++ {
		if _, err := engine.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, col.Records()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministic asserts the trace stream is byte-identical at any
// Workers and Shards count, for every built-in selector. The UCB engine
// runs more rounds because its rounds carry a single block.
func TestTraceDeterministic(t *testing.T) {
	for _, method := range []core.Method{core.Subset, core.Vanilla, core.UCB} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			rounds := 4
			if method == core.UCB {
				rounds = 12
			}
			ref := traceStream(t, method, 1, 0, rounds)
			if len(ref) == 0 {
				t.Fatal("empty trace stream")
			}
			if got := traceStream(t, method, 8, 0, rounds); !bytes.Equal(ref, got) {
				t.Errorf("trace stream differs between Workers=1 and Workers=8")
			}
			if got := traceStream(t, method, 0, 4, rounds); !bytes.Equal(ref, got) {
				t.Errorf("trace stream differs between Shards=1 and Shards=4")
			}
		})
	}
}

// TestTraceConsistency cross-checks the stream's internal structure: every
// counterfactual references a preceding decision's dropped peer at a valid
// rank, regret arithmetic matches its operands, and counterfactuals for
// round R arrive before decisions of round R+1.
func TestTraceConsistency(t *testing.T) {
	recs, err := ReadNDJSON(bytes.NewReader(traceStream(t, core.Subset, 0, 0, 4)))
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ round, node int }
	dropped := map[key]map[int]bool{}
	decisions, cfs := 0, 0
	maxDecisionRound := 0
	for _, rec := range recs {
		switch rec.Kind {
		case KindDecision:
			decisions++
			if rec.Round <= cfRoundFloor(maxDecisionRound) {
				t.Fatalf("decision for round %d after counterfactuals of round %d", rec.Round, maxDecisionRound)
			}
			set := map[int]bool{}
			for _, u := range rec.Dropped {
				set[u] = true
			}
			dropped[key{rec.Round, rec.Node}] = set
			if len(rec.ScoresMs) != len(rec.Neighbors) || len(rec.CensoredBlocks) != len(rec.Neighbors) {
				t.Fatalf("inputs-level decision record has mismatched score/censored lengths: %+v", rec)
			}
			if len(rec.Kept)+len(rec.Dropped) != len(rec.Neighbors) {
				t.Fatalf("kept+dropped != neighbors in %+v", rec)
			}
		case KindCounterfactual:
			cfs++
			if rec.Round > maxDecisionRound {
				maxDecisionRound = rec.Round
			}
			set := dropped[key{rec.Round, rec.Node}]
			if set == nil || !set[rec.Peer] {
				t.Fatalf("counterfactual for (round %d, node %d, peer %d) has no matching dropped decision", rec.Round, rec.Node, rec.Peer)
			}
			if rec.Rank < 0 || rec.Rank >= 3 {
				t.Fatalf("counterfactual rank %d outside [0,3)", rec.Rank)
			}
			if !rec.Censored {
				want := float64(rec.WorstKeptMs) - float64(rec.CounterfactualMs)
				if math.Abs(float64(rec.RegretMs)-want) > 1e-9 {
					t.Fatalf("regret %v != worst-kept %v - counterfactual %v", rec.RegretMs, rec.WorstKeptMs, rec.CounterfactualMs)
				}
			}
		default:
			t.Fatalf("unknown record kind %q", rec.Kind)
		}
	}
	if decisions == 0 || cfs == 0 {
		t.Fatalf("expected both decisions (%d) and counterfactuals (%d) in the stream", decisions, cfs)
	}
}

// cfRoundFloor: once counterfactuals of round R have been seen, only
// decisions of rounds > R may follow (the engine emits cf(R) before
// decisions(R+1)).
func cfRoundFloor(maxCfRound int) int { return maxCfRound }

// TestNDJSONRoundTrip checks the codec preserves records, including
// censored (null) values.
func TestNDJSONRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindDecision, Selector: "Perigee-Subset", Round: 1, Node: 3, Kept: []int{1, 2}, Dropped: []int{9}, Dial: 1,
			Neighbors: []int{1, 2, 9}, ScoresMs: []Ms{1.5, 2.25, Ms(math.Inf(1))}, CensoredBlocks: []int{0, 0, 20}},
		{Kind: KindCounterfactual, Round: 1, Node: 3, Peer: 9, Rank: 0,
			DecisionScoreMs: 17, CounterfactualMs: Ms(math.Inf(1)), WorstKeptMs: 4, RegretMs: Ms(math.Inf(1)), Censored: true},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"scores_ms":[1.5,2.25,null]`)) {
		t.Fatalf("censored score not encoded as null:\n%s", buf.String())
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip returned %d records, want %d", len(got), len(recs))
	}
	if !got[0].ScoresMs[2].Censored() {
		t.Fatal("null score did not decode to censored")
	}
	if got[1].Peer != 9 || !got[1].Censored {
		t.Fatalf("counterfactual did not round-trip: %+v", got[1])
	}
}

// TestCollectorCopiesInputs guards against the Collector retaining engine
// scratch: mutating the trace structs after the sink call must not change
// the buffered records.
func TestCollectorCopiesInputs(t *testing.T) {
	col := &Collector{Selector: "x"}
	neighbors := []int{4, 7}
	keep := []int{0}
	drop := []int{1}
	scores := []time.Duration{time.Millisecond, stats.InfDuration}
	censored := []int{0, 3}
	offsets := [][]time.Duration{{time.Millisecond, stats.InfDuration}}
	col.TraceDecision(core.DecisionTrace{
		Round: 1, Node: 0, Neighbors: neighbors, Keep: keep, Drop: drop,
		Scores: scores, Censored: censored, Offsets: offsets,
	})
	neighbors[0], keep[0], drop[0] = 99, 99, 99
	scores[0], censored[0], offsets[0][0] = 99, 99, 99
	rec := col.Records()[0]
	if rec.Kept[0] != 4 || rec.Dropped[0] != 7 || rec.Neighbors[0] != 4 {
		t.Fatalf("record aliases engine scratch: %+v", rec)
	}
	if rec.ScoresMs[0] != 1 || rec.CensoredBlocks[0] != 0 || rec.OffsetsMs[0][0] != 1 {
		t.Fatalf("record inputs alias engine scratch: %+v", rec)
	}
}

// TestParseLevel covers the CLI/HTTP level spellings.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]core.TraceLevel{
		"": core.TraceOff, "off": core.TraceOff,
		"decisions": core.TraceDecisions, "inputs": core.TraceInputs,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}
