package trace

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the regret renderer golden file")

// summaryFixture builds a deterministic two-trial summary covering the
// renderer's branches: regretful and justified drops, censored
// alternatives, and a fully censored round.
func summaryFixture() *Summary {
	trial := func(trial int) []Record {
		shift := float64(trial) * 0.5
		return []Record{
			{Kind: KindDecision, Trial: trial, Round: 1, Node: 0, Dropped: []int{5, 6}},
			{Kind: KindDecision, Trial: trial, Round: 1, Node: 1, Dropped: []int{7}},
			{Kind: KindDecision, Trial: trial, Round: 1, Node: 2},
			{Kind: KindCounterfactual, Trial: trial, Round: 1, Node: 0, Peer: 5, Rank: 0, RegretMs: Ms(-12.5 + shift), CounterfactualMs: Ms(20), WorstKeptMs: Ms(7.5 + shift)},
			{Kind: KindCounterfactual, Trial: trial, Round: 1, Node: 0, Peer: 6, Rank: 1, RegretMs: Ms(3.25 + shift), CounterfactualMs: Ms(4), WorstKeptMs: Ms(7.25 + shift)},
			{Kind: KindCounterfactual, Trial: trial, Round: 1, Node: 1, Peer: 7, Rank: 0, RegretMs: Ms(math.Inf(1)), Censored: true},
			{Kind: KindDecision, Trial: trial, Round: 2, Node: 0, Dropped: []int{8}},
			{Kind: KindCounterfactual, Trial: trial, Round: 2, Node: 0, Peer: 8, Rank: 0, RegretMs: Ms(math.Inf(1)), Censored: true},
		}
	}
	return Merge(Summarize("Perigee-Subset", trial(0)), Summarize("Perigee-Subset", trial(1)))
}

// TestSummarize checks the aggregation arithmetic on the fixture.
func TestSummarize(t *testing.T) {
	s := summaryFixture()
	if s.Trials != 2 || len(s.Rounds) != 2 {
		t.Fatalf("got %d trials, %d rounds; want 2, 2", s.Trials, len(s.Rounds))
	}
	r1 := s.Rounds[0]
	if r1.Round != 1 || r1.Decisions != 6 || r1.Drops != 6 || r1.Alternatives != 6 || r1.Censored != 2 {
		t.Fatalf("round 1 counts wrong: %+v", r1)
	}
	if r1.Regretful != 2 {
		t.Fatalf("round 1 regretful = %d, want 2", r1.Regretful)
	}
	// Finite regrets: trial 0 {-12.5, 3.25}, trial 1 {-12, 3.75} → mean -4.375.
	if math.Abs(r1.MeanRegretMs - -4.375) > 1e-9 {
		t.Fatalf("round 1 mean regret = %v, want -4.375", r1.MeanRegretMs)
	}
	if math.Abs(r1.MaxRegretMs-3.75) > 1e-9 {
		t.Fatalf("round 1 max regret = %v, want 3.75", r1.MaxRegretMs)
	}
	r2 := s.Rounds[1]
	if r2.finite() != 0 || r2.Censored != 2 || r2.Decisions != 2 {
		t.Fatalf("round 2 should be fully censored: %+v", r2)
	}
	total := s.Total()
	if total.Alternatives != 8 || total.Censored != 4 || total.Regretful != 2 {
		t.Fatalf("total wrong: %+v", total)
	}
}

// TestRegretRenderGolden locks the counterfactual regret renderer's output
// byte for byte; regenerate with `go test ./internal/trace -run Golden -update`.
func TestRegretRenderGolden(t *testing.T) {
	got := summaryFixture().Render()
	path := filepath.Join("testdata", "regret.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("regret renderer drifted from golden file.\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestMergeNil covers the degenerate merge inputs.
func TestMergeNil(t *testing.T) {
	if Merge(nil, nil) != nil {
		t.Fatal("Merge of nils should be nil")
	}
	s := Summarize("x", []Record{{Kind: KindDecision, Round: 1}})
	m := Merge(nil, s)
	if m == nil || m.Trials != 1 || m.Rounds[0].Decisions != 1 {
		t.Fatalf("Merge(nil, s) = %+v", m)
	}
}
