// Package stats provides the statistical primitives used throughout the
// Perigee simulator: percentiles (including right-censored observations),
// streaming summaries, histograms, CDFs, and cross-trial aggregation with
// error bars.
//
// All float-based functions treat math.Inf(1) as a right-censored
// observation ("the block never arrived"): censored points sort after every
// finite point, so a percentile that lands among them is itself +Inf.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"
)

// InfDuration is the sentinel used for censored duration observations. It
// sorts after every representable duration.
const InfDuration = time.Duration(math.MaxInt64)

// Percentile returns the p-quantile (p in [0, 1]) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty input
// and panics if p is outside [0, 1], which always indicates a programming
// error at the call site.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 1]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sortedPercentile(sorted, p)
}

func sortedPercentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	a, b := sorted[lo], sorted[hi]
	if math.IsInf(b, 1) {
		if frac == 0 {
			return a
		}
		return math.Inf(1)
	}
	// Convex combination rather than a + (b-a)*frac: the difference form
	// can overflow when a and b have opposite signs near ±MaxFloat64.
	return a*(1-frac) + b*frac
}

// durationSortPool recycles the sort buffer DurationPercentile copies its
// input into. The percentile primitive runs in every scoring inner loop
// (once per neighbor-candidate per node per round, from many goroutines),
// so the copy-and-sort must not allocate once warm.
var durationSortPool = sync.Pool{New: func() any { return new([]time.Duration) }}

// DurationPercentile returns the p-quantile of ds with linear interpolation.
// InfDuration observations are treated as right-censored: if the quantile
// needs to interpolate into a censored value, the result is InfDuration.
// It returns InfDuration for empty input (there is no evidence the event
// ever happens). The input is not modified; steady-state calls perform no
// heap allocations.
func DurationPercentile(ds []time.Duration, p float64) time.Duration {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 1]", p))
	}
	if len(ds) == 0 {
		return InfDuration
	}
	bufp := durationSortPool.Get().(*[]time.Duration)
	sorted := append((*bufp)[:0], ds...)
	slices.Sort(sorted)
	n := len(sorted)
	result := sorted[0]
	if n > 1 {
		rank := p * float64(n-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		frac := rank - float64(lo)
		a, b := sorted[lo], sorted[hi]
		switch {
		case lo == hi:
			result = a
		case b == InfDuration:
			if frac == 0 {
				result = a
			} else {
				result = InfDuration
			}
		default:
			result = a + time.Duration(float64(b-a)*frac)
		}
	}
	*bufp = sorted[:0]
	durationSortPool.Put(bufp)
	return result
}

// Summary accumulates a streaming mean/variance/min/max using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean, or NaN if empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the sample variance (n-1 denominator), or NaN when fewer
// than two observations exist.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN if empty.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN if empty.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanStd returns the mean and sample standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.Mean(), s.Std()
}

// CDF returns the empirical CDF support points of xs: a sorted copy, such
// that point i has cumulative probability (i+1)/len.
func CDF(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// AggregateSeries combines per-trial series (each already sorted or
// otherwise index-aligned) into a per-index mean and standard deviation.
// All trials must have equal length.
func AggregateSeries(trials [][]float64) (mean, std []float64, err error) {
	if len(trials) == 0 {
		return nil, nil, fmt.Errorf("stats: no trials to aggregate")
	}
	n := len(trials[0])
	for i, tr := range trials {
		if len(tr) != n {
			return nil, nil, fmt.Errorf("stats: trial %d has length %d, want %d", i, len(tr), n)
		}
	}
	mean = make([]float64, n)
	std = make([]float64, n)
	for i := 0; i < n; i++ {
		var s Summary
		for _, tr := range trials {
			s.Add(tr[i])
		}
		mean[i] = s.Mean()
		if len(trials) > 1 {
			std[i] = s.Std()
		}
	}
	return mean, std, nil
}

// Histogram is a fixed-range, equal-width histogram. Observations outside
// [Lo, Hi) are clamped into the first/last bin so that total mass is
// preserved, which matches how the paper's Figure 5 bins edge latencies.
type Histogram struct {
	Lo, Hi float64
	counts []int
	total  int
}

// NewHistogram builds a histogram over [lo, hi) with the given number of
// equal-width bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, bins)}, nil
}

// Add folds one observation into the histogram.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	return append([]int(nil), h.counts...)
}

// Total returns the number of observations added.
func (h *Histogram) Total() int { return h.total }

// Fractions returns per-bin mass as fractions of the total; an empty
// histogram yields all zeros.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.counts))
	return h.Lo + width*(float64(i)+0.5)
}

// MarshalJSON emits the histogram as {"lo", "hi", "counts", "total"} so
// results embedding histograms serialize without losing the bin counts
// (which are unexported).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Lo     float64 `json:"lo"`
		Hi     float64 `json:"hi"`
		Counts []int   `json:"counts"`
		Total  int     `json:"total"`
	}{Lo: h.Lo, Hi: h.Hi, Counts: h.counts, Total: h.total})
}

// Render draws an ASCII bar chart of the histogram, width characters wide
// at the tallest bin.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.1f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
