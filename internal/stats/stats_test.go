package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"median odd", []float64{3, 1, 2}, 0.5, 2},
		{"median even interpolates", []float64{1, 2, 3, 4}, 0.5, 2.5},
		{"p0 is min", []float64{5, 1, 9}, 0, 1},
		{"p1 is max", []float64{5, 1, 9}, 1, 9},
		{"single element", []float64{7}, 0.9, 7},
		{"p90 of 1..10", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9.1},
		{"repeated values", []float64{2, 2, 2, 2}, 0.37, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Percentile(tc.xs, tc.p)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty percentile = %v, want NaN", got)
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p > 1")
		}
	}()
	Percentile([]float64{1}, 1.5)
}

func TestPercentileCensored(t *testing.T) {
	inf := math.Inf(1)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, inf, inf, inf}
	// rank = 0.5*9 = 4.5 -> halfway between sorted[4]=5 and sorted[5]=6.
	if got := Percentile(xs, 0.5); got != 5.5 {
		t.Fatalf("median with censoring = %v, want 5.5", got)
	}
	if got := Percentile(xs, 0.9); !math.IsInf(got, 1) {
		t.Fatalf("p90 with 30%% censoring = %v, want +Inf", got)
	}
}

// Property: a percentile always lies within [min, max] and is monotone in p.
func TestPercentileProperties(t *testing.T) {
	check := func(raw []float64, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(p1%101) / 100
		b := float64(p2%101) / 100
		if a > b {
			a, b = b, a
		}
		qa := Percentile(xs, a)
		qb := Percentile(xs, b)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return qa >= sorted[0] && qb <= sorted[len(sorted)-1] && qa <= qb
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationPercentile(t *testing.T) {
	ds := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		30 * time.Millisecond,
	}
	if got := DurationPercentile(ds, 0.5); got != 20*time.Millisecond {
		t.Fatalf("median = %v", got)
	}
	if got := DurationPercentile(ds, 1); got != 30*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := DurationPercentile(nil, 0.5); got != InfDuration {
		t.Fatalf("empty = %v, want InfDuration", got)
	}
}

func TestDurationPercentileCensored(t *testing.T) {
	ds := []time.Duration{time.Second, 2 * time.Second, InfDuration, InfDuration}
	if got := DurationPercentile(ds, 0.9); got != InfDuration {
		t.Fatalf("p90 = %v, want InfDuration", got)
	}
	if got := DurationPercentile(ds, 0); got != time.Second {
		t.Fatalf("p0 = %v, want 1s", got)
	}
	// Interpolating strictly below the censored region stays finite.
	if got := DurationPercentile(ds, 1.0/3.0); got >= InfDuration {
		t.Fatalf("p33 = %v, want finite", got)
	}
}

// Property: DurationPercentile agrees with float Percentile on finite data.
func TestDurationPercentileMatchesFloat(t *testing.T) {
	check := func(raw []uint32, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%101) / 100
		ds := make([]time.Duration, len(raw))
		fs := make([]float64, len(raw))
		for i, v := range raw {
			ds[i] = time.Duration(v) * time.Microsecond
			fs[i] = float64(ds[i])
		}
		got := float64(DurationPercentile(ds, p))
		want := Percentile(fs, p)
		return math.Abs(got-want) <= 1 // integer truncation tolerance
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) {
		t.Fatal("empty summary should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if got := s.Std(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("std = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 || s.N() != 8 {
		t.Fatalf("min/max/n = %v/%v/%v", s.Min(), s.Max(), s.N())
	}
}

// Property: Welford summary matches naive two-pass computation.
func TestSummaryMatchesNaive(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(variance))
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-variance)/scale < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{1, 2, 3})
	if mean != 2 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-1) > 1e-12 {
		t.Fatalf("std = %v", std)
	}
}

func TestCDFSorted(t *testing.T) {
	in := []float64{3, 1, 2}
	out := CDF(in)
	if !sort.Float64sAreSorted(out) {
		t.Fatalf("CDF output not sorted: %v", out)
	}
	if in[0] != 3 {
		t.Fatal("CDF must not mutate its input")
	}
}

func TestAggregateSeries(t *testing.T) {
	mean, std, err := AggregateSeries([][]float64{{1, 10}, {3, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 2 || mean[1] != 15 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std[0]-math.Sqrt2) > 1e-12 {
		t.Fatalf("std = %v", std)
	}
}

func TestAggregateSeriesErrors(t *testing.T) {
	if _, _, err := AggregateSeries(nil); err == nil {
		t.Fatal("expected error for no trials")
	}
	if _, _, err := AggregateSeries([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("expected error for ragged trials")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2.5, 9.99, -3, 42} {
		h.Add(x)
	}
	counts := h.Counts()
	if counts[0] != 3 { // 0, 1, and clamped -3
		t.Fatalf("bin 0 = %d, want 3", counts[0])
	}
	if counts[4] != 2 { // 9.99 and clamped 42
		t.Fatalf("bin 4 = %d, want 2", counts[4])
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("center 0 = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("center 4 = %v, want 9", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.Render(10)
	if out == "" {
		t.Fatal("empty render")
	}
}

// Property: histogram conserves mass regardless of input.
func TestHistogramConservesMass(t *testing.T) {
	check := func(raw []float64) bool {
		h, err := NewHistogram(-5, 5, 7)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		total := 0
		for _, c := range h.Counts() {
			total += c
		}
		return total == n && h.Total() == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
