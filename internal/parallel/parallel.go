// Package parallel provides the deterministic fan-out primitive shared by
// the simulation stack (core.Engine round broadcasts, experiment trials and
// algorithm arms).
//
// The contract that makes worker-pool results reproducible is simple: work
// items are identified by a dense index, every item writes only into
// per-index (or per-worker, merged in worker order) storage, and no item
// draws from a shared random stream. Under that contract the output is
// bit-for-bit identical for any worker count, so Workers=1 and
// Workers=GOMAXPROCS produce the same figures.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: any value <= 0 means "use all
// available cores" (GOMAXPROCS); positive values are returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachIndexed runs fn(worker, index) for every index in [0, n), fanning
// the indices out over min(Workers(workers), n) worker goroutines. The
// worker argument is a dense ID in [0, workerCount) that fn can use to
// address per-worker scratch (e.g. one netsim.Broadcaster per worker);
// every invocation with the same worker ID runs on the same goroutine.
//
// Indices are claimed in ascending order. If an fn call returns an error, no
// further indices are claimed (in-flight ones still complete) and the error
// with the smallest index is returned — the same error a sequential loop
// over [0, n) would have stopped at, regardless of worker count or
// scheduling. Callers must treat per-index results as invalid on error.
func ForEachIndexed(n, workers int, fn func(worker, index int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
