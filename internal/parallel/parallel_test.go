package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}

func TestForEachIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			out := make([]int, n)
			err := ForEachIndexed(n, workers, func(worker, i int) error {
				out[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("index %d: got %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestForEachIndexedEmpty(t *testing.T) {
	called := false
	if err := ForEachIndexed(0, 4, func(worker, i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachIndexedWorkerIDsDense(t *testing.T) {
	const n, workers = 200, 4
	var seen [workers]atomic.Int64
	err := ForEachIndexed(n, workers, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker ID %d out of range", worker)
		}
		seen[worker].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for w := range seen {
		total += seen[w].Load()
	}
	if total != n {
		t.Fatalf("fn ran %d times, want %d", total, n)
	}
}

func TestForEachIndexedReturnsSmallestIndexError(t *testing.T) {
	errA := errors.New("fail at 3")
	errB := errors.New("fail at 17")
	for _, workers := range []int{1, 4} {
		err := ForEachIndexed(32, workers, func(worker, i int) error {
			switch i {
			case 3:
				return errA
			case 17:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want the smallest-index error %v", workers, err, errA)
		}
	}
}

func TestForEachIndexedStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEachIndexed(1<<20, 4, func(worker, i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran.Load() == 1<<20 {
		t.Fatal("error did not stop index claiming")
	}
}

func TestForEachIndexedDeterministicAcrossWorkerCounts(t *testing.T) {
	// The core determinism contract: per-index writes yield identical
	// results for any worker count.
	const n = 512
	run := func(workers int) []uint64 {
		out := make([]uint64, n)
		if err := ForEachIndexed(n, workers, func(worker, i int) error {
			h := uint64(i) * 0x9e3779b97f4a7c15
			h ^= h >> 29
			out[i] = h
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverges at index %d", workers, i)
			}
		}
	}
}
