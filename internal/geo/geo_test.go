package geo

import (
	"math"
	"testing"

	"github.com/perigee-net/perigee/internal/rng"
)

func TestRegionString(t *testing.T) {
	if NorthAmerica.String() != "NorthAmerica" {
		t.Fatalf("got %q", NorthAmerica.String())
	}
	if Oceania.String() != "Oceania" {
		t.Fatalf("got %q", Oceania.String())
	}
	if Region(200).String() != "Region(200)" {
		t.Fatalf("got %q", Region(200).String())
	}
}

func TestRegionValid(t *testing.T) {
	for r := Region(0); r < Region(NumRegions); r++ {
		if !r.Valid() {
			t.Fatalf("region %v should be valid", r)
		}
	}
	if Region(NumRegions).Valid() {
		t.Fatal("out-of-range region reported valid")
	}
}

func TestNewUniverse(t *testing.T) {
	u, err := NewUniverse([]Region{Europe, Asia, Europe})
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 3 {
		t.Fatalf("N = %d", u.N())
	}
	if u.Region(1) != Asia {
		t.Fatalf("Region(1) = %v", u.Region(1))
	}
	if !u.SameRegion(0, 2) || u.SameRegion(0, 1) {
		t.Fatal("SameRegion incorrect")
	}
}

func TestNewUniverseRejectsInvalid(t *testing.T) {
	if _, err := NewUniverse(nil); err == nil {
		t.Fatal("expected error for empty universe")
	}
	if _, err := NewUniverse([]Region{Europe, Region(99)}); err == nil {
		t.Fatal("expected error for invalid region")
	}
}

func TestNewUniverseCopiesInput(t *testing.T) {
	in := []Region{Europe, Asia}
	u, err := NewUniverse(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = China
	if u.Region(0) != Europe {
		t.Fatal("universe aliases caller slice")
	}
}

func TestSampleUniverseDistribution(t *testing.T) {
	r := rng.New(1)
	const n = 50000
	u, err := SampleUniverse(n, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := u.CountByRegion()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
	for reg, want := range DefaultWeights {
		got := float64(counts[reg]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v: frequency %.3f, want ~%.3f", Region(reg), got, want)
		}
	}
}

func TestSampleUniverseDeterministic(t *testing.T) {
	a, err := SampleUniverse(100, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleUniverse(100, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Region(i) != b.Region(i) {
			t.Fatalf("node %d: %v != %v", i, a.Region(i), b.Region(i))
		}
	}
}

func TestSampleUniverseWeightsErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := SampleUniverseWeights(0, DefaultWeights[:], r); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := SampleUniverseWeights(10, []float64{1, 2}, r); err == nil {
		t.Fatal("expected error for wrong weight count")
	}
	bad := make([]float64, NumRegions)
	bad[0] = -1
	if _, err := SampleUniverseWeights(10, bad, r); err == nil {
		t.Fatal("expected error for negative weight")
	}
	zero := make([]float64, NumRegions)
	if _, err := SampleUniverseWeights(10, zero, r); err == nil {
		t.Fatal("expected error for all-zero weights")
	}
}

func TestSampleUniverseSingleRegion(t *testing.T) {
	w := make([]float64, NumRegions)
	w[China] = 5
	u, err := SampleUniverseWeights(500, w, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < u.N(); i++ {
		if u.Region(i) != China {
			t.Fatalf("node %d in %v, want China", i, u.Region(i))
		}
	}
}

func TestNodesInRegion(t *testing.T) {
	u, err := NewUniverse([]Region{Europe, Asia, Europe, China, Europe})
	if err != nil {
		t.Fatal(err)
	}
	got := u.NodesInRegion(Europe)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if u.NodesInRegion(Africa) != nil {
		t.Fatal("expected no nodes in Africa")
	}
}
