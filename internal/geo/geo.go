// Package geo models the node universe of a blockchain p2p network: which
// geographic region each node lives in.
//
// The paper samples 1000 nodes from a Bitnodes crawl spanning seven regions
// (North America, South America, Europe, Asia, Africa, China, Oceania).
// That snapshot is not redistributable, so this package synthesizes a
// universe with a region mix matching published Bitnodes distributions;
// DESIGN.md documents the substitution.
package geo

import (
	"fmt"

	"github.com/perigee-net/perigee/internal/rng"
)

// Region identifies one of the seven geographic regions used by the paper's
// evaluation.
type Region uint8

// The seven regions, in the order the paper lists them.
const (
	NorthAmerica Region = iota
	SouthAmerica
	Europe
	Asia
	Africa
	China
	Oceania

	numRegions = 7
)

// NumRegions is the number of distinct regions.
const NumRegions = int(numRegions)

var regionNames = [numRegions]string{
	"NorthAmerica",
	"SouthAmerica",
	"Europe",
	"Asia",
	"Africa",
	"China",
	"Oceania",
}

// String returns the region's name.
func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("Region(%d)", uint8(r))
}

// Valid reports whether r is one of the seven defined regions.
func (r Region) Valid() bool { return r < numRegions }

// DefaultWeights approximates the regional mix of reachable Bitcoin nodes
// reported by Bitnodes-style crawls around 2020: Europe and North America
// dominate, with meaningful Asian and Chinese populations and small tails
// elsewhere. Indexed by Region.
var DefaultWeights = [NumRegions]float64{
	NorthAmerica: 0.29,
	SouthAmerica: 0.03,
	Europe:       0.43,
	Asia:         0.12,
	Africa:       0.02,
	China:        0.08,
	Oceania:      0.03,
}

// Universe is an immutable assignment of nodes to regions.
type Universe struct {
	regions []Region
}

// NewUniverse wraps an explicit region assignment. It rejects invalid
// regions so later lookups cannot go out of bounds.
func NewUniverse(regions []Region) (*Universe, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("geo: empty universe")
	}
	for i, r := range regions {
		if !r.Valid() {
			return nil, fmt.Errorf("geo: node %d has invalid region %d", i, r)
		}
	}
	return &Universe{regions: append([]Region(nil), regions...)}, nil
}

// SampleUniverse draws an n-node universe using DefaultWeights.
func SampleUniverse(n int, r *rng.RNG) (*Universe, error) {
	return SampleUniverseWeights(n, DefaultWeights[:], r)
}

// SampleUniverseWeights draws an n-node universe with the given region
// weights (one per region, need not be normalized).
func SampleUniverseWeights(n int, weights []float64, r *rng.RNG) (*Universe, error) {
	if n <= 0 {
		return nil, fmt.Errorf("geo: universe size %d must be positive", n)
	}
	if len(weights) != NumRegions {
		return nil, fmt.Errorf("geo: got %d weights, want %d", len(weights), NumRegions)
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("geo: negative weight %v for %v", w, Region(i))
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("geo: weights sum to zero")
	}
	cum := make([]float64, NumRegions)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[NumRegions-1] = 1 // guard against floating-point shortfall
	regions := make([]Region, n)
	for i := range regions {
		u := r.Float64()
		for j, c := range cum {
			if u < c {
				regions[i] = Region(j)
				break
			}
		}
	}
	return &Universe{regions: regions}, nil
}

// N returns the number of nodes.
func (u *Universe) N() int { return len(u.regions) }

// Region returns node i's region.
func (u *Universe) Region(i int) Region { return u.regions[i] }

// CountByRegion returns how many nodes live in each region.
func (u *Universe) CountByRegion() [NumRegions]int {
	var counts [NumRegions]int
	for _, r := range u.regions {
		counts[r]++
	}
	return counts
}

// NodesInRegion returns the (ascending) indices of all nodes in region r.
func (u *Universe) NodesInRegion(r Region) []int {
	var out []int
	for i, rr := range u.regions {
		if rr == r {
			out = append(out, i)
		}
	}
	return out
}

// SameRegion reports whether nodes i and j are in the same region.
func (u *Universe) SameRegion(i, j int) bool { return u.regions[i] == u.regions[j] }
