package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/netsim"
	"github.com/perigee-net/perigee/internal/parallel"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// Params are the protocol constants of Algorithm 1.
type Params struct {
	// OutDegree is the number of outgoing connections each node keeps
	// (paper: 8).
	OutDegree int
	// Explore is the number of random exploration connections made each
	// round (paper: e_v = 2); the best OutDegree−Explore scorers are
	// retained (d_v = 6).
	Explore int
	// Percentile is the offset quantile used by all scoring methods
	// (paper: 0.9).
	Percentile float64
	// RoundBlocks is |B|, the number of blocks mined per round (paper: 100
	// for Vanilla/Subset, 1 for UCB).
	RoundBlocks int
	// UCBConstant is the exploration constant c in eq. (3)–(4). The paper
	// does not publish a value; 50ms is calibrated so the confidence bonus
	// is on the order of inter-regional latency differences.
	UCBConstant time.Duration
	// MaxDialAttempts bounds the random candidate retries when an
	// exploration target declines the connection (incoming slots full).
	MaxDialAttempts int
}

// DefaultParams returns the paper's evaluation constants for a method.
func DefaultParams(m Method) Params {
	p := Params{
		OutDegree:       8,
		Explore:         2,
		Percentile:      0.9,
		RoundBlocks:     100,
		UCBConstant:     50 * time.Millisecond,
		MaxDialAttempts: 200,
	}
	if m == UCB {
		// §4.2.2: UCB rounds span a single block, and neighbor replacement
		// happens through interval-separation evictions rather than a
		// fixed exploration quota.
		p.RoundBlocks = 1
		p.Explore = 0
	}
	return p
}

func (p Params) validate() error {
	if p.OutDegree <= 0 {
		return fmt.Errorf("core: out-degree %d must be positive", p.OutDegree)
	}
	if p.Explore < 0 || p.Explore > p.OutDegree {
		return fmt.Errorf("core: explore count %d outside [0, %d]", p.Explore, p.OutDegree)
	}
	if p.Percentile <= 0 || p.Percentile > 1 {
		return fmt.Errorf("core: percentile %v outside (0, 1]", p.Percentile)
	}
	if p.RoundBlocks <= 0 {
		return fmt.Errorf("core: round blocks %d must be positive", p.RoundBlocks)
	}
	if p.UCBConstant < 0 {
		return fmt.Errorf("core: UCB constant %v must be non-negative", p.UCBConstant)
	}
	if p.MaxDialAttempts <= 0 {
		return fmt.Errorf("core: max dial attempts %d must be positive", p.MaxDialAttempts)
	}
	return nil
}

// Config assembles an Engine.
type Config struct {
	// Method selects the scoring rule implemented by the default selector.
	Method Method
	// Params are the protocol constants; zero value means DefaultParams(Method).
	Params Params
	// Selector, if non-nil, overrides Method as the per-node decision
	// policy: the engine becomes a driver that feeds it observations and
	// applies its keep/drop/dial decisions. Nil means
	// SelectorFromMethod(Method, Params).
	Selector Selector
	// Table is the evolving connection table (pre-seeded, e.g. by
	// topology.Random). The engine takes ownership.
	Table *topology.Table
	// Latency is the link delay model.
	Latency latency.Model
	// Forward is the per-node validation delay Δ_v.
	Forward []time.Duration
	// Power is the per-node hash power (any non-negative scale).
	Power []float64
	// Pinned are permanent undirected edges merged into the communication
	// graph each round (e.g. a relay tree); they are not scored and never
	// disconnected.
	Pinned [][2]int
	// Frozen marks nodes that never update their neighbors (relay
	// infrastructure, protocol-deviant peers). Optional.
	Frozen []bool
	// Silent marks free-riding nodes that receive blocks but never relay
	// them (§1's protocol deviation). Optional.
	Silent []bool
	// RelayDelay adds a per-node withholding delay on top of Forward before
	// a received block is relayed onward (adversarial "accept but forward
	// late" behavior; see netsim.Config.RelayDelay). Optional. The slice is
	// read live each broadcast, so Dynamics may mutate entries between
	// rounds.
	RelayDelay []time.Duration
	// Tamper, if non-nil, rewrites the observations each node is about to
	// feed its selector: it is called once per node per round, after the
	// broadcast phase and before any decision, with the node's neighbor
	// snapshot and its per-block offset matrix (Offsets[b][i] is block b's
	// arrival offset from neighbors[i]; stats.InfDuration marks a censored
	// observation). Adversary strategies use it to model manipulated
	// timestamps — a neighbor that lies about when it delivered. Calls are
	// sequential in ascending node order, so stateful tampering stays
	// deterministic at any Workers count.
	Tamper func(node int, neighbors []int, offsets [][]time.Duration)
	// SendInterval, if non-nil, serializes each node's uploads (see
	// netsim.Config.SendInterval); λ evaluation then uses the event
	// simulation instead of the analytic pass.
	SendInterval []time.Duration
	// Rand drives source sampling and exploration.
	Rand *rng.RNG
	// Observer, if non-nil, receives a RoundEvent after every completed
	// round (streaming telemetry; see Observer). Optional.
	Observer Observer
	// Dynamics, if non-nil, runs after every completed round (and after the
	// observer) to mutate the network — churn, adversary injection, and
	// similar per-round environment changes. Optional.
	Dynamics Dynamics
	// Workers bounds the goroutines used for round broadcasts, scoring
	// decisions, and delay evaluation. Zero (or negative) means one worker
	// per available core. Results are bit-for-bit identical for any worker
	// count: block sources are pre-sampled from the engine RNG, and every
	// worker writes only into per-block (or per-source) storage.
	Workers int
	// LatencyMode selects precomputed vs streaming edge-delay evaluation
	// for the cached simulator (see latency.Mode). The zero value
	// (latency.Auto) picks by network size.
	LatencyMode latency.Mode
	// ObservationWindow, when positive and below RoundBlocks, bounds each
	// node's per-round observation memory to the last ObservationWindow
	// blocks of the round: selectors score a ring of out-degree × window
	// offsets instead of the full out-degree × RoundBlocks matrix. Blocks
	// are mutually independent given the fixed start-of-round topology, so
	// retaining the window's observations is bit-for-bit equivalent to
	// recording all blocks and discarding the old ones — the engine
	// therefore skips the discarded broadcasts outright, making the window
	// a CPU win as well as a memory bound. Sources are still sampled for
	// every block, keeping the engine RNG stream (and thus exploration)
	// identical at any window. Zero means no window (dense observations).
	ObservationWindow int
	// Shards, when ≥ 2, partitions the nodes into that many contiguous
	// shards and runs each block's broadcast as a conservative windowed
	// parallel simulation across them (see netsim.ShardedBroadcaster),
	// fanned over the engine worker pool. Results stay bit-for-bit
	// identical at any shard count. Zero or 1 means the single-queue path.
	Shards int
	// Trace enables decision tracing and counterfactual evaluation (see
	// TraceConfig). The zero value disables both; with tracing off the
	// round loop carries only dead branches and allocates nothing for it.
	Trace TraceConfig
}

// Engine runs the Perigee protocol round by round over the simulated
// network, as the paper does: connection updates execute synchronously at
// all nodes after each round's blocks are broadcast (§2.1).
type Engine struct {
	params       Params
	selector     Selector
	table        *topology.Table
	lat          latency.Model
	forward      []time.Duration
	power        []float64
	pinned       [][2]int
	frozen       []bool
	silent       []bool
	relayDelay   []time.Duration
	sendInterval []time.Duration
	tamper       func(node int, neighbors []int, offsets [][]time.Duration)
	rand         *rng.RNG
	// selRand roots the per-(round, node) streams handed to the selector;
	// derivation is stateless, so selector draws never perturb the engine
	// stream.
	selRand   *rng.RNG
	sampler   *hashpower.Sampler
	workers   int
	latMode   latency.Mode
	obsWindow int
	shards    int
	observer  Observer
	dynamics  Dynamics
	trace     TraceConfig

	round int

	// scratch is the reusable round context: the cached simulator plus all
	// per-round tables, resized instead of reallocated every Step.
	scratch roundScratch
}

// roundScratch holds the engine's reusable round state. The simulator is
// built once through netsim's prevalidated path (the engine constructs
// symmetric sorted adjacencies by construction) and reconfigured in place
// whenever the connection table's version moves; the observation matrices,
// outgoing/slot tables, per-worker Broadcasters, source slice, and
// per-worker arrival buffers all keep their backing arrays across rounds.
type roundScratch struct {
	sim        *netsim.Simulator
	simVersion uint64
	simDirty   bool
	adj        [][]int
	bcs        []*netsim.Broadcaster
	shb        *netsim.ShardedBroadcaster
	outs       [][]int
	slot       [][]int
	obs        []Observations
	sources    []int
	decisions  []Decision
	arrivals   [][]time.Duration

	// Tracing scratch (used only when Config.Trace enables tracing):
	// pending counterfactual queries carried into the next round, their
	// per-block hypothetical offset rows, and reusable score/censored/rank
	// buffers for the sequential emit pass.
	cfPending     []cfQuery
	cfOffsets     [][]time.Duration
	cfRank        []int
	traceScores   []time.Duration
	traceCensored []int
}

// RoundReport summarizes one protocol round.
type RoundReport struct {
	// Round is the 1-based index of the completed round.
	Round int
	// Blocks is the number of blocks broadcast.
	Blocks int
	// Dropped is the total number of outgoing connections disconnected.
	Dropped int
	// Added is the total number of new outgoing connections established.
	Added int
	// Unfilled counts outgoing slots that could not be filled after
	// MaxDialAttempts (should be zero in sane configurations).
	Unfilled int
}

// RoundEvent is the streaming telemetry handed to an Observer after each
// completed round: the round report plus the exact connection churn. Edge
// lists are in deterministic order (drops by ascending node, additions in
// the round's exploration order), so they are identical for any Workers
// count. RoundReport itself stays free of slices so it remains comparable
// with ==.
type RoundEvent struct {
	// Report is the completed round's summary.
	Report RoundReport
	// Dropped lists the directed edges (v, u) disconnected by scoring.
	Dropped [][2]int
	// Added lists the directed edges (v, u) established by exploration.
	Added [][2]int
}

// Observer receives streaming per-round telemetry. ObserveRound is invoked
// synchronously at the end of Step, after the neighbor update and before
// any Dynamics run, so the engine state it can inspect (via a captured
// engine reference) is the round's converged topology. Long runs can emit
// metrics without polling; implementations must not mutate the engine.
type Observer interface {
	ObserveRound(ev RoundEvent)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(ev RoundEvent)

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(ev RoundEvent) { f(ev) }

// Dynamics mutates the network between rounds: node churn (Engine.Churn),
// adversary injection, topology edits — the per-round environment changes
// that the eclipse and churn experiments previously hard-coded. AfterRound
// runs sequentially after the observer, so any randomness it draws (from
// its own derived stream) is independent of the Workers count.
type Dynamics interface {
	AfterRound(e *Engine, round int) error
}

// DynamicsFunc adapts a plain function to the Dynamics interface.
type DynamicsFunc func(e *Engine, round int) error

// AfterRound implements Dynamics.
func (f DynamicsFunc) AfterRound(e *Engine, round int) error { return f(e, round) }

// NewEngine validates the configuration and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if !cfg.Method.Valid() {
		return nil, fmt.Errorf("core: invalid method %d", int(cfg.Method))
	}
	if cfg.Table == nil {
		return nil, fmt.Errorf("core: nil table")
	}
	n := cfg.Table.N()
	params := cfg.Params
	if params == (Params{}) {
		params = DefaultParams(cfg.Method)
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	if params.OutDegree >= n {
		return nil, fmt.Errorf("core: out-degree %d must be below n=%d", params.OutDegree, n)
	}
	if cfg.Latency == nil {
		return nil, fmt.Errorf("core: nil latency model")
	}
	if cfg.Latency.N() < n {
		return nil, fmt.Errorf("core: latency model covers %d nodes, table has %d", cfg.Latency.N(), n)
	}
	if len(cfg.Forward) != n {
		return nil, fmt.Errorf("core: forward delays cover %d nodes, want %d", len(cfg.Forward), n)
	}
	if len(cfg.Power) != n {
		return nil, fmt.Errorf("core: power covers %d nodes, want %d", len(cfg.Power), n)
	}
	if cfg.Frozen != nil && len(cfg.Frozen) != n {
		return nil, fmt.Errorf("core: frozen mask covers %d nodes, want %d", len(cfg.Frozen), n)
	}
	if cfg.Silent != nil && len(cfg.Silent) != n {
		return nil, fmt.Errorf("core: silent mask covers %d nodes, want %d", len(cfg.Silent), n)
	}
	if cfg.RelayDelay != nil && len(cfg.RelayDelay) != n {
		return nil, fmt.Errorf("core: relay delays cover %d nodes, want %d", len(cfg.RelayDelay), n)
	}
	if cfg.SendInterval != nil && len(cfg.SendInterval) != n {
		return nil, fmt.Errorf("core: send intervals cover %d nodes, want %d", len(cfg.SendInterval), n)
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	if !cfg.LatencyMode.Valid() {
		return nil, fmt.Errorf("core: invalid latency mode %d", int(cfg.LatencyMode))
	}
	if cfg.ObservationWindow < 0 {
		return nil, fmt.Errorf("core: observation window %d must be non-negative", cfg.ObservationWindow)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: shard count %d must be non-negative", cfg.Shards)
	}
	if err := cfg.Trace.validate(); err != nil {
		return nil, err
	}
	sampler, err := hashpower.NewSampler(cfg.Power)
	if err != nil {
		return nil, err
	}
	sel := cfg.Selector
	if sel == nil {
		sel, err = SelectorFromMethod(cfg.Method, params)
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{
		params:       params,
		selector:     sel,
		table:        cfg.Table,
		lat:          cfg.Latency,
		forward:      cfg.Forward,
		power:        cfg.Power,
		pinned:       cfg.Pinned,
		frozen:       cfg.Frozen,
		silent:       cfg.Silent,
		relayDelay:   cfg.RelayDelay,
		sendInterval: cfg.SendInterval,
		tamper:       cfg.Tamper,
		rand:         cfg.Rand,
		selRand:      cfg.Rand.Derive("selector"),
		sampler:      sampler,
		workers:      cfg.Workers,
		latMode:      cfg.LatencyMode,
		obsWindow:    cfg.ObservationWindow,
		shards:       cfg.Shards,
		observer:     cfg.Observer,
		dynamics:     cfg.Dynamics,
		trace:        cfg.Trace,
	}
	return e, nil
}

// N returns the network size.
func (e *Engine) N() int { return e.table.N() }

// Round returns how many rounds have completed.
func (e *Engine) Round() int { return e.round }

// Table exposes the evolving connection table (owned by the engine).
func (e *Engine) Table() *topology.Table { return e.table }

// Params returns the protocol constants in use.
func (e *Engine) Params() Params { return e.params }

// Power returns the per-node hash power vector the engine samples block
// sources from. The engine owns the slice; callers must not mutate it.
func (e *Engine) Power() []float64 { return e.power }

// Adjacency returns the current undirected communication graph including
// pinned edges.
func (e *Engine) Adjacency() [][]int {
	if len(e.pinned) == 0 {
		return e.table.Undirected()
	}
	return topology.MergeAdjacency(e.table.Undirected(), e.pinned)
}

// workerCount resolves the configured worker bound against the number of
// independent work items.
func (e *Engine) workerCount(items int) int {
	w := parallel.Workers(e.workers)
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensureSim returns the engine's cached simulator, rebuilding its CSR
// topology in place when the connection table has changed since the last
// call. The engine's adjacency is symmetric and sorted by construction, so
// the simulator is built through netsim's prevalidated path, skipping the
// per-row validation sweep every round.
func (e *Engine) ensureSim() (*netsim.Simulator, error) {
	rs := &e.scratch
	ver := e.table.Version()
	if rs.sim != nil && rs.simVersion == ver && !rs.simDirty {
		return rs.sim, nil
	}
	rs.adj = e.table.UndirectedInto(rs.adj)
	adj := rs.adj
	if len(e.pinned) > 0 {
		adj = topology.MergeAdjacency(adj, e.pinned)
	}
	if rs.sim == nil {
		sim, err := netsim.NewPrevalidated(netsim.Config{
			Adj:          adj,
			Latency:      e.lat,
			Forward:      e.forward,
			SendInterval: e.sendInterval,
			Silent:       e.silent,
			RelayDelay:   e.relayDelay,
			LatencyMode:  e.latMode,
		})
		if err != nil {
			return nil, err
		}
		rs.sim = sim
	} else if err := rs.sim.Reconfigure(adj); err != nil {
		return nil, err
	}
	rs.simVersion = ver
	rs.simDirty = false
	return rs.sim, nil
}

// InvalidateNetworkCache forces the next simulator use to rebuild its
// per-edge state even when the connection table has not changed. Dynamics
// that mutate the environment out from under the engine — most notably a
// latency model whose delays change mid-run (adversarial partitions, route
// inflation) — must call it, because edge delays are precomputed when the
// cached simulator is (re)built. Per-node tables read live at broadcast
// time (Forward, Silent, RelayDelay) do not need it.
func (e *Engine) InvalidateNetworkCache() { e.scratch.simDirty = true }

// broadcasters returns at least `workers` per-worker broadcast contexts
// over the cached simulator, growing the pool on first use and reusing it
// (scratch included) across rounds.
func (e *Engine) broadcasters(sim *netsim.Simulator, workers int) []*netsim.Broadcaster {
	rs := &e.scratch
	for len(rs.bcs) < workers {
		rs.bcs = append(rs.bcs, sim.NewBroadcaster())
	}
	return rs.bcs[:workers]
}

// shardedBroadcaster returns the engine's cached sharded broadcast context
// over the cached simulator, created on first use; it resynchronizes its
// shard partition and scratch on topology changes by itself.
func (e *Engine) shardedBroadcaster(sim *netsim.Simulator) (*netsim.ShardedBroadcaster, error) {
	rs := &e.scratch
	if rs.shb == nil {
		shb, err := sim.NewShardedBroadcaster(e.shards, e.workers)
		if err != nil {
			return nil, err
		}
		rs.shb = shb
	}
	return rs.shb, nil
}

// arrivalBuffers returns `workers` reusable arrival vectors for the
// analytic λ evaluation.
func (e *Engine) arrivalBuffers(workers int) [][]time.Duration {
	rs := &e.scratch
	for len(rs.arrivals) < workers {
		rs.arrivals = append(rs.arrivals, nil)
	}
	return rs.arrivals[:workers]
}

// Step runs one full protocol round: broadcast RoundBlocks blocks, collect
// per-neighbor observations at every node, then synchronously update every
// node's outgoing connections.
//
// The round's blocks are independent given the fixed start-of-round
// topology, so they fan out over a worker pool: sources are pre-sampled
// from the engine RNG (preserving the sequential stream), each worker owns
// a private netsim.Broadcaster over the shared simulator, and block b's
// observations land in the per-block rows obs[v].Offsets[b], making the
// scoring input independent of worker scheduling.
func (e *Engine) Step() (RoundReport, error) {
	sim, err := e.ensureSim()
	if err != nil {
		return RoundReport{}, err
	}
	// An observation window keeps only the round's last `window` blocks;
	// the earlier blocks' broadcasts are skipped entirely (blocks are
	// independent, so this is bit-for-bit equivalent to simulating and
	// discarding them — see Config.ObservationWindow).
	window := e.params.RoundBlocks
	if e.obsWindow > 0 && e.obsWindow < window {
		window = e.obsWindow
	}
	if err := e.prepareRound(sim, window); err != nil {
		return RoundReport{}, err
	}
	rs := &e.scratch
	obs, outs, slot := rs.obs[:e.table.N()], rs.outs[:e.table.N()], rs.slot[:e.table.N()]

	// Broadcast phase. All RNG draws happen up front, on the single engine
	// stream, in block order — every block's source is sampled even when a
	// window skips its broadcast, so the stream is window-independent.
	if cap(rs.sources) < e.params.RoundBlocks {
		rs.sources = make([]int, e.params.RoundBlocks)
	}
	sources := rs.sources[:e.params.RoundBlocks]
	rs.sources = sources
	for b := range sources {
		sources[b] = e.sampler.Sample(e.rand)
	}
	observed := sources[e.params.RoundBlocks-window:]
	if e.shards > 1 {
		// Sharded path: each block's broadcast itself fans out across the
		// node shards, so blocks run sequentially.
		shb, err := e.shardedBroadcaster(sim)
		if err != nil {
			return RoundReport{}, err
		}
		for b, src := range observed {
			res, err := shb.Broadcast(src)
			if err != nil {
				return RoundReport{}, err
			}
			harvestObservations(res, b, obs, outs, slot)
			if len(rs.cfPending) > 0 {
				e.harvestCounterfactuals(res, b)
			}
		}
	} else {
		workers := e.workerCount(len(observed))
		bcs := e.broadcasters(sim, workers)
		err = parallel.ForEachIndexed(len(observed), workers, func(worker, b int) error {
			res, err := bcs[worker].Broadcast(observed[b])
			if err != nil {
				return err
			}
			harvestObservations(res, b, obs, outs, slot)
			if len(rs.cfPending) > 0 {
				e.harvestCounterfactuals(res, b)
			}
			return nil
		})
		if err != nil {
			return RoundReport{}, err
		}
	}

	return e.finishRound(obs, e.params.RoundBlocks)
}

// prepareRound snapshots every node's outgoing set, locates each outgoing
// neighbor's slot in the (sorted) adjacency rows — outs[v] and the row are
// both ascending, so a merged walk finds every slot in one pass — and
// resets the observation matrices to `window` block rows, all into the
// reusable scratch tables.
func (e *Engine) prepareRound(sim *netsim.Simulator, window int) error {
	n := e.table.N()
	rs := &e.scratch
	if cap(rs.outs) < n {
		rs.outs = make([][]int, n)
		rs.slot = make([][]int, n)
		rs.obs = make([]Observations, n)
	}
	outs, slot, obs := rs.outs[:n], rs.slot[:n], rs.obs[:n]
	rs.outs, rs.slot, rs.obs = outs, slot, obs
	for v := 0; v < n; v++ {
		outs[v] = e.table.AppendOutNeighbors(outs[v][:0], v)
		row := sim.Row(v)
		if cap(slot[v]) < len(outs[v]) {
			slot[v] = make([]int, len(outs[v]))
		}
		slot[v] = slot[v][:len(outs[v])]
		k := 0
		for i, u := range outs[v] {
			for k < len(row) && int(row[k]) != u {
				k++
			}
			if k == len(row) {
				return fmt.Errorf("core: internal: outgoing neighbor %d of %d missing from adjacency", u, v)
			}
			slot[v][i] = k
		}
	}
	for v := 0; v < n; v++ {
		obs[v].Reset(outs[v], window)
	}
	e.prepareCounterfactuals(window)
	return nil
}

// finishRound runs everything after a round's broadcast phase: observation
// tampering, the synchronous selector update, the round counter, observer
// telemetry, and dynamics. blocks is the block count recorded in the
// report (the timed driver's rounds have variable batch sizes).
func (e *Engine) finishRound(obs []Observations, blocks int) (RoundReport, error) {
	n := e.table.N()
	// Adversarial observation tampering runs between measurement and
	// decision: whatever the tamper hook writes is what the selectors see.
	if e.tamper != nil {
		for v := 0; v < n; v++ {
			e.tamper(v, obs[v].Neighbors, obs[v].Offsets)
		}
	}
	// Counterfactuals scheduled by the previous round's decisions are
	// evaluated against this round's (post-tamper) observations — the same
	// data the selectors are about to see — and streamed before this
	// round's decision records.
	if len(e.scratch.cfPending) > 0 {
		e.emitCounterfactuals(obs)
	}

	var ev *RoundEvent
	if e.observer != nil {
		ev = &RoundEvent{}
	}
	report, err := e.update(obs, ev)
	if err != nil {
		return RoundReport{}, err
	}
	e.round++
	report.Round = e.round
	report.Blocks = blocks
	if ev != nil {
		ev.Report = report
		e.observer.ObserveRound(*ev)
	}
	if e.dynamics != nil {
		if err := e.dynamics.AfterRound(e, e.round); err != nil {
			return RoundReport{}, fmt.Errorf("core: dynamics after round %d: %w", e.round, err)
		}
	}
	return report, nil
}

// harvestObservations folds one broadcast result into the per-node
// observation matrices as block row b: each node's offsets are its outgoing
// neighbors' arrival times relative to the node's earliest announcement.
// Rows are per-block, so concurrent calls for distinct b never race.
func harvestObservations(res netsim.Result, b int, obs []Observations, outs, slot [][]int) {
	for v := range obs {
		row := res.EdgeArrival[v]
		if len(row) == 0 {
			continue
		}
		tMin := stats.InfDuration
		for _, t := range row {
			if t < tMin {
				tMin = t
			}
		}
		if tMin == stats.InfDuration {
			continue // nothing heard; offsets stay censored
		}
		dst := obs[v].Offsets[b]
		for i := range outs[v] {
			if t := row[slot[v][i]]; t != stats.InfDuration {
				dst[i] = t - tMin
			}
		}
	}
}

// update applies the selector's neighbor update synchronously at all
// nodes: first every node's decision is computed, then all drops happen,
// then all exploration connections are established in random node order.
// The decide phase is pure per node (it reads only obs[v] plus any state
// the selector keys by node), so it fans out over the worker pool; the
// table mutations and RNG-driven exploration stay sequential. When ev is
// non-nil the exact dropped/added edges are recorded into it for the
// observer.
func (e *Engine) update(obs []Observations, ev *RoundEvent) (RoundReport, error) {
	n := e.table.N()
	var report RoundReport
	if cap(e.scratch.decisions) < n {
		e.scratch.decisions = make([]Decision, n)
	}
	decisions := e.scratch.decisions[:n]
	e.scratch.decisions = decisions
	for i := range decisions {
		decisions[i] = Decision{}
	}
	roundRand := e.selRand.DeriveIndexed("round", e.round+1)
	err := parallel.ForEachIndexed(n, e.workerCount(n), func(_, v int) error {
		if e.frozen != nil && e.frozen[v] {
			return nil
		}
		d, err := Decide(e.selector, NeighborView{
			Node:       v,
			OutDegree:  e.params.OutDegree,
			Candidates: n - 1,
			Obs:        obs[v],
			Rand:       roundRand.DeriveIndexed("node", v),
		})
		if err != nil {
			return err
		}
		decisions[v] = d
		return nil
	})
	if err != nil {
		return report, err
	}
	if e.tracing() {
		e.emitDecisions(obs, decisions)
	}
	for v := 0; v < n; v++ {
		for _, i := range decisions[v].Drop {
			u := obs[v].Neighbors[i]
			if err := e.table.Disconnect(v, u); err != nil {
				return report, fmt.Errorf("core: dropping %d->%d: %w", v, u, err)
			}
			report.Dropped++
			if ev != nil {
				ev.Dropped = append(ev.Dropped, [2]int{v, u})
			}
		}
	}
	// Exploration: spend each node's dial budget in random node order so
	// no node is systematically advantaged in the race for incoming slots.
	var record *[][2]int
	if ev != nil {
		record = &ev.Added
	}
	for _, v := range e.rand.Perm(n) {
		if e.frozen != nil && e.frozen[v] {
			continue
		}
		added, unfilled := e.explore(v, e.table.OutDegree(v)+decisions[v].Dial, record)
		report.Added += added
		report.Unfilled += unfilled
	}
	return report, nil
}

// explore connects v to random fresh peers until it has target outgoing
// connections, honoring incoming caps. When record is non-nil, every
// established edge (v, cand) is appended to it.
func (e *Engine) explore(v, target int, record *[][2]int) (added, unfilled int) {
	n := e.table.N()
	attempts := 0
	for e.table.OutDegree(v) < target {
		if attempts >= e.params.MaxDialAttempts {
			unfilled = target - e.table.OutDegree(v)
			return added, unfilled
		}
		attempts++
		cand := e.rand.IntN(n)
		if cand == v || e.table.HasOut(v, cand) {
			continue
		}
		if err := e.table.Connect(v, cand); err != nil {
			continue // incoming full — try another candidate
		}
		added++
		if record != nil {
			*record = append(*record, [2]int{v, cand})
		}
	}
	return added, 0
}

// Run executes rounds protocol rounds, returning the last report.
func (e *Engine) Run(rounds int) (RoundReport, error) {
	if rounds <= 0 {
		return RoundReport{}, errors.New("core: round count must be positive")
	}
	var last RoundReport
	for i := 0; i < rounds; i++ {
		r, err := e.Step()
		if err != nil {
			return last, err
		}
		last = r
	}
	return last, nil
}

// Delays computes the paper's metric λ_v (§2.2) for each source in sources
// (all nodes when nil): the time for a block mined by v to reach nodes
// holding at least frac of the total hash power, on the current topology.
// With upload serialization configured, the event simulation is used
// instead of the analytic pass. Sources are evaluated in parallel on the
// engine's worker pool; the output is indexed by source, so it is
// independent of worker count.
func (e *Engine) Delays(frac float64, sources []int) ([]time.Duration, error) {
	sim, err := e.ensureSim()
	if err != nil {
		return nil, err
	}
	if sources == nil {
		sources = allNodes(e.table.N())
	}
	workers := e.workerCount(len(sources))
	e.prepareArrival(sim, workers)
	out := make([]time.Duration, len(sources))
	err = parallel.ForEachIndexed(len(sources), workers, func(worker, i int) error {
		arrival, err := e.arrivalFor(sim, worker, sources[i])
		if err != nil {
			return err
		}
		out[i], err = netsim.DelayToFraction(arrival, e.power, frac)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// prepareArrival sizes the per-worker scratch arrivalFor draws on: arrival
// buffers for the analytic pass, or Broadcasters when uploads are
// serialized.
func (e *Engine) prepareArrival(sim *netsim.Simulator, workers int) {
	if e.sendInterval == nil {
		e.arrivalBuffers(workers)
		return
	}
	e.broadcasters(sim, workers)
}

// arrivalFor computes the arrival vector of one source on the shared
// simulator: the pooled analytic pass into a reusable per-worker buffer, or
// the event simulation through the per-worker Broadcaster when uploads are
// serialized. The returned slice is per-worker scratch, valid until the
// worker's next call.
func (e *Engine) arrivalFor(sim *netsim.Simulator, worker, src int) ([]time.Duration, error) {
	if e.sendInterval == nil {
		arrival, err := sim.ArrivalAnalyticInto(e.scratch.arrivals[worker], src)
		if err != nil {
			return nil, err
		}
		e.scratch.arrivals[worker] = arrival
		return arrival, nil
	}
	res, err := e.scratch.bcs[worker].Broadcast(src)
	if err != nil {
		return nil, err
	}
	return res.Arrival, nil
}

// ReceiveDelays computes the complementary metric: for each node v, the
// mean time for v to receive blocks mined by the given sources. This is
// what a free-riding node cares about — the incentive experiments compare
// it between honest and silent nodes. Sources fan out over the worker
// pool; each worker accumulates into private sums that are merged in
// worker order (duration addition is exact integer math, so the merge is
// independent of scheduling).
func (e *Engine) ReceiveDelays(sources []int) ([]time.Duration, error) {
	sim, err := e.ensureSim()
	if err != nil {
		return nil, err
	}
	if sources == nil {
		sources = allNodes(e.table.N())
	}
	n := e.table.N()
	workers := e.workerCount(len(sources))
	e.prepareArrival(sim, workers)
	partialSums := make([][]time.Duration, workers)
	partialCensored := make([][]bool, workers)
	for w := 0; w < workers; w++ {
		partialSums[w] = make([]time.Duration, n)
		partialCensored[w] = make([]bool, n)
	}
	err = parallel.ForEachIndexed(len(sources), workers, func(worker, i int) error {
		arrival, err := e.arrivalFor(sim, worker, sources[i])
		if err != nil {
			return err
		}
		sums, censored := partialSums[worker], partialCensored[worker]
		for v := 0; v < n; v++ {
			if arrival[v] == stats.InfDuration {
				censored[v] = true
				continue
			}
			sums[v] += arrival[v]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]time.Duration, n)
	censored := make([]bool, n)
	for w := 0; w < workers; w++ {
		for v := 0; v < n; v++ {
			sums[v] += partialSums[w][v]
			censored[v] = censored[v] || partialCensored[w][v]
		}
	}
	out := make([]time.Duration, n)
	for v := 0; v < n; v++ {
		if censored[v] {
			out[v] = stats.InfDuration
			continue
		}
		out[v] = sums[v] / time.Duration(len(sources))
	}
	return out, nil
}

// Churn resets the given nodes as if they left and were replaced by fresh
// peers at the same index: all their connections (both directions) are
// torn down, any accumulated scoring history is forgotten, and the fresh
// node immediately dials OutDegree random peers. Neighbors that lose an
// outgoing connection refill it during their next round's exploration,
// matching how a real node only reacts to a disconnect when it next
// updates.
func (e *Engine) Churn(nodes []int) error {
	n := e.table.N()
	for _, v := range nodes {
		if v < 0 || v >= n {
			return fmt.Errorf("core: churn node %d out of range (n=%d)", v, n)
		}
	}
	resetter, _ := e.selector.(NodeStateResetter)
	for _, v := range nodes {
		for _, u := range e.table.OutNeighbors(v) {
			if err := e.table.Disconnect(v, u); err != nil {
				return fmt.Errorf("core: churn dropping %d->%d: %w", v, u, err)
			}
		}
		for _, u := range e.table.InNeighbors(v) {
			if err := e.table.Disconnect(u, v); err != nil {
				return fmt.Errorf("core: churn dropping %d->%d: %w", u, v, err)
			}
		}
		// The fresh peer at index v starts with no accumulated scoring
		// state. In-neighbor histories for v age out on their own: v is no
		// longer in their next view, so stateful selectors forget it.
		if resetter != nil {
			resetter.ResetNodeState(v)
		}
	}
	// Fresh nodes bootstrap with random outgoing connections.
	for _, v := range nodes {
		if e.frozen != nil && e.frozen[v] {
			continue
		}
		e.explore(v, e.params.OutDegree, nil)
	}
	return nil
}
