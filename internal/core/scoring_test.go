package core

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/perigee-net/perigee/internal/stats"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestMethodString(t *testing.T) {
	if Vanilla.String() != "Perigee-Vanilla" || UCB.String() != "Perigee-UCB" || Subset.String() != "Perigee-Subset" {
		t.Fatal("method names changed")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatalf("got %q", Method(9).String())
	}
	if Method(9).Valid() || Method(-1).Valid() {
		t.Fatal("invalid methods reported valid")
	}
}

func TestNewObservations(t *testing.T) {
	o := NewObservations([]int{3, 7}, 4)
	if len(o.Offsets) != 4 {
		t.Fatalf("blocks = %d", len(o.Offsets))
	}
	for _, row := range o.Offsets {
		if len(row) != 2 {
			t.Fatalf("row width = %d", len(row))
		}
		for _, v := range row {
			if v != stats.InfDuration {
				t.Fatal("offsets should start censored")
			}
		}
	}
}

func TestVanillaScoresPrefersFasterNeighbor(t *testing.T) {
	o := NewObservations([]int{10, 20}, 10)
	for b := 0; b < 10; b++ {
		o.Offsets[b][0] = ms(5)  // always 5ms behind the best
		o.Offsets[b][1] = ms(50) // always 50ms behind
	}
	scores := VanillaScores(o, 0.9)
	if scores[0] >= scores[1] {
		t.Fatalf("faster neighbor scored worse: %v vs %v", scores[0], scores[1])
	}
	ranked := RankByScore(o, scores)
	if ranked[0] != 0 {
		t.Fatalf("rank order %v, want fastest first", ranked)
	}
}

func TestVanillaScoresCensoredWorst(t *testing.T) {
	o := NewObservations([]int{1, 2}, 5)
	for b := 0; b < 5; b++ {
		o.Offsets[b][0] = ms(100) // slow but delivers
		// neighbor 1 never delivers: stays InfDuration
	}
	scores := VanillaScores(o, 0.9)
	if scores[1] != stats.InfDuration {
		t.Fatalf("non-delivering neighbor score = %v, want InfDuration", scores[1])
	}
	if scores[0] >= scores[1] {
		t.Fatal("delivering neighbor must outrank silent one")
	}
}

func TestRankByScoreTieBreak(t *testing.T) {
	o := NewObservations([]int{42, 7}, 1)
	scores := []time.Duration{ms(5), ms(5)}
	ranked := RankByScore(o, scores)
	// Equal scores: lower node ID (7, at index 1) first.
	if ranked[0] != 1 || ranked[1] != 0 {
		t.Fatalf("tie-break wrong: %v", ranked)
	}
}

func TestSubsetSelectComplementarity(t *testing.T) {
	// Three neighbors, 10 blocks. A has the best raw percentile so the
	// greedy picks it first (fast for blocks 0-4, 40ms otherwise). B
	// complements A: fast exactly where A is slow, but its raw percentile
	// (100ms) is the worst of the three. C is uniformly mediocre (45ms).
	// Vanilla would keep {A, C}; the joint transform must keep {A, B}.
	o := NewObservations([]int{0, 1, 2}, 10)
	for b := 0; b < 10; b++ {
		if b < 5 {
			o.Offsets[b][0] = ms(1)
			o.Offsets[b][1] = ms(100)
		} else {
			o.Offsets[b][0] = ms(40)
			o.Offsets[b][1] = ms(2)
		}
		o.Offsets[b][2] = ms(45)
	}
	scores := VanillaScores(o, 0.9)
	if !(scores[0] < scores[2] && scores[2] < scores[1]) {
		t.Fatalf("test setup broken: want A < C < B individually, got %v", scores)
	}
	ranked := RankByScore(o, scores)
	if ranked[0] != 0 || ranked[1] != 2 {
		t.Fatalf("vanilla would keep %v, setup expects [0 2 ...]", ranked)
	}
	chosen := SubsetSelect(o, 2, 0.9)
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 1 {
		t.Fatalf("subset chose %v, want [0 1] (complementary pair)", chosen)
	}
}

func TestSubsetSelectDegenerate(t *testing.T) {
	o := NewObservations([]int{5, 6, 7}, 3)
	if got := SubsetSelect(o, 5, 0.9); len(got) != 3 {
		t.Fatalf("retain > k should return all: %v", got)
	}
	if got := SubsetSelect(o, 0, 0.9); got != nil {
		t.Fatalf("retain 0 should return nil: %v", got)
	}
}

func TestSubsetSelectTieBreaksOnIndividualScore(t *testing.T) {
	// Neighbor 0 delivers first on every block, so after it is chosen the
	// joint transform zeroes out everyone else — a full tie. The fast
	// neighbor 2 must win the tie over the never-delivering neighbor 1
	// even though neighbor 1 has the lower ID.
	o := NewObservations([]int{10, 20, 30}, 6)
	for b := 0; b < 6; b++ {
		o.Offsets[b][0] = 0      // always first
		o.Offsets[b][2] = ms(15) // fast but redundant
		// neighbor index 1 (ID 20) never delivers: stays censored
	}
	chosen := SubsetSelect(o, 2, 0.9)
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 2 {
		t.Fatalf("subset chose %v, want [0 2]: ties must break on individual score", chosen)
	}
}

func TestSubsetSelectFirstPickIsVanillaBest(t *testing.T) {
	o := NewObservations([]int{0, 1, 2}, 4)
	for b := 0; b < 4; b++ {
		o.Offsets[b][0] = ms(30)
		o.Offsets[b][1] = ms(10)
		o.Offsets[b][2] = ms(20)
	}
	chosen := SubsetSelect(o, 1, 0.9)
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("first pick %v, want [1]", chosen)
	}
}

// Property: SubsetSelect returns exactly min(retain, k) distinct, sorted,
// in-range indices for arbitrary observation matrices.
func TestSubsetSelectProperty(t *testing.T) {
	check := func(raw []uint16, kRaw, retainRaw uint8) bool {
		k := int(kRaw%6) + 1
		retain := int(retainRaw % 8)
		blocks := 3
		nbrs := make([]int, k)
		for i := range nbrs {
			nbrs[i] = i * 10
		}
		o := NewObservations(nbrs, blocks)
		pos := 0
		for b := 0; b < blocks; b++ {
			for i := 0; i < k; i++ {
				if pos < len(raw) {
					o.Offsets[b][i] = time.Duration(raw[pos]) * time.Microsecond
					pos++
				}
			}
		}
		chosen := SubsetSelect(o, retain, 0.9)
		want := retain
		if k < want {
			want = k
		}
		if len(chosen) != want {
			return false
		}
		for i, c := range chosen {
			if c < 0 || c >= k {
				return false
			}
			if i > 0 && chosen[i-1] >= c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUCBBounds(t *testing.T) {
	samples := []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50)}
	lcb, ucb := UCBBounds(samples, 0.9, ms(100))
	if lcb > ucb {
		t.Fatalf("lcb %v above ucb %v", lcb, ucb)
	}
	est := stats.DurationPercentile(samples, 0.9)
	if !(lcb <= est && est <= ucb) {
		t.Fatalf("estimate %v outside [%v, %v]", est, lcb, ucb)
	}
	if lcb < 0 {
		t.Fatal("lcb clamped below zero")
	}
}

func TestUCBBoundsSingleSampleHasZeroBonus(t *testing.T) {
	lcb, ucb := UCBBounds([]time.Duration{ms(25)}, 0.9, ms(100))
	if lcb != ms(25) || ucb != ms(25) {
		t.Fatalf("log(1)=0 should give zero bonus, got [%v, %v]", lcb, ucb)
	}
}

func TestUCBBoundsShrinkWithSamples(t *testing.T) {
	// More samples of the same distribution narrow the interval.
	small := make([]time.Duration, 5)
	large := make([]time.Duration, 500)
	for i := range small {
		small[i] = ms(10)
	}
	for i := range large {
		large[i] = ms(10)
	}
	l1, u1 := UCBBounds(small, 0.9, ms(100))
	l2, u2 := UCBBounds(large, 0.9, ms(100))
	if (u1 - l1) <= (u2 - l2) {
		t.Fatalf("interval did not shrink: small=%v large=%v", u1-l1, u2-l2)
	}
}

func TestUCBBoundsEmpty(t *testing.T) {
	lcb, ucb := UCBBounds(nil, 0.9, ms(100))
	if lcb != stats.InfDuration || ucb != stats.InfDuration {
		t.Fatalf("empty samples should be (Inf, Inf), got (%v, %v)", lcb, ucb)
	}
}

func TestUCBEvict(t *testing.T) {
	// Neighbor 2's lcb (90) is above neighbor 0's ucb (50): evict 2.
	lcbs := []time.Duration{ms(10), ms(40), ms(90)}
	ucbs := []time.Duration{ms(50), ms(80), ms(130)}
	if got := UCBEvict(lcbs, ucbs); got != 2 {
		t.Fatalf("evict = %d, want 2", got)
	}
}

func TestUCBEvictNoSeparation(t *testing.T) {
	// Overlapping intervals: keep everyone.
	lcbs := []time.Duration{ms(10), ms(20)}
	ucbs := []time.Duration{ms(50), ms(60)}
	if got := UCBEvict(lcbs, ucbs); got != -1 {
		t.Fatalf("evict = %d, want -1", got)
	}
}

func TestUCBEvictDegenerate(t *testing.T) {
	if UCBEvict(nil, nil) != -1 {
		t.Fatal("empty inputs must not evict")
	}
	if UCBEvict([]time.Duration{1}, []time.Duration{1, 2}) != -1 {
		t.Fatal("mismatched inputs must not evict")
	}
}

func TestUCBEvictSilentNeighbor(t *testing.T) {
	// A neighbor with no samples has (Inf, Inf) bounds and gets evicted as
	// soon as any other neighbor has a finite ucb.
	lcbs := []time.Duration{ms(10), stats.InfDuration}
	ucbs := []time.Duration{ms(50), stats.InfDuration}
	if got := UCBEvict(lcbs, ucbs); got != 1 {
		t.Fatalf("evict = %d, want silent neighbor 1", got)
	}
}
