package core

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/stats"
)

// A timed round fed the exact sources Step would have sampled must produce
// the same report and the same resulting topology — the equivalence the
// continuous-time workload engine's selector fidelity rests on.
func TestTimedRoundMatchesStep(t *testing.T) {
	for _, m := range []Method{Subset, Vanilla, UCB} {
		params := DefaultParams(m)
		params.RoundBlocks = 20

		tnA := newTestNetwork(t, 80, 42)
		engA, err := NewEngine(tnA.config(m, params))
		if err != nil {
			t.Fatal(err)
		}
		tnB := newTestNetwork(t, 80, 42)
		engB, err := NewEngine(tnB.config(m, params))
		if err != nil {
			t.Fatal(err)
		}

		for round := 0; round < 3; round++ {
			repA, err := engA.Step()
			if err != nil {
				t.Fatal(err)
			}
			// Draw the sources exactly as Step does, on the same stream.
			sources := make([]int, params.RoundBlocks)
			for b := range sources {
				sources[b] = engB.sampler.Sample(engB.rand)
			}
			tr, err := BeginTimedRound(engB, params.RoundBlocks)
			if err != nil {
				t.Fatal(err)
			}
			arrivals := make([][]time.Duration, params.RoundBlocks)
			if err := tr.BroadcastAll(sources, arrivals); err != nil {
				t.Fatal(err)
			}
			repB, err := tr.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if repA != repB {
				t.Fatalf("method %v round %d: Step %+v != timed %+v", m, round, repA, repB)
			}
			for b, src := range sources {
				if arrivals[b][src] != 0 {
					t.Fatalf("block %d: source arrival %v, want 0", b, arrivals[b][src])
				}
			}
		}
		adjA, adjB := engA.Adjacency(), engB.Adjacency()
		for v := range adjA {
			if len(adjA[v]) != len(adjB[v]) {
				t.Fatalf("method %v: node %d degree diverged", m, v)
			}
			for i := range adjA[v] {
				if adjA[v][i] != adjB[v][i] {
					t.Fatalf("method %v: node %d adjacency diverged", m, v)
				}
			}
		}
	}
}

// The observation window applies to timed rounds exactly as to Step: early
// blocks propagate (arrivals are filled) but stay invisible to the selector.
func TestTimedRoundObservationWindow(t *testing.T) {
	params := DefaultParams(Subset)
	params.RoundBlocks = 16

	tnA := newTestNetwork(t, 60, 7)
	cfgA := tnA.config(Subset, params)
	cfgA.ObservationWindow = 4
	engA, err := NewEngine(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	tnB := newTestNetwork(t, 60, 7)
	cfgB := tnB.config(Subset, params)
	cfgB.ObservationWindow = 4
	engB, err := NewEngine(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	repA, err := engA.Step()
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]int, params.RoundBlocks)
	for b := range sources {
		sources[b] = engB.sampler.Sample(engB.rand)
	}
	tr, err := BeginTimedRound(engB, params.RoundBlocks)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([][]time.Duration, params.RoundBlocks)
	if err := tr.BroadcastAll(sources, arrivals); err != nil {
		t.Fatal(err)
	}
	repB, err := tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if repA != repB {
		t.Fatalf("windowed: Step %+v != timed %+v", repA, repB)
	}
	// Unlike Step (which skips pre-window broadcasts entirely), the timed
	// driver still propagates every block for the workload's benefit.
	for b := range arrivals {
		if len(arrivals[b]) != engB.N() {
			t.Fatalf("block %d arrivals not filled", b)
		}
		reached := 0
		for _, at := range arrivals[b] {
			if at < stats.InfDuration {
				reached++
			}
		}
		if reached < engB.N()/2 {
			t.Fatalf("block %d reached only %d nodes", b, reached)
		}
	}
}

func TestTimedRoundErrors(t *testing.T) {
	tn := newTestNetwork(t, 40, 3)
	eng, err := NewEngine(tn.config(Subset, DefaultParams(Subset)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BeginTimedRound(eng, 0); err == nil {
		t.Fatal("accepted zero blocks")
	}
	tr, err := BeginTimedRound(eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BroadcastAll([]int{1}, nil); err == nil {
		t.Fatal("accepted wrong source count")
	}
	if err := tr.BroadcastAll([]int{1, 99}, nil); err == nil {
		t.Fatal("accepted out-of-range source")
	}
	if err := tr.BroadcastAll([]int{1, 2}, make([][]time.Duration, 1)); err == nil {
		t.Fatal("accepted wrong arrival buffer count")
	}
	if err := tr.BroadcastAll([]int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.BroadcastAll([]int{1, 2}, nil); err == nil {
		t.Fatal("accepted double broadcast")
	}
	if _, err := tr.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Finish(); err == nil {
		t.Fatal("accepted double finish")
	}
	if err := tr.BroadcastAll([]int{1, 2}, nil); err == nil {
		t.Fatal("accepted broadcast after finish")
	}
}
