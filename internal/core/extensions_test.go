package core

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/stats"
)

func TestChurnResetsNodeState(t *testing.T) {
	tn := newTestNetwork(t, 40, 21)
	params := DefaultParams(Subset)
	params.RoundBlocks = 5
	e, err := NewEngine(tn.config(Subset, params))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	churned := []int{3, 17}
	beforeIn := map[int][]int{}
	for _, v := range churned {
		beforeIn[v] = e.Table().InNeighbors(v)
	}
	if err := e.Churn(churned); err != nil {
		t.Fatal(err)
	}
	if err := e.Table().Validate(); err != nil {
		t.Fatal(err)
	}
	churnedSet := map[int]bool{}
	for _, v := range churned {
		churnedSet[v] = true
	}
	for _, v := range churned {
		// Fresh node redialed its full outgoing quota.
		if got := e.Table().OutDegree(v); got != 8 {
			t.Fatalf("churned node %d out-degree %d, want 8", v, got)
		}
		// All pre-churn incoming connections are gone; only other fresh
		// nodes (which redial inside the same Churn call) may have dialed
		// in already.
		for _, u := range e.Table().InNeighbors(v) {
			if !churnedSet[u] {
				t.Fatalf("churned node %d retains incoming connection from old neighbor %d", v, u)
			}
		}
	}
	// The network keeps functioning: neighbors refill next round.
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < e.N(); v++ {
		if got := e.Table().OutDegree(v); got != 8 {
			t.Fatalf("node %d out-degree %d after post-churn round", v, got)
		}
	}
}

func TestChurnValidatesRange(t *testing.T) {
	tn := newTestNetwork(t, 30, 22)
	e, err := NewEngine(tn.config(Vanilla, func() Params {
		p := DefaultParams(Vanilla)
		p.RoundBlocks = 2
		return p
	}()))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Churn([]int{-1}); err == nil {
		t.Fatal("expected error for negative node")
	}
	if err := e.Churn([]int{99}); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
}

func TestChurnClearsUCBHistory(t *testing.T) {
	tn := newTestNetwork(t, 30, 23)
	e, err := NewEngine(tn.config(UCB, DefaultParams(UCB)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := e.Churn([]int{5}); err != nil {
		t.Fatal(err)
	}
	sel, ok := e.selector.(*ucbSelector)
	if !ok {
		t.Fatalf("UCB engine runs selector %T", e.selector)
	}
	sel.mu.Lock()
	kept := len(sel.hist[5])
	sel.mu.Unlock()
	if kept != 0 {
		t.Fatalf("churned node retains %d histories", kept)
	}
	// Histories that in-neighbors held for node 5 age out at their next
	// decision (5 is no longer in their view): after one round, every
	// history entry must belong to a live outgoing connection.
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	sel.mu.Lock()
	defer sel.mu.Unlock()
	for v := 0; v < e.N(); v++ {
		for u := range sel.hist[v] {
			if !e.Table().HasOut(v, u) {
				t.Fatalf("node %d retains history for non-neighbor %d", v, u)
			}
		}
	}
}

func TestSilentNodesInEngine(t *testing.T) {
	tn := newTestNetwork(t, 50, 24)
	cfg := tn.config(Subset, func() Params {
		p := DefaultParams(Subset)
		p.RoundBlocks = 10
		return p
	}())
	silent := make([]bool, 50)
	silent[9] = true
	cfg.Silent = silent
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	delays, err := e.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range delays {
		if d == stats.InfDuration {
			t.Fatalf("node %d unreachable with one silent node", v)
		}
	}
}

func TestSilentMaskValidation(t *testing.T) {
	tn := newTestNetwork(t, 30, 25)
	cfg := tn.config(Subset, Params{})
	cfg.Silent = make([]bool, 3)
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error for wrong-length silent mask")
	}
}

func TestSendIntervalEngineUsesEventSim(t *testing.T) {
	tn := newTestNetwork(t, 40, 26)
	cfg := tn.config(Subset, func() Params {
		p := DefaultParams(Subset)
		p.RoundBlocks = 5
		return p
	}())
	si := make([]time.Duration, 40)
	for i := range si {
		si[i] = 2 * time.Millisecond
	}
	cfg.SendInterval = si
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	delays, err := e.Delays(0.9, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 2 || delays[0] <= 0 {
		t.Fatalf("event-sim delays broken: %v", delays)
	}
}

func TestSendIntervalValidation(t *testing.T) {
	tn := newTestNetwork(t, 30, 27)
	cfg := tn.config(Subset, Params{})
	cfg.SendInterval = make([]time.Duration, 2)
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error for wrong-length send intervals")
	}
}

func TestReceiveDelays(t *testing.T) {
	tn := newTestNetwork(t, 50, 28)
	e, err := NewEngine(tn.config(Subset, func() Params {
		p := DefaultParams(Subset)
		p.RoundBlocks = 5
		return p
	}()))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := e.ReceiveDelays([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recv) != 50 {
		t.Fatalf("got %d receive delays", len(recv))
	}
	// Sources themselves have small (but nonzero, averaged) delays; every
	// node must be finite in a connected graph.
	for v, d := range recv {
		if d == stats.InfDuration {
			t.Fatalf("node %d unreachable", v)
		}
		if d < 0 {
			t.Fatalf("node %d negative receive delay %v", v, d)
		}
	}
	// A node's mean receive delay from itself included: source 0's own
	// arrival is 0 for its block, so its mean is below the max.
	if recv[0] >= recv[49] && recv[0] >= recv[25] {
		// Not a strict invariant, but sources should be on the fast side;
		// only fail when it is egregiously wrong.
		t.Logf("note: source receive delay %v vs others %v/%v", recv[0], recv[25], recv[49])
	}
}

func TestReceiveDelaysWithSilentNodes(t *testing.T) {
	tn := newTestNetwork(t, 60, 29)
	cfg := tn.config(Subset, func() Params {
		p := DefaultParams(Subset)
		p.RoundBlocks = 10
		return p
	}())
	silent := make([]bool, 60)
	silent[5] = true
	silent[6] = true
	cfg.Silent = silent
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(4); err != nil {
		t.Fatal(err)
	}
	var honest []int
	for v := 0; v < 60; v++ {
		if !silent[v] {
			honest = append(honest, v)
		}
	}
	recv, err := e.ReceiveDelays(honest)
	if err != nil {
		t.Fatal(err)
	}
	var honestSum, silentSum time.Duration
	var honestN, silentN int
	for v, d := range recv {
		if d == stats.InfDuration {
			continue
		}
		if silent[v] {
			silentSum += d
			silentN++
		} else {
			honestSum += d
			honestN++
		}
	}
	if silentN == 0 || honestN == 0 {
		t.Fatal("missing data")
	}
	t.Logf("mean receive: honest %v, silent %v",
		honestSum/time.Duration(honestN), silentSum/time.Duration(silentN))
}
