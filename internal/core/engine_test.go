package core

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
)

// testNetwork bundles a small geographic network for engine tests.
type testNetwork struct {
	table   *topology.Table
	lat     latency.Model
	forward []time.Duration
	power   []float64
	root    *rng.RNG
}

func newTestNetwork(t *testing.T, n int, seed uint64) *testNetwork {
	t.Helper()
	root := rng.New(seed)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		t.Fatal(err)
	}
	lat, err := latency.NewGeographic(u, root.Derive("latency"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, root.Derive("topology"))
	if err != nil {
		t.Fatal(err)
	}
	forward := make([]time.Duration, n)
	fr := root.Derive("forward")
	for i := range forward {
		forward[i] = time.Duration(fr.ExpFloat64() * float64(50*time.Millisecond))
	}
	power, err := hashpower.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	return &testNetwork{table: tbl, lat: lat, forward: forward, power: power, root: root}
}

func (tn *testNetwork) config(m Method, params Params) Config {
	return Config{
		Method:  m,
		Params:  params,
		Table:   tn.table,
		Latency: tn.lat,
		Forward: tn.forward,
		Power:   tn.power,
		Rand:    tn.root.Derive("engine"),
	}
}

func TestNewEngineValidation(t *testing.T) {
	tn := newTestNetwork(t, 50, 1)
	good := tn.config(Subset, Params{})
	if _, err := NewEngine(good); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"invalid method", func(c Config) Config { c.Method = Method(9); return c }},
		{"nil table", func(c Config) Config { c.Table = nil; return c }},
		{"nil latency", func(c Config) Config { c.Latency = nil; return c }},
		{"forward mismatch", func(c Config) Config { c.Forward = c.Forward[:10]; return c }},
		{"power mismatch", func(c Config) Config { c.Power = c.Power[:10]; return c }},
		{"frozen mismatch", func(c Config) Config { c.Frozen = make([]bool, 3); return c }},
		{"nil rng", func(c Config) Config { c.Rand = nil; return c }},
		{"bad percentile", func(c Config) Config {
			p := DefaultParams(Subset)
			p.Percentile = 1.5
			c.Params = p
			return c
		}},
		{"explore above degree", func(c Config) Config {
			p := DefaultParams(Subset)
			p.Explore = 99
			c.Params = p
			return c
		}},
		{"degree above n", func(c Config) Config {
			p := DefaultParams(Subset)
			p.OutDegree = 60
			c.Params = p
			return c
		}},
		{"zero round blocks", func(c Config) Config {
			p := DefaultParams(Subset)
			p.RoundBlocks = 0
			c.Params = p
			return c
		}},
		{"negative ucb constant", func(c Config) Config {
			p := DefaultParams(UCB)
			p.UCBConstant = -1
			c.Params = p
			return c
		}},
		{"zero dial attempts", func(c Config) Config {
			p := DefaultParams(Subset)
			p.MaxDialAttempts = 0
			c.Params = p
			return c
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEngine(tc.mutate(good)); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(Subset)
	if p.OutDegree != 8 || p.Explore != 2 || p.RoundBlocks != 100 || p.Percentile != 0.9 {
		t.Fatalf("subset defaults wrong: %+v", p)
	}
	u := DefaultParams(UCB)
	if u.RoundBlocks != 1 || u.Explore != 0 {
		t.Fatalf("UCB defaults wrong: %+v", u)
	}
}

func TestEngineDegreeInvariantsAcrossRounds(t *testing.T) {
	tn := newTestNetwork(t, 60, 2)
	params := DefaultParams(Subset)
	params.RoundBlocks = 20
	e, err := NewEngine(tn.config(Subset, params))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		rep, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Unfilled != 0 {
			t.Fatalf("round %d: %d unfilled slots", round, rep.Unfilled)
		}
		if err := e.Table().Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for v := 0; v < e.N(); v++ {
			if got := e.Table().OutDegree(v); got != 8 {
				t.Fatalf("round %d node %d out-degree %d, want 8", round, v, got)
			}
			if got := e.Table().InDegree(v); got > 20 {
				t.Fatalf("round %d node %d in-degree %d above cap", round, v, got)
			}
		}
	}
	if e.Round() != 5 {
		t.Fatalf("round counter = %d, want 5", e.Round())
	}
}

func TestEngineRoundReplacesExploreCount(t *testing.T) {
	tn := newTestNetwork(t, 60, 3)
	params := DefaultParams(Vanilla)
	params.RoundBlocks = 10
	e, err := NewEngine(tn.config(Vanilla, params))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Every node keeps 6 of 8 and explores 2: drops = adds = 2 per node.
	if rep.Dropped != 2*60 {
		t.Fatalf("dropped %d connections, want %d", rep.Dropped, 2*60)
	}
	if rep.Added != rep.Dropped {
		t.Fatalf("added %d != dropped %d", rep.Added, rep.Dropped)
	}
}

func TestEngineDeterministic(t *testing.T) {
	runOnce := func() [][]int {
		tn := newTestNetwork(t, 40, 11)
		params := DefaultParams(Subset)
		params.RoundBlocks = 10
		e, err := NewEngine(tn.config(Subset, params))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(3); err != nil {
			t.Fatal(err)
		}
		return e.Adjacency()
	}
	a := runOnce()
	b := runOnce()
	for v := range a {
		if len(a[v]) != len(b[v]) {
			t.Fatalf("node %d adjacency differs", v)
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatalf("node %d adjacency differs: %v vs %v", v, a[v], b[v])
			}
		}
	}
}

func TestEngineFrozenNodesKeepNeighbors(t *testing.T) {
	tn := newTestNetwork(t, 50, 4)
	frozen := make([]bool, 50)
	frozen[7] = true
	frozen[12] = true
	cfg := tn.config(Vanilla, Params{})
	cfg.Frozen = frozen
	before7 := tn.table.OutNeighbors(7)
	before12 := tn.table.OutNeighbors(12)
	params := DefaultParams(Vanilla)
	params.RoundBlocks = 5
	cfg.Params = params
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	after7 := e.Table().OutNeighbors(7)
	after12 := e.Table().OutNeighbors(12)
	if !equalInts(before7, after7) || !equalInts(before12, after12) {
		t.Fatal("frozen nodes changed their outgoing neighbors")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEngineUCBSwapsAtMostOnePerRound(t *testing.T) {
	tn := newTestNetwork(t, 50, 5)
	params := DefaultParams(UCB)
	e, err := NewEngine(tn.config(UCB, params))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		before := make(map[int][]int, 50)
		for v := 0; v < 50; v++ {
			before[v] = e.Table().OutNeighbors(v)
		}
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 50; v++ {
			after := e.Table().OutNeighbors(v)
			removed := diffCount(before[v], after)
			if removed > 1 {
				t.Fatalf("round %d: node %d dropped %d neighbors in one UCB round", round, v, removed)
			}
		}
	}
}

// diffCount counts elements of a missing from b.
func diffCount(a, b []int) int {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	missing := 0
	for _, x := range a {
		if !set[x] {
			missing++
		}
	}
	return missing
}

func TestEnginePinnedEdgesSurvive(t *testing.T) {
	tn := newTestNetwork(t, 40, 6)
	cfg := tn.config(Subset, func() Params {
		p := DefaultParams(Subset)
		p.RoundBlocks = 5
		return p
	}())
	cfg.Pinned = [][2]int{{0, 39}, {1, 38}}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	adj := e.Adjacency()
	if !containsInt(adj[0], 39) || !containsInt(adj[39], 0) {
		t.Fatal("pinned edge 0-39 missing from adjacency")
	}
	if !containsInt(adj[1], 38) {
		t.Fatal("pinned edge 1-38 missing from adjacency")
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestEngineDelaysMetric(t *testing.T) {
	tn := newTestNetwork(t, 60, 7)
	e, err := NewEngine(tn.config(Subset, func() Params {
		p := DefaultParams(Subset)
		p.RoundBlocks = 5
		return p
	}()))
	if err != nil {
		t.Fatal(err)
	}
	delays, err := e.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 60 {
		t.Fatalf("got %d delays, want 60", len(delays))
	}
	for v, d := range delays {
		if d <= 0 || d == stats.InfDuration {
			t.Fatalf("node %d has degenerate delay %v", v, d)
		}
	}
	// Delay to 50% is never above delay to 90%.
	half, err := e.Delays(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range delays {
		if half[v] > delays[v] {
			t.Fatalf("node %d: 50%% delay %v above 90%% delay %v", v, half[v], delays[v])
		}
	}
	// Subset of sources.
	some, err := e.Delays(0.9, []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0] != delays[3] || some[1] != delays[9] {
		t.Fatalf("subset sources mismatch: %v", some)
	}
}

// TestEngineImprovesPropagation is the core behavioral test: running
// Perigee-Subset must reduce the network-wide 90% propagation delay
// relative to the starting random topology.
func TestEngineImprovesPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence test")
	}
	tn := newTestNetwork(t, 150, 8)
	params := DefaultParams(Subset)
	params.RoundBlocks = 50
	e, err := NewEngine(tn.config(Subset, params))
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(12); err != nil {
		t.Fatal(err)
	}
	after, err := e.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	medBefore := stats.DurationPercentile(before, 0.5)
	medAfter := stats.DurationPercentile(after, 0.5)
	if medAfter >= medBefore {
		t.Fatalf("Perigee did not improve median delay: before %v, after %v", medBefore, medAfter)
	}
	improvement := 1 - float64(medAfter)/float64(medBefore)
	t.Logf("median 90%%-delay improved %.1f%% (%v -> %v)", improvement*100, medBefore, medAfter)
	if improvement < 0.05 {
		t.Fatalf("improvement %.2f%% suspiciously small", improvement*100)
	}
}

func TestRunValidation(t *testing.T) {
	tn := newTestNetwork(t, 30, 9)
	e, err := NewEngine(tn.config(Vanilla, func() Params {
		p := DefaultParams(Vanilla)
		p.RoundBlocks = 2
		return p
	}()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Fatal("expected error for zero rounds")
	}
	if _, err := e.Run(-3); err == nil {
		t.Fatal("expected error for negative rounds")
	}
}
