package core

import (
	"errors"
	"reflect"
	"testing"
)

// TestObserverReceivesRoundEvents checks that the engine streams one event
// per round with edge lists matching the report counts, from both Step and
// Run.
func TestObserverReceivesRoundEvents(t *testing.T) {
	var events []RoundEvent
	tn := newTestNetwork(t, 60, 3)
	cfg := tn.config(Subset, Params{})
	params := DefaultParams(Subset)
	params.RoundBlocks = 20
	cfg.Params = params
	cfg.Observer = ObserverFunc(func(ev RoundEvent) { events = append(events, ev) })
	engine, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Report.Round != i+1 {
			t.Fatalf("event %d has round %d", i, ev.Report.Round)
		}
		if len(ev.Dropped) != ev.Report.Dropped {
			t.Fatalf("round %d: %d dropped edges vs report count %d", ev.Report.Round, len(ev.Dropped), ev.Report.Dropped)
		}
		if len(ev.Added) != ev.Report.Added {
			t.Fatalf("round %d: %d added edges vs report count %d", ev.Report.Round, len(ev.Added), ev.Report.Added)
		}
	}
}

// TestObserverEventsDeterministicAcrossWorkers checks that the edge-level
// telemetry (not just the counts) is identical at any worker count.
func TestObserverEventsDeterministicAcrossWorkers(t *testing.T) {
	capture := func(workers int) []RoundEvent {
		var events []RoundEvent
		tn := newTestNetwork(t, 80, 17)
		cfg := tn.config(Subset, Params{})
		params := DefaultParams(Subset)
		params.RoundBlocks = 20
		cfg.Params = params
		cfg.Workers = workers
		cfg.Observer = ObserverFunc(func(ev RoundEvent) { events = append(events, ev) })
		engine, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Run(3); err != nil {
			t.Fatal(err)
		}
		return events
	}
	if !reflect.DeepEqual(capture(1), capture(8)) {
		t.Fatal("observer events diverge across worker counts")
	}
}

// TestDynamicsHook checks that dynamics run after every round, can mutate
// the network (churn), and abort the run on error.
func TestDynamicsHook(t *testing.T) {
	var rounds []int
	tn := newTestNetwork(t, 60, 5)
	cfg := tn.config(Subset, Params{})
	params := DefaultParams(Subset)
	params.RoundBlocks = 20
	cfg.Params = params
	churnRand := tn.root.Derive("dynamics")
	cfg.Dynamics = DynamicsFunc(func(e *Engine, round int) error {
		rounds = append(rounds, round)
		return e.Churn(churnRand.Perm(e.N())[:2])
	})
	engine, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(3); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2, 3}) {
		t.Fatalf("dynamics ran at rounds %v, want [1 2 3]", rounds)
	}
	if err := engine.Table().Validate(); err != nil {
		t.Fatalf("table invariants violated after churn dynamics: %v", err)
	}

	boom := errors.New("boom")
	tn2 := newTestNetwork(t, 60, 6)
	cfg2 := tn2.config(Subset, Params{})
	cfg2.Dynamics = DynamicsFunc(func(*Engine, int) error { return boom })
	engine2, err := NewEngine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine2.Step(); !errors.Is(err, boom) {
		t.Fatalf("dynamics error not propagated: %v", err)
	}
}
