package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
)

// NeighborView is the per-node, per-round input handed to a Selector: the
// raw block-arrival observations for the node's current outgoing neighbors
// plus the protocol context the decision may depend on. The same view
// shape is produced by both drivers of the decision loop — the simulation
// engine (Engine.Step) and the live TCP node (internal/p2p) — so one
// Selector runs unmodified in either environment.
type NeighborView struct {
	// Node is the driver-assigned stable key of the deciding node. The
	// simulator uses the node index; a live node uses the two's-complement
	// view of its 64-bit node ID. Stateful selectors key cross-round state
	// by it.
	Node int
	// OutDegree is the target number of outgoing connections.
	OutDegree int
	// Candidates is how many distinct peers the driver could dial beyond
	// the current neighbors (network size minus one in the simulator, the
	// address-book size on a live node). Informational.
	Candidates int
	// Obs holds the round's per-neighbor arrival offsets.
	Obs Observations
	// Rand is a deterministic random stream derived for this (node, round)
	// pair. Randomized selectors must draw from it — and only it — so runs
	// stay reproducible at any worker count.
	Rand *rng.RNG
}

// Decision is a Selector's verdict for one node and one round. Keep and
// Drop index into the view's Obs.Neighbors and must partition it: every
// neighbor index appears in exactly one of the two lists. Dial is the
// exploration budget — how many fresh connections the driver should
// attempt to establish.
type Decision struct {
	// Keep lists the neighbor indices to retain.
	Keep []int
	// Drop lists the neighbor indices to disconnect, in the order the
	// driver should report them.
	Drop []int
	// Dial is the number of new connections to attempt.
	Dial int
}

// Selector is the Perigee decision loop abstracted from its environment:
// observations in, keep/drop/dial decisions out (§4 of the paper). Drivers
// may invoke SelectNeighbors concurrently for distinct nodes, so stateful
// implementations must synchronize access to cross-round state (and key it
// by view.Node).
type Selector interface {
	SelectNeighbors(view NeighborView) (Decision, error)
}

// SelectorFunc adapts a plain function to the Selector interface.
type SelectorFunc func(view NeighborView) (Decision, error)

// SelectNeighbors implements Selector.
func (f SelectorFunc) SelectNeighbors(view NeighborView) (Decision, error) { return f(view) }

// NodeStateResetter is implemented by stateful selectors (such as UCB)
// that accumulate per-node history across rounds. Drivers call
// ResetNodeState when a node's identity is reset — e.g. churn replacing it
// with a fresh peer — so stale history cannot leak into the replacement.
type NodeStateResetter interface {
	ResetNodeState(node int)
}

// Decide runs the selector on the view and validates the decision: Keep
// and Drop must partition the neighbor indices, and Dial must be
// non-negative. Both drivers route every selector call through it.
func Decide(sel Selector, view NeighborView) (Decision, error) {
	d, err := sel.SelectNeighbors(view)
	if err != nil {
		return Decision{}, fmt.Errorf("core: selector for node %d: %w", view.Node, err)
	}
	if err := ValidateDecision(d, len(view.Obs.Neighbors)); err != nil {
		return Decision{}, fmt.Errorf("core: selector for node %d: %w", view.Node, err)
	}
	return d, nil
}

// ValidateDecision checks a decision against the neighbor count it was
// made for: every index in [0, neighbors) must appear exactly once across
// Keep and Drop, and Dial must be non-negative.
func ValidateDecision(d Decision, neighbors int) error {
	if d.Dial < 0 {
		return fmt.Errorf("negative dial budget %d", d.Dial)
	}
	seen := make([]bool, neighbors)
	mark := func(list string, idx int) error {
		if idx < 0 || idx >= neighbors {
			return fmt.Errorf("%s index %d outside [0, %d)", list, idx, neighbors)
		}
		if seen[idx] {
			return fmt.Errorf("neighbor index %d decided twice", idx)
		}
		seen[idx] = true
		return nil
	}
	for _, i := range d.Keep {
		if err := mark("keep", i); err != nil {
			return err
		}
	}
	for _, i := range d.Drop {
		if err := mark("drop", i); err != nil {
			return err
		}
	}
	if got := len(d.Keep) + len(d.Drop); got != neighbors {
		return fmt.Errorf("decision covers %d of %d neighbors", got, neighbors)
	}
	return nil
}

// SelectorFromMethod builds the built-in selector implementing the given
// scoring method with the protocol constants in p.
func SelectorFromMethod(m Method, p Params) (Selector, error) {
	switch m {
	case Vanilla:
		return NewVanillaSelector(p.Explore, p.Percentile)
	case Subset:
		return NewSubsetSelector(p.Explore, p.Percentile)
	case UCB:
		return NewUCBSelector(p.Percentile, p.UCBConstant)
	default:
		return nil, fmt.Errorf("core: no selector for method %d", int(m))
	}
}

// dialBudget refills toward the out-degree target: the number of dials
// that brings a node with k neighbors and the given drops back to
// outDegree outgoing connections.
func dialBudget(outDegree, neighbors, drops int) int {
	dial := outDegree - (neighbors - drops)
	if dial < 0 {
		dial = 0
	}
	return dial
}

// keepAll is the no-drop decision: retain every neighbor and refill any
// unfilled slots.
func keepAll(view NeighborView) Decision {
	k := len(view.Obs.Neighbors)
	keep := make([]int, k)
	for i := range keep {
		keep[i] = i
	}
	return Decision{Keep: keep, Dial: dialBudget(view.OutDegree, k, 0)}
}

func validateExplore(explore int) error {
	if explore < 0 {
		return fmt.Errorf("core: explore count %d must be non-negative", explore)
	}
	return nil
}

func validatePercentile(pct float64) error {
	if pct <= 0 || pct > 1 {
		return fmt.Errorf("core: percentile %v outside (0, 1]", pct)
	}
	return nil
}

// retainTarget is the number of neighbors a rotation selector keeps:
// OutDegree minus its exploration quota, floored at zero for undersized
// custom out-degrees.
func retainTarget(outDegree, explore int) int {
	retain := outDegree - explore
	if retain < 0 {
		retain = 0
	}
	return retain
}

// vanillaSelector scores each neighbor independently by the
// pct-percentile of its offsets (§4.2.1) and rotates the worst explore of
// them out every round.
type vanillaSelector struct {
	explore int
	pct     float64
}

// NewVanillaSelector builds the §4.2.1 independent-percentile selector:
// each round it keeps the OutDegree−explore best-scoring neighbors, drops
// the rest, and dials back up to OutDegree.
func NewVanillaSelector(explore int, percentile float64) (Selector, error) {
	if err := validateExplore(explore); err != nil {
		return nil, err
	}
	if err := validatePercentile(percentile); err != nil {
		return nil, err
	}
	return &vanillaSelector{explore: explore, pct: percentile}, nil
}

func (s *vanillaSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	k := len(view.Obs.Neighbors)
	retain := retainTarget(view.OutDegree, s.explore)
	if k <= retain {
		return keepAll(view), nil
	}
	scores := VanillaScores(view.Obs, s.pct)
	ranked := RankByScore(view.Obs, scores)
	// Drops stay in ranked (worst-last) order so driver churn reports are
	// deterministic and match the historical engine behavior.
	keep := append([]int(nil), ranked[:retain]...)
	drop := append([]int(nil), ranked[retain:]...)
	return Decision{Keep: keep, Drop: drop, Dial: dialBudget(view.OutDegree, k, len(drop))}, nil
}

// subsetSelector greedily keeps the group of neighbors whose joint
// delivery profile is fastest (§4.3), the paper's preferred rule.
type subsetSelector struct {
	explore int
	pct     float64
}

// NewSubsetSelector builds the §4.3 joint-scoring selector: each round it
// keeps the OutDegree−explore neighbors whose combined per-block minima
// are fastest, drops the rest, and dials back up to OutDegree.
func NewSubsetSelector(explore int, percentile float64) (Selector, error) {
	if err := validateExplore(explore); err != nil {
		return nil, err
	}
	if err := validatePercentile(percentile); err != nil {
		return nil, err
	}
	return &subsetSelector{explore: explore, pct: percentile}, nil
}

func (s *subsetSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	k := len(view.Obs.Neighbors)
	retain := retainTarget(view.OutDegree, s.explore)
	if k <= retain {
		return keepAll(view), nil
	}
	keep := SubsetSelect(view.Obs, retain, s.pct)
	keepSet := make(map[int]bool, len(keep))
	for _, i := range keep {
		keepSet[i] = true
	}
	drop := make([]int, 0, k-len(keep))
	for i := 0; i < k; i++ {
		if !keepSet[i] {
			drop = append(drop, i)
		}
	}
	return Decision{Keep: keep, Drop: drop, Dial: dialBudget(view.OutDegree, k, len(drop))}, nil
}

// ucbSelector maintains per-neighbor confidence intervals over offsets
// accumulated across the rounds a connection stays alive (§4.2.2) and
// evicts at most one neighbor per round, when the intervals separate.
type ucbSelector struct {
	pct float64
	c   time.Duration

	mu sync.Mutex
	// hist[node][neighbor] accumulates finite offsets while the connection
	// is alive. Guarded by mu because drivers decide distinct nodes
	// concurrently; per-node entries are disjoint, so locking does not
	// perturb determinism.
	hist map[int]map[int][]time.Duration
}

// NewUCBSelector builds the §4.2.2 confidence-bound selector with the
// given scoring percentile and exploration constant c of eq. (3)–(4). It
// is stateful: offsets accumulate per (node, neighbor) across rounds, so
// give each independent experiment its own instance.
func NewUCBSelector(percentile float64, confidence time.Duration) (Selector, error) {
	if err := validatePercentile(percentile); err != nil {
		return nil, err
	}
	if confidence < 0 {
		return nil, fmt.Errorf("core: UCB constant %v must be non-negative", confidence)
	}
	return &ucbSelector{pct: percentile, c: confidence, hist: make(map[int]map[int][]time.Duration)}, nil
}

func (s *ucbSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	k := len(view.Obs.Neighbors)
	if k == 0 {
		return keepAll(view), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nodeHist := s.hist[view.Node]

	lcbs := make([]time.Duration, k)
	ucbs := make([]time.Duration, k)
	for i, u := range view.Obs.Neighbors {
		samples := nodeHist[u]
		// Include this round's finite offsets in the decision.
		for _, row := range view.Obs.Offsets {
			if row[i] != stats.InfDuration {
				samples = append(samples, row[i])
			}
		}
		lcbs[i], ucbs[i] = UCBBounds(samples, s.pct, s.c)
	}
	evict := UCBEvict(lcbs, ucbs)

	keep := make([]int, 0, k)
	var drop []int
	for i := 0; i < k; i++ {
		if i == evict {
			drop = append(drop, i)
			continue
		}
		keep = append(keep, i)
	}

	// Histories survive only for kept connections: dropped neighbors are
	// forgotten, and neighbors that disappeared outside the decision loop
	// (e.g. churn) age out because they no longer appear in the view.
	next := make(map[int][]time.Duration, len(keep))
	for _, i := range keep {
		u := view.Obs.Neighbors[i]
		samples := nodeHist[u]
		for _, row := range view.Obs.Offsets {
			if row[i] != stats.InfDuration {
				samples = append(samples, row[i])
			}
		}
		next[u] = samples
	}
	s.hist[view.Node] = next

	return Decision{Keep: keep, Drop: drop, Dial: dialBudget(view.OutDegree, k, len(drop))}, nil
}

// ResetNodeState implements NodeStateResetter: a churned node restarts
// with no accumulated history.
func (s *ucbSelector) ResetNodeState(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.hist, node)
}

// randomSelector keeps a uniformly random subset each round — the
// "Random" baseline the paper's evaluation compares against.
type randomSelector struct {
	explore int
}

// NewRandomSelector builds the random-rotation baseline: each round it
// keeps a uniformly random OutDegree−explore subset of the current
// neighbors and dials fresh peers for the rest. Draws come from the
// view's derived random stream, so runs stay reproducible.
func NewRandomSelector(explore int) (Selector, error) {
	if err := validateExplore(explore); err != nil {
		return nil, err
	}
	return &randomSelector{explore: explore}, nil
}

func (s *randomSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	k := len(view.Obs.Neighbors)
	retain := retainTarget(view.OutDegree, s.explore)
	if k <= retain {
		return keepAll(view), nil
	}
	if view.Rand == nil {
		return Decision{}, fmt.Errorf("core: random selector needs a view random stream")
	}
	perm := view.Rand.Perm(k)
	keep := append([]int(nil), perm[:retain]...)
	drop := append([]int(nil), perm[retain:]...)
	sort.Ints(keep)
	sort.Ints(drop)
	return Decision{Keep: keep, Drop: drop, Dial: dialBudget(view.OutDegree, k, len(drop))}, nil
}
