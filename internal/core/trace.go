package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/perigee-net/perigee/internal/netsim"
	"github.com/perigee-net/perigee/internal/stats"
)

// TraceLevel selects how much of the engine's decision loop is recorded.
type TraceLevel int

const (
	// TraceOff disables decision tracing; the engine's hot path carries a
	// single branch and allocates nothing for it.
	TraceOff TraceLevel = iota
	// TraceDecisions records every keep/drop/dial decision (neighbor IDs,
	// kept/dropped indices, dial budget) without the scoring inputs.
	TraceDecisions
	// TraceInputs additionally records the inputs the decision was made
	// from: per-neighbor percentile scores, censored-block counts, and the
	// full per-block offset matrix.
	TraceInputs
)

// Valid reports whether l is a defined level.
func (l TraceLevel) Valid() bool { return l >= TraceOff && l <= TraceInputs }

// String returns the level's CLI/HTTP spelling.
func (l TraceLevel) String() string {
	switch l {
	case TraceOff:
		return "off"
	case TraceDecisions:
		return "decisions"
	case TraceInputs:
		return "inputs"
	default:
		return fmt.Sprintf("TraceLevel(%d)", int(l))
	}
}

// DecisionTrace is the engine-level record of one node's neighbor update:
// the decision the selector returned plus (at TraceInputs) the observations
// it was computed from. All slices alias engine scratch and are valid only
// for the duration of the TraceSink call — sinks that retain a record must
// copy what they keep.
type DecisionTrace struct {
	// Round is the 1-based round the decision was made in.
	Round int
	// Node is the deciding node.
	Node int
	// Neighbors are the node IDs of the outgoing neighbors under review
	// (the round's observation snapshot).
	Neighbors []int
	// Keep and Drop index into Neighbors (the selector's Decision verbatim).
	Keep []int
	Drop []int
	// Dial is the extra dial budget beyond refilling dropped slots.
	Dial int

	// The fields below are populated only at TraceInputs level.

	// Scores are the engine-percentile offset scores per neighbor
	// (stats.InfDuration = fully censored). They are computed by the
	// tracer with VanillaScoresInto at the engine's configured percentile
	// regardless of the active selector, so traces from different
	// selectors are comparable on one scale.
	Scores []time.Duration
	// Censored counts each neighbor's censored (never-delivered) blocks.
	Censored []int
	// Offsets is the per-block offset matrix the selector saw
	// (Offsets[b][i] for block b, neighbor i), after any tampering.
	Offsets [][]time.Duration
}

// CounterfactualTrace reports how one rejected alternative of a traced
// decision would have scored: "had node v kept peer u at round R, u's
// observed offset score over round R+1's blocks would have been Score."
// The hypothetical delivery path is the one-hop relay u→v (u's actual
// arrival + u's validation and relay delays + the u–v link), normalized
// against v's actual earliest announcement of each block; upload
// serialization (SendInterval) is ignored in the hypothetical, making the
// score an optimistic lower bound under bandwidth contention.
type CounterfactualTrace struct {
	// Round is the 1-based round the alternative was rejected in; the
	// evaluation uses the following round's broadcasts.
	Round int
	// Node is the deciding node, Peer the dropped neighbor.
	Node int
	Peer int
	// Rank is the alternative's 0-based position among the decision's
	// evaluated alternatives (best decision-time score first).
	Rank int
	// DecisionScore is the peer's engine-percentile score at decision
	// time (what the drop was based on).
	DecisionScore time.Duration
	// Score is the counterfactual next-round score
	// (stats.InfDuration = censored: the peer never heard the blocks, or
	// no block was broadcast).
	Score time.Duration
	// WorstKept is the worst finite score among the node's actual
	// neighbors over the same next-round blocks
	// (stats.InfDuration = censored: no neighbor produced a finite score).
	WorstKept time.Duration
	// Regret is WorstKept − Score when both are finite: positive means the
	// dropped peer would have outscored the node's worst actual neighbor —
	// a regrettable drop. Zero when Censored.
	Regret time.Duration
	// Censored reports that either side of the comparison was censored;
	// Regret is meaningless then.
	Censored bool
}

// TraceSink receives the engine's trace records. The engine calls it
// sequentially, in ascending node order within a round (counterfactuals of
// round R before decisions of round R+1), at any Workers/Shards count — so
// a sink needs no locking and sees a deterministic stream.
type TraceSink interface {
	// TraceDecision receives one node's decision record. Slices alias
	// engine scratch; copy to retain.
	TraceDecision(DecisionTrace)
	// TraceCounterfactual receives one evaluated alternative.
	TraceCounterfactual(CounterfactualTrace)
}

// TraceConfig enables decision tracing on an Engine.
type TraceConfig struct {
	// Level selects what is recorded; TraceOff disables tracing.
	Level TraceLevel
	// CounterfactualK, when positive, re-scores up to K of each decision's
	// rejected alternatives (the dropped neighbors with the best
	// decision-time scores) against the following round's broadcasts and
	// emits a CounterfactualTrace per alternative. Requires Level ≥
	// TraceDecisions.
	CounterfactualK int
	// Sink receives the records; required when Level > TraceOff.
	Sink TraceSink
}

func (c TraceConfig) validate() error {
	if !c.Level.Valid() {
		return fmt.Errorf("core: invalid trace level %d", int(c.Level))
	}
	if c.CounterfactualK < 0 {
		return fmt.Errorf("core: counterfactual k %d must be non-negative", c.CounterfactualK)
	}
	if c.Level != TraceOff && c.Sink == nil {
		return fmt.Errorf("core: trace level %v requires a sink", c.Level)
	}
	if c.CounterfactualK > 0 && c.Level == TraceOff {
		return fmt.Errorf("core: counterfactual evaluation requires tracing enabled (level ≥ decisions)")
	}
	return nil
}

// tracing reports whether the engine records decisions this run.
func (e *Engine) tracing() bool { return e.trace.Level > TraceOff && e.trace.Sink != nil }

// cfQuery is one scheduled counterfactual: while round `round`+1
// broadcasts, the engine measures what node would have observed from peer.
type cfQuery struct {
	node, peer  int
	round, rank int
	score       time.Duration // peer's decision-time score
}

// prepareCounterfactuals resets the pending queries' offset rows to
// "never delivered" for a round carrying `window` observed blocks. Called
// from prepareRound; a no-op (one branch) when nothing is pending.
func (e *Engine) prepareCounterfactuals(window int) {
	rs := &e.scratch
	np := len(rs.cfPending)
	if np == 0 {
		return
	}
	for len(rs.cfOffsets) < np {
		rs.cfOffsets = append(rs.cfOffsets, nil)
	}
	for q := 0; q < np; q++ {
		row := growDur(&rs.cfOffsets[q], window)
		for i := range row {
			row[i] = stats.InfDuration
		}
	}
}

// harvestCounterfactuals folds one broadcast result into the pending
// queries' offset rows as block b: the hypothetical one-hop delivery
// peer→node, normalized like harvestObservations against the earlier of
// the node's actual earliest announcement and the hypothetical delivery
// itself. Each (query, block) cell is written by exactly one call, so
// concurrent calls for distinct b never race — the rows are deterministic
// at any Workers/Shards count.
func (e *Engine) harvestCounterfactuals(res netsim.Result, b int) {
	rs := &e.scratch
	for q := range rs.cfPending {
		query := &rs.cfPending[q]
		p := query.peer
		tp := res.Arrival[p]
		if tp == stats.InfDuration || (e.silent != nil && e.silent[p]) {
			continue // peer never heard the block, or never relays: censored
		}
		hyp := tp + e.forward[p]
		if e.relayDelay != nil {
			hyp += e.relayDelay[p]
		}
		hyp += e.lat.Delay(p, query.node)
		tMin := hyp
		for _, t := range res.EdgeArrival[query.node] {
			if t < tMin {
				tMin = t
			}
		}
		rs.cfOffsets[q][b] = hyp - tMin
	}
}

// queueCounterfactuals schedules up to k of the decision's dropped
// neighbors — best decision-time score first, neighbor ID as tiebreak —
// for evaluation against the next round's broadcasts.
func (e *Engine) queueCounterfactuals(v, round int, obs Observations, drop []int, scores []time.Duration, k int) {
	rs := &e.scratch
	if cap(rs.cfRank) < len(drop) {
		rs.cfRank = make([]int, len(drop))
	}
	idx := rs.cfRank[:len(drop)]
	copy(idx, drop)
	srt := rankSorterPool.Get().(*rankSorter)
	srt.idx, srt.scores, srt.neighbors = idx, scores, obs.Neighbors
	sort.Sort(srt)
	srt.idx, srt.scores, srt.neighbors = nil, nil, nil
	rankSorterPool.Put(srt)
	if k > len(idx) {
		k = len(idx)
	}
	for rank := 0; rank < k; rank++ {
		i := idx[rank]
		rs.cfPending = append(rs.cfPending, cfQuery{
			node:  v,
			peer:  obs.Neighbors[i],
			round: round,
			rank:  rank,
			score: scores[i],
		})
	}
}

// emitDecisions streams every node's decision to the sink (ascending node
// order) and schedules counterfactual queries for the dropped
// alternatives. Runs sequentially after the parallel decide phase, before
// any table mutation, so the recorded observations are exactly what the
// selectors consumed.
func (e *Engine) emitDecisions(obs []Observations, decisions []Decision) {
	rs := &e.scratch
	n := e.table.N()
	round := e.round + 1 // the in-flight round's 1-based index
	k := e.trace.CounterfactualK
	for v := 0; v < n; v++ {
		if e.frozen != nil && e.frozen[v] {
			continue
		}
		d := decisions[v]
		var scores []time.Duration
		if e.trace.Level >= TraceInputs || (k > 0 && len(d.Drop) > 0) {
			scores = growDur(&rs.traceScores, len(obs[v].Neighbors))
			VanillaScoresInto(scores, obs[v], e.params.Percentile)
		}
		rec := DecisionTrace{
			Round:     round,
			Node:      v,
			Neighbors: obs[v].Neighbors,
			Keep:      d.Keep,
			Drop:      d.Drop,
			Dial:      d.Dial,
		}
		if e.trace.Level >= TraceInputs {
			rec.Scores = scores
			rec.Censored = censoredCounts(&rs.traceCensored, obs[v])
			rec.Offsets = obs[v].Offsets
		}
		e.trace.Sink.TraceDecision(rec)
		if k > 0 && len(d.Drop) > 0 {
			e.queueCounterfactuals(v, round, obs[v], d.Drop, scores, k)
		}
	}
}

// emitCounterfactuals evaluates and streams the previous round's pending
// queries against this round's harvested hypothetical offsets, then clears
// the queue. Runs sequentially (ascending decision node, then rank) from
// finishRound, before the selector update.
func (e *Engine) emitCounterfactuals(obs []Observations) {
	rs := &e.scratch
	lastNode := -1
	var worst time.Duration
	for q := range rs.cfPending {
		query := rs.cfPending[q]
		if query.node != lastNode {
			worst = e.worstNeighborScore(obs[query.node])
			lastNode = query.node
		}
		score := stats.DurationPercentile(rs.cfOffsets[q], e.params.Percentile)
		rec := CounterfactualTrace{
			Round:         query.round,
			Node:          query.node,
			Peer:          query.peer,
			Rank:          query.rank,
			DecisionScore: query.score,
			Score:         score,
			WorstKept:     worst,
		}
		if score == stats.InfDuration || worst == stats.InfDuration {
			rec.Censored = true
		} else {
			rec.Regret = worst - score
		}
		e.trace.Sink.TraceCounterfactual(rec)
	}
	rs.cfPending = rs.cfPending[:0]
}

// worstNeighborScore is the largest finite engine-percentile score among
// the node's current neighbors this round, or stats.InfDuration when no
// neighbor produced one (fully censored round, or no neighbors).
func (e *Engine) worstNeighborScore(obs Observations) time.Duration {
	rs := &e.scratch
	if len(obs.Neighbors) == 0 {
		return stats.InfDuration
	}
	scores := growDur(&rs.traceScores, len(obs.Neighbors))
	VanillaScoresInto(scores, obs, e.params.Percentile)
	worst := stats.InfDuration
	for _, s := range scores {
		if s == stats.InfDuration {
			continue
		}
		if worst == stats.InfDuration || s > worst {
			worst = s
		}
	}
	return worst
}

// censoredCounts writes each neighbor's censored-block count into the
// reusable buffer.
func censoredCounts(buf *[]int, obs Observations) []int {
	n := len(obs.Neighbors)
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	counts := (*buf)[:n]
	*buf = counts
	for i := range counts {
		counts[i] = 0
	}
	for b := range obs.Offsets {
		row := obs.Offsets[b]
		for i := range counts {
			if row[i] == stats.InfDuration {
				counts[i]++
			}
		}
	}
	return counts
}
