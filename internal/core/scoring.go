// Package core implements the Perigee protocol (§4): per-round neighbor
// observation sets, the three scoring methods (Vanilla §4.2.1, UCB §4.2.2,
// Subset §4.3), and the engine that runs the protocol synchronously over a
// simulated network.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/stats"
)

// Method selects the neighbor-scoring rule.
type Method int

// The three scoring methods proposed by the paper.
const (
	// Vanilla scores each neighbor independently by the 90th percentile of
	// its time-normalized block arrival offsets (§4.2.1).
	Vanilla Method = iota
	// UCB maintains per-neighbor confidence intervals over accumulated
	// offsets and evicts a neighbor only when the intervals separate
	// (§4.2.2).
	UCB
	// Subset greedily selects the group of neighbors whose joint delivery
	// times complement each other (§4.3).
	Subset
)

// String returns the method's name as used in the paper's figures.
func (m Method) String() string {
	switch m {
	case Vanilla:
		return "Perigee-Vanilla"
	case UCB:
		return "Perigee-UCB"
	case Subset:
		return "Perigee-Subset"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Valid reports whether m is a defined method.
func (m Method) Valid() bool { return m >= Vanilla && m <= Subset }

// Observations holds one node's measurements for one round: for each of
// its outgoing neighbors, the time-normalized arrival offset of each block
// (t̃ = t(u,v) − min over all neighbors of t(·,v), per §4.2.1).
// stats.InfDuration marks a block the neighbor never delivered.
type Observations struct {
	// Neighbors are the node IDs of the outgoing neighbors being scored
	// (snapshot taken at round start).
	Neighbors []int
	// Offsets[b][i] is the offset of block b from neighbor Neighbors[i].
	Offsets [][]time.Duration

	// backing is the flat buffer the Offsets rows alias, retained so Reset
	// can rebuild the matrix without reallocating.
	backing []time.Duration
}

// NewObservations allocates an observation set for the given neighbors and
// block count, initialized to "never delivered".
func NewObservations(neighbors []int, blocks int) Observations {
	var o Observations
	o.Reset(neighbors, blocks)
	return o
}

// Reset reinitializes o in place for a new round — neighbor snapshot
// copied, every offset back to "never delivered" — reusing the backing
// buffers when their capacity suffices. The engine calls this once per
// node per round, so a steady-state round allocates no observation memory.
func (o *Observations) Reset(neighbors []int, blocks int) {
	o.Neighbors = append(o.Neighbors[:0], neighbors...)
	k := len(neighbors)
	need := blocks * k
	if cap(o.backing) < need {
		o.backing = make([]time.Duration, need)
	}
	o.backing = o.backing[:need]
	for i := range o.backing {
		o.backing[i] = stats.InfDuration
	}
	if cap(o.Offsets) < blocks {
		o.Offsets = make([][]time.Duration, blocks)
	}
	o.Offsets = o.Offsets[:blocks]
	for b := range o.Offsets {
		o.Offsets[b] = o.backing[b*k : (b+1)*k : (b+1)*k]
	}
}

// columnPool recycles the per-neighbor column scratch shared by the
// scoring entry points; scoring runs once per node per round from many
// goroutines, so the extraction buffer must not allocate once warm.
var columnPool = sync.Pool{New: func() any { return new([]time.Duration) }}

// VanillaScores assigns each neighbor the pct-percentile of its offset
// multiset. Lower is better. The only steady-state allocation is the
// returned slice; use VanillaScoresInto to elide that too.
func VanillaScores(obs Observations, pct float64) []time.Duration {
	scores := make([]time.Duration, len(obs.Neighbors))
	VanillaScoresInto(scores, obs, pct)
	return scores
}

// VanillaScoresInto writes each neighbor's pct-percentile score into
// scores, which must have length len(obs.Neighbors). It performs no heap
// allocations once the internal pools are warm.
func VanillaScoresInto(scores []time.Duration, obs Observations, pct float64) {
	colp := columnPool.Get().(*[]time.Duration)
	col := *colp
	for i := range obs.Neighbors {
		col = col[:0]
		for b := range obs.Offsets {
			col = append(col, obs.Offsets[b][i])
		}
		scores[i] = stats.DurationPercentile(col, pct)
	}
	*colp = col
	columnPool.Put(colp)
}

// rankSorter sorts a neighbor-index slice by (score, neighbor ID). It
// implements sort.Interface so ranking needs no per-call closure
// allocation; instances are pooled because every Vanilla decision ranks
// once per node per round, from many goroutines.
type rankSorter struct {
	idx       []int
	scores    []time.Duration
	neighbors []int
}

func (s *rankSorter) Len() int { return len(s.idx) }
func (s *rankSorter) Less(a, b int) bool {
	ia, ib := s.idx[a], s.idx[b]
	if s.scores[ia] != s.scores[ib] {
		return s.scores[ia] < s.scores[ib]
	}
	return s.neighbors[ia] < s.neighbors[ib]
}
func (s *rankSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

var rankSorterPool = sync.Pool{New: func() any { return new(rankSorter) }}

// subsetScratch bundles the working buffers of one SubsetSelect call so the
// greedy §4.3 selection — which runs once per node per round, from many
// goroutines — allocates only its returned slice once warm.
type subsetScratch struct {
	individual  []time.Duration
	best        []time.Duration
	transformed []time.Duration
	used        []bool
}

var subsetPool = sync.Pool{New: func() any { return new(subsetScratch) }}

// growDur resizes *buf to n elements, reallocating only on capacity growth.
// Contents are unspecified; callers overwrite every element.
func growDur(buf *[]time.Duration, n int) []time.Duration {
	if cap(*buf) < n {
		*buf = make([]time.Duration, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growBool is growDur for bool scratch, additionally clearing the slice
// because SubsetSelect reads used[i] before ever writing it.
func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	b := *buf
	for i := range b {
		b[i] = false
	}
	return b
}

// RankByScore returns neighbor indices ordered best-first (ascending
// score), breaking ties by neighbor ID for determinism. The returned slice
// is the call's only steady-state allocation.
func RankByScore(obs Observations, scores []time.Duration) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	srt := rankSorterPool.Get().(*rankSorter)
	srt.idx, srt.scores, srt.neighbors = idx, scores, obs.Neighbors
	sort.Sort(srt)
	srt.idx, srt.scores, srt.neighbors = nil, nil, nil // don't retain caller slices
	rankSorterPool.Put(srt)
	return idx
}

// SubsetSelect greedily picks up to retain neighbor indices whose joint
// delivery profile is fastest (§4.3): the first pick minimizes the raw
// pct-percentile; each subsequent pick minimizes the percentile of
// per-block minima against the already-chosen set, so a neighbor is valued
// only for the blocks it delivers faster than the current selection.
//
// The paper does not specify tie-breaking. Ties on the joint score are
// common and consequential: once a chosen neighbor delivered first on
// every block, all remaining candidates transform to identical zeros.
// Ties therefore break toward the better individual (Vanilla) score —
// a redundant-but-fast neighbor beats one that never delivers — and
// finally toward the lower neighbor ID for determinism.
func SubsetSelect(obs Observations, retain int, pct float64) []int {
	k := len(obs.Neighbors)
	if retain >= k {
		all := make([]int, k)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if retain <= 0 {
		return nil
	}
	blocks := len(obs.Offsets)
	sc := subsetPool.Get().(*subsetScratch)
	defer subsetPool.Put(sc)
	individual := growDur(&sc.individual, k)
	VanillaScoresInto(individual, obs, pct)
	// best[b] is the fastest offset among chosen neighbors for block b.
	best := growDur(&sc.best, blocks)
	for b := range best {
		best[b] = stats.InfDuration
	}
	chosen := make([]int, 0, retain)
	used := growBool(&sc.used, k)
	transformed := growDur(&sc.transformed, blocks)
	for len(chosen) < retain {
		bestIdx := -1
		bestScore := stats.InfDuration
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			for b := 0; b < blocks; b++ {
				t := obs.Offsets[b][i]
				if best[b] < t {
					t = best[b]
				}
				transformed[b] = t
			}
			score := stats.DurationPercentile(transformed, pct)
			if bestIdx == -1 || score < bestScore || (score == bestScore && subsetTieBetter(obs, individual, i, bestIdx)) {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
		for b := 0; b < blocks; b++ {
			if t := obs.Offsets[b][bestIdx]; t < best[b] {
				best[b] = t
			}
		}
	}
	sort.Ints(chosen)
	return chosen
}

// subsetTieBetter reports whether candidate i beats the incumbent on a
// joint-score tie: better individual score first, then lower neighbor ID.
func subsetTieBetter(obs Observations, individual []time.Duration, i, incumbent int) bool {
	if individual[i] != individual[incumbent] {
		return individual[i] < individual[incumbent]
	}
	return obs.Neighbors[i] < obs.Neighbors[incumbent]
}

// UCBBounds computes the lower and upper confidence bounds of eq. (3)–(4):
// the pct-percentile of the accumulated finite offsets ± c·sqrt(log N / 2N).
// A neighbor with no finite samples gets (InfDuration, InfDuration): there
// is no evidence it ever delivers blocks.
func UCBBounds(samples []time.Duration, pct float64, c time.Duration) (lcb, ucb time.Duration) {
	n := len(samples)
	if n == 0 {
		return stats.InfDuration, stats.InfDuration
	}
	estimate := stats.DurationPercentile(samples, pct)
	if estimate == stats.InfDuration {
		return stats.InfDuration, stats.InfDuration
	}
	bonus := time.Duration(float64(c) * math.Sqrt(math.Log(float64(n))/(2*float64(n))))
	lcb = estimate - bonus
	if lcb < 0 {
		lcb = 0
	}
	return lcb, estimate + bonus
}

// UCBEvict applies §4.2.2's rule to a set of per-neighbor confidence
// intervals: if max lcb > min ucb, the neighbor attaining the max lcb is
// evicted. It returns that neighbor's index, or -1 when no interval
// separation exists. Ties break toward the lower index.
func UCBEvict(lcbs, ucbs []time.Duration) int {
	if len(lcbs) == 0 || len(lcbs) != len(ucbs) {
		return -1
	}
	maxL, argMax := lcbs[0], 0
	minU := ucbs[0]
	for i := 1; i < len(lcbs); i++ {
		if lcbs[i] > maxL {
			maxL, argMax = lcbs[i], i
		}
		if ucbs[i] < minU {
			minU = ucbs[i]
		}
	}
	if maxL > minU {
		return argMax
	}
	return -1
}
