package core

import (
	"reflect"
	"testing"
	"time"
)

// engineAtWorkers builds an engine over a fresh but identically-seeded
// network with the given worker count.
func engineAtWorkers(t *testing.T, m Method, workers int) *Engine {
	t.Helper()
	tn := newTestNetwork(t, 120, 31)
	cfg := tn.config(m, Params{})
	params := DefaultParams(m)
	if m != UCB {
		params.RoundBlocks = 40
	}
	cfg.Params = params
	cfg.Workers = workers
	engine, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// outgoingSnapshot captures every node's outgoing neighbor set.
func outgoingSnapshot(e *Engine) [][]int {
	n := e.N()
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		out[v] = e.Table().OutNeighbors(v)
	}
	return out
}

// TestStepDeterministicAcrossWorkers is the engine-level determinism
// acceptance check: for a fixed seed, round reports, the final topology,
// and the delay metric are identical under Workers=1 and Workers=8.
func TestStepDeterministicAcrossWorkers(t *testing.T) {
	for _, m := range []Method{Vanilla, Subset, UCB} {
		t.Run(m.String(), func(t *testing.T) {
			seq := engineAtWorkers(t, m, 1)
			par := engineAtWorkers(t, m, 8)
			rounds := 5
			if m == UCB {
				rounds = 40
			}
			for r := 0; r < rounds; r++ {
				repSeq, err := seq.Step()
				if err != nil {
					t.Fatal(err)
				}
				repPar, err := par.Step()
				if err != nil {
					t.Fatal(err)
				}
				if repSeq != repPar {
					t.Fatalf("round %d reports diverge: sequential %+v, parallel %+v", r, repSeq, repPar)
				}
			}
			if !reflect.DeepEqual(outgoingSnapshot(seq), outgoingSnapshot(par)) {
				t.Fatal("final outgoing tables diverge across worker counts")
			}
			if !reflect.DeepEqual(seq.Adjacency(), par.Adjacency()) {
				t.Fatal("final adjacency diverges across worker counts")
			}
			dSeq, err := seq.Delays(0.9, nil)
			if err != nil {
				t.Fatal(err)
			}
			dPar, err := par.Delays(0.9, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dSeq, dPar) {
				t.Fatal("delay metrics diverge across worker counts")
			}
		})
	}
}

// TestDelaysAndReceiveDelaysDeterministicAcrossWorkers covers the
// evaluation paths, including the event-driven one (serialized uploads).
func TestDelaysAndReceiveDelaysDeterministicAcrossWorkers(t *testing.T) {
	build := func(workers int) *Engine {
		tn := newTestNetwork(t, 90, 77)
		cfg := tn.config(Subset, Params{})
		cfg.Workers = workers
		si := make([]time.Duration, 90)
		for i := range si {
			si[i] = time.Duration(i%5) * time.Millisecond
		}
		cfg.SendInterval = si
		engine, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return engine
	}
	seq, par := build(1), build(8)
	dSeq, err := seq.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	dPar, err := par.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dSeq, dPar) {
		t.Fatal("event-driven delay metrics diverge across worker counts")
	}
	rSeq, err := seq.ReceiveDelays(nil)
	if err != nil {
		t.Fatal(err)
	}
	rPar, err := par.ReceiveDelays(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rSeq, rPar) {
		t.Fatal("receive delays diverge across worker counts")
	}
}
