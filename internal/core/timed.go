package core

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/netsim"
	"github.com/perigee-net/perigee/internal/parallel"
)

// TimedRound is the engine's time-triggered driver mode. Where Step owns a
// whole round — sampling RoundBlocks sources itself and broadcasting them as
// one synchronized batch — a TimedRound lets an external clock own the
// schedule: the caller (typically the continuous-time workload engine)
// decides how many blocks fell inside the round's wall-clock interval and
// which miners produced them, the engine contributes its broadcast fabric
// and per-neighbor measurement, and the selector update fires when the
// caller says the interval has elapsed.
//
// The sequence is Begin → BroadcastAll → Finish. Observations are collected
// into the same scratch tables Step uses, so a timed round and a Step round
// with identical sources produce identical selector decisions.
type TimedRound struct {
	e      *Engine
	sim    *netsim.Simulator
	blocks int
	window int
	sent   bool
	done   bool
}

// BeginTimedRound opens a timed round that will carry `blocks` blocks. The
// engine's observation window applies exactly as in Step: only the last
// min(blocks, ObservationWindow) blocks feed the selector, though every
// block is still propagated (the caller needs all arrival times to evolve
// chain state). The round holds the engine's start-of-round topology; the
// caller must not mutate connections until Finish returns.
func BeginTimedRound(e *Engine, blocks int) (*TimedRound, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("core: timed round needs at least one block, got %d", blocks)
	}
	sim, err := e.ensureSim()
	if err != nil {
		return nil, err
	}
	window := blocks
	if e.obsWindow > 0 && e.obsWindow < window {
		window = e.obsWindow
	}
	if err := e.prepareRound(sim, window); err != nil {
		return nil, err
	}
	return &TimedRound{e: e, sim: sim, blocks: blocks, window: window}, nil
}

// Blocks returns the round's declared block count.
func (t *TimedRound) Blocks() int { return t.blocks }

// BroadcastAll propagates every block of the round from its source node and
// harvests per-neighbor observations for the blocks inside the window (the
// trailing t.Blocks()-window blocks; earlier ones still propagate for the
// caller but are invisible to the selector, mirroring Step's semantics).
//
// sources must have length t.Blocks(). When arrivals is non-nil it must
// also have length t.Blocks(); arrivals[b] is grown to N and filled with
// block b's per-node arrival time (netsim.InfDuration where the block never
// arrives), owned by the caller afterwards.
//
// Blocks fan out over the engine's worker pool exactly as in Step; with
// Shards > 1 each broadcast is itself sharded and blocks run sequentially.
// Either way the result is bit-for-bit independent of Workers and Shards.
func (t *TimedRound) BroadcastAll(sources []int, arrivals [][]time.Duration) error {
	if t.done {
		return fmt.Errorf("core: timed round already finished")
	}
	if t.sent {
		return fmt.Errorf("core: timed round already broadcast")
	}
	if len(sources) != t.blocks {
		return fmt.Errorf("core: timed round declared %d blocks, got %d sources", t.blocks, len(sources))
	}
	if arrivals != nil && len(arrivals) != t.blocks {
		return fmt.Errorf("core: timed round declared %d blocks, got %d arrival buffers", t.blocks, len(arrivals))
	}
	e := t.e
	n := e.table.N()
	for b, src := range sources {
		if src < 0 || src >= n {
			return fmt.Errorf("core: timed round block %d source %d out of range [0,%d)", b, src, n)
		}
	}
	t.sent = true
	rs := &e.scratch
	obs, outs, slot := rs.obs[:n], rs.outs[:n], rs.slot[:n]
	skip := t.blocks - t.window

	harvest := func(res netsim.Result, b int) {
		if arrivals != nil {
			if cap(arrivals[b]) < n {
				arrivals[b] = make([]time.Duration, n)
			}
			arrivals[b] = arrivals[b][:n]
			copy(arrivals[b], res.Arrival)
		}
		if row := b - skip; row >= 0 {
			harvestObservations(res, row, obs, outs, slot)
			if len(rs.cfPending) > 0 {
				e.harvestCounterfactuals(res, row)
			}
		}
	}

	if e.shards > 1 {
		shb, err := e.shardedBroadcaster(t.sim)
		if err != nil {
			return err
		}
		for b, src := range sources {
			res, err := shb.Broadcast(src)
			if err != nil {
				return err
			}
			harvest(res, b)
		}
		return nil
	}
	workers := e.workerCount(len(sources))
	bcs := e.broadcasters(t.sim, workers)
	return parallel.ForEachIndexed(len(sources), workers, func(worker, b int) error {
		res, err := bcs[worker].Broadcast(sources[b])
		if err != nil {
			return err
		}
		harvest(res, b)
		return nil
	})
}

// Finish closes the round: observation tampering, the synchronous selector
// update, round accounting, observer telemetry, and dynamics — byte-for-byte
// the same tail Step runs. Finish may be called without BroadcastAll (every
// observation is then censored, which selectors already handle), but calling
// either method after Finish is an error.
func (t *TimedRound) Finish() (RoundReport, error) {
	if t.done {
		return RoundReport{}, fmt.Errorf("core: timed round already finished")
	}
	t.done = true
	e := t.e
	return e.finishRound(e.scratch.obs[:e.table.N()], t.blocks)
}
