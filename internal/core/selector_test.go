package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
)

func TestBuiltinSelectorValidation(t *testing.T) {
	if _, err := NewVanillaSelector(-1, 0.9); err == nil {
		t.Fatal("negative explore accepted")
	}
	if _, err := NewSubsetSelector(2, 0); err == nil {
		t.Fatal("zero percentile accepted")
	}
	if _, err := NewSubsetSelector(2, 1.5); err == nil {
		t.Fatal("percentile above 1 accepted")
	}
	if _, err := NewUCBSelector(0.9, -time.Millisecond); err == nil {
		t.Fatal("negative UCB constant accepted")
	}
	if _, err := NewRandomSelector(-2); err == nil {
		t.Fatal("negative random explore accepted")
	}
	if _, err := SelectorFromMethod(Method(9), DefaultParams(Subset)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// testView builds a view over k neighbors and the given offset matrix.
func testView(neighbors []int, offsets [][]time.Duration, outDegree int) NeighborView {
	obs := NewObservations(neighbors, len(offsets))
	for b, row := range offsets {
		copy(obs.Offsets[b], row)
	}
	return NeighborView{
		Node:       0,
		OutDegree:  outDegree,
		Candidates: 10,
		Obs:        obs,
		Rand:       rng.New(7).Derive("test-view"),
	}
}

func TestDecideValidatesDecisions(t *testing.T) {
	view := testView([]int{10, 11, 12}, [][]time.Duration{{1, 2, 3}}, 3)
	cases := []struct {
		name string
		d    Decision
	}{
		{"negative dial", Decision{Keep: []int{0, 1, 2}, Dial: -1}},
		{"index out of range", Decision{Keep: []int{0, 1, 3}}},
		{"duplicate index", Decision{Keep: []int{0, 1}, Drop: []int{1}}},
		{"incomplete partition", Decision{Keep: []int{0}, Drop: []int{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel := SelectorFunc(func(NeighborView) (Decision, error) { return tc.d, nil })
			if _, err := Decide(sel, view); err == nil {
				t.Fatalf("invalid decision %+v accepted", tc.d)
			}
		})
	}
	boom := SelectorFunc(func(NeighborView) (Decision, error) {
		return Decision{}, fmt.Errorf("boom")
	})
	if _, err := Decide(boom, view); err == nil {
		t.Fatal("selector error not propagated")
	}
	ok := SelectorFunc(func(NeighborView) (Decision, error) {
		return Decision{Keep: []int{2, 0}, Drop: []int{1}, Dial: 1}, nil
	})
	if _, err := Decide(ok, view); err != nil {
		t.Fatal(err)
	}
}

// TestBuiltinSelectorDecisions pins the built-in policies to hand-checked
// decisions on a small observation matrix.
func TestBuiltinSelectorDecisions(t *testing.T) {
	ms := time.Millisecond
	inf := stats.InfDuration
	// Neighbor 0: always fast. Neighbor 1: fast where 0 is slow
	// (complementary). Neighbor 2: mediocre everywhere. Neighbor 3: never
	// delivers.
	offsets := [][]time.Duration{
		{0, 40 * ms, 20 * ms, inf},
		{0, 42 * ms, 21 * ms, inf},
		{50 * ms, 0, 22 * ms, inf},
		{52 * ms, 0, 23 * ms, inf},
	}
	neighbors := []int{100, 101, 102, 103}

	vanilla, err := NewVanillaSelector(2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decide(vanilla, testView(neighbors, offsets, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Independent 0.9-percentiles rank 2 (≈22.7ms) best, then 1 (≈41.4ms),
	// then 0 (≈51.4ms), then the never-delivering 3; drops stay in ranked
	// order.
	if !reflect.DeepEqual(d.Keep, []int{2, 1}) {
		t.Fatalf("vanilla keep = %v, want [2 1]", d.Keep)
	}
	if !reflect.DeepEqual(d.Drop, []int{0, 3}) {
		t.Fatalf("vanilla drop = %v, want [0 3]", d.Drop)
	}
	if d.Dial != 2 {
		t.Fatalf("vanilla dial = %d, want 2", d.Dial)
	}

	subset, err := NewSubsetSelector(2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	d, err = Decide(subset, testView(neighbors, offsets, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Joint scoring values complementarity: 2 wins the first greedy pick,
	// then 1 complements it (fast exactly where 2's picks are slowest).
	if !reflect.DeepEqual(d.Keep, []int{1, 2}) {
		t.Fatalf("subset keep = %v, want [1 2]", d.Keep)
	}
	if !reflect.DeepEqual(d.Drop, []int{0, 3}) {
		t.Fatalf("subset drop = %v, want [0 3]", d.Drop)
	}

	random, err := NewRandomSelector(2)
	if err != nil {
		t.Fatal(err)
	}
	d, err = Decide(random, testView(neighbors, offsets, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Keep) != 2 || len(d.Drop) != 2 || d.Dial != 2 {
		t.Fatalf("random decision %+v, want 2 keep / 2 drop / 2 dial", d)
	}
	// Same view, same stream: identical decision.
	d2, err := Decide(random, testView(neighbors, offsets, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("random selector not deterministic: %+v vs %+v", d, d2)
	}
}

func TestUCBSelectorStateLifecycle(t *testing.T) {
	ms := time.Millisecond
	sel, err := NewUCBSelector(0.9, 10*ms)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbor 201 is consistently far behind; after enough accumulated
	// rounds the confidence intervals separate and it is evicted.
	offsets := [][]time.Duration{{0, 500 * ms}}
	var evicted bool
	for round := 0; round < 40 && !evicted; round++ {
		d, err := Decide(sel, testView([]int{200, 201}, offsets, 2))
		if err != nil {
			t.Fatal(err)
		}
		evicted = len(d.Drop) == 1
		if evicted && d.Drop[0] != 1 {
			t.Fatalf("evicted index %d, want 1 (the slow neighbor)", d.Drop[0])
		}
	}
	if !evicted {
		t.Fatal("UCB never separated a 500ms-slower neighbor")
	}
	ucb := sel.(*ucbSelector)
	ucb.mu.Lock()
	samples := len(ucb.hist[0][200])
	ucb.mu.Unlock()
	if samples == 0 {
		t.Fatal("kept neighbor accumulated no history")
	}
	sel.(NodeStateResetter).ResetNodeState(0)
	ucb.mu.Lock()
	left := len(ucb.hist)
	ucb.mu.Unlock()
	if left != 0 {
		t.Fatal("ResetNodeState left history behind")
	}
}

// recordingSelector wraps a selector, capturing every view and decision.
type recordingSelector struct {
	inner     Selector
	views     []NeighborView
	decisions []Decision
	mu        chan struct{} // 1-buffered semaphore; keeps the test free of sync imports
}

func newRecordingSelector(inner Selector) *recordingSelector {
	return &recordingSelector{inner: inner, mu: make(chan struct{}, 1)}
}

func (r *recordingSelector) SelectNeighbors(view NeighborView) (Decision, error) {
	d, err := r.inner.SelectNeighbors(view)
	if err != nil {
		return d, err
	}
	r.mu <- struct{}{}
	r.views = append(r.views, view)
	r.decisions = append(r.decisions, d)
	<-r.mu
	return d, nil
}

// TestEngineDrivesSelector proves the engine is a faithful driver: the
// views it hands the selector snapshot each node's real outgoing set, and
// the post-round table reflects exactly the keep/drop/dial decisions the
// selector returned.
func TestEngineDrivesSelector(t *testing.T) {
	tn := newTestNetwork(t, 40, 31)
	params := DefaultParams(Subset)
	params.RoundBlocks = 5
	inner, err := NewSubsetSelector(params.Explore, params.Percentile)
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecordingSelector(inner)
	cfg := tn.config(Subset, params)
	cfg.Selector = rec
	var event RoundEvent
	cfg.Observer = ObserverFunc(func(ev RoundEvent) { event = ev })
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]int, e.N())
	for v := 0; v < e.N(); v++ {
		before[v] = e.Table().OutNeighbors(v)
	}
	report, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	if report.Unfilled != 0 {
		t.Fatalf("round left %d slots unfilled; assertions below assume full dials", report.Unfilled)
	}
	if len(rec.views) != e.N() {
		t.Fatalf("selector consulted for %d nodes, want %d", len(rec.views), e.N())
	}
	droppedEdges := make(map[int][]int) // node -> dropped neighbor IDs, in event order
	for _, edge := range event.Dropped {
		droppedEdges[edge[0]] = append(droppedEdges[edge[0]], edge[1])
	}
	addedCount := make(map[int]int)
	for _, edge := range event.Added {
		addedCount[edge[0]]++
	}
	seen := make(map[int]bool, e.N())
	for i, view := range rec.views {
		v := view.Node
		if seen[v] {
			t.Fatalf("node %d decided twice", v)
		}
		seen[v] = true
		if view.OutDegree != params.OutDegree || view.Candidates != e.N()-1 {
			t.Fatalf("view context %+v wrong for node %d", view, v)
		}
		if !reflect.DeepEqual(view.Obs.Neighbors, before[v]) {
			t.Fatalf("node %d scored %v, expected its round-start neighbors %v",
				v, view.Obs.Neighbors, before[v])
		}
		d := rec.decisions[i]
		// The event stream must report exactly the selector's drops, in
		// the selector's order.
		wantDrops := make([]int, len(d.Drop))
		for j, di := range d.Drop {
			wantDrops[j] = view.Obs.Neighbors[di]
		}
		if len(wantDrops) == 0 {
			wantDrops = nil
		}
		if !reflect.DeepEqual(droppedEdges[v], wantDrops) {
			t.Fatalf("node %d event drops %v, selector decided %v", v, droppedEdges[v], wantDrops)
		}
		// Exploration spends exactly the dial budget (no unfilled slots).
		if addedCount[v] != d.Dial {
			t.Fatalf("node %d added %d connections, dial budget was %d", v, addedCount[v], d.Dial)
		}
		// Kept neighbors survive the round; the final out-degree is
		// keep + dial.
		for _, ki := range d.Keep {
			if u := view.Obs.Neighbors[ki]; !e.Table().HasOut(v, u) {
				t.Fatalf("kept neighbor %d of node %d was disconnected", u, v)
			}
		}
		if got, want := e.Table().OutDegree(v), len(d.Keep)+d.Dial; got != want {
			t.Fatalf("node %d out-degree %d after round, want keep+dial = %d", v, got, want)
		}
	}
}

// TestExplicitSelectorMatchesMethod proves the default Method path and an
// explicitly injected built-in selector are the same engine: identical
// adjacency and reports across rounds.
func TestExplicitSelectorMatchesMethod(t *testing.T) {
	for _, m := range []Method{Vanilla, Subset, UCB} {
		t.Run(m.String(), func(t *testing.T) {
			params := DefaultParams(m)
			params.RoundBlocks = 5
			if m == UCB {
				params.RoundBlocks = 1
			}
			build := func(explicit bool) *Engine {
				tn := newTestNetwork(t, 40, 77)
				cfg := tn.config(m, params)
				if explicit {
					sel, err := SelectorFromMethod(m, params)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Selector = sel
				}
				e, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			byMethod, bySelector := build(false), build(true)
			for r := 0; r < 3; r++ {
				ra, err := byMethod.Step()
				if err != nil {
					t.Fatal(err)
				}
				rb, err := bySelector.Step()
				if err != nil {
					t.Fatal(err)
				}
				if ra != rb {
					t.Fatalf("round %d reports diverge: %+v vs %+v", r, ra, rb)
				}
			}
			if !reflect.DeepEqual(byMethod.Adjacency(), bySelector.Adjacency()) {
				t.Fatal("adjacency diverges between Method default and explicit selector")
			}
		})
	}
}

// TestRandomSelectorEngineDeterminism: the baseline selector draws only
// from the per-(round, node) view streams, so equal seeds reproduce runs.
func TestRandomSelectorEngineDeterminism(t *testing.T) {
	build := func() *Engine {
		tn := newTestNetwork(t, 40, 13)
		params := DefaultParams(Subset)
		params.RoundBlocks = 5
		sel, err := NewRandomSelector(params.Explore)
		if err != nil {
			t.Fatal(err)
		}
		cfg := tn.config(Subset, params)
		cfg.Selector = sel
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(), build()
	for r := 0; r < 3; r++ {
		ra, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("round %d reports diverge across identical runs", r)
		}
	}
	if !reflect.DeepEqual(a.Adjacency(), b.Adjacency()) {
		t.Fatal("random-selector runs diverge for equal seeds")
	}
}
