package core

import (
	"reflect"
	"testing"
)

// scaleEngine builds an engine over a fresh but identically-seeded network
// with the given observation window, shard count, and worker count.
func scaleEngine(t *testing.T, m Method, window, shards, workers int) *Engine {
	t.Helper()
	tn := newTestNetwork(t, 120, 31)
	cfg := tn.config(m, Params{})
	params := DefaultParams(m)
	if m != UCB {
		params.RoundBlocks = 40
	}
	cfg.Params = params
	cfg.ObservationWindow = window
	cfg.Shards = shards
	cfg.Workers = workers
	engine, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// sameRun steps both engines in lockstep and fails on any divergence in
// round reports, final topology, or the delay metric.
func sameRun(t *testing.T, want, got *Engine, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		repWant, err := want.Step()
		if err != nil {
			t.Fatal(err)
		}
		repGot, err := got.Step()
		if err != nil {
			t.Fatal(err)
		}
		if repWant != repGot {
			t.Fatalf("round %d reports diverge: %+v vs %+v", r, repWant, repGot)
		}
	}
	if !reflect.DeepEqual(outgoingSnapshot(want), outgoingSnapshot(got)) {
		t.Fatal("final outgoing tables diverge")
	}
	dWant, err := want.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	dGot, err := got.Delays(0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dWant, dGot) {
		t.Fatal("delay metrics diverge")
	}
}

// TestObservationWindowFullWidthMatchesDense checks the windowed
// observation path against the dense one where they must coincide exactly:
// a window at least as wide as the round's block count observes every
// block, so reports, topology evolution, and delays are bit-for-bit those
// of the dense run.
func TestObservationWindowFullWidthMatchesDense(t *testing.T) {
	for _, m := range []Method{Vanilla, Subset} {
		t.Run(m.String(), func(t *testing.T) {
			dense := scaleEngine(t, m, 0, 0, 1)
			windowed := scaleEngine(t, m, 40, 0, 1) // == RoundBlocks
			wide := scaleEngine(t, m, 500, 0, 1)    // > RoundBlocks, clamped
			sameRun(t, dense, windowed, 4)
			// wide saw the same four rounds only if it evolved identically;
			// replay it against a fresh dense engine.
			sameRun(t, scaleEngine(t, m, 0, 0, 1), wide, 4)
		})
	}
}

// TestWindowedEngineDeterministicAcrossWorkers checks the narrow-window
// path (scoring only the last w < RoundBlocks blocks) is itself
// deterministic across worker counts — the window never reintroduces a
// schedule dependence.
func TestWindowedEngineDeterministicAcrossWorkers(t *testing.T) {
	seq := scaleEngine(t, Subset, 10, 0, 1)
	par := scaleEngine(t, Subset, 10, 0, 8)
	sameRun(t, seq, par, 4)
}

// TestShardedEngineMatchesSingleQueue is the engine-level shard acceptance
// check: a sharded engine produces bit-for-bit the single-queue engine's
// rounds at any shard and worker count, including combined with a narrow
// observation window.
func TestShardedEngineMatchesSingleQueue(t *testing.T) {
	t.Run("shards-4", func(t *testing.T) {
		single := scaleEngine(t, Subset, 0, 0, 1)
		sharded := scaleEngine(t, Subset, 0, 4, 1)
		sameRun(t, single, sharded, 4)
	})
	t.Run("shards-4-workers-8", func(t *testing.T) {
		single := scaleEngine(t, Subset, 0, 0, 1)
		sharded := scaleEngine(t, Subset, 0, 4, 8)
		sameRun(t, single, sharded, 4)
	})
	t.Run("windowed-sharded", func(t *testing.T) {
		single := scaleEngine(t, Subset, 10, 0, 1)
		sharded := scaleEngine(t, Subset, 10, 4, 8)
		sameRun(t, single, sharded, 4)
	})
}

// TestScaleConfigValidation covers the new Config knobs' validation.
func TestScaleConfigValidation(t *testing.T) {
	tn := newTestNetwork(t, 50, 1)
	base := tn.config(Subset, DefaultParams(Subset))
	bad := base
	bad.ObservationWindow = -1
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("NewEngine accepted a negative observation window")
	}
	bad = base
	bad.Shards = -2
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("NewEngine accepted a negative shard count")
	}
	bad = base
	bad.LatencyMode = 99
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("NewEngine accepted an invalid latency mode")
	}
}
