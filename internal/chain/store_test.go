package chain

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// testChain builds a linear chain of n blocks on top of parent, with
// nonces drawn from the given base so distinct branches never collide.
func testChain(parent *Block, n int, base uint64) []*Block {
	out := make([]*Block, n)
	for i := range out {
		out[i] = NewBlock(parent, nil, time.UnixMilli(int64(base)+int64(i)), base+uint64(i))
		parent = out[i]
	}
	return out
}

func newTestStore(t *testing.T, tag string) (*Store, *Block) {
	t.Helper()
	g := NewGenesis(tag)
	s, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

// Equal-height forks must resolve to the earliest-seen block no matter in
// which order AddAt learns about them.
func TestAddAtTieBreaksBySeenTime(t *testing.T) {
	g := NewGenesis("tie")
	a := NewBlock(g, nil, time.UnixMilli(1), 1)
	b := NewBlock(g, nil, time.UnixMilli(2), 2)

	for _, order := range [][2]struct {
		b    *Block
		seen time.Duration
	}{
		{{a, 10 * time.Millisecond}, {b, 20 * time.Millisecond}},
		{{b, 20 * time.Millisecond}, {a, 10 * time.Millisecond}},
	} {
		s, err := NewStore(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range order {
			if _, err := s.AddAt(off.b, off.seen); err != nil {
				t.Fatal(err)
			}
		}
		if got := s.Tip().Header.Hash(); got != a.Header.Hash() {
			t.Fatalf("tip %s, want earliest-seen block a (%s)", got, a.Header.Hash())
		}
	}
}

// Equal seen times fall back to the hash tie-break, still order-independent.
func TestAddAtTieBreaksByHashOnEqualTimes(t *testing.T) {
	g := NewGenesis("hash-tie")
	a := NewBlock(g, nil, time.UnixMilli(1), 1)
	b := NewBlock(g, nil, time.UnixMilli(2), 2)
	want := a
	if bytesCompare(b.Header.Hash(), a.Header.Hash()) < 0 {
		want = b
	}
	for _, first := range []*Block{a, b} {
		second := b
		if first == b {
			second = a
		}
		s, err := NewStore(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddAt(first, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddAt(second, time.Second); err != nil {
			t.Fatal(err)
		}
		if got := s.Tip().Header.Hash(); got != want.Header.Hash() {
			t.Fatalf("tip %s, want hash-minimal block %s", got, want.Header.Hash())
		}
	}
}

func bytesCompare(a, b Hash) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// The resolved tip must be identical for any concurrent interleaving of
// AddAt calls — the property the continuous-time workload engine depends
// on at every worker count.
func TestAddAtDeterministicUnderConcurrency(t *testing.T) {
	g := NewGenesis("conc-tie")
	branchA := testChain(g, 5, 100)
	branchB := testChain(g, 5, 200)
	type offer struct {
		b    *Block
		seen time.Duration
	}
	var offers []offer
	for i, b := range branchA {
		offers = append(offers, offer{b, time.Duration(10+i) * time.Millisecond})
	}
	for i, b := range branchB {
		// Same heights, strictly later seen times: branch A must win ties.
		offers = append(offers, offer{b, time.Duration(15+i) * time.Millisecond})
	}

	reference, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offers {
		if _, err := reference.AddAt(o.b, o.seen); err != nil {
			t.Fatal(err)
		}
	}
	wantTip := reference.Tip().Header.Hash()
	if wantTip != branchA[len(branchA)-1].Header.Hash() {
		t.Fatalf("reference tip is not branch A's head")
	}

	for trial := 0; trial < 20; trial++ {
		shuffled := append([]offer(nil), offers...)
		r := rand.New(rand.NewSource(int64(trial)))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s, err := NewStore(g)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := w; i < len(shuffled); i += 4 {
					// Out-of-order offers may stash; that's fine — the
					// parent's arrival reconnects them.
					_, _ = s.AddAt(shuffled[i].b, shuffled[i].seen)
				}
			}()
		}
		wg.Wait()
		// Re-offer anything still stranded (a child can race ahead of a
		// parent that itself was stashed by another goroutine's ordering).
		for s.OrphanCount() > 0 {
			progressed := false
			for _, o := range shuffled {
				if s.Has(o.b.Header.Hash()) {
					continue
				}
				if res, err := s.AddAt(o.b, o.seen); err == nil && !res.Stashed {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		if got := s.Tip().Header.Hash(); got != wantTip {
			t.Fatalf("trial %d: tip %s, want %s", trial, got, wantTip)
		}
	}
}

// A child offered before its parent stashes, then reconnects — including
// whole stashed sub-chains — when the parent arrives.
func TestAddAtOrphanUnstashing(t *testing.T) {
	s, g := newTestStore(t, "orphan")
	chain := testChain(g, 4, 1)

	// Offer 2, 3, 4 first: all stash (2's parent unknown; 3 waits on 2...).
	for i := 3; i >= 1; i-- {
		res, err := s.AddAt(chain[i], time.Duration(i)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stashed {
			t.Fatalf("block %d should have stashed", i)
		}
	}
	if got := s.OrphanCount(); got != 3 {
		t.Fatalf("orphan count %d, want 3", got)
	}
	if s.Height() != 0 {
		t.Fatalf("height %d before parent arrival, want 0", s.Height())
	}

	// The missing link connects everything in one cascade.
	res, err := s.AddAt(chain[0], 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stashed || res.Connected != 4 {
		t.Fatalf("connecting the base: %+v, want Connected=4", res)
	}
	if !res.TipChanged || res.ReorgDepth != 0 {
		t.Fatalf("cascade should extend the tip without a reorg: %+v", res)
	}
	if s.OrphanCount() != 0 {
		t.Fatalf("orphans remain after unstash: %d", s.OrphanCount())
	}
	if s.Height() != 4 {
		t.Fatalf("height %d, want 4", s.Height())
	}
	if s.Tip().Header.Hash() != chain[3].Header.Hash() {
		t.Fatal("tip is not the unstashed chain head")
	}
}

// Reorg depth is the number of abandoned previously-canonical blocks.
func TestAddAtReorgDepth(t *testing.T) {
	s, g := newTestStore(t, "reorg")
	short := testChain(g, 2, 10)
	long := testChain(g, 3, 20)

	for i, b := range short {
		if _, err := s.AddAt(b, time.Duration(i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// The rival branch stays behind until its third block.
	for i, b := range long[:2] {
		res, err := s.AddAt(b, time.Duration(100+i)*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if res.TipChanged {
			t.Fatalf("rival block %d moved the tip early", i)
		}
	}
	res, err := s.AddAt(long[2], 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TipChanged || res.ReorgDepth != 2 {
		t.Fatalf("overtaking reorg: %+v, want TipChanged with depth 2", res)
	}
	if s.Tip().Header.Hash() != long[2].Header.Hash() {
		t.Fatal("tip did not move to the longer branch")
	}

	// Extending the new tip is depth 0.
	ext := NewBlock(long[2], nil, time.UnixMilli(99), 99)
	res, err = s.AddAt(ext, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TipChanged || res.ReorgDepth != 0 {
		t.Fatalf("extension: %+v, want TipChanged with depth 0", res)
	}
}

func TestAddAtDuplicates(t *testing.T) {
	s, g := newTestStore(t, "dup")
	b1 := NewBlock(g, nil, time.UnixMilli(1), 1)
	if _, err := s.AddAt(b1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddAt(b1, 2*time.Millisecond); !errors.Is(err, ErrDuplicateBlock) {
		t.Fatalf("connected duplicate: %v", err)
	}
	orphan := NewBlock(b1, nil, time.UnixMilli(2), 2)
	orphan2 := NewBlock(orphan, nil, time.UnixMilli(3), 3)
	if res, err := s.AddAt(orphan2, time.Millisecond); err != nil || !res.Stashed {
		t.Fatalf("stash: %+v, %v", res, err)
	}
	if _, err := s.AddAt(orphan2, 2*time.Millisecond); !errors.Is(err, ErrDuplicateBlock) {
		t.Fatalf("stashed duplicate: %v", err)
	}
}

func TestAddAtOrphanPoolCap(t *testing.T) {
	s, g := newTestStore(t, "cap")
	missing := NewBlock(g, nil, time.UnixMilli(1), 1)
	next := missing
	for i := 0; i < MaxOrphans; i++ {
		child := NewBlock(next, nil, time.UnixMilli(int64(i)+2), uint64(i)+2)
		res, err := s.AddAt(child, time.Duration(i))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stashed {
			t.Fatalf("block %d did not stash", i)
		}
		next = child
	}
	over := NewBlock(next, nil, time.UnixMilli(1<<20), 1<<20)
	if _, err := s.AddAt(over, time.Hour); !errors.Is(err, ErrOrphanPoolFull) {
		t.Fatalf("orphan pool overflow: %v", err)
	}
}

// Add keeps its strict legacy semantics alongside AddAt.
func TestAddStillRejectsOrphans(t *testing.T) {
	s, g := newTestStore(t, "strict")
	b1 := NewBlock(g, nil, time.UnixMilli(1), 1)
	b2 := NewBlock(b1, nil, time.UnixMilli(2), 2)
	if err := s.Add(b2); !errors.Is(err, ErrOrphanBlock) {
		t.Fatalf("Add accepted an orphan: %v", err)
	}
	if err := s.Add(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b2); err != nil {
		t.Fatal(err)
	}
	if s.Height() != 2 {
		t.Fatalf("height %d, want 2", s.Height())
	}
}
