// Package chain is a minimal but real blockchain substrate: SHA-256 linked
// block headers with Merkle transaction roots, canonical binary encoding,
// a thread-safe store with longest-chain fork choice, and a Poisson mining
// schedule. The live p2p node (internal/p2p) gossips these blocks; the
// abstract simulator does not need them.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
)

// Hash is a SHA-256 digest.
type Hash [32]byte

// String renders the first bytes of the hash for logs.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:8]) }

// Header is a block header. Headers chain by PrevHash and commit to the
// block body through TxRoot.
type Header struct {
	// Version is the header format version (currently 1).
	Version uint32
	// Height is the block's distance from genesis.
	Height uint64
	// PrevHash is the parent block's header hash.
	PrevHash Hash
	// TxRoot is the Merkle root of the transaction list.
	TxRoot Hash
	// TimeUnixMilli is the miner's wall-clock timestamp.
	TimeUnixMilli int64
	// Nonce disambiguates blocks mined by the same node at the same time.
	Nonce uint64
}

const headerSize = 4 + 8 + 32 + 32 + 8 + 8

// marshal appends the canonical little-endian encoding of the header.
func (h *Header) marshal(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, h.Version)
	buf = binary.LittleEndian.AppendUint64(buf, h.Height)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.TxRoot[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.TimeUnixMilli))
	buf = binary.LittleEndian.AppendUint64(buf, h.Nonce)
	return buf
}

func (h *Header) unmarshal(buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("chain: header needs %d bytes, have %d", headerSize, len(buf))
	}
	h.Version = binary.LittleEndian.Uint32(buf[0:4])
	h.Height = binary.LittleEndian.Uint64(buf[4:12])
	copy(h.PrevHash[:], buf[12:44])
	copy(h.TxRoot[:], buf[44:76])
	h.TimeUnixMilli = int64(binary.LittleEndian.Uint64(buf[76:84]))
	h.Nonce = binary.LittleEndian.Uint64(buf[84:92])
	return nil
}

// Hash returns the header's SHA-256 digest, which identifies the block.
func (h *Header) Hash() Hash {
	return sha256.Sum256(h.marshal(make([]byte, 0, headerSize)))
}

// Block is a header plus its transaction payloads.
type Block struct {
	Header Header
	Txs    [][]byte
}

// Limits protecting decoders from hostile payloads.
const (
	// MaxTxs bounds transactions per block.
	MaxTxs = 1 << 16
	// MaxTxSize bounds a single transaction's bytes.
	MaxTxSize = 1 << 20
	// MaxBlockSize bounds a whole encoded block.
	MaxBlockSize = 4 << 20
)

// MerkleRoot computes the Merkle root of the transaction list: leaves are
// SHA-256 of each transaction; odd nodes are paired with themselves; the
// root of an empty list is the zero hash.
func MerkleRoot(txs [][]byte) Hash {
	if len(txs) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = sha256.Sum256(tx)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i
			}
			var buf [64]byte
			copy(buf[:32], level[i][:])
			copy(buf[32:], level[j][:])
			next = append(next, sha256.Sum256(buf[:]))
		}
		level = next
	}
	return level[0]
}

// Encode returns the canonical binary encoding of the block.
func (b *Block) Encode() ([]byte, error) {
	if len(b.Txs) > MaxTxs {
		return nil, fmt.Errorf("chain: %d transactions exceed limit %d", len(b.Txs), MaxTxs)
	}
	size := headerSize + 4
	for _, tx := range b.Txs {
		if len(tx) > MaxTxSize {
			return nil, fmt.Errorf("chain: transaction of %d bytes exceeds limit %d", len(tx), MaxTxSize)
		}
		size += 4 + len(tx)
	}
	if size > MaxBlockSize {
		return nil, fmt.Errorf("chain: block of %d bytes exceeds limit %d", size, MaxBlockSize)
	}
	buf := make([]byte, 0, size)
	buf = b.Header.marshal(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tx)))
		buf = append(buf, tx...)
	}
	return buf, nil
}

// DecodeBlock parses a canonical block encoding.
func DecodeBlock(buf []byte) (*Block, error) {
	if len(buf) > MaxBlockSize {
		return nil, fmt.Errorf("chain: encoded block of %d bytes exceeds limit %d", len(buf), MaxBlockSize)
	}
	var b Block
	if err := b.Header.unmarshal(buf); err != nil {
		return nil, err
	}
	rest := buf[headerSize:]
	if len(rest) < 4 {
		return nil, errors.New("chain: truncated transaction count")
	}
	count := binary.LittleEndian.Uint32(rest[:4])
	if count > MaxTxs {
		return nil, fmt.Errorf("chain: transaction count %d exceeds limit %d", count, MaxTxs)
	}
	rest = rest[4:]
	b.Txs = make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, errors.New("chain: truncated transaction length")
		}
		txLen := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if txLen > MaxTxSize {
			return nil, fmt.Errorf("chain: transaction of %d bytes exceeds limit %d", txLen, MaxTxSize)
		}
		if uint32(len(rest)) < txLen {
			return nil, errors.New("chain: truncated transaction body")
		}
		b.Txs = append(b.Txs, append([]byte(nil), rest[:txLen]...))
		rest = rest[txLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after block", len(rest))
	}
	return &b, nil
}

// CheckBlock verifies a block's internal consistency: version, Merkle
// commitment, and size limits.
func CheckBlock(b *Block) error {
	if b == nil {
		return errors.New("chain: nil block")
	}
	if b.Header.Version != 1 {
		return fmt.Errorf("chain: unsupported block version %d", b.Header.Version)
	}
	if got, want := MerkleRoot(b.Txs), b.Header.TxRoot; got != want {
		return fmt.Errorf("chain: merkle root mismatch: body %s, header %s", got, want)
	}
	if len(b.Txs) > MaxTxs {
		return fmt.Errorf("chain: %d transactions exceed limit %d", len(b.Txs), MaxTxs)
	}
	return nil
}

// NewGenesis builds the deterministic genesis block for a network tag.
func NewGenesis(tag string) *Block {
	txs := [][]byte{[]byte("genesis:" + tag)}
	return &Block{
		Header: Header{
			Version: 1,
			Height:  0,
			TxRoot:  MerkleRoot(txs),
		},
		Txs: txs,
	}
}

// NewBlock assembles a child of prev carrying the given transactions.
func NewBlock(prev *Block, txs [][]byte, now time.Time, nonce uint64) *Block {
	cp := make([][]byte, len(txs))
	for i, tx := range txs {
		cp[i] = append([]byte(nil), tx...)
	}
	return &Block{
		Header: Header{
			Version:       1,
			Height:        prev.Header.Height + 1,
			PrevHash:      prev.Header.Hash(),
			TxRoot:        MerkleRoot(cp),
			TimeUnixMilli: now.UnixMilli(),
			Nonce:         nonce,
		},
		Txs: cp,
	}
}

// NextMiningInterval draws an exponential interarrival time with the given
// mean, the memoryless block production process of §2.1.
func NextMiningInterval(r *rng.RNG, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(mean))
}
