package chain

import (
	"errors"
	"fmt"
	"sync"
)

// Store errors.
var (
	// ErrDuplicateBlock indicates the block is already stored.
	ErrDuplicateBlock = errors.New("chain: duplicate block")
	// ErrOrphanBlock indicates the block's parent is unknown.
	ErrOrphanBlock = errors.New("chain: orphan block")
	// ErrBadHeight indicates the block's height is not parent height + 1.
	ErrBadHeight = errors.New("chain: bad height")
)

// Store is a thread-safe block store with longest-chain (highest block)
// fork choice. Ties keep the first-seen tip, matching Bitcoin's rule.
type Store struct {
	mu      sync.RWMutex
	blocks  map[Hash]*Block
	genesis Hash
	tip     Hash
}

// NewStore creates a store rooted at the given genesis block.
func NewStore(genesis *Block) (*Store, error) {
	if err := CheckBlock(genesis); err != nil {
		return nil, err
	}
	if genesis.Header.Height != 0 {
		return nil, fmt.Errorf("chain: genesis height %d, want 0", genesis.Header.Height)
	}
	h := genesis.Header.Hash()
	return &Store{
		blocks:  map[Hash]*Block{h: genesis},
		genesis: h,
		tip:     h,
	}, nil
}

// Add validates and stores a block. The parent must already be present.
// The tip advances when the new block is strictly higher.
func (s *Store) Add(b *Block) error {
	if err := CheckBlock(b); err != nil {
		return err
	}
	h := b.Header.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blocks[h]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateBlock, h)
	}
	parent, ok := s.blocks[b.Header.PrevHash]
	if !ok {
		return fmt.Errorf("%w: parent %s of %s", ErrOrphanBlock, b.Header.PrevHash, h)
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: %d after parent %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	s.blocks[h] = b
	if b.Header.Height > s.blocks[s.tip].Header.Height {
		s.tip = h
	}
	return nil
}

// Has reports whether the block is stored.
func (s *Store) Has(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blocks[h]
	return ok
}

// Get returns a stored block, or nil.
func (s *Store) Get(h Hash) *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[h]
}

// Tip returns the current best block.
func (s *Store) Tip() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[s.tip]
}

// Height returns the current best height.
func (s *Store) Height() uint64 {
	return s.Tip().Header.Height
}

// Len returns the number of stored blocks (including genesis).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Genesis returns the genesis hash.
func (s *Store) Genesis() Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.genesis
}
