package chain

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Store errors.
var (
	// ErrDuplicateBlock indicates the block is already stored (or stashed).
	ErrDuplicateBlock = errors.New("chain: duplicate block")
	// ErrOrphanBlock indicates the block's parent is unknown.
	ErrOrphanBlock = errors.New("chain: orphan block")
	// ErrBadHeight indicates the block's height is not parent height + 1.
	ErrBadHeight = errors.New("chain: bad height")
	// ErrOrphanPoolFull indicates the orphan pool is at capacity.
	ErrOrphanPoolFull = errors.New("chain: orphan pool full")
)

// MaxOrphans bounds the orphan pool: blocks whose parent has not arrived
// yet are a transient state in any honest schedule, so the cap only
// protects against hostile floods of unconnectable headers.
const MaxOrphans = 1 << 12

// seenKey orders blocks by observation for first-seen fork resolution.
// The live path (Add) stamps blocks with a monotone sequence under the
// store lock; the simulation path (AddAt) stamps them with a caller-supplied
// simulated timestamp, falling back to the block hash so the resolved tip is
// a pure function of the offered (block, time) set — independent of the
// order, interleaving, or worker count with which blocks were offered.
type seenKey struct {
	at   time.Duration
	seq  uint64
	hash Hash
}

// before reports whether a was seen strictly earlier than b.
func (a seenKey) before(b seenKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return bytes.Compare(a.hash[:], b.hash[:]) < 0
}

// entry is a connected block plus its observation stamp.
type entry struct {
	block *Block
	seen  seenKey
}

// AddResult describes the effect of offering a block via AddAt.
type AddResult struct {
	// Stashed reports that the parent was unknown and the block went to
	// the orphan pool instead of the chain.
	Stashed bool
	// Connected is how many blocks entered the chain: the offered block
	// plus every orphan its arrival unstashed (0 when Stashed).
	Connected int
	// TipChanged reports whether the best tip moved.
	TipChanged bool
	// ReorgDepth is the number of previously-canonical blocks abandoned
	// by the tip move (0 for a plain extension of the old tip).
	ReorgDepth int
}

// Store is a thread-safe block store with longest-chain (highest block)
// fork choice. Height ties resolve by the first-seen rule, matching
// Bitcoin: via Add, "first" is arrival order at this store; via AddAt it
// is the caller's timestamp (ties broken by hash), which makes the
// resolved tip deterministic under any concurrent interleaving.
type Store struct {
	mu      sync.RWMutex
	blocks  map[Hash]*entry
	genesis Hash
	tip     Hash
	seq     uint64
	// orphans stashes offered blocks waiting for their parent, keyed by
	// the missing parent hash; orphanSet indexes every stashed hash.
	orphans   map[Hash][]*entry
	orphanSet map[Hash]struct{}
}

// NewStore creates a store rooted at the given genesis block.
func NewStore(genesis *Block) (*Store, error) {
	if err := CheckBlock(genesis); err != nil {
		return nil, err
	}
	if genesis.Header.Height != 0 {
		return nil, fmt.Errorf("chain: genesis height %d, want 0", genesis.Header.Height)
	}
	h := genesis.Header.Hash()
	return &Store{
		blocks:    map[Hash]*entry{h: {block: genesis, seen: seenKey{hash: h}}},
		genesis:   h,
		tip:       h,
		orphans:   make(map[Hash][]*entry),
		orphanSet: make(map[Hash]struct{}),
	}, nil
}

// Add validates and stores a block. The parent must already be present
// (an unknown parent is ErrOrphanBlock — the live node path requests the
// parent rather than stashing). The tip advances when the new block is
// strictly higher; height ties keep the earlier-added block.
func (s *Store) Add(b *Block) error {
	if err := CheckBlock(b); err != nil {
		return err
	}
	h := b.Header.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	e := &entry{block: b, seen: seenKey{seq: s.seq, hash: h}}
	if _, err := s.connectLocked(h, e, false); err != nil {
		return err
	}
	return nil
}

// AddAt offers a block observed at the given simulated timestamp. Unlike
// Add it stashes blocks whose parent is unknown in the orphan pool and
// connects them (recursively, with their recorded timestamps) once the
// parent arrives, and it resolves height ties by earliest timestamp (then
// hash) instead of call order — so the final tip and every AddResult-visible
// state are a deterministic function of the offered (block, seen) multiset,
// no matter how calls interleave across goroutines or workers.
func (s *Store) AddAt(b *Block, seen time.Duration) (AddResult, error) {
	if err := CheckBlock(b); err != nil {
		return AddResult{}, err
	}
	h := b.Header.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	var res AddResult
	if _, dup := s.blocks[h]; dup {
		return res, fmt.Errorf("%w: %s", ErrDuplicateBlock, h)
	}
	if _, dup := s.orphanSet[h]; dup {
		return res, fmt.Errorf("%w: %s (stashed)", ErrDuplicateBlock, h)
	}
	e := &entry{block: b, seen: seenKey{at: seen, hash: h}}
	if _, ok := s.blocks[b.Header.PrevHash]; !ok {
		if len(s.orphanSet) >= MaxOrphans {
			return res, fmt.Errorf("%w: %d blocks stashed", ErrOrphanPoolFull, len(s.orphanSet))
		}
		s.orphans[b.Header.PrevHash] = append(s.orphans[b.Header.PrevHash], e)
		s.orphanSet[h] = struct{}{}
		res.Stashed = true
		return res, nil
	}
	oldTip := s.tip
	connected, err := s.connectLocked(h, e, true)
	if err != nil {
		return res, err
	}
	res.Connected = connected
	if s.tip != oldTip {
		res.TipChanged = true
		res.ReorgDepth = s.reorgDepthLocked(oldTip, s.tip)
	}
	return res, nil
}

// connectLocked links a validated non-duplicate entry under the parent
// already known to exist, advances the tip by the longest-chain/first-seen
// rule, and (when unstash is set) drains any orphans waiting on it,
// recursively. Waiting orphans connect in seen order so multi-child
// unstashes are order-independent too. Returns how many blocks connected.
func (s *Store) connectLocked(h Hash, e *entry, unstash bool) (int, error) {
	if _, dup := s.blocks[h]; dup {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateBlock, h)
	}
	parent, ok := s.blocks[e.block.Header.PrevHash]
	if !ok {
		return 0, fmt.Errorf("%w: parent %s of %s", ErrOrphanBlock, e.block.Header.PrevHash, h)
	}
	if e.block.Header.Height != parent.block.Header.Height+1 {
		return 0, fmt.Errorf("%w: %d after parent %d", ErrBadHeight, e.block.Header.Height, parent.block.Header.Height)
	}
	s.blocks[h] = e
	tip := s.blocks[s.tip]
	if e.block.Header.Height > tip.block.Header.Height ||
		(e.block.Header.Height == tip.block.Header.Height && e.seen.before(tip.seen)) {
		s.tip = h
	}
	connected := 1
	if !unstash {
		return connected, nil
	}
	waiting := s.orphans[h]
	if len(waiting) == 0 {
		return connected, nil
	}
	delete(s.orphans, h)
	for i := 1; i < len(waiting); i++ {
		for j := i; j > 0 && waiting[j].seen.before(waiting[j-1].seen); j-- {
			waiting[j], waiting[j-1] = waiting[j-1], waiting[j]
		}
	}
	for _, child := range waiting {
		ch := child.block.Header.Hash()
		delete(s.orphanSet, ch)
		n, err := s.connectLocked(ch, child, true)
		if err != nil {
			return connected, err
		}
		connected += n
	}
	return connected, nil
}

// reorgDepthLocked counts the blocks on old's branch abandoned by moving
// the tip to new: the distance from old back to the two branches' common
// ancestor (0 when old is an ancestor of new).
func (s *Store) reorgDepthLocked(old, new Hash) int {
	a, b := s.blocks[old], s.blocks[new]
	for b.block.Header.Height > a.block.Header.Height {
		b = s.blocks[b.block.Header.PrevHash]
	}
	depth := 0
	for a.block.Header.Height > b.block.Header.Height {
		a = s.blocks[a.block.Header.PrevHash]
		depth++
	}
	for a != b {
		a = s.blocks[a.block.Header.PrevHash]
		b = s.blocks[b.block.Header.PrevHash]
		depth++
	}
	return depth
}

// Has reports whether the block is stored (connected; stashed orphans
// don't count).
func (s *Store) Has(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blocks[h]
	return ok
}

// Get returns a stored block, or nil.
func (s *Store) Get(h Hash) *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.blocks[h]; ok {
		return e.block
	}
	return nil
}

// Tip returns the current best block.
func (s *Store) Tip() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[s.tip].block
}

// Height returns the current best height.
func (s *Store) Height() uint64 {
	return s.Tip().Header.Height
}

// Len returns the number of connected blocks (including genesis).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// OrphanCount returns how many offered blocks are stashed waiting for a
// parent.
func (s *Store) OrphanCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.orphanSet)
}

// Genesis returns the genesis hash.
func (s *Store) Genesis() Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.genesis
}
