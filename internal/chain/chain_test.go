package chain

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
)

func TestHeaderHashDeterministic(t *testing.T) {
	h := Header{Version: 1, Height: 5, Nonce: 42, TimeUnixMilli: 1000}
	if h.Hash() != h.Hash() {
		t.Fatal("hash not deterministic")
	}
	h2 := h
	h2.Nonce = 43
	if h.Hash() == h2.Hash() {
		t.Fatal("different headers collided")
	}
}

func TestMerkleRoot(t *testing.T) {
	if MerkleRoot(nil) != (Hash{}) {
		t.Fatal("empty merkle root should be zero")
	}
	a := MerkleRoot([][]byte{[]byte("a")})
	b := MerkleRoot([][]byte{[]byte("b")})
	if a == b {
		t.Fatal("distinct single-tx roots collided")
	}
	ab := MerkleRoot([][]byte{[]byte("a"), []byte("b")})
	ba := MerkleRoot([][]byte{[]byte("b"), []byte("a")})
	if ab == ba {
		t.Fatal("merkle root must be order sensitive")
	}
	// Odd counts pair the last leaf with itself and must still be stable.
	odd := MerkleRoot([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if odd == ab {
		t.Fatal("3-leaf root equals 2-leaf root")
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	genesis := NewGenesis("test")
	b := NewBlock(genesis, [][]byte{[]byte("tx1"), []byte("tx22"), {}}, time.UnixMilli(123456), 7)
	buf, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != b.Header {
		t.Fatalf("header mismatch: %+v vs %+v", got.Header, b.Header)
	}
	if len(got.Txs) != 3 || string(got.Txs[0]) != "tx1" || string(got.Txs[1]) != "tx22" || len(got.Txs[2]) != 0 {
		t.Fatalf("txs mismatch: %q", got.Txs)
	}
	if got.Header.Hash() != b.Header.Hash() {
		t.Fatal("hash changed across roundtrip")
	}
}

// Property: encode/decode is the identity on arbitrary blocks.
func TestBlockRoundTripProperty(t *testing.T) {
	check := func(height uint64, nonce uint64, ts int64, txs [][]byte) bool {
		if len(txs) > 64 {
			txs = txs[:64]
		}
		for i := range txs {
			if len(txs[i]) > 1024 {
				txs[i] = txs[i][:1024]
			}
		}
		b := &Block{
			Header: Header{
				Version:       1,
				Height:        height,
				TxRoot:        MerkleRoot(txs),
				TimeUnixMilli: ts,
				Nonce:         nonce,
			},
			Txs: txs,
		}
		buf, err := b.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeBlock(buf)
		if err != nil {
			return false
		}
		if got.Header != b.Header || len(got.Txs) != len(b.Txs) {
			return false
		}
		for i := range txs {
			if string(got.Txs[i]) != string(txs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBlockRejectsCorruption(t *testing.T) {
	b := NewBlock(NewGenesis("x"), [][]byte{[]byte("tx")}, time.Now(), 1)
	buf, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlock(buf[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := DecodeBlock(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated tx accepted")
	}
	if _, err := DecodeBlock(append(buf, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCheckBlock(t *testing.T) {
	good := NewBlock(NewGenesis("x"), [][]byte{[]byte("tx")}, time.Now(), 1)
	if err := CheckBlock(good); err != nil {
		t.Fatal(err)
	}
	if err := CheckBlock(nil); err == nil {
		t.Fatal("nil block accepted")
	}
	bad := *good
	bad.Header.Version = 2
	if err := CheckBlock(&bad); err == nil {
		t.Fatal("bad version accepted")
	}
	tampered := *good
	tampered.Txs = [][]byte{[]byte("other")}
	if err := CheckBlock(&tampered); err == nil {
		t.Fatal("merkle mismatch accepted")
	}
}

func TestEncodeLimits(t *testing.T) {
	huge := &Block{Header: Header{Version: 1}, Txs: make([][]byte, MaxTxs+1)}
	if _, err := huge.Encode(); err == nil {
		t.Fatal("too many txs accepted")
	}
	big := &Block{Header: Header{Version: 1}, Txs: [][]byte{make([]byte, MaxTxSize+1)}}
	if _, err := big.Encode(); err == nil {
		t.Fatal("oversized tx accepted")
	}
}

func TestNewGenesisDeterministic(t *testing.T) {
	a := NewGenesis("net1")
	b := NewGenesis("net1")
	c := NewGenesis("net2")
	if a.Header.Hash() != b.Header.Hash() {
		t.Fatal("same tag should give same genesis")
	}
	if a.Header.Hash() == c.Header.Hash() {
		t.Fatal("different tags should differ")
	}
	if err := CheckBlock(a); err != nil {
		t.Fatal(err)
	}
}

func TestNewBlockCopiesTxs(t *testing.T) {
	tx := []byte("mutate-me")
	b := NewBlock(NewGenesis("x"), [][]byte{tx}, time.Now(), 0)
	tx[0] = 'X'
	if string(b.Txs[0]) != "mutate-me" {
		t.Fatal("block aliases caller's tx slice")
	}
}

func TestNextMiningInterval(t *testing.T) {
	r := rng.New(1)
	mean := 100 * time.Millisecond
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := NextMiningInterval(r, mean)
		if d < 0 {
			t.Fatal("negative interval")
		}
		sum += d
	}
	got := sum / n
	if got < 90*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("mean interval %v too far from %v", got, mean)
	}
	if NextMiningInterval(r, 0) != 0 {
		t.Fatal("zero mean should give zero interval")
	}
}

func TestStoreForkChoice(t *testing.T) {
	g := NewGenesis("store")
	s, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	b1 := NewBlock(g, [][]byte{[]byte("b1")}, time.UnixMilli(1), 1)
	b2 := NewBlock(b1, [][]byte{[]byte("b2")}, time.UnixMilli(2), 2)
	fork1 := NewBlock(g, [][]byte{[]byte("f1")}, time.UnixMilli(3), 3)
	for _, b := range []*Block{b1, b2, fork1} {
		if err := s.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Height() != 2 {
		t.Fatalf("height = %d, want 2", s.Height())
	}
	if s.Tip().Header.Hash() != b2.Header.Hash() {
		t.Fatal("tip should be the longest chain")
	}
	// Extending the fork to the same height must not displace the tip.
	fork2 := NewBlock(fork1, [][]byte{[]byte("f2")}, time.UnixMilli(4), 4)
	if err := s.Add(fork2); err != nil {
		t.Fatal(err)
	}
	if s.Tip().Header.Hash() != b2.Header.Hash() {
		t.Fatal("equal-height fork displaced first-seen tip")
	}
	// A longer fork wins.
	fork3 := NewBlock(fork2, [][]byte{[]byte("f3")}, time.UnixMilli(5), 5)
	if err := s.Add(fork3); err != nil {
		t.Fatal(err)
	}
	if s.Tip().Header.Hash() != fork3.Header.Hash() {
		t.Fatal("longer fork did not win")
	}
	if s.Len() != 6 {
		t.Fatalf("store has %d blocks, want 6", s.Len())
	}
}

func TestStoreErrors(t *testing.T) {
	g := NewGenesis("store2")
	s, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	b1 := NewBlock(g, nil, time.UnixMilli(1), 1)
	if err := s.Add(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b1); !errors.Is(err, ErrDuplicateBlock) {
		t.Fatalf("duplicate: %v", err)
	}
	orphan := NewBlock(b1, nil, time.UnixMilli(2), 2)
	orphan.Header.PrevHash = Hash{9, 9, 9}
	orphan.Header.TxRoot = MerkleRoot(orphan.Txs)
	if err := s.Add(orphan); !errors.Is(err, ErrOrphanBlock) {
		t.Fatalf("orphan: %v", err)
	}
	badHeight := NewBlock(b1, nil, time.UnixMilli(3), 3)
	badHeight.Header.Height = 9
	if err := s.Add(badHeight); !errors.Is(err, ErrBadHeight) {
		t.Fatalf("bad height: %v", err)
	}
	if !s.Has(b1.Header.Hash()) {
		t.Fatal("Has lost a block")
	}
	if s.Get(Hash{1}) != nil {
		t.Fatal("Get invented a block")
	}
	if s.Genesis() != g.Header.Hash() {
		t.Fatal("genesis hash wrong")
	}
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(nil); err == nil {
		t.Fatal("nil genesis accepted")
	}
	nonZero := NewBlock(NewGenesis("x"), nil, time.Now(), 0)
	if _, err := NewStore(nonZero); err == nil {
		t.Fatal("non-zero-height genesis accepted")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	g := NewGenesis("conc")
	s, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	prev := g
	blocks := make([]*Block, 50)
	for i := range blocks {
		blocks[i] = NewBlock(prev, nil, time.UnixMilli(int64(i)), uint64(i))
		prev = blocks[i]
	}
	done := make(chan error, 2)
	go func() {
		for _, b := range blocks {
			if err := s.Add(b); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 1000; i++ {
			_ = s.Height()
			_ = s.Len()
			_ = s.Tip()
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.Height() != 50 {
		t.Fatalf("height = %d, want 50", s.Height())
	}
}
