package latency

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/rng"
)

func testUniverse(t *testing.T, n int) *geo.Universe {
	t.Helper()
	u, err := geo.SampleUniverse(n, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRegionLayout(t *testing.T) {
	// Hub distances should be broadly consistent with published one-way
	// inter-continental latencies: nearby pairs below distant pairs.
	dist := func(a, b geo.Region) float64 {
		ax, ay := RegionCenter(a)
		bx, by := RegionCenter(b)
		dx, dy := ax-bx, ay-by
		return math.Sqrt(dx*dx + dy*dy)
	}
	naEU := dist(geo.NorthAmerica, geo.Europe)
	naAsia := dist(geo.NorthAmerica, geo.Asia)
	euAsia := dist(geo.Europe, geo.Asia)
	asiaChina := dist(geo.Asia, geo.China)
	if !(naEU < naAsia) {
		t.Errorf("NA-EU (%v) should be closer than NA-Asia (%v)", naEU, naAsia)
	}
	if !(asiaChina < euAsia) {
		t.Errorf("Asia-China (%v) should be closer than EU-Asia (%v)", asiaChina, euAsia)
	}
	for r := 0; r < geo.NumRegions; r++ {
		if RegionRadius(geo.Region(r)) <= 0 {
			t.Errorf("region %v has non-positive radius", geo.Region(r))
		}
	}
}

func TestGeographicSymmetryAndBounds(t *testing.T) {
	u := testUniverse(t, 200)
	g, err := NewGeographic(u, rng.New(1).Derive("latency"))
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b uint8) bool {
		x, y := int(a)%200, int(b)%200
		d1 := g.Delay(x, y)
		d2 := g.Delay(y, x)
		if d1 != d2 {
			return false
		}
		if x == y {
			return d1 == 0
		}
		// Any distinct pair: positive, below a loose cap (route noise and
		// slow access tails can stack, but not into the seconds).
		return d1 > 0 && d1 < 3*time.Second
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeographicBimodal(t *testing.T) {
	// Mean intra-region latency must sit well below mean latency between
	// distant regions — the structure behind Figure 5's bimodality.
	u := testUniverse(t, 400)
	g, err := NewGeographic(u, rng.New(3).Derive("latency"))
	if err != nil {
		t.Fatal(err)
	}
	var intraSum, interSum time.Duration
	var intraN, interN int
	for i := 0; i < 400; i++ {
		for j := i + 1; j < 400; j++ {
			d := g.Delay(i, j)
			switch {
			case u.Region(i) == u.Region(j):
				intraSum += d
				intraN++
			case (u.Region(i) == geo.NorthAmerica && u.Region(j) == geo.Asia) ||
				(u.Region(i) == geo.Asia && u.Region(j) == geo.NorthAmerica):
				interSum += d
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Skip("universe sample lacks needed pairs")
	}
	intra := intraSum / time.Duration(intraN)
	inter := interSum / time.Duration(interN)
	if !(intra < inter/2) {
		t.Fatalf("intra-region mean %v not well below NA-Asia mean %v", intra, inter)
	}
}

func TestGeographicHeterogeneousWithinRegionPair(t *testing.T) {
	// Two nodes of the same region must not all be equivalent: per-node
	// position and access spread is what Perigee learns. Check the spread
	// of delays from one node to many nodes of a single region.
	u := testUniverse(t, 500)
	g, err := NewGeographic(u, rng.New(5).Derive("latency"))
	if err != nil {
		t.Fatal(err)
	}
	var ds []time.Duration
	for j := 1; j < 500; j++ {
		if u.Region(j) == u.Region(0) && j != 0 {
			ds = append(ds, g.Delay(0, j))
		}
	}
	if len(ds) < 10 {
		t.Skip("not enough same-region nodes")
	}
	minD, maxD := ds[0], ds[0]
	for _, d := range ds {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 2*minD {
		t.Fatalf("same-region delays too uniform: min %v, max %v", minD, maxD)
	}
}

func TestGeographicZeroJitterDeterministicDistance(t *testing.T) {
	u := testUniverse(t, 50)
	g, err := NewGeographic(u, rng.New(1), WithJitter(0), WithRouteNoise(0), WithAccessProfile(AccessProfile{}))
	if err != nil {
		t.Fatal(err)
	}
	// With no jitter and no access delay, the delay is exactly the
	// Euclidean position distance.
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			xi, yi := g.Position(i)
			xj, yj := g.Position(j)
			want := time.Duration(math.Hypot(xi-xj, yi-yj) * float64(time.Millisecond))
			got := g.Delay(i, j)
			if got != want {
				t.Fatalf("delay(%d,%d) = %v, want %v", i, j, got, want)
			}
			if g.Access(i) != 0 {
				t.Fatal("access mean 0 should zero access delays")
			}
		}
	}
}

func TestGeographicTrialResampling(t *testing.T) {
	u := testUniverse(t, 100)
	root := rng.New(9)
	g1, err := NewGeographic(u, root.DeriveIndexed("trial", 0))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGeographic(u, root.DeriveIndexed("trial", 1))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 100; i++ {
		if g1.Delay(i, (i+1)%100) != g2.Delay(i, (i+1)%100) {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("only %d/100 links differ between trials; jitter not trial-dependent", diff)
	}
}

func TestNewGeographicErrors(t *testing.T) {
	u := testUniverse(t, 10)
	if _, err := NewGeographic(nil, rng.New(1)); err == nil {
		t.Fatal("expected error for nil universe")
	}
	if _, err := NewGeographic(u, nil); err == nil {
		t.Fatal("expected error for nil stream")
	}
	if _, err := NewGeographic(u, rng.New(1), WithJitter(1.5)); err == nil {
		t.Fatal("expected error for jitter >= 1")
	}
	if _, err := NewGeographic(u, rng.New(1), WithJitter(-0.1)); err == nil {
		t.Fatal("expected error for negative jitter")
	}
}

func TestHypercube(t *testing.T) {
	h, err := NewHypercube(100, 2, 100*time.Millisecond, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 100 || h.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d", h.N(), h.Dim())
	}
	maxDist := 0.0
	for i := 0; i < 100; i++ {
		if h.Delay(i, i) != 0 {
			t.Fatal("self delay must be zero")
		}
		for j := i + 1; j < 100; j++ {
			if h.Delay(i, j) != h.Delay(j, i) {
				t.Fatal("asymmetric hypercube delay")
			}
			d := h.Distance(i, j)
			if d < 0 || d > 1.4142135623731 {
				t.Fatalf("distance %v outside [0, sqrt(2)]", d)
			}
			if d > maxDist {
				maxDist = d
			}
			want := time.Duration(d * float64(100*time.Millisecond))
			if got := h.Delay(i, j); got != want {
				t.Fatalf("delay scaling wrong: %v != %v", got, want)
			}
		}
	}
	if maxDist < 0.5 {
		t.Fatalf("100 uniform points should spread out; max distance %v", maxDist)
	}
}

func TestHypercubePointsInUnitCube(t *testing.T) {
	h, err := NewHypercube(50, 5, time.Second, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.N(); i++ {
		for _, c := range h.Point(i) {
			if c < 0 || c >= 1 {
				t.Fatalf("coordinate %v outside [0,1)", c)
			}
		}
	}
}

func TestNewHypercubeErrors(t *testing.T) {
	if _, err := NewHypercube(0, 2, time.Second, rng.New(1)); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewHypercube(5, 0, time.Second, rng.New(1)); err == nil {
		t.Fatal("expected error for dim=0")
	}
	if _, err := NewHypercube(5, 2, 0, rng.New(1)); err == nil {
		t.Fatal("expected error for zero scale")
	}
	if _, err := NewHypercube(5, 2, time.Second, nil); err == nil {
		t.Fatal("expected error for nil stream")
	}
}

func TestOverride(t *testing.T) {
	base := Constant{Nodes: 10, D: 100 * time.Millisecond}
	o, err := NewOverride(base)
	if err != nil {
		t.Fatal(err)
	}
	if o.N() != 10 {
		t.Fatalf("N = %d", o.N())
	}
	if err := o.Set(2, 7, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := o.Delay(2, 7); got != 5*time.Millisecond {
		t.Fatalf("override not applied: %v", got)
	}
	if got := o.Delay(7, 2); got != 5*time.Millisecond {
		t.Fatalf("override not symmetric: %v", got)
	}
	if got := o.Delay(1, 2); got != 100*time.Millisecond {
		t.Fatalf("non-overridden pair changed: %v", got)
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d", o.Len())
	}
}

func TestOverrideErrors(t *testing.T) {
	if _, err := NewOverride(nil); err == nil {
		t.Fatal("expected error for nil base")
	}
	o, err := NewOverride(Constant{Nodes: 5, D: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Set(1, 1, time.Millisecond); err == nil {
		t.Fatal("expected error for self pair")
	}
	if err := o.Set(0, 9, time.Millisecond); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
	if err := o.Set(0, 1, -time.Millisecond); err == nil {
		t.Fatal("expected error for negative delay")
	}
}

func TestConstant(t *testing.T) {
	c := Constant{Nodes: 3, D: time.Second}
	if c.Delay(0, 0) != 0 {
		t.Fatal("self delay must be zero")
	}
	if c.Delay(0, 1) != time.Second {
		t.Fatal("wrong constant delay")
	}
}

func TestPrecomputeEdges(t *testing.T) {
	u, err := geo.SampleUniverse(6, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGeographic(u, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	// CSR of the 6-cycle 0-1-2-3-4-5-0.
	rowStart := []int32{0, 2, 4, 6, 8, 10, 12}
	edgeDst := []int32{1, 5, 0, 2, 1, 3, 2, 4, 3, 5, 0, 4}
	out := make([]time.Duration, len(edgeDst))
	if err := PrecomputeEdges(g, rowStart, edgeDst, out); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		for e := rowStart[v]; e < rowStart[v+1]; e++ {
			if want := g.Delay(v, int(edgeDst[e])); out[e] != want {
				t.Fatalf("edge (%d, %d): precomputed %v, model %v", v, edgeDst[e], out[e], want)
			}
		}
	}
}

func TestPrecomputeEdgesErrors(t *testing.T) {
	if err := PrecomputeEdges(nil, []int32{0}, nil, nil); err == nil {
		t.Fatal("expected error for nil model")
	}
	c := Constant{Nodes: 2, D: time.Millisecond}
	if err := PrecomputeEdges(c, nil, nil, nil); err == nil {
		t.Fatal("expected error for empty row index")
	}
	if err := PrecomputeEdges(c, []int32{0, 1, 2}, []int32{1, 0}, make([]time.Duration, 1)); err == nil {
		t.Fatal("expected error for short delay buffer")
	}
}
