// Package latency provides the point-to-point delay models of the paper's
// network model (§2.1, §3.1):
//
//   - Geographic: a 7x7 inter-region one-way latency matrix in the spirit of
//     the iPlane measurement dataset, with deterministic symmetric per-link
//     jitter (the paper re-samples link latencies per trial).
//   - Hypercube: nodes embedded uniformly in [0,1]^d with Euclidean
//     distances as delays — the theoretical model behind Theorems 1 and 2.
//   - Override: any base model with specific pairs pinned to new values,
//     used for fast miner-to-miner links (Fig 4b) and relay trees (Fig 4c).
//
// All models are symmetric: Delay(u, v) == Delay(v, u).
package latency

import (
	"fmt"
	"math"
	"time"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/rng"
)

// Model yields the constant one-way delay of sending a block between two
// directly-connected nodes. Implementations must be symmetric and return
// non-negative delays.
type Model interface {
	// Delay returns the one-way latency between nodes u and v.
	Delay(u, v int) time.Duration
	// N returns the number of nodes the model covers.
	N() int
}

// Mode selects how a simulator evaluates the latency model on its edges.
//
// Precomputed mode materializes one delay per directed edge at topology
// build time, so every hop of the broadcast hot loop is a flat array read —
// the fastest option, at O(E) memory per simulator. Streaming mode keeps no
// per-edge array and evaluates Model.Delay on the fly from the node
// coordinates each time an announcement crosses an edge: O(1) latency
// memory regardless of network size, at the cost of recomputing embedded
// distances (and, for Geographic, the hashed per-link jitter) per event.
// Both modes produce bit-for-bit identical delays — they call the same
// Delay method — so results never depend on the mode, only speed and
// memory do.
//
// Auto, the default, picks Precomputed below StreamingAutoThreshold nodes
// and Streaming at or above it: small networks pay the array, large runs
// (100k–1M nodes) keep memory proportional to the edges actually touched.
type Mode int

const (
	// Auto resolves to Precomputed below StreamingAutoThreshold nodes and
	// to Streaming at or above it.
	Auto Mode = iota
	// Precomputed materializes per-edge delays at topology build time.
	Precomputed
	// Streaming evaluates Model.Delay per event, storing nothing.
	Streaming
)

// StreamingAutoThreshold is the node count at which Auto switches from
// precomputed per-edge delays to streaming evaluation.
const StreamingAutoThreshold = 20000

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Precomputed:
		return "precomputed"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool { return m >= Auto && m <= Streaming }

// Resolve maps Auto to a concrete mode for an n-node topology.
func (m Mode) Resolve(n int) Mode {
	if m != Auto {
		return m
	}
	if n >= StreamingAutoThreshold {
		return Streaming
	}
	return Precomputed
}

// PrecomputeEdges fills out[e] with Delay(v, edgeDst[e]) for every directed
// edge of a CSR adjacency (rowStart[v] .. rowStart[v+1] are node v's
// outgoing edges). Evaluating the model once per edge at topology-build
// time turns every subsequent hop of the broadcast hot loop into a flat
// array read instead of an interface call that recomputes embedded
// distances and per-link jitter. out must have len(edgeDst) entries.
func PrecomputeEdges(m Model, rowStart, edgeDst []int32, out []time.Duration) error {
	if m == nil {
		return fmt.Errorf("latency: nil model")
	}
	if len(rowStart) == 0 {
		return fmt.Errorf("latency: empty CSR row index")
	}
	if len(out) != len(edgeDst) {
		return fmt.Errorf("latency: delay buffer covers %d edges, want %d", len(out), len(edgeDst))
	}
	n := len(rowStart) - 1
	for v := 0; v < n; v++ {
		for e := rowStart[v]; e < rowStart[v+1]; e++ {
			out[e] = m.Delay(v, int(edgeDst[e]))
		}
	}
	return nil
}

// regionCenters places each region's hub in a 2-dimensional latency space
// (coordinates in milliseconds of one-way delay). Pairwise center
// distances approximate published inter-continental one-way latencies
// (iPlane / WonderNetwork style tables) up to 2D realizability.
var regionCenters = [geo.NumRegions][2]float64{
	geo.NorthAmerica: {0, 0},
	geo.SouthAmerica: {25, 78},
	geo.Europe:       {50, 0},
	geo.Asia:         {135, 25},
	geo.Africa:       {75, 55},
	geo.China:        {120, -20},
	geo.Oceania:      {150, 75},
}

// regionRadii is the scatter of a region's nodes around its hub, in ms.
// Geographically larger/sparser regions spread wider.
var regionRadii = [geo.NumRegions]float64{
	geo.NorthAmerica: 25,
	geo.SouthAmerica: 25,
	geo.Europe:       15,
	geo.Asia:         30,
	geo.Africa:       30,
	geo.China:        18,
	geo.Oceania:      20,
}

// RegionCenter returns a region's hub coordinates in the latency plane (ms).
func RegionCenter(r geo.Region) (x, y float64) {
	c := regionCenters[r]
	return c[0], c[1]
}

// RegionRadius returns a region's scatter radius in ms.
func RegionRadius(r geo.Region) float64 { return regionRadii[r] }

// Geographic models point-to-point latency with the paper's own
// metric-embedding view (§3.1) made concrete: every node is embedded at
// its region's hub plus a random in-region offset, and has an individual
// last-mile access delay. The one-way latency between two nodes is
//
//	δ(u, v) = (‖pos_u − pos_v‖ + access_u + access_v) · jitter(u, v)
//
// which is symmetric, bimodal across region boundaries (Figure 5), and —
// unlike a flat region matrix — heterogeneous within a region pair, the
// structure Perigee exploits (nodes near hubs with fast access links make
// better neighbors for everyone).
type Geographic struct {
	universe   *geo.Universe
	jitter     float64
	routeSigma float64
	access     AccessProfile
	stream     *rng.RNG
	pos        [][2]float64
	accessMs   []float64 // per node, ms
}

// AccessProfile describes the per-node last-mile delay distribution: a
// fast majority (well-hosted servers near exchange points) and a slow
// minority (consumer NAT, VPN, Tor — the node heterogeneity reported by
// Bitcoin measurement studies and exploited by Perigee). A node is slow
// with probability SlowFraction; fast nodes draw Exponential(FastMean),
// slow nodes draw SlowBase + Exponential(SlowMean). All values in ms.
type AccessProfile struct {
	FastMean     float64
	SlowFraction float64
	SlowBase     float64
	SlowMean     float64
}

// DefaultAccessProfile mirrors the skew of measured Bitcoin node
// connectivity (bandwidths of 3–186 Mbps, proxied/VPN/Tor peers, and the
// INV/GETDATA exchange paid on every hop): three quarters of nodes sit
// within a few ms of their regional hub; a quarter are tens to hundreds of
// ms behind slow access paths. Multi-hop routes through slow nodes pay
// this cost repeatedly — the heterogeneity Perigee learns to avoid.
func DefaultAccessProfile() AccessProfile {
	return AccessProfile{FastMean: 4, SlowFraction: 0.25, SlowBase: 40, SlowMean: 80}
}

func (p AccessProfile) validate() error {
	if p.FastMean < 0 || p.SlowBase < 0 || p.SlowMean < 0 {
		return fmt.Errorf("latency: negative access parameter in %+v", p)
	}
	if p.SlowFraction < 0 || p.SlowFraction > 1 {
		return fmt.Errorf("latency: slow fraction %v outside [0, 1]", p.SlowFraction)
	}
	return nil
}

// sample draws one node's access delay in ms.
func (p AccessProfile) sample(r *rng.RNG) float64 {
	if r.Float64() < p.SlowFraction {
		return p.SlowBase + r.ExpFloat64()*p.SlowMean
	}
	return r.ExpFloat64() * p.FastMean
}

// GeographicOption customizes a Geographic model.
type GeographicOption func(*Geographic)

// WithJitter sets the relative uniform jitter amplitude applied
// (symmetrically and deterministically) to each link; 0.1 means each
// link's latency is scaled by a factor in [0.9, 1.1]. Default 0.1.
func WithJitter(amplitude float64) GeographicOption {
	return func(g *Geographic) { g.jitter = amplitude }
}

// WithRouteNoise sets σ of the per-link LogNormal(−σ²/2, σ) routing-
// inefficiency factor. Internet latencies deviate multiplicatively from
// clean metric embeddings (peering, indirect BGP routes, triangle-
// inequality violations); a link is what it is until measured, which is
// exactly the uncertainty Perigee's bandit exploration resolves. Default
// 0.45; 0 disables.
func WithRouteNoise(sigma float64) GeographicOption {
	return func(g *Geographic) { g.routeSigma = sigma }
}

// WithAccessProfile overrides the last-mile delay distribution.
func WithAccessProfile(p AccessProfile) GeographicOption {
	return func(g *Geographic) { g.access = p }
}

// NewGeographic builds the model over a universe. The rng stream seeds
// node positions, access delays, and per-link jitter; deriving a fresh
// stream per trial reproduces the paper's "independently sampled link
// latencies" across trials.
func NewGeographic(u *geo.Universe, stream *rng.RNG, opts ...GeographicOption) (*Geographic, error) {
	if u == nil {
		return nil, fmt.Errorf("latency: nil universe")
	}
	if stream == nil {
		return nil, fmt.Errorf("latency: nil rng stream")
	}
	g := &Geographic{
		universe:   u,
		jitter:     0.1,
		routeSigma: 0.45,
		access:     DefaultAccessProfile(),
		stream:     stream,
	}
	for _, opt := range opts {
		opt(g)
	}
	if g.jitter < 0 || g.jitter >= 1 {
		return nil, fmt.Errorf("latency: jitter %v outside [0, 1)", g.jitter)
	}
	if g.routeSigma < 0 || g.routeSigma > 2 {
		return nil, fmt.Errorf("latency: route noise sigma %v outside [0, 2]", g.routeSigma)
	}
	if err := g.access.validate(); err != nil {
		return nil, err
	}
	n := u.N()
	g.pos = make([][2]float64, n)
	g.accessMs = make([]float64, n)
	posStream := stream.Derive("positions")
	accStream := stream.Derive("access")
	for i := 0; i < n; i++ {
		region := u.Region(i)
		cx, cy := regionCenters[region][0], regionCenters[region][1]
		radius := regionRadii[region]
		// Uniform point in the region disk via rejection sampling.
		var dx, dy float64
		for {
			dx = 2*posStream.Float64() - 1
			dy = 2*posStream.Float64() - 1
			if dx*dx+dy*dy <= 1 {
				break
			}
		}
		g.pos[i] = [2]float64{cx + dx*radius, cy + dy*radius}
		g.accessMs[i] = g.access.sample(accStream)
	}
	return g, nil
}

// N implements Model.
func (g *Geographic) N() int { return g.universe.N() }

// Delay implements Model.
func (g *Geographic) Delay(u, v int) time.Duration {
	if u == v {
		return 0
	}
	dx := g.pos[u][0] - g.pos[v][0]
	dy := g.pos[u][1] - g.pos[v][1]
	ms := math.Sqrt(dx*dx+dy*dy) + g.accessMs[u] + g.accessMs[v]
	if g.jitter > 0 {
		ms *= g.stream.PairJitter(u, v, g.jitter)
	}
	if g.routeSigma > 0 {
		ms *= g.stream.PairLogNormal(u, v, g.routeSigma)
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// Position returns node i's embedded coordinates in the latency plane (ms).
func (g *Geographic) Position(i int) (x, y float64) { return g.pos[i][0], g.pos[i][1] }

// Access returns node i's last-mile access delay in ms.
func (g *Geographic) Access(i int) float64 { return g.accessMs[i] }

// Hypercube embeds n nodes uniformly at random in [0,1]^d and reports
// scaled Euclidean distances, the metric-embedding model of §3.1.
type Hypercube struct {
	points [][]float64
	scale  time.Duration
}

// NewHypercube samples n points in [0,1]^dim; a unit distance (the side of
// the cube) corresponds to scale.
func NewHypercube(n, dim int, scale time.Duration, stream *rng.RNG) (*Hypercube, error) {
	if n <= 0 {
		return nil, fmt.Errorf("latency: hypercube size %d must be positive", n)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("latency: hypercube dimension %d must be positive", dim)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("latency: hypercube scale %v must be positive", scale)
	}
	if stream == nil {
		return nil, fmt.Errorf("latency: nil rng stream")
	}
	points := make([][]float64, n)
	backing := make([]float64, n*dim)
	for i := range points {
		points[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
		for d := range points[i] {
			points[i][d] = stream.Float64()
		}
	}
	return &Hypercube{points: points, scale: scale}, nil
}

// N implements Model.
func (h *Hypercube) N() int { return len(h.points) }

// Delay implements Model.
func (h *Hypercube) Delay(u, v int) time.Duration {
	return time.Duration(h.Distance(u, v) * float64(h.scale))
}

// Distance returns the Euclidean distance between nodes u and v in the
// embedded space (unscaled).
func (h *Hypercube) Distance(u, v int) float64 {
	var sum float64
	pu, pv := h.points[u], h.points[v]
	for d := range pu {
		diff := pu[d] - pv[d]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// Point returns node i's embedded coordinates (not a copy; callers must not
// mutate it).
func (h *Hypercube) Point(i int) []float64 { return h.points[i] }

// Dim returns the embedding dimension.
func (h *Hypercube) Dim() int {
	if len(h.points) == 0 {
		return 0
	}
	return len(h.points[0])
}

// Override wraps a base model, pinning chosen pairs to explicit delays.
type Override struct {
	base      Model
	overrides map[[2]int]time.Duration
}

// NewOverride wraps base with an initially-empty override set.
func NewOverride(base Model) (*Override, error) {
	if base == nil {
		return nil, fmt.Errorf("latency: nil base model")
	}
	return &Override{base: base, overrides: make(map[[2]int]time.Duration)}, nil
}

func pairKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Set pins the delay between u and v (symmetrically).
func (o *Override) Set(u, v int, d time.Duration) error {
	if u == v {
		return fmt.Errorf("latency: cannot override self-delay of node %d", u)
	}
	if u < 0 || v < 0 || u >= o.base.N() || v >= o.base.N() {
		return fmt.Errorf("latency: override pair (%d, %d) outside universe of %d", u, v, o.base.N())
	}
	if d < 0 {
		return fmt.Errorf("latency: negative delay %v", d)
	}
	o.overrides[pairKey(u, v)] = d
	return nil
}

// Len returns the number of overridden pairs.
func (o *Override) Len() int { return len(o.overrides) }

// N implements Model.
func (o *Override) N() int { return o.base.N() }

// Delay implements Model.
func (o *Override) Delay(u, v int) time.Duration {
	if d, ok := o.overrides[pairKey(u, v)]; ok {
		return d
	}
	return o.base.Delay(u, v)
}

// Constant is a model in which every distinct pair has the same delay;
// useful in tests and as a degenerate baseline.
type Constant struct {
	Nodes int
	D     time.Duration
}

// N implements Model.
func (c Constant) N() int { return c.Nodes }

// Delay implements Model.
func (c Constant) Delay(u, v int) time.Duration {
	if u == v {
		return 0
	}
	return c.D
}
