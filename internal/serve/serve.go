// Package serve exposes the experiment registry as a long-lived HTTP/JSON
// service: clients submit any registered scenario with option overrides,
// jobs flow through a bounded queue into a worker pool that reuses the
// experiments harness' parallel stack, and results are cached on the
// canonical configuration hash (Scenario ID + Options.Hash()) so an
// identical resubmission is answered from cache instead of recomputed.
//
// While a job runs, its RoundEvents and decision-trace records are
// recorded as NDJSON events; GET /jobs/{id}/events replays the log and
// then follows the live stream until the job completes, so a client can
// watch an experiment converge round by round.
//
// Endpoints:
//
//	GET  /healthz          liveness + queue depth
//	GET  /scenarios        the scenario registry (ID + one-line brief)
//	POST /jobs             submit {"scenario": ..., "quick": ..., "options": {...}}
//	GET  /jobs             all jobs, newest last
//	GET  /jobs/{id}        one job's status and (when done) its result
//	GET  /jobs/{id}/events NDJSON event stream (replay + live follow)
//
// The package is stdlib-only; cmd/perigee-serve wires it to a listener
// with graceful shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/experiments"
	"github.com/perigee-net/perigee/internal/trace"
)

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Errors the HTTP layer maps to status codes; Submit returns them so
// embedders without HTTP can react too.
var (
	ErrQueueFull    = errors.New("serve: job queue full")
	ErrShuttingDown = errors.New("serve: server is shutting down")
)

// Config sizes the service.
type Config struct {
	// QueueSize bounds the number of jobs waiting to run; submissions
	// beyond it fail fast with ErrQueueFull (HTTP 503). Zero means 16.
	QueueSize int
	// Workers is the number of jobs run concurrently. Each job already
	// fans its trials and arms over the experiments worker pool, so one
	// job worker saturates a machine; more trade per-job latency for
	// throughput. Zero means 1.
	Workers int
	// MaxEvents caps each job's recorded event log; past it the log ends
	// with one truncation marker event and further events are dropped
	// (the job itself keeps running). Zero means 200000.
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 16
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 200000
	}
	return c
}

// Server is the experiment service: registry dispatch, job queue, worker
// pool, and result cache.
type Server struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job // by job ID
	byKey  map[string]*Job // result cache: canonical key → job
	order  []*Job          // submission order, for listings
}

// New builds a server and starts its worker pool. Call Shutdown to stop.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueSize),
		jobs:  make(map[string]*Job),
		byKey: make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Shutdown stops accepting submissions, lets the workers drain the queued
// and running jobs, and returns when they are done or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return errors.New("serve: shutdown deadline exceeded with jobs still running")
	}
}

// Job is one submitted experiment run.
type Job struct {
	ID       string
	Scenario string
	Key      string
	Options  experiments.Options

	maxEvents int
	done      chan struct{}

	mu        sync.Mutex
	status    string
	result    *experiments.Result
	errMsg    string
	events    [][]byte
	truncated bool
	created   time.Time
	finished  time.Time
}

// Event is one NDJSON line of a job's stream: a completed engine round, a
// decision-trace record, or a terminal status marker.
type Event struct {
	Kind  string `json:"kind"` // "round", "trace", "status", "truncated"
	Arm   string `json:"arm,omitempty"`
	Trial int    `json:"trial"`

	// Round fields (Kind "round"): the core.RoundEvent, flattened.
	Round        int      `json:"round,omitempty"`
	Blocks       int      `json:"blocks,omitempty"`
	Dropped      int      `json:"dropped,omitempty"`
	Added        int      `json:"added,omitempty"`
	Unfilled     int      `json:"unfilled,omitempty"`
	DroppedEdges [][2]int `json:"dropped_edges,omitempty"`
	AddedEdges   [][2]int `json:"added_edges,omitempty"`

	// Trace field (Kind "trace").
	Trace *trace.Record `json:"trace,omitempty"`

	// Status fields (Kind "status").
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// JobView is a job's JSON surface.
type JobView struct {
	ID       string              `json:"id"`
	Scenario string              `json:"scenario"`
	Key      string              `json:"key"`
	Status   string              `json:"status"`
	CacheHit bool                `json:"cache_hit"`
	Events   int                 `json:"events"`
	Error    string              `json:"error,omitempty"`
	Result   *experiments.Result `json:"result,omitempty"`
}

func (j *Job) view(cacheHit, withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Scenario: j.Scenario,
		Key:      j.Key,
		Status:   j.status,
		CacheHit: cacheHit,
		Events:   len(j.events),
		Error:    j.errMsg,
	}
	if withResult && j.status == StatusDone {
		v.Result = j.result
	}
	return v
}

// appendEvent marshals and records one event line; callers may race (the
// experiments harness runs (trial, arm) jobs concurrently), the log is the
// serialization point.
func (j *Job) appendEvent(ev Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		return // events are best-effort telemetry; the result is authoritative
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.truncated {
		return
	}
	if len(j.events) >= j.maxEvents {
		j.truncated = true
		marker, _ := json.Marshal(Event{Kind: "truncated"})
		j.events = append(j.events, marker)
		return
	}
	j.events = append(j.events, line)
}

// eventsFrom returns the recorded lines starting at offset, plus whether
// the job has reached a terminal state.
func (j *Job) eventsFrom(offset int) ([][]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	terminal := j.status == StatusDone || j.status == StatusFailed
	if offset >= len(j.events) {
		return nil, terminal
	}
	return j.events[offset:], terminal
}

func (j *Job) setStatus(status string) {
	j.mu.Lock()
	j.status = status
	j.mu.Unlock()
}

// Submit resolves, validates, and enqueues a run. When an identical
// configuration (same scenario, same canonical options hash) was already
// submitted and did not fail, the existing job is returned with cacheHit
// true — queued and running jobs are shared, not just finished ones.
func (s *Server) Submit(req SubmitRequest) (*Job, bool, error) {
	if _, err := experiments.Describe(req.Scenario); err != nil {
		return nil, false, err
	}
	opt, err := req.resolveOptions()
	if err != nil {
		return nil, false, err
	}
	if err := experiments.Validate(opt); err != nil {
		return nil, false, err
	}
	key := req.Scenario + ":" + opt.Hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.byKey[key]; ok {
		prior.mu.Lock()
		failed := prior.status == StatusFailed
		prior.mu.Unlock()
		if !failed {
			return prior, true, nil
		}
		delete(s.byKey, key) // failed runs may be resubmitted
	}
	if s.closed {
		return nil, false, ErrShuttingDown
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("j%03d-%s", s.seq, key[len(req.Scenario)+1:][:8]),
		Scenario:  req.Scenario,
		Key:       key,
		Options:   opt,
		maxEvents: s.cfg.MaxEvents,
		status:    StatusQueued,
		done:      make(chan struct{}),
		created:   time.Now(),
	}
	select {
	case s.queue <- job:
	default:
		return nil, false, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.byKey[key] = job
	s.order = append(s.order, job)
	return job, false, nil
}

// JobByID returns a submitted job.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.run(job)
	}
}

// run executes one job on the experiments harness, wiring the streaming
// observers into the job's event log.
func (s *Server) run(job *Job) {
	job.setStatus(StatusRunning)
	opt := job.Options
	opt.RoundObserver = func(arm string, trial int, ev core.RoundEvent) {
		job.appendEvent(Event{
			Kind: "round", Arm: arm, Trial: trial,
			Round: ev.Report.Round, Blocks: ev.Report.Blocks,
			Dropped: ev.Report.Dropped, Added: ev.Report.Added,
			Unfilled:     ev.Report.Unfilled,
			DroppedEdges: ev.Dropped, AddedEdges: ev.Added,
		})
	}
	if opt.TraceLevel > 0 {
		opt.TraceObserver = func(rec trace.Record) {
			job.appendEvent(Event{Kind: "trace", Arm: rec.Selector, Trial: rec.Trial, Trace: &rec})
		}
	}
	res, err := s.runScenario(job, opt)

	job.mu.Lock()
	job.finished = time.Now()
	if err != nil {
		job.status = StatusFailed
		job.errMsg = err.Error()
	} else {
		job.status = StatusDone
		job.result = res
	}
	status, errMsg := job.status, job.errMsg
	job.mu.Unlock()
	job.appendEvent(Event{Kind: "status", Status: status, Error: errMsg})
	close(job.done)
}

// runScenario isolates one harness execution: a panicking scenario fails
// its own job instead of killing the worker, and the job is evicted from
// the result cache immediately so a resubmission retries it.
func (s *Server) runScenario(job *Job, opt experiments.Options) (res *experiments.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("serve: scenario panicked: %v", r)
			s.mu.Lock()
			if s.byKey[job.Key] == job {
				delete(s.byKey, job.Key)
			}
			s.mu.Unlock()
		}
	}()
	return experiments.Run(job.Scenario, opt)
}
