package serve

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/experiments"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/trace"
)

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Scenario is a registered scenario ID (see GET /scenarios).
	Scenario string `json:"scenario"`
	// Quick starts from experiments.ShortOptions (CI scale) instead of
	// DefaultOptions (paper scale).
	Quick bool `json:"quick"`
	// Options overrides individual fields of the base options.
	Options *OptionsPatch `json:"options,omitempty"`
}

// OptionsPatch is the over-the-wire option override set: every field is
// optional and, when present, replaces the corresponding
// experiments.Options field. Durations are milliseconds; enumerations use
// their CLI spellings. The file-backed workload trace fields (TraceFile,
// RecordTrace) are deliberately not exposed — a network client has no
// business naming server-side paths.
type OptionsPatch struct {
	Nodes             *int     `json:"nodes,omitempty"`
	Trials            *int     `json:"trials,omitempty"`
	Rounds            *int     `json:"rounds,omitempty"`
	RoundBlocks       *int     `json:"round_blocks,omitempty"`
	Fraction          *float64 `json:"fraction,omitempty"`
	Seed              *uint64  `json:"seed,omitempty"`
	MeanValidationMs  *float64 `json:"mean_validation_ms,omitempty"`
	Validation        *string  `json:"validation,omitempty"` // "fixed" | "exponential"
	AdversaryFraction *float64 `json:"adversary_fraction,omitempty"`
	CaptureThreshold  *float64 `json:"capture_threshold,omitempty"`
	Workers           *int     `json:"workers,omitempty"`
	LambdaSources     *int     `json:"lambda_sources,omitempty"`
	ObservationWindow *int     `json:"observation_window,omitempty"`
	Shards            *int     `json:"shards,omitempty"`
	LatencyMode       *string  `json:"latency_mode,omitempty"` // "auto" | "precomputed" | "streaming"
	BlockIntervalMs   *float64 `json:"block_interval_ms,omitempty"`
	TraceLevel        *string  `json:"trace_level,omitempty"` // "off" | "decisions" | "inputs"
	CounterfactualK   *int     `json:"counterfactual_k,omitempty"`
}

// resolveOptions applies the request's patch over its base options.
func (req SubmitRequest) resolveOptions() (experiments.Options, error) {
	opt := experiments.DefaultOptions()
	if req.Quick {
		opt = experiments.ShortOptions()
	}
	if req.Options == nil {
		return opt, nil
	}
	p := req.Options
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setFloat := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&opt.Nodes, p.Nodes)
	setInt(&opt.Trials, p.Trials)
	setInt(&opt.Rounds, p.Rounds)
	setInt(&opt.RoundBlocks, p.RoundBlocks)
	setFloat(&opt.Fraction, p.Fraction)
	if p.Seed != nil {
		opt.Seed = *p.Seed
	}
	if p.MeanValidationMs != nil {
		opt.MeanValidation = time.Duration(*p.MeanValidationMs * float64(time.Millisecond))
	}
	if p.Validation != nil {
		switch *p.Validation {
		case "fixed":
			opt.Validation = experiments.ValidationFixed
		case "exponential":
			opt.Validation = experiments.ValidationExponential
		default:
			return opt, fmt.Errorf("serve: unknown validation model %q (want fixed or exponential)", *p.Validation)
		}
	}
	setFloat(&opt.AdversaryFraction, p.AdversaryFraction)
	setFloat(&opt.CaptureThreshold, p.CaptureThreshold)
	setInt(&opt.Workers, p.Workers)
	setInt(&opt.LambdaSources, p.LambdaSources)
	setInt(&opt.ObservationWindow, p.ObservationWindow)
	setInt(&opt.Shards, p.Shards)
	if p.LatencyMode != nil {
		switch *p.LatencyMode {
		case "auto":
			opt.LatencyMode = latency.Auto
		case "precomputed":
			opt.LatencyMode = latency.Precomputed
		case "streaming":
			opt.LatencyMode = latency.Streaming
		default:
			return opt, fmt.Errorf("serve: unknown latency mode %q (want auto, precomputed, or streaming)", *p.LatencyMode)
		}
	}
	if p.BlockIntervalMs != nil {
		opt.BlockInterval = time.Duration(*p.BlockIntervalMs * float64(time.Millisecond))
	}
	if p.TraceLevel != nil {
		level, err := trace.ParseLevel(*p.TraceLevel)
		if err != nil {
			return opt, err
		}
		opt.TraceLevel = int(level)
	}
	setInt(&opt.CounterfactualK, p.CounterfactualK)
	return opt, nil
}
