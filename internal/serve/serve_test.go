package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"net/http/httptest"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/experiments"
)

func intp(v int) *int           { return &v }
func floatp(v float64) *float64 { return &v }
func uintp(v uint64) *uint64    { return &v }
func stringp(v string) *string  { return &v }

// tinyPatch shrinks a scenario to unit-test scale.
func tinyPatch(seed uint64) *OptionsPatch {
	return &OptionsPatch{
		Nodes:            intp(40),
		Trials:           intp(1),
		Rounds:           intp(2),
		RoundBlocks:      intp(10),
		Fraction:         floatp(0.9),
		Seed:             uintp(seed),
		MeanValidationMs: floatp(50),
	}
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == StatusDone || view.Status == StatusFailed {
			return view
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// TestServeEndToEnd covers the advertised loop: health, scenario listing,
// submission, completion, an identical resubmission answered from cache,
// and an NDJSON event stream that matches a direct harness run.
func TestServeEndToEnd(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}

	resp, err = http.Get(ts.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var scenarios []struct{ ID, Brief string }
	if err := json.NewDecoder(resp.Body).Decode(&scenarios); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, sc := range scenarios {
		if sc.ID == "figure1" {
			found = true
		}
	}
	if !found {
		t.Fatal("GET /scenarios does not list figure1")
	}

	req := SubmitRequest{Scenario: "figure3a", Quick: true, Options: tinyPatch(5)}
	view, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("first submission returned %d, want 202", code)
	}
	if view.CacheHit {
		t.Fatal("first submission claims a cache hit")
	}
	done := waitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	if done.Result == nil {
		t.Fatal("finished job view has no result")
	}

	again, code := submit(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("resubmission returned %d, want 200", code)
	}
	if !again.CacheHit || again.ID != view.ID {
		t.Fatalf("resubmission not served from cache: hit=%v id=%s want %s", again.CacheHit, again.ID, view.ID)
	}

	// The streamed round events must match a direct harness run of the same
	// resolved options, arm by arm.
	resp, err = http.Get(ts.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	streamed := map[string]int{}
	lastKind := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "round" {
			streamed[ev.Arm]++
		}
		lastKind = ev.Kind
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lastKind != "status" {
		t.Errorf("stream ended with %q, want terminal status event", lastKind)
	}

	opt, err := req.resolveOptions()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	direct := map[string]int{}
	opt.RoundObserver = func(arm string, trial int, ev core.RoundEvent) {
		mu.Lock()
		direct[arm]++
		mu.Unlock()
	}
	if _, err := experiments.Run("figure3a", opt); err != nil {
		t.Fatal(err)
	}
	if len(direct) == 0 {
		t.Fatal("direct run emitted no round events")
	}
	for arm, n := range direct {
		if streamed[arm] != n {
			t.Errorf("arm %s: streamed %d round events, direct run emitted %d", arm, streamed[arm], n)
		}
	}

	if _, code := submit(t, ts, SubmitRequest{Scenario: "no-such-scenario"}); code != http.StatusBadRequest {
		t.Errorf("unknown scenario returned %d, want 400", code)
	}
}

// TestServeTracedJob submits a traced run and checks the stream carries
// trace events and the cached result carries regret summaries.
func TestServeTracedJob(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	patch := tinyPatch(9)
	patch.TraceLevel = stringp("decisions")
	patch.CounterfactualK = intp(2)
	view, code := submit(t, ts, SubmitRequest{Scenario: "figure3a", Quick: true, Options: patch})
	if code != http.StatusAccepted {
		t.Fatalf("submission returned %d", code)
	}
	done := waitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	if len(done.Result.Regret) == 0 {
		t.Fatal("traced job result has no regret summaries")
	}

	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	traces := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "trace" {
			if ev.Trace == nil {
				t.Fatal("trace event without record")
			}
			traces++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if traces == 0 {
		t.Error("traced job streamed no trace events")
	}
}

// blockingScenario registers a scenario whose runs block until released,
// so queue states can be pinned down deterministically.
type blockingScenario struct {
	id      string
	started chan struct{} // one tick per run entering
	release chan struct{} // closed to let all runs finish
}

func newBlockingScenario(t *testing.T) *blockingScenario {
	b := &blockingScenario{
		id:      fmt.Sprintf("serve-test-block-%d", time.Now().UnixNano()),
		started: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	err := experiments.Register(experiments.Scenario{
		ID:    b.id,
		Brief: "test scenario that blocks until released",
		Run: func(opt experiments.Options) (*experiments.Result, error) {
			b.started <- struct{}{}
			<-b.release
			return &experiments.Result{ID: b.id}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQueueFullAndShutdown pins the bounded-queue and graceful-shutdown
// behaviour: with one worker busy and the queue at capacity, the next
// distinct submission gets 503; Shutdown drains the queued job; submissions
// after Shutdown are refused.
func TestQueueFullAndShutdown(t *testing.T) {
	b := newBlockingScenario(t)
	s := New(Config{QueueSize: 1, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job := func(seed uint64) SubmitRequest {
		return SubmitRequest{Scenario: b.id, Quick: true, Options: tinyPatch(seed)}
	}
	first, code := submit(t, ts, job(1))
	if code != http.StatusAccepted {
		t.Fatalf("first submission returned %d", code)
	}
	select {
	case <-b.started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the first job")
	}
	if _, code := submit(t, ts, job(2)); code != http.StatusAccepted {
		t.Fatalf("second submission returned %d, want 202 (queued)", code)
	}
	if _, code := submit(t, ts, job(3)); code != http.StatusServiceUnavailable {
		t.Fatalf("third submission returned %d, want 503 (queue full)", code)
	}
	// A duplicate of a queued job is still a cache hit, not a new slot.
	if dup, code := submit(t, ts, job(2)); code != http.StatusOK || !dup.CacheHit {
		t.Fatalf("duplicate of queued job: code=%d hit=%v", code, dup.CacheHit)
	}

	close(b.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if done := waitDone(t, ts, first.ID); done.Status != StatusDone {
		t.Fatalf("first job finished %s", done.Status)
	}
	if _, _, err := s.Submit(job(4)); err != ErrShuttingDown {
		t.Fatalf("submission after shutdown returned %v, want ErrShuttingDown", err)
	}

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 2 {
		t.Fatalf("GET /jobs listed %d jobs, want 2", len(views))
	}
}

// TestEventsFollowLiveJob streams a running job's events and checks the
// follow loop delivers the terminal status once the job is released.
func TestEventsFollowLiveJob(t *testing.T) {
	b := newBlockingScenario(t)
	s := New(Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	view, code := submit(t, ts, SubmitRequest{Scenario: b.id, Quick: true, Options: tinyPatch(1)})
	if code != http.StatusAccepted {
		t.Fatalf("submission returned %d", code)
	}
	select {
	case <-b.started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the job")
	}

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events")
		if err != nil {
			got <- err.Error()
			return
		}
		defer resp.Body.Close()
		last := ""
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Kind == "status" {
				last = ev.Status
			}
		}
		got <- last
	}()

	time.Sleep(100 * time.Millisecond) // let the follower attach mid-run
	close(b.release)
	select {
	case status := <-got:
		if status != StatusDone {
			t.Fatalf("follower saw terminal status %q, want done", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never saw the terminal status")
	}
}

// TestOptionsPatchValidation: bad enum spellings and invalid combinations
// are rejected before a job is created.
func TestOptionsPatchValidation(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	bad := SubmitRequest{Scenario: "figure1", Options: &OptionsPatch{Validation: stringp("gaussian")}}
	if _, _, err := s.Submit(bad); err == nil || !strings.Contains(err.Error(), "validation model") {
		t.Errorf("bad validation model: %v", err)
	}
	bad = SubmitRequest{Scenario: "figure1", Options: &OptionsPatch{TraceLevel: stringp("verbose")}}
	if _, _, err := s.Submit(bad); err == nil {
		t.Error("bad trace level accepted")
	}
	bad = SubmitRequest{Scenario: "figure1", Options: &OptionsPatch{CounterfactualK: intp(3)}}
	if _, _, err := s.Submit(bad); err == nil {
		t.Error("counterfactual k without tracing accepted")
	}
	bad = SubmitRequest{Scenario: "figure1", Options: &OptionsPatch{LatencyMode: stringp("psychic")}}
	if _, _, err := s.Submit(bad); err == nil {
		t.Error("bad latency mode accepted")
	}
}
