package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/perigee-net/perigee/internal/experiments"
)

// Handler returns the service's HTTP routes on a fresh mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, closed := len(s.jobs), s.closed
	s.mu.Unlock()
	status := "ok"
	if closed {
		status = "shutting-down"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"jobs":        jobs,
		"queue_depth": len(s.queue),
		"workers":     s.cfg.Workers,
	})
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Brief string `json:"brief"`
	}
	var out []entry
	for _, sc := range experiments.Scenarios() {
		out = append(out, entry{ID: sc.ID, Brief: sc.Brief})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, cacheHit, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Queued work drains continuously: a short retry is enough.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrShuttingDown):
		// A replacement instance, if any, takes longer than a queue slot.
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if cacheHit {
		status = http.StatusOK
	}
	writeJSON(w, status, job.view(cacheHit, false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false, false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job ID"))
		return
	}
	writeJSON(w, http.StatusOK, job.view(false, true))
}

// handleEvents streams the job's NDJSON event log: everything recorded so
// far immediately, then live follow (poll + flush) until the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job ID"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	offset := 0
	for {
		lines, terminal := job.eventsFrom(offset)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
		}
		offset += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal && len(lines) == 0 {
			return
		}
		if len(lines) == 0 {
			select {
			case <-r.Context().Done():
				return
			case <-job.done:
				// Terminal: loop once more to drain the tail, then exit.
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
}
