package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/experiments"
)

// postRaw submits without the helper so response headers are visible.
func postRaw(t *testing.T, ts *httptest.Server, req SubmitRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestWorkerSurvivesPanickingScenario: a scenario that panics fails its
// job — with the panic message surfaced and the cache entry evicted so a
// resubmission retries — and the worker keeps serving later jobs.
func TestWorkerSurvivesPanickingScenario(t *testing.T) {
	panicID := fmt.Sprintf("serve-test-panic-%d", time.Now().UnixNano())
	okID := fmt.Sprintf("serve-test-ok-%d", time.Now().UnixNano())
	if err := experiments.Register(experiments.Scenario{
		ID:    panicID,
		Brief: "test scenario that panics",
		Run: func(opt experiments.Options) (*experiments.Result, error) {
			panic("deliberate test panic")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := experiments.Register(experiments.Scenario{
		ID:    okID,
		Brief: "test scenario that succeeds",
		Run: func(opt experiments.Options) (*experiments.Result, error) {
			return &experiments.Result{ID: okID}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{QueueSize: 4, Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SubmitRequest{Scenario: panicID, Quick: true, Options: tinyPatch(1)}
	first, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submission returned %d", code)
	}
	done := waitDone(t, ts, first.ID)
	if done.Status != StatusFailed {
		t.Fatalf("panicking job finished %q, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "panicked") {
		t.Fatalf("job error %q does not surface the panic", done.Error)
	}
	// The failed run was evicted from the result cache: an identical
	// resubmission is a fresh job, not a cache hit of the failure.
	second, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("resubmission after panic returned %d, want 202", code)
	}
	if second.CacheHit || second.ID == first.ID {
		t.Fatalf("resubmission reused the failed job: %+v", second)
	}
	if got := waitDone(t, ts, second.ID); got.Status != StatusFailed {
		t.Fatalf("second panicking run finished %q", got.Status)
	}
	// The single worker survived two panics and still runs honest jobs.
	ok, code := submit(t, ts, SubmitRequest{Scenario: okID, Quick: true, Options: tinyPatch(2)})
	if code != http.StatusAccepted {
		t.Fatalf("healthy submission returned %d", code)
	}
	if got := waitDone(t, ts, ok.ID); got.Status != StatusDone {
		t.Fatalf("healthy job after panics finished %q, want done", got.Status)
	}
}

// TestRetryAfterHeaders: both 503 responses carry a Retry-After hint.
func TestRetryAfterHeaders(t *testing.T) {
	b := newBlockingScenario(t)
	s := New(Config{QueueSize: 1, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job := func(seed uint64) SubmitRequest {
		return SubmitRequest{Scenario: b.id, Quick: true, Options: tinyPatch(seed)}
	}
	if _, code := submit(t, ts, job(1)); code != http.StatusAccepted {
		t.Fatalf("first submission returned %d", code)
	}
	select {
	case <-b.started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the first job")
	}
	if _, code := submit(t, ts, job(2)); code != http.StatusAccepted {
		t.Fatalf("second submission returned %d", code)
	}
	resp := postRaw(t, ts, job(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full submission returned %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("queue-full Retry-After = %q, want \"1\"", got)
	}

	close(b.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp = postRaw(t, ts, job(4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submission returned %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("shutdown Retry-After = %q, want \"30\"", got)
	}
}
