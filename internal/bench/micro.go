// Package bench defines the repository's hot-path micro-benchmark suite in
// one place, shared by the root bench_test.go (go test -bench=Micro) and
// cmd/perigee-bench, which runs the same cases through testing.Benchmark
// and emits a machine-readable BENCH_*.json so the repo's performance
// trajectory is recorded per PR instead of living in commit messages.
package bench

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/netsim"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/topology"
	"github.com/perigee-net/perigee/internal/workload"
)

// Case is one named micro-benchmark.
type Case struct {
	// Name matches the Benchmark function suffix in bench_test.go
	// (e.g. "MicroBroadcast1000").
	Name string
	// F is the benchmark body, runnable under go test or testing.Benchmark.
	F func(b *testing.B)
}

// MicroCases returns the full micro suite in a stable order.
func MicroCases() []Case {
	return []Case{
		{"MicroBroadcast1000", MicroBroadcast(1000)},
		{"MicroBroadcast10000", MicroBroadcast(10000)},
		{"MicroBroadcast100000", MicroBroadcast(100000)},
		{"MicroAnalyticArrival1000", MicroAnalyticArrival(1000)},
		{"MicroDelayToFraction", MicroDelayToFraction},
		{"MicroVanillaScoring", MicroVanillaScoring},
		{"MicroSubsetScoring", MicroSubsetScoring},
		{"MicroEngineRound", MicroEngineRound},
		{"MicroDurationPercentile", MicroDurationPercentile},
		{"WorkloadHour", WorkloadHour},
	}
}

// Network builds an n-node random-topology simulator plus a uniform power
// vector, the standard micro-bench network.
func Network(b *testing.B, n int) (*netsim.Simulator, []float64) {
	b.Helper()
	root := rng.New(1)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		b.Fatal(err)
	}
	lat, err := latency.NewGeographic(u, root.Derive("latency"))
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, root.Derive("topology"))
	if err != nil {
		b.Fatal(err)
	}
	forward := make([]time.Duration, n)
	for i := range forward {
		forward[i] = 50 * time.Millisecond
	}
	sim, err := netsim.New(netsim.Config{Adj: tbl.Undirected(), Latency: lat, Forward: forward})
	if err != nil {
		b.Fatal(err)
	}
	power := make([]float64, n)
	for i := range power {
		power[i] = 1.0 / float64(n)
	}
	return sim, power
}

// MicroBroadcast measures one event-driven block broadcast over an n-node
// network (the inner loop of every experiment). The scratch is warmed
// before the timer starts, so allocs/op reports the steady state — the CSR
// hot path's contract is zero.
func MicroBroadcast(n int) func(b *testing.B) {
	return func(b *testing.B) {
		sim, _ := Network(b, n)
		for src := 0; src < 3; src++ {
			if _, err := sim.Broadcast(src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Broadcast(i % n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MicroAnalyticArrival measures the pooled Dijkstra-based arrival
// computation used by the λ_v metric.
func MicroAnalyticArrival(n int) func(b *testing.B) {
	return func(b *testing.B) {
		sim, _ := Network(b, n)
		buf, err := sim.ArrivalAnalyticInto(nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if buf, err = sim.ArrivalAnalyticInto(buf, i%n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MicroDelayToFraction measures the weighted coverage metric.
func MicroDelayToFraction(b *testing.B) {
	sim, power := Network(b, 1000)
	arrival, err := sim.ArrivalAnalytic(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.DelayToFraction(arrival, power, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// Observations builds a 100-block, 8-neighbor observation matrix.
func Observations() core.Observations {
	obs := core.NewObservations([]int{0, 1, 2, 3, 4, 5, 6, 7}, 100)
	r := rng.New(2)
	for bi := range obs.Offsets {
		for ni := range obs.Offsets[bi] {
			obs.Offsets[bi][ni] = time.Duration(r.IntN(200)) * time.Millisecond
		}
	}
	return obs
}

// MicroVanillaScoring measures independent percentile scoring of one
// node's round (100 blocks, 8 neighbors).
func MicroVanillaScoring(b *testing.B) {
	obs := Observations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.VanillaScores(obs, 0.9)
	}
}

// MicroSubsetScoring measures the greedy joint selection (§4.3).
func MicroSubsetScoring(b *testing.B) {
	obs := Observations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SubsetSelect(obs, 6, 0.9)
	}
}

// MicroEngineRound measures one full protocol round (broadcasts + scoring
// + reconnection) on a 300-node network.
func MicroEngineRound(b *testing.B) {
	root := rng.New(3)
	u, err := geo.SampleUniverse(300, root.Derive("universe"))
	if err != nil {
		b.Fatal(err)
	}
	lat, err := latency.NewGeographic(u, root.Derive("latency"))
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := topology.Random(300, 8, 20, root.Derive("topology"))
	if err != nil {
		b.Fatal(err)
	}
	forward := make([]time.Duration, 300)
	for i := range forward {
		forward[i] = 50 * time.Millisecond
	}
	power := make([]float64, 300)
	for i := range power {
		power[i] = 1.0 / 300
	}
	params := core.DefaultParams(core.Subset)
	params.RoundBlocks = 50
	engine, err := core.NewEngine(core.Config{
		Method: core.Subset, Params: params, Table: tbl,
		Latency: lat, Forward: forward, Power: power,
		Rand: root.Derive("engine"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// WorkloadHour measures one simulated hour of the continuous-time
// blockchain workload on a 300-node network: ~1800 Poisson block arrivals
// at the default 2s interval, each broadcast through netsim, tracked in
// every node's longest-chain view, with a timed topology round every 200s
// of simulated time. One op is the whole run (engine construction
// included), so allocs/op is deterministic and gated in scripts/bench.sh.
func WorkloadHour(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := rng.New(5)
		u, err := geo.SampleUniverse(300, root.Derive("universe"))
		if err != nil {
			b.Fatal(err)
		}
		lat, err := latency.NewGeographic(u, root.Derive("latency"))
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := topology.Random(300, 8, 20, root.Derive("topology"))
		if err != nil {
			b.Fatal(err)
		}
		forward := make([]time.Duration, 300)
		power := make([]float64, 300)
		for v := range forward {
			forward[v] = 50 * time.Millisecond
			power[v] = 1.0 / 300
		}
		params := core.DefaultParams(core.Subset)
		engine, err := core.NewEngine(core.Config{
			Method: core.Subset, Params: params, Table: tbl,
			Latency: lat, Forward: forward, Power: power,
			Rand: root.Derive("engine"),
		})
		if err != nil {
			b.Fatal(err)
		}
		trace, err := workload.NewPoisson(root.Derive("trace"), power, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := workload.Run(workload.Config{
			Engine:        engine,
			Trace:         trace,
			Duration:      time.Hour,
			RoundInterval: time.Duration(params.RoundBlocks) * 2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.BlocksMined == 0 {
			b.Fatal("workload mined no blocks")
		}
	}
}

// MicroDurationPercentile measures the censored percentile primitive
// underlying all scoring.
func MicroDurationPercentile(b *testing.B) {
	r := rng.New(4)
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(r.IntN(1000)) * time.Millisecond
	}
	ds[7] = stats.InfDuration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.DurationPercentile(ds, 0.9)
	}
}
