// Package hashpower models the distribution of mining power across nodes
// and the sampling of block sources.
//
// The paper's evaluation uses three settings: uniform power (Fig 3a),
// exponentially-distributed power normalized to sum 1 (Fig 3b), and a
// mining-pool setting where 10% of the nodes hold 90% of the power
// (Fig 4b). The probability that a node mines the next block is
// proportional to its power (§2.1).
package hashpower

import (
	"fmt"
	"sort"

	"github.com/perigee-net/perigee/internal/rng"
)

// Uniform returns equal power 1/n for each of n nodes.
func Uniform(n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hashpower: n = %d must be positive", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out, nil
}

// Exponential draws each node's power from an Exponential(1) distribution
// and normalizes the vector to sum to 1, matching §5.2.
func Exponential(n int, r *rng.RNG) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hashpower: n = %d must be positive", n)
	}
	if r == nil {
		return nil, fmt.Errorf("hashpower: nil rng")
	}
	out := make([]float64, n)
	var total float64
	for i := range out {
		out[i] = r.ExpFloat64()
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

// Pools assigns powerFrac of the total power to a randomly chosen set of
// round(poolFrac*n) "miner" nodes (split uniformly among them) and the
// remaining 1-powerFrac to everyone else. It returns the power vector and
// the sorted miner indices. With poolFrac=0.1, powerFrac=0.9 this is the
// paper's Figure 4(b) setting.
func Pools(n int, poolFrac, powerFrac float64, r *rng.RNG) (power []float64, miners []int, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("hashpower: n = %d must be positive", n)
	}
	if r == nil {
		return nil, nil, fmt.Errorf("hashpower: nil rng")
	}
	if poolFrac <= 0 || poolFrac > 1 {
		return nil, nil, fmt.Errorf("hashpower: pool fraction %v outside (0, 1]", poolFrac)
	}
	if powerFrac < 0 || powerFrac > 1 {
		return nil, nil, fmt.Errorf("hashpower: power fraction %v outside [0, 1]", powerFrac)
	}
	k := int(poolFrac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	miners = append([]int(nil), perm[:k]...)
	sort.Ints(miners)
	power = make([]float64, n)
	rest := n - k
	for i := range power {
		if rest > 0 {
			power[i] = (1 - powerFrac) / float64(rest)
		}
	}
	for _, m := range miners {
		power[m] = powerFrac / float64(k)
	}
	if rest == 0 {
		// Everyone is a miner; normalize to 1 regardless of powerFrac.
		for i := range power {
			power[i] = 1 / float64(n)
		}
	}
	return power, miners, nil
}

// Sampler draws block sources in proportion to node power.
type Sampler struct {
	cum []float64
}

// NewSampler validates the power vector (non-negative, positive sum) and
// precomputes cumulative weights for O(log n) sampling.
func NewSampler(power []float64) (*Sampler, error) {
	if len(power) == 0 {
		return nil, fmt.Errorf("hashpower: empty power vector")
	}
	cum := make([]float64, len(power))
	acc := 0.0
	for i, p := range power {
		if p < 0 {
			return nil, fmt.Errorf("hashpower: negative power %v at node %d", p, i)
		}
		acc += p
		cum[i] = acc
	}
	if acc <= 0 {
		return nil, fmt.Errorf("hashpower: total power is zero")
	}
	for i := range cum {
		cum[i] /= acc
	}
	cum[len(cum)-1] = 1
	return &Sampler{cum: cum}, nil
}

// Sample returns a node index drawn proportionally to power.
func (s *Sampler) Sample(r *rng.RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(s.cum, u)
}

// N returns the number of nodes the sampler covers.
func (s *Sampler) N() int { return len(s.cum) }
