package hashpower

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/perigee-net/perigee/internal/rng"
)

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestUniform(t *testing.T) {
	p, err := Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range p {
		if x != 0.25 {
			t.Fatalf("power = %v, want 0.25", x)
		}
	}
	if _, err := Uniform(0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestExponentialNormalized(t *testing.T) {
	p, err := Exponential(1000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(p)-1) > 1e-9 {
		t.Fatalf("sum = %v, want 1", sum(p))
	}
	for i, x := range p {
		if x < 0 {
			t.Fatalf("node %d has negative power %v", i, x)
		}
	}
	// Exponential power should be skewed: the max should be well above 1/n.
	maxP := 0.0
	for _, x := range p {
		if x > maxP {
			maxP = x
		}
	}
	if maxP < 3.0/1000 {
		t.Fatalf("max power %v suspiciously flat for exponential", maxP)
	}
}

func TestExponentialErrors(t *testing.T) {
	if _, err := Exponential(0, rng.New(1)); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := Exponential(10, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestPools(t *testing.T) {
	power, miners, err := Pools(1000, 0.1, 0.9, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(miners) != 100 {
		t.Fatalf("got %d miners, want 100", len(miners))
	}
	if math.Abs(sum(power)-1) > 1e-9 {
		t.Fatalf("sum = %v", sum(power))
	}
	minerSet := make(map[int]bool, len(miners))
	var minerPower float64
	for _, m := range miners {
		minerSet[m] = true
		minerPower += power[m]
	}
	if math.Abs(minerPower-0.9) > 1e-9 {
		t.Fatalf("miner power = %v, want 0.9", minerPower)
	}
	for i, p := range power {
		if minerSet[i] {
			if math.Abs(p-0.009) > 1e-12 {
				t.Fatalf("miner %d power %v, want 0.009", i, p)
			}
		} else if math.Abs(p-0.1/900) > 1e-12 {
			t.Fatalf("non-miner %d power %v, want %v", i, p, 0.1/900)
		}
	}
}

func TestPoolsMinersSorted(t *testing.T) {
	_, miners, err := Pools(100, 0.2, 0.8, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(miners); i++ {
		if miners[i-1] >= miners[i] {
			t.Fatalf("miners not strictly sorted: %v", miners)
		}
	}
}

func TestPoolsAllMiners(t *testing.T) {
	power, miners, err := Pools(10, 1.0, 0.9, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(miners) != 10 {
		t.Fatalf("want all nodes as miners, got %d", len(miners))
	}
	if math.Abs(sum(power)-1) > 1e-9 {
		t.Fatalf("sum = %v", sum(power))
	}
}

func TestPoolsErrors(t *testing.T) {
	r := rng.New(1)
	if _, _, err := Pools(0, 0.1, 0.9, r); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, _, err := Pools(10, 0, 0.9, r); err == nil {
		t.Fatal("expected error for poolFrac=0")
	}
	if _, _, err := Pools(10, 1.5, 0.9, r); err == nil {
		t.Fatal("expected error for poolFrac>1")
	}
	if _, _, err := Pools(10, 0.5, -0.1, r); err == nil {
		t.Fatal("expected error for negative powerFrac")
	}
	if _, _, err := Pools(10, 0.5, 0.9, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	power := []float64{0.5, 0.3, 0.2}
	s, err := NewSampler(power)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	counts := make([]int, 3)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[s.Sample(r)]++
	}
	for i, want := range power {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("node %d sampled %.3f, want ~%.3f", i, got, want)
		}
	}
}

func TestSamplerZeroPowerNeverSampled(t *testing.T) {
	s, err := NewSampler([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		if got := s.Sample(r); got != 1 {
			t.Fatalf("sampled zero-power node %d", got)
		}
	}
}

func TestSamplerUnnormalizedInput(t *testing.T) {
	s, err := NewSampler([]float64{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.Sample(r)]++
	}
	if math.Abs(float64(counts[2])/40000-0.5) > 0.02 {
		t.Fatalf("node 2 sampled %.3f, want ~0.5", float64(counts[2])/40000)
	}
}

func TestSamplerErrors(t *testing.T) {
	if _, err := NewSampler(nil); err == nil {
		t.Fatal("expected error for empty power")
	}
	if _, err := NewSampler([]float64{0.5, -0.5}); err == nil {
		t.Fatal("expected error for negative power")
	}
	if _, err := NewSampler([]float64{0, 0}); err == nil {
		t.Fatal("expected error for zero total")
	}
}

// Property: sampler always returns a valid index with nonzero power.
func TestSamplerRangeProperty(t *testing.T) {
	r := rng.New(8)
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		power := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			power[i] = float64(v)
			total += power[i]
		}
		if total == 0 {
			return true
		}
		s, err := NewSampler(power)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			idx := s.Sample(r)
			if idx < 0 || idx >= len(power) || power[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
