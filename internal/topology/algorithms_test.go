package topology

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
)

// lineGraph returns a path 0-1-2-...-(n-1).
func lineGraph(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	return adj
}

func unitWeight(u, v int) time.Duration { return time.Second }

func TestDijkstraLine(t *testing.T) {
	adj := lineGraph(5)
	dist := Dijkstra(adj, unitWeight, 0)
	for i, want := range []time.Duration{0, 1, 2, 3, 4} {
		if dist[i] != want*time.Second {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], want*time.Second)
		}
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	// 0-1-2 with cheap hops vs direct heavy edge 0-2.
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	w := func(u, v int) time.Duration {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 10 * time.Second
		}
		return time.Second
	}
	dist := Dijkstra(adj, w, 0)
	if dist[2] != 2*time.Second {
		t.Fatalf("dist[2] = %v, want 2s via node 1", dist[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	adj := [][]int{{1}, {0}, {}}
	dist := Dijkstra(adj, unitWeight, 0)
	if dist[2] != stats.InfDuration {
		t.Fatalf("unreachable node distance = %v, want InfDuration", dist[2])
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	adj, err := RandomUndirected(80, 3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	dist := Dijkstra(adj, unitWeight, 0)
	hops := BFSHops(adj, 0)
	for i := range adj {
		if hops[i] == -1 {
			if dist[i] != stats.InfDuration {
				t.Fatalf("node %d: BFS unreachable but Dijkstra %v", i, dist[i])
			}
			continue
		}
		if dist[i] != time.Duration(hops[i])*time.Second {
			t.Fatalf("node %d: dijkstra %v != %d hops", i, dist[i], hops[i])
		}
	}
}

func TestBFSHops(t *testing.T) {
	adj := lineGraph(4)
	hops := BFSHops(adj, 2)
	want := []int{2, 1, 0, 1}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
}

func TestComponents(t *testing.T) {
	adj := [][]int{{1}, {0}, {3}, {2}, {}}
	comps := Components(adj)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if comps[0][0] != 0 || comps[1][0] != 2 || comps[2][0] != 4 {
		t.Fatalf("components out of order: %v", comps)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(lineGraph(10)) {
		t.Fatal("line graph should be connected")
	}
	if IsConnected([][]int{{1}, {0}, {}}) {
		t.Fatal("graph with isolated node reported connected")
	}
	if !IsConnected(nil) {
		t.Fatal("empty graph is trivially connected")
	}
}

func TestHopDiameter(t *testing.T) {
	d, err := HopDiameter(lineGraph(6))
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Fatalf("diameter = %d, want 5", d)
	}
	if _, err := HopDiameter([][]int{{}, {}}); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestStretchSampleGeometricVsRandom(t *testing.T) {
	// The paper's Figure 1 claim: geometric graphs have far smaller
	// stretch than random graphs on embedded points.
	const n = 400
	r := rng.New(11)
	cube, err := latency.NewHypercube(n, 2, time.Second, r.Derive("points"))
	if err != nil {
		t.Fatal(err)
	}
	w := func(u, v int) time.Duration { return cube.Delay(u, v) }

	randomAdj, err := RandomUndirected(n, 3, r.Derive("random"))
	if err != nil {
		t.Fatal(err)
	}
	// Radius ~ sqrt(log n / n) keeps the geometric graph connected w.h.p.
	geomAdj, err := Geometric(n, cube.Distance, 0.14)
	if err != nil {
		t.Fatal(err)
	}
	randStretch, err := StretchSample(randomAdj, w, 150, r.Derive("pairs-a"))
	if err != nil {
		t.Fatal(err)
	}
	geomStretch, err := StretchSample(geomAdj, w, 150, r.Derive("pairs-b"))
	if err != nil {
		t.Fatal(err)
	}
	randMed := stats.Percentile(randStretch, 0.5)
	geomMed := stats.Percentile(geomStretch, 0.5)
	if geomMed >= randMed {
		t.Fatalf("geometric stretch %.2f should beat random stretch %.2f", geomMed, randMed)
	}
	for _, s := range geomStretch {
		if s < 1-1e-9 {
			t.Fatalf("stretch %v below 1 is impossible", s)
		}
	}
}

func TestStretchSampleErrors(t *testing.T) {
	adj := lineGraph(3)
	if _, err := StretchSample(adj, unitWeight, 0, rng.New(1)); err == nil {
		t.Fatal("expected error for pairs=0")
	}
	if _, err := StretchSample(adj, unitWeight, 5, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := StretchSample([][]int{{}}, unitWeight, 5, rng.New(1)); err == nil {
		t.Fatal("expected error for single node")
	}
	// Fully disconnected graph cannot produce pairs and must not hang.
	if _, err := StretchSample([][]int{{}, {}, {}}, unitWeight, 5, rng.New(1)); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}
