package topology

import (
	"testing"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/rng"
)

func TestRandomTopology(t *testing.T) {
	const n, dout, maxIn = 200, 8, 20
	tbl, err := Random(n, dout, maxIn, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if got := tbl.OutDegree(u); got != dout {
			t.Fatalf("node %d out-degree %d, want %d", u, got, dout)
		}
		if got := tbl.InDegree(u); got > maxIn {
			t.Fatalf("node %d in-degree %d exceeds cap %d", u, got, maxIn)
		}
	}
	if !IsConnected(tbl.Undirected()) {
		t.Fatal("random topology with degree 8 should be connected")
	}
}

func TestRandomTopologyDeterministic(t *testing.T) {
	a, err := Random(50, 4, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(50, 4, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 50; u++ {
		au, bu := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(au) != len(bu) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range au {
			if au[i] != bu[i] {
				t.Fatalf("node %d neighbors differ: %v vs %v", u, au, bu)
			}
		}
	}
}

func TestRandomTopologyErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := Random(10, 0, 5, r); err == nil {
		t.Fatal("expected error for dout=0")
	}
	if _, err := Random(10, 10, 5, r); err == nil {
		t.Fatal("expected error for dout >= n")
	}
	if _, err := Random(10, 5, 20, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestGeographicTopology(t *testing.T) {
	u, err := geo.SampleUniverse(300, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const dout, inRegion, maxIn = 8, 4, 20
	tbl, err := Geographic(u, dout, inRegion, maxIn, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	totalLocal, total := 0, 0
	for v := 0; v < u.N(); v++ {
		if got := tbl.OutDegree(v); got != dout {
			t.Fatalf("node %d out-degree %d, want %d", v, got, dout)
		}
		for _, w := range tbl.OutNeighbors(v) {
			total++
			if u.SameRegion(v, w) {
				totalLocal++
			}
		}
	}
	// Half the connections target the local region (plus random choices
	// landing locally by chance), so well over a quarter must be local.
	if frac := float64(totalLocal) / float64(total); frac < 0.3 {
		t.Fatalf("only %.2f of edges are intra-region; geographic preference not applied", frac)
	}
}

func TestGeographicErrors(t *testing.T) {
	u, err := geo.SampleUniverse(50, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Geographic(nil, 8, 4, 20, rng.New(1)); err == nil {
		t.Fatal("expected error for nil universe")
	}
	if _, err := Geographic(u, 8, 9, 20, rng.New(1)); err == nil {
		t.Fatal("expected error for inRegion > outDegree")
	}
	if _, err := Geographic(u, 8, -1, 20, rng.New(1)); err == nil {
		t.Fatal("expected error for negative inRegion")
	}
	if _, err := Geographic(u, 8, 4, 20, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestKademliaTopology(t *testing.T) {
	const n, dout, maxIn = 256, 8, 20
	tbl, err := Kademlia(n, dout, maxIn, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if got := tbl.OutDegree(v); got != dout {
			t.Fatalf("node %d out-degree %d, want %d", v, got, dout)
		}
	}
	if !IsConnected(tbl.Undirected()) {
		t.Fatal("kademlia topology should be connected")
	}
}

func TestKademliaErrors(t *testing.T) {
	if _, err := Kademlia(10, 0, 5, rng.New(1)); err == nil {
		t.Fatal("expected error for dout=0")
	}
	if _, err := Kademlia(10, 5, 20, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestGeometricGraph(t *testing.T) {
	// Four points on a line with unit spacing; radius 1.5 links adjacent
	// points only.
	coords := []float64{0, 1, 2, 3}
	dist := func(u, v int) float64 {
		d := coords[u] - coords[v]
		if d < 0 {
			d = -d
		}
		return d
	}
	adj, err := Geometric(4, dist, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := []int{1, 2, 2, 1}
	for u, want := range wantDeg {
		if len(adj[u]) != want {
			t.Fatalf("node %d degree %d, want %d (adj=%v)", u, len(adj[u]), want, adj)
		}
	}
}

func TestGeometricErrors(t *testing.T) {
	dist := func(u, v int) float64 { return 1 }
	if _, err := Geometric(0, dist, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := Geometric(5, nil, 1); err == nil {
		t.Fatal("expected error for nil dist")
	}
	if _, err := Geometric(5, dist, 0); err == nil {
		t.Fatal("expected error for radius 0")
	}
}

func TestRandomUndirected(t *testing.T) {
	adj, err := RandomUndirected(100, 3, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for u := range adj {
		if len(adj[u]) < 3 {
			t.Fatalf("node %d has degree %d < 3", u, len(adj[u]))
		}
		seen := map[int]bool{}
		for _, v := range adj[u] {
			if v == u {
				t.Fatalf("self loop at %d", u)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d-%d", u, v)
			}
			seen[v] = true
		}
	}
	// Symmetry.
	for u := range adj {
		for _, v := range adj[u] {
			found := false
			for _, w := range adj[v] {
				if w == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
}

func TestRandomUndirectedErrors(t *testing.T) {
	if _, err := RandomUndirected(1, 1, rng.New(1)); err == nil {
		t.Fatal("expected error for n too small")
	}
	if _, err := RandomUndirected(10, 0, rng.New(1)); err == nil {
		t.Fatal("expected error for degree 0")
	}
	if _, err := RandomUndirected(10, 3, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestRelayTree(t *testing.T) {
	members := []int{10, 20, 30, 40, 50, 60, 70}
	edges, err := RelayTree(members, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != len(members)-1 {
		t.Fatalf("tree has %d edges, want %d", len(edges), len(members)-1)
	}
	// Verify it is a tree: build adjacency over member space and check
	// connectivity via the merged adjacency helper.
	adj := make([][]int, 71)
	merged := MergeAdjacency(adj, edges)
	hops := BFSHops(merged, 10)
	for _, m := range members {
		if hops[m] == -1 {
			t.Fatalf("member %d unreachable from root", m)
		}
	}
	// Binary tree of 7 nodes has height 2.
	for _, m := range members {
		if hops[m] > 2 {
			t.Fatalf("member %d at depth %d, want <= 2", m, hops[m])
		}
	}
}

func TestRelayTreeErrors(t *testing.T) {
	if _, err := RelayTree([]int{1}, 2); err == nil {
		t.Fatal("expected error for single member")
	}
	if _, err := RelayTree([]int{1, 2}, 0); err == nil {
		t.Fatal("expected error for branching 0")
	}
	if _, err := RelayTree([]int{1, 2, 1}, 2); err == nil {
		t.Fatal("expected error for duplicate member")
	}
}

func TestMergeAdjacency(t *testing.T) {
	adj := [][]int{{1}, {0}, {}}
	merged := MergeAdjacency(adj, [][2]int{{1, 2}, {0, 1}, {2, 2}, {0, 5}})
	if len(merged[1]) != 2 {
		t.Fatalf("node 1 adjacency %v, want [0 2]", merged[1])
	}
	if len(merged[2]) != 1 || merged[2][0] != 1 {
		t.Fatalf("node 2 adjacency %v, want [1]", merged[2])
	}
	// Self loops and out-of-range edges are ignored.
	if len(merged[0]) != 1 {
		t.Fatalf("node 0 adjacency %v, want [1]", merged[0])
	}
}
