// Package topology provides the p2p connection substrate: a
// degree-constrained connection table (outgoing connections per node,
// capped incoming connections, §2.1), topology constructors for every
// algorithm the paper evaluates (random, geographic, Kademlia-style,
// geometric threshold graphs, relay trees), and the graph algorithms the
// analysis sections rely on (Dijkstra, BFS, components, stretch).
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors returned by Table operations.
var (
	// ErrSelfConnection indicates an attempt to connect a node to itself.
	ErrSelfConnection = errors.New("topology: self connection")
	// ErrDuplicateConnection indicates the outgoing edge already exists.
	ErrDuplicateConnection = errors.New("topology: duplicate connection")
	// ErrIncomingFull indicates the target already has the maximum number
	// of incoming connections and refuses new ones (§5.1).
	ErrIncomingFull = errors.New("topology: incoming slots full")
	// ErrNoConnection indicates a disconnect of a non-existent edge.
	ErrNoConnection = errors.New("topology: no such connection")
	// ErrNodeRange indicates a node index outside [0, n).
	ErrNodeRange = errors.New("topology: node index out of range")
)

// Table tracks directed p2p connections with Bitcoin-style constraints:
// each node initiates outgoing connections, and each node accepts at most
// MaxIn incoming ones. Communication is bidirectional once established, so
// the effective gossip graph is the undirected union (see Undirected).
type Table struct {
	n     int
	maxIn int
	out   []map[int]struct{}
	in    []map[int]struct{}
	// version increments on every successful edge mutation, letting callers
	// (e.g. the engine's cached simulator) detect topology changes without
	// comparing adjacencies.
	version uint64
}

// NewTable creates an empty table for n nodes with the given incoming cap.
func NewTable(n, maxIn int) (*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: table size %d must be positive", n)
	}
	if maxIn <= 0 {
		return nil, fmt.Errorf("topology: incoming cap %d must be positive", maxIn)
	}
	t := &Table{
		n:     n,
		maxIn: maxIn,
		out:   make([]map[int]struct{}, n),
		in:    make([]map[int]struct{}, n),
	}
	for i := 0; i < n; i++ {
		t.out[i] = make(map[int]struct{})
		t.in[i] = make(map[int]struct{})
	}
	return t, nil
}

// N returns the number of nodes.
func (t *Table) N() int { return t.n }

// MaxIn returns the incoming-connection cap.
func (t *Table) MaxIn() int { return t.maxIn }

func (t *Table) checkNode(u int) error {
	if u < 0 || u >= t.n {
		return fmt.Errorf("%w: %d (n=%d)", ErrNodeRange, u, t.n)
	}
	return nil
}

// Connect adds the outgoing edge u->v. It fails with ErrIncomingFull if v
// has no incoming slots left, mirroring a declined TCP connection request.
func (t *Table) Connect(u, v int) error {
	if err := t.checkNode(u); err != nil {
		return err
	}
	if err := t.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfConnection, u)
	}
	if _, ok := t.out[u][v]; ok {
		return fmt.Errorf("%w: %d->%d", ErrDuplicateConnection, u, v)
	}
	if len(t.in[v]) >= t.maxIn {
		return fmt.Errorf("%w: node %d", ErrIncomingFull, v)
	}
	t.out[u][v] = struct{}{}
	t.in[v][u] = struct{}{}
	t.version++
	return nil
}

// Disconnect removes the outgoing edge u->v.
func (t *Table) Disconnect(u, v int) error {
	if err := t.checkNode(u); err != nil {
		return err
	}
	if err := t.checkNode(v); err != nil {
		return err
	}
	if _, ok := t.out[u][v]; !ok {
		return fmt.Errorf("%w: %d->%d", ErrNoConnection, u, v)
	}
	delete(t.out[u], v)
	delete(t.in[v], u)
	t.version++
	return nil
}

// Version returns a counter that increments on every successful Connect or
// Disconnect. Two calls returning the same value bracket a window in which
// the table's edge set did not change, so derived structures (adjacency
// snapshots, simulators) built in between are still current.
func (t *Table) Version() uint64 { return t.version }

// HasOut reports whether the outgoing edge u->v exists.
func (t *Table) HasOut(u, v int) bool {
	_, ok := t.out[u][v]
	return ok
}

// OutDegree returns the number of outgoing connections of u.
func (t *Table) OutDegree(u int) int { return len(t.out[u]) }

// InDegree returns the number of incoming connections of u.
func (t *Table) InDegree(u int) int { return len(t.in[u]) }

// InFree returns the number of remaining incoming slots at u.
func (t *Table) InFree(u int) int { return t.maxIn - len(t.in[u]) }

// OutNeighbors returns u's outgoing neighbors in ascending order.
func (t *Table) OutNeighbors(u int) []int { return sortedKeys(t.out[u]) }

// AppendOutNeighbors appends u's outgoing neighbors in ascending order to
// buf and returns the extended slice, reusing buf's capacity. Callers on
// hot paths pass buf[:0] to avoid the per-call allocation of OutNeighbors.
func (t *Table) AppendOutNeighbors(buf []int, u int) []int {
	return appendSortedKeys(buf, t.out[u])
}

// InNeighbors returns u's incoming neighbors in ascending order.
func (t *Table) InNeighbors(u int) []int { return sortedKeys(t.in[u]) }

// Neighbors returns the union of u's outgoing and incoming neighbors in
// ascending order — the set of peers u exchanges blocks with (Γ_v in the
// paper).
func (t *Table) Neighbors(u int) []int {
	set := make(map[int]struct{}, len(t.out[u])+len(t.in[u]))
	for v := range t.out[u] {
		set[v] = struct{}{}
	}
	for v := range t.in[u] {
		set[v] = struct{}{}
	}
	return sortedKeys(set)
}

func sortedKeys(m map[int]struct{}) []int {
	return appendSortedKeys(make([]int, 0, len(m)), m)
}

func appendSortedKeys(buf []int, m map[int]struct{}) []int {
	start := len(buf)
	for k := range m {
		buf = append(buf, k)
	}
	sort.Ints(buf[start:])
	return buf
}

// Undirected returns the symmetric adjacency lists of the communication
// graph (outgoing ∪ incoming per node), each list ascending. The result is
// a snapshot; it does not alias the table.
func (t *Table) Undirected() [][]int {
	return t.UndirectedInto(nil)
}

// UndirectedInto fills adj with the symmetric adjacency snapshot, reusing
// adj's outer slice and per-row capacity when possible (pass the previous
// round's snapshot to rebuild it without reallocating). The result is
// sorted ascending per row and does not alias the table.
func (t *Table) UndirectedInto(adj [][]int) [][]int {
	if cap(adj) < t.n {
		adj = make([][]int, t.n)
	}
	adj = adj[:t.n]
	for u := 0; u < t.n; u++ {
		row := adj[u][:0]
		for v := range t.out[u] {
			row = append(row, v)
		}
		for v := range t.in[u] {
			if _, dup := t.out[u][v]; !dup {
				row = append(row, v)
			}
		}
		sort.Ints(row)
		adj[u] = row
	}
	return adj
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := &Table{
		n:     t.n,
		maxIn: t.maxIn,
		out:   make([]map[int]struct{}, t.n),
		in:    make([]map[int]struct{}, t.n),
	}
	for i := 0; i < t.n; i++ {
		c.out[i] = make(map[int]struct{}, len(t.out[i]))
		for v := range t.out[i] {
			c.out[i][v] = struct{}{}
		}
		c.in[i] = make(map[int]struct{}, len(t.in[i]))
		for v := range t.in[i] {
			c.in[i][v] = struct{}{}
		}
	}
	return c
}

// TotalEdges returns the number of directed edges in the table.
func (t *Table) TotalEdges() int {
	total := 0
	for _, m := range t.out {
		total += len(m)
	}
	return total
}

// Validate checks the table's internal invariants: out/in mirror each
// other, no self loops, and the incoming cap holds. It is used by tests and
// by the engine's failure-injection paths.
func (t *Table) Validate() error {
	for u := 0; u < t.n; u++ {
		if len(t.in[u]) > t.maxIn {
			return fmt.Errorf("topology: node %d has %d incoming, cap %d", u, len(t.in[u]), t.maxIn)
		}
		for v := range t.out[u] {
			if v == u {
				return fmt.Errorf("topology: node %d has self loop", u)
			}
			if _, ok := t.in[v][u]; !ok {
				return fmt.Errorf("topology: edge %d->%d missing from in-set", u, v)
			}
		}
		for v := range t.in[u] {
			if _, ok := t.out[v][u]; !ok {
				return fmt.Errorf("topology: in-edge %d<-%d missing from out-set", u, v)
			}
		}
	}
	return nil
}
