package topology

import (
	"fmt"
	"math/bits"

	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/rng"
)

// Random builds the Bitcoin-style random topology (§3.1): every node opens
// outDegree outgoing connections to uniformly random distinct peers,
// honoring the incoming cap. Nodes connect in random order; a node that
// cannot fill its quota after scanning every peer returns an error (with
// sensible parameters — maxIn >= outDegree — this does not happen in
// practice).
func Random(n, outDegree, maxIn int, r *rng.RNG) (*Table, error) {
	t, err := NewTable(n, maxIn)
	if err != nil {
		return nil, err
	}
	if outDegree <= 0 || outDegree >= n {
		return nil, fmt.Errorf("topology: out-degree %d outside (0, n=%d)", outDegree, n)
	}
	if r == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	for _, u := range r.Perm(n) {
		if err := fillRandom(t, u, outDegree, r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// fillRandom adds random outgoing connections to u until it has quota of
// them, scanning a fresh random permutation of candidates.
func fillRandom(t *Table, u, quota int, r *rng.RNG) error {
	if t.OutDegree(u) >= quota {
		return nil
	}
	for _, v := range r.Perm(t.n) {
		if v == u || t.HasOut(u, v) {
			continue
		}
		if err := t.Connect(u, v); err != nil {
			continue // incoming slots full; try the next candidate
		}
		if t.OutDegree(u) >= quota {
			return nil
		}
	}
	return fmt.Errorf("topology: node %d stuck at out-degree %d, want %d", u, t.OutDegree(u), quota)
}

// Geographic builds the geography-aware baseline of §3.2: each node opens
// inRegion connections to random peers in its own region and
// outDegree-inRegion connections to random peers anywhere. Nodes in regions
// too small to supply inRegion distinct peers fall back to random choices.
func Geographic(u *geo.Universe, outDegree, inRegion, maxIn int, r *rng.RNG) (*Table, error) {
	if u == nil {
		return nil, fmt.Errorf("topology: nil universe")
	}
	if inRegion < 0 || inRegion > outDegree {
		return nil, fmt.Errorf("topology: in-region count %d outside [0, %d]", inRegion, outDegree)
	}
	n := u.N()
	t, err := NewTable(n, maxIn)
	if err != nil {
		return nil, err
	}
	if outDegree <= 0 || outDegree >= n {
		return nil, fmt.Errorf("topology: out-degree %d outside (0, n=%d)", outDegree, n)
	}
	if r == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	// Pre-index region membership once.
	byRegion := make([][]int, geo.NumRegions)
	for i := 0; i < n; i++ {
		reg := u.Region(i)
		byRegion[reg] = append(byRegion[reg], i)
	}
	for _, v := range r.Perm(n) {
		local := byRegion[u.Region(v)]
		// Local connections first.
		want := t.OutDegree(v) + inRegion
		for _, idx := range r.Perm(len(local)) {
			if t.OutDegree(v) >= want {
				break
			}
			w := local[idx]
			if w == v || t.HasOut(v, w) {
				continue
			}
			if err := t.Connect(v, w); err != nil {
				continue
			}
		}
		// Remaining connections anywhere (also tops up any local shortfall).
		if err := fillRandom(t, v, outDegree, r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Kademlia builds a Kadcast-style structured overlay (§5.1, [37]): nodes
// get random 64-bit IDs; peers are grouped into XOR-distance buckets by the
// index of the highest differing bit, and each node connects to one random
// member of each bucket, starting from the farthest bucket, until
// outDegree connections are made. Unfillable slots (empty buckets, full
// incoming caps) fall back to random peers so every node reaches
// outDegree.
func Kademlia(n, outDegree, maxIn int, r *rng.RNG) (*Table, error) {
	t, err := NewTable(n, maxIn)
	if err != nil {
		return nil, err
	}
	if outDegree <= 0 || outDegree >= n {
		return nil, fmt.Errorf("topology: out-degree %d outside (0, n=%d)", outDegree, n)
	}
	if r == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	ids := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := range ids {
		for {
			id := r.Uint64()
			if !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	// buckets[u][b] lists nodes whose ID differs from u's in bit b as the
	// most significant differing bit (bucket 63 = farthest).
	for _, u := range r.Perm(n) {
		var buckets [64][]int
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			b := 63 - bits.LeadingZeros64(ids[u]^ids[v])
			buckets[b] = append(buckets[b], v)
		}
		for b := 63; b >= 0 && t.OutDegree(u) < outDegree; b-- {
			members := buckets[b]
			if len(members) == 0 {
				continue
			}
			// Try a few random members before giving up on this bucket.
			for attempt := 0; attempt < 4; attempt++ {
				v := members[r.IntN(len(members))]
				if t.HasOut(u, v) {
					continue
				}
				if err := t.Connect(u, v); err == nil {
					break
				}
			}
		}
		if err := fillRandom(t, u, outDegree, r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Geometric builds the threshold geometric graph of §3.3 over a point set:
// nodes u, v are adjacent iff dist(u, v) < radius. The result is plain
// undirected adjacency (no degree caps — it is a theoretical construct).
func Geometric(n int, dist func(u, v int) float64, radius float64) ([][]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: geometric graph size %d must be positive", n)
	}
	if dist == nil {
		return nil, fmt.Errorf("topology: nil distance function")
	}
	if radius <= 0 {
		return nil, fmt.Errorf("topology: radius %v must be positive", radius)
	}
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if dist(u, v) < radius {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
	}
	return adj, nil
}

// RandomUndirected builds an Erdős–Rényi-flavored undirected graph where
// each node links to degree uniformly random peers (used for the Figure 1
// and Theorem 1 experiments, which have no degree caps).
func RandomUndirected(n, degree int, r *rng.RNG) ([][]int, error) {
	if n <= 1 {
		return nil, fmt.Errorf("topology: undirected graph size %d too small", n)
	}
	if degree <= 0 || degree >= n {
		return nil, fmt.Errorf("topology: degree %d outside (0, n=%d)", degree, n)
	}
	if r == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	type pair struct{ a, b int }
	seen := make(map[pair]bool, n*degree)
	adj := make([][]int, n)
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || seen[pair{a, b}] {
			return
		}
		seen[pair{a, b}] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for u := 0; u < n; u++ {
		made := 0
		for _, v := range r.Perm(n) {
			if made >= degree {
				break
			}
			if v == u {
				continue
			}
			before := len(adj[u])
			add(u, v)
			if len(adj[u]) > before {
				made++
			}
		}
	}
	return adj, nil
}

// RelayTree returns the undirected edges of a b-ary tree over the given
// member nodes, in the order provided: members[i] links to
// members[(i-1)/branching]. This reproduces the Figure 4(c) relay network
// (100 nodes organized as a tree with low-latency links).
func RelayTree(members []int, branching int) ([][2]int, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("topology: relay tree needs at least 2 members, got %d", len(members))
	}
	if branching <= 0 {
		return nil, fmt.Errorf("topology: branching %d must be positive", branching)
	}
	seen := make(map[int]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("topology: duplicate relay member %d", m)
		}
		seen[m] = true
	}
	edges := make([][2]int, 0, len(members)-1)
	for i := 1; i < len(members); i++ {
		parent := members[(i-1)/branching]
		edges = append(edges, [2]int{parent, members[i]})
	}
	return edges, nil
}

// MergeAdjacency returns the union of an adjacency structure and extra
// undirected edges, deduplicated, each list ascending. Used to pin relay
// tree edges into the evolving p2p graph.
func MergeAdjacency(adj [][]int, extra [][2]int) [][]int {
	n := len(adj)
	sets := make([]map[int]struct{}, n)
	for u := 0; u < n; u++ {
		sets[u] = make(map[int]struct{}, len(adj[u])+2)
		for _, v := range adj[u] {
			sets[u][v] = struct{}{}
		}
	}
	for _, e := range extra {
		a, b := e[0], e[1]
		if a == b || a < 0 || b < 0 || a >= n || b >= n {
			continue
		}
		sets[a][b] = struct{}{}
		sets[b][a] = struct{}{}
	}
	out := make([][]int, n)
	for u := 0; u < n; u++ {
		out[u] = sortedKeys(sets[u])
	}
	return out
}
