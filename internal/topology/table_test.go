package topology

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/perigee-net/perigee/internal/rng"
)

func mustTable(t *testing.T, n, maxIn int) *Table {
	t.Helper()
	tbl, err := NewTable(n, maxIn)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(0, 5); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewTable(5, 0); err == nil {
		t.Fatal("expected error for maxIn=0")
	}
}

func TestConnectDisconnect(t *testing.T) {
	tbl := mustTable(t, 4, 2)
	if err := tbl.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasOut(0, 1) || tbl.HasOut(1, 0) {
		t.Fatal("edge direction wrong")
	}
	if tbl.OutDegree(0) != 1 || tbl.InDegree(1) != 1 {
		t.Fatal("degrees wrong")
	}
	if err := tbl.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if tbl.HasOut(0, 1) || tbl.OutDegree(0) != 0 || tbl.InDegree(1) != 0 {
		t.Fatal("disconnect did not clean up")
	}
}

func TestConnectErrors(t *testing.T) {
	tbl := mustTable(t, 4, 1)
	if err := tbl.Connect(0, 0); !errors.Is(err, ErrSelfConnection) {
		t.Fatalf("self connect: %v", err)
	}
	if err := tbl.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Connect(0, 1); !errors.Is(err, ErrDuplicateConnection) {
		t.Fatalf("duplicate connect: %v", err)
	}
	// Node 1 now has its single incoming slot used.
	if err := tbl.Connect(2, 1); !errors.Is(err, ErrIncomingFull) {
		t.Fatalf("incoming full: %v", err)
	}
	if err := tbl.Connect(-1, 2); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("node range: %v", err)
	}
	if err := tbl.Connect(0, 9); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("node range: %v", err)
	}
	if err := tbl.Disconnect(2, 3); !errors.Is(err, ErrNoConnection) {
		t.Fatalf("no connection: %v", err)
	}
}

func TestIncomingFreedByDisconnect(t *testing.T) {
	tbl := mustTable(t, 3, 1)
	if err := tbl.Connect(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Connect(1, 2); !errors.Is(err, ErrIncomingFull) {
		t.Fatal("expected full")
	}
	if err := tbl.Disconnect(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Connect(1, 2); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
	if tbl.InFree(2) != 0 {
		t.Fatalf("InFree = %d, want 0", tbl.InFree(2))
	}
}

func TestNeighborsUnion(t *testing.T) {
	tbl := mustTable(t, 5, 5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {3, 0}, {4, 0}} {
		if err := tbl.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := tbl.Neighbors(0)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", got, want)
		}
	}
	outs := tbl.OutNeighbors(0)
	if len(outs) != 2 || outs[0] != 1 || outs[1] != 2 {
		t.Fatalf("out neighbors = %v", outs)
	}
	ins := tbl.InNeighbors(0)
	if len(ins) != 2 || ins[0] != 3 || ins[1] != 4 {
		t.Fatalf("in neighbors = %v", ins)
	}
}

func TestNeighborsBothDirections(t *testing.T) {
	// A pair connected in both directions appears once in the union.
	tbl := mustTable(t, 2, 2)
	if err := tbl.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Connect(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("neighbors = %v, want [1]", got)
	}
}

func TestUndirectedSymmetric(t *testing.T) {
	tbl := mustTable(t, 6, 4)
	for _, e := range [][2]int{{0, 1}, {2, 1}, {3, 4}, {5, 0}} {
		if err := tbl.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	adj := tbl.Undirected()
	for u := range adj {
		for _, v := range adj[u] {
			found := false
			for _, w := range adj[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d in adj[%d] but not vice versa", v, u)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tbl := mustTable(t, 3, 2)
	if err := tbl.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	c := tbl.Clone()
	if err := c.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	if tbl.HasOut(1, 2) {
		t.Fatal("clone aliases original")
	}
	if !c.HasOut(0, 1) {
		t.Fatal("clone lost edge")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalEdges(t *testing.T) {
	tbl := mustTable(t, 4, 3)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for _, e := range edges {
		if err := tbl.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.TotalEdges(); got != 4 {
		t.Fatalf("TotalEdges = %d, want 4", got)
	}
}

// Property: after any sequence of random connect/disconnect operations the
// table's invariants hold.
func TestTableInvariantsUnderRandomOps(t *testing.T) {
	r := rng.New(77)
	check := func(ops []uint32) bool {
		const n, maxIn = 12, 3
		tbl, err := NewTable(n, maxIn)
		if err != nil {
			return false
		}
		for _, op := range ops {
			u := int(op>>8) % n
			v := int(op>>16) % n
			if op&1 == 0 {
				_ = tbl.Connect(u, v) // errors are legal outcomes
			} else {
				_ = tbl.Disconnect(u, v)
			}
		}
		_ = r
		return tbl.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionTracksMutations(t *testing.T) {
	tbl, err := NewTable(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	v0 := tbl.Version()
	if err := tbl.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v0 {
		t.Fatal("Version unchanged after Connect")
	}
	v1 := tbl.Version()
	// Failed mutations must not move the version.
	if err := tbl.Connect(0, 1); err == nil {
		t.Fatal("duplicate connect succeeded")
	}
	if err := tbl.Disconnect(1, 0); err == nil {
		t.Fatal("disconnect of missing edge succeeded")
	}
	if tbl.Version() != v1 {
		t.Fatal("Version moved on failed mutation")
	}
	if err := tbl.Disconnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v1 {
		t.Fatal("Version unchanged after Disconnect")
	}
}

func TestUndirectedIntoReusesBuffers(t *testing.T) {
	tbl, err := NewTable(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 0}, {4, 2}} {
		if err := tbl.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want := tbl.Undirected()
	buf := tbl.UndirectedInto(nil)
	// Mutate, rebuild into the same buffer, and compare against a fresh
	// snapshot.
	if err := tbl.Connect(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Disconnect(1, 2); err != nil {
		t.Fatal(err)
	}
	got := tbl.UndirectedInto(buf)
	fresh := tbl.Undirected()
	if len(got) != len(fresh) {
		t.Fatalf("row count %d, want %d", len(got), len(fresh))
	}
	for v := range fresh {
		if len(got[v]) != len(fresh[v]) {
			t.Fatalf("row %d: %v, want %v", v, got[v], fresh[v])
		}
		for i := range fresh[v] {
			if got[v][i] != fresh[v][i] {
				t.Fatalf("row %d: %v, want %v", v, got[v], fresh[v])
			}
		}
	}
	// The pre-mutation snapshot must be untouched by the rebuild only in
	// the sense that it was a distinct snapshot then; sanity-check the
	// original edge (1, 2) was present in it.
	found := false
	for _, u := range want[1] {
		if u == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("pre-mutation snapshot missing edge (1, 2)")
	}
}

func TestAppendOutNeighbors(t *testing.T) {
	tbl, err := NewTable(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{5, 1, 3} {
		if err := tbl.Connect(2, v); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]int, 0, 8)
	got := tbl.AppendOutNeighbors(buf, 2)
	want := tbl.OutNeighbors(2)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Reuse must not grow when capacity suffices.
	again := tbl.AppendOutNeighbors(got[:0], 2)
	if &again[0] != &got[0] {
		t.Fatal("AppendOutNeighbors reallocated despite sufficient capacity")
	}
}
