package topology

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
)

// WeightFunc returns the weight of the undirected edge (u, v).
type WeightFunc func(u, v int) time.Duration

// Dijkstra computes single-source shortest paths over undirected adjacency
// lists with non-negative edge weights. Unreachable nodes get
// stats.InfDuration.
func Dijkstra(adj [][]int, weight WeightFunc, src int) []time.Duration {
	n := len(adj)
	dist := make([]time.Duration, n)
	for i := range dist {
		dist[i] = stats.InfDuration
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		u := item.node
		for _, v := range adj[u] {
			d := dist[u] + weight(u, v)
			if d < dist[v] {
				dist[v] = d
				heap.Push(pq, distItem{node: v, dist: d})
			}
		}
	}
	return dist
}

type distItem struct {
	node int
	dist time.Duration
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BFSHops returns the hop distance from src to every node, or -1 when
// unreachable.
func BFSHops(adj [][]int, src int) []int {
	n := len(adj)
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if hops[v] == -1 {
				hops[v] = hops[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return hops
}

// Components returns the connected components of the undirected graph,
// each ascending, ordered by their smallest member.
func Components(adj [][]int) [][]int {
	n := len(adj)
	visited := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// IsConnected reports whether the undirected graph is a single component.
func IsConnected(adj [][]int) bool {
	if len(adj) == 0 {
		return true
	}
	hops := BFSHops(adj, 0)
	for _, h := range hops {
		if h == -1 {
			return false
		}
	}
	return true
}

// HopDiameter returns the exact hop diameter (longest shortest path in
// hops) of a connected graph, computed by BFS from every node; it returns
// an error when the graph is disconnected.
func HopDiameter(adj [][]int) (int, error) {
	if !IsConnected(adj) {
		return 0, fmt.Errorf("topology: graph is disconnected")
	}
	diameter := 0
	for s := range adj {
		for _, h := range BFSHops(adj, s) {
			if h > diameter {
				diameter = h
			}
		}
	}
	return diameter, nil
}

// StretchSample measures multiplicative path stretch over random node
// pairs: Dijkstra graph distance divided by the direct point-to-point
// delay. Pairs with zero direct delay or in different components are
// skipped. It returns one stretch value per usable pair.
func StretchSample(adj [][]int, weight WeightFunc, pairs int, r *rng.RNG) ([]float64, error) {
	n := len(adj)
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes for stretch")
	}
	if pairs <= 0 {
		return nil, fmt.Errorf("topology: pair count %d must be positive", pairs)
	}
	if r == nil {
		return nil, fmt.Errorf("topology: nil rng")
	}
	var out []float64
	// Group pairs by source so one Dijkstra serves several targets. Bound
	// total attempts so a disconnected or degenerate graph cannot loop
	// forever.
	const perSource = 4
	maxAttempts := pairs * 50
	for attempts := 0; len(out) < pairs; attempts++ {
		if attempts >= maxAttempts {
			return nil, fmt.Errorf("topology: could not find %d usable pairs in %d attempts (graph disconnected?)", pairs, maxAttempts)
		}
		src := r.IntN(n)
		dist := Dijkstra(adj, weight, src)
		for k := 0; k < perSource && len(out) < pairs; k++ {
			dst := r.IntN(n)
			if dst == src {
				continue
			}
			direct := weight(src, dst)
			if direct <= 0 || dist[dst] == stats.InfDuration {
				continue
			}
			out = append(out, float64(dist[dst])/float64(direct))
		}
	}
	return out, nil
}
