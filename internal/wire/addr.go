package wire

import (
	"fmt"
	"net"
	"strconv"
)

// NetAddr is one gossiped address plus its freshness metadata. AgeSec is
// the sender's claim of how many seconds have passed since it last had
// evidence of the address (a successful dial, a handshake, or a fresh
// gossip hop). Receivers use the age to prefer fresh addresses, discount
// stale rumor, and bound how long an address can circulate: unlike a raw
// string, a NetAddr cannot be replayed forever without its age growing.
type NetAddr struct {
	// Addr is the "host:port" accepting address.
	Addr string
	// AgeSec is the seconds elapsed since the sender last confirmed the
	// address. Zero means "fresh" (e.g. a node announcing itself).
	AgeSec uint32
}

// Validation errors for gossiped addresses.
var (
	// ErrBadAddr indicates a syntactically invalid gossiped address.
	ErrBadAddr = fmt.Errorf("wire: invalid address")
)

// ValidateAddr checks that s is a syntactically plausible "host:port"
// listening address: a parseable host:port split, a numeric port in
// [1, 65535], and a host that is either an IP literal or a DNS-shaped
// hostname. It rejects empty hosts, port zero, and strings above
// MaxAddrLen before any of them can enter an address book or be redialed.
// The check is purely syntactic — no resolution or reachability probing.
func ValidateAddr(s string) error {
	if s == "" {
		return fmt.Errorf("%w: empty", ErrBadAddr)
	}
	if len(s) > MaxAddrLen {
		return fmt.Errorf("%w: %d bytes", ErrBadAddr, len(s))
	}
	host, port, err := net.SplitHostPort(s)
	if err != nil {
		return fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 1 || p > 65535 {
		return fmt.Errorf("%w: port %q", ErrBadAddr, port)
	}
	if host == "" {
		return fmt.Errorf("%w: empty host in %q", ErrBadAddr, s)
	}
	if net.ParseIP(host) != nil {
		return nil
	}
	if !validHostname(host) {
		return fmt.Errorf("%w: host %q", ErrBadAddr, host)
	}
	return nil
}

// validHostname applies the DNS label shape: dot-separated labels of
// [a-zA-Z0-9-], 1-63 bytes each, not starting or ending with a hyphen,
// 253 bytes total.
func validHostname(host string) bool {
	if len(host) > 253 {
		return false
	}
	label := 0
	for i := 0; i <= len(host); i++ {
		if i == len(host) || host[i] == '.' {
			n := i - label
			if n < 1 || n > 63 || host[label] == '-' || host[i-1] == '-' {
				return false
			}
			label = i + 1
			continue
		}
		c := host[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
	}
	return true
}
