package wire

import "errors"

// Misbehavior points charged per protocol violation. The live node feeds
// these into the address book's misbehavior score; a peer crossing the
// book's ban threshold is disconnected and banned. Severe violations
// (corrupt framing that an honest implementation can never emit) are
// weighted so a handful of offenses trips the default threshold, while
// lighter ones (oversized or undecodable payloads, which a buggy-but-
// honest peer could produce) take sustained abuse.
const (
	// PointsFraming is charged for bad magic or checksum mismatches.
	PointsFraming = 40
	// PointsMalformed is charged for undecodable, oversized, or
	// unknown-type payloads.
	PointsMalformed = 25
)

// ViolationPoints classifies a read error into misbehavior points.
// It returns 0 for transport errors (EOF, timeouts, resets): losing a
// connection is not a protocol offense, and charging for it would let
// an attacker get victims banned by injecting resets.
func ViolationPoints(err error) float64 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrBadMagic), errors.Is(err, ErrChecksum):
		return PointsFraming
	case errors.Is(err, ErrMalformed), errors.Is(err, ErrTooLarge), errors.Is(err, ErrUnknownType):
		return PointsMalformed
	default:
		return 0
	}
}

// IsViolation reports whether err represents a protocol violation
// (as opposed to a transport failure).
func IsViolation(err error) bool { return ViolationPoints(err) > 0 }
