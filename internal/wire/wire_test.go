package wire

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("write %v: %v", m.Type(), err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", m.Type(), err)
	}
	if got.Type() != m.Type() {
		t.Fatalf("type changed: %v -> %v", m.Type(), got.Type())
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after read", buf.Len())
	}
	return got
}

func TestVersionRoundTrip(t *testing.T) {
	in := &Version{Protocol: 1, NodeID: 0xdeadbeef, ListenAddr: "127.0.0.1:8333", Nonce: 42}
	got := roundTrip(t, in).(*Version)
	if *got != *in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestEmptyMessagesRoundTrip(t *testing.T) {
	roundTrip(t, &Verack{})
	roundTrip(t, &GetAddr{})
}

func TestPingPongRoundTrip(t *testing.T) {
	ping := roundTrip(t, &Ping{Nonce: 7}).(*Ping)
	if ping.Nonce != 7 {
		t.Fatal("ping nonce lost")
	}
	pong := roundTrip(t, &Pong{Nonce: 9}).(*Pong)
	if pong.Nonce != 9 {
		t.Fatal("pong nonce lost")
	}
}

func TestInvGetDataRoundTrip(t *testing.T) {
	hashes := []chain.Hash{{1, 2}, {3, 4}, {5}}
	inv := roundTrip(t, &Inv{Hashes: hashes}).(*Inv)
	if len(inv.Hashes) != 3 || inv.Hashes[0] != hashes[0] || inv.Hashes[2] != hashes[2] {
		t.Fatalf("inv hashes corrupted: %v", inv.Hashes)
	}
	gd := roundTrip(t, &GetData{Hashes: hashes[:1]}).(*GetData)
	if len(gd.Hashes) != 1 || gd.Hashes[0] != hashes[0] {
		t.Fatalf("getdata hashes corrupted: %v", gd.Hashes)
	}
	empty := roundTrip(t, &Inv{}).(*Inv)
	if len(empty.Hashes) != 0 {
		t.Fatal("empty inv grew hashes")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	g := chain.NewGenesis("wire")
	blk := chain.NewBlock(g, [][]byte{[]byte("tx1"), []byte("tx2")}, time.UnixMilli(99), 3)
	got := roundTrip(t, &Block{Block: blk}).(*Block)
	if got.Block.Header.Hash() != blk.Header.Hash() {
		t.Fatal("block hash changed in transit")
	}
	if len(got.Block.Txs) != 2 {
		t.Fatal("txs lost in transit")
	}
}

func TestAddrRoundTrip(t *testing.T) {
	in := &Addr{Addrs: []NetAddr{
		{Addr: "1.2.3.4:8333", AgeSec: 0},
		{Addr: "[::1]:9000", AgeSec: 3600},
		{Addr: "", AgeSec: 4294967295},
	}}
	got := roundTrip(t, in).(*Addr)
	if len(got.Addrs) != 3 || got.Addrs[0] != in.Addrs[0] || got.Addrs[1] != in.Addrs[1] || got.Addrs[2] != in.Addrs[2] {
		t.Fatalf("addrs corrupted: %v", got.Addrs)
	}
}

func TestValidateAddr(t *testing.T) {
	valid := []string{
		"1.2.3.4:8333", "[::1]:9000", "127.0.0.1:1", "10.0.0.1:65535",
		"example.com:8333", "a.b-c.d:80", "localhost:9000",
	}
	for _, s := range valid {
		if err := ValidateAddr(s); err != nil {
			t.Errorf("ValidateAddr(%q) = %v, want nil", s, err)
		}
	}
	invalid := []string{
		"",                   // empty
		"1.2.3.4",            // no port
		"1.2.3.4:",           // empty port
		"1.2.3.4:0",          // port zero
		"1.2.3.4:65536",      // port overflow
		"1.2.3.4:http",       // non-numeric port
		":8333",              // empty host
		"host_name:8333",     // underscore in label
		"-dash.example:8333", // label starts with hyphen
		"dash-.example:8333", // label ends with hyphen
		"a..b:8333",          // empty label
		"bad host:8333",      // space in host
		string(make([]byte, MaxAddrLen+1)) + ":1", // oversized
	}
	for _, s := range invalid {
		if err := ValidateAddr(s); err == nil {
			t.Errorf("ValidateAddr(%q) = nil, want error", s)
		} else if !errors.Is(err, ErrBadAddr) {
			t.Errorf("ValidateAddr(%q) = %v, want ErrBadAddr", s, err)
		}
	}
}

func TestChecksumRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // corrupt payload
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want checksum error", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Verack{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xff
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want bad magic", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	tooMany := make([]chain.Hash, MaxInvHashes+1)
	var buf bytes.Buffer
	if err := Write(&buf, &Inv{Hashes: tooMany}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("encode oversize inv: %v", err)
	}
	addrs := make([]NetAddr, MaxAddrs+1)
	if err := Write(&buf, &Addr{Addrs: addrs}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("encode oversize addr: %v", err)
	}
	long := &Version{ListenAddr: string(make([]byte, MaxAddrLen+1))}
	if err := Write(&buf, long); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("encode oversize listen addr: %v", err)
	}
}

func TestDeclaredOversizePayloadRejected(t *testing.T) {
	// A hand-built frame declaring a payload above MaxPayload must be
	// rejected before allocation.
	var frame bytes.Buffer
	frame.Write([]byte{0x49, 0x47, 0x52, 0x50}) // magic LE
	frame.WriteByte(byte(MsgPing))
	frame.Write([]byte{0xff, 0xff, 0xff, 0xff}) // length = 4 GiB
	frame.Write([]byte{0, 0, 0, 0})
	_, err := Read(&frame)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want too large", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Verack{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xEE // unknown type byte
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("got %v, want unknown type", err)
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Ping{Nonce: 5}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTrailingGarbageInPayloadRejected(t *testing.T) {
	// Manually craft a ping with 9-byte payload (one byte extra).
	payload := make([]byte, 9)
	var frame bytes.Buffer
	frame.Write([]byte{0x49, 0x47, 0x52, 0x50})
	frame.WriteByte(byte(MsgPing))
	frame.Write([]byte{9, 0, 0, 0})
	sum := checksumOf(payload)
	frame.Write(sum)
	frame.Write(payload)
	_, err := Read(&frame)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want malformed", err)
	}
}

func checksumOf(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	return sum[:4]
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgVersion: "version", MsgVerack: "verack", MsgPing: "ping",
		MsgPong: "pong", MsgInv: "inv", MsgGetData: "getdata",
		MsgBlock: "block", MsgAddr: "addr", MsgGetAddr: "getaddr",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatal("unknown type string wrong")
	}
}

// Property: every well-formed Version round-trips exactly.
func TestVersionRoundTripProperty(t *testing.T) {
	check := func(protocol uint32, nodeID, nonce uint64, addr string) bool {
		if len(addr) > MaxAddrLen {
			addr = addr[:MaxAddrLen]
		}
		in := &Version{Protocol: protocol, NodeID: nodeID, ListenAddr: addr, Nonce: nonce}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		v, ok := got.(*Version)
		return ok && *v == *in
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte streams never panic the reader; they error or
// decode cleanly.
func TestReaderNeverPanics(t *testing.T) {
	check := func(raw []byte) bool {
		r := bytes.NewReader(raw)
		for {
			_, err := Read(r)
			if err != nil {
				return true // any clean error is fine
			}
			if r.Len() == 0 {
				return true
			}
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{&Ping{Nonce: 1}, &Verack{}, &Inv{Hashes: []chain.Hash{{7}}}}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d: type %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
