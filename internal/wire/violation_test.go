package wire

import (
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
)

func TestViolationPoints(t *testing.T) {
	cases := []struct {
		err  error
		want float64
	}{
		{nil, 0},
		{ErrBadMagic, PointsFraming},
		{ErrChecksum, PointsFraming},
		{ErrMalformed, PointsMalformed},
		{ErrTooLarge, PointsMalformed},
		{ErrUnknownType, PointsMalformed},
		// Wrapped errors, as Read actually returns them.
		{fmt.Errorf("%w: payload 9 bytes", ErrTooLarge), PointsMalformed},
		{fmt.Errorf("%w: got 0xdeadbeef", ErrBadMagic), PointsFraming},
		// Transport failures are not offenses.
		{io.EOF, 0},
		{io.ErrUnexpectedEOF, 0},
		{os.ErrDeadlineExceeded, 0},
		{errors.New("connection reset by peer"), 0},
	}
	for _, c := range cases {
		if got := ViolationPoints(c.err); got != c.want {
			t.Errorf("ViolationPoints(%v) = %v, want %v", c.err, got, c.want)
		}
		if got := IsViolation(c.err); got != (c.want > 0) {
			t.Errorf("IsViolation(%v) = %v, want %v", c.err, got, c.want > 0)
		}
	}
}
