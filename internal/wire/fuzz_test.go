package wire

import (
	"bytes"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
)

// fuzzSeedMessages is one well-formed instance of every message type —
// the in-code half of the seed corpus (testdata/fuzz/FuzzDecode holds
// the committed framed bytes of the same set plus malformed variants).
func fuzzSeedMessages() []Message {
	genesis := chain.NewGenesis("fuzz-net")
	block := chain.NewBlock(genesis, [][]byte{[]byte("tx-1"), nil, []byte("tx-2")},
		time.Unix(1700000000, 0), 42)
	return []Message{
		&Version{Protocol: ProtocolVersion, NodeID: 0xDEADBEEF, ListenAddr: "127.0.0.1:9000", Nonce: 7},
		&Verack{},
		&Ping{Nonce: 1},
		&Pong{Nonce: 2},
		&Inv{Hashes: []chain.Hash{genesis.Header.Hash(), block.Header.Hash()}},
		&GetData{Hashes: []chain.Hash{block.Header.Hash()}},
		&Block{Block: block},
		&Addr{Addrs: []NetAddr{{Addr: "10.0.0.1:8333", AgeSec: 0}, {Addr: "[::1]:8334", AgeSec: 120}}},
		&GetAddr{},
	}
}

// frame encodes a message into its framed wire bytes.
func frame(tb testing.TB, m Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		tb.Fatalf("framing %v: %v", m.Type(), err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary byte streams to the frame reader: decoding
// must never panic, and every stream that decodes must survive an
// encode→decode round trip bit-for-bit (decode(encode(m)) == m at the
// wire level).
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		f.Add(frame(f, m))
	}
	// Malformed variants: short header, bad magic, truncated payload,
	// corrupted checksum.
	valid := frame(f, &Ping{Nonce: 99})
	f.Add(valid[:5])
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	f.Add(bad)
	f.Add(valid[:len(valid)-3])
	flip := append([]byte(nil), valid...)
	flip[len(flip)-1] ^= 0x01
	f.Add(flip)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected without panicking — fine
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("re-encoding decoded %v: %v", m.Type(), err)
		}
		m2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding encoded %v: %v", m.Type(), err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
		var buf2 bytes.Buffer
		if err := Write(&buf2, m2); err != nil {
			t.Fatalf("re-encoding %v: %v", m2.Type(), err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%v frame not stable across round trip:\n %x\n %x", m.Type(), buf.Bytes(), buf2.Bytes())
		}
	})
}

// FuzzDecodePayload drives the per-type payload decoders directly with
// arbitrary (type, payload) pairs — the surface a hostile peer controls
// after the frame header passes — asserting no panic and payload-level
// round-trip stability.
func FuzzDecodePayload(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		payload, err := m.encodePayload(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(byte(m.Type()), payload)
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(255), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		m, err := decodePayload(MsgType(typ), payload)
		if err != nil {
			return
		}
		enc, err := m.encodePayload(nil)
		if err != nil {
			t.Fatalf("re-encoding decoded %v: %v", m.Type(), err)
		}
		m2, err := decodePayload(m.Type(), enc)
		if err != nil {
			t.Fatalf("re-decoding %v payload: %v", m.Type(), err)
		}
		enc2, err := m2.encodePayload(nil)
		if err != nil {
			t.Fatalf("re-encoding %v: %v", m2.Type(), err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%v payload not stable across round trip:\n %x\n %x", m.Type(), enc, enc2)
		}
	})
}

// TestDecodeEncodeIdentity pins decode(encode(m)) == m at the frame
// level for one instance of every message type (the deterministic
// counterpart of the fuzz property).
func TestDecodeEncodeIdentity(t *testing.T) {
	for _, m := range fuzzSeedMessages() {
		framed := frame(t, m)
		got, err := Read(bytes.NewReader(framed))
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		if !bytes.Equal(frame(t, got), framed) {
			t.Errorf("%v: decode(encode(m)) differs from m", m.Type())
		}
	}
}
