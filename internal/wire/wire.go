// Package wire defines the binary message protocol spoken by live Perigee
// nodes: Bitcoin-flavored framing (magic, type, length, checksum) around a
// small message set — VERSION/VERACK handshake, PING/PONG liveness,
// INV/GETDATA/BLOCK relay, and ADDR/GETADDR peer discovery.
//
// All decoders are hardened against hostile input: payload sizes, item
// counts, and string lengths are bounded before any allocation.
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/perigee-net/perigee/internal/chain"
)

// Magic identifies the Perigee wire protocol in the frame header.
const Magic uint32 = 0x50524749 // "PRGI"

// ProtocolVersion is negotiated in the VERSION message.
const ProtocolVersion uint32 = 1

// MsgType identifies a message.
type MsgType uint8

// The protocol's message types.
const (
	MsgVersion MsgType = iota + 1
	MsgVerack
	MsgPing
	MsgPong
	MsgInv
	MsgGetData
	MsgBlock
	MsgAddr
	MsgGetAddr
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgVersion:
		return "version"
	case MsgVerack:
		return "verack"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgInv:
		return "inv"
	case MsgGetData:
		return "getdata"
	case MsgBlock:
		return "block"
	case MsgAddr:
		return "addr"
	case MsgGetAddr:
		return "getaddr"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Limits protecting decoders.
const (
	// MaxPayload bounds a frame's payload size.
	MaxPayload = chain.MaxBlockSize + 1024
	// MaxInvHashes bounds hashes per INV/GETDATA.
	MaxInvHashes = 1024
	// MaxAddrs bounds addresses per ADDR.
	MaxAddrs = 256
	// MaxAddrLen bounds a single address string.
	MaxAddrLen = 256
)

// Protocol errors.
var (
	// ErrBadMagic indicates a frame with the wrong network magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrChecksum indicates a frame whose payload checksum mismatched.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrTooLarge indicates a frame or element exceeding protocol limits.
	ErrTooLarge = errors.New("wire: message too large")
	// ErrMalformed indicates an undecodable payload.
	ErrMalformed = errors.New("wire: malformed payload")
	// ErrUnknownType indicates an unrecognized message type byte.
	ErrUnknownType = errors.New("wire: unknown message type")
)

// Message is any protocol message.
type Message interface {
	// Type returns the message's wire type.
	Type() MsgType
	// encodePayload appends the message payload.
	encodePayload(buf []byte) ([]byte, error)
}

// Version opens the handshake in both directions.
type Version struct {
	// Protocol is the sender's protocol version.
	Protocol uint32
	// NodeID is the sender's random identity (also used to detect
	// self-connections).
	NodeID uint64
	// ListenAddr is the sender's accepting address ("host:port"), empty if
	// not listening.
	ListenAddr string
	// Nonce is a per-connection random value.
	Nonce uint64
}

// Type implements Message.
func (*Version) Type() MsgType { return MsgVersion }

func (m *Version) encodePayload(buf []byte) ([]byte, error) {
	if len(m.ListenAddr) > MaxAddrLen {
		return nil, fmt.Errorf("%w: listen addr %d bytes", ErrTooLarge, len(m.ListenAddr))
	}
	buf = binary.LittleEndian.AppendUint32(buf, m.Protocol)
	buf = binary.LittleEndian.AppendUint64(buf, m.NodeID)
	buf = appendString(buf, m.ListenAddr)
	buf = binary.LittleEndian.AppendUint64(buf, m.Nonce)
	return buf, nil
}

// Verack acknowledges a Version.
type Verack struct{}

// Type implements Message.
func (*Verack) Type() MsgType { return MsgVerack }

func (*Verack) encodePayload(buf []byte) ([]byte, error) { return buf, nil }

// Ping probes liveness.
type Ping struct {
	// Nonce is echoed back in the Pong.
	Nonce uint64
}

// Type implements Message.
func (*Ping) Type() MsgType { return MsgPing }

func (m *Ping) encodePayload(buf []byte) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(buf, m.Nonce), nil
}

// Pong answers a Ping.
type Pong struct {
	// Nonce matches the corresponding Ping.
	Nonce uint64
}

// Type implements Message.
func (*Pong) Type() MsgType { return MsgPong }

func (m *Pong) encodePayload(buf []byte) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(buf, m.Nonce), nil
}

// Inv announces block availability by hash.
type Inv struct {
	// Hashes are the announced block hashes.
	Hashes []chain.Hash
}

// Type implements Message.
func (*Inv) Type() MsgType { return MsgInv }

func (m *Inv) encodePayload(buf []byte) ([]byte, error) { return appendHashes(buf, m.Hashes) }

// GetData requests blocks by hash.
type GetData struct {
	// Hashes are the requested block hashes.
	Hashes []chain.Hash
}

// Type implements Message.
func (*GetData) Type() MsgType { return MsgGetData }

func (m *GetData) encodePayload(buf []byte) ([]byte, error) { return appendHashes(buf, m.Hashes) }

// Block carries a full block.
type Block struct {
	// Block is the payload block.
	Block *chain.Block
}

// Type implements Message.
func (*Block) Type() MsgType { return MsgBlock }

func (m *Block) encodePayload(buf []byte) ([]byte, error) {
	if m.Block == nil {
		return nil, fmt.Errorf("%w: nil block", ErrMalformed)
	}
	enc, err := m.Block.Encode()
	if err != nil {
		return nil, err
	}
	return append(buf, enc...), nil
}

// Addr gossips known listening addresses with freshness metadata.
type Addr struct {
	// Addrs are the gossiped addresses with their claimed ages.
	Addrs []NetAddr
}

// Type implements Message.
func (*Addr) Type() MsgType { return MsgAddr }

func (m *Addr) encodePayload(buf []byte) ([]byte, error) {
	if len(m.Addrs) > MaxAddrs {
		return nil, fmt.Errorf("%w: %d addresses", ErrTooLarge, len(m.Addrs))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Addrs)))
	for _, a := range m.Addrs {
		if len(a.Addr) > MaxAddrLen {
			return nil, fmt.Errorf("%w: address %d bytes", ErrTooLarge, len(a.Addr))
		}
		buf = appendString(buf, a.Addr)
		buf = binary.LittleEndian.AppendUint32(buf, a.AgeSec)
	}
	return buf, nil
}

// GetAddr requests an Addr sample.
type GetAddr struct{}

// Type implements Message.
func (*GetAddr) Type() MsgType { return MsgGetAddr }

func (*GetAddr) encodePayload(buf []byte) ([]byte, error) { return buf, nil }

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendHashes(buf []byte, hashes []chain.Hash) ([]byte, error) {
	if len(hashes) > MaxInvHashes {
		return nil, fmt.Errorf("%w: %d hashes", ErrTooLarge, len(hashes))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hashes)))
	for i := range hashes {
		buf = append(buf, hashes[i][:]...)
	}
	return buf, nil
}

// Write frames and writes a message: magic(4) type(1) length(4)
// checksum(4) payload. The checksum is the first 4 bytes of the payload's
// SHA-256.
func Write(w io.Writer, m Message) error {
	payload, err := m.encodePayload(nil)
	if err != nil {
		return err
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(payload))
	}
	header := make([]byte, 0, 13)
	header = binary.LittleEndian.AppendUint32(header, Magic)
	header = append(header, byte(m.Type()))
	header = binary.LittleEndian.AppendUint32(header, uint32(len(payload)))
	sum := sha256.Sum256(payload)
	header = append(header, sum[:4]...)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("wire: writing header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire: writing payload: %w", err)
		}
	}
	return nil
}

// Read reads and decodes one framed message.
func Read(r io.Reader) (Message, error) {
	var header [13]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(header[0:4]); got != Magic {
		return nil, fmt.Errorf("%w: %08x", ErrBadMagic, got)
	}
	msgType := MsgType(header[4])
	length := binary.LittleEndian.Uint32(header[5:9])
	if length > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	if string(sum[:4]) != string(header[9:13]) {
		return nil, ErrChecksum
	}
	return decodePayload(msgType, payload)
}

func decodePayload(t MsgType, p []byte) (Message, error) {
	d := decoder{buf: p}
	var m Message
	switch t {
	case MsgVersion:
		v := &Version{}
		v.Protocol = d.uint32()
		v.NodeID = d.uint64()
		v.ListenAddr = d.str()
		v.Nonce = d.uint64()
		m = v
	case MsgVerack:
		m = &Verack{}
	case MsgPing:
		m = &Ping{Nonce: d.uint64()}
	case MsgPong:
		m = &Pong{Nonce: d.uint64()}
	case MsgInv:
		m = &Inv{Hashes: d.hashes()}
	case MsgGetData:
		m = &GetData{Hashes: d.hashes()}
	case MsgBlock:
		b, err := chain.DecodeBlock(p)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		d.buf = nil // block decoding consumes everything
		return &Block{Block: b}, nil
	case MsgAddr:
		a := &Addr{}
		count := d.uint32()
		if count > MaxAddrs {
			return nil, fmt.Errorf("%w: %d addresses", ErrTooLarge, count)
		}
		for i := uint32(0); i < count && d.err == nil; i++ {
			na := NetAddr{Addr: d.str()}
			na.AgeSec = d.uint32()
			a.Addrs = append(a.Addrs, na)
		}
		m = a
	case MsgGetAddr:
		m = &GetAddr{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in %v", ErrMalformed, len(d.buf), t)
	}
	return m, nil
}

// decoder is a cursor over a payload that records the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("%w: truncated field", ErrMalformed)
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.uint16())
	if d.err != nil {
		return ""
	}
	if n > MaxAddrLen {
		d.err = fmt.Errorf("%w: string of %d bytes", ErrTooLarge, n)
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) hashes() []chain.Hash {
	count := d.uint32()
	if d.err != nil {
		return nil
	}
	if count > MaxInvHashes {
		d.err = fmt.Errorf("%w: %d hashes", ErrTooLarge, count)
		return nil
	}
	out := make([]chain.Hash, 0, count)
	for i := uint32(0); i < count; i++ {
		b := d.take(32)
		if b == nil {
			return nil
		}
		var h chain.Hash
		copy(h[:], b)
		out = append(out, h)
	}
	return out
}
