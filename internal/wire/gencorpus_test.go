package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_GEN_CORPUS") == "" {
		t.Skip("corpus generator")
	}
	writeCorpus := func(dir, name, body string) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	decodeDir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	payloadDir := filepath.Join("testdata", "fuzz", "FuzzDecodePayload")
	for _, m := range fuzzSeedMessages() {
		framed := frame(t, m)
		writeCorpus(decodeDir, "seed-"+m.Type().String(),
			fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", framed))
		payload, err := m.encodePayload(nil)
		if err != nil {
			t.Fatal(err)
		}
		writeCorpus(payloadDir, "seed-"+m.Type().String(),
			fmt.Sprintf("go test fuzz v1\nbyte(%#02x)\n[]byte(%q)\n", byte(m.Type()), payload))
	}
	valid := frame(t, &Ping{Nonce: 99})
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	flip := append([]byte(nil), valid...)
	flip[len(flip)-1] ^= 0x01
	malformed := map[string][]byte{
		"seed-short-header":  valid[:5],
		"seed-bad-magic":     bad,
		"seed-truncated":     valid[:len(valid)-3],
		"seed-bad-checksum":  flip,
		"seed-empty":         {},
		"seed-unknown-type":  {0x49, 0x47, 0x52, 0x50, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0},
		"seed-declared-huge": {0x49, 0x47, 0x52, 0x50, 0x05, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0},
	}
	for name, data := range malformed {
		writeCorpus(decodeDir, name, fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
	}
}
