package adversary

import (
	"fmt"
	"time"
)

// Default parameters of the built-in strategies — one place to see how
// hostile each registry entry is out of the box.
const (
	// DefaultLieFactor is how much a latency liar shrinks its observed
	// offsets: the victim's scoring sees offsets at half their true value.
	DefaultLieFactor = 0.5
	// DefaultWithholdDelay is the built-in withholding/liar forwarding
	// delay — several times the typical inter-regional link latency, so a
	// withheld relay is distinctly worse than any honest neighbor.
	DefaultWithholdDelay = 300 * time.Millisecond
	// DefaultNeverFraction is the share of withholding relays that never
	// forward at all (the rest forward late).
	DefaultNeverFraction = 0.5
	// DefaultSybilDials is how many fresh victims each sybil dials per
	// round.
	DefaultSybilDials = 4
	// DefaultPartitionGroups is the number of groups a regional partition
	// splits the network into.
	DefaultPartitionGroups = 3
	// DefaultPartitionFactor is the inter-group latency inflation once a
	// partition activates.
	DefaultPartitionFactor = 4.0
)

// latencyLiar under-reports its delivery offsets (manipulated timestamps
// make it look fast) while actually withholding relays. Perigee's defense
// is that the lie is bounded: a liar whose true relaying is slow enough
// still scores worse than honest neighbors even after shrinking its
// offsets, so the subset rule evicts it — while the random baseline keeps
// paying the full withholding delay on every liar it happens to retain.
type latencyLiar struct {
	lieFactor float64
	withhold  time.Duration
}

// NewLatencyLiar builds the timestamp-manipulation strategy: compromised
// nodes delay every relay by withhold, and every victim's observed offset
// from a compromised neighbor is multiplied by lieFactor in [0, 1) before
// scoring (0 = the liar claims instant delivery for every block it did
// deliver; censored slots stay censored — a liar cannot fake a block the
// victim never received).
func NewLatencyLiar(lieFactor float64, withhold time.Duration) Strategy {
	return &latencyLiar{lieFactor: lieFactor, withhold: withhold}
}

func (s *latencyLiar) Name() string { return "latency-liar" }
func (s *latencyLiar) Brief() string {
	return "under-reports offsets to look fast, then withholds relays"
}

func (s *latencyLiar) Setup(env *Env, net *Network) (Agent, error) {
	if s.lieFactor < 0 || s.lieFactor >= 1 {
		return Agent{}, fmt.Errorf("adversary: latency-liar lie factor %v outside [0, 1)", s.lieFactor)
	}
	if s.withhold < 0 {
		return Agent{}, fmt.Errorf("adversary: latency-liar withhold delay %v must be non-negative", s.withhold)
	}
	for _, a := range env.Adversaries {
		net.RelayDelay[a] += s.withhold
	}
	lie := s.lieFactor
	return Agent{
		TamperObservations: func(_ int, neighbors []int, offsets [][]time.Duration) {
			for i, u := range neighbors {
				if u < 0 || u >= env.N || !env.IsAdversary[u] {
					continue
				}
				for _, row := range offsets {
					if row[i] != Censored {
						row[i] = time.Duration(float64(row[i]) * lie)
					}
				}
			}
		},
	}, nil
}

// withholdingRelay accepts blocks but forwards them late or never — the
// generalization of the free-rider Silent flag to graded withholding.
type withholdingRelay struct {
	delay     time.Duration
	neverFrac float64
}

// NewWithholdingRelay builds the withholding strategy: a neverFrac share
// of the compromised nodes (the first entries of the shuffled adversary
// set) never relay at all; the rest relay after an extra delay.
func NewWithholdingRelay(delay time.Duration, neverFrac float64) Strategy {
	return &withholdingRelay{delay: delay, neverFrac: neverFrac}
}

func (s *withholdingRelay) Name() string { return "withholding" }
func (s *withholdingRelay) Brief() string {
	return "accepts blocks, forwards late or never"
}

func (s *withholdingRelay) Setup(env *Env, net *Network) (Agent, error) {
	if s.delay < 0 {
		return Agent{}, fmt.Errorf("adversary: withholding delay %v must be non-negative", s.delay)
	}
	if s.neverFrac < 0 || s.neverFrac > 1 {
		return Agent{}, fmt.Errorf("adversary: withholding never-fraction %v outside [0, 1]", s.neverFrac)
	}
	never := int(s.neverFrac * float64(len(env.Adversaries)))
	for i, a := range env.Adversaries {
		if i < never {
			net.Silent[a] = true
		} else {
			net.RelayDelay[a] += s.delay
		}
	}
	return Agent{}, nil
}

// sybilFlood runs the compromised identities as useless connection sinks:
// they never relay, never run the neighbor-update protocol, and instead
// aggressively dial honest victims every round, eating the network's
// finite incoming capacity so honest exploration starves.
type sybilFlood struct {
	dialsPerRound int
}

// NewSybilFlood builds the connection-exhaustion strategy: each sybil
// establishes up to dialsPerRound fresh outgoing connections to random
// honest victims after every round, never releasing old ones.
func NewSybilFlood(dialsPerRound int) Strategy {
	return &sybilFlood{dialsPerRound: dialsPerRound}
}

func (s *sybilFlood) Name() string { return "sybil-flood" }
func (s *sybilFlood) Brief() string {
	return "silent identities flood victims' incoming slots every round"
}

func (s *sybilFlood) Setup(env *Env, net *Network) (Agent, error) {
	if s.dialsPerRound <= 0 {
		return Agent{}, fmt.Errorf("adversary: sybil dials per round %d must be positive", s.dialsPerRound)
	}
	for _, a := range env.Adversaries {
		net.Silent[a] = true
		net.Frozen[a] = true
	}
	dials := s.dialsPerRound
	return Agent{
		AfterRound: func(ctl Control, _ int) error {
			// Attempts are bounded: once the honest population's inboxes
			// are saturated, a sybil stops burning draws.
			for _, a := range env.Adversaries {
				added, attempts := 0, 0
				for added < dials && attempts < 4*dials+16 {
					attempts++
					v := env.Rand.IntN(env.N)
					if v == a || env.IsAdversary[v] || ctl.HasOut(a, v) {
						continue
					}
					if err := ctl.Connect(a, v); err != nil {
						continue // inbox full — try another victim
					}
					added++
				}
			}
			return nil
		},
	}, nil
}

// eclipseBias generalizes the historical hard-coded eclipse experiment:
// compromised nodes validate instantly, so Perigee's scoring legitimately
// over-represents them in honest neighborhoods (§6's capture concern).
// With attackRound > 0 the strategy is a sleeper: at that round the
// captured positions stop relaying entirely, converting earned trust into
// withholding.
type eclipseBias struct {
	attackRound int
}

// NewEclipseBias builds the neighborhood-capture strategy. attackRound 0
// means the adversaries stay "honestly fast" for the whole run — exactly
// the historical eclipse scenario; attackRound r > 0 flips them silent
// after round r completes.
func NewEclipseBias(attackRound int) Strategy {
	return &eclipseBias{attackRound: attackRound}
}

func (s *eclipseBias) Name() string { return "eclipse-bias" }
func (s *eclipseBias) Brief() string {
	return "instant validation earns neighborhood capture; optionally turns withholding"
}

func (s *eclipseBias) Setup(env *Env, net *Network) (Agent, error) {
	if s.attackRound < 0 {
		return Agent{}, fmt.Errorf("adversary: eclipse-bias attack round %d must be non-negative", s.attackRound)
	}
	for _, a := range env.Adversaries {
		net.Forward[a] = 0
	}
	if s.attackRound == 0 {
		return Agent{}, nil
	}
	at := s.attackRound
	return Agent{
		AfterRound: func(_ Control, round int) error {
			if round == at {
				for _, a := range env.Adversaries {
					net.Silent[a] = true
				}
			}
			return nil
		},
	}, nil
}

// regionalPartition is an infrastructure-level adversary (it controls no
// nodes): mid-run it inflates the latency of every link crossing a group
// boundary, modeling a regional backbone degradation or cut. Perigee
// re-learns around the damage; static topologies cannot.
type regionalPartition struct {
	groups        int
	activateRound int
	factor        float64
}

// NewRegionalPartition builds the partition strategy: nodes are split
// into `groups` contiguous index groups, and after round activateRound
// completes every inter-group link delay is multiplied by factor (> 1
// inflates; large values effectively sever).
func NewRegionalPartition(groups, activateRound int, factor float64) Strategy {
	return &regionalPartition{groups: groups, activateRound: activateRound, factor: factor}
}

func (s *regionalPartition) Name() string { return "partition" }
func (s *regionalPartition) Brief() string {
	return "inflates inter-region link latencies mid-run"
}

func (s *regionalPartition) Setup(env *Env, net *Network) (Agent, error) {
	if s.groups < 2 {
		return Agent{}, fmt.Errorf("adversary: partition needs at least 2 groups, got %d", s.groups)
	}
	if s.activateRound <= 0 {
		return Agent{}, fmt.Errorf("adversary: partition activation round %d must be positive", s.activateRound)
	}
	if s.factor < 1 {
		return Agent{}, fmt.Errorf("adversary: partition factor %v must be at least 1", s.factor)
	}
	if net.Latency == nil {
		return Agent{}, fmt.Errorf("adversary: partition needs a driver with tamperable latency")
	}
	groups, factor, n, lat := s.groups, s.factor, env.N, net.Latency
	group := func(v int) int { return v * groups / n }
	at := s.activateRound
	return Agent{
		AfterRound: func(ctl Control, round int) error {
			if round != at {
				return nil
			}
			lat.SetTransform(func(u, v int, d time.Duration) time.Duration {
				if group(u) != group(v) {
					return time.Duration(float64(d) * factor)
				}
				return d
			})
			ctl.InvalidateNetwork()
			return nil
		},
	}, nil
}

// Builtins returns one default-parameter instance of every built-in
// strategy, in registry order. The experiment registry runs each as an
// "adversary-<name>" scenario (with run-length-aware parameters where a
// strategy needs them).
func Builtins() []Strategy {
	return []Strategy{
		NewLatencyLiar(DefaultLieFactor, DefaultWithholdDelay),
		NewWithholdingRelay(DefaultWithholdDelay, DefaultNeverFraction),
		NewSybilFlood(DefaultSybilDials),
		NewEclipseBias(0),
		NewRegionalPartition(DefaultPartitionGroups, 1, DefaultPartitionFactor),
	}
}
