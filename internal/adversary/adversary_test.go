package adversary

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

func testBind(t *testing.T, s Strategy, n int, adversaries []int) *Binding {
	t.Helper()
	b, err := Bind(s, n, adversaries,
		latency.Constant{Nodes: n, D: 10 * time.Millisecond},
		make([]time.Duration, n), rng.New(7).Derive("strategy"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSample(t *testing.T) {
	r := rng.New(1)
	advs, err := Sample(100, 0.15, r.Derive("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 15 {
		t.Fatalf("got %d adversaries, want 15", len(advs))
	}
	seen := make(map[int]bool)
	for _, a := range advs {
		if a < 0 || a >= 100 || seen[a] {
			t.Fatalf("bad adversary set: %v", advs)
		}
		seen[a] = true
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := Sample(100, bad, r.Derive("b")); err == nil {
			t.Errorf("fraction %v accepted", bad)
		}
	}
}

func TestBindValidation(t *testing.T) {
	lat := latency.Constant{Nodes: 10, D: time.Millisecond}
	fwd := make([]time.Duration, 10)
	r := rng.New(1)
	cases := []struct {
		name string
		run  func() (*Binding, error)
	}{
		{"nil strategy", func() (*Binding, error) { return Bind(nil, 10, nil, lat, fwd, r) }},
		{"out of range", func() (*Binding, error) { return Bind(NewEclipseBias(0), 10, []int{10}, lat, fwd, r) }},
		{"duplicate", func() (*Binding, error) { return Bind(NewEclipseBias(0), 10, []int{3, 3}, lat, fwd, r) }},
		{"short forward", func() (*Binding, error) {
			return Bind(NewEclipseBias(0), 10, nil, lat, fwd[:5], r)
		}},
		{"nil rng", func() (*Binding, error) { return Bind(NewEclipseBias(0), 10, nil, lat, fwd, nil) }},
	}
	for _, tc := range cases {
		if _, err := tc.run(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestBindCopiesForward(t *testing.T) {
	fwd := []time.Duration{time.Second, time.Second, time.Second, time.Second}
	b, err := Bind(NewEclipseBias(0), 4, []int{2}, latency.Constant{Nodes: 4, D: time.Millisecond}, fwd, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Net.Forward[2] != 0 {
		t.Errorf("eclipse-bias did not zero the adversary's validation delay: %v", b.Net.Forward[2])
	}
	if fwd[2] != time.Second {
		t.Error("Bind mutated the caller's forward table")
	}
}

func TestStrategyParameterValidation(t *testing.T) {
	bad := []Strategy{
		NewLatencyLiar(1.0, 0),
		NewLatencyLiar(-0.1, 0),
		NewLatencyLiar(0.5, -time.Second),
		NewWithholdingRelay(-time.Second, 0.5),
		NewWithholdingRelay(time.Second, 1.5),
		NewSybilFlood(0),
		NewEclipseBias(-1),
		NewRegionalPartition(1, 1, 2),
		NewRegionalPartition(2, 0, 2),
		NewRegionalPartition(2, 1, 0.5),
	}
	for _, s := range bad {
		if _, err := Bind(s, 10, []int{1}, latency.Constant{Nodes: 10, D: time.Millisecond},
			make([]time.Duration, 10), rng.New(1)); err == nil {
			t.Errorf("%s accepted invalid parameters", s.Name())
		}
	}
}

func TestWithholdingRelaySplitsRoles(t *testing.T) {
	b := testBind(t, NewWithholdingRelay(200*time.Millisecond, 0.5), 20, []int{4, 9, 13, 17})
	silent, delayed := 0, 0
	for _, a := range b.Env.Adversaries {
		switch {
		case b.Net.Silent[a]:
			silent++
		case b.Net.RelayDelay[a] == 200*time.Millisecond:
			delayed++
		default:
			t.Errorf("adversary %d has neither role", a)
		}
	}
	if silent != 2 || delayed != 2 {
		t.Errorf("got %d silent / %d delayed, want 2/2", silent, delayed)
	}
}

func TestLatencyLiarTampersOnlyAdversaryColumns(t *testing.T) {
	b := testBind(t, NewLatencyLiar(0.5, 100*time.Millisecond), 10, []int{3})
	if b.Agent.TamperObservations == nil {
		t.Fatal("latency liar returned no tamper hook")
	}
	if b.Net.RelayDelay[3] != 100*time.Millisecond {
		t.Errorf("liar withhold delay not installed: %v", b.Net.RelayDelay[3])
	}
	neighbors := []int{2, 3, 7}
	offsets := [][]time.Duration{
		{10 * time.Millisecond, 40 * time.Millisecond, Censored},
		{20 * time.Millisecond, Censored, 8 * time.Millisecond},
	}
	b.Agent.TamperObservations(0, neighbors, offsets)
	want := [][]time.Duration{
		{10 * time.Millisecond, 20 * time.Millisecond, Censored},
		{20 * time.Millisecond, Censored, 8 * time.Millisecond},
	}
	for bi := range want {
		for i := range want[bi] {
			if offsets[bi][i] != want[bi][i] {
				t.Errorf("offsets[%d][%d] = %v, want %v", bi, i, offsets[bi][i], want[bi][i])
			}
		}
	}
}

func TestMutableLatencyTransform(t *testing.T) {
	m := NewMutableLatency(latency.Constant{Nodes: 4, D: 10 * time.Millisecond})
	if m.N() != 4 {
		t.Fatalf("N = %d", m.N())
	}
	if d := m.Delay(0, 1); d != 10*time.Millisecond {
		t.Fatalf("passthrough delay %v", d)
	}
	m.SetTransform(func(u, v int, d time.Duration) time.Duration {
		if u == 0 || v == 0 {
			return 3 * d
		}
		return d
	})
	if d := m.Delay(0, 1); d != 30*time.Millisecond {
		t.Errorf("transformed delay %v, want 30ms", d)
	}
	if d := m.Delay(1, 2); d != 10*time.Millisecond {
		t.Errorf("untouched delay %v, want 10ms", d)
	}
	m.SetTransform(nil)
	if d := m.Delay(0, 1); d != 10*time.Millisecond {
		t.Errorf("cleared transform still active: %v", d)
	}
}

// testEngine builds a small Subset engine with the binding applied.
func testEngine(t *testing.T, n int, b *Binding) *core.Engine {
	t.Helper()
	tbl, err := topology.Random(n, 4, 10, rng.New(5).Derive("tbl"))
	if err != nil {
		t.Fatal(err)
	}
	power, err := hashpower.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams(core.Subset)
	params.OutDegree = 4
	params.RoundBlocks = 10
	cfg := core.Config{
		Method:  core.Subset,
		Params:  params,
		Table:   tbl,
		Latency: latency.Constant{Nodes: n, D: 10 * time.Millisecond},
		Forward: make([]time.Duration, n),
		Power:   power,
		Rand:    rng.New(5).Derive("engine"),
	}
	b.Apply(&cfg)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestSybilFloodGrowsAdversaryEdges(t *testing.T) {
	const n = 40
	advs := []int{1, 5, 9}
	b := testBind(t, NewSybilFlood(3), n, advs)
	for _, a := range advs {
		if !b.Net.Silent[a] || !b.Net.Frozen[a] {
			t.Fatalf("sybil %d not silent+frozen", a)
		}
	}
	engine := testEngine(t, n, b)
	before := 0
	seeded := make(map[[2]int]bool)
	for _, a := range advs {
		before += engine.Table().OutDegree(a)
		for _, u := range engine.Table().OutNeighbors(a) {
			seeded[[2]int{a, u}] = true
		}
	}
	if _, err := engine.Run(3); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, a := range advs {
		after += engine.Table().OutDegree(a)
		for _, u := range engine.Table().OutNeighbors(a) {
			// Seed-topology edges persist (sybils are frozen); every edge
			// the flood added must target an honest victim.
			if !seeded[[2]int{a, u}] && b.Env.IsAdversary[u] {
				t.Errorf("sybil %d dialed fellow sybil %d", a, u)
			}
		}
	}
	// 3 sybils x 3 dials x 3 rounds on an uncontended 40-node network.
	if after < before+9*3-3 {
		t.Errorf("sybil out-degree grew %d -> %d; flooding too weak", before, after)
	}
}

func TestRegionalPartitionInflatesMidRun(t *testing.T) {
	const n = 30
	b := testBind(t, NewRegionalPartition(2, 2, 5), n, nil)
	if b.Agent.AfterRound == nil {
		t.Fatal("partition returned no per-round action")
	}
	engine := testEngine(t, n, b)
	lat := b.Net.Latency
	if d := lat.Delay(0, n-1); d != 10*time.Millisecond {
		t.Fatalf("pre-activation cross-group delay %v", d)
	}
	if _, err := engine.Run(3); err != nil {
		t.Fatal(err)
	}
	if d := lat.Delay(0, n-1); d != 50*time.Millisecond {
		t.Errorf("post-activation cross-group delay %v, want 50ms", d)
	}
	if d := lat.Delay(0, 1); d != 10*time.Millisecond {
		t.Errorf("intra-group delay changed: %v", d)
	}
	// The engine's cached simulator was invalidated: λ evaluation after
	// the partition reflects the inflated cross-group links even if the
	// topology itself did not change this round.
	delays, err := engine.Delays(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range delays {
		if d >= 20*time.Millisecond {
			return // at least one source pays an inflated path
		}
	}
	t.Error("no source's λ reflects the partition")
}

func TestEclipseBiasSleeperFlipsSilent(t *testing.T) {
	const n = 30
	advs := []int{2, 11}
	b := testBind(t, NewEclipseBias(2), n, advs)
	engine := testEngine(t, n, b)
	if _, err := engine.Run(1); err != nil {
		t.Fatal(err)
	}
	for _, a := range advs {
		if b.Net.Silent[a] {
			t.Fatalf("sleeper activated early")
		}
	}
	if _, err := engine.Run(1); err != nil {
		t.Fatal(err)
	}
	for _, a := range advs {
		if !b.Net.Silent[a] {
			t.Errorf("sleeper %d not silent after attack round", a)
		}
	}
}

func TestBuiltinsAreDistinctAndNamed(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Builtins() {
		if s.Name() == "" || s.Brief() == "" {
			t.Errorf("strategy %T lacks name or brief", s)
		}
		if seen[s.Name()] {
			t.Errorf("duplicate strategy name %q", s.Name())
		}
		seen[s.Name()] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d built-in strategies", len(seen))
	}
}

func TestEngineControlSurface(t *testing.T) {
	b := testBind(t, NewEclipseBias(0), 20, nil)
	engine := testEngine(t, 20, b)
	ctl := EngineControl(engine)
	if ctl.N() != 20 {
		t.Fatalf("N = %d", ctl.N())
	}
	outs := ctl.OutNeighbors(0)
	if len(outs) != ctl.OutDegree(0) || len(outs) == 0 {
		t.Fatalf("out-degree mismatch: %v vs %d", outs, ctl.OutDegree(0))
	}
	if !ctl.HasOut(0, outs[0]) {
		t.Error("HasOut denies an existing edge")
	}
	if err := ctl.Disconnect(0, outs[0]); err != nil {
		t.Fatal(err)
	}
	if ctl.HasOut(0, outs[0]) {
		t.Error("edge survived Disconnect")
	}
	if err := ctl.Connect(0, outs[0]); err != nil {
		t.Fatal(err)
	}
	if !ctl.HasOut(0, outs[0]) {
		t.Error("edge missing after Connect")
	}
}
