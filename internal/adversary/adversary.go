// Package adversary is Perigee's pluggable attack framework: a small
// Strategy interface that expresses how an adversary behaves, plus the
// built-in strategies the robustness scenarios run (§6 of the paper
// discusses the attack surface; the IOTA auto-peering and OverChain
// studies motivate treating it as a first-class design axis).
//
// A Strategy binds to one run through Setup, which receives two things:
//
//   - Env — the immutable facts of the run: network size, which node
//     indices the adversary controls, and a private deterministic random
//     stream;
//   - Network — the mutable behavior tables of those nodes: validation
//     delay (Forward), free-riding (Silent), withholding (RelayDelay),
//     protocol deviation (Frozen), and — when the driver supports it — a
//     MutableLatency handle for tampering with link delays mid-run.
//
// Setup rewrites the tables it cares about and returns an Agent: the
// run's live hooks. Agent.TamperObservations models manipulated
// measurements (a neighbor lying about when it delivered a block), and
// Agent.AfterRound applies per-round topology pressure through a Control
// handle (aggressive dialing, severing links, flipping behavior between
// rounds). A purely behavioral strategy returns the zero Agent.
//
// The same Strategy value runs unmodified in the simulation engine
// (perigee.WithAdversary), the experiment harness (the adversary-*
// scenarios), and — for its behavioral hooks — a live TCP node
// (node.WithAdversary, which runs the node as one compromised identity).
//
// # Writing a custom strategy
//
// A strategy is ~20 lines. This one delays a random half of the
// compromised nodes and re-dials one fresh victim per adversary per
// round:
//
//	type flaky struct{}
//
//	func (flaky) Name() string  { return "flaky" }
//	func (flaky) Brief() string { return "half withhold; all rotate one victim per round" }
//
//	func (flaky) Setup(env *adversary.Env, net *adversary.Network) (adversary.Agent, error) {
//	    for _, a := range env.Adversaries {
//	        if env.Rand.Float64() < 0.5 {
//	            net.RelayDelay[a] += 200 * time.Millisecond
//	        }
//	    }
//	    return adversary.Agent{
//	        AfterRound: func(ctl adversary.Control, round int) error {
//	            for _, a := range env.Adversaries {
//	                v := env.Rand.IntN(env.N)
//	                if v != a && !env.IsAdversary[v] && !ctl.HasOut(a, v) {
//	                    _ = ctl.Connect(a, v) // full inbox: just try elsewhere next round
//	                }
//	            }
//	            return nil
//	        },
//	    }, nil
//	}
//
// All hook signatures use only basic types, so custom strategies can be
// written against the public aliases (perigee.Adversary, AdversaryEnv,
// AdversaryNetwork, AdversaryAgent, AdversaryControl) without importing
// internal packages.
package adversary

import (
	"fmt"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
)

// Censored marks an observation slot for a block a neighbor never
// delivered inside the window. TamperObservations hooks must treat it as
// "no delivery happened", not as a very large offset.
const Censored = stats.InfDuration

// Env is the immutable context of one adversarial run.
type Env struct {
	// N is the network size.
	N int
	// Adversaries lists the node indices under adversary control, in the
	// (random) order the driver sampled them. Strategies that split the
	// compromised set into sub-roles may rely on this order being an
	// unbiased shuffle.
	Adversaries []int
	// IsAdversary is the membership mask over all N nodes.
	IsAdversary []bool
	// Rand is the strategy's private deterministic stream, derived from
	// the run seed. Strategies must draw randomness from it — and only it
	// — so adversarial runs reproduce bit-for-bit.
	Rand *rng.RNG
}

// Network is the mutable behavior surface of one run. Setup rewrites the
// entries of the nodes the strategy controls; the driver feeds the same
// backing slices to the engine, which reads them live each broadcast, so
// an Agent may keep mutating them between rounds (e.g. a sleeper attack
// turning Silent on at round r).
type Network struct {
	// Forward is the per-node validation delay Δ_v. Zeroing an adversary's
	// entry models instant validation (the eclipse-bias attack).
	Forward []time.Duration
	// Silent marks nodes that receive blocks but never relay them.
	Silent []bool
	// RelayDelay is a per-node withholding delay added on top of Forward
	// before relaying a received block.
	RelayDelay []time.Duration
	// Frozen marks nodes that do not run the neighbor-update protocol;
	// strategies that drive their compromised nodes' topology themselves
	// (via Agent.AfterRound) should freeze them.
	Frozen []bool
	// Latency, when non-nil, is the run's tamperable latency model.
	// Strategies that need it must error from Setup when it is nil (a
	// driver that cannot re-derive link delays mid-run).
	Latency *MutableLatency
}

// Agent is one run's live adversary: the optional hooks that fire while
// the protocol runs. The zero Agent is valid and means the strategy is
// purely behavioral (fully configured by Setup).
type Agent struct {
	// TamperObservations, if non-nil, rewrites the offsets one node is
	// about to feed its neighbor selector: Offsets[b][i] is block b's
	// arrival offset from neighbors[i], Censored marking a block that
	// neighbor never delivered. It is called once per node per round,
	// in ascending node order, between measurement and decision.
	TamperObservations func(node int, neighbors []int, offsets [][]time.Duration)
	// AfterRound, if non-nil, runs after every completed round with a
	// Control handle for topology pressure. Returning an error aborts the
	// run.
	AfterRound func(ctl Control, round int) error
}

// Control is the mutation surface handed to Agent.AfterRound — the
// operations an adversary with per-round agency can perform against the
// evolving connection table.
type Control interface {
	// N returns the network size.
	N() int
	// OutDegree returns v's current number of outgoing connections.
	OutDegree(v int) int
	// OutNeighbors returns v's current outgoing neighbor set.
	OutNeighbors(v int) []int
	// HasOut reports whether the directed edge v→u exists.
	HasOut(v, u int) bool
	// Connect establishes the directed edge v→u; it fails when u's
	// incoming capacity is exhausted or the edge already exists.
	Connect(v, u int) error
	// Disconnect removes the directed edge v→u.
	Disconnect(v, u int) error
	// InvalidateNetwork forces the driver to rebuild its cached per-edge
	// state. Strategies must call it after changing the latency model
	// (per-node behavior tables are read live and do not need it).
	InvalidateNetwork()
}

// Strategy is one adversary: an identifier, a one-line description, and
// the per-run binding. Strategies must be reusable — Setup is called once
// per run, and all run state must live in the returned Agent's closures,
// never on the Strategy itself.
type Strategy interface {
	// Name is the stable identifier ("latency-liar", "sybil-flood", ...).
	Name() string
	// Brief is a one-line description shown by listings.
	Brief() string
	// Setup binds the strategy to one run: it may rewrite the behavior
	// tables in net and returns the run's Agent (the zero Agent for purely
	// behavioral strategies). Invalid strategy parameters are reported
	// here, surfacing when the driver is built.
	Setup(env *Env, net *Network) (Agent, error)
}

// LatencyModel is the minimal link-delay surface the framework needs —
// satisfied by both internal latency models and public perigee
// implementations.
type LatencyModel interface {
	// Delay returns the one-way latency between nodes u and v.
	Delay(u, v int) time.Duration
	// N returns the number of nodes the model covers.
	N() int
}

// MutableLatency wraps a base latency model with a swappable transform,
// letting a strategy sever or inflate links mid-run. With no transform
// installed it is a passthrough. It is safe for concurrent readers; the
// transform is swapped between rounds (from Agent.AfterRound), never
// during a broadcast.
type MutableLatency struct {
	base LatencyModel

	mu        sync.RWMutex
	transform func(u, v int, d time.Duration) time.Duration
}

// NewMutableLatency wraps base with no transform installed.
func NewMutableLatency(base LatencyModel) *MutableLatency {
	return &MutableLatency{base: base}
}

// Delay returns the (possibly transformed) one-way latency of (u, v).
func (m *MutableLatency) Delay(u, v int) time.Duration {
	d := m.base.Delay(u, v)
	m.mu.RLock()
	t := m.transform
	m.mu.RUnlock()
	if t != nil {
		d = t(u, v, d)
	}
	return d
}

// N returns the coverage of the base model.
func (m *MutableLatency) N() int { return m.base.N() }

// SetTransform installs (or, with nil, removes) the delay transform. The
// transform must be symmetric in (u, v) and return non-negative delays,
// preserving the latency-model contract. Callers must follow up with
// Control.InvalidateNetwork so drivers re-derive cached per-edge delays.
func (m *MutableLatency) SetTransform(t func(u, v int, d time.Duration) time.Duration) {
	m.mu.Lock()
	m.transform = t
	m.mu.Unlock()
}

// Sample draws the adversary node set for a network of n nodes: a uniform
// random fraction-share of the population (truncating, matching the
// historical eclipse experiment), in shuffled order.
func Sample(n int, fraction float64, r *rng.RNG) ([]int, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("adversary: fraction %v outside [0, 1)", fraction)
	}
	k := int(fraction * float64(n))
	return r.Perm(n)[:k], nil
}
