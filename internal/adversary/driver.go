package adversary

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/rng"
)

// Binding is one run's bound adversary: the environment, the behavior
// tables (already rewritten by the strategy's Setup), and the live agent.
// Drivers feed the tables and hooks into their engine configuration; the
// backing slices are shared between Binding and engine on purpose, so an
// agent mutating them between rounds changes live behavior.
type Binding struct {
	// Env is the run's adversary environment.
	Env *Env
	// Net holds the behavior tables the engine must run with.
	Net *Network
	// Agent holds the run's live hooks (possibly zero).
	Agent Agent
}

// Bind prepares a strategy for one engine run: it validates the adversary
// set, copies the honest behavior tables (so one trial's arms never see
// each other's mutations), wraps the latency model in a MutableLatency,
// and runs the strategy's Setup. forward is the honest per-node
// validation delay table; it is copied, never mutated.
func Bind(s Strategy, n int, adversaries []int, lat LatencyModel, forward []time.Duration, r *rng.RNG) (*Binding, error) {
	if s == nil {
		return nil, fmt.Errorf("adversary: nil strategy")
	}
	if n <= 0 {
		return nil, fmt.Errorf("adversary: network size %d must be positive", n)
	}
	if len(forward) != n {
		return nil, fmt.Errorf("adversary: forward delays cover %d nodes, want %d", len(forward), n)
	}
	if lat == nil {
		return nil, fmt.Errorf("adversary: nil latency model")
	}
	if r == nil {
		return nil, fmt.Errorf("adversary: nil rng")
	}
	isAdv := make([]bool, n)
	for _, a := range adversaries {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("adversary: node %d out of range (n=%d)", a, n)
		}
		if isAdv[a] {
			return nil, fmt.Errorf("adversary: node %d listed twice", a)
		}
		isAdv[a] = true
	}
	env := &Env{
		N:           n,
		Adversaries: append([]int(nil), adversaries...),
		IsAdversary: isAdv,
		Rand:        r,
	}
	net := &Network{
		Forward:    append([]time.Duration(nil), forward...),
		Silent:     make([]bool, n),
		RelayDelay: make([]time.Duration, n),
		Frozen:     make([]bool, n),
		Latency:    NewMutableLatency(lat),
	}
	agent, err := s.Setup(env, net)
	if err != nil {
		return nil, err
	}
	return &Binding{Env: env, Net: net, Agent: agent}, nil
}

// Apply writes the binding into an engine configuration: behavior tables,
// the (wrapped) latency model, the observation-tamper hook, and the
// per-round agent chained after any dynamics already configured.
func (b *Binding) Apply(cfg *core.Config) {
	cfg.Latency = b.Net.Latency
	cfg.Forward = b.Net.Forward
	cfg.Silent = b.Net.Silent
	cfg.RelayDelay = b.Net.RelayDelay
	cfg.Frozen = b.Net.Frozen
	cfg.Tamper = b.Agent.TamperObservations
	if b.Agent.AfterRound != nil {
		prior := cfg.Dynamics
		after := b.Agent.AfterRound
		cfg.Dynamics = core.DynamicsFunc(func(e *core.Engine, round int) error {
			if prior != nil {
				if err := prior.AfterRound(e, round); err != nil {
					return err
				}
			}
			// The adversary acts last each round, after honest dynamics
			// (churn, joins) have settled.
			return after(EngineControl(e), round)
		})
	}
}

// engineControl adapts a core.Engine to the Control surface.
type engineControl struct {
	e *core.Engine
}

// EngineControl wraps an engine as the Control handed to agents.
func EngineControl(e *core.Engine) Control { return engineControl{e: e} }

func (c engineControl) N() int                   { return c.e.N() }
func (c engineControl) OutDegree(v int) int      { return c.e.Table().OutDegree(v) }
func (c engineControl) OutNeighbors(v int) []int { return c.e.Table().OutNeighbors(v) }
func (c engineControl) HasOut(v, u int) bool     { return c.e.Table().HasOut(v, u) }
func (c engineControl) Connect(v, u int) error   { return c.e.Table().Connect(v, u) }
func (c engineControl) Disconnect(v, u int) error {
	return c.e.Table().Disconnect(v, u)
}
func (c engineControl) InvalidateNetwork() { c.e.InvalidateNetworkCache() }
