package faults

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestPlanDeterminism: the same seed yields bit-for-bit identical verdict
// streams, independent of consultation order; different seeds diverge.
func TestPlanDeterminism(t *testing.T) {
	a, b := Mixed(7, 0.3), Mixed(7, 0.3)
	other := Mixed(8, 0.3)
	diverged := false
	// Consult b in reverse order to prove statelessness.
	type key struct {
		node, remote uint64
		attempt      int
	}
	var keys []key
	for node := uint64(1); node <= 6; node++ {
		for remote := uint64(1); remote <= 6; remote++ {
			for attempt := 0; attempt < 4; attempt++ {
				keys = append(keys, key{node, remote, attempt})
			}
		}
	}
	got := make(map[key]Verdict, len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		got[k] = b.Conn(k.node, k.remote, k.attempt)
	}
	for _, k := range keys {
		va := a.Conn(k.node, k.remote, k.attempt)
		if va != got[k] {
			t.Fatalf("verdict mismatch at %+v: %v vs %v", k, va, got[k])
		}
		if va != other.Conn(k.node, k.remote, k.attempt) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds issued identical verdict streams")
	}
}

// TestPlanFractions: the fault rate tracks the configured fraction and
// every kind appears in a large enough sample.
func TestPlanFractions(t *testing.T) {
	plan := Mixed(3, 0.25)
	faulted := 0
	kinds := map[Kind]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		v := plan.Conn(uint64(i+1), uint64(2*i+3), 0)
		if v.Faulty() {
			faulted++
			kinds[v.Kind]++
		}
	}
	frac := float64(faulted) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("fault rate %.3f, want ~0.25", frac)
	}
	for _, k := range []Kind{Reset, Stall, SlowReader, Drop} {
		if kinds[k] == 0 {
			t.Fatalf("kind %v never drawn in %d faulted connections", k, faulted)
		}
	}
	dials := 0
	for i := 0; i < n; i++ {
		if plan.Dial(uint64(i+1), "127.0.0.1:9999", 0).Kind == DialFail {
			dials++
		}
	}
	if dfrac := float64(dials) / n; dfrac < 0.18 || dfrac > 0.32 {
		t.Fatalf("dial failure rate %.3f, want ~0.25", dfrac)
	}
}

// TestDialFailuresPlanLeavesConnsAlone: the dial-only plan never faults
// established connections.
func TestDialFailuresPlanLeavesConnsAlone(t *testing.T) {
	plan := DialFailures(5, 1)
	if v := plan.Dial(1, "x:1", 0); v.Kind != DialFail {
		t.Fatalf("dial verdict %v, want dial-fail at fraction 1", v)
	}
	for i := 0; i < 50; i++ {
		if v := plan.Conn(1, uint64(i+2), 0); v.Faulty() {
			t.Fatalf("dial-only plan faulted a connection: %v", v)
		}
	}
}

// pipeConns returns a connected in-memory pair.
func pipeConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestWrapReset: after After operations the connection errors out.
func TestWrapReset(t *testing.T) {
	a, b := pipeConns(t)
	w := Wrap(a, Verdict{Kind: Reset, After: 2})
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := w.Write([]byte("y")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if _, err := w.Write([]byte("z")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write 3 err = %v, want injected reset", err)
	}
	// The underlying connection is closed, not leaked.
	if _, err := w.Write([]byte("w")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

// TestWrapStallHonorsReadDeadline: a stalled read must return a deadline
// error when SetReadDeadline has been applied — this is what lets the
// node's idle-timeout machinery detect a hung peer.
func TestWrapStallHonorsReadDeadline(t *testing.T) {
	a, _ := pipeConns(t)
	w := Wrap(a, Verdict{Kind: Stall, After: 0})
	// Stalled writes succeed silently.
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("stalled write errored: %v", err)
	}
	if err := w.SetReadDeadline(time.Now().Add(80 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := w.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("stalled read returned after %v, want ~80ms", elapsed)
	}
}

// TestWrapStallUnblocksOnClose: without a deadline, a stalled read ends
// when the connection is closed.
func TestWrapStallUnblocksOnClose(t *testing.T) {
	a, _ := pipeConns(t)
	w := Wrap(a, Verdict{Kind: Stall, After: 0})
	done := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled read returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not unblock on close")
	}
}

// TestWrapSlowReader: reads are throttled but data still flows.
func TestWrapSlowReader(t *testing.T) {
	a, b := pipeConns(t)
	w := Wrap(a, Verdict{Kind: SlowReader, Throttle: 30 * time.Millisecond})
	go func() { _, _ = b.Write([]byte("hello")) }()
	start := time.Now()
	buf := make([]byte, 5)
	n, err := w.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("throttled read: n=%d err=%v", n, err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("throttled read returned in %v, want >= 30ms", elapsed)
	}
}

// TestWrapPassthrough: None and Drop leave the conn untouched.
func TestWrapPassthrough(t *testing.T) {
	a, _ := pipeConns(t)
	if Wrap(a, Verdict{}) != a {
		t.Fatal("None verdict wrapped the conn")
	}
	if Wrap(a, Verdict{Kind: Drop, DropNth: 2}) != a {
		t.Fatal("Drop verdict wrapped the conn (it is send-path-level)")
	}
}

// TestRecorderReplayEquality: two recorded runs of the same plan over the
// same key sequence produce identical logs — the replayability contract.
func TestRecorderReplayEquality(t *testing.T) {
	run := func() []string {
		rec := NewRecorder(Mixed(11, 0.4))
		for node := uint64(1); node <= 4; node++ {
			for remote := uint64(1); remote <= 4; remote++ {
				rec.Dial(node, "10.0.0.1:1", int(remote))
				rec.Conn(node, remote, 0)
			}
		}
		return rec.Log()
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("log lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("log line %d differs:\n%s\n%s", i, first[i], second[i])
		}
	}
}
