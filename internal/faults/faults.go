// Package faults provides deterministic, seeded fault injection for live
// Perigee connections: a Plan decides — purely from its seed and the
// connection's identity — which dials fail, which established connections
// are reset, stalled, throttled, or lossy, and when. The same plan with
// the same seed issues bit-for-bit identical verdicts on every run, so a
// chaos experiment is replayable.
//
// A Plan is pluggable the same way an adversary.Strategy is: the built-in
// Mixed and DialFailures constructors cover the standard chaos mix, and a
// custom plan is any type implementing the three-method interface using
// only basic types. Plans are consulted by the live node at two points:
// before every dial (Dial) and right after every completed handshake
// (Conn). A verdict is applied at the consulting node's end of the
// connection by Wrap, which honors read deadlines so the node's idle
// timeout machinery still fires on a stalled connection.
package faults

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
)

// Kind enumerates the injectable connection faults.
type Kind int

// The fault kinds.
const (
	// None leaves the connection untouched.
	None Kind = iota
	// DialFail makes the dial error before any connection exists.
	DialFail
	// Reset severs the connection after Verdict.After successful reads
	// or writes: subsequent operations fail like a peer's RST.
	Reset
	// Stall black-holes the connection after Verdict.After operations:
	// reads block until their deadline (or the close), writes pretend to
	// succeed while the bytes vanish — a hung remote, no FIN.
	Stall
	// SlowReader throttles every read by Verdict.Throttle — the
	// slow-loris consumer that backpressure must shed.
	SlowReader
	// Drop discards every Verdict.DropNth outbound message silently; the
	// connection itself stays healthy. Applied at message granularity by
	// the node's send path, not by Wrap.
	Drop
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case DialFail:
		return "dial-fail"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case SlowReader:
		return "slow-reader"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Verdict is one connection's fate under a plan. The zero value is "no
// fault".
type Verdict struct {
	// Kind is the injected fault.
	Kind Kind
	// After is the number of successful connection operations before a
	// Reset or Stall fires.
	After int
	// Throttle is the per-read delay of a SlowReader.
	Throttle time.Duration
	// DropNth makes the send path discard every DropNth-th message
	// (Kind Drop).
	DropNth int
}

// Faulty reports whether the verdict injects anything.
func (v Verdict) Faulty() bool { return v.Kind != None }

// String renders the verdict for logs.
func (v Verdict) String() string {
	switch v.Kind {
	case Reset, Stall:
		return fmt.Sprintf("%s(after=%d)", v.Kind, v.After)
	case SlowReader:
		return fmt.Sprintf("%s(throttle=%v)", v.Kind, v.Throttle)
	case Drop:
		return fmt.Sprintf("%s(nth=%d)", v.Kind, v.DropNth)
	default:
		return v.Kind.String()
	}
}

// Plan decides connection fates deterministically. Implementations must
// be pure functions of their configuration and the arguments: the live
// node may consult a plan from several goroutines, and a replay with the
// same seed must see identical verdicts.
type Plan interface {
	// Name identifies the plan.
	Name() string
	// Brief is a one-line description.
	Brief() string
	// Dial returns the verdict for node's attempt-th dial of addr
	// (attempts count from 0 per (node, addr) pair). Only None and
	// DialFail are meaningful here.
	Dial(node uint64, addr string, attempt int) Verdict
	// Conn returns the verdict governing the attempt-th established
	// connection between node and remote (attempts count from 0 per
	// (node, remote) pair), applied at node's end.
	Conn(node, remote uint64, attempt int) Verdict
}

// mixed is the standard chaos plan: a seeded fraction of dials fail and a
// seeded fraction of established connections draw a uniform fault from
// {Reset, Stall, SlowReader, Drop}.
type mixed struct {
	seed      uint64
	dialFrac  float64
	connFrac  float64
	dialsOnly bool
}

// Mixed returns the standard chaos plan: fraction of dials fail outright
// and fraction of established connections are faulted with a kind drawn
// uniformly from {Reset, Stall, SlowReader, Drop}, all derived
// deterministically from seed. Fractions outside [0, 1] are clamped.
func Mixed(seed uint64, fraction float64) Plan {
	return &mixed{seed: seed, dialFrac: clamp01(fraction), connFrac: clamp01(fraction)}
}

// DialFailures returns a plan that only fails dials, at the given rate —
// the minimal plan for exercising backoff and failure budgets.
func DialFailures(seed uint64, fraction float64) Plan {
	return &mixed{seed: seed, dialFrac: clamp01(fraction), dialsOnly: true}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func (m *mixed) Name() string {
	if m.dialsOnly {
		return "dial-failures"
	}
	return "mixed"
}

func (m *mixed) Brief() string {
	if m.dialsOnly {
		return fmt.Sprintf("%.0f%% of dials fail", 100*m.dialFrac)
	}
	return fmt.Sprintf("%.0f%% of dials fail; %.0f%% of connections reset/stall/throttle/drop", 100*m.dialFrac, 100*m.connFrac)
}

// stream derives the deterministic stream for one decision point. The
// derivation is stateless — it depends only on the plan seed and the
// identifying key, never on the order decisions are requested in, so
// concurrent consultation and replays agree.
func (m *mixed) stream(key string, index int) *rng.RNG {
	return rng.New(m.seed).Derive("faults").Derive(key).DeriveIndexed("attempt", index)
}

func (m *mixed) Dial(node uint64, addr string, attempt int) Verdict {
	r := m.stream(fmt.Sprintf("dial|%016x|%s", node, addr), attempt)
	if r.Float64() < m.dialFrac {
		return Verdict{Kind: DialFail}
	}
	return Verdict{}
}

func (m *mixed) Conn(node, remote uint64, attempt int) Verdict {
	if m.dialsOnly {
		return Verdict{}
	}
	r := m.stream(fmt.Sprintf("conn|%016x|%016x", node, remote), attempt)
	if r.Float64() >= m.connFrac {
		return Verdict{}
	}
	switch r.IntN(4) {
	case 0:
		return Verdict{Kind: Reset, After: 4 + r.IntN(28)}
	case 1:
		return Verdict{Kind: Stall, After: 4 + r.IntN(28)}
	case 2:
		return Verdict{Kind: SlowReader, Throttle: time.Duration(5+r.IntN(45)) * time.Millisecond}
	default:
		return Verdict{Kind: Drop, DropNth: 2 + r.IntN(5)}
	}
}

// ErrInjectedDial is the error returned for a plan-failed dial.
var ErrInjectedDial = fmt.Errorf("faults: injected dial failure")

// ErrInjectedReset is the error surfaced by a Reset fault's operations.
var ErrInjectedReset = fmt.Errorf("faults: injected connection reset")

// Wrap applies a verdict to a live connection. None and Drop return conn
// unchanged (Drop is a message-level fault the send path applies); Reset,
// Stall, and SlowReader return a wrapper implementing the fault.
func Wrap(conn net.Conn, v Verdict) net.Conn {
	switch v.Kind {
	case Reset, Stall, SlowReader:
		return &faultConn{Conn: conn, verdict: v, closed: make(chan struct{})}
	default:
		return conn
	}
}

// faultConn implements Reset, Stall, and SlowReader over an inner
// connection. Stalled reads honor the read deadline set through
// SetReadDeadline/SetDeadline so the node's idle-timeout probe still
// fires; stalled writes succeed and vanish, like bytes into a dead TCP
// window.
type faultConn struct {
	net.Conn
	verdict Verdict

	mu           sync.Mutex
	ops          int
	tripped      bool
	readDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// trip advances the operation count and reports whether the fault has
// fired.
func (f *faultConn) trip() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return true
	}
	if f.ops >= f.verdict.After && (f.verdict.Kind == Reset || f.verdict.Kind == Stall) {
		f.tripped = true
		return true
	}
	f.ops++
	return false
}

func (f *faultConn) Read(b []byte) (int, error) {
	if f.verdict.Kind == SlowReader && f.verdict.Throttle > 0 {
		timer := time.NewTimer(f.verdict.Throttle)
		select {
		case <-timer.C:
		case <-f.closed:
			timer.Stop()
			return 0, net.ErrClosed
		}
	}
	if f.trip() {
		switch f.verdict.Kind {
		case Reset:
			f.Close()
			return 0, ErrInjectedReset
		case Stall:
			return 0, f.stall()
		}
	}
	return f.Conn.Read(b)
}

func (f *faultConn) Write(b []byte) (int, error) {
	if f.trip() {
		switch f.verdict.Kind {
		case Reset:
			f.Close()
			return 0, ErrInjectedReset
		case Stall:
			// The bytes vanish into the dead window; the writer sees
			// success, exactly like an unacked TCP send.
			return len(b), nil
		}
	}
	return f.Conn.Write(b)
}

// stall blocks until the connection closes or the read deadline passes,
// then returns the corresponding error — the observable behavior of a
// peer that went silent without closing.
func (f *faultConn) stall() error {
	for {
		f.mu.Lock()
		deadline := f.readDeadline
		f.mu.Unlock()
		var timer *time.Timer
		var expire <-chan time.Time
		if !deadline.IsZero() {
			wait := time.Until(deadline)
			if wait <= 0 {
				return os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(wait)
			expire = timer.C
		}
		select {
		case <-f.closed:
			if timer != nil {
				timer.Stop()
			}
			return net.ErrClosed
		case <-expire:
			// Re-check: the deadline may have been extended meanwhile.
		case <-time.After(50 * time.Millisecond):
			if timer != nil {
				timer.Stop()
			}
			// Poll for deadline updates made after we sampled it.
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

func (f *faultConn) SetReadDeadline(t time.Time) error {
	f.mu.Lock()
	f.readDeadline = t
	f.mu.Unlock()
	return f.Conn.SetReadDeadline(t)
}

func (f *faultConn) SetDeadline(t time.Time) error {
	f.mu.Lock()
	f.readDeadline = t
	f.mu.Unlock()
	return f.Conn.SetDeadline(t)
}

func (f *faultConn) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return f.Conn.Close()
}

// Recorder wraps a plan and logs every verdict it issues, for replay
// equality checks in chaos tests. Safe for concurrent use.
type Recorder struct {
	inner Plan

	mu  sync.Mutex
	log []string
}

// NewRecorder returns a recording wrapper around plan.
func NewRecorder(plan Plan) *Recorder { return &Recorder{inner: plan} }

// Name implements Plan.
func (r *Recorder) Name() string { return r.inner.Name() }

// Brief implements Plan.
func (r *Recorder) Brief() string { return r.inner.Brief() }

// Dial implements Plan, recording the verdict.
func (r *Recorder) Dial(node uint64, addr string, attempt int) Verdict {
	v := r.inner.Dial(node, addr, attempt)
	r.record(fmt.Sprintf("dial|%016x|%s|%d|%s", node, addr, attempt, v))
	return v
}

// Conn implements Plan, recording the verdict.
func (r *Recorder) Conn(node, remote uint64, attempt int) Verdict {
	v := r.inner.Conn(node, remote, attempt)
	r.record(fmt.Sprintf("conn|%016x|%016x|%d|%s", node, remote, attempt, v))
	return v
}

func (r *Recorder) record(line string) {
	r.mu.Lock()
	r.log = append(r.log, line)
	r.mu.Unlock()
}

// Log returns a copy of the recorded verdict lines in issue order.
func (r *Recorder) Log() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}
