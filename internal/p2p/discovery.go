package p2p

import (
	"fmt"
	"net"
	"time"

	"github.com/perigee-net/perigee/internal/faults"
	"github.com/perigee-net/perigee/internal/wire"
)

// Discovery policy defaults; see DiscoveryConfig.
const (
	DefaultTargetKnown       = 128
	DefaultAnnounceFanout    = 2
	DefaultGetAddrInterval   = 30 * time.Second
	DefaultGetAddrBurst      = 4
	DefaultUnsolicitedBudget = 64
	DefaultMaxAddrAge        = 3 * time.Hour
)

// DiscoveryConfig tunes the addr-gossip discovery subsystem. The rate
// limits and validation always apply — a node cannot opt out of the
// hardened exchange — while the active loops (periodic GETADDR refresh,
// feeler dials) run only when their intervals are set.
type DiscoveryConfig struct {
	// RefreshInterval, when positive, runs a loop that requests fresh
	// addresses (GETADDR to a couple of random peers) every interval while
	// the book holds fewer than TargetKnown addresses. Zero disables the
	// loop: the node still asks each new peer once at connect.
	RefreshInterval time.Duration
	// TargetKnown is the book size at which the refresh loop goes quiet
	// (default 128).
	TargetKnown int
	// FeelerInterval, when positive, runs a loop that picks one
	// never-verified book entry per interval and cheaply verifies it:
	// connect, handshake, disconnect, mark dial-verified. Zero disables
	// feelers.
	FeelerInterval time.Duration
	// AnnounceFanout is how many random peers a freshly learned address is
	// relayed to (Bitcoin-style addr trickle), and bounds the spread rate
	// of any single address. Default 2.
	AnnounceFanout int
	// GetAddrInterval is the per-peer GETADDR service window: at most one
	// request per peer is answered per interval. Defaults to
	// RefreshInterval when that is set (so refresh requests are never
	// starved by the serving side), otherwise 30s.
	GetAddrInterval time.Duration
	// GetAddrBurst is how many GETADDRs per window a peer may send before
	// the excess charges misbehavior points (default 4).
	GetAddrBurst int
	// UnsolicitedBudget caps how many unsolicited ADDR entries per
	// GetAddrInterval window a peer may push into our book (default 64).
	// Solicited responses (answers to our own GETADDRs) are exempt.
	UnsolicitedBudget int
	// MaxAddrAge drops gossiped addresses whose claimed age exceeds it
	// (default 3h) — stale rumor cannot circulate forever.
	MaxAddrAge time.Duration
}

// applyDefaults resolves zero values and rejects out-of-range ones.
func (d *DiscoveryConfig) applyDefaults() error {
	if d.RefreshInterval < 0 {
		return fmt.Errorf("p2p: negative discovery refresh interval %v", d.RefreshInterval)
	}
	if d.FeelerInterval < 0 {
		return fmt.Errorf("p2p: negative feeler interval %v", d.FeelerInterval)
	}
	if d.TargetKnown == 0 {
		d.TargetKnown = DefaultTargetKnown
	} else if d.TargetKnown < 0 {
		return fmt.Errorf("p2p: discovery target %d must be positive", d.TargetKnown)
	}
	if d.AnnounceFanout == 0 {
		d.AnnounceFanout = DefaultAnnounceFanout
	} else if d.AnnounceFanout < 0 {
		return fmt.Errorf("p2p: announce fanout %d must be positive", d.AnnounceFanout)
	}
	if d.GetAddrInterval == 0 {
		if d.RefreshInterval > 0 && d.RefreshInterval < DefaultGetAddrInterval {
			d.GetAddrInterval = d.RefreshInterval
		} else {
			d.GetAddrInterval = DefaultGetAddrInterval
		}
	} else if d.GetAddrInterval < 0 {
		return fmt.Errorf("p2p: negative getaddr interval %v", d.GetAddrInterval)
	}
	if d.GetAddrBurst == 0 {
		d.GetAddrBurst = DefaultGetAddrBurst
	} else if d.GetAddrBurst < 0 {
		return fmt.Errorf("p2p: getaddr burst %d must be positive", d.GetAddrBurst)
	}
	if d.UnsolicitedBudget == 0 {
		d.UnsolicitedBudget = DefaultUnsolicitedBudget
	} else if d.UnsolicitedBudget < 0 {
		return fmt.Errorf("p2p: unsolicited addr budget %d must be positive", d.UnsolicitedBudget)
	}
	if d.MaxAddrAge == 0 {
		d.MaxAddrAge = DefaultMaxAddrAge
	} else if d.MaxAddrAge < 0 {
		return fmt.Errorf("p2p: negative max addr age %v", d.MaxAddrAge)
	}
	return nil
}

// DiscoveryStats counts the node's addr-gossip activity since start.
type DiscoveryStats struct {
	// SelfAnnounces is how many peers we announced our listen address to.
	SelfAnnounces int
	// AddrsRelayed is the number of freshly learned addresses trickled
	// onward to other peers (one count per peer reached).
	AddrsRelayed int
	// RefreshGetAddrs is the number of GETADDRs sent by the refresh loop.
	RefreshGetAddrs int
	// AddrsLearned is the number of addresses newly admitted to the book
	// from gossip.
	AddrsLearned int
	// AddrsInvalid is the number of gossiped addresses rejected by
	// syntactic validation.
	AddrsInvalid int
	// AddrsStale is the number of gossiped addresses dropped for claiming
	// an age beyond MaxAddrAge.
	AddrsStale int
	// UnsolicitedDropped is the number of unsolicited ADDR entries dropped
	// by the per-peer budget.
	UnsolicitedDropped int
	// GetAddrThrottled is the number of GETADDR requests not answered
	// because the per-peer window was already served.
	GetAddrThrottled int
	// FeelerDials is the number of feeler verification dials attempted.
	FeelerDials int
	// FeelerVerified is the number of book entries promoted to
	// dial-verified by a feeler.
	FeelerVerified int
}

// Discovery returns a snapshot of the node's addr-gossip counters.
func (n *Node) Discovery() DiscoveryStats {
	n.discMu.Lock()
	defer n.discMu.Unlock()
	return n.disc
}

// countDisc applies one mutation to the discovery counters under the lock.
func (n *Node) countDisc(f func(*DiscoveryStats)) {
	n.discMu.Lock()
	f(&n.disc)
	n.discMu.Unlock()
}

// ageSecOf clamps a book age to the wire's uint32 seconds field.
func ageSecOf(age time.Duration) uint32 {
	s := int64(age / time.Second)
	if s < 0 {
		return 0
	}
	if s > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(s)
}

// handleGetAddr answers a peer's address request with a seeded random
// sample of the book — never the sorted prefix, never banned entries,
// never the requester's own address — at most once per rate-limit window.
// Requests past the burst budget charge misbehavior points.
func (n *Node) handleGetAddr(p *peer) {
	d := &n.cfg.Discovery
	serve, abusive := p.admitGetAddr(time.Now(), d.GetAddrInterval, d.GetAddrBurst)
	if abusive {
		n.countDisc(func(s *DiscoveryStats) { s.GetAddrThrottled++ })
		n.logf("getaddr spam from %s", p)
		n.misbehave(p, pointsAddrSpam)
		return
	}
	if !serve {
		n.countDisc(func(s *DiscoveryStats) { s.GetAddrThrottled++ })
		return
	}
	pool := n.book.Gossipable(n.Addr(), p.listenAddr)
	if len(pool) == 0 {
		return
	}
	// Deterministic per-(peer, response) sample: the stream depends only
	// on the node seed, the requester identity, and how many responses
	// this peer has been served — so a replay with the same seed samples
	// identically, while consecutive requests draw fresh samples.
	r := n.addrRand.DeriveIndexed(fmt.Sprintf("getaddr-%016x", p.id), p.nextAddrResponse())
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > wire.MaxAddrs {
		pool = pool[:wire.MaxAddrs]
	}
	out := make([]wire.NetAddr, len(pool))
	for i, g := range pool {
		out[i] = wire.NetAddr{Addr: g.Addr, AgeSec: ageSecOf(g.Age)}
	}
	p.send(&wire.Addr{Addrs: out})
}

// handleAddr ingests a peer's ADDR message: unsolicited volume is
// budgeted, every entry is syntactically validated, stale claims are
// dropped, and newly admitted addresses trickle onward to a few random
// peers so one announcement diffuses through the network.
func (n *Node) handleAddr(p *peer, msg *wire.Addr) {
	d := &n.cfg.Discovery
	entries := msg.Addrs
	covered := p.consumeSolicited(len(entries))
	if uncovered := len(entries) - covered; uncovered > 0 {
		allowed := p.admitUnsolicited(time.Now(), d.GetAddrInterval, d.UnsolicitedBudget, uncovered)
		if dropped := uncovered - allowed; dropped > 0 {
			n.countDisc(func(s *DiscoveryStats) { s.UnsolicitedDropped += dropped })
			if covered+allowed == 0 {
				n.logf("addr flood from %s: %d entries over budget", p, dropped)
				n.misbehave(p, pointsAddrSpam)
				return
			}
			entries = entries[:covered+allowed]
		}
	}
	var fresh []wire.NetAddr
	var invalid, stale, learned int
	for _, na := range entries {
		if wire.ValidateAddr(na.Addr) != nil {
			invalid++
			continue
		}
		age := time.Duration(na.AgeSec) * time.Second
		if age > d.MaxAddrAge {
			stale++
			continue
		}
		if n.book.AddSeen(na.Addr, age) {
			learned++
			fresh = append(fresh, na)
		}
	}
	if invalid > 0 || stale > 0 || learned > 0 {
		n.countDisc(func(s *DiscoveryStats) {
			s.AddrsInvalid += invalid
			s.AddrsStale += stale
			s.AddrsLearned += learned
		})
	}
	if invalid > 0 {
		n.logf("%d invalid addrs from %s", invalid, p)
		n.misbehave(p, pointsInvalidAddr)
	}
	if len(fresh) > 0 {
		n.trickleAddrs(p.id, fresh)
	}
}

// trickleAddrs relays freshly learned addresses to AnnounceFanout random
// peers each (excluding the peer they came from and any peer that is the
// address itself), so an announcement spreads a few hops per exchange
// instead of flooding everyone.
func (n *Node) trickleAddrs(fromID uint64, addrs []wire.NetAddr) {
	fanout := n.cfg.Discovery.AnnounceFanout
	if fanout <= 0 {
		return
	}
	peers := n.peerSnapshot()
	relayed := 0
	for _, na := range addrs {
		targets := make([]*peer, 0, len(peers))
		for _, q := range peers {
			if q.id == fromID || q.listenAddr == na.Addr {
				continue
			}
			targets = append(targets, q)
		}
		if len(targets) == 0 {
			continue
		}
		// Stateless per-address stream: the same address trickles to the
		// same peers on a same-seed replay.
		perm := n.addrRand.Derive("trickle-" + na.Addr).Perm(len(targets))
		k := fanout
		if k > len(perm) {
			k = len(perm)
		}
		for _, ti := range perm[:k] {
			if targets[ti].send(&wire.Addr{Addrs: []wire.NetAddr{na}}) {
				relayed++
			}
		}
	}
	if relayed > 0 {
		n.countDisc(func(s *DiscoveryStats) { s.AddrsRelayed += relayed })
	}
}

// announceSelf advertises our own listen address to a freshly connected
// peer — the missing half of bootstrap: without it a single-seed network
// only ever learns the seed's address.
func (n *Node) announceSelf(p *peer) {
	self := n.Addr()
	if self == "" || self == p.listenAddr {
		return
	}
	if p.send(&wire.Addr{Addrs: []wire.NetAddr{{Addr: self, AgeSec: 0}}}) {
		n.countDisc(func(s *DiscoveryStats) { s.SelfAnnounces++ })
	}
}

// refreshLoop periodically requests addresses from a couple of random
// peers while the book is below the target size.
func (n *Node) refreshLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Discovery.RefreshInterval)
	defer ticker.Stop()
	for tick := 0; ; tick++ {
		select {
		case <-n.quit:
			return
		case <-ticker.C:
			n.refreshOnce(tick)
		}
	}
}

// refreshOnce sends GETADDR to up to two seeded-random peers when the
// book is thin.
func (n *Node) refreshOnce(tick int) {
	if n.book.Len() >= n.cfg.Discovery.TargetKnown {
		return
	}
	peers := n.peerSnapshot()
	if len(peers) == 0 {
		return
	}
	perm := n.addrRand.DeriveIndexed("refresh", tick).Perm(len(peers))
	k := 2
	if k > len(perm) {
		k = len(perm)
	}
	for _, pi := range perm[:k] {
		p := peers[pi]
		p.noteGetAddrSent()
		if p.send(&wire.GetAddr{}) {
			n.countDisc(func(s *DiscoveryStats) { s.RefreshGetAddrs++ })
		}
	}
}

// feelerLoop cheaply verifies rumor: each interval it dials one
// never-verified book entry, handshakes, disconnects, and marks the entry
// dial-verified — so the book's verified tier grows beyond the peers we
// happen to be connected to, and fabricated addresses are found out.
func (n *Node) feelerLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Discovery.FeelerInterval)
	defer ticker.Stop()
	for tick := 0; ; tick++ {
		select {
		case <-n.quit:
			return
		case <-ticker.C:
			n.feelerOnce(tick)
		}
	}
}

// feelerOnce picks one seeded-random unverified candidate and verifies it.
func (n *Node) feelerOnce(tick int) {
	exclude := map[string]bool{n.Addr(): true}
	for _, p := range n.peerSnapshot() {
		if p.listenAddr != "" {
			exclude[p.listenAddr] = true
		}
	}
	all := n.book.FeelerCandidates()
	candidates := all[:0]
	for _, a := range all {
		if !exclude[a] {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return
	}
	addr := candidates[n.addrRand.DeriveIndexed("feeler", tick).IntN(len(candidates))]
	n.feelerDial(addr)
}

// feelerDial verifies one address: dial, handshake, disconnect. Success
// marks the book entry dial-verified; failure feeds the same backoff and
// eviction budget as a real dial. Fault injection applies exactly as it
// does to Connect, so chaos runs exercise feelers too.
func (n *Node) feelerDial(addr string) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.countDisc(func(s *DiscoveryStats) { s.FeelerDials++ })
	if n.cfg.Faults != nil {
		attempt := n.nextDialAttempt(addr)
		if v := n.cfg.Faults.Dial(n.cfg.NodeID, addr, attempt); v.Kind == faults.DialFail {
			n.dialFailed(addr)
			n.countRes(func(r *ResilienceStats) { r.FaultedDials++ })
			return
		}
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.HandshakeTimeout)
	if err != nil {
		n.dialFailed(addr)
		return
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
	local := &wire.Version{
		Protocol:   wire.ProtocolVersion,
		NodeID:     n.cfg.NodeID,
		ListenAddr: n.Addr(),
		Nonce:      n.randUint64(),
	}
	remote, err := handshakeDance(conn, local, true)
	if err != nil {
		n.dialFailed(addr)
		return
	}
	if remote.NodeID == n.cfg.NodeID {
		// We dialed ourselves through a gossiped alias: never again.
		n.book.MarkSelf(addr)
		return
	}
	n.book.DialSucceeded(addr)
	n.countDisc(func(s *DiscoveryStats) { s.FeelerVerified++ })
	n.logf("feeler verified %s (%016x)", addr, remote.NodeID)
}
