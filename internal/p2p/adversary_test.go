package p2p

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
)

// TestSilentRelayCoversUnstashedOrphans: adversarial relay behavior must
// apply to received blocks accepted out of order. A silent node that
// stores a child as an orphan and later unstashes it when the parent
// arrives is still relaying a *received* block — it must stay silent,
// exactly as it does for blocks accepted in order.
func TestSilentRelayCoversUnstashedOrphans(t *testing.T) {
	adv := startNode(t, 1, func(c *Config) { c.SilentRelay = true })
	victim := startNode(t, 2, nil)
	if err := victim.Connect(adv.Addr()); err != nil {
		t.Fatal(err)
	}

	genesis := testGenesis()
	parent := chain.NewBlock(genesis, [][]byte{[]byte("p")}, time.Unix(1700000000, 0), 1)
	child := chain.NewBlock(parent, [][]byte{[]byte("c")}, time.Unix(1700000001, 0), 2)

	// Out-of-order arrival from the network (from == nil, mined == false —
	// the unstash path): child first (stashed as orphan), then parent
	// (accepting it re-accepts the child).
	adv.acceptBlock(nil, child, false)
	adv.acceptBlock(nil, parent, false)
	waitFor(t, "both blocks stored at adversary", 2*time.Second, func() bool {
		return adv.Store().Has(parent.Header.Hash()) && adv.Store().Has(child.Header.Hash())
	})

	time.Sleep(200 * time.Millisecond)
	if victim.Store().Has(parent.Header.Hash()) || victim.Store().Has(child.Header.Hash()) {
		t.Fatal("silent adversary relayed a received block through the orphan-unstash path")
	}

	// The node's own blocks are still announced immediately.
	mined, err := adv.MineBlock([][]byte{[]byte("own")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "self-mined block at victim", 2*time.Second, func() bool {
		return victim.Store().Has(mined.Header.Hash())
	})
}
