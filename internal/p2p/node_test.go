package p2p

import (
	"fmt"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
)

func testGenesis() *chain.Block { return chain.NewGenesis("p2p-test") }

// startNode builds and starts a listening node, registering cleanup.
func startNode(t *testing.T, seed uint64, mutate func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Seed:       seed,
		ListenAddr: "127.0.0.1:0",
		Genesis:    testGenesis(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHandshakeAndPeerLists(t *testing.T) {
	a := startNode(t, 1, nil)
	b := startNode(t, 2, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peers registered", time.Second, func() bool {
		return len(a.Peers()) == 1 && len(b.Peers()) == 1
	})
	ap, bp := a.Peers()[0], b.Peers()[0]
	if ap.ID != b.ID() || bp.ID != a.ID() {
		t.Fatalf("peer IDs wrong: %+v %+v", ap, bp)
	}
	if ap.Direction != Outbound || bp.Direction != Inbound {
		t.Fatalf("directions wrong: %v %v", ap.Direction, bp.Direction)
	}
	if ap.ListenAddr != b.Addr() {
		t.Fatalf("listen addr %q, want %q", ap.ListenAddr, b.Addr())
	}
}

func TestSelfConnectionRejected(t *testing.T) {
	a := startNode(t, 3, nil)
	if err := a.Connect(a.Addr()); err == nil {
		t.Fatal("self connection accepted")
	}
	if len(a.Peers()) != 0 {
		t.Fatal("self connection left residue")
	}
}

func TestDuplicateConnectionRejected(t *testing.T) {
	a := startNode(t, 4, nil)
	b := startNode(t, 5, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect(b.Addr()); err == nil {
		t.Fatal("duplicate connection accepted")
	}
	waitFor(t, "single peer", time.Second, func() bool { return len(a.Peers()) == 1 })
}

func TestInboundCap(t *testing.T) {
	hub := startNode(t, 6, func(c *Config) { c.MaxInbound = 2 })
	ok := 0
	for i := 0; i < 4; i++ {
		n := startNode(t, uint64(10+i), nil)
		if err := n.Connect(hub.Addr()); err == nil {
			ok++
		}
	}
	if ok > 2 {
		t.Fatalf("%d inbound connections accepted, cap is 2", ok)
	}
}

func TestBlockPropagationLine(t *testing.T) {
	// a - b - c in a line; a mines, c must receive via b.
	a := startNode(t, 20, nil)
	b := startNode(t, 21, nil)
	c := startNode(t, 22, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		t.Fatal(err)
	}
	blk, err := a.MineBlock([][]byte{[]byte("tx")})
	if err != nil {
		t.Fatal(err)
	}
	h := blk.Header.Hash()
	waitFor(t, "block at c", 2*time.Second, func() bool { return c.Store().Has(h) })
	if c.Store().Height() != 1 {
		t.Fatalf("c height = %d", c.Store().Height())
	}
}

func TestBlockPropagationMesh(t *testing.T) {
	const size = 6
	nodes := make([]*Node, size)
	for i := range nodes {
		nodes[i] = startNode(t, uint64(30+i), nil)
	}
	// Ring plus chords.
	for i := range nodes {
		if err := nodes[i].Connect(nodes[(i+1)%size].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[0].Connect(nodes[3].Addr()); err != nil {
		t.Fatal(err)
	}
	// Mine a few blocks from different nodes.
	var hashes []chain.Hash
	for i := 0; i < 3; i++ {
		miner := nodes[i*2]
		waitFor(t, "miner tip sync", 2*time.Second, func() bool {
			return miner.Store().Height() >= uint64(i)
		})
		blk, err := miner.MineBlock([][]byte{[]byte(fmt.Sprintf("block-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, blk.Header.Hash())
		// Let each block spread before the next is mined so heights chain.
		for _, n := range nodes {
			n := n
			h := blk.Header.Hash()
			waitFor(t, "block spread", 2*time.Second, func() bool { return n.Store().Has(h) })
		}
	}
	for _, n := range nodes {
		if n.Store().Height() != 3 {
			t.Fatalf("node %016x height = %d, want 3", n.ID(), n.Store().Height())
		}
		for _, h := range hashes {
			if !n.Store().Has(h) {
				t.Fatalf("node %016x missing block %s", n.ID(), h)
			}
		}
	}
}

func TestOrphanRecovery(t *testing.T) {
	// b learns about block 2 before block 1: it must fetch the parent.
	a := startNode(t, 40, nil)
	b := startNode(t, 41, nil)
	// Mine two blocks on a while disconnected.
	if _, err := a.MineBlock([][]byte{[]byte("b1")}); err != nil {
		t.Fatal(err)
	}
	blk2, err := a.MineBlock([][]byte{[]byte("b2")})
	if err != nil {
		t.Fatal(err)
	}
	// Now connect: a announces its tip (blk2); b must backfill blk1.
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "orphan backfill", 2*time.Second, func() bool {
		return b.Store().Has(blk2.Header.Hash()) && b.Store().Height() == 2
	})
}

func TestAddrGossip(t *testing.T) {
	a := startNode(t, 50, nil)
	b := startNode(t, 51, nil)
	c := startNode(t, 52, nil)
	// b knows c; a connects to b and should learn c's address.
	b.Book().Add(c.Addr())
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "addr gossip", 2*time.Second, func() bool {
		return a.Book().Contains(c.Addr())
	})
}

func TestPerigeeRoundDropsSlowPeer(t *testing.T) {
	// Hub node with 3 outbound peers: two fast, one slow (artificial
	// delay). After mining through the observation window, the round must
	// drop the slow peer and keep the fast ones.
	fast1 := startNode(t, 60, nil)
	fast2 := startNode(t, 61, nil)
	slow := startNode(t, 62, nil)
	miner := startNode(t, 63, nil)

	slowID := slow.ID()
	hub := startNode(t, 64, func(c *Config) {
		c.OutDegree = 3
		c.Explore = 1
		c.PeerDelay = func(remote uint64) time.Duration {
			if remote == slowID {
				return 150 * time.Millisecond
			}
			return 0
		}
	})
	// The miner feeds blocks to all three relays, which relay to hub.
	for _, relay := range []*Node{fast1, fast2, slow} {
		if err := miner.Connect(relay.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, relay := range []*Node{fast1, fast2, slow} {
		if err := hub.Connect(relay.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	// Note: hub's delay injection applies to hub->peer sends; for arrival
	// scoring we need the slow path peer->hub. The relays send promptly,
	// so instead inject on the slow relay itself: all its sends are slow.
	// (Handled below by mining enough blocks and asserting on scores.)
	for i := 0; i < 8; i++ {
		if _, err := miner.MineBlock([][]byte{[]byte(fmt.Sprintf("tx-%d", i))}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "hub receives block", 3*time.Second, func() bool {
			return hub.Store().Height() >= uint64(i+1)
		})
	}
	waitFor(t, "observation window", time.Second, func() bool {
		return hub.ObservationWindow() >= 8
	})
	rep, err := hub.PerigeeRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksScored < 8 {
		t.Fatalf("scored %d blocks, want >= 8", rep.BlocksScored)
	}
	if len(rep.Dropped) != 1 {
		t.Fatalf("dropped %d peers, want 1 (out-degree 3, retain 2)", len(rep.Dropped))
	}
}

func TestPerigeeRoundDropsDelayedRelay(t *testing.T) {
	// End-to-end neighbor selection: the slow relay delays its own sends,
	// so the hub hears blocks from it last and must evict it.
	miner := startNode(t, 70, nil)
	fast1 := startNode(t, 71, nil)
	fast2 := startNode(t, 72, nil)
	slow := startNode(t, 73, func(c *Config) {
		c.PeerDelay = func(uint64) time.Duration { return 120 * time.Millisecond }
	})
	hub := startNode(t, 74, func(c *Config) {
		c.OutDegree = 3
		c.Explore = 1
	})
	for _, relay := range []*Node{fast1, fast2, slow} {
		if err := miner.Connect(relay.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := hub.Connect(relay.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := miner.MineBlock([][]byte{[]byte(fmt.Sprintf("tx-%d", i))}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "hub receives block", 3*time.Second, func() bool {
			return hub.Store().Height() >= uint64(i+1)
		})
	}
	// Give the slow relay's delayed announcements time to land so the
	// observation matrix is complete.
	time.Sleep(200 * time.Millisecond)
	rep, err := hub.PerigeeRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 1 {
		t.Fatalf("dropped %v, want exactly the slow relay", rep.Dropped)
	}
	if rep.Dropped[0] != slow.ID() {
		t.Fatalf("dropped %016x, want slow relay %016x", rep.Dropped[0], slow.ID())
	}
	// The hub should have re-dialed toward its out-degree target from its
	// address book (it learned addresses via gossip).
	waitFor(t, "exploration redial", 2*time.Second, func() bool {
		return hub.OutboundCount() >= 2
	})
}

func TestStopIsIdempotentAndClean(t *testing.T) {
	a := startNode(t, 80, nil)
	b := startNode(t, 81, nil)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.Stop()
	a.Stop() // second stop must not panic or hang
	if err := a.Connect(b.Addr()); err == nil {
		t.Fatal("connect after stop should fail")
	}
	if _, err := a.MineBlock(nil); err == nil {
		t.Fatal("mine after stop should fail")
	}
	if _, err := a.PerigeeRound(); err == nil {
		t.Fatal("round after stop should fail")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("nil genesis accepted")
	}
	if _, err := NewNode(Config{Genesis: testGenesis(), OutDegree: 2, Explore: 2}); err == nil {
		t.Fatal("explore >= out-degree accepted")
	}
}

// TestConfigDefaultsAndValidation covers the applyDefaults fix: zero
// values resolve to the paper's defaults, ExploreNone is an honored
// explicit zero, and out-of-range values fail fast instead of being
// silently overwritten.
func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg := Config{Genesis: testGenesis()}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxInbound != 20 || cfg.OutDegree != 8 || cfg.Explore != 2 || cfg.Percentile != 0.9 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	zero := Config{Genesis: testGenesis(), Explore: ExploreNone}
	if err := zero.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if zero.Explore != 0 {
		t.Fatalf("ExploreNone resolved to %d, want 0", zero.Explore)
	}
	if _, err := NewNode(Config{Genesis: testGenesis(), Explore: ExploreNone}); err != nil {
		t.Fatalf("ExploreNone rejected: %v", err)
	}
	bad := []Config{
		{Genesis: testGenesis(), Explore: -2},
		{Genesis: testGenesis(), Percentile: -0.1},
		{Genesis: testGenesis(), Percentile: 1.5},
		{Genesis: testGenesis(), MaxInbound: -1},
		{Genesis: testGenesis(), OutDegree: -8},
		{Genesis: testGenesis(), RoundBlocks: -1},
		{Genesis: testGenesis(), HandshakeTimeout: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewNode(cfg); err == nil {
			t.Fatalf("invalid config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNonListeningNode(t *testing.T) {
	cfg := Config{Seed: 90, Genesis: testGenesis()}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if n.Addr() != "" {
		t.Fatal("non-listening node reports an address")
	}
	b := startNode(t, 91, nil)
	if err := n.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	blk, err := b.MineBlock(nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "client receives block", 2*time.Second, func() bool {
		return n.Store().Has(blk.Header.Hash())
	})
}

// TestResilienceDesperationDial: a node starved below half its out-degree
// whose every known address sits inside a deep backoff gate must override
// the gate rather than wait it out — backoff protects remote peers from a
// healthy node's retries, not a node cut off from the network.
func TestResilienceDesperationDial(t *testing.T) {
	a := startNode(t, 8100, nil)
	b := startNode(t, 8101, func(c *Config) {
		c.OutDegree = 2
		c.Explore = 1
		c.RedialInterval = 25 * time.Millisecond
	})
	b.book.Add(a.Addr())
	// Five consecutive failures push the gate out ~8s (2^4 s nominal,
	// jittered) — far past this test's horizon without the override.
	for i := 0; i < 5; i++ {
		b.book.DialFailed(a.Addr())
	}
	if gate := b.book.NextDialIn(a.Addr()); gate < 3*time.Second {
		t.Fatalf("backoff gate only %v out, test needs a deep gate", gate)
	}
	waitFor(t, "desperation reconnect", 3*time.Second, func() bool {
		return b.OutboundCount() >= 1
	})
	if got := b.Resilience().DesperationDials; got < 1 {
		t.Fatalf("DesperationDials = %d, want >= 1", got)
	}
}
