package p2p

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/wire"
)

// Direction distinguishes who initiated a connection.
type Direction int

// Connection directions.
const (
	// Outbound connections were dialed by us; only these are scored and
	// rotated by Perigee (a node controls its outgoing set, §2.1).
	Outbound Direction = iota
	// Inbound connections were accepted from a remote dialer.
	Inbound
)

// String names the direction.
func (d Direction) String() string {
	if d == Outbound {
		return "outbound"
	}
	return "inbound"
}

// peer is one live connection after a completed handshake.
type peer struct {
	id         uint64
	direction  Direction
	conn       net.Conn
	listenAddr string // remote's accepting address, "" if not listening
	delay      time.Duration

	// writeTimeout bounds each frame write; zero disables the deadline.
	writeTimeout time.Duration
	// dropNth, when positive, silently discards every Nth enqueued
	// message — the send-path half of a fault plan's Drop verdict.
	dropNth int
	// maxFullDrops is the consecutive full-queue drop budget after which
	// the peer is disconnected as a slow consumer; zero disables it.
	maxFullDrops int
	// onSlowClose, when non-nil, is invoked once if the peer is closed
	// for exhausting maxFullDrops.
	onSlowClose func()

	sendMu    sync.Mutex
	sent      int // messages offered to the queue (feeds dropNth)
	fullDrops int // consecutive messages lost to a full queue

	// discMu guards the discovery rate-limit state below.
	discMu sync.Mutex
	// awaitingAddr banks the ADDR entries this peer may still send us as
	// solicited responses (wire.MaxAddrs per outstanding GETADDR);
	// entries covered by the bank bypass the unsolicited budget.
	awaitingAddr int
	// getAddrWindow/getAddrCount throttle the peer's GETADDR requests:
	// one answered per window, misbehavior past the burst budget.
	getAddrWindow time.Time
	getAddrCount  int
	// addrWindow/addrCount budget the peer's unsolicited ADDR volume.
	addrWindow time.Time
	addrCount  int
	// addrResponses indexes the per-peer ADDR-sample derivation stream, so
	// consecutive responses to the same peer draw distinct samples while a
	// replay with the same seed draws identical ones.
	addrResponses int

	sendCh chan wire.Message
	done   chan struct{}

	closeOnce sync.Once
}

// maxAwaitingAddr caps (in GETADDR-responses' worth of entries) the
// solicited credit a peer can bank, so our own GETADDR retries cannot be
// farmed into an unlimited unsolicited allowance.
const maxAwaitingAddr = 4

// noteGetAddrSent records that we asked this peer for addresses and owe
// it one un-budgeted response's worth of ADDR entries.
func (p *peer) noteGetAddrSent() {
	p.discMu.Lock()
	p.awaitingAddr += wire.MaxAddrs
	if p.awaitingAddr > maxAwaitingAddr*wire.MaxAddrs {
		p.awaitingAddr = maxAwaitingAddr * wire.MaxAddrs
	}
	p.discMu.Unlock()
}

// consumeSolicited redeems up to n entries of outstanding GETADDR credit,
// returning how many are covered. Entry-based (rather than per-message)
// accounting keeps an interleaved self-announce from burning the credit a
// full-size response needs.
func (p *peer) consumeSolicited(n int) int {
	p.discMu.Lock()
	defer p.discMu.Unlock()
	take := n
	if take > p.awaitingAddr {
		take = p.awaitingAddr
	}
	p.awaitingAddr -= take
	return take
}

// admitGetAddr applies the per-peer GETADDR rate limit: within each
// window only the first request is served, and requests past the burst
// budget are abusive (the caller charges misbehavior).
func (p *peer) admitGetAddr(now time.Time, window time.Duration, burst int) (serve, abusive bool) {
	p.discMu.Lock()
	defer p.discMu.Unlock()
	if p.getAddrWindow.IsZero() || now.Sub(p.getAddrWindow) >= window {
		p.getAddrWindow = now
		p.getAddrCount = 0
	}
	p.getAddrCount++
	return p.getAddrCount == 1, p.getAddrCount > burst
}

// admitUnsolicited spends n addresses against the peer's per-window
// unsolicited budget, returning how many may be processed.
func (p *peer) admitUnsolicited(now time.Time, window time.Duration, budget, n int) (allowed int) {
	p.discMu.Lock()
	defer p.discMu.Unlock()
	if p.addrWindow.IsZero() || now.Sub(p.addrWindow) >= window {
		p.addrWindow = now
		p.addrCount = 0
	}
	allowed = budget - p.addrCount
	if allowed < 0 {
		allowed = 0
	}
	if allowed > n {
		allowed = n
	}
	p.addrCount += allowed
	return allowed
}

// nextAddrResponse returns the 0-based index of the next ADDR sample
// served to this peer.
func (p *peer) nextAddrResponse() int {
	p.discMu.Lock()
	defer p.discMu.Unlock()
	i := p.addrResponses
	p.addrResponses++
	return i
}

const peerSendBuffer = 128

func newPeer(id uint64, dir Direction, conn net.Conn, listenAddr string, delay time.Duration) *peer {
	return &peer{
		id:         id,
		direction:  dir,
		conn:       conn,
		listenAddr: listenAddr,
		delay:      delay,
		sendCh:     make(chan wire.Message, peerSendBuffer),
		done:       make(chan struct{}),
	}
}

// send enqueues a message; it reports false when the peer is shutting down
// or its queue is full (slow peer — the message is dropped rather than
// blocking the caller, like a full TCP send buffer). A peer that keeps a
// full queue for maxFullDrops consecutive sends is disconnected instead of
// silently throttling the broadcast path forever.
func (p *peer) send(m wire.Message) bool {
	select {
	case <-p.done:
		return false
	default:
	}
	p.sendMu.Lock()
	if p.dropNth > 0 {
		p.sent++
		if p.sent%p.dropNth == 0 {
			p.sendMu.Unlock()
			return true // injected message drop: pretend it was sent
		}
	}
	p.sendMu.Unlock()
	select {
	case p.sendCh <- m:
		p.sendMu.Lock()
		p.fullDrops = 0
		p.sendMu.Unlock()
		return true
	case <-p.done:
		return false
	default:
	}
	// Queue full: count the consecutive loss and cut off a consumer that
	// never drains.
	p.sendMu.Lock()
	p.fullDrops++
	// Exactly-equal so the mutex-serialized increment fires the slow-close
	// path once even under concurrent sends.
	slow := p.maxFullDrops > 0 && p.fullDrops == p.maxFullDrops
	p.sendMu.Unlock()
	if slow {
		if p.onSlowClose != nil {
			p.onSlowClose()
		}
		p.close()
	}
	return false
}

// writeLoop drains the send queue onto the connection, applying the
// injected artificial latency before each write. It exits when the peer
// closes.
func (p *peer) writeLoop() {
	for {
		select {
		case m := <-p.sendCh:
			if p.delay > 0 {
				timer := time.NewTimer(p.delay)
				select {
				case <-timer.C:
				case <-p.done:
					timer.Stop()
					return
				}
			}
			if p.writeTimeout > 0 {
				_ = p.conn.SetWriteDeadline(time.Now().Add(p.writeTimeout))
			}
			if err := wire.Write(p.conn, m); err != nil {
				p.close()
				return
			}
		case <-p.done:
			return
		}
	}
}

// drain waits until the send queue is empty, the peer dies, or the
// deadline passes — the graceful half of shutdown, giving the write loop
// a bounded chance to flush queued announcements.
func (p *peer) drain(deadline time.Time) {
	for len(p.sendCh) > 0 && time.Now().Before(deadline) {
		select {
		case <-p.done:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// close shuts the connection down exactly once.
func (p *peer) close() {
	p.closeOnce.Do(func() {
		close(p.done)
		_ = p.conn.Close()
	})
}

func (p *peer) String() string {
	return fmt.Sprintf("peer(%016x, %s)", p.id, p.direction)
}
