package p2p

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/wire"
)

// Direction distinguishes who initiated a connection.
type Direction int

// Connection directions.
const (
	// Outbound connections were dialed by us; only these are scored and
	// rotated by Perigee (a node controls its outgoing set, §2.1).
	Outbound Direction = iota
	// Inbound connections were accepted from a remote dialer.
	Inbound
)

// String names the direction.
func (d Direction) String() string {
	if d == Outbound {
		return "outbound"
	}
	return "inbound"
}

// peer is one live connection after a completed handshake.
type peer struct {
	id         uint64
	direction  Direction
	conn       net.Conn
	listenAddr string // remote's accepting address, "" if not listening
	delay      time.Duration

	sendCh chan wire.Message
	done   chan struct{}

	closeOnce sync.Once
}

const peerSendBuffer = 128

func newPeer(id uint64, dir Direction, conn net.Conn, listenAddr string, delay time.Duration) *peer {
	return &peer{
		id:         id,
		direction:  dir,
		conn:       conn,
		listenAddr: listenAddr,
		delay:      delay,
		sendCh:     make(chan wire.Message, peerSendBuffer),
		done:       make(chan struct{}),
	}
}

// send enqueues a message; it reports false when the peer is shutting down
// or its queue is full (slow peer — the message is dropped rather than
// blocking the caller, like a full TCP send buffer).
func (p *peer) send(m wire.Message) bool {
	select {
	case <-p.done:
		return false
	default:
	}
	select {
	case p.sendCh <- m:
		return true
	case <-p.done:
		return false
	default:
		return false
	}
}

// writeLoop drains the send queue onto the connection, applying the
// injected artificial latency before each write. It exits when the peer
// closes.
func (p *peer) writeLoop() {
	for {
		select {
		case m := <-p.sendCh:
			if p.delay > 0 {
				timer := time.NewTimer(p.delay)
				select {
				case <-timer.C:
				case <-p.done:
					timer.Stop()
					return
				}
			}
			if err := wire.Write(p.conn, m); err != nil {
				p.close()
				return
			}
		case <-p.done:
			return
		}
	}
}

// close shuts the connection down exactly once.
func (p *peer) close() {
	p.closeOnce.Do(func() {
		close(p.done)
		_ = p.conn.Close()
	})
}

func (p *peer) String() string {
	return fmt.Sprintf("peer(%016x, %s)", p.id, p.direction)
}
