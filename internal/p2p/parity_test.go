package p2p

import (
	"reflect"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
)

// parityMatrix is the shared observation matrix: offsets[b][i] is block
// b's arrival offset from the hub's i-th outbound peer (ascending peer
// ID). Each row has a zero minimum, mirroring the time normalization both
// drivers apply; Censored marks a block a peer never announced. The
// columns are built so Vanilla and Subset disagree: peer 1 (index 0) and
// peer 2 (index 1) complement each other, peer 3 (index 2) is uniformly
// mediocre, peer 4 (index 3) barely delivers.
func parityMatrix() [][]time.Duration {
	ms := time.Millisecond
	inf := stats.InfDuration
	return [][]time.Duration{
		{0, 40 * ms, 20 * ms, inf},
		{0, 42 * ms, 21 * ms, inf},
		{50 * ms, 0, 22 * ms, inf},
		{52 * ms, 0, 23 * ms, inf},
		{0, 5 * ms, 30 * ms, 60 * ms},
		{10 * ms, 0, 31 * ms, 61 * ms},
	}
}

// injectObservations fills the hub's observation window as if the blocks
// in the matrix had been announced with exactly those offsets.
func injectObservations(t *testing.T, hub *Node, peerIDs []uint64, offsets [][]time.Duration) {
	t.Helper()
	base := time.Now()
	hub.obsMu.Lock()
	defer hub.obsMu.Unlock()
	for b, row := range offsets {
		var h chain.Hash
		h[0] = byte(b + 1)
		hub.order = append(hub.order, h)
		seen := make(map[uint64]time.Time, len(row))
		for i, off := range row {
			if off == stats.InfDuration {
				continue
			}
			seen[peerIDs[i]] = base.Add(off)
		}
		hub.firstSeen[h] = seen
	}
}

// TestSelectorParitySimVsLive is the unification guarantee: for every
// selector variant, a live TCP node's Perigee round and the simulator's
// decision path (core.Decide, the single function Engine.Step routes
// every node through) make identical keep/drop decisions from identical
// observations. The live side runs real connections and real
// disconnects; only the observation window is injected.
func TestSelectorParitySimVsLive(t *testing.T) {
	const (
		hubID     = uint64(777)
		hubSeed   = uint64(42)
		outDegree = 4
	)
	newSel := func(t *testing.T, build func() (core.Selector, error)) core.Selector {
		t.Helper()
		sel, err := build()
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	variants := []struct {
		name  string
		build func() (core.Selector, error)
	}{
		{"subset", func() (core.Selector, error) { return core.NewSubsetSelector(1, 0.9) }},
		{"vanilla", func() (core.Selector, error) { return core.NewVanillaSelector(1, 0.9) }},
		{"ucb", func() (core.Selector, error) { return core.NewUCBSelector(0.9, 50*time.Millisecond) }},
		{"random", func() (core.Selector, error) { return core.NewRandomSelector(1) }},
	}
	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			// Live side: a hub with four outbound relays over real TCP.
			relays := make([]*Node, 4)
			peerIDs := make([]uint64, 4)
			for i := range relays {
				id := uint64(i + 1)
				relays[i] = startNode(t, 100+id, func(c *Config) { c.NodeID = id })
				peerIDs[i] = id
			}
			hub, err := NewNode(Config{
				NodeID:    hubID,
				Seed:      hubSeed,
				OutDegree: outDegree,
				Selector:  newSel(t, variant.build),
				Genesis:   testGenesis(),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(hub.Stop)
			for _, r := range relays {
				if err := hub.Connect(r.Addr()); err != nil {
					t.Fatal(err)
				}
			}

			offsets := parityMatrix()
			injectObservations(t, hub, peerIDs, offsets)
			candidates := hub.Book().Len()
			rep, err := hub.PerigeeRound()
			if err != nil {
				t.Fatal(err)
			}
			if rep.BlocksScored != len(offsets) {
				t.Fatalf("live round scored %d blocks, want %d", rep.BlocksScored, len(offsets))
			}

			// Sim side: the same observations through core.Decide — the
			// one code path Engine.Step drives for every simulated node —
			// with a fresh selector instance and the same derived stream
			// the live driver hands its selector.
			obs := core.NewObservations([]int{1, 2, 3, 4}, len(offsets))
			for b, row := range offsets {
				copy(obs.Offsets[b], row)
			}
			decision, err := core.Decide(newSel(t, variant.build), core.NeighborView{
				Node:       int(hubID),
				OutDegree:  outDegree,
				Candidates: candidates,
				Obs:        obs,
				Rand:       rng.New(hubSeed).Derive("p2p-selector").DeriveIndexed("round", 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			toIDs := func(indices []int) []uint64 {
				if len(indices) == 0 {
					return nil
				}
				ids := make([]uint64, len(indices))
				for i, idx := range indices {
					ids[i] = peerIDs[idx]
				}
				return ids
			}
			if want := toIDs(decision.Keep); !reflect.DeepEqual(rep.Kept, want) {
				t.Fatalf("live kept %v, sim decision keeps %v", rep.Kept, want)
			}
			if want := toIDs(decision.Drop); !reflect.DeepEqual(rep.Dropped, want) {
				t.Fatalf("live dropped %v, sim decision drops %v", rep.Dropped, want)
			}
			// The live driver really disconnected what the selector said.
			for _, id := range rep.Dropped {
				for _, p := range hub.Peers() {
					if p.ID == id && p.Direction == Outbound {
						// A redial during exploration may legitimately
						// resurrect the connection; only fail when the
						// peer was never dropped (no dial recorded).
						if len(rep.Dialed) == 0 {
							t.Fatalf("dropped peer %d still connected with no redial", id)
						}
					}
				}
			}
		})
	}
}

// TestSubsetParityDropsDiffer pins the parity matrix to decisions that
// actually differ across variants, so the parity test cannot pass
// vacuously (e.g. if every selector kept everything).
func TestSubsetParityDropsDiffer(t *testing.T) {
	offsets := parityMatrix()
	obs := core.NewObservations([]int{1, 2, 3, 4}, len(offsets))
	for b, row := range offsets {
		copy(obs.Offsets[b], row)
	}
	decide := func(build func() (core.Selector, error)) core.Decision {
		sel, err := build()
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Decide(sel, core.NeighborView{
			Node: 0, OutDegree: 4, Obs: obs,
			Rand: rng.New(1).Derive("x"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	subset := decide(func() (core.Selector, error) { return core.NewSubsetSelector(1, 0.9) })
	vanilla := decide(func() (core.Selector, error) { return core.NewVanillaSelector(1, 0.9) })
	if len(subset.Drop) == 0 || len(vanilla.Drop) == 0 {
		t.Fatalf("parity matrix produces no drops (subset %v, vanilla %v)", subset, vanilla)
	}
	if reflect.DeepEqual(subset.Keep, vanilla.Keep) {
		t.Fatalf("parity matrix does not distinguish subset from vanilla (both keep %v)", subset.Keep)
	}
}
