package p2p

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/faults"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/stats"
	"github.com/perigee-net/perigee/internal/wire"
)

// ExploreNone requests exactly zero exploration slots through Config,
// whose zero-valued Explore means "use the default of 2".
const ExploreNone = -1

// Config assembles a live node.
type Config struct {
	// NodeID is the node's identity; zero means "derive from the seed".
	NodeID uint64
	// Seed drives the node's local randomness (nonces, address sampling).
	Seed uint64
	// ListenAddr is the accepting address ("127.0.0.1:0" for an ephemeral
	// port); empty disables listening (a client-only node).
	ListenAddr string
	// MaxInbound caps accepted connections (default 20).
	MaxInbound int
	// OutDegree is the target number of outbound connections maintained by
	// the Perigee round (default 8).
	OutDegree int
	// Explore is the number of exploration slots per round used by the
	// default selector (default 2; pass ExploreNone for an explicit zero).
	// Ignored when Selector is set.
	Explore int
	// Percentile is the scoring quantile in (0, 1] used by the default
	// selector (default 0.9). Ignored when Selector is set.
	Percentile float64
	// Selector decides which outbound peers to keep, drop, and redial each
	// round. Nil means Subset scoring (the paper's preferred rule) with
	// the configured Explore and Percentile — the same default as the
	// simulator.
	Selector core.Selector
	// RoundBlocks, when positive, triggers a Perigee round automatically
	// as soon as that many blocks have been observed since the last round.
	// Zero means rounds run only when PerigeeRound is called.
	RoundBlocks int
	// OnRound, when non-nil, receives every completed round's report —
	// manual and automatic alike — synchronously at the end of the round.
	OnRound func(RoundReport)
	// Genesis anchors the node's chain; all nodes of a network must share
	// it.
	Genesis *chain.Block
	// PeerDelay, when non-nil, returns an artificial one-way delay to
	// apply before every message sent to the given remote node — latency
	// injection for single-machine experiments.
	PeerDelay func(remoteID uint64) time.Duration
	// SilentRelay makes the node a free-rider: received blocks are stored
	// but never relayed (self-mined blocks are still announced) — the live
	// form of the simulator's Silent mask.
	SilentRelay bool
	// RelayDelay withholds every relay of a received block by the given
	// duration before announcing it onward (self-mined blocks are
	// announced immediately) — the live form of the simulator's RelayDelay
	// table.
	RelayDelay time.Duration
	// Frozen disables the neighbor-update protocol: Perigee rounds still
	// reset the observation window and report, but keep every outbound
	// peer and dial nothing.
	Frozen bool
	// HandshakeTimeout bounds the version exchange (default 5s).
	HandshakeTimeout time.Duration
	// Book tunes the address book's capacity, dial backoff, and banning
	// policy; zero-valued fields resolve to the package defaults.
	Book BookConfig
	// AddrBookPath, when non-empty, loads the address book from this file
	// at construction and saves it on Stop, so peer health and bans
	// survive restarts. A missing file is not an error.
	AddrBookPath string
	// Faults, when non-nil, injects deterministic connection faults from
	// the plan: dials may be failed outright and established connections
	// wrapped with resets, stalls, throttles, or message drops. Nil means
	// no injection (production).
	Faults faults.Plan
	// ReadIdleTimeout bounds silence on a connection (default 90s). After
	// one idle interval the peer is probed with a ping; a second silent
	// interval disconnects it. This is what reclaims connections hung by
	// stalls or half-open TCP.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s); a peer that
	// cannot absorb a frame in this long is disconnected by its write
	// loop.
	WriteTimeout time.Duration
	// MaxSendQueueDrops is the consecutive full-queue send-drop budget
	// after which a slow consumer is disconnected rather than silently
	// starved (default 64).
	MaxSendQueueDrops int
	// RedialInterval, when positive, runs a maintenance loop that redials
	// addresses from the book whenever the outbound degree has fallen
	// below OutDegree — recovery between Perigee rounds. Zero disables
	// the loop (rounds still re-dial).
	RedialInterval time.Duration
	// Discovery tunes addr-gossip: the always-on hardening (validation,
	// GETADDR rate limits, unsolicited budgets, seeded response sampling)
	// and the optional active loops (refresh, feelers).
	Discovery DiscoveryConfig
	// ObservationCap bounds the block-observation structures (order,
	// firstSeen, requested) independently of Perigee rounds, so a node
	// that never rounds (RoundBlocks 0, no PerigeeRound calls) cannot
	// grow them without bound. The effective cap is never below
	// RoundBlocks. Default 4096.
	ObservationCap int
	// DrainTimeout bounds the graceful flush of peer send queues during
	// Stop (default 1s).
	DrainTimeout time.Duration
	// Logf, when non-nil, receives diagnostic log lines.
	Logf func(format string, args ...any)
}

// applyDefaults resolves zero values to the paper's defaults and rejects
// explicit out-of-range values instead of silently overwriting them.
func (c *Config) applyDefaults() error {
	if c.MaxInbound == 0 {
		c.MaxInbound = 20
	} else if c.MaxInbound < 0 {
		return fmt.Errorf("p2p: inbound cap %d must be positive", c.MaxInbound)
	}
	if c.OutDegree == 0 {
		c.OutDegree = 8
	} else if c.OutDegree < 0 {
		return fmt.Errorf("p2p: out-degree %d must be positive", c.OutDegree)
	}
	switch {
	case c.Explore == ExploreNone:
		c.Explore = 0
	case c.Explore == 0:
		c.Explore = 2
	case c.Explore < 0:
		return fmt.Errorf("p2p: explore count %d must be non-negative (use ExploreNone for zero)", c.Explore)
	}
	if c.Percentile == 0 {
		c.Percentile = 0.9
	} else if c.Percentile < 0 || c.Percentile > 1 {
		return fmt.Errorf("p2p: percentile %v outside (0, 1]", c.Percentile)
	}
	if c.RoundBlocks < 0 {
		return fmt.Errorf("p2p: round blocks %d must be non-negative", c.RoundBlocks)
	}
	if c.RelayDelay < 0 {
		return fmt.Errorf("p2p: negative relay delay %v", c.RelayDelay)
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 5 * time.Second
	} else if c.HandshakeTimeout < 0 {
		return fmt.Errorf("p2p: negative handshake timeout %v", c.HandshakeTimeout)
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 90 * time.Second
	} else if c.ReadIdleTimeout < 0 {
		return fmt.Errorf("p2p: negative read idle timeout %v", c.ReadIdleTimeout)
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	} else if c.WriteTimeout < 0 {
		return fmt.Errorf("p2p: negative write timeout %v", c.WriteTimeout)
	}
	if c.MaxSendQueueDrops == 0 {
		c.MaxSendQueueDrops = 64
	} else if c.MaxSendQueueDrops < 0 {
		return fmt.Errorf("p2p: send queue drop budget %d must be positive", c.MaxSendQueueDrops)
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = time.Second
	} else if c.DrainTimeout < 0 {
		return fmt.Errorf("p2p: negative drain timeout %v", c.DrainTimeout)
	}
	if c.RedialInterval < 0 {
		return fmt.Errorf("p2p: negative redial interval %v", c.RedialInterval)
	}
	if c.ObservationCap == 0 {
		c.ObservationCap = 4096
	} else if c.ObservationCap < 0 {
		return fmt.Errorf("p2p: observation cap %d must be positive", c.ObservationCap)
	}
	if c.ObservationCap < c.RoundBlocks {
		c.ObservationCap = c.RoundBlocks
	}
	return c.Discovery.applyDefaults()
}

// Node is a live Perigee peer: it gossips blocks over TCP and periodically
// re-selects its outbound neighbors from measured arrival times.
type Node struct {
	cfg      Config
	store    *chain.Store
	book     *AddrBook
	rand     *rng.RNG
	selector core.Selector
	// selRand roots the per-round streams handed to the selector.
	selRand *rng.RNG
	// addrRand roots the discovery decision streams (ADDR samples,
	// trickle targets, feeler picks). It is only ever Derived from —
	// derivation is stateless — so no lock guards it.
	addrRand *rng.RNG

	mu       sync.Mutex
	peers    map[uint64]*peer
	listener net.Listener
	closed   bool
	quit     chan struct{} // closed by Stop; wakes delayed-relay timers

	obsMu     sync.Mutex
	firstSeen map[chain.Hash]map[uint64]time.Time
	order     []chain.Hash
	requested map[chain.Hash]time.Time
	orphans   map[chain.Hash][]*chain.Block
	rounds    int // completed Perigee rounds

	roundMu       sync.Mutex
	roundInFlight bool

	// dialMu guards the per-address and per-peer attempt counters that
	// index into the fault plan's verdict streams.
	dialMu       sync.Mutex
	dialAttempts map[string]int
	connAttempts map[uint64]int

	resMu sync.Mutex
	res   ResilienceStats

	discMu sync.Mutex
	disc   DiscoveryStats

	wg sync.WaitGroup
}

// ResilienceStats counts the node's defensive actions since start.
type ResilienceStats struct {
	// AcceptsShed is the number of inbound connections declined because
	// the inbound cap was reached.
	AcceptsShed int
	// BannedRefused is the number of connections refused (on accept or
	// dial) because the remote was banned.
	BannedRefused int
	// DialFailures is the number of failed dial or handshake attempts
	// recorded against the address book.
	DialFailures int
	// FaultedDials is the number of dials failed by the injected fault
	// plan (a subset of DialFailures).
	FaultedDials int
	// FaultedConns is the number of established connections wrapped with
	// an injected fault.
	FaultedConns int
	// Bans is the number of peers banned for accumulated misbehavior.
	Bans int
	// SlowConsumerDrops is the number of peers disconnected for never
	// draining their send queue.
	SlowConsumerDrops int
	// Redials is the number of connections re-established by the
	// maintenance loop.
	Redials int
	// DesperationDials is the number of dials made past an address's
	// backoff gate because the node was starved below half its
	// out-degree with nothing ordinarily dialable.
	DesperationDials int
}

// Resilience returns a snapshot of the node's defensive-action counters.
func (n *Node) Resilience() ResilienceStats {
	n.resMu.Lock()
	defer n.resMu.Unlock()
	return n.res
}

// countRes applies one mutation to the resilience counters under the lock.
func (n *Node) countRes(f func(*ResilienceStats)) {
	n.resMu.Lock()
	f(&n.res)
	n.resMu.Unlock()
}

// ErrStopped is returned by operations on a stopped node.
var ErrStopped = errors.New("p2p: node stopped")

// NewNode validates the config and builds a node (not yet started).
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if cfg.Genesis == nil {
		return nil, fmt.Errorf("p2p: nil genesis")
	}
	selector := cfg.Selector
	if selector == nil {
		if cfg.Explore >= cfg.OutDegree {
			return nil, fmt.Errorf("p2p: explore %d must be below out-degree %d", cfg.Explore, cfg.OutDegree)
		}
		var err error
		selector, err = core.NewSubsetSelector(cfg.Explore, cfg.Percentile)
		if err != nil {
			return nil, err
		}
	}
	store, err := chain.NewStore(cfg.Genesis)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed).Derive("p2p-node")
	if cfg.NodeID == 0 {
		cfg.NodeID = r.Uint64() | 1 // never zero
	}
	book := NewAddrBookWith(cfg.Book)
	if cfg.AddrBookPath != "" {
		if err := book.Load(cfg.AddrBookPath); err != nil {
			return nil, fmt.Errorf("p2p: address book: %w", err)
		}
	}
	if cfg.ListenAddr != "" {
		book.MarkSelf(cfg.ListenAddr)
	}
	return &Node{
		cfg:          cfg,
		store:        store,
		book:         book,
		rand:         r,
		selector:     selector,
		selRand:      rng.New(cfg.Seed).Derive("p2p-selector"),
		addrRand:     rng.New(cfg.Seed).Derive("p2p-addr-gossip"),
		peers:        make(map[uint64]*peer),
		quit:         make(chan struct{}),
		firstSeen:    make(map[chain.Hash]map[uint64]time.Time),
		requested:    make(map[chain.Hash]time.Time),
		orphans:      make(map[chain.Hash][]*chain.Block),
		dialAttempts: make(map[string]int),
		connAttempts: make(map[uint64]int),
	}, nil
}

// ID returns the node's identity.
func (n *Node) ID() uint64 { return n.cfg.NodeID }

// Store exposes the node's block store.
func (n *Node) Store() *chain.Store { return n.store }

// AddrBook exposes the node's address book.
func (n *Node) Book() *AddrBook { return n.book }

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("[%016x] "+format, append([]any{n.cfg.NodeID}, args...)...)
	}
}

// Start begins listening (when configured), accepting connections, and —
// when RedialInterval is set — maintaining the outbound degree.
func (n *Node) Start() error {
	if n.cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", n.cfg.ListenAddr)
		if err != nil {
			return fmt.Errorf("p2p: listen: %w", err)
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = ln.Close()
			return ErrStopped
		}
		n.listener = ln
		n.mu.Unlock()
		// The resolved address (real port) must never re-enter the book
		// through gossip.
		n.book.MarkSelf(ln.Addr().String())
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	if n.cfg.RedialInterval > 0 && !n.cfg.Frozen {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return ErrStopped
		}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.maintainLoop()
	}
	// Discovery loops: refresh keeps the book fed, feelers verify rumor.
	// Either runs regardless of Frozen — they shape the address book, not
	// the neighbor set.
	if n.cfg.Discovery.RefreshInterval > 0 {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return ErrStopped
		}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.refreshLoop()
	}
	if n.cfg.Discovery.FeelerInterval > 0 {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return ErrStopped
		}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.feelerLoop()
	}
	return nil
}

// maintainLoop periodically tops the outbound set back up to OutDegree
// from the address book — the recovery path for connections lost to
// faults between Perigee rounds.
func (n *Node) maintainLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.RedialInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-ticker.C:
			n.redialToTarget()
		}
	}
}

func (n *Node) redialToTarget() {
	need := n.cfg.OutDegree - n.OutboundCount()
	if need <= 0 {
		return
	}
	exclude := map[string]bool{n.Addr(): true}
	for _, p := range n.peerSnapshot() {
		if p.listenAddr != "" {
			exclude[p.listenAddr] = true
		}
	}
	candidates := n.book.Dialable()
	n.shuffleStrings(candidates)
	for _, addr := range candidates {
		if need <= 0 {
			return
		}
		if exclude[addr] {
			continue
		}
		if err := n.Connect(addr); err != nil {
			n.logf("redial %s: %v", addr, err)
			continue
		}
		n.countRes(func(r *ResilienceStats) { r.Redials++ })
		need--
	}
	// Starved below quorum with every known address inside its backoff
	// gate: override the gate for the entry closest to dialable rather
	// than sit disconnected. Backoff protects remote peers from a healthy
	// node's retries, not a node cut off from the network; one override
	// per maintenance tick bounds the hammer rate.
	if need > 0 && n.OutboundCount() < (n.cfg.OutDegree+1)/2 {
		if addr, ok := n.book.EarliestGated(exclude); ok {
			if err := n.Connect(addr); err != nil {
				n.logf("desperation dial %s: %v", addr, err)
				return
			}
			n.countRes(func(r *ResilienceStats) {
				r.Redials++
				r.DesperationDials++
			})
		}
	}
}

// Addr returns the actual listening address, or "" when not listening.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if n.inboundCount() >= n.cfg.MaxInbound {
			// Incoming slots full: shed the connection, as in §5.1.
			_ = conn.Close()
			n.countRes(func(r *ResilienceStats) { r.AcceptsShed++ })
			continue
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.setupPeer(conn, Inbound, ""); err != nil {
				n.logf("inbound handshake failed: %v", err)
			}
		}()
	}
}

func (n *Node) inboundCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, p := range n.peers {
		if p.direction == Inbound {
			count++
		}
	}
	return count
}

// OutboundCount returns the number of live outbound connections.
func (n *Node) OutboundCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, p := range n.peers {
		if p.direction == Outbound {
			count++
		}
	}
	return count
}

// ErrBanned is returned when dialing an address gated by a ban.
var ErrBanned = errors.New("p2p: peer banned")

// Connect dials and handshakes an outbound peer. Banned addresses are
// refused, and every failure — injected, transport, or handshake — is
// recorded against the address book so retries back off and dead seeds
// are eventually evicted.
func (n *Node) Connect(addr string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrStopped
	}
	n.mu.Unlock()
	if n.book.AddrBanned(addr) {
		n.countRes(func(r *ResilienceStats) { r.BannedRefused++ })
		return fmt.Errorf("p2p: dial %s: %w", addr, ErrBanned)
	}
	if n.cfg.Faults != nil {
		attempt := n.nextDialAttempt(addr)
		if v := n.cfg.Faults.Dial(n.cfg.NodeID, addr, attempt); v.Kind == faults.DialFail {
			n.dialFailed(addr)
			n.countRes(func(r *ResilienceStats) { r.FaultedDials++ })
			return fmt.Errorf("p2p: dial %s: %w", addr, faults.ErrInjectedDial)
		}
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.HandshakeTimeout)
	if err != nil {
		n.dialFailed(addr)
		return fmt.Errorf("p2p: dial %s: %w", addr, err)
	}
	n.book.Add(addr)
	if err := n.setupPeer(conn, Outbound, addr); err != nil {
		n.dialFailed(addr)
		return err
	}
	n.book.DialSucceeded(addr)
	return nil
}

// dialFailed records one failed attempt toward addr's backoff gate and
// failure budget.
func (n *Node) dialFailed(addr string) {
	if evicted := n.book.DialFailed(addr); evicted {
		n.logf("evicted %s from address book (failure budget exhausted)", addr)
	}
	n.countRes(func(r *ResilienceStats) { r.DialFailures++ })
}

// nextDialAttempt returns the 0-based attempt index for addr, indexing
// the fault plan's per-address verdict stream.
func (n *Node) nextDialAttempt(addr string) int {
	n.dialMu.Lock()
	defer n.dialMu.Unlock()
	a := n.dialAttempts[addr]
	n.dialAttempts[addr] = a + 1
	return a
}

// nextConnAttempt returns the 0-based attempt index for the remote node,
// indexing the fault plan's per-pair verdict stream.
func (n *Node) nextConnAttempt(remote uint64) int {
	n.dialMu.Lock()
	defer n.dialMu.Unlock()
	a := n.connAttempts[remote]
	n.connAttempts[remote] = a + 1
	return a
}

// setupPeer performs the version handshake and installs the peer.
func (n *Node) setupPeer(conn net.Conn, dir Direction, dialedAddr string) error {
	deadline := time.Now().Add(n.cfg.HandshakeTimeout)
	_ = conn.SetDeadline(deadline)
	local := &wire.Version{
		Protocol:   wire.ProtocolVersion,
		NodeID:     n.cfg.NodeID,
		ListenAddr: n.Addr(),
		Nonce:      n.randUint64(),
	}
	var remote *wire.Version
	var err error
	if dir == Outbound {
		remote, err = handshakeDance(conn, local, true)
	} else {
		remote, err = handshakeDance(conn, local, false)
	}
	if err != nil {
		_ = conn.Close()
		return err
	}
	if remote.Protocol != wire.ProtocolVersion {
		_ = conn.Close()
		return fmt.Errorf("p2p: protocol version %d unsupported", remote.Protocol)
	}
	if remote.NodeID == n.cfg.NodeID {
		_ = conn.Close()
		return fmt.Errorf("p2p: self connection detected")
	}
	if n.book.IDBanned(remote.NodeID) {
		_ = conn.Close()
		n.countRes(func(r *ResilienceStats) { r.BannedRefused++ })
		return fmt.Errorf("p2p: %016x: %w", remote.NodeID, ErrBanned)
	}
	_ = conn.SetDeadline(time.Time{})

	// Apply the fault plan's connection verdict: wrap the transport for
	// resets/stalls/throttles, or arm the send path for message drops.
	// The handshake above ran clean — dial-level faults cover that phase.
	dropNth := 0
	if n.cfg.Faults != nil {
		attempt := n.nextConnAttempt(remote.NodeID)
		if v := n.cfg.Faults.Conn(n.cfg.NodeID, remote.NodeID, attempt); v.Faulty() {
			n.countRes(func(r *ResilienceStats) { r.FaultedConns++ })
			n.logf("injecting %v on connection to %016x", v, remote.NodeID)
			conn = faults.Wrap(conn, v)
			if v.Kind == faults.Drop {
				dropNth = v.DropNth
			}
		}
	}

	var delay time.Duration
	if n.cfg.PeerDelay != nil {
		delay = n.cfg.PeerDelay(remote.NodeID)
	}
	listenAddr := remote.ListenAddr
	if listenAddr != "" && wire.ValidateAddr(listenAddr) != nil {
		// A syntactically bogus advertised address must not enter the
		// book or the gossip stream; treat the peer as non-listening.
		n.logf("ignoring invalid listen addr %q from %016x", listenAddr, remote.NodeID)
		listenAddr = ""
	}
	if listenAddr == "" && dir == Outbound {
		listenAddr = dialedAddr
	}
	p := newPeer(remote.NodeID, dir, conn, listenAddr, delay)
	p.writeTimeout = n.cfg.WriteTimeout
	p.dropNth = dropNth
	p.maxFullDrops = n.cfg.MaxSendQueueDrops
	p.onSlowClose = func() {
		n.countRes(func(r *ResilienceStats) { r.SlowConsumerDrops++ })
		n.logf("disconnecting slow consumer %016x", remote.NodeID)
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		p.close()
		return ErrStopped
	}
	if _, dup := n.peers[p.id]; dup {
		n.mu.Unlock()
		p.close()
		return fmt.Errorf("p2p: duplicate connection to %016x", p.id)
	}
	n.peers[p.id] = p
	n.mu.Unlock()
	if listenAddr != "" {
		// A first sighting of the peer's advertised address is gossip like
		// any other: admit it and trickle it onward, so a joiner's address
		// starts diffusing the moment it connects.
		if n.book.AddSeen(listenAddr, 0) {
			n.countDisc(func(s *DiscoveryStats) { s.AddrsLearned++ })
			n.trickleAddrs(p.id, []wire.NetAddr{{Addr: listenAddr, AgeSec: 0}})
		}
	}
	n.logf("connected %s via %s", p, conn.RemoteAddr())

	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		p.writeLoop()
	}()
	go func() {
		defer n.wg.Done()
		n.readLoop(p)
	}()
	// Seed discovery and sync: announce our own listen address, ask for
	// an address sample, and announce our tip.
	n.announceSelf(p)
	p.noteGetAddrSent()
	p.send(&wire.GetAddr{})
	if tip := n.store.Tip(); tip.Header.Height > 0 {
		p.send(&wire.Inv{Hashes: []chain.Hash{tip.Header.Hash()}})
	}
	return nil
}

// handshakeDance exchanges Version/Verack. The initiator speaks first;
// both sides end up with the remote's Version.
func handshakeDance(conn net.Conn, local *wire.Version, initiator bool) (*wire.Version, error) {
	readVersion := func() (*wire.Version, error) {
		m, err := wire.Read(conn)
		if err != nil {
			return nil, fmt.Errorf("p2p: reading version: %w", err)
		}
		v, ok := m.(*wire.Version)
		if !ok {
			return nil, fmt.Errorf("p2p: expected version, got %v", m.Type())
		}
		return v, nil
	}
	readVerack := func() error {
		m, err := wire.Read(conn)
		if err != nil {
			return fmt.Errorf("p2p: reading verack: %w", err)
		}
		if _, ok := m.(*wire.Verack); !ok {
			return fmt.Errorf("p2p: expected verack, got %v", m.Type())
		}
		return nil
	}
	if initiator {
		if err := wire.Write(conn, local); err != nil {
			return nil, err
		}
		remote, err := readVersion()
		if err != nil {
			return nil, err
		}
		if err := wire.Write(conn, &wire.Verack{}); err != nil {
			return nil, err
		}
		if err := readVerack(); err != nil {
			return nil, err
		}
		return remote, nil
	}
	remote, err := readVersion()
	if err != nil {
		return nil, err
	}
	if err := wire.Write(conn, local); err != nil {
		return nil, err
	}
	if err := readVerack(); err != nil {
		return nil, err
	}
	if err := wire.Write(conn, &wire.Verack{}); err != nil {
		return nil, err
	}
	return remote, nil
}

func (n *Node) randUint64() uint64 {
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	return n.rand.Uint64()
}

// Misbehavior points charged for offenses above the wire layer.
const (
	// pointsInvalidBlock is charged for a block failing validation —
	// expensive to receive, trivial for an honest peer to avoid sending.
	pointsInvalidBlock = 50
	// pointsHandshakeAbuse is charged for a Version/Verack after the
	// handshake completed.
	pointsHandshakeAbuse = 30
	// pointsAddrSpam is charged for GETADDRs past the burst budget and
	// for unsolicited ADDR floods past the per-peer allowance.
	pointsAddrSpam = 10
	// pointsInvalidAddr is charged for an ADDR message carrying
	// syntactically invalid addresses.
	pointsInvalidAddr = 10
)

// readLoop dispatches messages from one peer until the connection dies.
// Reads run under the idle deadline: one silent interval triggers a ping
// probe, a second disconnects the peer — this is what reclaims stalled
// or half-open connections. Protocol violations feed the misbehavior
// score before disconnecting.
func (n *Node) readLoop(p *peer) {
	defer n.removePeer(p)
	probed := false
	for {
		if n.cfg.ReadIdleTimeout > 0 {
			_ = p.conn.SetReadDeadline(time.Now().Add(n.cfg.ReadIdleTimeout))
		}
		m, err := wire.Read(p.conn)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) && !probed {
				probed = true
				p.send(&wire.Ping{Nonce: n.randUint64()})
				// A silent interval also means no block is in flight from
				// this peer: retry any fetch whose GETDATA was lost (e.g.
				// to an injected message drop) and whose announcers have
				// all moved on.
				n.rerequestStale(p)
				continue
			}
			if pts := wire.ViolationPoints(err); pts > 0 {
				n.logf("wire violation from %s: %v", p, err)
				n.misbehave(p, pts)
			}
			return
		}
		probed = false
		switch msg := m.(type) {
		case *wire.Ping:
			p.send(&wire.Pong{Nonce: msg.Nonce})
		case *wire.Pong:
			// liveness only
		case *wire.Inv:
			n.handleInv(p, msg)
		case *wire.GetData:
			n.handleGetData(p, msg)
		case *wire.Block:
			n.handleBlock(p, msg.Block)
		case *wire.Addr:
			n.handleAddr(p, msg)
		case *wire.GetAddr:
			n.handleGetAddr(p)
		default:
			// Version/Verack after handshake: protocol violation.
			n.misbehave(p, pointsHandshakeAbuse)
			return
		}
	}
}

// misbehave charges misbehavior points against a peer's identity and
// address; crossing the ban threshold disconnects it immediately.
func (n *Node) misbehave(p *peer, pts float64) {
	if n.book.Misbehave(p.id, p.listenAddr, pts) {
		n.countRes(func(r *ResilienceStats) { r.Bans++ })
		n.logf("banned %s (misbehavior score over threshold)", p)
		n.removePeer(p)
	}
}

func (n *Node) removePeer(p *peer) {
	p.close()
	n.mu.Lock()
	if existing, ok := n.peers[p.id]; ok && existing == p {
		delete(n.peers, p.id)
	}
	n.mu.Unlock()
	n.logf("disconnected %s", p)
}

// recordSeen notes the first time each peer announced a block.
func (n *Node) recordSeen(peerID uint64, h chain.Hash, at time.Time) {
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	m, ok := n.firstSeen[h]
	if !ok {
		m = make(map[uint64]time.Time)
		n.firstSeen[h] = m
	}
	if _, seen := m[peerID]; !seen {
		m[peerID] = at
	}
	n.boundObservationsLocked()
}

// boundObservationsLocked trims the observation structures to the
// configured cap — rounds reset them wholesale, but a node that never
// rounds (a client-only observer) must not grow them without bound.
// Callers hold obsMu.
func (n *Node) boundObservationsLocked() {
	cap := n.cfg.ObservationCap
	// Accepted blocks: keep the newest cap entries of the window; the
	// timestamps of trimmed blocks can no longer feed a round, so their
	// firstSeen maps go too.
	if len(n.order) > cap {
		drop := n.order[:len(n.order)-cap]
		for _, h := range drop {
			delete(n.firstSeen, h)
		}
		n.order = append(n.order[:0], n.order[len(n.order)-cap:]...)
	}
	// Rumor-only entries (announced, never accepted — e.g. fabricated
	// hashes from a flooding peer) have no order entry to age out with;
	// bound the map as a whole and discard the oldest rumor first.
	if len(n.firstSeen) > 2*cap {
		inWindow := make(map[chain.Hash]bool, len(n.order))
		for _, h := range n.order {
			inWindow[h] = true
		}
		type aged struct {
			h  chain.Hash
			at time.Time
		}
		rumors := make([]aged, 0, len(n.firstSeen))
		for h, seen := range n.firstSeen {
			if inWindow[h] {
				continue
			}
			oldest := time.Time{}
			for _, at := range seen {
				if oldest.IsZero() || at.Before(oldest) {
					oldest = at
				}
			}
			rumors = append(rumors, aged{h, oldest})
		}
		sort.Slice(rumors, func(i, j int) bool {
			if !rumors[i].at.Equal(rumors[j].at) {
				return rumors[i].at.Before(rumors[j].at)
			}
			return string(rumors[i].h[:]) < string(rumors[j].h[:])
		})
		for _, r := range rumors {
			if len(n.firstSeen) <= 2*cap {
				break
			}
			delete(n.firstSeen, r.h)
		}
	}
	// In-flight request dedup: prune oldest-first down to three quarters
	// of the cap when over it — entries past the re-request window are
	// dead weight anyway. Ties (hashes from one INV share a timestamp)
	// break on the hash so the prune always reaches its target.
	if len(n.requested) > cap {
		type pending struct {
			h  chain.Hash
			at time.Time
		}
		all := make([]pending, 0, len(n.requested))
		for h, at := range n.requested {
			all = append(all, pending{h, at})
		}
		sort.Slice(all, func(i, j int) bool {
			if !all[i].at.Equal(all[j].at) {
				return all[i].at.Before(all[j].at)
			}
			return string(all[i].h[:]) < string(all[j].h[:])
		})
		for _, p := range all[:len(all)-3*cap/4] {
			delete(n.requested, p.h)
		}
	}
}

// reRequestAfter is how long a GETDATA may go unanswered before its block
// becomes eligible for another fetch. Nodes tuned for fast idle probing
// (a short ReadIdleTimeout) retry lost fetches on that same cadence;
// otherwise a single dropped request parks a block for the full default
// window even though the probe that would carry the retry fires much
// sooner.
func (n *Node) reRequestAfter() time.Duration {
	const def = 2 * time.Second
	if t := n.cfg.ReadIdleTimeout; t > 0 && t < def {
		return t
	}
	return def
}

func (n *Node) handleInv(p *peer, inv *wire.Inv) {
	now := time.Now()
	window := n.reRequestAfter()
	var want []chain.Hash
	for _, h := range inv.Hashes {
		n.recordSeen(p.id, h, now)
		if n.store.Has(h) {
			continue
		}
		n.obsMu.Lock()
		last, asked := n.requested[h]
		if !asked || now.Sub(last) > window {
			n.requested[h] = now
			want = append(want, h)
		}
		n.obsMu.Unlock()
	}
	if len(want) > 0 {
		p.send(&wire.GetData{Hashes: want})
	}
}

// rerequestStale re-sends GETDATA to p for blocks requested over the
// re-request window ago and still missing — the recovery path for fetch
// requests lost in transit, without which a single dropped GETDATA loses
// a block until an unrelated announcement revives it.
func (n *Node) rerequestStale(p *peer) {
	now := time.Now()
	window := n.reRequestAfter()
	var want []chain.Hash
	n.obsMu.Lock()
	for h, at := range n.requested {
		if now.Sub(at) <= window || n.store.Has(h) {
			continue
		}
		n.requested[h] = now
		want = append(want, h)
		if len(want) == wire.MaxInvHashes {
			break
		}
	}
	n.obsMu.Unlock()
	if len(want) > 0 {
		p.send(&wire.GetData{Hashes: want})
	}
}

func (n *Node) handleGetData(p *peer, gd *wire.GetData) {
	for _, h := range gd.Hashes {
		if b := n.store.Get(h); b != nil {
			p.send(&wire.Block{Block: b})
		}
	}
}

func (n *Node) handleBlock(p *peer, b *chain.Block) {
	h := b.Header.Hash()
	n.recordSeen(p.id, h, time.Now())
	n.acceptBlock(p, b, false)
}

// acceptBlock validates, stores, relays, and unstashes orphans. from may
// be nil for self-mined blocks and unstashed orphans; mined distinguishes
// the two, because adversarial relay behavior (SilentRelay, RelayDelay)
// applies to every received block — including an orphan accepted after
// its parent arrives — but never to the node's own blocks.
func (n *Node) acceptBlock(from *peer, b *chain.Block, mined bool) {
	h := b.Header.Hash()
	if n.store.Has(h) {
		return
	}
	if err := chain.CheckBlock(b); err != nil {
		n.logf("rejecting invalid block %s: %v", h, err)
		if from != nil {
			n.misbehave(from, pointsInvalidBlock)
		}
		return
	}
	err := n.store.Add(b)
	switch {
	case err == nil:
	case errors.Is(err, chain.ErrOrphanBlock):
		n.obsMu.Lock()
		n.orphans[b.Header.PrevHash] = append(n.orphans[b.Header.PrevHash], b)
		n.obsMu.Unlock()
		if from != nil {
			from.send(&wire.GetData{Hashes: []chain.Hash{b.Header.PrevHash}})
		}
		return
	case errors.Is(err, chain.ErrDuplicateBlock):
		return
	default:
		n.logf("rejecting block %s: %v", h, err)
		return
	}
	n.obsMu.Lock()
	n.order = append(n.order, h)
	pending := n.orphans[h]
	delete(n.orphans, h)
	delete(n.requested, h) // fetched: stop tracking for re-request
	n.boundObservationsLocked()
	n.obsMu.Unlock()

	// Relay to everyone except the sender (they have it), applying any
	// configured adversarial relay behavior to received blocks.
	var fromID uint64
	if from != nil {
		fromID = from.id
	}
	n.relayInv(h, fromID, !mined)
	for _, orphan := range pending {
		n.acceptBlock(nil, orphan, false)
	}
	n.maybeAutoRound()
}

// relayInv announces a block to all peers except the sender, applying
// the node's adversarial relay behavior when the block was received
// rather than self-mined: a silent relay suppresses the announcement, a
// withholding relay delays it. Self-mined blocks always go out
// immediately — a silent source still announces its own blocks, matching
// the simulator's semantics.
func (n *Node) relayInv(h chain.Hash, exceptID uint64, relayed bool) {
	if relayed && n.cfg.SilentRelay {
		return
	}
	if !relayed || n.cfg.RelayDelay <= 0 {
		n.broadcastInv(h, exceptID)
		return
	}
	// Serialize the Add against Stop's closed flag so the waiter never
	// races a fresh goroutine.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		timer := time.NewTimer(n.cfg.RelayDelay)
		defer timer.Stop()
		select {
		case <-n.quit:
		case <-timer.C:
			n.broadcastInv(h, exceptID)
		}
	}()
}

func (n *Node) broadcastInv(h chain.Hash, exceptID uint64) {
	for _, p := range n.peerSnapshot() {
		if p.id == exceptID {
			continue
		}
		p.send(&wire.Inv{Hashes: []chain.Hash{h}})
	}
}

func (n *Node) peerSnapshot() []*peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// MineBlock extends the node's tip with a new block and announces it.
func (n *Node) MineBlock(txs [][]byte) (*chain.Block, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrStopped
	}
	n.mu.Unlock()
	b := chain.NewBlock(n.store.Tip(), txs, time.Now(), n.randUint64())
	n.acceptBlock(nil, b, true)
	if !n.store.Has(b.Header.Hash()) {
		return nil, fmt.Errorf("p2p: mined block rejected")
	}
	return b, nil
}

// PeerInfo describes one live connection.
type PeerInfo struct {
	// ID is the remote node's identity.
	ID uint64
	// Direction reports who dialed.
	Direction Direction
	// ListenAddr is the remote's accepting address, if known.
	ListenAddr string
}

// Peers lists live connections sorted by ID.
func (n *Node) Peers() []PeerInfo {
	ps := n.peerSnapshot()
	out := make([]PeerInfo, len(ps))
	for i, p := range ps {
		out[i] = PeerInfo{ID: p.id, Direction: p.direction, ListenAddr: p.listenAddr}
	}
	return out
}

// RoundReport summarizes one live Perigee round.
type RoundReport struct {
	// Round is the 1-based index of the completed round.
	Round int
	// BlocksScored is the number of blocks whose timestamps fed scoring.
	BlocksScored int
	// Kept lists the outbound peer IDs the selector retained.
	Kept []uint64
	// Dropped lists the outbound peer IDs disconnected, in the selector's
	// drop order.
	Dropped []uint64
	// Added lists the peer IDs of outbound connections established by
	// exploration.
	Added []uint64
	// Dialed lists the fresh addresses connected for exploration.
	Dialed []string
}

// PerigeeRound runs one live decision round: it feeds the block arrival
// timestamps observed since the last round to the node's Selector,
// disconnects the peers the selector dropped, spends its dial budget on
// fresh addresses from the book, and resets the observation window. The
// node is a driver — all policy lives in the Selector.
func (n *Node) PerigeeRound() (RoundReport, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return RoundReport{}, ErrStopped
	}
	n.mu.Unlock()

	outbound := make([]*peer, 0, n.cfg.OutDegree)
	for _, p := range n.peerSnapshot() {
		if p.direction == Outbound {
			outbound = append(outbound, p)
		}
	}
	report := RoundReport{}

	// Build observations: offsets of each outbound peer's announcement
	// relative to the first announcement of that block from any peer.
	n.obsMu.Lock()
	blocks := append([]chain.Hash(nil), n.order...)
	obs := core.NewObservations(peerIDsAsInts(outbound), len(blocks))
	for bi, h := range blocks {
		seen := n.firstSeen[h]
		if len(seen) == 0 {
			continue // self-mined or never announced
		}
		var tMin time.Time
		first := true
		for _, at := range seen {
			if first || at.Before(tMin) {
				tMin, first = at, false
			}
		}
		for pi, p := range outbound {
			if at, ok := seen[p.id]; ok {
				obs.Offsets[bi][pi] = at.Sub(tMin)
			}
		}
	}
	// Reset the observation window and claim the round index.
	n.order = nil
	n.firstSeen = make(map[chain.Hash]map[uint64]time.Time)
	n.requested = make(map[chain.Hash]time.Time)
	n.rounds++
	round := n.rounds
	n.obsMu.Unlock()
	report.Round = round
	report.BlocksScored = len(blocks)

	if n.cfg.Frozen {
		// Protocol-deviant node: the observation window resets and the
		// round is reported, but every outbound peer is kept and nothing
		// is dialed.
		for _, p := range outbound {
			report.Kept = append(report.Kept, p.id)
		}
		if n.cfg.OnRound != nil {
			n.cfg.OnRound(report)
		}
		return report, nil
	}

	decision, err := core.Decide(n.selector, core.NeighborView{
		Node:       int(n.cfg.NodeID),
		OutDegree:  n.cfg.OutDegree,
		Candidates: n.book.Len(),
		Obs:        obs,
		Rand:       n.selRand.DeriveIndexed("round", round),
	})
	if err != nil {
		return report, fmt.Errorf("p2p: round %d: %w", round, err)
	}
	for _, i := range decision.Keep {
		report.Kept = append(report.Kept, outbound[i].id)
	}
	for _, i := range decision.Drop {
		report.Dropped = append(report.Dropped, outbound[i].id)
		n.removePeer(outbound[i])
	}

	// Exploration: spend the selector's dial budget on fresh addresses.
	// The target is floored at the configured out-degree so a node whose
	// outbound set was thinned by faults between rounds recovers instead
	// of permanently shrinking.
	target := len(outbound) - len(decision.Drop) + decision.Dial
	if target < n.cfg.OutDegree {
		target = n.cfg.OutDegree
	}
	exclude := map[string]bool{n.Addr(): true}
	for _, p := range n.peerSnapshot() {
		if p.listenAddr != "" {
			exclude[p.listenAddr] = true
		}
	}
	// Never immediately redial a peer the selector just evicted.
	for _, i := range decision.Drop {
		if a := outbound[i].listenAddr; a != "" {
			exclude[a] = true
		}
	}
	// Dialable respects bans and backoff gates, so exploration cannot
	// hot-loop on dead or abusive addresses.
	candidates := n.book.Dialable()
	n.shuffleStrings(candidates)
	for _, addr := range candidates {
		if n.OutboundCount() >= target {
			break
		}
		if exclude[addr] {
			continue
		}
		if err := n.Connect(addr); err != nil {
			n.logf("exploration dial %s failed: %v", addr, err)
			continue
		}
		exclude[addr] = true
		report.Dialed = append(report.Dialed, addr)
	}
	report.Added = n.outboundDiff(report.Kept)
	if n.cfg.OnRound != nil {
		n.cfg.OnRound(report)
	}
	return report, nil
}

// outboundDiff returns the current outbound peer IDs not present in
// before, sorted ascending — the connections exploration just added.
func (n *Node) outboundDiff(before []uint64) []uint64 {
	known := make(map[uint64]bool, len(before))
	for _, id := range before {
		known[id] = true
	}
	var added []uint64
	for _, p := range n.peerSnapshot() {
		if p.direction == Outbound && !known[p.id] {
			added = append(added, p.id)
		}
	}
	return added
}

// maybeAutoRound triggers a Perigee round in the background once the
// observation window reaches the configured RoundBlocks threshold. At
// most one automatic round runs at a time.
func (n *Node) maybeAutoRound() {
	if n.cfg.RoundBlocks <= 0 || n.ObservationWindow() < n.cfg.RoundBlocks {
		return
	}
	n.roundMu.Lock()
	if n.roundInFlight {
		n.roundMu.Unlock()
		return
	}
	n.roundInFlight = true
	n.roundMu.Unlock()
	// Serialize the Add against Stop's closed flag so the waiter never
	// races a fresh goroutine.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.roundMu.Lock()
		n.roundInFlight = false
		n.roundMu.Unlock()
		return
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		defer func() {
			n.roundMu.Lock()
			n.roundInFlight = false
			n.roundMu.Unlock()
		}()
		if _, err := n.PerigeeRound(); err != nil && !errors.Is(err, ErrStopped) {
			n.logf("automatic perigee round: %v", err)
		}
	}()
}

func (n *Node) shuffleStrings(xs []string) {
	sort.Strings(xs) // deterministic base order before the seeded shuffle
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	n.rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// peerIDsAsInts converts peer IDs for the shared scoring code, which keys
// neighbors by int. The value is only used for identity and deterministic
// tie-breaking, so the (possibly negative) two's-complement view is fine.
func peerIDsAsInts(ps []*peer) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = int(p.id)
	}
	return out
}

// ObservationWindow returns the number of blocks currently accumulated for
// the next round.
func (n *Node) ObservationWindow() int {
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	return len(n.order)
}

// Stop closes the listener, drains peer send queues for up to
// DrainTimeout so queued announcements flush, closes all connections,
// waits for every goroutine to exit, and persists the address book when
// a path is configured. Safe to call more than once.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	close(n.quit)
	ln := n.listener
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	// Graceful drain: the deadline is shared, so the total wait is
	// bounded by DrainTimeout regardless of peer count.
	deadline := time.Now().Add(n.cfg.DrainTimeout)
	for _, p := range peers {
		p.drain(deadline)
	}
	for _, p := range peers {
		p.close()
	}
	n.wg.Wait()
	if n.cfg.AddrBookPath != "" {
		if err := n.book.Save(n.cfg.AddrBookPath); err != nil {
			n.logf("saving address book: %v", err)
		}
	}
}

// Censored is re-exported for tests asserting on observation offsets.
const Censored = stats.InfDuration
