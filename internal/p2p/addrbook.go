// Package p2p implements a live TCP Perigee node: Bitcoin-style
// INV/GETDATA/BLOCK gossip over the wire protocol, address discovery, and
// the Perigee neighbor-update loop driven by real arrival timestamps.
//
// The package is the "deployment" counterpart of the simulator: the same
// scoring code (internal/core) ranks peers using timestamps measured on
// real connections. Artificial per-peer latency can be injected to run
// planet-scale experiments on a single machine (see cmd/perigee-cluster).
package p2p

import (
	"sync"
)

// AddrBook is a thread-safe set of known peer addresses (the node's
// addrMan, §2.1).
type AddrBook struct {
	mu    sync.RWMutex
	addrs map[string]struct{}
}

// NewAddrBook returns an empty address book.
func NewAddrBook() *AddrBook {
	return &AddrBook{addrs: make(map[string]struct{})}
}

// Add records addresses; empty strings are ignored.
func (b *AddrBook) Add(addrs ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, a := range addrs {
		if a == "" {
			continue
		}
		b.addrs[a] = struct{}{}
	}
}

// Remove deletes an address (e.g. one that repeatedly fails to dial).
func (b *AddrBook) Remove(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.addrs, addr)
}

// Len returns the number of known addresses.
func (b *AddrBook) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.addrs)
}

// All returns every known address (unordered).
func (b *AddrBook) All() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.addrs))
	for a := range b.addrs {
		out = append(out, a)
	}
	return out
}

// Contains reports whether addr is known.
func (b *AddrBook) Contains(addr string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.addrs[addr]
	return ok
}
